// Cerebral scaling study: where does strong scaling stop paying?
//
// Sweeps rank counts for a cerebral-vasculature simulation on two CSP-2
// variants, decomposes the predicted runtime into memory and communication
// terms, and reports the knee — the largest rank count at which adding
// cores still improves time-to-solution by a user-chosen margin. This is
// the analysis behind the paper's Figs. 3, 9, and 10.
#include <iostream>

#include "core/calibration.hpp"
#include "core/models.hpp"
#include "harvey/simulation.hpp"
#include "util/table.hpp"

int main() {
  using namespace hemo;
  std::cout << "Cerebral vasculature scaling study\n"
            << "==================================\n\n";

  harvey::SimulationOptions options;
  options.solver.tau = 0.8;
  harvey::Simulation sim(geometry::make_cerebral({.depth = 5}), options);
  std::cout << "cerebral tree: " << sim.mesh().num_points()
            << " fluid points, "
            << sim.mesh().type_counts().wall << " wall points\n\n";

  for (const char* abbrev : {"CSP-2", "CSP-2 EC"}) {
    const auto& profile = cluster::instance_by_abbrev(abbrev);
    const core::InstanceCalibration cal = core::calibrate_instance(profile);

    std::cout << abbrev << ":\n";
    TextTable t;
    t.set_header({"Ranks", "Nodes", "Measured MFLUPS", "Model mem (us)",
                  "Model comm (us)", "Comm share"});
    real_t best_mflups = 0.0;
    index_t knee = 1;
    for (index_t n = 2; n <= profile.total_cores; n *= 2) {
      const auto pred = core::predict_direct(
          sim.plan(n, profile.cores_per_node), cal);
      const auto meas = sim.measure(profile, n, 200);
      if (meas.mflups.value() > best_mflups * 1.10) {
        best_mflups = meas.mflups.value();
        knee = n;
      }
      t.add_row({TextTable::num(n),
                 TextTable::num((n + profile.cores_per_node - 1) /
                                profile.cores_per_node),
                 TextTable::num(meas.mflups.value(), 2),
                 TextTable::num(pred.t_mem.value() * 1e6, 1),
                 TextTable::num(pred.t_comm.value() * 1e6, 1),
                 TextTable::num(pred.t_comm / pred.step_seconds, 2)});
    }
    t.print(std::cout);
    std::cout << "scaling knee (last 10%+ gain): " << knee << " ranks\n\n";
  }

  std::cout << "Reading: past one node the communication share jumps and"
               " the EC interconnect\nbuys back some of the loss — the"
               " dashboard quantifies whether it is worth its price.\n";
  return 0;
}
