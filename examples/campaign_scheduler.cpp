// Operating a simulation campaign end to end: the model-driven scheduler
// and concurrent execution engine (src/sched/) close the paper's Fig. 1
// loop. A mixed aorta + cerebral queue is placed by the dashboard under a
// min-cost objective on bounded instance pools, executed concurrently on a
// worker pool, guarded against cost overruns (10 % hard stop + requeue),
// run partly on preemptible capacity with checkpoint/restart recovery, and
// refined mid-campaign from every completed measurement.
#include <iostream>

#include "sched/executor.hpp"
#include "util/table.hpp"

int main() {
  using namespace hemo;
  std::cout << "Model-driven campaign scheduling\n"
            << "================================\n\n";

  std::vector<const cluster::InstanceProfile*> profiles;
  for (const auto& p : cluster::default_catalog()) {
    if (!p.gpu && p.abbrev != "CSP-2 Hyp.") profiles.push_back(&p);
  }

  sched::SchedulerConfig config;
  config.objective = core::Objective::kMinCost;
  config.core_counts = {16, 36, 72, 144};
  // An aggressive interruption market, so the checkpoint/restart path is
  // visible in a ten-job showcase.
  config.spot.preemptions_per_hour = units::PerHour(2.0);
  sched::CampaignScheduler scheduler(std::move(profiles), config);

  std::cout << "calibrating instances and anatomies (phase 1 + pilots) ...\n";
  const std::vector<index_t> cal_counts = {2, 4, 8, 16, 32};
  scheduler.register_workload("aorta", geometry::make_aorta({}), cal_counts);
  scheduler.register_workload("cerebral", geometry::make_cerebral({.depth = 5}),
                              cal_counts);

  // A study a lab might actually queue: steady aorta runs at two
  // resolutions, a cerebral sweep, a few spot-tolerant batch jobs, and one
  // deadline-bound run.
  std::vector<sched::CampaignJobSpec> jobs;
  for (index_t i = 0; i < 10; ++i) {
    sched::CampaignJobSpec spec;
    spec.id = i + 1;
    spec.geometry = (i % 2 == 0) ? "aorta" : "cerebral";
    spec.timesteps = 1000000 + 400000 * (i % 3);
    spec.resolution_factor = (i % 4 == 3) ? 8.0 : 1.0;
    spec.allow_spot = (i % 3 == 1);
    jobs.push_back(spec);
  }
  jobs[6].deadline_s = units::Seconds(12.0 * 3600.0);

  sched::EngineConfig engine_config;
  engine_config.n_workers = 4;
  engine_config.seed = 42;
  sched::CampaignEngine engine(scheduler, engine_config);

  std::cout << "running " << jobs.size()
            << " jobs on 4 workers (virtual campaign time) ...\n\n";
  const auto report = engine.run(std::move(jobs));
  report.print(std::cout);

  std::cout << "\nrefinement: correction factor "
            << TextTable::num(scheduler.tracker().correction_factor(), 4)
            << " learned from " << scheduler.tracker().size()
            << " observations\n";
  return 0;
}
