// Aorta campaign: the paper's full Fig. 1 workflow on a patient-scale
// aortic simulation campaign.
//
//   Phase 1 — build the CSP Option Dashboard: calibrate every candidate
//             instance type from microbenchmarks.
//   Phase 2 — calibrate the anatomy (load-imbalance and event-count laws
//             from decomposition sweeps), evaluate all options, pick one
//             per objective, install an overrun guard, run, record the
//             measurement, and refine the model.
#include <iostream>

#include "core/dashboard.hpp"
#include "harvey/simulation.hpp"
#include "util/table.hpp"

int main() {
  using namespace hemo;
  std::cout << "Aorta cloud campaign\n====================\n\n";

  // Phase 1: the option dashboard.
  std::vector<const cluster::InstanceProfile*> candidates = {
      &cluster::instance_by_abbrev("TRC"),
      &cluster::instance_by_abbrev("CSP-1"),
      &cluster::instance_by_abbrev("CSP-2 Small"),
      &cluster::instance_by_abbrev("CSP-2"),
      &cluster::instance_by_abbrev("CSP-2 EC"),
  };
  std::cout << "calibrating " << candidates.size()
            << " instance types ...\n";
  core::Dashboard dashboard(std::move(candidates));

  // Phase 2: anatomy-specific calibration.
  harvey::SimulationOptions options;
  options.solver.tau = 0.8;
  harvey::Simulation sim(geometry::make_aorta({}), options);
  const std::vector<index_t> sweep = {2, 4, 8, 16, 32, 64};
  core::WorkloadCalibration anatomy =
      core::calibrate_workload(sim, sweep, 36);
  std::cout << "aorta calibration: " << anatomy.total_points
            << " fluid points, z(64) = "
            << TextTable::num(anatomy.imbalance.z(64.0), 3) << "\n\n";

  // A production campaign: 200k timesteps (a few cardiac cycles at high
  // temporal resolution).
  const core::JobSpec job{200000};
  const std::vector<index_t> core_counts = {16, 36, 72, 144};
  auto rows = dashboard.evaluate(anatomy, job, core_counts);

  TextTable t;
  t.set_header({"Instance", "Cores", "Nodes", "MFLUPS", "Time (h)",
                "Cost ($)", "MFLUPS/($/h)"});
  for (const auto& row : rows) {
    t.add_row({row.instance, TextTable::num(row.n_tasks),
               TextTable::num(row.n_nodes),
               TextTable::num(row.prediction.mflups.value(), 1),
               TextTable::num(row.time_to_solution_s.value() / 3600.0, 2),
               TextTable::num(row.total_dollars.value(), 2),
               TextTable::num(row.mflups_per_dollar_hour.value(), 1)});
  }
  t.print(std::cout);

  // Recommendations under the three objectives.
  const auto fastest =
      core::Dashboard::recommend(rows, core::Objective::kMaxThroughput);
  const auto cheapest =
      core::Dashboard::recommend(rows, core::Objective::kMinCost);
  const auto deadline = core::Dashboard::recommend(
      rows, core::Objective::kDeadline, units::Seconds(8.0 * 3600.0));
  std::cout << "\nmax throughput: " << fastest->instance << " @ "
            << fastest->n_tasks << " cores ("
            << TextTable::num(fastest->prediction.mflups.value(), 1)
            << " MFLUPS)\n"
            << "min cost:       " << cheapest->instance << " @ "
            << cheapest->n_tasks << " cores ($"
            << TextTable::num(cheapest->total_dollars.value(), 2)
            << ")\n";
  if (deadline) {
    std::cout << "8 h deadline:   " << deadline->instance << " @ "
              << deadline->n_tasks << " cores ($"
              << TextTable::num(deadline->total_dollars.value(), 2)
              << ")\n";
  } else {
    std::cout << "8 h deadline:   no option qualifies\n";
  }

  // Pilot run: the raw model overpredicts by a consistent factor (paper
  // Figs. 7-8), so a tight guard on the raw prediction would trip on a
  // perfectly healthy job. A short pilot teaches the tracker the
  // correction factor first.
  const core::DashboardRow& chosen = *fastest;
  core::CampaignTracker tracker;
  const auto& profile = cluster::instance_by_abbrev(chosen.instance);
  {
    const auto pilot = sim.measure(profile, chosen.n_tasks, 1000);
    tracker.record(core::Observation{"aorta", chosen.instance,
                                     chosen.n_tasks,
                                     chosen.prediction.mflups,
                                     pilot.mflups});
    std::cout << "\npilot run: predicted "
              << TextTable::num(chosen.prediction.mflups.value(), 1)
              << " MFLUPS, measured "
              << TextTable::num(pilot.mflups.value(), 1)
              << " -> correction factor "
              << TextTable::num(tracker.correction_factor(), 3) << "\n";
  }

  // Guarded execution on the refined prediction + iterative refinement.
  auto refined_rows =
      dashboard.evaluate(anatomy, job, core_counts, &tracker);
  const auto refined_chosen = core::Dashboard::recommend(
      refined_rows, core::Objective::kMaxThroughput);
  core::JobGuard guard = core::Dashboard::make_guard(*refined_chosen, 0.10);
  std::cout << "running on " << refined_chosen->instance
            << " with a 10% overrun guard on the refined prediction: stop"
               " after "
            << TextTable::num(guard.max_seconds().value() / 3600.0, 2)
            << " h or $" << TextTable::num(guard.max_dollars().value(), 2)
            << "\n";
  // Simulate the campaign in four guarded chunks.
  const auto& run_profile =
      cluster::instance_by_abbrev(refined_chosen->instance);
  units::Seconds elapsed;
  for (index_t chunk = 0; chunk < 4; ++chunk) {
    const auto meas = sim.measure(run_profile, refined_chosen->n_tasks,
                                  job.timesteps / 4,
                                  {chunk, 6 * chunk, 0});
    elapsed += meas.total_seconds;
    const real_t done = static_cast<real_t>(chunk + 1) / 4.0;
    if (guard.should_abort(elapsed, done)) {
      std::cout << "  chunk " << chunk << ": guard tripped — aborting\n";
      break;
    }
    tracker.record(core::Observation{"aorta", refined_chosen->instance,
                                     refined_chosen->n_tasks,
                                     chosen.prediction.mflups,
                                     meas.mflups});
    std::cout << "  chunk " << chunk << ": measured "
              << TextTable::num(meas.mflups.value(), 1)
              << " MFLUPS, elapsed "
              << TextTable::num(elapsed.value() / 3600.0, 2) << " h (limit "
              << TextTable::num(guard.max_seconds().value() / 3600.0, 2)
              << " h)\n";
  }

  std::cout << "\nlearned correction factor: "
            << TextTable::num(tracker.correction_factor(), 3)
            << " (raw model error "
            << TextTable::num(tracker.mean_abs_relative_error() * 100.0, 1)
            << "% -> refined "
            << TextTable::num(
                   tracker.refined_mean_abs_relative_error() * 100.0, 1)
            << "%)\n"
            << "future dashboard evaluations pass the tracker to "
               "Dashboard::evaluate for refined predictions.\n";
  return 0;
}
