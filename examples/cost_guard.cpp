// Cost-overrun protection: the paper's model-driven job limits in action.
//
// A user plans a cylinder campaign from the model's prediction with a 10%
// tolerance. Run A proceeds normally and finishes within the limit. Run B
// simulates a mis-sized submission (the user accidentally runs a domain at
// twice the resolution — 8x the points), and the guard flags it from its
// very first progress report instead of letting the bill grow.
#include <iostream>

#include "core/calibration.hpp"
#include "core/dashboard.hpp"
#include "core/models.hpp"
#include "harvey/simulation.hpp"
#include "util/table.hpp"

int main() {
  using namespace hemo;
  std::cout << "Model-driven overrun protection\n"
            << "===============================\n\n";

  harvey::SimulationOptions options;
  options.solver.tau = 0.8;
  const auto& profile = cluster::instance_by_abbrev("CSP-2");
  const core::InstanceCalibration cal = core::calibrate_instance(profile);

  // Plan: 50k timesteps of the intended geometry at 36 ranks.
  harvey::Simulation intended(
      geometry::make_cylinder({.radius = 10, .length = 80}), options);
  constexpr index_t kSteps = 50000;
  constexpr index_t kRanks = 36;
  const auto pred =
      core::predict_direct(intended.plan(kRanks, profile.cores_per_node),
                           cal);

  // The raw model overpredicts by a consistent factor, so the plan is
  // refined with one short pilot before the guard is armed (the paper's
  // iterative-refinement loop). Without this, a 10% guard would trip on a
  // healthy job.
  core::CampaignTracker tracker;
  const auto pilot = intended.measure(profile, kRanks, 500);
  tracker.record(core::Observation{"cylinder", profile.abbrev, kRanks,
                                   pred.mflups, pilot.mflups});
  const real_t refined_mflups =
      tracker.refined_mflups(pred.mflups).value();

  core::JobGuard guard;
  guard.predicted_seconds = units::Seconds(
      static_cast<real_t>(intended.mesh().num_points()) * kSteps /
      (refined_mflups * 1e6));
  guard.tolerance = 0.10;
  guard.price_per_hour = profile.price_per_node_hour;  // one node
  std::cout << "raw prediction " << TextTable::num(pred.mflups.value(), 1)
            << " MFLUPS; pilot-refined " << TextTable::num(refined_mflups, 1)
            << " MFLUPS -> "
            << TextTable::num(guard.predicted_seconds.value() / 60.0, 1)
            << " min; guard limit "
            << TextTable::num(guard.max_seconds().value() / 60.0, 1)
            << " min / $" << TextTable::num(guard.max_dollars().value(), 2)
            << "\n\n";

  auto run_guarded = [&](const char* label, harvey::Simulation& sim) {
    std::cout << label << "\n";
    units::Seconds elapsed;
    bool aborted = false;
    for (index_t chunk = 0; chunk < 10; ++chunk) {
      const auto meas =
          sim.measure(profile, kRanks, kSteps / 10, {0, 12, chunk});
      elapsed += meas.total_seconds;
      const real_t done = static_cast<real_t>(chunk + 1) / 10.0;
      std::cout << "  " << static_cast<int>(done * 100) << "% done, "
                << TextTable::num(elapsed.value() / 60.0, 1)
                << " min elapsed";
      if (guard.should_abort(elapsed, done)) {
        std::cout << "  -> GUARD TRIPPED (projected "
                  << TextTable::num(elapsed.value() / done / 60.0, 1)
                  << " min > limit "
                  << TextTable::num(guard.max_seconds().value() / 60.0, 1)
                  << " min), job stopped; spent $"
                  << TextTable::num(
                         (units::to_hours(elapsed) * guard.price_per_hour)
                             .value(),
                         2)
                  << " of $"
                  << TextTable::num(guard.max_dollars().value(), 2)
                  << "\n";
        aborted = true;
        break;
      }
      std::cout << "  (on pace)\n";
    }
    if (!aborted) {
      std::cout << "  finished within limits; cost $"
                << TextTable::num(
                       (units::to_hours(elapsed) * guard.price_per_hour)
                           .value(),
                       2)
                << "\n";
    }
    std::cout << "\n";
  };

  run_guarded("Run A: the job as planned", intended);

  // Run B: the user submits a 2x-resolution domain against the same plan.
  harvey::Simulation oversized(
      geometry::make_cylinder({.radius = 20, .length = 160}), options);
  run_guarded("Run B: accidental 2x-resolution submission (8x points)",
              oversized);

  std::cout << "The guard converts the performance model into a spending"
               " firewall:\nmis-sized jobs are caught at the first progress"
               " report, not on the invoice.\n";
  return 0;
}
