// Pathology study: stenosis vs aneurysm under pulsatile inflow.
//
// Runs the real solver on the two classic pathology geometries, reports
// the hemodynamic quantities clinicians care about — peak velocity,
// wall shear stress (WSS) along the vessel, pressure drop — under steady
// and pulsatile inflow, and exports VTK flow fields. Finally it asks the
// performance model what a high-resolution version of the study would
// cost in the cloud.
#include <iostream>

#include "core/dashboard.hpp"
#include "harvey/simulation.hpp"
#include "lbm/io.hpp"
#include "lbm/observables.hpp"
#include "util/table.hpp"

namespace {

using namespace hemo;

/// Profiles WSS and peak velocity along the vessel axis.
void profile_vessel(lbm::Solver<double>& solver, const char* label) {
  const auto& mesh = solver.mesh();
  index_t nz = 0;
  for (index_t p = 0; p < mesh.num_points(); ++p) {
    nz = std::max(nz, mesh.voxel(p).z + 1);
  }
  TextTable t;
  t.set_header({"z", "peak uz", "max WSS", "mean gauge p"});
  for (index_t z = 4; z < nz - 4; z += (nz - 8) / 6) {
    real_t peak_u = 0.0, peak_wss = 0.0;
    for (index_t p = 0; p < mesh.num_points(); ++p) {
      if (mesh.voxel(p).z != z) continue;
      peak_u = std::max(peak_u, solver.moments_at(p).uz);
      if (mesh.type(p) == lbm::PointType::kWall) {
        peak_wss = std::max(
            peak_wss,
            lbm::axial_shear_magnitude(lbm::deviatoric_stress(solver, p)));
      }
    }
    t.add_row({TextTable::num(z), TextTable::num(peak_u, 5),
               TextTable::num(peak_wss * 1e5, 2) + "e-5",
               TextTable::num(lbm::mean_gauge_pressure(solver, 2, z) * 1e5,
                              2) + "e-5"});
  }
  std::cout << label << "\n";
  t.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  using namespace hemo;
  std::cout << "Pathology study: stenosis vs aneurysm\n"
            << "=====================================\n\n";

  // --- Stenosis, steady inflow ------------------------------------------
  {
    auto geo = geometry::make_stenosis(
        {.radius = 7, .length = 48, .severity = 0.45});
    const lbm::FluidMesh mesh = lbm::FluidMesh::build(geo.grid);
    lbm::SolverParams params;
    lbm::Solver<double> solver(mesh, params, std::span(geo.inlets));
    solver.run(2500);
    profile_vessel(solver, "stenosis (45% radius reduction), steady:");
    lbm::write_vtk_file(solver, "stenosis_steady.vtk");
  }

  // --- Aneurysm, steady inflow ------------------------------------------
  {
    auto geo = geometry::make_aneurysm(
        {.radius = 6, .length = 48, .dilation = 0.8});
    const lbm::FluidMesh mesh = lbm::FluidMesh::build(geo.grid);
    lbm::SolverParams params;
    lbm::Solver<double> solver(mesh, params, std::span(geo.inlets));
    solver.run(2500);
    profile_vessel(solver, "aneurysm (80% dilation), steady:");
    lbm::write_vtk_file(solver, "aneurysm_steady.vtk");
  }

  // --- Stenosis under pulsatile (cardiac-cycle) inflow --------------------
  {
    auto geo = geometry::make_stenosis(
        {.radius = 7, .length = 48, .severity = 0.45});
    geo.inlets[0].pulse_amplitude = 0.6;
    geo.inlets[0].pulse_period = 400.0;
    const lbm::FluidMesh mesh = lbm::FluidMesh::build(geo.grid);
    lbm::SolverParams params;
    lbm::Solver<double> solver(mesh, params, std::span(geo.inlets));
    solver.run(2000);  // settle
    // Track throat WSS over one cycle.
    const index_t zc = geo.grid.nz() / 2;
    real_t wss_min = 1e30, wss_max = 0.0;
    for (index_t i = 0; i < 10; ++i) {
      solver.run(40);
      real_t wss = 0.0;
      for (index_t p = 0; p < mesh.num_points(); ++p) {
        if (mesh.voxel(p).z != zc) continue;
        if (mesh.type(p) != lbm::PointType::kWall) continue;
        wss = std::max(wss, lbm::axial_shear_magnitude(
                                lbm::deviatoric_stress(solver, p)));
      }
      wss_min = std::min(wss_min, wss);
      wss_max = std::max(wss_max, wss);
    }
    std::cout << "stenosis, pulsatile inflow (amplitude 0.6, period 400):\n"
              << "  throat WSS oscillates between "
              << TextTable::num(wss_min * 1e5, 2) << "e-5 and "
              << TextTable::num(wss_max * 1e5, 2)
              << "e-5 over the cycle (ratio "
              << TextTable::num(wss_max / wss_min, 2) << ")\n\n";
  }

  // --- What would the high-resolution version cost? ----------------------
  {
    harvey::SimulationOptions options;
    harvey::Simulation sim(
        geometry::make_stenosis({.radius = 7, .length = 48}), options);
    std::vector<const cluster::InstanceProfile*> profiles = {
        &cluster::instance_by_abbrev("CSP-2"),
        &cluster::instance_by_abbrev("CSP-2 EC")};
    core::Dashboard dashboard(std::move(profiles));
    const std::vector<index_t> counts = {2, 4, 8, 16, 32};
    const auto coarse = core::calibrate_workload(sim, counts, 36);
    const auto hires = core::scale_resolution(coarse, 64.0);  // 4x finer
    const auto rows = dashboard.evaluate(hires, core::JobSpec{400000},
                                         std::vector<index_t>{144});
    std::cout << "cloud cost of the 4x-resolution pulsatile study"
                 " (400k steps, 144 cores):\n";
    for (const auto& row : rows) {
      std::cout << "  " << row.instance << ": "
                << TextTable::num(row.time_to_solution_s.value() / 3600.0,
                                  1)
                << " h, $" << TextTable::num(row.total_dollars.value(), 2)
                << "\n";
    }
  }

  std::cout << "\nVTK flow fields written: stenosis_steady.vtk,"
               " aneurysm_steady.vtk\n";
  return 0;
}
