// Quickstart: simulate blood flow in an idealized vessel, then ask the
// performance model where to run the full campaign.
//
//   1. Build a cylindrical vessel geometry and run the real D3Q19 BGK
//      solver on it locally (the physics is real, not mocked).
//   2. Characterize a cloud instance with the STREAM/PingPong pipeline.
//   3. Predict the decomposed performance at several rank counts and
//      compare with a (virtual) cloud measurement.
#include <iostream>

#include "core/calibration.hpp"
#include "core/models.hpp"
#include "harvey/simulation.hpp"
#include "util/table.hpp"

int main() {
  using namespace hemo;
  std::cout << "HemoCloud quickstart\n====================\n\n";

  // --- 1. Local physics -------------------------------------------------
  harvey::SimulationOptions options;
  options.solver.tau = 0.8;  // kinematic viscosity 0.1 in lattice units
  harvey::Simulation sim(
      geometry::make_cylinder({.radius = 8, .length = 48,
                               .peak_velocity = 0.04}),
      options);

  std::cout << "geometry: " << sim.geometry().name << ", "
            << sim.mesh().num_points() << " fluid points\n";
  auto& solver = sim.solver();
  solver.run(600);
  std::cout << "after 600 steps: mean flow speed = "
            << TextTable::num(solver.mean_speed(), 5)
            << " (lattice units), total mass = "
            << TextTable::num(solver.total_mass(), 1) << "\n\n";

  // --- 2. Characterize an instance (the paper's phase 1) ----------------
  const auto& profile = cluster::instance_by_abbrev("CSP-2 EC");
  std::cout << "calibrating " << profile.name << " ...\n";
  const core::InstanceCalibration cal = core::calibrate_instance(profile);
  std::cout << "  two-line memory fit: a1 = "
            << TextTable::num(cal.memory.a1, 1)
            << " MB/s/thread, a2 = " << TextTable::num(cal.memory.a2, 1)
            << ", knee at " << TextTable::num(cal.memory.a3, 1)
            << " threads\n"
            << "  internodal comm fit: b = "
            << TextTable::num(cal.inter.bandwidth, 0) << " MB/s, l = "
            << TextTable::num(cal.inter.latency, 1) << " us\n\n";

  // --- 3. Predict vs measure --------------------------------------------
  TextTable t;
  t.set_header({"Ranks", "Predicted MFLUPS (direct)", "Measured MFLUPS",
                "Ratio"});
  for (index_t n : {4, 9, 18, 36, 72}) {
    const auto pred = core::predict_direct(
        sim.plan(n, profile.cores_per_node), cal);
    const auto meas = sim.measure(profile, n, 200);
    t.add_row({TextTable::num(n), TextTable::num(pred.mflups.value(), 2),
               TextTable::num(meas.mflups.value(), 2),
               TextTable::num(pred.mflups / meas.mflups, 2)});
  }
  t.print(std::cout);
  std::cout << "\nThe model overpredicts by a consistent factor — exactly"
               " what the\ncampaign tracker learns and corrects (see"
               " examples/aorta_campaign.cpp).\n";
  return 0;
}
