// hemocloud — command-line front end to the framework.
//
//   hemocloud_cli instances
//       List the instance catalog (Table I view).
//   hemocloud_cli calibrate <instance>
//       Run the microbenchmark calibration and print fit parameters.
//   hemocloud_cli predict <geometry> <instance> <ranks>
//       Direct-model prediction vs a virtual-cluster measurement.
//   hemocloud_cli dashboard <geometry> <timesteps>
//       Evaluate all instances, print cost metrics and recommendations.
//   hemocloud_cli simulate <geometry> <steps> [out.vtk]
//       Run the real solver locally; optionally export the flow field.
//   hemocloud_cli run <geometry> <steps> [--ranks N] [--rebalance]
//                     [--profile out.folded]
//       Run the threaded parallel runtime (src/runtime/) with real halo
//       messaging, then characterize this host (STREAM + PingPong) and
//       print the measured-vs-predicted per-rank table (Eq. 9 memory
//       term, Eq. 12 communication term). --rebalance enables dynamic
//       load rebalancing mid-run; --profile samples the rank phase
//       stacks and writes a collapsed-stack flamegraph profile.
//   hemocloud_cli schedule <geometry> <n_jobs> <timesteps> [seed] [--csv]
//                          [--trace out.json] [--metrics out.jsonl]
//                          [--listen PORT] [--hold SEC]
//       Run a model-driven campaign through the scheduler (src/sched/)
//       and print the campaign report (--csv: canonical CSV instead of
//       the table; byte-identical for a fixed seed). --trace exports a
//       Chrome-trace/Perfetto JSON of the campaign (virtual-time spans
//       are byte-stable for a fixed seed); --metrics writes a JSONL
//       snapshot of the telemetry registry. --listen serves the live
//       telemetry plane (/metrics, /metrics.json, /healthz, /status)
//       during the campaign and for --hold seconds afterwards, with the
//       SLO watchdog and fault flight recorder armed.
//   hemocloud_cli serve [geometry] [--port P] [--jobs N] [--steps T]
//                       [--seed S] [--hold SEC]
//       Observability quick-start: run a seeded campaign with the live
//       telemetry plane up and keep serving afterwards (--hold SEC, -1 =
//       until killed). `curl localhost:P/metrics` while it runs.
//   hemocloud_cli metrics <file.jsonl> [--filter 'name{label=...}']
//                         [--sort] [--format table|prom|json]
//       Summarize a --metrics snapshot. --filter selects series by glob
//       (over the name, or the full name{k=v} key when the pattern has
//       '{'); --sort orders slowest-first (histogram sum / value, the
//       same ordering `check` prints); --format prom re-renders the
//       snapshot as Prometheus text exposition, json as one document.
//   hemocloud_cli kernels [geometry]
//       SIMD backend inventory of this host (compiled / CPU-detected /
//       selected, honoring HEMO_SIMD) plus the roofline inputs per kernel
//       variant: bytes per fluid-point update from the paper's access
//       counts and the resulting MFLUPS bound over a measured STREAM COPY.
//   hemocloud_cli check [cases] [seed]
//       Run the differential validation oracles (src/check/). Exit 0
//       only when every oracle passes; failures print the shrunk
//       counterexample and its replay seed. Prints per-oracle wall
//       time, slowest first.
//   hemocloud_cli mutate [cases] [seed]
//       Mutation self-test: perturb one fitted model coefficient at a
//       time and verify the matching oracle catches it.
//   hemocloud_cli nemesis [--seed S] [--cases N] [--storm name]
//                         [--artifacts dir]
//       Nemesis fault harness (src/nemesis/): prove the checker kills
//       every seeded protocol mutant, then drive seeded fault storms
//       through the engine and replay every recorded history through
//       the invariant checker (specs/executor_protocol.md). Output is a
//       pure function of the seed; exit 0 only when everything passes.
//       --artifacts writes the shrunk failing schedule, its canonical
//       history, report CSV and verdict under the given directory.
//
// Geometries: cylinder | aorta | cerebral.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>

#include "check/mutation.hpp"
#include "check/oracles.hpp"
#include "nemesis/harness.hpp"
#include "core/dashboard.hpp"
#include "decomp/partition.hpp"
#include "harvey/simulation.hpp"
#include "lbm/access_counts.hpp"
#include "lbm/io.hpp"
#include "lbm/simd.hpp"
#include "microbench/stream.hpp"
#include "obs/export.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/recorder.hpp"
#include "obs/server.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "runtime/parallel_solver.hpp"
#include "runtime/validation.hpp"
#include "sched/executor.hpp"
#include "util/table.hpp"

namespace {

using namespace hemo;

geometry::Geometry make_named_geometry(const std::string& name) {
  if (name == "cylinder") {
    return geometry::make_cylinder({.radius = 10, .length = 80});
  }
  if (name == "aorta") return geometry::make_aorta({});
  if (name == "cerebral") return geometry::make_cerebral({.depth = 5});
  throw PreconditionError("unknown geometry: " + name +
                          " (expected cylinder | aorta | cerebral)");
}

harvey::Simulation make_sim(const std::string& geometry_name) {
  harvey::SimulationOptions options;
  options.solver.tau = 0.8;
  return harvey::Simulation(make_named_geometry(geometry_name), options);
}

int cmd_instances() {
  TextTable t;
  t.set_header({"Abbrev", "Name", "Cores/node", "Total cores",
                "Interconnect (Gb/s)", "$/node-hr", "GPUs/node"});
  for (const auto& p : cluster::default_catalog()) {
    t.add_row({p.abbrev, p.name, TextTable::num(p.cores_per_node),
               TextTable::num(p.total_cores),
               TextTable::num(p.interconnect.value(), 0),
               TextTable::num(p.price_per_node_hour.value(), 2),
               p.gpu ? TextTable::num(p.gpu->gpus_per_node) : "-"});
  }
  t.print(std::cout);
  return 0;
}

int cmd_calibrate(const std::string& instance) {
  const auto& profile = cluster::instance_by_abbrev(instance);
  HEMO_LOG_INFO("calibrating %s ...", profile.name.c_str());
  const auto cal = core::calibrate_instance(profile);
  TextTable t;
  t.set_header({"Parameter", "Value", "Units"});
  t.add_row({"a1 (memory, per-core regime)", TextTable::num(cal.memory.a1, 2),
             "MB/s/thread"});
  t.add_row({"a2 (memory, saturated)", TextTable::num(cal.memory.a2, 2),
             "MB/s/thread"});
  t.add_row({"a3 (saturation knee)", TextTable::num(cal.memory.a3, 2),
             "threads"});
  t.add_row({"b internodal", TextTable::num(cal.inter.bandwidth, 2), "MB/s"});
  t.add_row({"l internodal", TextTable::num(cal.inter.latency, 2), "us"});
  t.add_row({"b intranodal", TextTable::num(cal.intra.bandwidth, 2), "MB/s"});
  t.add_row({"l intranodal", TextTable::num(cal.intra.latency, 2), "us"});
  if (cal.gpu_bandwidth) {
    t.add_row({"GPU device bandwidth",
               TextTable::num(cal.gpu_bandwidth->value(), 0), "MB/s"});
    t.add_row({"PCIe bandwidth", TextTable::num(cal.gpu_pcie->bandwidth, 0),
               "MB/s"});
    t.add_row({"PCIe latency", TextTable::num(cal.gpu_pcie->latency, 2),
               "us"});
  }
  t.print(std::cout);
  return 0;
}

int cmd_predict(const std::string& geometry_name,
                const std::string& instance, index_t ranks) {
  const auto& profile = cluster::instance_by_abbrev(instance);
  auto sim = make_sim(geometry_name);
  const auto cal = core::calibrate_instance(profile);
  const auto pred = core::predict_direct(
      sim.plan(ranks, profile.cores_per_node), cal);
  const auto meas = sim.measure(profile, ranks, 200);
  TextTable t;
  t.set_header({"Quantity", "Model", "Measured"});
  t.add_row({"MFLUPS", TextTable::num(pred.mflups.value(), 2),
             TextTable::num(meas.mflups.value(), 2)});
  t.add_row({"step time (us)",
             TextTable::num(pred.step_seconds.value() * 1e6, 1),
             TextTable::num(meas.step_seconds.value() * 1e6, 1)});
  t.add_row({"memory term (us)",
             TextTable::num(pred.t_mem.value() * 1e6, 1),
             TextTable::num(meas.critical.mem_s.value() * 1e6, 1)});
  t.add_row(
      {"comm term (us)", TextTable::num(pred.t_comm.value() * 1e6, 1),
       TextTable::num(
           (meas.critical.intra_s + meas.critical.inter_s).value() * 1e6,
           1)});
  t.print(std::cout);
  return 0;
}

int cmd_dashboard(const std::string& geometry_name, index_t timesteps) {
  std::vector<const cluster::InstanceProfile*> profiles;
  for (const auto& p : cluster::default_catalog()) {
    if (p.abbrev != "CSP-2 Hyp.") profiles.push_back(&p);
  }
  core::Dashboard dashboard(std::move(profiles));
  auto sim = make_sim(geometry_name);
  const std::vector<index_t> cal_counts = {2, 4, 8, 16, 32};
  const auto workload = core::calibrate_workload(sim, cal_counts, 36);
  const std::vector<index_t> cores = {16, 36, 72, 144};
  const auto rows =
      dashboard.evaluate(workload, core::JobSpec{timesteps}, cores);

  TextTable t;
  t.set_header({"instance", "cores", "mflups", "time_h", "cost_usd",
                "mflups_per_usd_hr"});
  for (const auto& row : rows) {
    t.add_row({row.instance, TextTable::num(row.n_tasks),
               TextTable::num(row.prediction.mflups.value(), 1),
               TextTable::num(row.time_to_solution_s.value() / 3600.0, 3),
               TextTable::num(row.total_dollars.value(), 2),
               TextTable::num(row.mflups_per_dollar_hour.value(), 1)});
  }
  t.print(std::cout);

  const auto fastest =
      core::Dashboard::recommend(rows, core::Objective::kMaxThroughput);
  const auto cheapest =
      core::Dashboard::recommend(rows, core::Objective::kMinCost);
  std::cout << "\nfastest: " << fastest->instance << " @ "
            << fastest->n_tasks << " cores; cheapest: "
            << cheapest->instance << " @ " << cheapest->n_tasks
            << " cores ($"
            << TextTable::num(cheapest->total_dollars.value(), 2)
            << ")\n";
  return 0;
}

int cmd_simulate(const std::string& geometry_name, index_t steps,
                 const std::string& vtk_path) {
  auto sim = make_sim(geometry_name);
  std::cout << geometry_name << ": " << sim.mesh().num_points()
            << " fluid points\n";
  auto& solver = sim.solver();
  const auto t0 = std::chrono::steady_clock::now();
  solver.run(steps);
  const real_t seconds =
      std::chrono::duration<real_t>(std::chrono::steady_clock::now() - t0)
          .count();
  std::cout << steps << " steps in " << TextTable::num(seconds, 2)
            << " s = "
            << TextTable::num(
                   lbm::mflups(sim.mesh().num_points(), steps, seconds), 2)
            << " MFLUPS (local host)\n"
            << "mean flow speed: " << TextTable::num(solver.mean_speed(), 5)
            << " lattice units\n";
  if (!vtk_path.empty()) {
    lbm::write_vtk_file(solver, vtk_path);
    std::cout << "flow field written to " << vtk_path << "\n";
  }
  return 0;
}

/// Records which SIMD backend this host resolves for the LBM hot path as
/// a gauge (value = double-precision vector lanes, label = backend name),
/// so exported metrics identify the kernel flavor behind every timing.
void record_simd_backend_gauge(obs::MetricsRegistry& registry) {
  const lbm::Backend backend =
      lbm::simd::resolve_backend(lbm::Backend::kAuto);
  registry.set("lbm_simd_lanes",
               static_cast<real_t>(
                   lbm::simd::lanes(backend, sizeof(double))),
               {{"backend", lbm::to_string(backend)}});
}

int cmd_kernels(const std::string& geometry_name) {
  const auto print_backends = [](const char* label,
                                 const std::vector<lbm::Backend>& list) {
    std::cout << label << ":";
    for (const lbm::Backend b : list) std::cout << " " << lbm::to_string(b);
    std::cout << "\n";
  };
  print_backends("compiled", lbm::simd::compiled_backends());
  print_backends("detected", lbm::simd::detected_backends());
  const lbm::Backend selected =
      lbm::simd::resolve_backend(lbm::Backend::kAuto);
  std::cout << "selected: " << lbm::to_string(selected) << " ("
            << lbm::simd::lanes(selected, sizeof(float)) << "x float, "
            << lbm::simd::lanes(selected, sizeof(double))
            << "x double; override with HEMO_SIMD or "
               "KernelConfig::backend)\n";

  const auto geo = make_named_geometry(geometry_name);
  const auto mesh = lbm::FluidMesh::build(geo.grid);
  std::cout << "\n" << geometry_name << ": " << mesh.num_points()
            << " fluid points; measuring STREAM COPY ...\n";
  const real_t copy_mbs = microbench::run_stream_local(1 << 22, 3, 1).copy;
  std::cout << "stream copy (1 thread): " << TextTable::num(copy_mbs, 0)
            << " MB/s\n\n";

  // Roofline inputs per kernel variant: Eq. 10 byte traffic per fluid
  // point and the bandwidth-implied MFLUPS ceiling it buys.
  TextTable t;
  t.set_header({"kernel", "precision", "bytes/FLUP", "MFLUPS bound"});
  for (const auto prop : {lbm::Propagation::kAB, lbm::Propagation::kAA}) {
    for (const auto layout : {lbm::Layout::kAoS, lbm::Layout::kSoA}) {
      for (const auto precision :
           {lbm::Precision::kDouble, lbm::Precision::kSingle}) {
        lbm::KernelConfig config;
        config.layout = layout;
        config.propagation = prop;
        config.precision = precision;
        const real_t bytes_per_flup =
            lbm::serial_bytes_per_step(mesh, config) /
            static_cast<real_t>(mesh.num_points());
        t.add_row({lbm::kernel_name(config), lbm::to_string(precision),
                   TextTable::num(bytes_per_flup, 1),
                   TextTable::num(copy_mbs / bytes_per_flup, 1)});
      }
    }
  }
  t.print(std::cout);
  return 0;
}

int cmd_run(const std::string& geometry_name, index_t steps, index_t ranks,
            bool rebalance, const std::string& profile_path) {
  HEMO_REQUIRE(steps > 0, "need at least one step");
  HEMO_REQUIRE(ranks >= 1, "need at least one rank");
  const auto geo = make_named_geometry(geometry_name);
  const auto mesh = lbm::FluidMesh::build(geo.grid);
  lbm::SolverParams params;
  params.tau = 0.8;
  const auto part =
      decomp::make_partition(mesh, ranks, decomp::Strategy::kRcb);

  runtime::RuntimeOptions options;
  options.workload = geometry_name;
  options.rebalance.enabled = rebalance;
  runtime::ParallelSolver solver(mesh, part, params,
                                 std::span(geo.inlets), options);
  std::cout << geometry_name << ": " << mesh.num_points()
            << " fluid points on " << ranks << " rank"
            << (ranks == 1 ? "" : "s")
            << (rebalance ? " (dynamic rebalancing on)" : "") << "\n";

  obs::PhaseProfiler& profiler = obs::PhaseProfiler::global();
  if (!profile_path.empty()) profiler.start();

  const auto t0 = std::chrono::steady_clock::now();
  solver.run(steps);
  const real_t seconds =
      std::chrono::duration<real_t>(std::chrono::steady_clock::now() - t0)
          .count();

  if (!profile_path.empty()) {
    profiler.stop();
    profiler.write_folded(profile_path);
    const real_t sampled_s =
        static_cast<real_t>(profiler.sample_count()) *
        profiler.period_seconds();
    HEMO_LOG_INFO("profile written to %s (%llu samples over %.3f s; "
                  "render with flamegraph.pl or speedscope)",
                  profile_path.c_str(),
                  static_cast<unsigned long long>(profiler.sample_count()),
                  sampled_s);
  }

  std::cout << steps << " steps in " << TextTable::num(seconds, 2)
            << " s = "
            << TextTable::num(lbm::mflups(mesh.num_points(), steps, seconds),
                              2)
            << " MFLUPS";
  if (rebalance) {
    std::cout << "; " << solver.rebalance_count() << " migration"
              << (solver.rebalance_count() == 1 ? "" : "s");
  }
  std::cout << "\n";

  // Close the measurement->model loop on this host: STREAM + PingPong
  // characterization feeds the Eq. 9 / Eq. 12 predictions the per-rank
  // wall-clock timings are compared against. Validate against the final
  // partition — it is what the measured timings ran on last.
  HEMO_LOG_INFO("characterizing host (STREAM + PingPong) ...");
  const auto host = runtime::LocalHostModel::measure();
  obs::MetricsRegistry registry;
  registry.enable(true);
  record_simd_backend_gauge(registry);
  const auto report =
      runtime::validate_run(mesh, solver.partition(), params.kernel, host,
                            solver.timings(), geometry_name, registry);

  TextTable t;
  t.set_header({"rank", "points", "t_mem meas (us)", "t_mem model (us)",
                "t_comm meas (us)", "t_comm model (us)", "step err"});
  for (std::size_t r = 0; r < report.ranks.size(); ++r) {
    const auto& v = report.ranks[r];
    t.add_row(
        {TextTable::num(static_cast<index_t>(r)),
         TextTable::num(
             static_cast<index_t>(solver.partition().points_of[r].size())),
         TextTable::num(v.measured_mem_s * 1e6, 1),
         TextTable::num(v.predicted.t_mem_s * 1e6, 1),
         TextTable::num(v.measured_comm_s * 1e6, 1),
         TextTable::num(v.predicted.t_comm_s * 1e6, 1),
         TextTable::num(v.step_rel_error * 100.0, 1) + "%"});
  }
  t.print(std::cout);
  std::cout << "step time: measured "
            << TextTable::num(report.measured_step_s * 1e6, 1)
            << " us, model "
            << TextTable::num(report.predicted_step_s * 1e6, 1)
            << " us; MFLUPS: measured "
            << TextTable::num(report.measured_mflups, 2) << ", model "
            << TextTable::num(report.predicted_mflups, 2) << "\n";
  return 0;
}

/// The live telemetry plane of one CLI invocation: metrics registry and
/// fault flight recorder armed, SLO watchdog evaluating on a cadence, and
/// the HTTP server up on 127.0.0.1. When the watchdog first turns
/// unhealthy the flight recorder dumps to flight-recorder-dump.txt (the
/// artifact CI uploads).
class LivePlane {
 public:
  explicit LivePlane(std::uint16_t port)
      : watchdog_(obs::MetricsRegistry::global()),
        server_(obs::MetricsRegistry::global(),
                obs::ServerOptions{.host = "127.0.0.1", .port = port}) {
    obs::MetricsRegistry::global().enable(true);
    obs::FlightRecorder::global().enable(true);
    watchdog_.set_rules(obs::default_campaign_rules());
    watchdog_.on_unhealthy([] {
      obs::FlightRecorder& recorder = obs::FlightRecorder::global();
      recorder.note("watchdog", "health entered unhealthy");
      recorder.dump_to_file("flight-recorder-dump.txt");
      HEMO_LOG_ERROR(
          "watchdog unhealthy: flight recorder dumped to "
          "flight-recorder-dump.txt");
    });
    server_.set_watchdog(&watchdog_);
    server_.start();
    watchdog_.start(0.5);
  }

  ~LivePlane() {
    watchdog_.stop();
    server_.stop();
  }

  /// Keeps serving: `seconds` < 0 means until the process is killed.
  void hold(real_t seconds) const {
    if (seconds < 0.0) {
      HEMO_LOG_INFO("serving on port %u until killed (ctrl-c to stop)",
                    static_cast<unsigned>(server_.port()));
      for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
    }
    std::this_thread::sleep_for(std::chrono::duration<real_t>(seconds));
  }

  [[nodiscard]] std::uint16_t port() const { return server_.port(); }

 private:
  obs::Watchdog watchdog_;
  obs::TelemetryServer server_;
};

int cmd_schedule(const std::string& geometry_name, index_t n_jobs,
                 index_t timesteps, std::uint64_t seed, bool csv,
                 const std::string& trace_path,
                 const std::string& metrics_path, int listen_port,
                 real_t hold_s) {
  // Telemetry is opt-in per invocation: enabling costs locks and
  // allocations on every instrumented path, and the default run must
  // keep the golden --csv bytes and bench numbers untouched.
  if (!trace_path.empty()) obs::TraceRecorder::global().enable(true);
  if (!metrics_path.empty()) obs::MetricsRegistry::global().enable(true);
  record_simd_backend_gauge(obs::MetricsRegistry::global());
  std::unique_ptr<LivePlane> plane;
  if (listen_port >= 0) {
    plane = std::make_unique<LivePlane>(
        static_cast<std::uint16_t>(listen_port));
    HEMO_LOG_INFO(
        "telemetry plane on http://127.0.0.1:%u "
        "(/metrics /metrics.json /healthz /status)",
        static_cast<unsigned>(plane->port()));
  }

  std::vector<const cluster::InstanceProfile*> profiles;
  for (const auto& p : cluster::default_catalog()) {
    if (!p.gpu && p.abbrev != "CSP-2 Hyp.") profiles.push_back(&p);
  }
  sched::SchedulerConfig config;
  config.objective = core::Objective::kMinCost;
  config.core_counts = {16, 36, 72, 144};
  sched::CampaignScheduler scheduler(std::move(profiles), config);
  auto geometry = make_named_geometry(geometry_name);
  // Progress goes to stderr (via the logger) so --csv output stays clean
  // for golden files.
  HEMO_LOG_INFO("calibrating %s (phase 1 + pilots) ...",
                geometry_name.c_str());
  const std::vector<index_t> cal_counts = {2, 4, 8, 16, 32};
  scheduler.register_workload(geometry_name, std::move(geometry), cal_counts);

  std::vector<sched::CampaignJobSpec> jobs;
  for (index_t i = 0; i < n_jobs; ++i) {
    sched::CampaignJobSpec spec;
    spec.id = i + 1;
    spec.geometry = geometry_name;
    spec.timesteps = timesteps;
    spec.allow_spot = (i % 3 == 1);
    jobs.push_back(spec);
  }

  sched::EngineConfig engine_config;
  engine_config.seed = seed;
  sched::CampaignEngine engine(scheduler, engine_config);
  const sched::CampaignReport report = engine.run(std::move(jobs));
  if (csv) {
    std::cout << report.to_csv();
  } else {
    report.print(std::cout);
  }
  if (!trace_path.empty()) {
    obs::TraceRecorder::global().write_chrome_json(trace_path);
    HEMO_LOG_INFO("trace written to %s (open in ui.perfetto.dev)",
                  trace_path.c_str());
  }
  if (!metrics_path.empty()) {
    obs::write_metrics_jsonl(obs::MetricsRegistry::global(), metrics_path);
    HEMO_LOG_INFO("metrics written to %s", metrics_path.c_str());
  }
  if (plane != nullptr && hold_s != 0.0) plane->hold(hold_s);
  return 0;
}

/// Observability quick-start: a seeded campaign with the plane up, then
/// keep serving (`hold_s` < 0 = until killed) so /metrics and /healthz
/// can be curled at leisure.
int cmd_serve(const std::string& geometry_name, index_t n_jobs,
              index_t timesteps, std::uint64_t seed, int port,
              real_t hold_s) {
  return cmd_schedule(geometry_name, n_jobs, timesteps, seed,
                      /*csv=*/false, /*trace_path=*/"", /*metrics_path=*/"",
                      port, hold_s);
}

int cmd_check(index_t cases, std::uint64_t seed) {
  check::PropertyConfig config;
  config.seed = seed;
  config.cases = cases;
  // The oracle runner stores per-oracle wall time in the registry; the
  // results themselves stay a pure function of the seed.
  obs::MetricsRegistry::global().enable(true);
  HEMO_LOG_INFO("calibrating oracle context (3 workloads, CPU catalog) ...");
  auto ctx = check::OracleContext::make_default();
  bool all_passed = true;
  for (const auto& result : check::run_all_oracles(ctx, config)) {
    std::cout << result.summary() << "\n";
    all_passed = all_passed && result.passed;
  }

  std::vector<std::pair<std::string, real_t>> timings;
  for (const auto& snap : obs::MetricsRegistry::global().snapshot()) {
    if (snap.name != "check_oracle_wall_seconds") continue;
    std::string oracle;
    for (const auto& [k, v] : snap.labels) {
      if (k == "oracle") oracle = v;
    }
    timings.emplace_back(oracle, snap.value);
  }
  std::sort(timings.begin(), timings.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (!timings.empty()) {
    std::cout << "\noracle wall time (slowest first):\n";
    TextTable t;
    t.set_header({"oracle", "wall_s"});
    for (const auto& [oracle, seconds] : timings) {
      t.add_row({oracle, TextTable::num(seconds, 3)});
    }
    t.print(std::cout);
  }
  std::cout << (all_passed ? "check: all oracles passed\n"
                           : "check: FAILURES above\n");
  return all_passed ? 0 : 1;
}

/// Sort weight of one series for `--sort`: histograms by total recorded
/// time/amount, counters and gauges by value — the same slowest-first
/// ordering the `check` command prints for oracle wall time.
real_t series_weight(const obs::MetricSnapshot& snap) {
  return snap.kind == obs::MetricKind::kHistogram ? snap.histogram.sum
                                                  : snap.value;
}

int cmd_metrics(const std::string& path, const std::string& filter,
                bool slowest_first, const std::string& format) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    std::cerr << "error: cannot read metrics file: " << path << "\n";
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::vector<obs::MetricSnapshot> snapshots =
      obs::parse_metrics_jsonl(buffer.str());
  if (!filter.empty()) {
    std::erase_if(snapshots, [&filter](const obs::MetricSnapshot& snap) {
      return !obs::series_matches(filter, snap);
    });
  }
  if (snapshots.empty()) {
    if (filter.empty()) {
      std::cerr << "error: no metrics found in " << path << "\n";
    } else {
      std::cerr << "error: no series match --filter '" << filter << "' in "
                << path << "\n";
    }
    return 1;
  }
  if (slowest_first) {
    // Stable so ties keep the canonical key order of the snapshot.
    std::stable_sort(snapshots.begin(), snapshots.end(),
                     [](const auto& a, const auto& b) {
                       return series_weight(a) > series_weight(b);
                     });
  }
  if (format == "prom") {
    std::cout << obs::to_prometheus(snapshots);
    return 0;
  }
  if (format == "json") {
    std::cout << obs::to_metrics_json(snapshots) << "\n";
    return 0;
  }
  TextTable t;
  t.set_header(
      {"metric", "labels", "type", "value/count", "sum", "p50", "p99"});
  for (const obs::MetricSnapshot& snap : snapshots) {
    std::string labels;
    for (const auto& [key, value] : snap.labels) {
      if (!labels.empty()) labels += ',';
      labels += key;
      labels += '=';
      labels += value;
    }
    const bool histogram = snap.kind == obs::MetricKind::kHistogram;
    const char* type = snap.kind == obs::MetricKind::kCounter ? "counter"
                       : snap.kind == obs::MetricKind::kGauge ? "gauge"
                                                              : "histogram";
    t.add_row({snap.name, labels.empty() ? "-" : labels, type,
               histogram
                   ? TextTable::num(static_cast<index_t>(snap.histogram.count))
                   : TextTable::num(snap.value, 6),
               histogram ? TextTable::num(snap.histogram.sum, 6) : "-",
               histogram ? TextTable::num(snap.histogram.quantile(0.5), 6)
                         : "-",
               histogram ? TextTable::num(snap.histogram.quantile(0.99), 6)
                         : "-"});
  }
  t.print(std::cout);
  std::cout << snapshots.size() << " series\n";
  return 0;
}

int cmd_mutate(index_t cases, std::uint64_t seed) {
  check::PropertyConfig config;
  config.seed = seed;
  config.cases = cases;
  HEMO_LOG_INFO("calibrating oracle context (3 workloads, CPU catalog) ...");
  auto ctx = check::OracleContext::make_default();
  const check::MutationReport report =
      check::run_mutation_suite(ctx, config);
  std::cout << report.summary();
  return report.all_detected() ? 0 : 1;
}

int cmd_nemesis(index_t cases, std::uint64_t seed, const std::string& storm,
                const std::string& artifacts_dir) {
  check::PropertyConfig config;
  config.seed = seed;
  config.cases = cases;

  // Teeth first: a harness whose checker cannot convict a known-buggy
  // engine proves nothing about a passing storm sweep.
  const nemesis::SelfTestReport self_test =
      nemesis::run_protocol_self_test(seed);
  std::cout << self_test.summary();
  bool all_passed = self_test.all_detected();

  std::vector<std::string> storms;
  if (storm.empty()) {
    storms = nemesis::storm_names();
  } else {
    storms.push_back(storm);
  }
  for (const std::string& name : storms) {
    std::shared_ptr<nemesis::NemesisFailure> failure;
    const check::PropertyResult result =
        nemesis::nemesis_property(name, config, &failure);
    std::cout << result.summary() << "\n";
    all_passed = all_passed && result.passed;
    if (failure != nullptr) {
      std::cout << failure->verdict.check.summary();
      if (!artifacts_dir.empty()) {
        const std::string dir = artifacts_dir + "/" + name;
        for (const std::string& path :
             nemesis::write_failure_artifacts(*failure, dir)) {
          std::cout << "artifact: " << path << "\n";
        }
      }
    }
  }
  std::cout << (all_passed ? "nemesis: all storms passed\n"
                           : "nemesis: FAILURES above\n");
  return all_passed ? 0 : 1;
}

int usage() {
  std::cerr << "usage:\n"
            << "  hemocloud_cli instances\n"
            << "  hemocloud_cli calibrate <instance>\n"
            << "  hemocloud_cli predict <geometry> <instance> <ranks>\n"
            << "  hemocloud_cli dashboard <geometry> <timesteps>\n"
            << "  hemocloud_cli simulate <geometry> <steps> [out.vtk]\n"
            << "  hemocloud_cli run <geometry> <steps> [--ranks N] "
               "[--rebalance]\n"
            << "                    [--profile out.folded]\n"
            << "  hemocloud_cli schedule <geometry> <n_jobs> <timesteps> "
               "[seed] [--csv]\n"
            << "                         [--trace out.json] "
               "[--metrics out.jsonl]\n"
            << "                         [--listen PORT] [--hold SEC]\n"
            << "  hemocloud_cli serve [geometry] [--port P] [--jobs N] "
               "[--steps T]\n"
            << "                      [--seed S] [--hold SEC]\n"
            << "  hemocloud_cli metrics <file.jsonl> "
               "[--filter 'name{label=...}']\n"
            << "                        [--sort] [--format table|prom|json]\n"
            << "  hemocloud_cli kernels [geometry]\n"
            << "  hemocloud_cli check [cases] [seed]\n"
            << "  hemocloud_cli mutate [cases] [seed]\n"
            << "  hemocloud_cli nemesis [--seed S] [--cases N] "
               "[--storm name] [--artifacts dir]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const std::string cmd = argc > 1 ? argv[1] : "";
    if (cmd == "instances") return cmd_instances();
    if (cmd == "calibrate" && argc == 3) return cmd_calibrate(argv[2]);
    if (cmd == "predict" && argc == 5) {
      return cmd_predict(argv[2], argv[3], std::atol(argv[4]));
    }
    if (cmd == "dashboard" && argc == 4) {
      return cmd_dashboard(argv[2], std::atol(argv[3]));
    }
    if (cmd == "simulate" && (argc == 4 || argc == 5)) {
      return cmd_simulate(argv[2], std::atol(argv[3]),
                          argc == 5 ? argv[4] : "");
    }
    if (cmd == "run" && argc >= 4 && argc <= 9) {
      hemo::index_t ranks = 4;
      bool rebalance = false;
      std::string profile_path;
      for (int i = 4; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--ranks" && i + 1 < argc) {
          ranks = std::atol(argv[++i]);
        } else if (arg == "--rebalance") {
          rebalance = true;
        } else if (arg == "--profile" && i + 1 < argc) {
          profile_path = argv[++i];
        } else {
          return usage();
        }
      }
      return cmd_run(argv[2], std::atol(argv[3]), ranks, rebalance,
                     profile_path);
    }
    if (cmd == "schedule" && argc >= 5 && argc <= 15) {
      bool csv = false;
      std::uint64_t seed = 42;
      std::string trace_path, metrics_path;
      int listen_port = -1;
      hemo::real_t hold_s = 0.0;
      for (int i = 5; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--csv") {
          csv = true;
        } else if (arg == "--trace" && i + 1 < argc) {
          trace_path = argv[++i];
        } else if (arg == "--metrics" && i + 1 < argc) {
          metrics_path = argv[++i];
        } else if (arg == "--listen" && i + 1 < argc) {
          listen_port = std::atoi(argv[++i]);
        } else if (arg == "--hold" && i + 1 < argc) {
          hold_s = std::atof(argv[++i]);
        } else {
          seed = hemo::parse_seed(argv[i], seed);
        }
      }
      return cmd_schedule(argv[2], std::atol(argv[3]), std::atol(argv[4]),
                          seed, csv, trace_path, metrics_path, listen_port,
                          hold_s);
    }
    if (cmd == "serve") {
      std::string geometry = "cylinder";
      hemo::index_t jobs = 6;
      hemo::index_t steps = 20000;
      std::uint64_t seed = 42;
      int port = 9100;
      hemo::real_t hold_s = -1.0;
      int i = 2;
      if (i < argc && argv[i][0] != '-') geometry = argv[i++];
      for (; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--port" && i + 1 < argc) {
          port = std::atoi(argv[++i]);
        } else if (arg == "--jobs" && i + 1 < argc) {
          jobs = std::atol(argv[++i]);
        } else if (arg == "--steps" && i + 1 < argc) {
          steps = std::atol(argv[++i]);
        } else if (arg == "--seed" && i + 1 < argc) {
          seed = hemo::parse_seed(argv[++i], seed);
        } else if (arg == "--hold" && i + 1 < argc) {
          hold_s = std::atof(argv[++i]);
        } else {
          return usage();
        }
      }
      return cmd_serve(geometry, jobs, steps, seed, port, hold_s);
    }
    if (cmd == "metrics" && argc >= 3) {
      std::string filter;
      std::string format = "table";
      bool slowest_first = false;
      for (int i = 3; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--filter" && i + 1 < argc) {
          filter = argv[++i];
        } else if (arg == "--sort") {
          slowest_first = true;
        } else if (arg == "--format" && i + 1 < argc) {
          format = argv[++i];
        } else {
          return usage();
        }
      }
      if (format != "table" && format != "prom" && format != "json") {
        return usage();
      }
      return cmd_metrics(argv[2], filter, slowest_first, format);
    }
    if (cmd == "kernels" && (argc == 2 || argc == 3)) {
      return cmd_kernels(argc == 3 ? argv[2] : "cylinder");
    }
    if (cmd == "check" && argc >= 2 && argc <= 4) {
      return cmd_check(argc > 2 ? std::atol(argv[2]) : 40,
                       argc > 3 ? hemo::parse_seed(argv[3], 42)
                                : hemo::global_seed());
    }
    if (cmd == "mutate" && argc >= 2 && argc <= 4) {
      return cmd_mutate(argc > 2 ? std::atol(argv[2]) : 40,
                        argc > 3 ? hemo::parse_seed(argv[3], 42)
                                 : hemo::global_seed());
    }
    if (cmd == "nemesis") {
      hemo::index_t cases = 6;
      std::uint64_t seed = hemo::global_seed();
      std::string storm, artifacts_dir;
      for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--seed" && i + 1 < argc) {
          seed = hemo::parse_seed(argv[++i], seed);
        } else if (arg == "--cases" && i + 1 < argc) {
          cases = std::atol(argv[++i]);
        } else if (arg == "--storm" && i + 1 < argc) {
          storm = argv[++i];
        } else if (arg == "--artifacts" && i + 1 < argc) {
          artifacts_dir = argv[++i];
        } else {
          return usage();
        }
      }
      return cmd_nemesis(cases, seed, storm, artifacts_dir);
    }
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
