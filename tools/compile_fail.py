#!/usr/bin/env python3
"""Compile-fail harness for the dimensional-safety layer.

Each case file under tests/compile_fail/ must:

  * compile cleanly as-is (the control build — proves the includes and the
    surrounding code are valid, so a later failure is the intended error,
    not a broken header), and
  * FAIL to compile with -DHEMO_COMPILE_FAIL (the guarded block enables
    the illegal unit mix under test).

Both checks use -fsyntax-only, so no artifacts are produced. The harness
exits non-zero (failing the ctest entry) if the control build breaks, if
the guarded build unexpectedly succeeds, or if the guarded build's error
output does not mention the expected diagnostic marker given via
--expect-error (defaults to no marker check).

Extra compiler flags for BOTH builds are passed with repeatable
--flag=-Wfoo options (use the `=` form so argparse does not eat the
leading dash). The thread-safety probes (tests/compile_fail/
thread_safety/) use this to run under Clang's
-Wthread-safety -Wthread-safety-beta -Werror: the control build proves
the annotated code is analysis-clean, the guarded build proves the seeded
lock misuse is rejected for its stated reason.

Usage:
  compile_fail.py --cxx g++ --std c++20 -I src [--flag=-Wx ...]
                  [--expect-error TEXT] case.cpp
"""
from __future__ import annotations

import argparse
import subprocess
import sys


def compile_once(cxx: str, std: str, includes: list[str], flags: list[str],
                 extra: list[str], source: str) -> subprocess.CompletedProcess:
    cmd = [cxx, f"-std={std}", "-fsyntax-only", "-Wall", "-Wextra"]
    for inc in includes:
        cmd += ["-I", inc]
    cmd += flags
    cmd += extra
    cmd.append(source)
    return subprocess.run(cmd, capture_output=True, text=True)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cxx", required=True, help="C++ compiler to drive")
    parser.add_argument("--std", default="c++20")
    parser.add_argument("-I", "--include", action="append", default=[],
                        dest="includes")
    parser.add_argument("--flag", action="append", default=[], dest="flags",
                        help="extra compiler flag for both builds "
                             "(repeatable; use --flag=-Wfoo)")
    parser.add_argument("--expect-error", default=None,
                        help="substring required in the failing diagnostics")
    parser.add_argument("source")
    args = parser.parse_args()

    control = compile_once(args.cxx, args.std, args.includes, args.flags, [],
                           args.source)
    if control.returncode != 0:
        print(f"FAIL: control build of {args.source} should compile but "
              f"did not:\n{control.stderr}", file=sys.stderr)
        return 1

    guarded = compile_once(args.cxx, args.std, args.includes, args.flags,
                           ["-DHEMO_COMPILE_FAIL"], args.source)
    if guarded.returncode == 0:
        print(f"FAIL: {args.source} compiled with -DHEMO_COMPILE_FAIL; the "
              "illegal unit mix under test is no longer rejected.",
              file=sys.stderr)
        return 1
    if args.expect_error and args.expect_error not in guarded.stderr:
        print(f"FAIL: {args.source} failed to compile (good) but the "
              f"diagnostics do not mention {args.expect_error!r}:\n"
              f"{guarded.stderr}", file=sys.stderr)
        return 1

    print(f"PASS: {args.source} rejects the guarded unit mix")
    return 0


if __name__ == "__main__":
    sys.exit(main())
