#!/usr/bin/env python3
"""Tree lint: public headers must not reintroduce raw real_t for
dimensioned quantities.

Scans the public headers of the unit-typed layers (src/core, src/cluster,
src/sched by default) for declarations that pair `real_t` (or `double`)
with an identifier carrying a dimension suffix — `step_s`, `latency_us`,
`bandwidth_mbs`, `price_dollars`, ... Those are exactly the declarations
the units layer (src/units/units.hpp) exists to type: a match means a
dimensioned parameter or field slipped back to a bare double, and CI
fails.

Deliberate raw-real_t boundaries (e.g. sample structs handed to the
unit-agnostic fit:: layer) are exempted by putting
  // units-ok(<reason>)
on the same line. The reason is mandatory — a bare escape fails the lint.

Usage: lint_units.py [--root REPO_ROOT] [DIR ...]
Exit status: 0 clean, 1 findings, 2 usage error.
"""
from __future__ import annotations

import argparse
import pathlib
import re
import sys

DEFAULT_DIRS = ["src/core", "src/cluster", "src/sched"]

# Identifier suffixes that name a dimension. Keep in sync with the unit
# vocabulary in src/units/units.hpp.
DIMENSION_SUFFIXES = (
    "s", "us", "ms", "secs", "seconds", "hours", "hr",
    "bytes", "gb", "gib", "kb", "mb",
    "bw", "mbs", "gbs", "bps", "gbits",
    "mflups", "mlups", "flops", "gflops",
    "dollars", "usd", "cost", "price", "per_hour", "per_usd",
)

RAW_DECL = re.compile(
    r"\b(?:real_t|double|float)\s+"
    r"(?:[A-Za-z_]\w*_(?:" + "|".join(DIMENSION_SUFFIXES) + r"))\b"
)
ESCAPE = re.compile(r"//\s*units-ok\(([^)]*)\)")


def lint_file(path: pathlib.Path) -> list[str]:
    findings = []
    in_block_comment = False
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if in_block_comment:
            if "*/" in line:
                in_block_comment = False
            continue
        if line.lstrip().startswith("//"):
            continue
        if "/*" in line and "*/" not in line:
            in_block_comment = True
        match = RAW_DECL.search(line)
        if not match:
            continue
        escape = ESCAPE.search(line)
        if escape:
            if not escape.group(1).strip():
                findings.append(
                    f"{path}:{lineno}: units-ok() needs a reason: "
                    f"{line.strip()}")
            continue
        findings.append(
            f"{path}:{lineno}: raw floating declaration of dimensioned "
            f"quantity `{match.group(0)}` — use a units:: type from "
            f"src/units/units.hpp (or annotate `// units-ok(reason)`): "
            f"{line.strip()}")
    return findings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".", help="repository root")
    parser.add_argument("dirs", nargs="*", default=DEFAULT_DIRS,
                        help=f"directories to scan (default: {DEFAULT_DIRS})")
    args = parser.parse_args()

    root = pathlib.Path(args.root)
    findings: list[str] = []
    n_headers = 0
    for rel in (args.dirs or DEFAULT_DIRS):
        directory = root / rel
        if not directory.is_dir():
            print(f"lint_units: no such directory: {directory}",
                  file=sys.stderr)
            return 2
        for header in sorted(directory.rglob("*.hpp")):
            n_headers += 1
            findings.extend(lint_file(header))

    for finding in findings:
        print(finding, file=sys.stderr)
    status = "FAIL" if findings else "OK"
    print(f"lint_units: {status} — {n_headers} public headers, "
          f"{len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
