#!/usr/bin/env python3
"""Validate a Prometheus text-exposition document (version 0.0.4).

Reads the exposition from a file argument (or stdin) and checks the
contract `src/obs/export.cpp` promises and the CI observability job
curls from a live `/metrics` endpoint:

  * every sample belongs to a family announced by `# TYPE` (and `# HELP`)
    lines that precede it;
  * family and label names are legal Prometheus identifiers;
  * sample values parse as floats (`+Inf` / `-Inf` / `NaN` allowed);
  * histogram families expose `_bucket` series with non-decreasing
    cumulative counts per label set, closed by an `le="+Inf"` bucket
    whose count equals the family's `_count` sample, plus a `_sum`;
  * no duplicate `# TYPE` line per family.

Usage: check_prom_exposition.py [FILE]
Exit status: 0 valid, 1 findings, 2 usage/IO error.
"""
from __future__ import annotations

import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})?\s+(\S+)(?:\s+\d+)?$")
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
SUFFIXES = ("_bucket", "_sum", "_count")


def family_of(sample_name: str, types: dict[str, str]) -> str:
    """Metric family a sample belongs to (histogram samples use suffixes)."""
    for suffix in SUFFIXES:
        base = sample_name.removesuffix(suffix)
        if base != sample_name and types.get(base) == "histogram":
            return base
    return sample_name


def parse_value(text: str) -> float:
    return float(text.replace("+Inf", "inf").replace("-Inf", "-inf"))


def main() -> int:
    if len(sys.argv) > 2:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        text = (open(sys.argv[1], encoding="utf-8").read()
                if len(sys.argv) == 2 else sys.stdin.read())
    except OSError as error:
        print(f"check_prom_exposition: {error}", file=sys.stderr)
        return 2

    findings: list[str] = []
    types: dict[str, str] = {}
    helps: set[str] = set()
    # (family, frozen label set without le) -> list of (le, count)
    buckets: dict[tuple[str, frozenset], list[tuple[float, float]]] = {}
    counts: dict[tuple[str, frozenset], float] = {}
    sums: set[tuple[str, frozenset]] = set()
    n_samples = 0

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(maxsplit=3)
            if len(parts) >= 3:
                helps.add(parts[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split(maxsplit=3)
            if len(parts) != 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary", "untyped"):
                findings.append(f"line {lineno}: malformed TYPE line: {line}")
                continue
            if parts[2] in types:
                findings.append(
                    f"line {lineno}: duplicate TYPE for `{parts[2]}`")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue

        match = SAMPLE_RE.match(line)
        if not match:
            findings.append(f"line {lineno}: unparsable sample: {line}")
            continue
        n_samples += 1
        name, label_block, value_text = match.groups()
        family = family_of(name, types)
        if family not in types:
            findings.append(
                f"line {lineno}: sample `{name}` has no preceding TYPE line")
        elif family not in helps:
            findings.append(
                f"line {lineno}: family `{family}` has no HELP line")

        labels = {}
        if label_block:
            body = label_block[1:-1]
            consumed = "".join(m.group(0) for m in LABEL_RE.finditer(body))
            if len(consumed.replace(",", "")) < len(body.replace(",", "")):
                findings.append(
                    f"line {lineno}: malformed label block: {label_block}")
            for m in LABEL_RE.finditer(body):
                labels[m.group(1)] = m.group(2)
        try:
            value = parse_value(value_text)
        except ValueError:
            findings.append(
                f"line {lineno}: non-numeric value `{value_text}`")
            continue

        if types.get(family) == "histogram":
            series = frozenset(
                (k, v) for k, v in labels.items() if k != "le")
            if name.endswith("_bucket"):
                if "le" not in labels:
                    findings.append(
                        f"line {lineno}: `_bucket` sample without `le`")
                    continue
                buckets.setdefault((family, series), []).append(
                    (parse_value(labels["le"]), value))
            elif name.endswith("_count"):
                counts[(family, series)] = value
            elif name.endswith("_sum"):
                sums.add((family, series))

    for (family, series), ladder in buckets.items():
        last = -1.0
        for le, count in ladder:
            if count < last:
                findings.append(
                    f"{family}: cumulative bucket counts decrease at "
                    f"le={le}")
            last = count
        if not ladder or ladder[-1][0] != float("inf"):
            findings.append(f"{family}: missing le=\"+Inf\" bucket")
        elif (family, series) in counts and \
                ladder[-1][1] != counts[(family, series)]:
            findings.append(
                f"{family}: +Inf bucket ({ladder[-1][1]:g}) != _count "
                f"({counts[(family, series)]:g})")
        if (family, series) not in sums:
            findings.append(f"{family}: missing _sum sample")
        if (family, series) not in counts:
            findings.append(f"{family}: missing _count sample")

    for finding in findings:
        print(finding, file=sys.stderr)
    status = "FAIL" if findings else "OK"
    print(f"check_prom_exposition: {status} — {len(types)} families, "
          f"{n_samples} samples, {len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
