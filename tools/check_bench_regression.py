#!/usr/bin/env python3
"""Soft perf gate: compare a fresh bench JSON against the committed baseline.

Usage: check_bench_regression.py BASELINE CURRENT [--tolerance 0.40]

Supports both bench schemas; baseline and current must use the same one:
  hemo-bench-lbm/1      kernel variants keyed on propagation, layout,
                        precision, path (bench_lbm_json)
  hemo-bench-runtime/1  strong-scaling results keyed on ranks
                        (bench_runtime_json)

For every variant present in both files, fail if the current MFLUPS fell
more than ``tolerance`` below the baseline. The default 40% tolerance is
deliberately loose: CI runners are shared and noisy, and the gate exists to
catch order-of-magnitude hot-path regressions (a lost vectorization, an
accidentally re-introduced branch), not small fluctuations. Speedups and
variants missing from either file never fail the gate, but both are
reported so baseline drift stays visible.

Exit codes: 0 ok, 1 regression, 2 usage/format error.
"""

import argparse
import json
import sys


def lbm_variant_key(result):
    return (
        result["propagation"],
        result["layout"],
        result["precision"],
        result["path"],
    )


def runtime_variant_key(result):
    return ("ranks%d" % result["ranks"],)


SCHEMAS = {
    "hemo-bench-lbm/1": lbm_variant_key,
    "hemo-bench-runtime/1": runtime_variant_key,
}


def load(path):
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"error: cannot read {path}: {exc}")
    if doc.get("schema") not in SCHEMAS:
        sys.exit(f"error: {path}: unexpected schema {doc.get('schema')!r}")
    return doc


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=0.40,
                        help="allowed fractional MFLUPS drop (default 0.40)")
    args = parser.parse_args()
    if not 0.0 < args.tolerance < 1.0:
        sys.exit("error: --tolerance must be in (0, 1)")

    baseline = load(args.baseline)
    current = load(args.current)
    if baseline["schema"] != current["schema"]:
        sys.exit(
            f"error: schema mismatch: baseline={baseline['schema']} "
            f"current={current['schema']}"
        )
    variant_key = SCHEMAS[baseline["schema"]]

    bgeo, cgeo = baseline["geometry"], current["geometry"]
    if bgeo["name"] != cgeo["name"]:
        sys.exit(
            f"error: geometry mismatch: baseline={bgeo['name']} "
            f"current={cgeo['name']}"
        )
    if baseline["config"].get("small") != current["config"].get("small"):
        sys.exit("error: baseline and current use different geometry sizes")

    base = {variant_key(r): r for r in baseline["results"]}
    curr = {variant_key(r): r for r in current["results"]}

    regressions = []
    print(f"{'variant':<34} {'baseline':>10} {'current':>10} {'ratio':>7}")
    for key in sorted(base):
        name = "-".join(key)
        if key not in curr:
            print(f"{name:<34} {base[key]['mflups']:>10.2f} {'missing':>10}")
            continue
        b, c = base[key]["mflups"], curr[key]["mflups"]
        ratio = c / b if b > 0 else float("inf")
        flag = ""
        if c < b * (1.0 - args.tolerance):
            regressions.append((name, b, c))
            flag = "  << REGRESSION"
        print(f"{name:<34} {b:>10.2f} {c:>10.2f} {ratio:>7.2f}{flag}")
    for key in sorted(set(curr) - set(base)):
        print(f"{'-'.join(key):<34} {'missing':>10} "
              f"{curr[key]['mflups']:>10.2f}   (new variant, not gated)")

    if regressions:
        print(f"\nFAIL: {len(regressions)} variant(s) regressed more than "
              f"{args.tolerance:.0%} below the committed baseline:")
        for name, b, c in regressions:
            print(f"  {name}: {b:.2f} -> {c:.2f} MFLUPS")
        return 1
    print(f"\nOK: no variant regressed more than {args.tolerance:.0%}.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
