#!/usr/bin/env python3
"""Soft perf gate: compare a fresh bench JSON against the committed baseline.

Usage: check_bench_regression.py BASELINE CURRENT [--tolerance 0.40]
                                 [--rf-tolerance 0.40]

Supports three bench schemas; baseline and current must use the same one:
  hemo-bench-lbm/1      kernel variants keyed on propagation, layout,
                        precision, path (bench_lbm_json v1)
  hemo-bench-lbm/2      same, plus the effective SIMD backend and thread
                        count in the key, and a measured roofline fraction
                        per result (bench_lbm_json v2)
  hemo-bench-runtime/1  strong-scaling results keyed on ranks
                        (bench_runtime_json)

A result is only ever compared against the baseline entry with the *same*
key — for the v2 schema that includes the effective backend and thread
count, so an avx512 run can never be "compared" against a scalar baseline
or a 4-thread run against a 1-thread one; such pairs simply report as
missing/new. Files with different geometries or sizes are refused
outright.

For every variant present in both files, fail if the current MFLUPS fell
more than ``tolerance`` below the baseline. The v2 schema additionally
gates the roofline fraction (measured MFLUPS over the STREAM-COPY-derived
bound) with ``rf-tolerance``: because the bound is re-measured on the same
host in the same run, the fraction cancels most machine-speed noise and
catches a kernel that got slower *relative to memory bandwidth* even when
absolute MFLUPS drifted for environmental reasons. Both default tolerances
are deliberately loose: CI runners are shared and noisy, and the gate
exists to catch order-of-magnitude hot-path regressions (a lost
vectorization, an accidentally re-introduced branch), not small
fluctuations. Speedups and variants missing from either file never fail
the gate, but both are reported so baseline drift stays visible.

Exit codes: 0 ok, 1 regression, 2 usage/format error.
"""

import argparse
import json
import sys


def lbm_v1_key(result):
    return (
        result["propagation"],
        result["layout"],
        result["precision"],
        result["path"],
    )


def lbm_v2_key(result):
    return lbm_v1_key(result) + (
        result["backend"],
        "t%d" % result["threads"],
    )


def runtime_variant_key(result):
    return ("ranks%d" % result["ranks"],)


SCHEMAS = {
    "hemo-bench-lbm/1": lbm_v1_key,
    "hemo-bench-lbm/2": lbm_v2_key,
    "hemo-bench-runtime/1": runtime_variant_key,
}


def load(path):
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"error: cannot read {path}: {exc}")
    if doc.get("schema") not in SCHEMAS:
        sys.exit(f"error: {path}: unexpected schema {doc.get('schema')!r}")
    return doc


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=0.40,
                        help="allowed fractional MFLUPS drop (default 0.40)")
    parser.add_argument("--rf-tolerance", type=float, default=0.40,
                        help="allowed fractional roofline-fraction drop, "
                             "v2 schema only (default 0.40)")
    args = parser.parse_args()
    if not 0.0 < args.tolerance < 1.0:
        sys.exit("error: --tolerance must be in (0, 1)")
    if not 0.0 < args.rf_tolerance < 1.0:
        sys.exit("error: --rf-tolerance must be in (0, 1)")

    baseline = load(args.baseline)
    current = load(args.current)
    if baseline["schema"] != current["schema"]:
        sys.exit(
            f"error: schema mismatch: baseline={baseline['schema']} "
            f"current={current['schema']}"
        )
    variant_key = SCHEMAS[baseline["schema"]]
    gate_rf = baseline["schema"] == "hemo-bench-lbm/2"

    bgeo, cgeo = baseline["geometry"], current["geometry"]
    if bgeo["name"] != cgeo["name"]:
        sys.exit(
            f"error: geometry mismatch: baseline={bgeo['name']} "
            f"current={cgeo['name']}"
        )
    if baseline["config"].get("small") != current["config"].get("small"):
        sys.exit("error: baseline and current use different geometry sizes")

    base = {variant_key(r): r for r in baseline["results"]}
    curr = {variant_key(r): r for r in current["results"]}

    regressions = []
    head = f"{'variant':<44} {'baseline':>10} {'current':>10} {'ratio':>7}"
    if gate_rf:
        head += f" {'rf-base':>8} {'rf-curr':>8}"
    print(head)
    for key in sorted(base):
        name = "-".join(key)
        if key not in curr:
            print(f"{name:<44} {base[key]['mflups']:>10.2f} {'missing':>10}"
                  "   (not gated: no same-backend/threads run)")
            continue
        b, c = base[key]["mflups"], curr[key]["mflups"]
        ratio = c / b if b > 0 else float("inf")
        flag = ""
        if c < b * (1.0 - args.tolerance):
            regressions.append((name, "MFLUPS", b, c))
            flag = "  << REGRESSION"
        line = f"{name:<44} {b:>10.2f} {c:>10.2f} {ratio:>7.2f}"
        if gate_rf:
            brf = base[key]["roofline_fraction"]
            crf = curr[key]["roofline_fraction"]
            if crf < brf * (1.0 - args.rf_tolerance):
                regressions.append((name, "roofline_fraction", brf, crf))
                flag = "  << RF REGRESSION" if not flag else flag
            line += f" {brf:>8.3f} {crf:>8.3f}"
        print(line + flag)
    for key in sorted(set(curr) - set(base)):
        print(f"{'-'.join(key):<44} {'missing':>10} "
              f"{curr[key]['mflups']:>10.2f}   (new variant, not gated)")

    if regressions:
        print(f"\nFAIL: {len(regressions)} metric(s) regressed more than "
              f"their tolerance below the committed baseline:")
        for name, metric, b, c in regressions:
            print(f"  {name} {metric}: {b:.3f} -> {c:.3f}")
        return 1
    print(f"\nOK: no variant regressed more than {args.tolerance:.0%} "
          f"(MFLUPS)" + (f" / {args.rf_tolerance:.0%} (roofline)."
                         if gate_rf else "."))
    return 0


if __name__ == "__main__":
    sys.exit(main())
