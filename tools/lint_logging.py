#!/usr/bin/env python3
"""Tree lint: library code must log through src/obs/log.hpp.

Scans src/ (excluding src/obs/, which implements the logger) for raw
`std::cerr` / `fprintf(stderr, ...)` / `std::clog` uses. Library-layer
diagnostics must go through HEMO_LOG_* so HEMO_LOG_LEVEL filters them
uniformly and stdout stays reserved for machine-readable output (golden
CSVs, tables, traces).

Deliberate raw-stderr sites (e.g. a crash handler that must not allocate)
are exempted by putting
  // log-ok(<reason>)
on the same line. The reason is mandatory — a bare escape fails the lint.

Usage: lint_logging.py [--root REPO_ROOT] [DIR ...]
Exit status: 0 clean, 1 findings, 2 usage error.
"""
from __future__ import annotations

import argparse
import pathlib
import re
import sys

DEFAULT_DIRS = ["src"]
EXCLUDED = ("src/obs",)

RAW_LOG = re.compile(
    r"std::cerr|std::clog|fprintf\s*\(\s*stderr|fputs\s*\([^,]+,\s*stderr"
)
ESCAPE = re.compile(r"//\s*log-ok\(([^)]*)\)")


def lint_file(path: pathlib.Path) -> list[str]:
    findings = []
    in_block_comment = False
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if in_block_comment:
            if "*/" in line:
                in_block_comment = False
            continue
        if line.lstrip().startswith("//"):
            continue
        if "/*" in line and "*/" not in line:
            in_block_comment = True
        match = RAW_LOG.search(line)
        if not match:
            continue
        escape = ESCAPE.search(line)
        if escape:
            if not escape.group(1).strip():
                findings.append(
                    f"{path}:{lineno}: log-ok() needs a reason: "
                    f"{line.strip()}")
            continue
        findings.append(
            f"{path}:{lineno}: raw stderr logging `{match.group(0)}` — use "
            f"HEMO_LOG_* from src/obs/log.hpp (or annotate "
            f"`// log-ok(reason)`): {line.strip()}")
    return findings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".", help="repository root")
    parser.add_argument("dirs", nargs="*", default=DEFAULT_DIRS,
                        help=f"directories to scan (default: {DEFAULT_DIRS})")
    args = parser.parse_args()

    root = pathlib.Path(args.root)
    findings: list[str] = []
    n_files = 0
    for rel in (args.dirs or DEFAULT_DIRS):
        directory = root / rel
        if not directory.is_dir():
            print(f"lint_logging: no such directory: {directory}",
                  file=sys.stderr)
            return 2
        for source in sorted(directory.rglob("*")):
            if source.suffix not in (".hpp", ".cpp"):
                continue
            rel_path = source.relative_to(root).as_posix()
            if any(rel_path.startswith(ex) for ex in EXCLUDED):
                continue
            n_files += 1
            findings.extend(lint_file(source))

    for finding in findings:
        print(finding, file=sys.stderr)
    status = "FAIL" if findings else "OK"
    print(f"lint_logging: {status} — {n_files} source files, "
          f"{len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
