#!/usr/bin/env python3
"""Tree lint: library code synchronizes through src/util/sync.hpp.

Scans src/ (excluding src/util/sync.hpp, which implements the wrappers)
for raw synchronization primitives:

  * std::mutex / std::recursive_mutex / std::shared_mutex /
    std::timed_mutex, std::lock_guard / std::unique_lock /
    std::scoped_lock / std::shared_lock, std::condition_variable(_any),
    and std::barrier — these bypass the Clang Thread Safety Analysis
    capability layer (hemo::Mutex / hemo::MutexLock / hemo::CondVar), so
    the locking protocol they implement is invisible to -Wthread-safety.
    Exempt a deliberate site with `// sync-ok(<reason>)` on the same line.

  * bare std::atomic declarations — TSA cannot check lock-free protocols,
    so every atomic must carry its release/acquire pairing as a checked
    `// atomic-ok(<protocol>)` tag on the same line, with the full
    protocol documented in DESIGN.md §13's atomic protocol table.

The reason/protocol text is mandatory — a bare escape fails the lint,
mirroring tools/lint_units.py and tools/lint_logging.py.

Usage: lint_sync.py [--root REPO_ROOT] [DIR ...]
Exit status: 0 clean, 1 findings, 2 usage error.
"""
from __future__ import annotations

import argparse
import pathlib
import re
import sys

DEFAULT_DIRS = ["src"]
# The wrapper layer itself holds the raw primitives it annotates.
EXCLUDED_FILES = ("src/util/sync.hpp",)

RAW_SYNC = re.compile(
    r"std::(?:recursive_|shared_|timed_)?mutex\b"
    r"|std::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b"
    r"|std::condition_variable(?:_any)?\b"
    r"|std::barrier\b"
)
RAW_ATOMIC = re.compile(r"std::atomic(?:<|_\w+\b)")
SYNC_OK = re.compile(r"//\s*sync-ok\(([^)]*)\)")
ATOMIC_OK = re.compile(r"//\s*atomic-ok\(([^)]*)\)")


def lint_file(path: pathlib.Path) -> list[str]:
    findings = []
    in_block_comment = False
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if in_block_comment:
            if "*/" in line:
                in_block_comment = False
            continue
        if line.lstrip().startswith("//"):
            continue
        if "/*" in line and "*/" not in line:
            in_block_comment = True

        sync_match = RAW_SYNC.search(line)
        if sync_match:
            escape = SYNC_OK.search(line)
            if escape:
                if not escape.group(1).strip():
                    findings.append(
                        f"{path}:{lineno}: sync-ok() needs a reason: "
                        f"{line.strip()}")
            else:
                findings.append(
                    f"{path}:{lineno}: raw synchronization primitive "
                    f"`{sync_match.group(0)}` — use hemo::Mutex / MutexLock "
                    f"/ CondVar from src/util/sync.hpp so Clang TSA sees "
                    f"the lock (or annotate `// sync-ok(reason)`): "
                    f"{line.strip()}")
            continue

        atomic_match = RAW_ATOMIC.search(line)
        if not atomic_match:
            continue
        escape = ATOMIC_OK.search(line)
        if escape:
            if not escape.group(1).strip():
                findings.append(
                    f"{path}:{lineno}: atomic-ok() needs its protocol: "
                    f"{line.strip()}")
            continue
        findings.append(
            f"{path}:{lineno}: bare `{atomic_match.group(0)}…` — TSA cannot "
            f"check lock-free code; tag the declaration with its ordering "
            f"protocol `// atomic-ok(protocol)` and document it in "
            f"DESIGN.md §13: {line.strip()}")
    return findings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".", help="repository root")
    parser.add_argument("dirs", nargs="*", default=DEFAULT_DIRS,
                        help=f"directories to scan (default: {DEFAULT_DIRS})")
    args = parser.parse_args()

    root = pathlib.Path(args.root)
    findings: list[str] = []
    n_files = 0
    for rel in (args.dirs or DEFAULT_DIRS):
        directory = root / rel
        if not directory.is_dir():
            print(f"lint_sync: no such directory: {directory}",
                  file=sys.stderr)
            return 2
        for source in sorted(directory.rglob("*")):
            if source.suffix not in (".hpp", ".cpp"):
                continue
            rel_path = source.relative_to(root).as_posix()
            if rel_path in EXCLUDED_FILES:
                continue
            n_files += 1
            findings.extend(lint_file(source))

    for finding in findings:
        print(finding, file=sys.stderr)
    status = "FAIL" if findings else "OK"
    print(f"lint_sync: {status} — {n_files} source files, "
          f"{len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
