#!/usr/bin/env python3
"""Tree lint: metric names follow the telemetry naming contract.

Scans src/, bench/ and examples/ for literal-name registration calls on a
metrics receiver (`metrics.`, `registry.`, `MetricsRegistry::global().`)
and enforces the conventions DESIGN.md §14 documents — Prometheus-style
names, so the /metrics exposition stays idiomatic and the watchdog rule
selectors stay predictable:

  * names are snake_case: `^[a-z][a-z0-9_]*$`;
  * counters (`.add(...)`) end in `_total`;
  * histograms (`.observe(...)`) end in a unit / dimension suffix:
    `_seconds`, `_bytes`, `_usd`, `_error`, `_ratio`, or `_length`;
  * gauges (`.set(...)`) must NOT end in `_total` (a gauge named like a
    counter reads as monotone when it is not);
  * unit keywords are terminal: `seconds`/`bytes`/`usd` may only appear
    as the final suffix (`lbm_seconds_step` hides the unit);
  * one name, one kind: the same metric name registered through two
    different call kinds anywhere in the tree is an error.

Exempt a deliberate exception with `// metric-ok(<reason>)` on the same
line; the reason text is mandatory, mirroring tools/lint_sync.py.

Usage: lint_metrics.py [--root REPO_ROOT] [DIR ...]
Exit status: 0 clean, 1 findings, 2 usage error.
"""
from __future__ import annotations

import argparse
import pathlib
import re
import sys

DEFAULT_DIRS = ["src", "bench", "examples"]

# A registration call with a literal name on a metrics-registry receiver.
# The receiver gate keeps unrelated APIs (grid.set, table.add_row,
# ctx.add) out of scope; dynamically-built names are invisible to a
# lexical lint and must be covered by tests instead.
METRIC_CALL = re.compile(
    r"(?:\bmetrics_?|\bregistry_?|Registry::global\(\))"
    r"\.(add|set|observe)\(\s*\"([^\"]+)\"")
METRIC_OK = re.compile(r"//\s*metric-ok\(([^)]*)\)")

NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")
HISTOGRAM_SUFFIXES = ("_seconds", "_bytes", "_usd", "_error", "_ratio",
                      "_length")
UNIT_KEYWORDS = ("seconds", "bytes", "usd")
KIND_OF_CALL = {"add": "counter", "set": "gauge", "observe": "histogram"}


def name_findings(kind: str, name: str) -> list[str]:
    """Naming-rule violations for one registration, as messages."""
    problems = []
    if not NAME_RE.match(name):
        problems.append(f"`{name}` is not snake_case")
        return problems
    if kind == "counter" and not name.endswith("_total"):
        problems.append(f"counter `{name}` must end in `_total`")
    if kind == "histogram" and not name.endswith(HISTOGRAM_SUFFIXES):
        problems.append(
            f"histogram `{name}` must end in a unit/dimension suffix "
            f"({', '.join(HISTOGRAM_SUFFIXES)})")
    if kind == "gauge" and name.endswith("_total"):
        problems.append(
            f"gauge `{name}` must not end in `_total` (reads as a counter)")
    for keyword in UNIT_KEYWORDS:
        parts = name.split("_")
        if keyword in parts[:-1]:
            problems.append(
                f"`{name}` buries the unit keyword `{keyword}`; units are "
                f"terminal suffixes")
    return problems


def lint_file(path: pathlib.Path,
              kinds_seen: dict[str, tuple[str, str]]) -> list[str]:
    findings = []
    in_block_comment = False
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if in_block_comment:
            if "*/" in line:
                in_block_comment = False
            continue
        if line.lstrip().startswith("//"):
            continue
        if "/*" in line and "*/" not in line:
            in_block_comment = True

        for match in METRIC_CALL.finditer(line):
            kind = KIND_OF_CALL[match.group(1)]
            name = match.group(2)
            where = f"{path}:{lineno}"

            escape = METRIC_OK.search(line)
            if escape is not None:
                if not escape.group(1).strip():
                    findings.append(
                        f"{where}: metric-ok() needs a reason: "
                        f"{line.strip()}")
                continue

            for problem in name_findings(kind, name):
                findings.append(f"{where}: {problem}: {line.strip()}")

            previous = kinds_seen.get(name)
            if previous is None:
                kinds_seen[name] = (kind, where)
            elif previous[0] != kind:
                findings.append(
                    f"{where}: `{name}` registered as {kind} but already "
                    f"registered as {previous[0]} at {previous[1]}")
    return findings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".", help="repository root")
    parser.add_argument("dirs", nargs="*", default=DEFAULT_DIRS,
                        help=f"directories to scan (default: {DEFAULT_DIRS})")
    args = parser.parse_args()

    root = pathlib.Path(args.root)
    findings: list[str] = []
    kinds_seen: dict[str, tuple[str, str]] = {}
    n_files = 0
    for rel in (args.dirs or DEFAULT_DIRS):
        directory = root / rel
        if not directory.is_dir():
            print(f"lint_metrics: no such directory: {directory}",
                  file=sys.stderr)
            return 2
        for source in sorted(directory.rglob("*")):
            if source.suffix not in (".hpp", ".cpp"):
                continue
            n_files += 1
            findings.extend(lint_file(source, kinds_seen))

    for finding in findings:
        print(finding, file=sys.stderr)
    status = "FAIL" if findings else "OK"
    print(f"lint_metrics: {status} — {n_files} source files, "
          f"{len(kinds_seen)} metric name(s), {len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
