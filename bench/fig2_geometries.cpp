// Reproduces Fig. 2 (as data): the three arterial geometries and the
// structural properties the paper attributes to them — (A) idealized
// cylinder: high communication, good load balancing; (B) aorta: typical
// communication and balancing; (C) cerebral vasculature: low
// communication, many wall points.
#include "decomp/comm_graph.hpp"

#include "bench_common.hpp"

int main() {
  using namespace hemo;
  bench::print_header("Fig. 2",
                      "arterial geometries and their structural properties");

  TextTable t;
  t.set_header({"Geometry", "Fluid points", "Bulk:wall ratio",
                "Fill fraction", "Halo links/point @16 tasks",
                "Imbalance z @16 (RCB)"});
  for (const auto& name : bench::geometry_names()) {
    const auto geo = bench::make_geometry(name);
    const auto stats = geometry::compute_stats(geo);
    const auto mesh = lbm::FluidMesh::build(geo.grid);
    const auto part =
        decomp::make_partition(mesh, 16, decomp::Strategy::kRcb);
    const auto graph = decomp::build_comm_graph(mesh, part);
    index_t links = 0;
    for (const auto& m : graph.messages) links += m.link_count;
    t.add_row({name, TextTable::num(stats.counts.fluid()),
               TextTable::num(stats.bulk_to_wall_ratio, 2),
               TextTable::num(stats.fill_fraction, 3),
               TextTable::num(static_cast<real_t>(links) /
                                  static_cast<real_t>(mesh.num_points()),
                              3),
               TextTable::num(decomp::measured_imbalance(
                                  mesh, part, lbm::KernelConfig{}), 3)});
  }
  t.print(std::cout);

  std::cout << "\nExpected (paper Fig. 2 captions): cylinder packs bulk"
               " fluid densely (high\ncommunication, good balance);"
               " cerebral is wall-point-rich with small cut\nsurfaces (low"
               " communication); aorta sits between.\n";
  return 0;
}
