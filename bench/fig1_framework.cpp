// Reproduces Fig. 1 (as an executable walkthrough): the two-phase framework
// for performance-model-driven optimization of cloud resource usage.
//
//   Phase 1 — CSP Option Dashboard: characterize every instance type with
//             microbenchmarks and fit the hardware laws.
//   Phase 2 — anatomy-specific tuning: calibrate the target geometry's
//             workload laws, predict, measure, refine, and guard.
#include "bench_common.hpp"

int main() {
  using namespace hemo;
  bench::print_header(
      "Fig. 1", "the two-phase framework, executed end to end");

  // ----- Phase 1: characterize the CSP instance types -------------------
  std::cout << "\nPhase 1: CSP Option Dashboard (microbenchmark fits)\n";
  std::vector<const cluster::InstanceProfile*> profiles = {
      &cluster::instance_by_abbrev("TRC"),
      &cluster::instance_by_abbrev("CSP-2"),
      &cluster::instance_by_abbrev("CSP-2 EC")};
  core::Dashboard dashboard(profiles);
  TextTable p1;
  p1.set_header({"Instance", "a1", "a3", "b_inter (MB/s)", "l_inter (us)"});
  for (const auto& option : dashboard.options()) {
    p1.add_row({option.calibration.abbrev,
                TextTable::num(option.calibration.memory.a1, 1),
                TextTable::num(option.calibration.memory.a3, 2),
                TextTable::num(option.calibration.inter.bandwidth, 1),
                TextTable::num(option.calibration.inter.latency, 2)});
  }
  p1.print(std::cout);

  // ----- Phase 2: anatomy-specific tuning and the decision loop ---------
  std::cout << "\nPhase 2: anatomy-specific predictions for the aorta\n";
  harvey::Simulation sim(bench::make_geometry("aorta"),
                         bench::default_options());
  const std::vector<index_t> counts = {2, 4, 8, 16, 32, 64};
  const auto workload = core::calibrate_workload(sim, counts, 36);

  const core::JobSpec job{100000};
  const std::vector<index_t> cores = {36, 144};
  auto rows = dashboard.evaluate(workload, job, cores);
  TextTable p2;
  p2.set_header({"Instance", "Cores", "MFLUPS", "Cost ($)"});
  for (const auto& row : rows) {
    p2.add_row({row.instance, TextTable::num(row.n_tasks),
                TextTable::num(row.prediction.mflups.value(), 1),
                TextTable::num(row.total_dollars.value(), 2)});
  }
  p2.print(std::cout);

  const auto pick =
      core::Dashboard::recommend(rows, core::Objective::kMaxThroughput);
  std::cout << "\nuser decision (max throughput): " << pick->instance
            << " @ " << pick->n_tasks << " cores\n";

  // Measure, record, refine — the feedback arrows of Fig. 1.
  core::CampaignTracker tracker;
  const auto& profile = cluster::instance_by_abbrev(pick->instance);
  const auto meas = sim.measure(profile, pick->n_tasks, 1000);
  tracker.record(core::Observation{"aorta", pick->instance, pick->n_tasks,
                                   pick->prediction.mflups, meas.mflups});
  const auto refined =
      dashboard.evaluate(workload, job, cores, &tracker);
  real_t refined_mflups = 0.0;
  for (const auto& row : refined) {
    if (row.instance == pick->instance && row.n_tasks == pick->n_tasks) {
      refined_mflups = row.prediction.mflups.value();
    }
  }
  std::cout << "measured " << TextTable::num(meas.mflups.value(), 1)
            << " MFLUPS -> correction factor "
            << TextTable::num(tracker.correction_factor(), 3)
            << "; refined prediction for the pick: "
            << TextTable::num(refined_mflups, 1) << " MFLUPS\n";
  const auto guard = core::Dashboard::make_guard(*pick, 0.10);
  std::cout << "job guard armed: hard stop at "
            << TextTable::num(guard.max_seconds().value() / 3600.0, 3)
            << " h / $" << TextTable::num(guard.max_dollars().value(), 2)
            << "\n";
  return 0;
}
