// Ablation (Discussion §IV): which terms of the generalized model matter?
// Evaluates prediction error vs virtual-cluster measurements for the full
// model and for variants with the load-imbalance factor, the latency term,
// or the bandwidth term removed.
#include <cmath>

#include "bench_common.hpp"

namespace {

using namespace hemo;

enum class Variant { kFull, kNoImbalance, kNoLatency, kNoBandwidth };

const char* name(Variant v) {
  switch (v) {
    case Variant::kFull: return "full model";
    case Variant::kNoImbalance: return "z = 1 (no imbalance)";
    case Variant::kNoLatency: return "no latency term";
    case Variant::kNoBandwidth: return "no comm-bandwidth term";
  }
  return "?";
}

core::ModelPrediction predict(Variant v,
                              const core::WorkloadCalibration& wcal,
                              const core::InstanceCalibration& cal,
                              index_t n, index_t tpn) {
  core::WorkloadCalibration w = wcal;
  if (v == Variant::kNoImbalance) {
    w.imbalance = fit::ImbalanceModel{0.0, 1.0};  // z == 1 everywhere
  }
  core::ModelPrediction p = core::predict_general(w, cal, n, tpn);
  if (v == Variant::kNoLatency) {
    p.step_seconds -= p.t_comm_lat;
    p.t_comm -= p.t_comm_lat;
    p.t_comm_lat = units::Seconds(0.0);
  } else if (v == Variant::kNoBandwidth) {
    p.step_seconds -= p.t_comm_bw;
    p.t_comm -= p.t_comm_bw;
    p.t_comm_bw = units::Seconds(0.0);
  }
  p.mflups = units::Mflups(static_cast<real_t>(w.total_points) /
                           (p.step_seconds.value() * 1e6));
  return p;
}

}  // namespace

int main() {
  using namespace hemo;
  bench::print_header("Ablation",
                      "generalized-model term ablation, cylinder on CSP-2");

  const auto& profile = cluster::instance_by_abbrev("CSP-2");
  bench::CalibrationCache cache;
  const auto& cal = cache.get("CSP-2");
  harvey::Simulation sim(bench::make_geometry("cylinder"),
                         bench::default_options());
  const std::vector<index_t> cal_counts = {2, 4, 8, 16, 32};
  const core::WorkloadCalibration wcal =
      core::calibrate_workload(sim, cal_counts, profile.cores_per_node);

  TextTable t;
  t.set_header({"Variant", "Mean |rel. error| vs measured",
                "Worst ranks"});
  for (Variant v : {Variant::kFull, Variant::kNoImbalance,
                    Variant::kNoLatency, Variant::kNoBandwidth}) {
    real_t acc = 0.0, worst = 0.0;
    index_t worst_n = 0, count = 0;
    for (index_t n = 2; n <= 144; n *= 2) {
      const auto measured = sim.measure(profile, n, 200);
      const auto pred =
          predict(v, wcal, cal, n, profile.cores_per_node);
      const real_t err = std::abs((pred.mflups - measured.mflups).value()) /
                         measured.mflups.value();
      acc += err;
      if (err > worst) {
        worst = err;
        worst_n = n;
      }
      ++count;
    }
    t.add_row({name(v), TextTable::num(acc / static_cast<real_t>(count), 3),
               TextTable::num(worst_n)});
  }
  t.print(std::cout);

  std::cout << "\nExpected: dropping the latency term hurts most at high"
               " ranks (Fig. 10: comm is latency-bound);\ndropping the"
               " bandwidth term barely matters; z matters least for the"
               " well-balanced cylinder.\n";
  return 0;
}
