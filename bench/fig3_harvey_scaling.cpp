// Reproduces Fig. 3: strong scaling of HARVEY performance (MFLUPS vs MPI
// ranks) for the cylinder, aorta, and cerebral geometries on every
// instance. Expected shapes: throughput rises with ranks, rolls over when
// internodal communication dominates; the cerebral geometry performs best;
// the cylinder's curve is the least smooth (communication-heavy).
#include "bench_common.hpp"

int main() {
  using namespace hemo;
  bench::print_header(
      "Fig. 3", "HARVEY strong scaling (MFLUPS) per geometry and system");

  for (const auto& geo_name : bench::geometry_names()) {
    harvey::Simulation sim(bench::make_geometry(geo_name),
                           bench::default_options());
    std::cout << "\n(" << geo_name << ", " << sim.mesh().num_points()
              << " fluid points)\n";
    TextTable t;
    std::vector<std::string> header = {"Ranks"};
    for (const auto& abbrev : bench::system_abbrevs()) header.push_back(abbrev);
    t.set_header(std::move(header));

    // Union ladder across systems.
    std::vector<index_t> ranks;
    for (index_t n = 2; n <= 512; n *= 2) ranks.push_back(n);
    for (index_t n : ranks) {
      std::vector<std::string> row = {TextTable::num(n)};
      for (const auto& abbrev : bench::system_abbrevs()) {
        const auto& profile = cluster::instance_by_abbrev(abbrev);
        if (n > profile.total_cores) {
          row.push_back("-");
          continue;
        }
        const auto r = sim.measure(profile, n, 200);
        row.push_back(TextTable::num(r.mflups.value(), 2));
      }
      t.add_row(std::move(row));
    }
    t.print(std::cout);
  }
  std::cout << "\nExpected shape: cerebral > aorta ~ cylinder in MFLUPS at"
               " equal ranks;\nroll-over once allocations span nodes"
               " (latency-dominated halo exchange).\n";
  return 0;
}
