// Reproduces Fig. 4: strong scaling of the lbm-proxy-app kernels (SoA
// unrolled and AoS layouts) for the AA and AB propagation patterns on each
// infrastructure. Expected shapes: AA curves sit above AB; AoS beats SoA
// for AB on CPUs but not for AA.
#include "bench_common.hpp"

int main() {
  using namespace hemo;
  bench::print_header("Fig. 4",
                      "lbm-proxy-app strong scaling, AA (a) and AB (b)");

  for (lbm::Propagation prop :
       {lbm::Propagation::kAA, lbm::Propagation::kAB}) {
    std::cout << "\n(" << (prop == lbm::Propagation::kAA ? "a" : "b")
              << ") " << lbm::to_string(prop) << " propagation pattern\n";
    for (lbm::Layout layout : {lbm::Layout::kSoA, lbm::Layout::kAoS}) {
      lbm::KernelConfig kernel;
      kernel.propagation = prop;
      kernel.layout = layout;
      kernel.unroll = lbm::Unroll::kYes;
      proxy::ProxyApp app(proxy::ProxyParams{}, kernel);
      std::cout << "kernel: " << lbm::kernel_name(kernel) << "\n";

      TextTable t;
      std::vector<std::string> header = {"Ranks"};
      for (const auto& abbrev : bench::system_abbrevs()) {
        header.push_back(abbrev);
      }
      t.set_header(std::move(header));
      for (index_t n = 2; n <= 144; n *= 2) {
        std::vector<std::string> row = {TextTable::num(n)};
        for (const auto& abbrev : bench::system_abbrevs()) {
          const auto& profile = cluster::instance_by_abbrev(abbrev);
          if (n > profile.total_cores) {
            row.push_back("-");
            continue;
          }
          row.push_back(
              TextTable::num(app.measure(profile, n, 200).mflups.value(), 2));
        }
        t.add_row(std::move(row));
      }
      t.print(std::cout);
    }
  }
  std::cout << "\nExpected shape: AA above AB at equal ranks; AoS >= SoA"
               " for AB, AoS ~ SoA for AA.\n";
  return 0;
}
