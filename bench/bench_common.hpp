// Shared setup for the table/figure reproduction benches.
//
// Each bench binary regenerates one table or figure of the paper; this
// header centralizes the standard geometries, rank ladders, and
// calibration plumbing so the binaries stay focused on their output.
#pragma once

#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/calibration.hpp"
#include "core/dashboard.hpp"
#include "core/models.hpp"
#include "harvey/simulation.hpp"
#include "obs/log.hpp"
#include "proxy/proxy_app.hpp"
#include "util/table.hpp"

namespace hemo::bench {

/// The benchmark geometries, sized so full numerics and 2048-way
/// decompositions both stay tractable in this environment.
inline geometry::Geometry make_geometry(const std::string& name) {
  if (name == "cylinder") {
    return geometry::make_cylinder({.radius = 10, .length = 80});
  }
  if (name == "aorta") {
    return geometry::make_aorta({});
  }
  if (name == "cerebral") {
    return geometry::make_cerebral({.depth = 5});
  }
  throw PreconditionError("unknown benchmark geometry: " + name);
}

inline const std::vector<std::string>& geometry_names() {
  static const std::vector<std::string> names = {"cylinder", "aorta",
                                                 "cerebral"};
  return names;
}

/// The five systems of the paper's Table I (excluding the hyperthreaded
/// STREAM-only variant).
inline const std::vector<std::string>& system_abbrevs() {
  static const std::vector<std::string> names = {
      "TRC", "CSP-1", "CSP-2 Small", "CSP-2 EC", "CSP-2"};
  return names;
}

/// Rank ladder for strong-scaling plots, clipped to a system's tested
/// allocation size.
inline std::vector<index_t> rank_ladder(const cluster::InstanceProfile& p) {
  std::vector<index_t> ladder;
  for (index_t n = 1; n <= p.total_cores && n <= 512; n *= 2) {
    ladder.push_back(n);
  }
  if (ladder.back() != std::min<index_t>(p.total_cores, 512)) {
    ladder.push_back(std::min<index_t>(p.total_cores, 512));
  }
  return ladder;
}

inline harvey::SimulationOptions default_options() {
  harvey::SimulationOptions opts;
  opts.solver.tau = 0.8;
  return opts;
}

/// Caches instance calibrations across a bench run.
class CalibrationCache {
 public:
  const core::InstanceCalibration& get(const std::string& abbrev) {
    auto it = cache_.find(abbrev);
    if (it == cache_.end()) {
      HEMO_LOG_INFO("calibrating %s ...", abbrev.c_str());
      it = cache_
               .emplace(abbrev, core::calibrate_instance(
                                    cluster::instance_by_abbrev(abbrev)))
               .first;
    }
    return it->second;
  }

 private:
  std::map<std::string, core::InstanceCalibration> cache_;
};

/// Prints the standard bench header.
inline void print_header(const std::string& id, const std::string& what) {
  std::cout << "==========================================================\n"
            << id << ": " << what << "\n"
            << "==========================================================\n";
}

}  // namespace hemo::bench
