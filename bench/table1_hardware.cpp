// Reproduces Table I: hardware details for all tested instances.
#include "bench_common.hpp"

int main() {
  using namespace hemo;
  bench::print_header("Table I", "hardware details for all tested instances");

  TextTable t;
  t.set_header({"Field", "TRC", "CSP-1", "CSP-2 Small", "CSP-2 EC",
                "CSP-2"});
  auto row = [&](const std::string& field, auto getter) {
    std::vector<std::string> cells = {field};
    for (const auto& abbrev : bench::system_abbrevs()) {
      cells.push_back(getter(cluster::instance_by_abbrev(abbrev)));
    }
    t.add_row(std::move(cells));
  };

  row("CPU", [](const auto& p) { return p.cpu; });
  row("CPU Clock (GHz)",
      [](const auto& p) { return TextTable::num(p.clock_ghz, 2); });
  row("Core Count",
      [](const auto& p) { return TextTable::num(p.total_cores); });
  row("Cores per Node",
      [](const auto& p) { return TextTable::num(p.cores_per_node); });
  row("Memory per Node (GB)",
      [](const auto& p) {
        return TextTable::num(p.memory_per_node.value(), 0);
      });
  row("Interconnect (Gbit/s)",
      [](const auto& p) {
        return TextTable::num(p.interconnect.value(), 0);
      });
  row("Price ($/node-hr, synthetic)",
      [](const auto& p) {
        return TextTable::num(p.price_per_node_hour.value(), 2);
      });
  t.print(std::cout);

  std::cout << "\nPaper reference (Table I): TRC 2000 cores/40 per node/56"
               " Gbit/s; CSP-2 EC 144 cores/36 per node/100 Gbit/s.\n";
  return 0;
}
