// google-benchmark microbenchmarks of the real host measurements: STREAM
// kernels and the threaded pingpong — the measurement pipeline the paper
// runs on each cloud instance, demonstrated on the machine we have.
#include <benchmark/benchmark.h>

#include "microbench/pingpong.hpp"
#include "microbench/stream.hpp"

namespace {

using namespace hemo;

void BM_StreamCopy(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  for (auto _ : state) {
    const auto r = microbench::run_stream_local(n, 1);
    benchmark::DoNotOptimize(r.copy);
    state.counters["copy_MBps"] = r.copy;
    state.counters["triad_MBps"] = r.triad;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 8 * 2);
}
BENCHMARK(BM_StreamCopy)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 22);

void BM_PingPongLocal(benchmark::State& state) {
  const std::vector<real_t> sizes = {static_cast<real_t>(state.range(0))};
  for (auto _ : state) {
    const auto samples = microbench::run_pingpong_local(sizes, 20);
    benchmark::DoNotOptimize(samples[0].time_us);
    state.counters["one_way_us"] = samples[0].time_us;
  }
}
BENCHMARK(BM_PingPongLocal)->Arg(0)->Arg(4096)->Arg(1 << 20);

}  // namespace

BENCHMARK_MAIN();
