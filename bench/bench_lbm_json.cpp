// Machine-readable LBM kernel benchmark: MFLUPS per kernel variant x
// precision x path on a benchmark geometry, written as BENCH_lbm.json.
//
// This is the hot-path performance baseline of the repository: CI's
// perf-smoke job runs it on the cylinder and gates merges with
// tools/check_bench_regression.py against the committed baseline (soft
// gate — only large regressions fail, since shared CI runners are noisy).
//
// Usage:
//   bench_lbm_json [--geometry=cylinder] [--out=BENCH_lbm.json]
//                  [--repetitions=3] [--min-time=0.2] [--small]
//
// --small shrinks the geometry (and is recorded in the JSON, so the
// regression checker refuses to compare baselines of different shapes).
#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "geometry/generators.hpp"
#include "lbm/mesh.hpp"
#include "lbm/mesh_segments.hpp"
#include "lbm/solver.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace {

using namespace hemo;
using Clock = std::chrono::steady_clock;

struct Options {
  std::string geometry = "cylinder";
  std::string out = "BENCH_lbm.json";
  index_t repetitions = 3;
  double min_time = 0.2;
  bool small = false;
};

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    if (arg.rfind("--geometry=", 0) == 0) {
      opt.geometry = value("--geometry=");
    } else if (arg.rfind("--out=", 0) == 0) {
      opt.out = value("--out=");
    } else if (arg.rfind("--repetitions=", 0) == 0) {
      opt.repetitions = std::stol(value("--repetitions="));
    } else if (arg.rfind("--min-time=", 0) == 0) {
      opt.min_time = std::stod(value("--min-time="));
    } else if (arg == "--small") {
      opt.small = true;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      std::exit(2);
    }
  }
  HEMO_REQUIRE(opt.repetitions >= 1, "need at least one repetition");
  HEMO_REQUIRE(opt.min_time > 0.0, "min-time must be positive");
  return opt;
}

geometry::Geometry build_geometry(const Options& opt) {
  if (!opt.small) return bench::make_geometry(opt.geometry);
  if (opt.geometry == "cylinder") {
    return geometry::make_cylinder({.radius = 6, .length = 40});
  }
  if (opt.geometry == "cerebral") {
    return geometry::make_cerebral({.depth = 4});
  }
  return bench::make_geometry(opt.geometry);
}

struct VariantResult {
  lbm::KernelConfig config;
  real_t mflups = 0.0;   ///< best repetition
  index_t steps = 0;     ///< steps of the best repetition
  real_t seconds = 0.0;  ///< elapsed of the best repetition
};

/// Times one kernel variant: per repetition, step in pairs (keeping AA
/// parity even) until min_time elapses; report the best repetition's
/// MFLUPS, standard benchmark practice for noisy shared hosts.
template <typename T>
VariantResult time_variant(const lbm::FluidMesh& mesh,
                           const geometry::Geometry& geo,
                           const lbm::KernelConfig& config,
                           const Options& opt) {
  lbm::SolverParams params;
  params.kernel = config;
  lbm::Solver<T> solver(mesh, params, std::span(geo.inlets));
  solver.run(4);  // warmup: touch every page, settle the branch predictors

  VariantResult result;
  result.config = config;
  for (index_t rep = 0; rep < opt.repetitions; ++rep) {
    index_t steps = 0;
    const auto t0 = Clock::now();
    real_t elapsed = 0.0;
    do {
      solver.run(2);
      steps += 2;
      elapsed = std::chrono::duration<real_t>(Clock::now() - t0).count();
    } while (elapsed < opt.min_time);
    const real_t rate = lbm::mflups(mesh.num_points(), steps, elapsed);
    if (rate > result.mflups) {
      result.mflups = rate;
      result.steps = steps;
      result.seconds = elapsed;
    }
  }
  return result;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char ch : s) {
    if (ch == '"' || ch == '\\') out.push_back('\\');
    out.push_back(ch);
  }
  return out;
}

void write_json(std::ostream& os, const Options& opt,
                const lbm::FluidMesh& mesh, const lbm::SegmentedMesh& seg,
                const std::vector<VariantResult>& results) {
  const auto& c = seg.counts();
  os << "{\n";
  os << "  \"schema\": \"hemo-bench-lbm/1\",\n";
  os << "  \"host\": {\n";
  os << "    \"compiler\": \"" << json_escape(__VERSION__) << "\",\n";
  os << "    \"hardware_concurrency\": "
     << std::thread::hardware_concurrency() << ",\n";
#ifdef _OPENMP
  os << "    \"openmp\": true,\n";
  os << "    \"omp_max_threads\": " << omp_get_max_threads() << "\n";
#else
  os << "    \"openmp\": false,\n";
  os << "    \"omp_max_threads\": 1\n";
#endif
  os << "  },\n";
  os << "  \"config\": {\n";
  os << "    \"repetitions\": " << opt.repetitions << ",\n";
  os << "    \"min_time_seconds\": " << opt.min_time << ",\n";
  os << "    \"small\": " << (opt.small ? "true" : "false") << "\n";
  os << "  },\n";
  os << "  \"geometry\": {\n";
  os << "    \"name\": \"" << json_escape(opt.geometry) << "\",\n";
  os << "    \"points\": " << mesh.num_points() << ",\n";
  os << "    \"segments\": {\n";
  os << "      \"bulk_interior\": " << c.bulk_interior << ",\n";
  os << "      \"bulk_edge\": " << c.bulk_edge << ",\n";
  os << "      \"wall\": " << c.wall << ",\n";
  os << "      \"inlet\": " << c.inlet << ",\n";
  os << "      \"outlet\": " << c.outlet << ",\n";
  os << "      \"spans\": " << seg.spans().size() << ",\n";
  os << "      \"mean_span_length\": " << seg.mean_span_length() << ",\n";
  os << "      \"max_span_length\": " << seg.max_span_length() << "\n";
  os << "    }\n";
  os << "  },\n";
  os << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    os << "    {\"kernel\": \"" << lbm::kernel_name(r.config)
       << "\", \"propagation\": \"" << to_string(r.config.propagation)
       << "\", \"layout\": \"" << to_string(r.config.layout)
       << "\", \"precision\": \"" << to_string(r.config.precision)
       << "\", \"path\": \"" << to_string(r.config.path)
       << "\", \"mflups\": " << r.mflups << ", \"steps\": " << r.steps
       << ", \"seconds\": " << r.seconds << "}"
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  const geometry::Geometry geo = build_geometry(opt);
  const lbm::FluidMesh mesh = lbm::FluidMesh::build(geo.grid);
  const lbm::SegmentedMesh seg = lbm::SegmentedMesh::build(mesh);

  std::cerr << "bench_lbm_json: " << opt.geometry << ", "
            << mesh.num_points() << " points, "
            << seg.bulk_count() << " bulk-interior across "
            << seg.spans().size() << " spans (mean "
            << seg.mean_span_length() << ")\n";

  std::vector<VariantResult> results;
  for (const auto path :
       {lbm::KernelPath::kSegmented, lbm::KernelPath::kReference}) {
    for (const auto prop : {lbm::Propagation::kAB, lbm::Propagation::kAA}) {
      for (const auto layout : {lbm::Layout::kAoS, lbm::Layout::kSoA}) {
        for (const auto precision :
             {lbm::Precision::kDouble, lbm::Precision::kSingle}) {
          lbm::KernelConfig config;
          config.layout = layout;
          config.propagation = prop;
          config.precision = precision;
          config.path = path;
          const VariantResult r =
              precision == lbm::Precision::kDouble
                  ? time_variant<double>(mesh, geo, config, opt)
                  : time_variant<float>(mesh, geo, config, opt);
          std::cerr << "  " << lbm::kernel_name(config) << " "
                    << to_string(precision) << ": " << r.mflups
                    << " MFLUPS\n";
          results.push_back(r);
        }
      }
    }
  }

  std::ofstream os(opt.out);
  if (!os) {
    std::cerr << "cannot open " << opt.out << "\n";
    return 1;
  }
  write_json(os, opt, mesh, seg, results);
  std::cerr << "wrote " << opt.out << "\n";
  return 0;
}
