// Machine-readable LBM kernel benchmark v2: MFLUPS per kernel variant x
// SIMD backend x thread count on a benchmark geometry, each result paired
// with its measured roofline bound, written as BENCH_lbm.json.
//
// This is the hot-path performance baseline of the repository: CI's
// perf-smoke job runs it on the cylinder and gates merges with
// tools/check_bench_regression.py against the committed baseline (soft
// gate — only large regressions fail, since shared CI runners are noisy).
//
// Roofline methodology: each variant's bytes-per-FLUP comes from the
// paper's access counts (lbm/access_counts.hpp, Eq. 10 byte traffic over
// the mesh), the bandwidth from a real STREAM COPY run at the same thread
// count (microbench::run_stream_local), so
//   mflups_bound     = stream_copy_MBps / bytes_per_flup
//   roofline_fraction = mflups / mflups_bound.
// Fractions above 1 are possible — and recorded, not clamped — when the
// working set is cache-resident: the bound assumes DRAM streaming.
//
// Honesty rules: every result records the *effective* backend and thread
// count the solver actually ran (Solver::backend() / Solver::threads()),
// never the request. Variants whose hot path cannot use a vector backend
// (AoS layouts, the reference path) appear only under "scalar", and the
// regression checker refuses to compare results across different
// (backend, threads) coordinates.
//
// Usage:
//   bench_lbm_json [--geometry=cylinder] [--out=BENCH_lbm.json]
//                  [--repetitions=3] [--min-time=0.2] [--small]
//                  [--threads=1,2,4,8] [--backends=scalar,avx2,...]
//
// --small shrinks the geometry (and is recorded in the JSON, so the
// regression checker refuses to compare baselines of different shapes).
// --backends defaults to every backend detected on this host.
#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "geometry/generators.hpp"
#include "lbm/access_counts.hpp"
#include "lbm/mesh.hpp"
#include "lbm/mesh_segments.hpp"
#include "lbm/simd.hpp"
#include "lbm/solver.hpp"
#include "microbench/stream.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace {

using namespace hemo;
using Clock = std::chrono::steady_clock;

struct Options {
  std::string geometry = "cylinder";
  std::string out = "BENCH_lbm.json";
  index_t repetitions = 3;
  double min_time = 0.2;
  bool small = false;
  std::vector<index_t> threads = {1, 2, 4, 8};
  std::vector<lbm::Backend> backends;  // empty = detected
};

std::vector<index_t> parse_int_list(const std::string& csv) {
  std::vector<index_t> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    out.push_back(std::stol(item));
    HEMO_REQUIRE(out.back() >= 1, "thread counts must be positive");
  }
  HEMO_REQUIRE(!out.empty(), "empty thread list");
  return out;
}

std::vector<lbm::Backend> parse_backend_list(const std::string& csv) {
  std::vector<lbm::Backend> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const auto parsed = lbm::simd::parse_backend(item);
    HEMO_REQUIRE(parsed.has_value() && *parsed != lbm::Backend::kAuto,
                 "--backends takes scalar|sse2|avx2|avx512|neon");
    out.push_back(*parsed);
  }
  HEMO_REQUIRE(!out.empty(), "empty backend list");
  return out;
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    if (arg.rfind("--geometry=", 0) == 0) {
      opt.geometry = value("--geometry=");
    } else if (arg.rfind("--out=", 0) == 0) {
      opt.out = value("--out=");
    } else if (arg.rfind("--repetitions=", 0) == 0) {
      opt.repetitions = std::stol(value("--repetitions="));
    } else if (arg.rfind("--min-time=", 0) == 0) {
      opt.min_time = std::stod(value("--min-time="));
    } else if (arg.rfind("--threads=", 0) == 0) {
      opt.threads = parse_int_list(value("--threads="));
    } else if (arg.rfind("--backends=", 0) == 0) {
      opt.backends = parse_backend_list(value("--backends="));
    } else if (arg == "--small") {
      opt.small = true;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      std::exit(2);
    }
  }
  HEMO_REQUIRE(opt.repetitions >= 1, "need at least one repetition");
  HEMO_REQUIRE(opt.min_time > 0.0, "min-time must be positive");
  if (opt.backends.empty()) opt.backends = lbm::simd::detected_backends();
  for (const lbm::Backend b : opt.backends) {
    HEMO_REQUIRE(lbm::simd::cpu_supports(b) &&
                     lbm::simd::tile_kernel<float>(b, false, false) != nullptr,
                 "requested benchmark backend unavailable on this host");
  }
  return opt;
}

geometry::Geometry build_geometry(const Options& opt) {
  if (!opt.small) return bench::make_geometry(opt.geometry);
  if (opt.geometry == "cylinder") {
    return geometry::make_cylinder({.radius = 6, .length = 40});
  }
  if (opt.geometry == "cerebral") {
    return geometry::make_cerebral({.depth = 4});
  }
  return bench::make_geometry(opt.geometry);
}

struct VariantResult {
  lbm::KernelConfig config;
  lbm::Backend backend = lbm::Backend::kScalar;  ///< effective, not request
  index_t threads = 1;                           ///< effective team size
  real_t mflups = 0.0;                           ///< best repetition
  index_t steps = 0;             ///< steps of the best repetition
  real_t seconds = 0.0;          ///< elapsed of the best repetition
  real_t bytes_per_flup = 0.0;   ///< Eq. 10 traffic / point
  real_t mflups_bound = 0.0;     ///< STREAM-COPY roofline at this team size
  real_t roofline_fraction = 0.0;
};

/// Times one (variant, backend, threads) cell: per repetition, step in
/// pairs (keeping AA parity even) until min_time elapses; report the best
/// repetition's MFLUPS, standard benchmark practice for noisy shared
/// hosts.
template <typename T>
VariantResult time_variant(const lbm::FluidMesh& mesh,
                           const geometry::Geometry& geo,
                           const lbm::KernelConfig& config, index_t threads,
                           const Options& opt) {
  lbm::SolverParams params;
  params.kernel = config;
  params.num_threads = threads;
  lbm::Solver<T> solver(mesh, params, std::span(geo.inlets));
  solver.run(4);  // warmup: touch every page, settle the branch predictors

  VariantResult result;
  result.config = config;
  result.backend = solver.backend();
  result.threads = solver.threads();
  for (index_t rep = 0; rep < opt.repetitions; ++rep) {
    index_t steps = 0;
    const auto t0 = Clock::now();
    real_t elapsed = 0.0;
    do {
      solver.run(2);
      steps += 2;
      elapsed = std::chrono::duration<real_t>(Clock::now() - t0).count();
    } while (elapsed < opt.min_time);
    const real_t rate = lbm::mflups(mesh.num_points(), steps, elapsed);
    if (rate > result.mflups) {
      result.mflups = rate;
      result.steps = steps;
      result.seconds = elapsed;
    }
  }
  return result;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char ch : s) {
    if (ch == '"' || ch == '\\') out.push_back('\\');
    out.push_back(ch);
  }
  return out;
}

void write_backend_list(std::ostream& os,
                        const std::vector<lbm::Backend>& backends) {
  os << "[";
  for (std::size_t i = 0; i < backends.size(); ++i) {
    os << "\"" << to_string(backends[i]) << "\""
       << (i + 1 < backends.size() ? ", " : "");
  }
  os << "]";
}

void write_json(std::ostream& os, const Options& opt,
                const lbm::FluidMesh& mesh, const lbm::SegmentedMesh& seg,
                const std::map<index_t, real_t>& stream_copy,
                const std::vector<VariantResult>& results) {
  const auto& c = seg.counts();
  os << "{\n";
  os << "  \"schema\": \"hemo-bench-lbm/2\",\n";
  os << "  \"host\": {\n";
  os << "    \"compiler\": \"" << json_escape(__VERSION__) << "\",\n";
  os << "    \"hardware_concurrency\": "
     << std::thread::hardware_concurrency() << ",\n";
#ifdef _OPENMP
  os << "    \"openmp\": true,\n";
  os << "    \"omp_max_threads\": " << omp_get_max_threads() << ",\n";
#else
  os << "    \"openmp\": false,\n";
  os << "    \"omp_max_threads\": 1,\n";
#endif
  os << "    \"simd_compiled\": ";
  write_backend_list(os, lbm::simd::compiled_backends());
  os << ",\n";
  os << "    \"simd_detected\": ";
  write_backend_list(os, lbm::simd::detected_backends());
  os << "\n";
  os << "  },\n";
  os << "  \"config\": {\n";
  os << "    \"repetitions\": " << opt.repetitions << ",\n";
  os << "    \"min_time_seconds\": " << opt.min_time << ",\n";
  os << "    \"small\": " << (opt.small ? "true" : "false") << "\n";
  os << "  },\n";
  os << "  \"stream_copy_mbs\": {\n";
  for (auto it = stream_copy.begin(); it != stream_copy.end(); ++it) {
    os << "    \"" << it->first << "\": " << it->second
       << (std::next(it) != stream_copy.end() ? "," : "") << "\n";
  }
  os << "  },\n";
  os << "  \"geometry\": {\n";
  os << "    \"name\": \"" << json_escape(opt.geometry) << "\",\n";
  os << "    \"points\": " << mesh.num_points() << ",\n";
  os << "    \"segments\": {\n";
  os << "      \"bulk_interior\": " << c.bulk_interior << ",\n";
  os << "      \"bulk_edge\": " << c.bulk_edge << ",\n";
  os << "      \"wall\": " << c.wall << ",\n";
  os << "      \"inlet\": " << c.inlet << ",\n";
  os << "      \"outlet\": " << c.outlet << ",\n";
  os << "      \"spans\": " << seg.spans().size() << ",\n";
  os << "      \"mean_span_length\": " << seg.mean_span_length() << ",\n";
  os << "      \"max_span_length\": " << seg.max_span_length() << "\n";
  os << "    }\n";
  os << "  },\n";
  os << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    os << "    {\"kernel\": \"" << lbm::kernel_name(r.config)
       << "\", \"propagation\": \"" << to_string(r.config.propagation)
       << "\", \"layout\": \"" << to_string(r.config.layout)
       << "\", \"precision\": \"" << to_string(r.config.precision)
       << "\", \"path\": \"" << to_string(r.config.path)
       << "\", \"backend\": \"" << to_string(r.backend)
       << "\", \"threads\": " << r.threads
       << ", \"mflups\": " << r.mflups << ", \"steps\": " << r.steps
       << ", \"seconds\": " << r.seconds
       << ", \"bytes_per_flup\": " << r.bytes_per_flup
       << ", \"mflups_bound\": " << r.mflups_bound
       << ", \"roofline_fraction\": " << r.roofline_fraction << "}"
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  const geometry::Geometry geo = build_geometry(opt);
  const lbm::FluidMesh mesh = lbm::FluidMesh::build(geo.grid);
  const lbm::SegmentedMesh seg = lbm::SegmentedMesh::build(mesh);

  std::cerr << "bench_lbm_json: " << opt.geometry << ", "
            << mesh.num_points() << " points, "
            << seg.bulk_count() << " bulk-interior across "
            << seg.spans().size() << " spans (mean "
            << seg.mean_span_length() << ")\n";

  // One real STREAM COPY measurement per requested team size — the
  // denominator of every roofline fraction at that thread count.
  std::map<index_t, real_t> stream_copy;
  for (const index_t t : opt.threads) {
    stream_copy[t] = microbench::run_stream_local(1 << 22, 3, t).copy;
    std::cerr << "  stream copy @" << t << " threads: " << stream_copy[t]
              << " MB/s\n";
  }

  std::vector<VariantResult> results;
  for (const auto path :
       {lbm::KernelPath::kSegmented, lbm::KernelPath::kReference}) {
    for (const auto prop : {lbm::Propagation::kAB, lbm::Propagation::kAA}) {
      for (const auto layout : {lbm::Layout::kAoS, lbm::Layout::kSoA}) {
        for (const auto precision :
             {lbm::Precision::kDouble, lbm::Precision::kSingle}) {
          // Vector backends exist only on the segmented SoA hot path;
          // everything else runs scalar and is recorded once, not
          // duplicated under backend names it cannot execute.
          const bool vectorizable = path == lbm::KernelPath::kSegmented &&
                                    layout == lbm::Layout::kSoA;
          for (const lbm::Backend backend : opt.backends) {
            if (!vectorizable && backend != lbm::Backend::kScalar) continue;
            for (const index_t threads : opt.threads) {
              lbm::KernelConfig config;
              config.layout = layout;
              config.propagation = prop;
              config.precision = precision;
              config.path = path;
              config.backend = backend;
              VariantResult r =
                  precision == lbm::Precision::kDouble
                      ? time_variant<double>(mesh, geo, config, threads, opt)
                      : time_variant<float>(mesh, geo, config, threads, opt);
              r.bytes_per_flup =
                  lbm::serial_bytes_per_step(mesh, config) /
                  static_cast<real_t>(mesh.num_points());
              r.mflups_bound = stream_copy.at(threads) / r.bytes_per_flup;
              r.roofline_fraction = r.mflups / r.mflups_bound;
              std::cerr << "  " << lbm::kernel_name(config) << " "
                        << to_string(precision) << " "
                        << to_string(r.backend) << " t" << r.threads << ": "
                        << r.mflups << " MFLUPS (rf "
                        << r.roofline_fraction << ")\n";
              results.push_back(r);
            }
          }
        }
      }
    }
  }

  std::ofstream os(opt.out);
  if (!os) {
    std::cerr << "cannot open " << opt.out << "\n";
    return 1;
  }
  write_json(os, opt, mesh, seg, stream_copy, results);
  std::cerr << "wrote " << opt.out << "\n";
  return 0;
}
