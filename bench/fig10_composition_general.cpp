// Reproduces Fig. 10: composition of maximum task runtime per core count
// as predicted by the GENERALIZED model for HARVEY's cylinder on CSP-2
// (no EC), splitting communication into its bandwidth and latency terms.
// Expected shape: the bulk of internodal communication time is latency,
// not insufficient bandwidth.
#include "bench_common.hpp"

int main() {
  using namespace hemo;
  bench::print_header(
      "Fig. 10",
      "generalized-model runtime composition, cylinder on CSP-2 (no EC)");

  bench::CalibrationCache cache;
  const auto& cal = cache.get("CSP-2");
  const auto& profile = cluster::instance_by_abbrev("CSP-2");
  harvey::Simulation sim(bench::make_geometry("cylinder"),
                         bench::default_options());
  const std::vector<index_t> cal_counts = {2, 4, 8, 16, 32};
  const core::WorkloadCalibration wcal =
      core::calibrate_workload(sim, cal_counts, profile.cores_per_node);

  TextTable t;
  t.set_header({"Ranks", "Memory (us)", "Comm bandwidth (us)",
                "Comm latency (us)", "Total (us)", "Latency share of comm"});
  for (index_t n = 2; n <= 144; n *= 2) {
    const auto p =
        core::predict_general(wcal, cal, n, profile.cores_per_node);
    const real_t comm =
        p.t_comm.value() > 0.0 ? p.t_comm.value() : 1.0;
    t.add_row({TextTable::num(n),
               TextTable::num(p.t_mem.value() * 1e6, 1),
               TextTable::num(p.t_comm_bw.value() * 1e6, 2),
               TextTable::num(p.t_comm_lat.value() * 1e6, 1),
               TextTable::num(p.step_seconds.value() * 1e6, 1),
               TextTable::num(p.t_comm_lat.value() / comm, 3)});
  }
  t.print(std::cout);

  std::cout << "\nExpected shape: latency term dominates the communication"
               " time at every multi-node rank count.\n";
  return 0;
}
