// Reproduces Table II: STREAM-fit sustainable node memory bandwidth at one
// thread per physical core vs the published maximum, with the percentage
// difference. Paper values: TRC -27.6 %, CSP-1 +9.2 %, CSP-2 -35.9 %,
// CSP-2 EC -29.1 %.
#include "fit/two_line.hpp"
#include "microbench/stream.hpp"

#include "bench_common.hpp"

int main() {
  using namespace hemo;
  bench::print_header("Table II",
                      "STREAM sustainable vs published node bandwidth");

  TextTable t;
  t.set_header({"Bandwidth Type", "TRC", "CSP-1", "CSP-2", "CSP-2 EC"});
  std::vector<std::string> systems = {"TRC", "CSP-1", "CSP-2", "CSP-2 EC"};

  std::vector<std::string> published = {"Bandwidth Published (MB/s)"};
  std::vector<std::string> stream = {"STREAM (MB/s)"};
  std::vector<std::string> diff = {"Difference"};
  for (const auto& abbrev : systems) {
    const auto& p = cluster::instance_by_abbrev(abbrev);
    const auto sweep = microbench::simulated_stream_sweep(
        p, p.cores_per_node);  // one thread per physical core
    std::vector<real_t> xs, ys;
    for (const auto& s : sweep) {
      xs.push_back(static_cast<real_t>(s.threads));
      ys.push_back(s.bandwidth_mbs);
    }
    const fit::TwoLineModel fit_model = fit::fit_two_line(xs, ys);
    const real_t sustained =
        fit_model(static_cast<real_t>(p.cores_per_node));
    published.push_back(TextTable::num(p.published_bw.value(), 0));
    stream.push_back(TextTable::num(sustained, 0));
    diff.push_back(TextTable::num((sustained - p.published_bw.value()) /
                                      p.published_bw.value() * 100.0,
                                  2) +
                   "%");
  }
  t.add_row(std::move(published));
  t.add_row(std::move(stream));
  t.add_row(std::move(diff));
  t.print(std::cout);

  std::cout << "\nPaper Table II differences: TRC -27.57%, CSP-1 +9.23%,"
               " CSP-2 -35.92%, CSP-2 EC -29.07%.\n"
               "Expected shape: sustained bandwidth 20-40% below published"
               " except CSP-1 (above).\n";
  return 0;
}
