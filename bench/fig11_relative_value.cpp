// Reproduces Fig. 11: heatmap of relative value r_{B,A} (Eq. 17) of the
// computing infrastructures for HARVEY's aorta at 2048 cores, as predicted
// by the generalized performance model. The paper's aorta runs at
// patient-scale resolution, so the coarse calibration is evaluated at a
// 256x refined point count (DESIGN.md; see core::scale_resolution).
// Paper values: r(CSP-2,TRC)=1.2323, r(EC,TRC)=1.3733, r(EC,CSP-2)=1.1144.
#include "bench_common.hpp"

int main() {
  using namespace hemo;
  bench::print_header(
      "Fig. 11", "relative value r_{B,A}, aorta at 2048 cores (general"
                 " model)");

  harvey::Simulation sim(bench::make_geometry("aorta"),
                         bench::default_options());
  const std::vector<index_t> cal_counts = {2, 4, 8, 16, 32, 64};
  const core::WorkloadCalibration coarse =
      core::calibrate_workload(sim, cal_counts, 36);
  const core::WorkloadCalibration wcal =
      core::scale_resolution(coarse, 256.0);

  const std::vector<std::string> systems = {"TRC", "CSP-2", "CSP-2 EC"};
  bench::CalibrationCache cache;
  std::vector<core::ModelPrediction> preds;
  for (const auto& abbrev : systems) {
    const auto& profile = cluster::instance_by_abbrev(abbrev);
    preds.push_back(core::predict_general(wcal, cache.get(abbrev), 2048,
                                          profile.cores_per_node));
  }

  TextTable t;
  t.set_header({"2048 Cores - Aorta", "TRC", "CSP-2", "CSP-2 EC"});
  for (std::size_t b = 0; b < systems.size(); ++b) {
    std::vector<std::string> row = {systems[b]};
    for (std::size_t a = 0; a < systems.size(); ++a) {
      row.push_back(
          TextTable::num(core::relative_value(preds[b], preds[a]), 4));
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);

  std::cout << "\nPaper Fig. 11:\n"
               "| TRC      | 1.0000 | 0.8115 | 0.7282 |\n"
               "| CSP-2    | 1.2323 | 1.0000 | 0.8973 |\n"
               "| CSP-2 EC | 1.3733 | 1.1144 | 1.0000 |\n";
  return 0;
}
