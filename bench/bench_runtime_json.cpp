// Machine-readable strong-scaling benchmark of the threaded parallel
// runtime: measured MFLUPS, per-rank communication share, and busy-time
// imbalance per rank count, written as BENCH_runtime.json.
//
// Complements bench_lbm_json (serial kernel hot path) with the real
// threaded execution the paper's scaling figures are about: CI's
// perf-smoke job runs it argument-free and gates merges through
// tools/check_bench_regression.py against the committed baseline (soft
// gate — strong-scaling numbers on shared runners with unknown core
// counts are noisy, so only order-of-magnitude collapses fail).
//
// Usage:
//   bench_runtime_json [--geometry=cylinder] [--out=BENCH_runtime.json]
//                      [--repetitions=3] [--min-time=0.2] [--small]
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "decomp/partition.hpp"
#include "geometry/generators.hpp"
#include "lbm/mesh.hpp"
#include "lbm/solver.hpp"
#include "runtime/parallel_solver.hpp"

namespace {

using namespace hemo;
using Clock = std::chrono::steady_clock;

struct Options {
  std::string geometry = "cylinder";
  std::string out = "BENCH_runtime.json";
  index_t repetitions = 3;
  double min_time = 0.2;
  bool small = false;
};

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    if (arg.rfind("--geometry=", 0) == 0) {
      opt.geometry = value("--geometry=");
    } else if (arg.rfind("--out=", 0) == 0) {
      opt.out = value("--out=");
    } else if (arg.rfind("--repetitions=", 0) == 0) {
      opt.repetitions = std::stol(value("--repetitions="));
    } else if (arg.rfind("--min-time=", 0) == 0) {
      opt.min_time = std::stod(value("--min-time="));
    } else if (arg == "--small") {
      opt.small = true;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      std::exit(2);
    }
  }
  HEMO_REQUIRE(opt.repetitions >= 1, "need at least one repetition");
  HEMO_REQUIRE(opt.min_time > 0.0, "min-time must be positive");
  return opt;
}

geometry::Geometry build_geometry(const Options& opt) {
  if (!opt.small) return bench::make_geometry(opt.geometry);
  if (opt.geometry == "cylinder") {
    return geometry::make_cylinder({.radius = 6, .length = 40});
  }
  if (opt.geometry == "cerebral") {
    return geometry::make_cerebral({.depth = 4});
  }
  return bench::make_geometry(opt.geometry);
}

struct ScalingResult {
  index_t ranks = 0;
  real_t mflups = 0.0;   ///< best repetition
  index_t steps = 0;     ///< steps of the best repetition
  real_t seconds = 0.0;  ///< elapsed of the best repetition
  real_t imbalance = 1.0;            ///< max/mean cumulative busy time
  real_t comm_share_mean = 0.0;      ///< mean of per-rank t_comm/busy
  real_t comm_share_max = 0.0;
  std::vector<real_t> comm_share;    ///< per rank
};

ScalingResult time_ranks(const lbm::FluidMesh& mesh,
                         const geometry::Geometry& geo, index_t n_ranks,
                         const Options& opt) {
  lbm::SolverParams params;
  params.tau = 0.8;
  const auto part =
      decomp::make_partition(mesh, n_ranks, decomp::Strategy::kRcb);
  runtime::ParallelSolver solver(mesh, part, params, std::span(geo.inlets));
  solver.run(4);  // warmup: touch every page, spin up the thread team

  ScalingResult result;
  result.ranks = n_ranks;
  for (index_t rep = 0; rep < opt.repetitions; ++rep) {
    index_t steps = 0;
    const auto t0 = Clock::now();
    real_t elapsed = 0.0;
    do {
      solver.run(2);
      steps += 2;
      elapsed = std::chrono::duration<real_t>(Clock::now() - t0).count();
    } while (elapsed < opt.min_time);
    const real_t rate = lbm::mflups(mesh.num_points(), steps, elapsed);
    if (rate > result.mflups) {
      result.mflups = rate;
      result.steps = steps;
      result.seconds = elapsed;
    }
  }

  // Communication share and imbalance over the cumulative run (warmup
  // included; the shares converge immediately).
  real_t max_busy = 0.0, sum_busy = 0.0;
  for (const auto& timing : solver.timings()) {
    const real_t busy = timing.busy_s();
    result.comm_share.push_back(busy > 0.0 ? timing.comm_s() / busy : 0.0);
    max_busy = std::max(max_busy, busy);
    sum_busy += busy;
  }
  for (const real_t share : result.comm_share) {
    result.comm_share_mean += share;
    result.comm_share_max = std::max(result.comm_share_max, share);
  }
  result.comm_share_mean /= static_cast<real_t>(result.comm_share.size());
  const real_t mean_busy = sum_busy / static_cast<real_t>(n_ranks);
  result.imbalance = mean_busy > 0.0 ? max_busy / mean_busy : 1.0;
  return result;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char ch : s) {
    if (ch == '"' || ch == '\\') out.push_back('\\');
    out.push_back(ch);
  }
  return out;
}

void write_json(std::ostream& os, const Options& opt,
                const lbm::FluidMesh& mesh,
                const std::vector<ScalingResult>& results) {
  os << "{\n";
  os << "  \"schema\": \"hemo-bench-runtime/1\",\n";
  os << "  \"host\": {\n";
  os << "    \"compiler\": \"" << json_escape(__VERSION__) << "\",\n";
  os << "    \"hardware_concurrency\": "
     << std::thread::hardware_concurrency() << "\n";
  os << "  },\n";
  os << "  \"config\": {\n";
  os << "    \"repetitions\": " << opt.repetitions << ",\n";
  os << "    \"min_time_seconds\": " << opt.min_time << ",\n";
  os << "    \"small\": " << (opt.small ? "true" : "false") << "\n";
  os << "  },\n";
  os << "  \"geometry\": {\n";
  os << "    \"name\": \"" << json_escape(opt.geometry) << "\",\n";
  os << "    \"points\": " << mesh.num_points() << "\n";
  os << "  },\n";
  os << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    os << "    {\"ranks\": " << r.ranks << ", \"mflups\": " << r.mflups
       << ", \"steps\": " << r.steps << ", \"seconds\": " << r.seconds
       << ", \"imbalance\": " << r.imbalance
       << ", \"comm_share_mean\": " << r.comm_share_mean
       << ", \"comm_share_max\": " << r.comm_share_max
       << ", \"comm_share\": [";
    for (std::size_t s = 0; s < r.comm_share.size(); ++s) {
      os << (s ? ", " : "") << r.comm_share[s];
    }
    os << "]}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  const geometry::Geometry geo = build_geometry(opt);
  const lbm::FluidMesh mesh = lbm::FluidMesh::build(geo.grid);

  std::cerr << "bench_runtime_json: " << opt.geometry << ", "
            << mesh.num_points() << " points, "
            << std::thread::hardware_concurrency() << " hardware threads\n";

  std::vector<ScalingResult> results;
  for (const index_t ranks : {1, 2, 4, 8}) {
    const ScalingResult r = time_ranks(mesh, geo, ranks, opt);
    std::cerr << "  ranks=" << ranks << ": " << r.mflups
              << " MFLUPS, imbalance " << r.imbalance << ", comm share "
              << r.comm_share_mean << "\n";
    results.push_back(r);
  }

  std::ofstream os(opt.out);
  if (!os) {
    std::cerr << "cannot open " << opt.out << "\n";
    return 1;
  }
  write_json(os, opt, mesh, results);
  std::cerr << "wrote " << opt.out << "\n";
  return 0;
}
