// Reproduces Table III: microbenchmark curve-fit parameters (a1, a2, a3 of
// Eq. 8; b, l of Eq. 12) recovered by the calibration pipeline, printed
// next to the paper's reported values.
#include "bench_common.hpp"

int main() {
  using namespace hemo;
  bench::print_header("Table III",
                      "microbenchmark fit parameters per system");

  struct PaperRow {
    const char* abbrev;
    real_t a1, a2, a3, b, l;
    bool has_comm;
  };
  const std::vector<PaperRow> paper = {
      {"TRC", 6768.24, 369.16, 6.39, 5066.57, 2.01, true},
      {"CSP-2", 7790.02, 1264.80, 9.00, 1804.84, 23.59, true},
      {"CSP-2 EC", 7605.85, 1269.95, 11.00, 2016.77, 20.94, true},
      {"CSP-2 Hyp.", 8629.29, -93.43, 9.87, 0, 0, false},
      {"CSP-1", 18092.64, -62.79, 4.15, 0, 0, false},
  };

  bench::CalibrationCache cache;
  TextTable t;
  t.set_header({"System", "a1", "a2", "a3", "b_inter", "l_inter", "Cores"});
  for (const auto& row : paper) {
    const auto& cal = cache.get(row.abbrev);
    const auto& profile = cluster::instance_by_abbrev(row.abbrev);
    t.add_row({row.abbrev, TextTable::num(cal.memory.a1, 2),
               TextTable::num(cal.memory.a2, 2),
               TextTable::num(cal.memory.a3, 2),
               row.has_comm ? TextTable::num(cal.inter.bandwidth, 2) : "N/A",
               row.has_comm ? TextTable::num(cal.inter.latency, 2) : "N/A",
               TextTable::num(profile.cores_per_node *
                              (row.abbrev == std::string("CSP-2 Hyp.")
                                   ? profile.vcpus_per_core
                                   : 1))});
  }
  t.print(std::cout);

  std::cout << "\nPaper Table III for comparison:\n";
  TextTable ref;
  ref.set_header({"System", "a1", "a2", "a3", "b_inter", "l_inter"});
  for (const auto& row : paper) {
    ref.add_row({row.abbrev, TextTable::num(row.a1, 2),
                 TextTable::num(row.a2, 2), TextTable::num(row.a3, 2),
                 row.has_comm ? TextTable::num(row.b, 2) : "N/A",
                 row.has_comm ? TextTable::num(row.l, 2) : "N/A"});
  }
  ref.print(std::cout);
  std::cout << "\nExpected: recovered parameters within ~10-25% of the"
               " paper's (the interconnect nonlinearity biases b and l"
               " slightly).\n";
  return 0;
}
