// Reproduces Fig. 8: model predictions vs actual lbm-proxy-app SoA kernel
// performance (AA and AB, with and without inner-loop unrolling) on CSP-2.
// Expected shape: consistent overprediction; the AA-over-AB improvement
// appears only for the unrolled kernels.
#include "bench_common.hpp"

int main() {
  using namespace hemo;
  bench::print_header(
      "Fig. 8",
      "model vs actual, proxy SoA kernels (AA/AB x unroll) on CSP-2");

  bench::CalibrationCache cache;
  const auto& cal = cache.get("CSP-2");
  const auto& profile = cluster::instance_by_abbrev("CSP-2");
  const std::vector<index_t> cal_counts = {2, 4, 8, 16, 32};

  for (const auto& kernel : proxy::fig8_variants()) {
    proxy::ProxyApp app(proxy::ProxyParams{}, kernel);
    auto& sim = app.simulation();
    const core::WorkloadCalibration wcal = core::calibrate_workload(
        sim, cal_counts, profile.cores_per_node);

    std::cout << "\nkernel: " << lbm::kernel_name(kernel) << "\n";
    TextTable t;
    t.set_header({"Ranks", "Measured MFLUPS", "Direct model",
                  "General model"});
    for (index_t n = 4; n <= 144; n *= 2) {
      const auto measured = app.measure(profile, n, 200);
      const auto direct = core::predict_direct(
          sim.plan(n, profile.cores_per_node), cal);
      const auto general = core::predict_general(
          wcal, cal, n, profile.cores_per_node);
      t.add_row({TextTable::num(n),
                 TextTable::num(measured.mflups.value(), 2),
                 TextTable::num(direct.mflups.value(), 2),
                 TextTable::num(general.mflups.value(), 2)});
    }
    t.print(std::cout);
  }
  std::cout << "\nExpected shape: models overpredict everywhere (they do"
               " not see loop overhead);\nAA beats AB only for the unrolled"
               " kernels.\n";
  return 0;
}
