// Reproduces Fig. 9: composition of maximum task runtime per core count as
// predicted by the DIRECT model for HARVEY's cylinder on CSP-2 (no EC):
// memory accesses vs intranodal vs internodal communication. Expected
// shape: memory dominates at low ranks; internodal communication grows to
// dominance; intranodal stays negligible.
#include "bench_common.hpp"

int main() {
  using namespace hemo;
  bench::print_header(
      "Fig. 9",
      "direct-model runtime composition, cylinder on CSP-2 (no EC)");

  bench::CalibrationCache cache;
  const auto& cal = cache.get("CSP-2");
  const auto& profile = cluster::instance_by_abbrev("CSP-2");
  harvey::Simulation sim(bench::make_geometry("cylinder"),
                         bench::default_options());

  TextTable t;
  t.set_header({"Ranks", "Memory (us)", "Intranodal (us)",
                "Internodal (us)", "Total (us)", "Comm share"});
  for (index_t n = 2; n <= 144; n *= 2) {
    const auto p = core::predict_direct(
        sim.plan(n, profile.cores_per_node), cal);
    t.add_row({TextTable::num(n),
               TextTable::num(p.t_mem.value() * 1e6, 1),
               TextTable::num(p.t_intra.value() * 1e6, 2),
               TextTable::num(p.t_inter.value() * 1e6, 1),
               TextTable::num(p.step_seconds.value() * 1e6, 1),
               TextTable::num(p.t_comm / p.step_seconds, 3)});
  }
  t.print(std::cout);

  std::cout << "\nExpected shape: red (memory) shrinks ~1/ranks; purple"
               " (internodal) takes over past one node;\ngreen (intranodal)"
               " much smaller than both throughout.\n";
  return 0;
}
