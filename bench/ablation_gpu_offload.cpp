// Ablation: GPU offload and the CPU-GPU transfer term of Eq. 2.
//
// Compares, on the GPU-equipped CSP-2 variant, CPU execution vs GPU
// execution (one task per device) across node counts, with the direct
// model's predictions alongside — including the t_CPU-GPU term. Also
// contrasts the economics: the GPU instance costs ~4x per node-hour.
#include "bench_common.hpp"

int main() {
  using namespace hemo;
  bench::print_header("Ablation",
                      "GPU offload vs CPU on CSP-2 GPU (Eq. 2 t_CPU-GPU)");

  const auto& profile = cluster::instance_by_abbrev("CSP-2 GPU");
  const auto cal = core::calibrate_instance(profile);
  harvey::Simulation sim(bench::make_geometry("aorta"),
                         bench::default_options());

  TextTable t;
  t.set_header({"Nodes", "CPU MFLUPS (36/node)", "GPU MFLUPS (4/node)",
                "GPU model", "PCIe share", "GPU speedup"});
  for (index_t nodes : {1, 2, 4}) {
    const index_t cpu_tasks = nodes * 36;
    const index_t gpu_tasks = nodes * 4;
    const auto cpu = sim.measure(profile, cpu_tasks, 200);
    const auto gpu = sim.measure_gpu(profile, gpu_tasks, 200);
    const auto pred = core::predict_direct(sim.gpu_plan(gpu_tasks, 4), cal);
    const real_t pcie_share =
        pred.t_xfer.value() / std::max(pred.step_seconds.value(), 1e-30);
    t.add_row({TextTable::num(nodes),
               TextTable::num(cpu.mflups.value(), 1),
               TextTable::num(gpu.mflups.value(), 1),
               TextTable::num(pred.mflups.value(), 1),
               TextTable::num(pcie_share, 3),
               TextTable::num(gpu.mflups / cpu.mflups, 2)});
  }
  t.print(std::cout);

  std::cout << "\nCost context: CSP-2 GPU lists at $"
            << TextTable::num(profile.price_per_node_hour.value(), 2)
            << "/node-hr vs $"
            << TextTable::num(cluster::instance_by_abbrev("CSP-2 EC")
                                  .price_per_node_hour.value(),
                              2)
            << " for the CPU-only EC instance.\n"
               "Expected: large single-node GPU speedups; PCIe staging and"
               " interconnect latency erode multi-node gains.\n";
  return 0;
}
