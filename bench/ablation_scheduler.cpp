// Ablation: what does model-driven placement buy over naive placement?
//
// The same 50-job aorta + cerebral campaign is executed three times under
// identical seeds and capacity, changing only the placement policy:
//
//   model     the dashboard recommendation (cheapest option predicted to
//             meet each job's deadline), refined mid-campaign;
//   cheapest  always the lowest $/hour hardware at the smallest feasible
//             allocation — a cost-conscious user without a model;
//   biggest   always the largest feasible allocation on premium hardware —
//             a deadline-anxious user without a model.
//
// Expected (paper §IV): the model spends the least in total dollars at a
// time-to-solution no worse than the naive cost-conscious baseline.
#include <iostream>

#include "bench_common.hpp"
#include "sched/executor.hpp"

namespace {

using namespace hemo;

std::vector<sched::CampaignJobSpec> make_jobs() {
  std::vector<sched::CampaignJobSpec> jobs;
  for (index_t i = 0; i < 50; ++i) {
    sched::CampaignJobSpec spec;
    spec.id = i + 1;
    spec.geometry = (i % 2 == 0) ? "aorta" : "cerebral";
    spec.timesteps = 800000 + 300000 * (i % 5);
    spec.resolution_factor = (i % 5 == 4) ? 8.0 : 1.0;
    spec.allow_spot = (i % 4 == 2);
    // A per-job deadline generous enough for mid-size allocations but out
    // of reach of the very smallest ones — the regime where placement
    // choices actually differ.
    spec.deadline_s = units::Seconds(24.0 * 3600.0);
    jobs.push_back(spec);
  }
  return jobs;
}

sched::CampaignReport run_policy(sched::Policy policy) {
  std::vector<const cluster::InstanceProfile*> profiles;
  for (const auto& p : cluster::default_catalog()) {
    if (!p.gpu && p.abbrev != "CSP-2 Hyp.") profiles.push_back(&p);
  }
  sched::SchedulerConfig config;
  config.policy = policy;
  config.objective = core::Objective::kDeadline;
  config.core_counts = {16, 36, 72, 144};
  sched::CampaignScheduler scheduler(std::move(profiles), config);
  const std::vector<index_t> cal_counts = {2, 4, 8, 16, 32};
  scheduler.register_workload("aorta", bench::make_geometry("aorta"),
                              cal_counts);
  scheduler.register_workload("cerebral", bench::make_geometry("cerebral"),
                              cal_counts);

  sched::EngineConfig engine_config;
  engine_config.n_workers = 4;
  engine_config.seed = 1234;
  sched::CampaignEngine engine(scheduler, engine_config);
  return engine.run(make_jobs());
}

}  // namespace

int main() {
  std::cout << "Scheduler ablation: model-driven vs naive placement\n"
            << "50 jobs (aorta + cerebral, mixed resolution/tenancy), "
               "24 h deadlines\n\n";

  struct Row {
    const char* name;
    sched::Policy policy;
    sched::CampaignReport report;
  };
  std::vector<Row> rows = {
      {"model", sched::Policy::kModelDriven, {}},
      {"cheapest", sched::Policy::kCheapestRate, {}},
      {"biggest", sched::Policy::kBiggest, {}},
  };
  for (Row& row : rows) row.report = run_policy(row.policy);

  TextTable t;
  t.set_header({"Policy", "Completed", "Failed", "Total $", "Makespan (h)",
                "MLUP/$", "Requeues", "Preempt."});
  for (const Row& row : rows) {
    t.add_row({row.name, TextTable::num(row.report.n_completed),
               TextTable::num(row.report.n_failed),
               TextTable::num(row.report.total_dollars.value(), 2),
               TextTable::num(row.report.makespan_s.value() / 3600.0, 2),
               TextTable::num(row.report.mlups_per_dollar.value(), 1),
               TextTable::num(row.report.total_requeues),
               TextTable::num(row.report.total_preemptions)});
  }
  t.print(std::cout);

  const auto& model = rows[0].report;
  const auto& cheapest = rows[1].report;
  const auto& biggest = rows[2].report;
  const bool cheaper = model.total_dollars < cheapest.total_dollars &&
                       model.total_dollars < biggest.total_dollars;
  const bool no_slower = model.makespan_s <= cheapest.makespan_s;
  std::cout << "\nmodel-driven lowest total $: " << (cheaper ? "yes" : "NO")
            << "; time-to-solution <= cheapest baseline: "
            << (no_slower ? "yes" : "NO") << "\n";
  return (cheaper && no_slower) ? 0 : 1;
}
