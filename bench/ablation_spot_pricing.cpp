// Ablation: on-demand vs spot (preemptible) pricing for the aorta campaign.
// Spot capacity discounts the rate but inflates expected wall time through
// preemption/restart losses; the crossover depends on job length and the
// preemption rate.
#include "bench_common.hpp"

int main() {
  using namespace hemo;
  bench::print_header("Ablation",
                      "on-demand vs spot pricing (aorta on CSP-2 EC)");

  std::vector<const cluster::InstanceProfile*> profiles = {
      &cluster::instance_by_abbrev("CSP-2 EC")};
  core::Dashboard dashboard(std::move(profiles));
  harvey::Simulation sim(bench::make_geometry("aorta"),
                         bench::default_options());
  const std::vector<index_t> cal_counts = {2, 4, 8, 16, 32, 64};
  const auto workload = core::calibrate_workload(sim, cal_counts, 36);

  const std::vector<index_t> cores = {36};
  core::SpotOptions spot;  // defaults: 70% discount, 0.15 preempt/hr

  TextTable t;
  t.set_header({"Timesteps", "On-demand $", "On-demand h", "Spot $",
                "Spot h", "Spot saves"});
  for (index_t steps : {100000, 1000000, 10000000}) {
    const auto rows =
        dashboard.evaluate(workload, core::JobSpec{steps}, cores);
    const auto& od = rows.front();
    const auto sp = core::apply_spot_pricing(od, spot);
    t.add_row({TextTable::num(steps),
               TextTable::num(od.total_dollars.value(), 2),
               TextTable::num(od.time_to_solution_s.value() / 3600.0, 2),
               TextTable::num(sp.total_dollars.value(), 2),
               TextTable::num(sp.time_to_solution_s.value() / 3600.0, 2),
               TextTable::num(
                   (1.0 - sp.total_dollars / od.total_dollars) * 100.0, 1) +
                   "%"});
  }
  t.print(std::cout);

  std::cout << "\nHigh-preemption regime (6/hr, heavy restarts):\n";
  core::SpotOptions brutal;
  brutal.discount = 0.10;
  brutal.preemptions_per_hour = units::PerHour(6.0);
  brutal.restart_overhead_s = units::Seconds(3000.0);
  brutal.checkpoint_interval_s = units::Seconds(3600.0);
  TextTable t2;
  t2.set_header({"Timesteps", "On-demand $", "Spot $", "Verdict"});
  for (index_t steps : {1000000, 10000000}) {
    const auto rows =
        dashboard.evaluate(workload, core::JobSpec{steps}, cores);
    const auto& od = rows.front();
    const auto sp = core::apply_spot_pricing(od, brutal);
    t2.add_row({TextTable::num(steps),
                TextTable::num(od.total_dollars.value(), 2),
                TextTable::num(sp.total_dollars.value(), 2),
                sp.total_dollars < od.total_dollars ? "spot wins"
                                                    : "on-demand wins"});
  }
  t2.print(std::cout);
  std::cout << "\nExpected: spot wins under the default discount; frequent"
               " preemption with a thin\ndiscount erodes it for long"
               " campaigns.\n";
  return 0;
}
