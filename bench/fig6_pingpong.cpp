// Reproduces Fig. 6: PingPong communication timings over a range of
// message sizes with the linear fits of Eq. 12 (latency anchored at the
// zero-byte time, bandwidth fit over all points), internodal per system.
#include "fit/linear.hpp"
#include "microbench/pingpong.hpp"

#include "bench_common.hpp"

int main() {
  using namespace hemo;
  bench::print_header("Fig. 6",
                      "PingPong timings + Eq. 12 linear fits (internodal)");

  const auto sizes = microbench::default_message_sizes();
  std::vector<std::string> systems = {"TRC", "CSP-2", "CSP-2 EC"};
  for (const auto& abbrev : systems) {
    const auto& profile = cluster::instance_by_abbrev(abbrev);
    const auto samples = microbench::simulated_pingpong(profile, true, sizes);
    std::vector<real_t> xs, ts;
    for (const auto& s : samples) {
      xs.push_back(s.bytes);
      ts.push_back(s.time_us * 1e-6);
    }
    const fit::CommModel fit_s = fit::fit_comm_model(xs, ts);
    const real_t b_mbs = fit_s.bandwidth / 1e6;
    const real_t l_us = fit_s.latency * 1e6;

    std::cout << "\n" << abbrev << "  (fit: b = "
              << TextTable::num(b_mbs, 2) << " MB/s, l = "
              << TextTable::num(l_us, 2) << " us)\n";
    TextTable t;
    t.set_header({"Message (B)", "Measured (us)", "Fit (us)"});
    for (const auto& s : samples) {
      if (s.bytes > 0.0 && std::fmod(std::log2(std::max(s.bytes, 1.0)), 4.0)
          != 0.0) {
        continue;  // print every 16x in size
      }
      t.add_row({TextTable::num(s.bytes, 0), TextTable::num(s.time_us, 2),
                 TextTable::num(b_mbs > 0
                                    ? s.bytes / b_mbs + l_us
                                    : 0.0, 2)});
    }
    t.print(std::cout);
  }
  std::cout << "\nPaper Table III: TRC b=5066.57 l=2.01; CSP-2 b=1804.84"
               " l=23.59; CSP-2 EC b=2016.77 l=20.94.\n"
               "Expected shape: mild nonlinearity; zero-byte-anchored fit"
               " underestimates latency at large sizes.\n";
  return 0;
}
