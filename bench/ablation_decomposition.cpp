// Ablation: decomposition strategy. Compares grid, RCB, and slab
// partitioning on byte imbalance (the z factor of Eq. 10), halo volume,
// event counts, and resulting virtual-cluster throughput for each
// geometry at 64 ranks on CSP-2.
#include "decomp/comm_graph.hpp"

#include "bench_common.hpp"

int main() {
  using namespace hemo;
  bench::print_header("Ablation",
                      "decomposition strategy (64 ranks on CSP-2)");

  const auto& profile = cluster::instance_by_abbrev("CSP-2");
  cluster::VirtualCluster vc(profile);
  constexpr index_t kRanks = 64;

  for (const auto& geo_name : bench::geometry_names()) {
    const auto geo = bench::make_geometry(geo_name);
    const auto mesh = lbm::FluidMesh::build(geo.grid);
    const lbm::KernelConfig kernel{};

    std::cout << "\n(" << geo_name << ")\n";
    TextTable t;
    t.set_header({"Strategy", "Imbalance z", "Max events",
                  "Max halo (KB)", "MFLUPS"});
    for (decomp::Strategy s : {decomp::Strategy::kGrid,
                               decomp::Strategy::kRcb,
                               decomp::Strategy::kSlab}) {
      const auto part = decomp::make_partition(mesh, kRanks, s);
      const auto graph = decomp::build_comm_graph(mesh, part);
      const auto plan = cluster::make_workload_plan(
          mesh, part, kernel, profile.cores_per_node);
      const auto r = vc.execute(plan, 200, {});
      t.add_row({decomp::to_string(s),
                 TextTable::num(
                     decomp::measured_imbalance(mesh, part, kernel), 3),
                 TextTable::num(graph.max_events()),
                 TextTable::num(graph.max_total_bytes(kernel) / 1024.0, 1),
                 TextTable::num(r.mflups.value(), 2)});
    }
    t.print(std::cout);
  }
  std::cout << "\nExpected: RCB balances bytes best; slab minimizes"
               " neighbor counts but cuts huge faces;\ngrid suffers on"
               " complex geometries (empty blocks).\n";
  return 0;
}
