// Reproduces Fig. 5: STREAM COPY node bandwidth over an OpenMP-thread
// sweep for each system, with the two-line fits of Eq. 8 (including the
// hyperthreaded CSP-2 variant, whose saturated slope is negative).
#include "fit/two_line.hpp"
#include "microbench/stream.hpp"

#include "bench_common.hpp"

int main() {
  using namespace hemo;
  bench::print_header(
      "Fig. 5", "STREAM COPY bandwidth vs thread count + two-line fits");

  std::vector<std::string> systems = {"TRC", "CSP-1", "CSP-2", "CSP-2 EC",
                                      "CSP-2 Hyp."};
  for (const auto& abbrev : systems) {
    const auto& profile = cluster::instance_by_abbrev(abbrev);
    const auto sweep = microbench::simulated_stream_sweep_full_node(profile);
    std::vector<real_t> xs, ys;
    for (const auto& s : sweep) {
      xs.push_back(static_cast<real_t>(s.threads));
      ys.push_back(s.bandwidth_mbs);
    }
    const fit::TwoLineModel fit_model = fit::fit_two_line(xs, ys);

    std::cout << "\n" << abbrev << " (fit: a1 = "
              << TextTable::num(fit_model.a1, 2)
              << ", a2 = " << TextTable::num(fit_model.a2, 2)
              << ", a3 = " << TextTable::num(fit_model.a3, 2) << ")\n";
    TextTable t;
    t.set_header({"Threads", "Measured (MB/s)", "Fit (MB/s)"});
    for (const auto& s : sweep) {
      // Print a readable subset of the sweep.
      if (s.threads > 8 && s.threads % 4 != 0) continue;
      t.add_row({TextTable::num(s.threads),
                 TextTable::num(s.bandwidth_mbs, 0),
                 TextTable::num(fit_model(static_cast<real_t>(s.threads)),
                                0)});
    }
    t.print(std::cout);
  }
  std::cout << "\nExpected shape: steep per-core regime then a plateau"
               " (negative slope for CSP-2 Hyp.);\nlarger variance past the"
               " knee on CSP-2 (shared memory channels).\n";
  return 0;
}
