// google-benchmark microbenchmarks of the real LBM kernels on the host:
// every propagation x layout x precision variant of the solver on both hot
// paths (segmented default and fused reference, suffixed _ref), plus the
// mesh build and segment classification. These are the kernels whose byte
// counts feed Eq. 9.
//
// Before the benchmarks run, main() reports the benchmark mesh's segment
// statistics (point census per class and the RLE span-length distribution)
// through obs::MetricsRegistry to stderr — the segmentation quality numbers
// that explain the segmented path's MFLUPS.
#include <benchmark/benchmark.h>

#include <iostream>

#include "geometry/generators.hpp"
#include "lbm/mesh.hpp"
#include "lbm/mesh_segments.hpp"
#include "lbm/solver.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace hemo;

const lbm::FluidMesh& bench_mesh() {
  static const lbm::FluidMesh mesh = [] {
    const auto geo = geometry::make_cylinder({.radius = 8, .length = 48});
    return lbm::FluidMesh::build(geo.grid);
  }();
  return mesh;
}

const geometry::Geometry& bench_geometry() {
  static const geometry::Geometry geo =
      geometry::make_cylinder({.radius = 8, .length = 48});
  return geo;
}

template <typename T>
void run_solver_bench(benchmark::State& state, lbm::Layout layout,
                      lbm::Propagation prop,
                      lbm::KernelPath path = lbm::KernelPath::kSegmented) {
  const auto& mesh = bench_mesh();
  lbm::SolverParams params;
  params.kernel.layout = layout;
  params.kernel.propagation = prop;
  params.kernel.path = path;
  lbm::Solver<T> solver(mesh, params, std::span(bench_geometry().inlets));
  for (auto _ : state) {
    solver.step();
    benchmark::DoNotOptimize(solver.timestep());
  }
  const double flups = static_cast<double>(mesh.num_points()) *
                       static_cast<double>(state.iterations());
  state.counters["MFLUPS"] =
      benchmark::Counter(flups / 1e6, benchmark::Counter::kIsRate);
}

void BM_Solver_AB_AoS_double(benchmark::State& state) {
  run_solver_bench<double>(state, lbm::Layout::kAoS, lbm::Propagation::kAB);
}
void BM_Solver_AB_SoA_double(benchmark::State& state) {
  run_solver_bench<double>(state, lbm::Layout::kSoA, lbm::Propagation::kAB);
}
void BM_Solver_AA_AoS_double(benchmark::State& state) {
  run_solver_bench<double>(state, lbm::Layout::kAoS, lbm::Propagation::kAA);
}
void BM_Solver_AA_SoA_double(benchmark::State& state) {
  run_solver_bench<double>(state, lbm::Layout::kSoA, lbm::Propagation::kAA);
}
void BM_Solver_AB_AoS_float(benchmark::State& state) {
  run_solver_bench<float>(state, lbm::Layout::kAoS, lbm::Propagation::kAB);
}
void BM_Solver_AA_AoS_float(benchmark::State& state) {
  run_solver_bench<float>(state, lbm::Layout::kAoS, lbm::Propagation::kAA);
}
void BM_Solver_AB_AoS_double_ref(benchmark::State& state) {
  run_solver_bench<double>(state, lbm::Layout::kAoS, lbm::Propagation::kAB,
                           lbm::KernelPath::kReference);
}
void BM_Solver_AB_SoA_double_ref(benchmark::State& state) {
  run_solver_bench<double>(state, lbm::Layout::kSoA, lbm::Propagation::kAB,
                           lbm::KernelPath::kReference);
}
void BM_Solver_AA_AoS_double_ref(benchmark::State& state) {
  run_solver_bench<double>(state, lbm::Layout::kAoS, lbm::Propagation::kAA,
                           lbm::KernelPath::kReference);
}
void BM_Solver_AA_SoA_double_ref(benchmark::State& state) {
  run_solver_bench<double>(state, lbm::Layout::kSoA, lbm::Propagation::kAA,
                           lbm::KernelPath::kReference);
}
void BM_Solver_AB_AoS_float_ref(benchmark::State& state) {
  run_solver_bench<float>(state, lbm::Layout::kAoS, lbm::Propagation::kAB,
                          lbm::KernelPath::kReference);
}
void BM_Solver_AA_AoS_float_ref(benchmark::State& state) {
  run_solver_bench<float>(state, lbm::Layout::kAoS, lbm::Propagation::kAA,
                          lbm::KernelPath::kReference);
}

BENCHMARK(BM_Solver_AB_AoS_double);
BENCHMARK(BM_Solver_AB_SoA_double);
BENCHMARK(BM_Solver_AA_AoS_double);
BENCHMARK(BM_Solver_AA_SoA_double);
BENCHMARK(BM_Solver_AB_AoS_float);
BENCHMARK(BM_Solver_AA_AoS_float);
BENCHMARK(BM_Solver_AB_AoS_double_ref);
BENCHMARK(BM_Solver_AB_SoA_double_ref);
BENCHMARK(BM_Solver_AA_AoS_double_ref);
BENCHMARK(BM_Solver_AA_SoA_double_ref);
BENCHMARK(BM_Solver_AB_AoS_float_ref);
BENCHMARK(BM_Solver_AA_AoS_float_ref);

void BM_MeshBuild(benchmark::State& state) {
  const auto geo = geometry::make_cylinder({.radius = 8, .length = 48});
  for (auto _ : state) {
    auto mesh = lbm::FluidMesh::build(geo.grid);
    benchmark::DoNotOptimize(mesh.num_points());
  }
}
BENCHMARK(BM_MeshBuild);

void BM_SegmentBuild(benchmark::State& state) {
  const auto& mesh = bench_mesh();
  for (auto _ : state) {
    auto seg = lbm::SegmentedMesh::build(mesh);
    benchmark::DoNotOptimize(seg.bulk_count());
  }
}
BENCHMARK(BM_SegmentBuild);

/// Records the benchmark mesh's segment census and span-length histogram
/// in the metrics registry and dumps it as JSONL to stderr.
void report_segment_stats() {
  const lbm::SegmentedMesh seg = lbm::SegmentedMesh::build(bench_mesh());
  const auto& c = seg.counts();
  auto& metrics = obs::MetricsRegistry::global();
  metrics.enable(true);
  const obs::Labels geom = {{"geometry", "cylinder"}};
  metrics.set("lbm_segment_points", static_cast<real_t>(c.bulk_interior),
              {{"geometry", "cylinder"}, {"class", "bulk_interior"}});
  metrics.set("lbm_segment_points", static_cast<real_t>(c.bulk_edge),
              {{"geometry", "cylinder"}, {"class", "bulk_edge"}});
  metrics.set("lbm_segment_points", static_cast<real_t>(c.wall),
              {{"geometry", "cylinder"}, {"class", "wall"}});
  metrics.set("lbm_segment_points", static_cast<real_t>(c.inlet),
              {{"geometry", "cylinder"}, {"class", "inlet"}});
  metrics.set("lbm_segment_points", static_cast<real_t>(c.outlet),
              {{"geometry", "cylinder"}, {"class", "outlet"}});
  metrics.set("lbm_segment_spans", static_cast<real_t>(seg.spans().size()),
              geom);
  metrics.set("lbm_segment_mean_span_length", seg.mean_span_length(), geom);
  metrics.set("lbm_segment_max_span_length",
              static_cast<real_t>(seg.max_span_length()), geom);
  for (const auto& span : seg.spans()) {
    metrics.observe("lbm_segment_span_length",
                    static_cast<real_t>(span.length), geom);
  }
  std::cerr << metrics.to_jsonl();
}

}  // namespace

int main(int argc, char** argv) {
  report_segment_stats();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
