// google-benchmark microbenchmarks of the real LBM kernels on the host:
// every propagation x layout x precision variant of the solver, plus the
// mesh build. These are the kernels whose byte counts feed Eq. 9.
#include <benchmark/benchmark.h>

#include "geometry/generators.hpp"
#include "lbm/mesh.hpp"
#include "lbm/solver.hpp"

namespace {

using namespace hemo;

const lbm::FluidMesh& bench_mesh() {
  static const lbm::FluidMesh mesh = [] {
    const auto geo = geometry::make_cylinder({.radius = 8, .length = 48});
    return lbm::FluidMesh::build(geo.grid);
  }();
  return mesh;
}

const geometry::Geometry& bench_geometry() {
  static const geometry::Geometry geo =
      geometry::make_cylinder({.radius = 8, .length = 48});
  return geo;
}

template <typename T>
void run_solver_bench(benchmark::State& state, lbm::Layout layout,
                      lbm::Propagation prop) {
  const auto& mesh = bench_mesh();
  lbm::SolverParams params;
  params.kernel.layout = layout;
  params.kernel.propagation = prop;
  lbm::Solver<T> solver(mesh, params, std::span(bench_geometry().inlets));
  for (auto _ : state) {
    solver.step();
    benchmark::DoNotOptimize(solver.timestep());
  }
  const double flups = static_cast<double>(mesh.num_points()) *
                       static_cast<double>(state.iterations());
  state.counters["MFLUPS"] =
      benchmark::Counter(flups / 1e6, benchmark::Counter::kIsRate);
}

void BM_Solver_AB_AoS_double(benchmark::State& state) {
  run_solver_bench<double>(state, lbm::Layout::kAoS, lbm::Propagation::kAB);
}
void BM_Solver_AB_SoA_double(benchmark::State& state) {
  run_solver_bench<double>(state, lbm::Layout::kSoA, lbm::Propagation::kAB);
}
void BM_Solver_AA_AoS_double(benchmark::State& state) {
  run_solver_bench<double>(state, lbm::Layout::kAoS, lbm::Propagation::kAA);
}
void BM_Solver_AA_SoA_double(benchmark::State& state) {
  run_solver_bench<double>(state, lbm::Layout::kSoA, lbm::Propagation::kAA);
}
void BM_Solver_AB_AoS_float(benchmark::State& state) {
  run_solver_bench<float>(state, lbm::Layout::kAoS, lbm::Propagation::kAB);
}
void BM_Solver_AA_AoS_float(benchmark::State& state) {
  run_solver_bench<float>(state, lbm::Layout::kAoS, lbm::Propagation::kAA);
}

BENCHMARK(BM_Solver_AB_AoS_double);
BENCHMARK(BM_Solver_AB_SoA_double);
BENCHMARK(BM_Solver_AA_AoS_double);
BENCHMARK(BM_Solver_AA_SoA_double);
BENCHMARK(BM_Solver_AB_AoS_float);
BENCHMARK(BM_Solver_AA_AoS_float);

void BM_MeshBuild(benchmark::State& state) {
  const auto geo = geometry::make_cylinder({.radius = 8, .length = 48});
  for (auto _ : state) {
    auto mesh = lbm::FluidMesh::build(geo.grid);
    benchmark::DoNotOptimize(mesh.num_points());
  }
}
BENCHMARK(BM_MeshBuild);

}  // namespace

BENCHMARK_MAIN();
