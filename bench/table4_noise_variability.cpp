// Reproduces Table IV: HARVEY aorta performance statistics from
// measurements at 6-hour intervals over 7 days on CSP-1 and CSP-2 Small.
// Expected: coefficients of variation in the 0.004 - 0.02 range — noise
// variability has little effect and clouds are not noisier than the
// dedicated cluster.
#include "fit/stats.hpp"

#include "bench_common.hpp"

int main() {
  using namespace hemo;
  bench::print_header(
      "Table IV", "aorta MFLUPS statistics, 6 h intervals over 7 days");

  harvey::Simulation sim(bench::make_geometry("aorta"),
                         bench::default_options());

  struct Config {
    const char* abbrev;
    index_t ranks;
  };
  const std::vector<Config> configs = {
      {"CSP-1", 16}, {"CSP-1", 32}, {"CSP-1", 48},
      {"CSP-2 Small", 16}, {"CSP-2 Small", 32}, {"CSP-2 Small", 64},
      {"CSP-2 Small", 128}};

  TextTable t;
  t.set_header({"System", "MPI Ranks", "Mean MFLUPS", "Standard Deviation",
                "Variation Coefficient"});
  for (const auto& config : configs) {
    const auto& profile = cluster::instance_by_abbrev(config.abbrev);
    std::vector<real_t> samples;
    for (index_t day = 0; day < 7; ++day) {
      for (index_t hour = 0; hour < 24; hour += 6) {
        samples.push_back(
            sim.measure(profile, config.ranks, 100, {day, hour, 0})
                .mflups.value());
      }
    }
    const auto s = fit::summarize(samples);
    t.add_row({config.abbrev, TextTable::num(config.ranks),
               TextTable::num(s.mean, 2), TextTable::num(s.stddev, 2),
               TextTable::num(s.cov, 3)});
  }
  t.print(std::cout);

  std::cout << "\nPaper Table IV: CoV between 0.004 and 0.02 for every"
               " configuration.\n";
  return 0;
}
