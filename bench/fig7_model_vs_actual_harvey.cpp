// Reproduces Fig. 7: direct and generalized performance-model predictions
// vs actual HARVEY performance for all geometries on CSP-2 (without EC).
// Expected shape: both models overpredict by a roughly consistent factor;
// cerebral is the best-performing geometry; the generalized predictions
// drift from the direct ones at high rank counts on the cylinder.
#include "bench_common.hpp"

int main() {
  using namespace hemo;
  bench::print_header(
      "Fig. 7",
      "model predictions vs actual, HARVEY geometries on CSP-2 (no EC)");

  bench::CalibrationCache cache;
  const auto& cal = cache.get("CSP-2");
  const auto& profile = cluster::instance_by_abbrev("CSP-2");
  const std::vector<index_t> cal_counts = {2, 4, 8, 16, 32};

  for (const auto& geo_name : bench::geometry_names()) {
    harvey::Simulation sim(bench::make_geometry(geo_name),
                           bench::default_options());
    const core::WorkloadCalibration wcal = core::calibrate_workload(
        sim, cal_counts, profile.cores_per_node);

    std::cout << "\n(" << geo_name << ")\n";
    TextTable t;
    t.set_header({"Ranks", "Measured MFLUPS", "Direct model",
                  "General model", "Direct/Measured"});
    for (index_t n = 2; n <= 144; n *= 2) {
      const auto measured = sim.measure(profile, n, 200);
      const auto direct = core::predict_direct(
          sim.plan(n, profile.cores_per_node), cal);
      const auto general = core::predict_general(
          wcal, cal, n, profile.cores_per_node);
      t.add_row({TextTable::num(n),
                 TextTable::num(measured.mflups.value(), 2),
                 TextTable::num(direct.mflups.value(), 2),
                 TextTable::num(general.mflups.value(), 2),
                 TextTable::num(direct.mflups / measured.mflups, 2)});
    }
    t.print(std::cout);
  }
  std::cout << "\nExpected shape: predictions above measurements by a"
               " consistent factor;\ncerebral best-performing; general"
               " drifts from direct at high ranks.\n";
  return 0;
}
