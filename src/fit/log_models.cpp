#include "fit/log_models.hpp"

#include <cmath>
#include <limits>
#include <vector>

#include "fit/minimize.hpp"

namespace hemo::fit {

real_t ImbalanceModel::z(real_t n_tasks) const noexcept {
  if (n_tasks <= 1.0) return 1.0;
  const real_t arg = c2 * (n_tasks - 1.0) + 1.0;
  if (arg <= 0.0) return 1.0;
  return c1 * std::log(arg) + 1.0;
}

real_t EventCountModel::events(real_t n_tasks, real_t n_nodes) const noexcept {
  if (n_tasks <= n_nodes || n_nodes <= 0.0) return 0.0;
  const real_t arg = (k1 / n_nodes + k2) * (n_tasks - n_nodes) + 1.0;
  if (arg <= 1.0) return 0.0;
  return 4.0 * std::log2(arg);
}

namespace {

/// Grid-seeded 2-parameter least squares: evaluates the SSE objective on a
/// log-spaced coarse grid, then refines the best cell with Nelder-Mead.
template <typename Objective>
std::array<real_t, 2> fit_two_params(const Objective& sse_fn,
                                     std::span<const real_t> grid_p1,
                                     std::span<const real_t> grid_p2) {
  real_t best_sse = std::numeric_limits<real_t>::infinity();
  std::array<real_t, 2> best{grid_p1[0], grid_p2[0]};
  for (real_t p1 : grid_p1) {
    for (real_t p2 : grid_p2) {
      const real_t e = sse_fn(p1, p2);
      if (e < best_sse) {
        best_sse = e;
        best = {p1, p2};
      }
    }
  }
  const MinimizeResult refined = nelder_mead_2d(
      [&](real_t p1, real_t p2) { return sse_fn(p1, p2); }, best,
      {std::max(std::abs(best[0]) * 0.25, 1e-3),
       std::max(std::abs(best[1]) * 0.25, 1e-3)});
  return refined.value <= best_sse ? refined.x : best;
}

std::vector<real_t> log_grid(real_t lo, real_t hi, index_t count) {
  std::vector<real_t> g;
  g.reserve(static_cast<std::size_t>(count));
  const real_t llo = std::log(lo), lhi = std::log(hi);
  for (index_t i = 0; i < count; ++i) {
    const real_t t = static_cast<real_t>(i) / static_cast<real_t>(count - 1);
    g.push_back(std::exp(llo + (lhi - llo) * t));
  }
  return g;
}

}  // namespace

ImbalanceModel fit_imbalance(std::span<const real_t> n_tasks,
                             std::span<const real_t> z_values) {
  HEMO_REQUIRE(n_tasks.size() == z_values.size() && n_tasks.size() >= 2,
               "fit_imbalance needs >= 2 paired points");
  auto sse_fn = [&](real_t c1, real_t c2) {
    if (c2 <= 0.0) return std::numeric_limits<real_t>::max();
    ImbalanceModel m{c1, c2};
    real_t acc = 0.0;
    for (std::size_t i = 0; i < n_tasks.size(); ++i) {
      const real_t d = z_values[i] - m.z(n_tasks[i]);
      acc += d * d;
    }
    return acc;
  };
  const auto g1 = log_grid(1e-3, 10.0, 40);
  const auto g2 = log_grid(1e-4, 10.0, 40);
  const auto p = fit_two_params(sse_fn, g1, g2);
  return ImbalanceModel{p[0], p[1]};
}

EventCountModel fit_event_count(std::span<const real_t> n_tasks,
                                std::span<const real_t> n_nodes,
                                std::span<const real_t> events) {
  HEMO_REQUIRE(n_tasks.size() == n_nodes.size() &&
                   n_tasks.size() == events.size() && n_tasks.size() >= 2,
               "fit_event_count needs >= 2 triples");
  auto sse_fn = [&](real_t k1, real_t k2) {
    if (k2 < 0.0) return std::numeric_limits<real_t>::max();
    EventCountModel m{k1, k2};
    real_t acc = 0.0;
    for (std::size_t i = 0; i < n_tasks.size(); ++i) {
      const real_t d = events[i] - m.events(n_tasks[i], n_nodes[i]);
      acc += d * d;
    }
    return acc;
  };
  const auto g1 = log_grid(1e-3, 100.0, 40);
  const auto g2 = log_grid(1e-4, 10.0, 40);
  const auto p = fit_two_params(sse_fn, g1, g2);
  return EventCountModel{p[0], p[1]};
}

}  // namespace hemo::fit
