#include "fit/interp.hpp"

#include <algorithm>

namespace hemo::fit {

Interp1D::Interp1D(std::vector<real_t> xs, std::vector<real_t> ys)
    : xs_(std::move(xs)), ys_(std::move(ys)) {
  HEMO_REQUIRE(xs_.size() == ys_.size() && xs_.size() >= 2,
               "Interp1D needs >= 2 paired points");
  for (std::size_t i = 1; i < xs_.size(); ++i) {
    HEMO_REQUIRE(xs_[i] > xs_[i - 1], "Interp1D x must be strictly increasing");
  }
}

real_t Interp1D::operator()(real_t x) const noexcept {
  // Find the segment; clamp to the edge segments for extrapolation.
  const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  std::size_t hi = static_cast<std::size_t>(it - xs_.begin());
  hi = std::clamp<std::size_t>(hi, 1, xs_.size() - 1);
  const std::size_t lo = hi - 1;
  const real_t t = (x - xs_[lo]) / (xs_[hi] - xs_[lo]);
  return ys_[lo] + t * (ys_[hi] - ys_[lo]);
}

}  // namespace hemo::fit
