#include "fit/minimize.hpp"

#include <algorithm>
#include <cmath>

namespace hemo::fit {

namespace {

struct Vertex {
  std::array<real_t, 2> x{};
  real_t f = 0.0;
};

}  // namespace

MinimizeResult nelder_mead_2d(const std::function<real_t(real_t, real_t)>& f,
                              std::array<real_t, 2> start,
                              std::array<real_t, 2> scale,
                              const MinimizeOptions& options) {
  HEMO_REQUIRE(scale[0] != 0.0 && scale[1] != 0.0,
               "nelder_mead_2d: zero simplex scale");

  // Standard Nelder-Mead coefficients.
  constexpr real_t kReflect = 1.0;
  constexpr real_t kExpand = 2.0;
  constexpr real_t kContract = 0.5;
  constexpr real_t kShrink = 0.5;

  std::array<Vertex, 3> s;
  s[0].x = start;
  s[1].x = {start[0] + scale[0], start[1]};
  s[2].x = {start[0], start[1] + scale[1]};
  for (auto& v : s) v.f = f(v.x[0], v.x[1]);

  MinimizeResult result;
  for (index_t it = 0; it < options.max_iterations; ++it) {
    std::sort(s.begin(), s.end(),
              [](const Vertex& a, const Vertex& b) { return a.f < b.f; });
    result.iterations = it;
    if (std::abs(s[2].f - s[0].f) <=
        options.tolerance * (std::abs(s[0].f) + options.tolerance)) {
      result.converged = true;
      break;
    }

    // Centroid of the two best vertices.
    const std::array<real_t, 2> c = {(s[0].x[0] + s[1].x[0]) / 2.0,
                                     (s[0].x[1] + s[1].x[1]) / 2.0};
    auto point = [&](real_t t) {
      return std::array<real_t, 2>{c[0] + t * (c[0] - s[2].x[0]),
                                   c[1] + t * (c[1] - s[2].x[1])};
    };

    const auto xr = point(kReflect);
    const real_t fr = f(xr[0], xr[1]);
    if (fr < s[0].f) {
      const auto xe = point(kExpand);
      const real_t fe = f(xe[0], xe[1]);
      if (fe < fr) {
        s[2] = {xe, fe};
      } else {
        s[2] = {xr, fr};
      }
    } else if (fr < s[1].f) {
      s[2] = {xr, fr};
    } else {
      const auto xc = point(fr < s[2].f ? kContract : -kContract);
      const real_t fc = f(xc[0], xc[1]);
      if (fc < std::min(fr, s[2].f)) {
        s[2] = {xc, fc};
      } else {
        // Shrink toward the best vertex.
        for (int i = 1; i < 3; ++i) {
          for (int d = 0; d < 2; ++d) {
            s[static_cast<std::size_t>(i)].x[static_cast<std::size_t>(d)] =
                s[0].x[static_cast<std::size_t>(d)] +
                kShrink *
                    (s[static_cast<std::size_t>(i)]
                         .x[static_cast<std::size_t>(d)] -
                     s[0].x[static_cast<std::size_t>(d)]);
          }
          s[static_cast<std::size_t>(i)].f =
              f(s[static_cast<std::size_t>(i)].x[0],
                s[static_cast<std::size_t>(i)].x[1]);
        }
      }
    }
  }

  std::sort(s.begin(), s.end(),
            [](const Vertex& a, const Vertex& b) { return a.f < b.f; });
  result.x = s[0].x;
  result.value = s[0].f;
  return result;
}

}  // namespace hemo::fit
