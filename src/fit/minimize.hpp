// Derivative-free minimization used for the nonlinear fits in the paper
// (Eq. 11 load-imbalance parameters c1/c2 and Eq. 15 event-count parameters
// k1/k2 are both 2-parameter nonlinear least-squares problems).
//
// A grid-seeded Nelder-Mead simplex is robust enough for these smooth,
// low-dimensional objectives and keeps the module dependency-free.
#pragma once

#include <array>
#include <functional>

#include "util/common.hpp"

namespace hemo::fit {

/// Options for nelder_mead_2d.
struct MinimizeOptions {
  index_t max_iterations = 2000;
  real_t tolerance = 1e-12;  ///< stop when simplex f-spread falls below this
};

/// Result of a 2-D minimization.
struct MinimizeResult {
  std::array<real_t, 2> x{};  ///< argmin
  real_t value = 0.0;         ///< objective at argmin
  index_t iterations = 0;
  bool converged = false;
};

/// Minimizes f over R^2 starting from `start` with initial simplex scale
/// `scale` (per-coordinate step used to build the initial simplex).
[[nodiscard]] MinimizeResult nelder_mead_2d(
    const std::function<real_t(real_t, real_t)>& f,
    std::array<real_t, 2> start, std::array<real_t, 2> scale,
    const MinimizeOptions& options = {});

}  // namespace hemo::fit
