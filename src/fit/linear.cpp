#include "fit/linear.hpp"

#include <cmath>

namespace hemo::fit {

Line fit_line(std::span<const real_t> xs, std::span<const real_t> ys) {
  HEMO_REQUIRE(xs.size() == ys.size() && xs.size() >= 2,
               "fit_line needs >= 2 paired points");
  const real_t n = static_cast<real_t>(xs.size());
  real_t sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const real_t denom = n * sxx - sx * sx;
  if (denom == 0.0) throw NumericError("fit_line: degenerate x values");
  Line out;
  out.slope = (n * sxy - sx * sy) / denom;
  out.intercept = (sy - out.slope * sx) / n;
  return out;
}

Line fit_line_fixed_intercept(std::span<const real_t> xs,
                              std::span<const real_t> ys, real_t intercept) {
  HEMO_REQUIRE(xs.size() == ys.size() && !xs.empty(),
               "fit_line_fixed_intercept needs paired points");
  real_t sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxx += xs[i] * xs[i];
    sxy += xs[i] * (ys[i] - intercept);
  }
  if (sxx == 0.0) {
    throw NumericError("fit_line_fixed_intercept: all x are zero");
  }
  return Line{sxy / sxx, intercept};
}

CommModel fit_comm_model(std::span<const real_t> message_bytes,
                         std::span<const real_t> times) {
  HEMO_REQUIRE(message_bytes.size() == times.size() &&
                   message_bytes.size() >= 2,
               "fit_comm_model needs >= 2 paired points");
  for (std::size_t i = 1; i < message_bytes.size(); ++i) {
    HEMO_REQUIRE(message_bytes[i] >= message_bytes[i - 1],
                 "message sizes must be sorted ascending");
  }
  // Latency := measured time for the smallest message. The paper defines
  // latency as the communication time of a zero-byte message; PingPong
  // sweeps here always include m = 0 or m = 1.
  const real_t latency = times[0];
  const Line line =
      fit_line_fixed_intercept(message_bytes, times, latency);
  if (line.slope <= 0.0) {
    throw NumericError("fit_comm_model: non-positive bandwidth slope");
  }
  return CommModel{1.0 / line.slope, latency};
}

}  // namespace hemo::fit
