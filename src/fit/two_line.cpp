#include "fit/two_line.hpp"

#include <array>
#include <cmath>
#include <limits>

namespace hemo::fit {

namespace {

/// For a fixed breakpoint a3, Eq. 8 is linear in (a1, a2) with basis
/// functions phi1(n) = n (n < a3) or a3 (n >= a3), and phi2(n) = 0 (n < a3)
/// or n - a3 (n >= a3). Solves the 2x2 normal equations.
TwoLineModel solve_given_breakpoint(real_t a3, std::span<const real_t> xs,
                                    std::span<const real_t> ys) {
  real_t s11 = 0.0, s12 = 0.0, s22 = 0.0, b1 = 0.0, b2 = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const real_t phi1 = xs[i] < a3 ? xs[i] : a3;
    const real_t phi2 = xs[i] < a3 ? 0.0 : xs[i] - a3;
    s11 += phi1 * phi1;
    s12 += phi1 * phi2;
    s22 += phi2 * phi2;
    b1 += phi1 * ys[i];
    b2 += phi2 * ys[i];
  }
  TwoLineModel m;
  m.a3 = a3;
  const real_t det = s11 * s22 - s12 * s12;
  if (std::abs(det) < 1e-12 * (s11 * s22 + 1e-30)) {
    // All points on one side of the breakpoint: fall back to a single line
    // through the origin; the other slope inherits it (degenerate but
    // well-defined, keeps the scan robust at the grid edges).
    const real_t slope = s11 > 0.0 ? b1 / s11 : 0.0;
    m.a1 = slope;
    m.a2 = slope;
    return m;
  }
  m.a1 = (b1 * s22 - b2 * s12) / det;
  m.a2 = (b2 * s11 - b1 * s12) / det;
  return m;
}

}  // namespace

real_t two_line_sse(const TwoLineModel& model, std::span<const real_t> xs,
                    std::span<const real_t> ys) {
  HEMO_REQUIRE(xs.size() == ys.size(), "size mismatch in two_line_sse");
  real_t acc = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const real_t d = ys[i] - model(xs[i]);
    acc += d * d;
  }
  return acc;
}

TwoLineModel fit_two_line(std::span<const real_t> xs,
                          std::span<const real_t> ys) {
  HEMO_REQUIRE(xs.size() == ys.size() && xs.size() >= 3,
               "fit_two_line needs >= 3 paired points");
  real_t lo = xs[0], hi = xs[0];
  for (real_t x : xs) {
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  if (lo <= 0.0) throw NumericError("fit_two_line: thread counts must be > 0");
  if (hi <= lo) throw NumericError("fit_two_line: degenerate x range");

  // Coarse scan of the breakpoint, then two rounds of local refinement.
  TwoLineModel best;
  real_t best_sse = std::numeric_limits<real_t>::infinity();
  auto scan = [&](real_t from, real_t to, index_t steps) {
    for (index_t k = 0; k <= steps; ++k) {
      const real_t a3 =
          from + (to - from) * static_cast<real_t>(k) /
                     static_cast<real_t>(steps);
      const TwoLineModel m = solve_given_breakpoint(a3, xs, ys);
      const real_t e = two_line_sse(m, xs, ys);
      if (e < best_sse) {
        best_sse = e;
        best = m;
      }
    }
  };

  scan(lo, hi, 400);
  const real_t span = (hi - lo) / 400.0;
  scan(std::max(lo, best.a3 - 2.0 * span), std::min(hi, best.a3 + 2.0 * span),
       200);
  return best;
}

}  // namespace hemo::fit
