#include "fit/stats.hpp"

#include <algorithm>
#include <cmath>

namespace hemo::fit {

real_t mean(std::span<const real_t> xs) {
  HEMO_REQUIRE(!xs.empty(), "mean of empty span");
  real_t sum = 0.0;
  for (real_t x : xs) sum += x;
  return sum / static_cast<real_t>(xs.size());
}

real_t stddev(std::span<const real_t> xs) {
  HEMO_REQUIRE(xs.size() >= 2, "stddev needs at least 2 samples");
  const real_t m = mean(xs);
  real_t acc = 0.0;
  for (real_t x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<real_t>(xs.size() - 1));
}

real_t coefficient_of_variation(std::span<const real_t> xs) {
  const real_t m = mean(xs);
  HEMO_REQUIRE(m != 0.0, "CoV undefined for zero mean");
  return stddev(xs) / m;
}

real_t sse(std::span<const real_t> actual, std::span<const real_t> predicted) {
  HEMO_REQUIRE(actual.size() == predicted.size(), "size mismatch in sse");
  real_t acc = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const real_t d = actual[i] - predicted[i];
    acc += d * d;
  }
  return acc;
}

real_t r_squared(std::span<const real_t> actual,
                 std::span<const real_t> predicted) {
  HEMO_REQUIRE(actual.size() == predicted.size() && actual.size() >= 2,
               "r_squared needs >= 2 paired samples");
  const real_t m = mean(actual);
  real_t ss_tot = 0.0;
  for (real_t a : actual) ss_tot += (a - m) * (a - m);
  const real_t ss_res = sse(actual, predicted);
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

real_t min_of(std::span<const real_t> xs) {
  HEMO_REQUIRE(!xs.empty(), "min of empty span");
  return *std::min_element(xs.begin(), xs.end());
}

real_t max_of(std::span<const real_t> xs) {
  HEMO_REQUIRE(!xs.empty(), "max of empty span");
  return *std::max_element(xs.begin(), xs.end());
}

Summary summarize(std::span<const real_t> xs) {
  Summary s;
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  s.cov = s.mean != 0.0 ? s.stddev / s.mean : 0.0;
  s.count = static_cast<index_t>(xs.size());
  return s;
}

}  // namespace hemo::fit
