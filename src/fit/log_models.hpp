// Logarithmic empirical models from the paper:
//
//  * Load-imbalance factor (Eq. 11):
//      z(n_tasks) = c1 * ln(c2 * (n_tasks - 1) + 1) + 1
//    z is the factor by which the most-loaded task's memory traffic exceeds
//    the perfectly balanced share n_bytes_serial / n_tasks (Eq. 10).
//
//  * Maximum communication-event count (Eq. 15):
//      n_max_events(n_tasks) = 4 * log2((k1 / n_n + k2) * (n_tasks - n_n) + 1)
//    where n_n is the number of nodes in the allocation.
//
// Both are fitted to decomposition sweeps with a grid-seeded Nelder-Mead
// least-squares minimization.
#pragma once

#include <span>

#include "util/common.hpp"

namespace hemo::fit {

/// Fitted Eq. 11 parameters.
struct ImbalanceModel {
  real_t c1 = 0.0;
  real_t c2 = 0.0;

  /// z(n_tasks): >= 1 for n_tasks >= 1 when c1, c2 >= 0.
  [[nodiscard]] real_t z(real_t n_tasks) const noexcept;
};

/// Fits (c1, c2) to observed (n_tasks, z) pairs by least squares.
/// Requires >= 2 points with n_tasks >= 1.
[[nodiscard]] ImbalanceModel fit_imbalance(std::span<const real_t> n_tasks,
                                           std::span<const real_t> z_values);

/// Fitted Eq. 15 parameters.
struct EventCountModel {
  real_t k1 = 0.0;
  real_t k2 = 0.0;

  /// Maximum number of communication events for n_tasks tasks on n_nodes
  /// nodes. Returns 0 when n_tasks <= n_nodes implies no off-task halo.
  [[nodiscard]] real_t events(real_t n_tasks, real_t n_nodes) const noexcept;
};

/// Fits (k1, k2) to observed (n_tasks, n_nodes, events) triples.
/// Requires >= 2 points.
[[nodiscard]] EventCountModel fit_event_count(
    std::span<const real_t> n_tasks, std::span<const real_t> n_nodes,
    std::span<const real_t> events);

}  // namespace hemo::fit
