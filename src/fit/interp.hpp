// Piecewise-linear interpolation over tabulated (x, y) data.
//
// The paper's *direct* performance model does not use the fitted linear
// communication law; it "interpolates the communication time from PingPong
// measurement raw data" (Section III-G). Interp1D provides exactly that.
#pragma once

#include <vector>

#include "util/common.hpp"

namespace hemo::fit {

/// Monotone-x piecewise-linear interpolant with edge-slope extrapolation.
class Interp1D {
 public:
  /// Builds the interpolant. Requires xs strictly increasing and >= 2 points.
  Interp1D(std::vector<real_t> xs, std::vector<real_t> ys);

  /// Evaluates at x; extrapolates linearly using the first/last segment.
  [[nodiscard]] real_t operator()(real_t x) const noexcept;

  [[nodiscard]] real_t min_x() const noexcept { return xs_.front(); }
  [[nodiscard]] real_t max_x() const noexcept { return xs_.back(); }
  [[nodiscard]] index_t size() const noexcept {
    return static_cast<index_t>(xs_.size());
  }

 private:
  std::vector<real_t> xs_;
  std::vector<real_t> ys_;
};

}  // namespace hemo::fit
