// Two-line node memory bandwidth model (paper Eq. 8).
//
//   B_NODE(n) = a1 * n                      for n <  a3
//             = a2 * n + a3 * (a1 - a2)     for n >= a3
//
// The model is continuous at n = a3 (both branches give a1 * a3). The first
// regime is limited by per-core memory access speed (slope a1); the second
// by the node's memory subsystem (much shallower slope a2). The fit adjusts
// (a1, a2, a3) to minimize the sum of squared errors, exactly as the paper
// describes for the STREAM thread sweeps of Fig. 5 / Table III.
#pragma once

#include <span>

#include "util/common.hpp"

namespace hemo::fit {

/// Fitted two-line bandwidth law.
struct TwoLineModel {
  real_t a1 = 0.0;  ///< steep-regime slope (MB/s per thread)
  real_t a2 = 0.0;  ///< saturated-regime slope (MB/s per thread)
  real_t a3 = 0.0;  ///< breakpoint (threads)

  /// Evaluates B_NODE(n) per Eq. 8.
  [[nodiscard]] real_t operator()(real_t n) const noexcept {
    if (n < a3) return a1 * n;
    return a2 * n + a3 * (a1 - a2);
  }

  /// The saturated node bandwidth at n threads (same as operator(), kept
  /// for readability at call sites that always query the plateau).
  [[nodiscard]] real_t bandwidth(real_t n) const noexcept {
    return (*this)(n);
  }
};

/// Fits Eq. 8 by scanning candidate breakpoints a3 over a fine grid between
/// min(xs) and max(xs) and solving the conditionally-linear least squares
/// problem for (a1, a2) at each, then refining the best breakpoint locally.
/// Requires >= 3 points spanning both regimes for a meaningful result.
[[nodiscard]] TwoLineModel fit_two_line(std::span<const real_t> threads,
                                        std::span<const real_t> bandwidth);

/// Residual SSE of a model against data (exposed for tests / diagnostics).
[[nodiscard]] real_t two_line_sse(const TwoLineModel& model,
                                  std::span<const real_t> threads,
                                  std::span<const real_t> bandwidth);

}  // namespace hemo::fit
