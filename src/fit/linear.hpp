// Ordinary least squares for the linear models in the paper.
//
// Two variants are needed:
//  * an unconstrained line y = slope * x + intercept, and
//  * the paper's communication fit (Eq. 12): latency is *enforced* to equal
//    the measured time of a zero-byte message, and only the bandwidth term
//    is fit by least squares ("Curve fits enforce that latency is the
//    communication time for 0 bytes and bandwidth depends on all data
//    points", Fig. 6 caption).
#pragma once

#include <span>

#include "util/common.hpp"

namespace hemo::fit {

/// Result of a 1-D line fit.
struct Line {
  real_t slope = 0.0;
  real_t intercept = 0.0;

  [[nodiscard]] real_t operator()(real_t x) const noexcept {
    return slope * x + intercept;
  }
};

/// Unconstrained OLS fit of y = slope * x + intercept.
/// Requires >= 2 points with non-degenerate x spread.
[[nodiscard]] Line fit_line(std::span<const real_t> xs,
                            std::span<const real_t> ys);

/// OLS fit of the slope only, with the intercept fixed:
/// minimizes sum_i (y_i - intercept - slope * x_i)^2 over slope.
[[nodiscard]] Line fit_line_fixed_intercept(std::span<const real_t> xs,
                                            std::span<const real_t> ys,
                                            real_t intercept);

/// Linear communication model t(m) = m / bandwidth + latency (Eq. 12).
/// Units follow the data: if m is in bytes and t in seconds, `bandwidth`
/// is bytes/second and `latency` seconds.
struct CommModel {
  real_t bandwidth = 0.0;  ///< b in Eq. 12
  real_t latency = 0.0;    ///< l in Eq. 12

  /// Predicted time for an m-byte message.
  [[nodiscard]] real_t time(real_t message_bytes) const noexcept {
    return message_bytes / bandwidth + latency;
  }
};

/// Fits Eq. 12 the way the paper does: `latency` is taken as the measured
/// time of the smallest message (ideally zero bytes), and the bandwidth is
/// the least-squares slope over all points with that intercept enforced.
/// Requires sizes sorted ascending with at least 2 points.
[[nodiscard]] CommModel fit_comm_model(std::span<const real_t> message_bytes,
                                       std::span<const real_t> times);

}  // namespace hemo::fit
