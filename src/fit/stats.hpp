// Summary statistics used across the fitting and benchmarking layers.
#pragma once

#include <span>

#include "util/common.hpp"

namespace hemo::fit {

/// Arithmetic mean. Requires a non-empty span.
[[nodiscard]] real_t mean(std::span<const real_t> xs);

/// Sample standard deviation (n-1 denominator). Requires at least 2 samples.
[[nodiscard]] real_t stddev(std::span<const real_t> xs);

/// Coefficient of variation: stddev / mean. Requires non-zero mean.
[[nodiscard]] real_t coefficient_of_variation(std::span<const real_t> xs);

/// Sum of squared errors between two equally-sized spans.
[[nodiscard]] real_t sse(std::span<const real_t> actual,
                         std::span<const real_t> predicted);

/// Coefficient of determination R^2 of `predicted` against `actual`.
/// Returns 1 for a perfect fit; can be negative for fits worse than the mean.
[[nodiscard]] real_t r_squared(std::span<const real_t> actual,
                               std::span<const real_t> predicted);

/// Minimum / maximum of a non-empty span.
[[nodiscard]] real_t min_of(std::span<const real_t> xs);
[[nodiscard]] real_t max_of(std::span<const real_t> xs);

/// Population summary produced by repeated noisy measurements (Table IV).
struct Summary {
  real_t mean = 0.0;
  real_t stddev = 0.0;
  real_t cov = 0.0;  ///< coefficient of variation
  index_t count = 0;
};

/// Computes mean / stddev / CoV in one pass. Requires >= 2 samples.
[[nodiscard]] Summary summarize(std::span<const real_t> xs);

}  // namespace hemo::fit
