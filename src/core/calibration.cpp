#include "core/calibration.hpp"

#include <algorithm>
#include <cmath>

#include "decomp/comm_graph.hpp"
#include "lbm/access_counts.hpp"
#include "microbench/pingpong.hpp"
#include "microbench/stream.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hemo::core {

units::BytesPerSec InstanceCalibration::task_bandwidth(
    units::Cores threads) const {
  HEMO_REQUIRE(threads.value() >= 1, "threads must be >= 1");
  const real_t node_mbs =
      memory.bandwidth(static_cast<real_t>(threads.value()));
  return units::BytesPerSec(node_mbs /
                            static_cast<real_t>(threads.value()) * 1e6);
}

namespace {

fit::Interp1D pingpong_interp(
    const std::vector<microbench::PingPongSample>& samples) {
  std::vector<real_t> xs, ys;
  xs.reserve(samples.size());
  ys.reserve(samples.size());
  for (const auto& s : samples) {
    // Strictly increasing x required; sizes ladder already is.
    xs.push_back(s.bytes);
    ys.push_back(s.time_us);
  }
  return fit::Interp1D(std::move(xs), std::move(ys));
}

fit::CommModel fit_pingpong(
    const std::vector<microbench::PingPongSample>& samples) {
  std::vector<real_t> xs, ys;
  for (const auto& s : samples) {
    xs.push_back(s.bytes);
    // Fit in seconds so bandwidth comes out in bytes/second; convert back
    // to the paper's MB/s + microseconds convention below.
    ys.push_back(s.time_us * 1e-6);
  }
  const fit::CommModel m = fit::fit_comm_model(xs, ys);
  // m.bandwidth is bytes/s; m.latency seconds. Convert to MB/s and us.
  return fit::CommModel{m.bandwidth / 1e6, m.latency * 1e6};
}

}  // namespace

InstanceCalibration calibrate_instance(
    const cluster::InstanceProfile& profile) {
  const auto span = obs::TraceRecorder::global().wall_span(
      "calibrate_instance", "calibration", {{"instance", profile.abbrev}});
  InstanceCalibration cal;
  cal.abbrev = profile.abbrev;

  // STREAM sweep: average a few samples per thread count, as the paper's
  // 7-day measurement campaign does, then fit the two-line law.
  const index_t max_threads =
      profile.cores_per_node * profile.vcpus_per_core;
  constexpr index_t kSamples = 4;
  std::vector<real_t> threads, bandwidth;
  for (index_t t = 1; t <= max_threads; ++t) {
    real_t acc = 0.0;
    for (index_t s = 0; s < kSamples; ++s) {
      acc += cluster::MemorySystem(profile)
                 .measured_node_bandwidth(t, s)
                 .value();
    }
    threads.push_back(static_cast<real_t>(t));
    bandwidth.push_back(acc / static_cast<real_t>(kSamples));
  }
  cal.memory = fit::fit_two_line(threads, bandwidth);

  // PingPong sweeps, intra- and internodal.
  const auto sizes = microbench::default_message_sizes();
  const auto inter = microbench::simulated_pingpong(profile, true, sizes);
  const auto intra = microbench::simulated_pingpong(profile, false, sizes);
  cal.inter = fit_pingpong(inter);
  cal.intra = fit_pingpong(intra);
  cal.inter_raw = pingpong_interp(inter);
  cal.intra_raw = pingpong_interp(intra);

  // GPU-equipped instances: device STREAM + PCIe transfer sweep.
  if (profile.gpu.has_value()) {
    const cluster::GpuSystem gpu(profile);
    real_t bw = 0.0;
    for (index_t s = 0; s < kSamples; ++s) {
      bw += gpu.measured_bandwidth(s).value();
    }
    cal.gpu_bandwidth =
        units::MegabytesPerSec(bw / static_cast<real_t>(kSamples));
    std::vector<microbench::PingPongSample> pcie;
    for (real_t size : sizes) {
      pcie.push_back(microbench::PingPongSample{
          size, gpu.measured_transfer(units::Bytes(size), 0).value()});
    }
    cal.gpu_pcie = fit_pingpong(pcie);
  }

  // Fitted-parameter gauges: a metrics snapshot shows what each instance's
  // calibration actually resolved to, next to the drift it later produces.
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::global();
  const obs::Labels who{{"instance", cal.abbrev}};
  metrics.set("calibration_mem_slope_mbps_per_thread", cal.memory.a1, who);
  metrics.set("calibration_mem_breakpoint_threads", cal.memory.a3, who);
  metrics.set("calibration_inter_bandwidth_mbps", cal.inter.bandwidth, who);
  metrics.set("calibration_inter_latency_us", cal.inter.latency, who);
  metrics.set("calibration_intra_bandwidth_mbps", cal.intra.bandwidth, who);
  metrics.set("calibration_intra_latency_us", cal.intra.latency, who);
  return cal;
}

WorkloadCalibration calibrate_workload(harvey::Simulation& sim,
                                       std::span<const index_t> task_counts,
                                       index_t tasks_per_node) {
  HEMO_REQUIRE(task_counts.size() >= 2,
               "need at least two task counts to fit the workload laws");
  const auto span = obs::TraceRecorder::global().wall_span(
      "calibrate_workload", "calibration",
      {{"geometry", sim.geometry().name}});
  WorkloadCalibration cal;
  cal.name = sim.geometry().name;
  cal.kernel = sim.options().solver.kernel;
  cal.total_points = sim.mesh().num_points();
  cal.serial_bytes =
      units::Bytes(lbm::serial_bytes_per_step(sim.mesh(), cal.kernel));
  // Data exchanged per boundary point: ~5 of the 19 distributions cross a
  // face cut in D3Q19.
  cal.point_comm_bytes = units::Bytes(
      5.0 * static_cast<real_t>(lbm::data_size(cal.kernel.precision)));

  std::vector<real_t> ns, zs, nodes, events;
  for (index_t n : task_counts) {
    const auto& part = sim.partition(n);
    zs.push_back(decomp::measured_imbalance(sim.mesh(), part, cal.kernel));
    ns.push_back(static_cast<real_t>(n));
    const auto graph = decomp::build_comm_graph(sim.mesh(), part);
    events.push_back(static_cast<real_t>(graph.max_events()));
    nodes.push_back(static_cast<real_t>(
        (n + tasks_per_node - 1) / tasks_per_node));
  }
  cal.imbalance = fit::fit_imbalance(ns, zs);
  cal.events = fit::fit_event_count(ns, nodes, events);
  return cal;
}

WorkloadCalibration scale_resolution(const WorkloadCalibration& base,
                                     real_t point_factor) {
  HEMO_REQUIRE(point_factor > 0.0, "point_factor must be positive");
  WorkloadCalibration scaled = base;
  scaled.total_points = static_cast<index_t>(
      static_cast<real_t>(base.total_points) * point_factor);
  scaled.serial_bytes = base.serial_bytes * point_factor;
  return scaled;
}

}  // namespace hemo::core
