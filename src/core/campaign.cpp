#include "core/campaign.hpp"

#include <cmath>

namespace hemo::core {

// CampaignTracker is deliberately uninstrumented: place() builds throwaway
// keyed trackers per decision, so gauges live at the engine call sites
// (executor.cpp) where the campaign-wide tracker is the one being fed.

void CampaignTracker::record(Observation obs) {
  HEMO_REQUIRE(obs.predicted_mflups.value() > 0.0 &&
                   obs.measured_mflups.value() > 0.0,
               "observations need positive throughputs");
  observations_.push_back(std::move(obs));
}

real_t CampaignTracker::correction_factor() const {
  if (observations_.empty()) return 1.0;
  real_t log_sum = 0.0;
  for (const Observation& o : observations_) {
    log_sum += std::log(o.measured_mflups / o.predicted_mflups);
  }
  return std::exp(log_sum / static_cast<real_t>(observations_.size()));
}

real_t CampaignTracker::mean_abs_relative_error() const {
  if (observations_.empty()) return 0.0;
  real_t acc = 0.0;
  for (const Observation& o : observations_) {
    acc += std::abs((o.predicted_mflups - o.measured_mflups).value()) /
           o.measured_mflups.value();
  }
  return acc / static_cast<real_t>(observations_.size());
}

real_t CampaignTracker::refined_mean_abs_relative_error() const {
  if (observations_.empty()) return 0.0;
  const real_t c = correction_factor();
  real_t acc = 0.0;
  for (const Observation& o : observations_) {
    acc += std::abs((o.predicted_mflups * c - o.measured_mflups).value()) /
           o.measured_mflups.value();
  }
  return acc / static_cast<real_t>(observations_.size());
}

bool JobGuard::should_abort(units::Seconds elapsed_seconds,
                            real_t fraction_done) const {
  HEMO_REQUIRE(fraction_done >= 0.0 && fraction_done <= 1.0,
               "fraction_done must be in [0, 1]");
  if (elapsed_seconds >= max_seconds()) return true;
  if (fraction_done <= 0.0) return false;
  const units::Seconds projected = elapsed_seconds / fraction_done;
  return projected > max_seconds();
}

}  // namespace hemo::core
