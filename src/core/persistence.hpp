// Persistence of calibrations and campaign histories.
//
// The paper's Discussion: "Storing all measured performance along with the
// estimated performance model prediction will be critical to iteratively
// refining the performance models" (it points at SONAR-style monitoring
// stacks). These routines serialize instance calibrations and campaign
// trackers to a line-oriented, tab-separated text format that survives
// round-trips at full double precision, so a user's accumulated
// measurements persist across sessions.
#pragma once

#include <iosfwd>
#include <string>

#include "core/calibration.hpp"
#include "core/campaign.hpp"

namespace hemo::core {

/// Writes the tracker's observations.
void save_campaign(const CampaignTracker& tracker, std::ostream& os);

/// Reads observations written by save_campaign. Throws NumericError on a
/// malformed stream.
[[nodiscard]] CampaignTracker load_campaign(std::istream& is);

/// Writes an instance calibration, including the raw PingPong tables the
/// direct model needs and GPU fields when present.
void save_calibration(const InstanceCalibration& calibration,
                      std::ostream& os);

/// Reads a calibration written by save_calibration.
[[nodiscard]] InstanceCalibration load_calibration(std::istream& is);

/// File-path convenience wrappers (throw NumericError on I/O failure).
void save_campaign_file(const CampaignTracker& tracker,
                        const std::string& path);
[[nodiscard]] CampaignTracker load_campaign_file(const std::string& path);
void save_calibration_file(const InstanceCalibration& calibration,
                           const std::string& path);
[[nodiscard]] InstanceCalibration load_calibration_file(
    const std::string& path);

}  // namespace hemo::core
