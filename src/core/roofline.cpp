#include "core/roofline.hpp"

#include <algorithm>

namespace hemo::core {

Roofline instance_roofline(const cluster::InstanceProfile& profile,
                           index_t threads, real_t flops_per_cycle) {
  HEMO_REQUIRE(threads >= 1, "roofline needs at least one thread");
  HEMO_REQUIRE(flops_per_cycle > 0.0, "flops_per_cycle must be positive");
  Roofline r;
  r.peak_gflops = static_cast<real_t>(threads) * profile.clock_ghz *
                  flops_per_cycle;
  r.bandwidth_gbs =
      profile.memory.node_bandwidth_mbs(static_cast<real_t>(threads)) / 1e3;
  r.ridge_flops_per_byte =
      r.bandwidth_gbs > 0.0 ? r.peak_gflops / r.bandwidth_gbs : 0.0;
  return r;
}

real_t arithmetic_intensity(const lbm::FluidMesh& mesh,
                            const lbm::KernelConfig& config) {
  const real_t bytes = lbm::serial_bytes_per_step(mesh, config);
  HEMO_REQUIRE(bytes > 0.0, "empty mesh");
  return lbm::serial_flops_per_step(mesh) / bytes;
}

Bound bound_for(const Roofline& roofline,
                real_t intensity_flops_per_byte) {
  HEMO_REQUIRE(intensity_flops_per_byte > 0.0,
               "intensity must be positive");
  return intensity_flops_per_byte < roofline.ridge_flops_per_byte
             ? Bound::kMemory
             : Bound::kCompute;
}

ModelPrediction roofline_adjusted(const ModelPrediction& prediction,
                                  const Roofline& roofline,
                                  real_t task_flops, real_t task_share) {
  HEMO_REQUIRE(task_share > 0.0 && task_share <= 1.0,
               "task_share must be in (0, 1]");
  ModelPrediction adjusted = prediction;
  const real_t t_compute =
      task_flops / (roofline.peak_gflops * 1e9 * task_share);
  adjusted.t_mem_s = std::max(prediction.t_mem_s, t_compute);
  adjusted.step_seconds = adjusted.t_mem_s + adjusted.t_comm_s;
  if (prediction.step_seconds > 0.0) {
    adjusted.mflups = prediction.mflups * prediction.step_seconds /
                      adjusted.step_seconds;
  }
  return adjusted;
}

}  // namespace hemo::core
