#include "core/roofline.hpp"

#include <algorithm>

namespace hemo::core {

Roofline instance_roofline(const cluster::InstanceProfile& profile,
                           index_t threads, real_t flops_per_cycle) {
  HEMO_REQUIRE(threads >= 1, "roofline needs at least one thread");
  HEMO_REQUIRE(flops_per_cycle > 0.0, "flops_per_cycle must be positive");
  Roofline r;
  r.peak = units::GflopsPerSec(static_cast<real_t>(threads) *
                               profile.clock_ghz * flops_per_cycle);
  r.bandwidth = units::to_gigabytes_per_sec(
      profile.memory.node_bandwidth_mbs(static_cast<real_t>(threads)));
  r.ridge = r.bandwidth.value() > 0.0 ? r.peak / r.bandwidth
                                      : units::FlopsPerByte(0.0);
  return r;
}

units::FlopsPerByte arithmetic_intensity(const lbm::FluidMesh& mesh,
                                         const lbm::KernelConfig& config) {
  const real_t bytes = lbm::serial_bytes_per_step(mesh, config);
  HEMO_REQUIRE(bytes > 0.0, "empty mesh");
  return units::FlopsPerByte(lbm::serial_flops_per_step(mesh) / bytes);
}

Bound bound_for(const Roofline& roofline, units::FlopsPerByte intensity) {
  HEMO_REQUIRE(intensity.value() > 0.0, "intensity must be positive");
  return intensity < roofline.ridge ? Bound::kMemory : Bound::kCompute;
}

ModelPrediction roofline_adjusted(const ModelPrediction& prediction,
                                  const Roofline& roofline,
                                  units::Flops task_flops,
                                  real_t task_share) {
  HEMO_REQUIRE(task_share > 0.0 && task_share <= 1.0,
               "task_share must be in (0, 1]");
  ModelPrediction adjusted = prediction;
  const units::Seconds t_compute(
      task_flops.value() / (roofline.peak.value() * 1e9 * task_share));
  adjusted.t_mem = std::max(prediction.t_mem, t_compute);
  adjusted.step_seconds = adjusted.t_mem + adjusted.t_comm;
  if (prediction.step_seconds.value() > 0.0) {
    adjusted.mflups = units::Mflups(prediction.mflups.value() *
                                    prediction.step_seconds.value() /
                                    adjusted.step_seconds.value());
  }
  return adjusted;
}

}  // namespace hemo::core
