#include "core/dashboard.hpp"

#include <algorithm>
#include <cmath>

namespace hemo::core {

Dashboard::Dashboard(std::vector<const cluster::InstanceProfile*> profiles) {
  HEMO_REQUIRE(!profiles.empty(), "dashboard needs at least one instance");
  options_.reserve(profiles.size());
  for (const cluster::InstanceProfile* p : profiles) {
    HEMO_REQUIRE(p != nullptr, "null instance profile");
    options_.push_back(InstanceOption{p, calibrate_instance(*p)});
  }
}

std::vector<DashboardRow> Dashboard::evaluate(
    const WorkloadCalibration& workload, const JobSpec& job,
    std::span<const index_t> core_counts,
    const CampaignTracker* refinement) const {
  HEMO_REQUIRE(job.timesteps >= 1, "job needs at least one timestep");
  const real_t correction =
      refinement != nullptr ? refinement->correction_factor() : 1.0;

  std::vector<DashboardRow> rows;
  for (const InstanceOption& opt : options_) {
    const index_t tasks_per_node = opt.profile->cores_per_node;
    for (index_t cores : core_counts) {
      DashboardRow row;
      row.instance = opt.profile->abbrev;
      row.n_tasks = cores;
      row.n_nodes = (cores + tasks_per_node - 1) / tasks_per_node;
      row.prediction = predict_general(workload, opt.calibration, cores,
                                       std::min(cores, tasks_per_node));
      row.prediction.mflups *= correction;
      row.prediction.step_seconds /= correction;

      row.time_to_solution_s =
          time_to_solution(row.prediction.step_seconds, job.timesteps);
      row.cost_rate_per_hour = static_cast<real_t>(row.n_nodes) *
                               opt.profile->price_per_node_hour;
      row.total_dollars =
          total_cost(row.cost_rate_per_hour, row.time_to_solution_s);
      row.mflups_per_dollar_hour =
          row.prediction.mflups / row.cost_rate_per_hour;
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

std::vector<std::vector<real_t>> Dashboard::relative_value_matrix(
    std::span<const DashboardRow> rows) {
  std::vector<std::vector<real_t>> m(
      rows.size(), std::vector<real_t>(rows.size(), 1.0));
  for (std::size_t b = 0; b < rows.size(); ++b) {
    for (std::size_t a = 0; a < rows.size(); ++a) {
      m[b][a] = relative_value(rows[b].prediction, rows[a].prediction);
    }
  }
  return m;
}

std::optional<DashboardRow> Dashboard::recommend(
    std::span<const DashboardRow> rows, Objective objective,
    units::Seconds deadline) {
  if (rows.empty()) return std::nullopt;
  switch (objective) {
    case Objective::kMaxThroughput: {
      const auto it = std::max_element(
          rows.begin(), rows.end(), [](const auto& a, const auto& b) {
            return a.prediction.mflups < b.prediction.mflups;
          });
      return *it;
    }
    case Objective::kMinCost: {
      const auto it = std::min_element(
          rows.begin(), rows.end(), [](const auto& a, const auto& b) {
            return a.total_dollars < b.total_dollars;
          });
      return *it;
    }
    case Objective::kDeadline: {
      HEMO_REQUIRE(deadline.value() > 0.0,
                   "deadline objective needs a deadline");
      std::optional<DashboardRow> best;
      for (const DashboardRow& row : rows) {
        if (row.time_to_solution_s > deadline) continue;
        if (!best || row.total_dollars < best->total_dollars) best = row;
      }
      return best;
    }
  }
  return std::nullopt;
}

DashboardRow apply_spot_pricing(const DashboardRow& row,
                                const SpotOptions& options) {
  HEMO_REQUIRE(options.discount >= 0.0 && options.discount < 1.0,
               "spot discount must be in [0, 1)");
  HEMO_REQUIRE(options.preemptions_per_hour.value() >= 0.0,
               "negative preemption rate");
  DashboardRow spot = row;
  // Expected loss per preemption: half a checkpoint interval of redone
  // work plus the restart overhead.
  const units::Seconds loss_per_preemption =
      options.checkpoint_interval_s / 2.0 + options.restart_overhead_s;
  // Expected preemptions over the (first-order) wall time.
  const real_t expected_preemptions = options.preemptions_per_hour.value() *
                                      row.time_to_solution_s.value() / 3600.0;
  spot.time_to_solution_s =
      row.time_to_solution_s + expected_preemptions * loss_per_preemption;
  spot.cost_rate_per_hour = row.cost_rate_per_hour * (1.0 - options.discount);
  spot.total_dollars =
      total_cost(spot.cost_rate_per_hour, spot.time_to_solution_s);
  spot.mflups_per_dollar_hour =
      spot.prediction.mflups / spot.cost_rate_per_hour;
  return spot;
}

JobGuard Dashboard::make_guard(const DashboardRow& row, real_t tolerance) {
  HEMO_REQUIRE(tolerance >= 0.0, "tolerance must be non-negative");
  JobGuard guard;
  guard.predicted_seconds = row.time_to_solution_s;
  guard.tolerance = tolerance;
  guard.price_per_hour = row.cost_rate_per_hour;
  return guard;
}

}  // namespace hemo::core
