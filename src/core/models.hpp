// The paper's two performance models (its Section II-D).
//
// Both predict the per-timestep runtime of a decomposed LBM workload as
//   T ≈ max_j(t_mem_j) + max_j(t_comm_j)                          (Eq. 6)
// with throughput MFLUPS = points / (T * 1e6)                     (Eq. 7).
//
//  * The DIRECT model uses the real parallel decomposition: per-task byte
//    counts from Eq. 9 and per-message times interpolated from the raw
//    PingPong tables.
//  * The GENERALIZED model estimates everything a priori from aggregate
//    workload numbers: the z-factor (Eqs. 10-11) for the busiest task's
//    bytes, the surface-area halo estimate (Eqs. 13-14), the event-count
//    law (Eq. 15), and the fitted linear communication law (Eqs. 12, 16).
//
// Neither model sees the virtual cluster's hidden efficiency, kernel
// traits, or noise — the models overpredict, as the paper's Figs. 7-8 show.
#pragma once

#include "cluster/virtual_cluster.hpp"
#include "core/calibration.hpp"
#include "units/units.hpp"
#include "util/common.hpp"

namespace hemo::core {

/// A model's per-step prediction with its runtime composition.
struct ModelPrediction {
  units::Seconds t_mem;   ///< max over tasks of the memory term
  units::Seconds t_comm;  ///< max over tasks of the communication term
  // Composition of the communication term:
  units::Seconds t_intra;     ///< direct model: intranodal share
  units::Seconds t_inter;     ///< direct model: internodal share
  units::Seconds t_comm_bw;   ///< generalized model: bandwidth share
  units::Seconds t_comm_lat;  ///< generalized model: latency share
  units::Seconds t_xfer;      ///< CPU-GPU transfer term (GPU plans, Eq. 2)

  units::Seconds step_seconds;
  units::Mflups mflups;
};

/// Eq. 7: throughput of `points` fluid points updated once per `step`.
[[nodiscard]] constexpr units::Mflups mflups_from(real_t points,
                                                  units::Seconds step) {
  return units::Mflups(points / (step.value() * 1e6));
}

/// Wall-clock time to run `timesteps` steps at `step` each.
[[nodiscard]] constexpr units::Seconds time_to_solution(
    units::Seconds step, index_t timesteps) {
  return step * static_cast<real_t>(timesteps);
}

/// Cost of holding an allocation billed at `rate` for `runtime`.
[[nodiscard]] constexpr units::Dollars total_cost(units::DollarsPerHour rate,
                                                  units::Seconds runtime) {
  return units::to_hours(runtime) * rate;
}

/// Direct model: exact counts of `plan`, measured hardware tables of `cal`.
[[nodiscard]] ModelPrediction predict_direct(
    const cluster::WorkloadPlan& plan, const InstanceCalibration& cal);

/// Generalized model: a-priori estimates for `n_tasks` tasks at
/// `tasks_per_node` per node.
[[nodiscard]] ModelPrediction predict_general(
    const WorkloadCalibration& workload, const InstanceCalibration& cal,
    index_t n_tasks, index_t tasks_per_node);

/// Relative value of throughput between two configurations (Eq. 17):
/// r_{B,A} = MFLUPS_B / MFLUPS_A. > 1 means B outperforms A.
[[nodiscard]] real_t relative_value(const ModelPrediction& b,
                                    const ModelPrediction& a);

}  // namespace hemo::core
