#include "core/refinement.hpp"

#include <cmath>

#include "obs/metrics.hpp"

namespace hemo::core {

TermSelector::TermSelector(std::vector<RefinementSample> samples)
    : samples_(std::move(samples)) {
  HEMO_REQUIRE(!samples_.empty(), "TermSelector needs at least one sample");
  for (const auto& s : samples_) {
    HEMO_REQUIRE(s.predicted_step_s > 0.0 && s.measured_step_s > 0.0,
                 "samples need positive step times");
  }
}

real_t TermSelector::error_with(
    const std::vector<const CandidateTerm*>& extra) const {
  real_t acc = 0.0;
  for (const auto& s : samples_) {
    real_t predicted = s.predicted_step_s;
    for (const auto& term : kept_terms_) {
      predicted += term.seconds_per_step(s.n_tasks);
    }
    for (const CandidateTerm* term : extra) {
      predicted += term->seconds_per_step(s.n_tasks);
    }
    acc += std::abs(predicted - s.measured_step_s) / s.measured_step_s;
  }
  return acc / static_cast<real_t>(samples_.size());
}

real_t TermSelector::current_error() const { return error_with({}); }

TermEvaluation TermSelector::check(const CandidateTerm& candidate,
                                   real_t min_improvement) {
  HEMO_REQUIRE(static_cast<bool>(candidate.seconds_per_step),
               "candidate term needs a callable");
  TermEvaluation eval;
  eval.name = candidate.name;
  eval.baseline_error = current_error();
  eval.with_term_error = error_with({&candidate});
  eval.keep = eval.with_term_error + min_improvement <= eval.baseline_error;
  if (eval.keep) {
    kept_terms_.push_back(candidate);
    kept_names_.push_back(candidate.name);
  }
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::global();
  metrics.add("refinement_term_checks_total", 1.0,
              {{"term", eval.name}, {"kept", eval.keep ? "true" : "false"}});
  metrics.set("refinement_term_error_delta",
              eval.baseline_error - eval.with_term_error,
              {{"term", eval.name}});
  return eval;
}

real_t TermSelector::refined_step_s(real_t baseline_step_s,
                                    index_t n_tasks) const {
  HEMO_REQUIRE(baseline_step_s > 0.0, "baseline step time must be positive");
  real_t out = baseline_step_s;
  for (const auto& term : kept_terms_) {
    out += term.seconds_per_step(n_tasks);
  }
  return out;
}

}  // namespace hemo::core
