// The paper's add-and-check model refinement loop (Discussion, §IV):
//
//   "Using our model as a baseline, additional elements of runtime can be
//    added then checked for their impact on the model's ability to predict
//    experimental results. Following the results of this check the element
//    can be added or discarded..."
//
// A CandidateTerm proposes an additive runtime contribution (e.g. per-point
// instruction overhead, cell-model work, CPU-GPU staging). TermSelector
// evaluates each candidate against recorded (prediction, measurement)
// pairs, keeps the ones that reduce the prediction error, and exposes the
// composed, refined predictor.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace hemo::core {

/// One recorded comparison point for refinement.
struct RefinementSample {
  index_t n_tasks = 0;
  // Raw by design: samples cross into the unit-agnostic fit:: layer.
  real_t predicted_step_s = 0.0;  // units-ok(fit-layer sample data)
  real_t measured_step_s = 0.0;   // units-ok(fit-layer sample data)
};

/// A proposed additional runtime element: seconds per step as a function of
/// the task count. Terms must be non-negative.
struct CandidateTerm {
  std::string name;
  std::function<real_t(index_t n_tasks)> seconds_per_step;
};

/// Outcome of checking one candidate.
struct TermEvaluation {
  std::string name;
  real_t baseline_error = 0.0;   ///< mean |rel. error| without the term
  real_t with_term_error = 0.0;  ///< mean |rel. error| with the term
  bool keep = false;             ///< true iff the term reduced the error
};

/// Implements the add-and-check loop over a fixed sample set.
class TermSelector {
 public:
  explicit TermSelector(std::vector<RefinementSample> samples);

  /// Mean |relative error| of the current (baseline + kept terms) model.
  [[nodiscard]] real_t current_error() const;

  /// Checks a candidate against the current model; keeps it iff it
  /// improves the error by at least `min_improvement` (relative, e.g.
  /// 0.01 = one percentage point of mean relative error).
  TermEvaluation check(const CandidateTerm& candidate,
                       real_t min_improvement = 0.0);

  /// Names of the kept terms, in acceptance order.
  [[nodiscard]] const std::vector<std::string>& kept() const noexcept {
    return kept_names_;
  }

  /// Refined step-time prediction for a baseline prediction at n_tasks.
  [[nodiscard]] real_t refined_step_s(  // units-ok(fit-layer interface)
      real_t baseline_step_s,           // units-ok(fit-layer interface)
      index_t n_tasks) const;

 private:
  [[nodiscard]] real_t error_with(
      const std::vector<const CandidateTerm*>& extra) const;

  std::vector<RefinementSample> samples_;
  std::vector<CandidateTerm> kept_terms_;
  std::vector<std::string> kept_names_;
};

}  // namespace hemo::core
