// Calibration: turning microbenchmark measurements into model parameters.
//
// Phase 1 of the paper's framework (its Fig. 1): characterize every CSP
// instance type with STREAM and PingPong, and fit
//   * the two-line memory law (Eq. 8, parameters a1 a2 a3),
//   * the linear communication law (Eq. 12, parameters b and l),
// keeping the raw PingPong tables for the direct model's interpolation.
//
// Phase 2 tunes anatomy-specific parameters from decomposition sweeps of
// the target geometry:
//   * the load-imbalance law z(n_tasks) (Eqs. 10-11, parameters c1 c2),
//   * the communication-event law (Eq. 15, parameters k1 k2).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "cluster/instance.hpp"
#include "fit/interp.hpp"
#include "fit/linear.hpp"
#include "fit/log_models.hpp"
#include "fit/two_line.hpp"
#include "harvey/simulation.hpp"
#include "units/units.hpp"
#include "util/common.hpp"

namespace hemo::core {

/// Everything the models know about one instance type.
struct InstanceCalibration {
  std::string abbrev;
  fit::TwoLineModel memory;  ///< fitted Eq. 8 (MB/s vs threads)
  fit::CommModel inter;      ///< fitted Eq. 12, internodal (us vs bytes)
  fit::CommModel intra;      ///< fitted Eq. 12, intranodal
  /// Raw PingPong tables (bytes -> microseconds) for the direct model.
  std::optional<fit::Interp1D> inter_raw;
  std::optional<fit::Interp1D> intra_raw;

  /// GPU calibration (present only for GPU-equipped instances): device
  /// STREAM bandwidth and the fitted host<->device transfer law.
  std::optional<units::MegabytesPerSec> gpu_bandwidth;
  std::optional<fit::CommModel> gpu_pcie;

  /// Model's memory bandwidth share of one task when `threads` tasks are
  /// active per node (paper: linear sharing).
  [[nodiscard]] units::BytesPerSec task_bandwidth(units::Cores threads) const;
};

/// Runs the simulated STREAM thread sweep and PingPong size sweeps against
/// `profile` and fits everything. This is what a user would run once per
/// candidate instance type.
[[nodiscard]] InstanceCalibration calibrate_instance(
    const cluster::InstanceProfile& profile);

/// Everything the models know about one workload (geometry x kernel).
struct WorkloadCalibration {
  std::string name;
  index_t total_points = 0;
  units::Bytes serial_bytes;      ///< Eq. 9 summed over the serial domain
  units::Bytes point_comm_bytes;  ///< n_point_comm_bytes in Eq. 13
  fit::ImbalanceModel imbalance;  ///< Eq. 11 fit
  fit::EventCountModel events;    ///< Eq. 15 fit
  lbm::KernelConfig kernel;
};

/// Sweeps decompositions of `sim` at the given task counts, measures the
/// actual byte imbalance and communication-event maxima, and fits the
/// Eq. 11 / Eq. 15 parameters. `tasks_per_node` fixes the node mapping for
/// the event fit (the paper's allocations are node-based).
[[nodiscard]] WorkloadCalibration calibrate_workload(
    harvey::Simulation& sim, std::span<const index_t> task_counts,
    index_t tasks_per_node);

/// Returns the calibration of the same anatomy at a finer lattice
/// resolution: `point_factor` multiplies the fluid-point count (a spatial
/// refinement of s voxels per voxel gives point_factor = s^3). Per-point
/// byte costs are resolution-independent, and the z / event-count laws
/// depend on the decomposition structure rather than the point count, so
/// only the totals rescale. The paper's 2048-core experiments (its
/// Fig. 11) run patient-scale resolutions far above what fits in this
/// repository's test geometries; this helper lets the models evaluate
/// those regimes from a coarse calibration.
[[nodiscard]] WorkloadCalibration scale_resolution(
    const WorkloadCalibration& base, real_t point_factor);

}  // namespace hemo::core
