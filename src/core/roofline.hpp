// Roofline analysis (paper Discussion, §IV).
//
// The paper's model assumes LBM is memory-bandwidth bound and suggests
// rooflines for other hardware limits (floating-point throughput) as the
// next refinement: "Roofline models for other hardware constraints ... can
// also be considered in the overall performance model either by an
// approximation such as by adding the theoretical runtime predicted by the
// roofline model...". This module provides that analysis: per-instance
// peak compute and bandwidth ceilings, the kernel's arithmetic intensity,
// and a roofline-adjusted memory term — which also verifies the paper's
// premise that LBM sits far below the ridge point on every tested system.
#pragma once

#include "cluster/instance.hpp"
#include "core/models.hpp"
#include "lbm/access_counts.hpp"
#include "lbm/mesh.hpp"
#include "units/units.hpp"
#include "util/common.hpp"

namespace hemo::core {

/// Which ceiling binds a kernel on an instance.
enum class Bound { kMemory, kCompute };

/// Per-node ceilings of one instance at a given active-thread count.
struct Roofline {
  units::GflopsPerSec peak;            ///< node FP64 peak at `threads` cores
  units::GigabytesPerSec bandwidth;    ///< node STREAM-law bandwidth
  units::FlopsPerByte ridge;           ///< peak / bandwidth
};

/// Builds the node roofline: peak = threads * clock * flops_per_cycle
/// (default 8 FP64/cycle, an AVX2 FMA pipe) and the two-line bandwidth at
/// that thread count.
[[nodiscard]] Roofline instance_roofline(
    const cluster::InstanceProfile& profile, index_t threads,
    real_t flops_per_cycle = 8.0);

/// Arithmetic intensity of one kernel configuration over a mesh:
/// serial flops / serial bytes.
[[nodiscard]] units::FlopsPerByte arithmetic_intensity(
    const lbm::FluidMesh& mesh, const lbm::KernelConfig& config);

/// Which ceiling binds the kernel on this roofline.
[[nodiscard]] Bound bound_for(const Roofline& roofline,
                              units::FlopsPerByte intensity);

/// Roofline-corrected prediction: replaces the memory term with
/// max(memory term, compute term) where the compute term is the task's
/// flops over its share of the node's peak. For LBM this is a no-op on
/// every catalog instance (memory-bound), which is itself a checked claim.
[[nodiscard]] ModelPrediction roofline_adjusted(
    const ModelPrediction& prediction, const Roofline& roofline,
    units::Flops task_flops, real_t task_share);

}  // namespace hemo::core
