#include "core/models.hpp"

#include <algorithm>
#include <cmath>

namespace hemo::core {

ModelPrediction predict_direct(const cluster::WorkloadPlan& plan,
                               const InstanceCalibration& cal) {
  HEMO_REQUIRE(plan.n_tasks >= 1, "empty plan");
  HEMO_REQUIRE(cal.inter_raw && cal.intra_raw,
               "direct model needs raw PingPong tables");
  HEMO_REQUIRE(!plan.on_gpu || (cal.gpu_bandwidth && cal.gpu_pcie),
               "GPU plan needs a GPU-calibrated instance");

  // Memory term per task: Eq. 9 bytes over the shared two-line bandwidth
  // (CPU) or the calibrated device bandwidth (GPU, one task per device).
  // The CPU model assumes each of the node's resident tasks gets an equal
  // share of the node bandwidth at that thread count.
  std::vector<index_t> tasks_on_node(static_cast<std::size_t>(plan.n_nodes),
                                     0);
  for (std::int32_t node : plan.task_node) {
    ++tasks_on_node[static_cast<std::size_t>(node)];
  }
  real_t max_mem = 0.0;
  for (index_t t = 0; t < plan.n_tasks; ++t) {
    real_t bw = 0.0;
    if (plan.on_gpu) {
      bw = cal.gpu_bandwidth->value() * 1e6;
    } else {
      const index_t resident = tasks_on_node[static_cast<std::size_t>(
          plan.task_node[static_cast<std::size_t>(t)])];
      bw = cal.task_bandwidth(units::Cores(resident)).value();
    }
    max_mem = std::max(
        max_mem,
        plan.task_bytes[static_cast<std::size_t>(t)].value() / bw);
  }

  // Communication term per task: interpolate each message's time from the
  // raw PingPong data (the paper's Section III-G: "Direct modeling here
  // interpolates the communication time from PingPong measurement raw
  // data").
  std::vector<real_t> intra(static_cast<std::size_t>(plan.n_tasks), 0.0);
  std::vector<real_t> inter(static_cast<std::size_t>(plan.n_tasks), 0.0);
  for (const auto& m : plan.messages) {
    const fit::Interp1D& table = m.internode ? *cal.inter_raw
                                             : *cal.intra_raw;
    const real_t t_s = table(m.bytes.value()) * 1e-6;
    for (std::int32_t endpoint : {m.from, m.to}) {
      (m.internode ? inter : intra)[static_cast<std::size_t>(endpoint)] +=
          t_s;
    }
  }
  // GPU plans: every message additionally crosses PCIe at both endpoints.
  std::vector<real_t> xfer(static_cast<std::size_t>(plan.n_tasks), 0.0);
  if (plan.on_gpu) {
    for (const auto& m : plan.messages) {
      // gpu_pcie is in MB/s + us, so time() yields microseconds.
      const real_t t_s = cal.gpu_pcie->time(m.bytes.value()) * 1e-6;
      xfer[static_cast<std::size_t>(m.from)] += t_s;
      xfer[static_cast<std::size_t>(m.to)] += t_s;
    }
  }

  ModelPrediction pred;
  pred.t_mem = units::Seconds(max_mem);
  index_t critical = 0;
  for (index_t t = 0; t < plan.n_tasks; ++t) {
    const units::Seconds total(intra[static_cast<std::size_t>(t)] +
                               inter[static_cast<std::size_t>(t)] +
                               xfer[static_cast<std::size_t>(t)]);
    if (total > pred.t_comm) {
      pred.t_comm = total;
      critical = t;
    }
  }
  pred.t_intra = units::Seconds(intra[static_cast<std::size_t>(critical)]);
  pred.t_inter = units::Seconds(inter[static_cast<std::size_t>(critical)]);
  pred.t_xfer = units::Seconds(xfer[static_cast<std::size_t>(critical)]);
  pred.step_seconds = pred.t_mem + pred.t_comm;
  pred.mflups =
      mflups_from(static_cast<real_t>(plan.total_points), pred.step_seconds);
  return pred;
}

ModelPrediction predict_general(const WorkloadCalibration& workload,
                                const InstanceCalibration& cal,
                                index_t n_tasks, index_t tasks_per_node) {
  HEMO_REQUIRE(n_tasks >= 1 && tasks_per_node >= 1,
               "need positive task counts");
  const real_t n = static_cast<real_t>(n_tasks);
  const real_t n_nodes = std::ceil(n / static_cast<real_t>(tasks_per_node));

  // Load imbalance factor (Eq. 11) and busiest-task bytes (Eq. 10).
  const real_t z = workload.imbalance.z(n);
  const units::Bytes max_bytes(z * workload.serial_bytes.value() / n);

  // Memory term with the linear bandwidth-sharing assumption.
  const index_t threads =
      std::min<index_t>(n_tasks, tasks_per_node);
  const units::BytesPerSec bw = cal.task_bandwidth(units::Cores(threads));
  ModelPrediction pred;
  pred.t_mem = max_bytes / bw;

  // Halo size estimate (Eqs. 13-14): surface area of the busiest task's
  // sub-cube, both sent and received.
  if (n_tasks > 1) {
    const real_t w = std::min(std::log2(n), 6.0);
    const real_t points_per_task =
        z * static_cast<real_t>(workload.total_points) / n;
    const real_t m_max_total = w / 6.0 *
                               std::pow(points_per_task, 2.0 / 3.0) * 2.0 *
                               workload.point_comm_bytes.value();

    // Event count (Eq. 15) and the linear communication time (Eq. 16).
    // Allocations confined to one node exchange halos through shared
    // memory, so the intranodal fit applies; multi-node allocations use
    // the internodal fit for every event — the generalized model's known
    // compromise (it overestimates internodal events and underestimates
    // intranodal ones, paper Section III-G).
    const fit::CommModel& comm = n_nodes > 1.0 ? cal.inter : cal.intra;
    const real_t events = workload.events.events(n, n_nodes);
    const real_t bw_term_s =
        m_max_total / (comm.bandwidth * 1e6);  // MB/s -> B/s
    const real_t lat_term_s = events * comm.latency * 1e-6;
    pred.t_comm_bw = units::Seconds(bw_term_s);
    pred.t_comm_lat = units::Seconds(lat_term_s);
    pred.t_comm = units::Seconds(bw_term_s + lat_term_s);
  }

  pred.step_seconds = pred.t_mem + pred.t_comm;
  pred.mflups = mflups_from(static_cast<real_t>(workload.total_points),
                            pred.step_seconds);
  return pred;
}

real_t relative_value(const ModelPrediction& b, const ModelPrediction& a) {
  HEMO_REQUIRE(a.mflups.value() > 0.0 && b.mflups.value() > 0.0,
               "relative_value needs positive throughputs");
  return b.mflups / a.mflups;
}

}  // namespace hemo::core
