// The CSP Option Dashboard (paper Fig. 1 and Section IV).
//
// For a calibrated workload, the dashboard evaluates every candidate
// instance type at the requested core counts with the generalized model,
// derives cost metrics (time-to-solution, total dollars, throughput per
// cost rate), builds the relative-value matrix r_{B,A} of Eq. 17, and
// recommends a configuration under a user objective: maximum throughput,
// minimum cost, or cheapest-within-deadline.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/calibration.hpp"
#include "core/campaign.hpp"
#include "core/models.hpp"
#include "units/units.hpp"
#include "util/common.hpp"

namespace hemo::core {

/// A simulation job: how much work the user wants to run.
struct JobSpec {
  index_t timesteps = 100000;
};

/// One evaluated (instance, core count) option.
struct DashboardRow {
  std::string instance;
  index_t n_tasks = 0;
  index_t n_nodes = 0;
  ModelPrediction prediction;
  units::Seconds time_to_solution_s;
  units::DollarsPerHour cost_rate_per_hour;  ///< for the whole allocation
  units::Dollars total_dollars;
  units::MflupsPerDollarHour mflups_per_dollar_hour;
};

/// Preemptible (spot) capacity pricing. Spot instances trade a discount
/// against interruptions; with checkpoint/restart (lbm/io.hpp) each
/// preemption costs the work since the last checkpoint plus a restart.
/// The expected-value model here lets the dashboard compare on-demand vs
/// spot per option.
struct SpotOptions {
  real_t discount = 0.70;  ///< spot price = (1 - discount) * list
  units::PerHour preemptions_per_hour{0.15};  ///< mean interruption rate
  units::Seconds checkpoint_interval_s{600.0};
  units::Seconds restart_overhead_s{120.0};  ///< re-provision + reload time
};

/// Returns the row re-priced for spot capacity: the expected wall time
/// grows by the expected preemption losses, and the cost rate shrinks by
/// the discount. Throughput figures are left untouched (they describe the
/// hardware, not the tenancy).
[[nodiscard]] DashboardRow apply_spot_pricing(const DashboardRow& row,
                                              const SpotOptions& options);

/// User objective for the recommendation.
enum class Objective {
  kMaxThroughput,
  kMinCost,
  kDeadline,  ///< cheapest option meeting `deadline`
};

/// One candidate instance: profile + its calibration.
struct InstanceOption {
  const cluster::InstanceProfile* profile = nullptr;
  InstanceCalibration calibration;
};

/// The dashboard.
class Dashboard {
 public:
  /// Calibrates every profile in `profiles` (phase 1 of the framework).
  explicit Dashboard(
      std::vector<const cluster::InstanceProfile*> profiles);

  [[nodiscard]] const std::vector<InstanceOption>& options() const noexcept {
    return options_;
  }

  /// Evaluates the workload at each instance and core count. An optional
  /// campaign tracker supplies the learned correction factor, refining the
  /// raw model predictions (phase 2 feedback loop).
  [[nodiscard]] std::vector<DashboardRow> evaluate(
      const WorkloadCalibration& workload, const JobSpec& job,
      std::span<const index_t> core_counts,
      const CampaignTracker* refinement = nullptr) const;

  /// Eq. 17 matrix over rows (r[b][a] = MFLUPS_b / MFLUPS_a).
  [[nodiscard]] static std::vector<std::vector<real_t>> relative_value_matrix(
      std::span<const DashboardRow> rows);

  /// Recommends a row under the objective. `deadline` is required for
  /// Objective::kDeadline. Returns nullopt if no row qualifies.
  [[nodiscard]] static std::optional<DashboardRow> recommend(
      std::span<const DashboardRow> rows, Objective objective,
      units::Seconds deadline = units::Seconds{});

  /// Builds the overrun guard for a chosen row (tolerance per paper: 10 %).
  [[nodiscard]] static JobGuard make_guard(const DashboardRow& row,
                                           real_t tolerance = 0.10);

 private:
  std::vector<InstanceOption> options_;
};

}  // namespace hemo::core
