#include "core/persistence.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <vector>

namespace hemo::core {

namespace {

constexpr char kCampaignMagic[] = "hemocloud-campaign-v1";
constexpr char kCalibrationMagic[] = "hemocloud-calibration-v1";

std::ostream& full(std::ostream& os) {
  os << std::setprecision(17);
  return os;
}

[[noreturn]] void malformed(const std::string& what) {
  throw NumericError("persistence: malformed input (" + what + ")");
}

std::string read_line(std::istream& is, const std::string& context) {
  std::string line;
  if (!std::getline(is, line)) malformed("missing " + context);
  return line;
}

}  // namespace

void save_campaign(const CampaignTracker& tracker, std::ostream& os) {
  full(os) << kCampaignMagic << "\n" << tracker.size() << "\n";
  for (const Observation& o : tracker.observations()) {
    os << o.workload << "\t" << o.instance << "\t" << o.n_tasks << "\t"
       << o.predicted_mflups.value() << "\t" << o.measured_mflups.value()
       << "\n";
  }
  if (!os) throw NumericError("save_campaign: stream write failed");
}

CampaignTracker load_campaign(std::istream& is) {
  if (read_line(is, "magic") != kCampaignMagic) malformed("bad magic");
  index_t count = 0;
  {
    std::istringstream header(read_line(is, "count"));
    if (!(header >> count) || count < 0) malformed("count");
  }
  CampaignTracker tracker;
  for (index_t i = 0; i < count; ++i) {
    const std::string line = read_line(is, "observation");
    std::istringstream row(line);
    Observation o;
    if (!std::getline(row, o.workload, '\t') ||
        !std::getline(row, o.instance, '\t')) {
      malformed("observation names");
    }
    real_t predicted = 0.0, measured = 0.0;
    if (!(row >> o.n_tasks >> predicted >> measured)) {
      malformed("observation numbers");
    }
    o.predicted_mflups = units::Mflups(predicted);
    o.measured_mflups = units::Mflups(measured);
    tracker.record(std::move(o));
  }
  return tracker;
}

void save_calibration(const InstanceCalibration& calibration,
                      std::ostream& os) {
  full(os) << kCalibrationMagic << "\n"
           << calibration.abbrev << "\n"
           << calibration.memory.a1 << "\t" << calibration.memory.a2 << "\t"
           << calibration.memory.a3 << "\n"
           << calibration.inter.bandwidth << "\t"
           << calibration.inter.latency << "\n"
           << calibration.intra.bandwidth << "\t"
           << calibration.intra.latency << "\n";

  auto write_table = [&](const std::optional<fit::Interp1D>& table) {
    if (!table) {
      os << 0 << "\n";
      return;
    }
    // Reconstruct the knots by sampling exactly at the stored positions:
    // Interp1D does not expose its knots, so persist a dense resampling
    // over the standard size ladder instead.
    std::vector<real_t> xs;
    xs.push_back(table->min_x());
    for (real_t x = 1.0; x < table->max_x(); x *= 2.0) {
      if (x > table->min_x()) xs.push_back(x);
    }
    xs.push_back(table->max_x());
    os << static_cast<index_t>(xs.size()) << "\n";
    for (real_t x : xs) os << x << "\t" << (*table)(x) << "\n";
  };
  write_table(calibration.inter_raw);
  write_table(calibration.intra_raw);

  if (calibration.gpu_bandwidth && calibration.gpu_pcie) {
    os << 1 << "\n"
       << calibration.gpu_bandwidth->value() << "\t"
       << calibration.gpu_pcie->bandwidth << "\t"
       << calibration.gpu_pcie->latency << "\n";
  } else {
    os << 0 << "\n";
  }
  if (!os) throw NumericError("save_calibration: stream write failed");
}

InstanceCalibration load_calibration(std::istream& is) {
  if (read_line(is, "magic") != kCalibrationMagic) malformed("bad magic");
  InstanceCalibration cal;
  cal.abbrev = read_line(is, "abbrev");
  {
    std::istringstream row(read_line(is, "memory"));
    if (!(row >> cal.memory.a1 >> cal.memory.a2 >> cal.memory.a3)) {
      malformed("memory law");
    }
  }
  auto read_comm = [&](fit::CommModel& model, const char* what) {
    std::istringstream row(read_line(is, what));
    if (!(row >> model.bandwidth >> model.latency)) malformed(what);
  };
  read_comm(cal.inter, "inter");
  read_comm(cal.intra, "intra");

  auto read_table = [&](std::optional<fit::Interp1D>& table) {
    index_t count = 0;
    {
      std::istringstream row(read_line(is, "table size"));
      if (!(row >> count) || count < 0) malformed("table size");
    }
    if (count == 0) return;
    std::vector<real_t> xs, ys;
    for (index_t i = 0; i < count; ++i) {
      std::istringstream row(read_line(is, "table row"));
      real_t x = 0, y = 0;
      if (!(row >> x >> y)) malformed("table row");
      xs.push_back(x);
      ys.push_back(y);
    }
    table.emplace(std::move(xs), std::move(ys));
  };
  read_table(cal.inter_raw);
  read_table(cal.intra_raw);

  index_t has_gpu = 0;
  {
    std::istringstream row(read_line(is, "gpu flag"));
    if (!(row >> has_gpu)) malformed("gpu flag");
  }
  if (has_gpu != 0) {
    std::istringstream row(read_line(is, "gpu"));
    real_t bw = 0;
    fit::CommModel pcie;
    if (!(row >> bw >> pcie.bandwidth >> pcie.latency)) malformed("gpu");
    cal.gpu_bandwidth = units::MegabytesPerSec(bw);
    cal.gpu_pcie = pcie;
  }
  return cal;
}

void save_campaign_file(const CampaignTracker& tracker,
                        const std::string& path) {
  std::ofstream os(path);
  if (!os) throw NumericError("save_campaign_file: cannot open " + path);
  save_campaign(tracker, os);
}

CampaignTracker load_campaign_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw NumericError("load_campaign_file: cannot open " + path);
  return load_campaign(is);
}

void save_calibration_file(const InstanceCalibration& calibration,
                           const std::string& path) {
  std::ofstream os(path);
  if (!os) throw NumericError("save_calibration_file: cannot open " + path);
  save_calibration(calibration, os);
}

InstanceCalibration load_calibration_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw NumericError("load_calibration_file: cannot open " + path);
  return load_calibration(is);
}

}  // namespace hemo::core
