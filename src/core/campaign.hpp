// Campaign tracking and iterative model refinement.
//
// The paper's framework stores every measured performance next to the
// model's estimate, refines the model from the accumulated data, and uses
// the (refined) prediction to impose job limits that protect against
// inadvertent cost overruns (Sections II / IV). CampaignTracker implements
// that loop: a multiplicative correction factor is learned as the
// geometric mean of measured/predicted ratios, applied to future
// predictions, and updated as more observations arrive.
#pragma once

#include <string>
#include <vector>

#include "units/units.hpp"
#include "util/common.hpp"

namespace hemo::core {

/// One stored (prediction, measurement) pair.
struct Observation {
  std::string workload;
  std::string instance;
  index_t n_tasks = 0;
  units::Mflups predicted_mflups;
  units::Mflups measured_mflups;
};

/// Accumulates observations and refines predictions.
class CampaignTracker {
 public:
  void record(Observation obs);

  [[nodiscard]] index_t size() const noexcept {
    return static_cast<index_t>(observations_.size());
  }
  [[nodiscard]] const std::vector<Observation>& observations() const noexcept {
    return observations_;
  }

  /// Geometric mean of measured/predicted throughput ratios; 1.0 with no
  /// data. < 1 means the model overpredicts (the expected regime).
  [[nodiscard]] real_t correction_factor() const;

  /// Applies the learned correction to a raw model throughput.
  [[nodiscard]] units::Mflups refined_mflups(units::Mflups raw_mflups) const {
    return raw_mflups * correction_factor();
  }

  /// Mean absolute relative error of raw predictions vs measurements.
  [[nodiscard]] real_t mean_abs_relative_error() const;

  /// Same, after applying the correction factor (leave-none-out; reported
  /// to show the refinement converging).
  [[nodiscard]] real_t refined_mean_abs_relative_error() const;

 private:
  std::vector<Observation> observations_;
};

/// Model-driven job limit: the user allows `tolerance` (e.g. 0.10) over the
/// predicted runtime and hard-stops the job beyond it (paper Section IV).
struct JobGuard {
  units::Seconds predicted_seconds;
  real_t tolerance = 0.10;
  units::DollarsPerHour price_per_hour;  ///< whole-allocation cost rate

  [[nodiscard]] units::Seconds max_seconds() const noexcept {
    return predicted_seconds * (1.0 + tolerance);
  }
  [[nodiscard]] units::Dollars max_dollars() const noexcept {
    return units::to_hours(max_seconds()) * price_per_hour;
  }

  /// True if a job that has completed `fraction_done` of its work in
  /// `elapsed_seconds` is on pace to violate the limit and should stop.
  [[nodiscard]] bool should_abort(units::Seconds elapsed_seconds,
                                  real_t fraction_done) const;
};

}  // namespace hemo::core
