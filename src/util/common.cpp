#include "util/common.hpp"

#include <sstream>

namespace hemo::detail {

void throw_precondition(const char* expr, const char* file, int line,
                        const std::string& msg) {
  std::ostringstream oss;
  oss << "precondition failed: " << msg << " [" << expr << " at " << file
      << ":" << line << "]";
  throw PreconditionError(oss.str());
}

}  // namespace hemo::detail
