// Compile-time concurrency safety: annotated synchronization primitives.
//
// Every mutex in src/ goes through this header so Clang's Thread Safety
// Analysis (-Wthread-safety, wired up in CMakeLists.txt and promoted to an
// error under HEMO_WERROR) can prove the locking protocol at compile time:
// which capability guards which member (HEMO_GUARDED_BY), which helpers may
// only run with the lock held (HEMO_REQUIRES), and which public entry
// points must be called without it (HEMO_EXCLUDES). On GCC the annotation
// macros expand to nothing and the wrappers compile down to the plain
// std primitives they hold — zero behavioural or layout surprises, which
// is why the TSan jobs and the GCC tier-1 build keep running unchanged.
//
// The discipline is enforced two ways:
//   * tools/lint_sync.py (ctest `lint_sync`) fails any raw std::mutex /
//     std::lock_guard / std::unique_lock / std::condition_variable /
//     std::barrier / bare std::atomic in src/ that is not either in this
//     header or annotated `// sync-ok(reason)` / `// atomic-ok(protocol)`;
//   * tests/compile_fail/thread_safety/ probes prove the analysis has
//     teeth: unguarded reads, lock-free REQUIRES calls, double-acquires,
//     and guarded-reference escapes all fail to compile under Clang.
//
// Lock-free surfaces TSA cannot see (mailbox epoch stamps, enabled flags,
// barrier completion steps) carry `// atomic-ok(protocol)` tags and are
// documented in DESIGN.md §13's atomic protocol table.
#pragma once

#include <chrono>
#include <condition_variable>  // sync-ok(wrapped by hemo::CondVar below)
#include <mutex>               // sync-ok(wrapped by hemo::Mutex below)

// ---------------------------------------------------------------------------
// Thread Safety Analysis annotation macros (Clang-only; no-ops elsewhere).
// Names follow the capability vocabulary of the Clang TSA documentation.
// ---------------------------------------------------------------------------
#if defined(__clang__)
#define HEMO_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define HEMO_THREAD_ANNOTATION(x)  // expands to nothing: GCC, MSVC, ...
#endif

/// Declares a type to be a capability ("mutex", "role", ...).
#define HEMO_CAPABILITY(x) HEMO_THREAD_ANNOTATION(capability(x))
/// Declares an RAII type that acquires on construction, releases on
/// destruction (std::lock_guard shape).
#define HEMO_SCOPED_CAPABILITY HEMO_THREAD_ANNOTATION(scoped_lockable)
/// Data member readable/writable only while holding the capability.
#define HEMO_GUARDED_BY(x) HEMO_THREAD_ANNOTATION(guarded_by(x))
/// Pointer member whose *pointee* is guarded by the capability.
#define HEMO_PT_GUARDED_BY(x) HEMO_THREAD_ANNOTATION(pt_guarded_by(x))
/// Lock-ordering declarations (deadlock prevention).
#define HEMO_ACQUIRED_BEFORE(...) \
  HEMO_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define HEMO_ACQUIRED_AFTER(...) \
  HEMO_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
/// Function may only be called while already holding the capability.
#define HEMO_REQUIRES(...) \
  HEMO_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define HEMO_REQUIRES_SHARED(...) \
  HEMO_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
/// Function acquires the capability and holds it on return.
#define HEMO_ACQUIRE(...) \
  HEMO_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases a held capability.
#define HEMO_RELEASE(...) \
  HEMO_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns the given value.
#define HEMO_TRY_ACQUIRE(...) \
  HEMO_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Function must be called *without* the capability (it takes it itself).
#define HEMO_EXCLUDES(...) HEMO_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Function returns a reference to the named capability.
#define HEMO_RETURN_CAPABILITY(x) HEMO_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch: disables the analysis for one function. Every use needs a
/// comment explaining why the protocol is correct anyway.
#define HEMO_NO_THREAD_SAFETY_ANALYSIS \
  HEMO_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace hemo {

class CondVar;

/// A std::mutex declared as a TSA capability. Prefer scoped MutexLock over
/// manual lock()/unlock() pairs; try_lock() exists for contention probes.
class HEMO_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() HEMO_ACQUIRE() { mutex_.lock(); }
  void unlock() HEMO_RELEASE() { mutex_.unlock(); }
  [[nodiscard]] bool try_lock() HEMO_TRY_ACQUIRE(true) {
    return mutex_.try_lock();
  }

 private:
  friend class CondVar;  ///< wait() releases/reacquires the raw mutex
  std::mutex mutex_;     // sync-ok(the capability this wrapper annotates)
};

/// RAII scoped acquisition of a Mutex (std::lock_guard shape, visible to
/// the analysis as a scoped capability).
class HEMO_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) HEMO_ACQUIRE(mutex) : mutex_(&mutex) {
    mutex_->lock();
  }
  ~MutexLock() HEMO_RELEASE() { mutex_->unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mutex_;
};

/// Condition variable paired with hemo::Mutex. wait() must be called with
/// the mutex held (it atomically releases while blocked and reacquires
/// before returning, exactly like std::condition_variable); guard the
/// predicate with the usual `while (!pred) cv.wait(mutex);` loop.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  void wait(Mutex& mutex) HEMO_REQUIRES(mutex) {
    // Adopt the already-held raw mutex for the wait, then release the
    // unique_lock's ownership claim without unlocking — the caller's
    // MutexLock (and the analysis) still own the capability throughout.
    std::unique_lock<std::mutex> lock(  // sync-ok(adopt/release wait shim)
        mutex.mutex_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// Timed wait (same adopt/release shim as wait()). Returns false on
  /// timeout, true when notified; either way the mutex is held again on
  /// return. Spurious wakeups are possible — loop on the predicate.
  template <class Rep, class Period>
  bool wait_for(Mutex& mutex,
                std::chrono::duration<Rep, Period> timeout)
      HEMO_REQUIRES(mutex) {
    std::unique_lock<std::mutex> lock(  // sync-ok(adopt/release wait shim)
        mutex.mutex_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();
    return status == std::cv_status::no_timeout;
  }

 private:
  std::condition_variable cv_;  // sync-ok(wrapped primitive)
};

}  // namespace hemo
