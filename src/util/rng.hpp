// Deterministic random number generation.
//
// All stochastic behaviour in HemoCloud (cloud noise, synthetic workload
// jitter) flows through these generators so that every experiment is exactly
// reproducible from its seed. We implement SplitMix64 (for seeding / hashing
// seed tuples) and xoshiro256** (bulk generation), both public-domain
// algorithms by Blackman & Vigna.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

#include "util/common.hpp"

namespace hemo {

/// Parses a seed from `text` (decimal or 0x-prefixed hex). Returns
/// `fallback` when text is null, empty, or not a number. Exposed separately
/// from global_seed() so the parsing rules are unit-testable without
/// touching the process environment cache.
[[nodiscard]] std::uint64_t parse_seed(const char* text,
                                       std::uint64_t fallback) noexcept;

/// The process-wide default seed: the HEMO_SEED environment variable when
/// set, else 42. Read once and cached, and the effective value is logged to
/// stderr on first use, so any test or bench run is reproducible from the
/// shell (`HEMO_SEED=123 ctest ...` replays the exact streams).
[[nodiscard]] std::uint64_t global_seed() noexcept;

/// SplitMix64: used to expand a single 64-bit seed into independent streams
/// and to hash seed tuples (instance id, day, hour, rank) into seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Combine an arbitrary number of 64-bit values into one seed.
/// Order-sensitive, so (a, b) and (b, a) give different streams.
template <typename... Parts>
std::uint64_t hash_seed(std::uint64_t first, Parts... rest) noexcept {
  std::uint64_t h = SplitMix64(first).next();
  ((h = SplitMix64(h ^ static_cast<std::uint64_t>(rest)).next()), ...);
  return h;
}

/// xoshiro256**: fast, high-quality 64-bit PRNG for bulk draws.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Standard normal deviate via Marsaglia polar method (deterministic,
  /// no state beyond the generator itself: the spare value is discarded
  /// so draws depend only on the stream position).
  double gaussian() noexcept {
    for (;;) {
      const double u = uniform(-1.0, 1.0);
      const double v = uniform(-1.0, 1.0);
      const double s = u * u + v * v;
      if (s > 0.0 && s < 1.0) {
        return u * std::sqrt(-2.0 * std::log(s) / s);
      }
    }
  }

  /// Normal deviate with the given mean and standard deviation.
  double gaussian(double mean, double stddev) noexcept {
    return mean + stddev * gaussian();
  }

  /// Integer in [0, n). Requires n > 0.
  index_t below(index_t n) noexcept {
    return static_cast<index_t>(next() % static_cast<std::uint64_t>(n));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace hemo
