// Plain-text table rendering for benchmark outputs.
//
// Every bench binary reproduces a paper table or figure as rows of text;
// TextTable gives them a consistent, aligned look without pulling in a
// formatting library.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace hemo {

/// Column alignment inside a TextTable.
enum class Align { kLeft, kRight };

/// A simple monospace table: set a header, append rows of strings, print.
class TextTable {
 public:
  TextTable() = default;

  /// Replaces the header row. Column count of the table is fixed by the
  /// longest row seen (header included); shorter rows are padded.
  void set_header(std::vector<std::string> header);

  /// Appends one data row.
  void add_row(std::vector<std::string> row);

  /// Convenience: format a double with the given precision.
  static std::string num(double v, int precision = 2);

  /// Convenience: format an integer.
  static std::string num(index_t v);

  /// Renders the table. Numeric-looking cells are right-aligned unless
  /// `force_left` is set.
  void print(std::ostream& os) const;

  /// Renders to a string (used by tests).
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] index_t row_count() const noexcept {
    return static_cast<index_t>(rows_.size());
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Writes rows as CSV (comma-separated, minimal quoting). Used so that the
/// bench binaries can optionally emit machine-readable series for plotting.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  void row(const std::vector<std::string>& cells);

 private:
  static std::string escape(const std::string& cell);
  std::ostream& os_;
};

}  // namespace hemo
