#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace hemo {

namespace {

bool looks_numeric(const std::string& cell) {
  if (cell.empty()) return false;
  bool digit_seen = false;
  for (char c : cell) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit_seen = true;
    } else if (c != '.' && c != '-' && c != '+' && c != 'e' && c != 'E' &&
               c != '%' && c != ',' && c != 'x') {
      return false;
    }
  }
  return digit_seen;
}

}  // namespace

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << v;
  return oss.str();
}

std::string TextTable::num(index_t v) { return std::to_string(v); }

void TextTable::print(std::ostream& os) const {
  // Determine the column count and widths.
  index_t ncols = static_cast<index_t>(header_.size());
  for (const auto& row : rows_) {
    ncols = std::max(ncols, static_cast<index_t>(row.size()));
  }
  if (ncols == 0) return;

  std::vector<index_t> widths(static_cast<std::size_t>(ncols), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (index_t c = 0; c < static_cast<index_t>(row.size()); ++c) {
      widths[static_cast<std::size_t>(c)] =
          std::max(widths[static_cast<std::size_t>(c)],
                   static_cast<index_t>(row[static_cast<std::size_t>(c)].size()));
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  auto print_row = [&](const std::vector<std::string>& row, bool is_header) {
    os << "|";
    for (index_t c = 0; c < ncols; ++c) {
      const std::string cell = c < static_cast<index_t>(row.size())
                                   ? row[static_cast<std::size_t>(c)]
                                   : std::string{};
      const index_t w = widths[static_cast<std::size_t>(c)];
      const bool right = !is_header && looks_numeric(cell);
      os << ' ';
      if (right) {
        os << std::setw(static_cast<int>(w)) << std::right << cell;
      } else {
        os << std::setw(static_cast<int>(w)) << std::left << cell;
      }
      os << " |";
    }
    os << '\n';
  };

  if (!header_.empty()) {
    print_row(header_, /*is_header=*/true);
    os << "|";
    for (index_t c = 0; c < ncols; ++c) {
      os << std::string(static_cast<std::size_t>(
                            widths[static_cast<std::size_t>(c)] + 2),
                        '-')
         << "|";
    }
    os << '\n';
  }
  for (const auto& row : rows_) print_row(row, /*is_header=*/false);
}

std::string TextTable::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) os_ << ',';
    os_ << escape(cells[i]);
  }
  os_ << '\n';
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace hemo
