#include "util/rng.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "obs/log.hpp"

namespace hemo {

std::uint64_t parse_seed(const char* text, std::uint64_t fallback) noexcept {
  if (text == nullptr || *text == '\0') return fallback;
  char* end = nullptr;
  // Base 0 accepts decimal and 0x-prefixed hex; reject trailing garbage so
  // a typo ("42x") falls back loudly rather than truncating silently.
  const unsigned long long value = std::strtoull(text, &end, 0);
  if (end == text || *end != '\0') return fallback;
  return static_cast<std::uint64_t>(value);
}

std::uint64_t global_seed() noexcept {
  static const std::uint64_t seed = [] {
    // Read exactly once, before any worker thread exists (function-local
    // static init), so the getenv race concurrency-mt-unsafe guards
    // against cannot occur.
    const char* env = std::getenv("HEMO_SEED");  // NOLINT(concurrency-mt-unsafe)
    const std::uint64_t s = parse_seed(env, 42);
    HEMO_LOG_INFO("effective seed %" PRIu64 " (%s)", s,
                  env != nullptr ? "from HEMO_SEED"
                                 : "default; set HEMO_SEED to override");
    return s;
  }();
  return seed;
}

}  // namespace hemo
