// Common type aliases and small helpers shared across all HemoCloud modules.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace hemo {

/// Signed index type used for all array arithmetic (C++ Core Guidelines
/// ES.102: use signed types for arithmetic; ES.107: don't use unsigned for
/// subscripts beyond interfacing with the standard library).
using index_t = std::ptrdiff_t;

/// Floating-point type for model arithmetic. LBM state arrays choose their
/// own precision via templates; the performance model always uses double.
using real_t = double;

/// Exception thrown on precondition violations in public APIs.
class PreconditionError : public std::logic_error {
 public:
  explicit PreconditionError(const std::string& what_arg)
      : std::logic_error(what_arg) {}
};

/// Exception thrown when a numeric routine cannot produce a valid result
/// (singular fit, empty dataset, non-converged iteration).
class NumericError : public std::runtime_error {
 public:
  explicit NumericError(const std::string& what_arg)
      : std::runtime_error(what_arg) {}
};

namespace detail {
[[noreturn]] void throw_precondition(const char* expr, const char* file,
                                     int line, const std::string& msg);
}  // namespace detail

/// Precondition check that is always on (cheap checks on public interfaces).
#define HEMO_REQUIRE(expr, msg)                                         \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::hemo::detail::throw_precondition(#expr, __FILE__, __LINE__,     \
                                         (msg));                        \
    }                                                                   \
  } while (false)

}  // namespace hemo
