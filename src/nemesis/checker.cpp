#include "nemesis/checker.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

namespace hemo::nemesis {

namespace {

using sched::ProtocolEvent;
using sched::ProtocolEventKind;

/// Dollar comparisons: cumulative values are produced by the same
/// floating-point accumulation the deltas describe, so agreement is exact
/// in practice; the tolerance only forgives representation noise, never a
/// real double charge (the smallest attempt costs are ~1e-4 USD).
bool usd_equal(real_t a, real_t b) {
  return std::abs(a - b) <= 1e-9 * std::max({real_t(1.0), std::abs(a),
                                             std::abs(b)});
}

std::string num(real_t value) {
  std::ostringstream os;
  os << value;
  return os.str();
}

/// Per-job protocol state machine (specs/executor_protocol.md §3).
struct JobTrack {
  enum class State { kQueued, kRunning, kStopping, kTerminal };

  bool submitted = false;
  State state = State::kQueued;
  index_t attempts = 0;  ///< placed count so far
  index_t steps = 0;     ///< cumulative steps at last queue/settle event
  real_t usd = 0.0;      ///< cumulative spend at last queue/settle event
  index_t placed_steps = 0;  ///< cumulative steps at the open attempt's placed
  real_t placed_usd = 0.0;
  real_t placed_t = 0.0;
  index_t prev_attempt_steps = 0;  ///< last in-attempt event's steps
  real_t last_t = 0.0;             ///< last event time of this job
  index_t terminals = 0;
  bool completed = false;
  index_t preemptions = 0;
  index_t corruptions = 0;
  index_t guard_stops = 0;
  index_t crashes = 0;
  index_t requeues = 0;
};

}  // namespace

std::string Violation::str() const {
  std::ostringstream os;
  os << invariant;
  if (job > 0) os << " job " << job;
  if (seq >= 0) os << " @seq " << seq;
  os << ": " << message;
  return os.str();
}

bool CheckResult::violates(const std::string& invariant) const {
  for (const Violation& v : violations) {
    if (v.invariant == invariant) return true;
  }
  return false;
}

std::string CheckResult::summary() const {
  std::ostringstream os;
  os << (passed() ? "protocol check: PASS" : "protocol check: FAIL") << " ("
     << events_checked << " events, " << jobs_checked << " jobs, "
     << violations.size() << " violations)\n";
  for (const Violation& v : violations) os << "  " << v.str() << '\n';
  return os.str();
}

CheckResult check_history(const sched::ProtocolHistory& history,
                          const std::vector<sched::CampaignJobSpec>& jobs,
                          const CheckLimits& limits,
                          const sched::CampaignReport* report) {
  CheckResult result;
  std::map<index_t, JobTrack> tracks;
  std::map<index_t, const sched::CampaignJobSpec*> specs;
  for (const sched::CampaignJobSpec& spec : jobs) specs[spec.id] = &spec;

  const auto flag = [&result](const char* invariant, index_t job,
                              index_t seq, std::string message) {
    result.violations.push_back(
        {invariant, job, seq, std::move(message)});
  };

  real_t global_clock = 0.0;  ///< last queue/settlement event time
  for (const ProtocolEvent& e : history.events) {
    ++result.events_checked;
    const real_t t = e.at_s.value();
    if (specs.find(e.job) == specs.end()) {
      flag("E1", e.job, e.seq, "event for a job that was never submitted");
      continue;
    }
    JobTrack& track = tracks[e.job];

    // T1: per-job times never run backwards; queue/settlement events
    // follow the coordinator clock, which is globally monotone.
    const bool mid = e.kind == ProtocolEventKind::kPreemption ||
                     e.kind == ProtocolEventKind::kCorruptRestore ||
                     e.kind == ProtocolEventKind::kGuardStop ||
                     e.kind == ProtocolEventKind::kWorkerCrash;
    if (track.submitted && t < track.last_t) {
      flag("T1", e.job, e.seq,
           "job time ran backwards: " + num(t) + " < " + num(track.last_t));
    }
    if (!mid) {
      if (t < global_clock) {
        flag("T1", e.job, e.seq,
             "coordinator clock ran backwards: " + num(t) + " < " +
                 num(global_clock));
      }
      global_clock = std::max(global_clock, t);
    }
    track.last_t = std::max(track.last_t, t);

    // C1a: cumulative spend never decreases.
    if (track.submitted && e.usd.value() < track.usd - 1e-12 &&
        e.usd.value() < track.placed_usd - 1e-12) {
      flag("C1", e.job, e.seq, "cumulative spend decreased");
    }

    if (track.state == JobTrack::State::kTerminal) {
      flag("E1", e.job, e.seq,
           std::string("event after terminal: ") +
               sched::protocol_event_name(e.kind));
      continue;
    }

    switch (e.kind) {
      case ProtocolEventKind::kSubmitted: {
        if (track.submitted) {
          flag("E1", e.job, e.seq, "job submitted twice");
          break;
        }
        track.submitted = true;
        if (t != 0.0) {
          flag("T1", e.job, e.seq, "submission not at campaign start");
        }
        if (e.steps != 0 || e.usd.value() != 0.0) {
          flag("C1", e.job, e.seq, "submitted with nonzero steps or spend");
        }
        break;
      }
      case ProtocolEventKind::kPlaced: {
        if (!track.submitted || track.state != JobTrack::State::kQueued) {
          flag("S1", e.job, e.seq, "placed while not queued");
        }
        ++track.attempts;
        if (e.attempt != track.attempts) {
          flag("S1", e.job, e.seq,
               "attempt ordinal " + std::to_string(e.attempt) +
                   " != expected " + std::to_string(track.attempts));
        }
        if (track.attempts > limits.max_attempts) {
          flag("A1", e.job, e.seq,
               "attempt " + std::to_string(track.attempts) +
                   " exceeds max_attempts " +
                   std::to_string(limits.max_attempts));
        }
        if (e.steps != track.steps) {
          flag("K1", e.job, e.seq,
               "resume at " + std::to_string(e.steps) +
                   " steps != checkpointed " + std::to_string(track.steps));
        }
        if (!usd_equal(e.usd.value(), track.usd)) {
          flag("C1", e.job, e.seq, "spend changed while queued");
        }
        track.state = JobTrack::State::kRunning;
        track.placed_steps = e.steps;
        track.placed_usd = e.usd.value();
        track.placed_t = t;
        track.prev_attempt_steps = e.steps;
        break;
      }
      case ProtocolEventKind::kPreemption:
      case ProtocolEventKind::kCorruptRestore:
      case ProtocolEventKind::kGuardStop:
      case ProtocolEventKind::kWorkerCrash: {
        if (track.state != JobTrack::State::kRunning) {
          flag("S1", e.job, e.seq,
               std::string(sched::protocol_event_name(e.kind)) +
                   " outside a running attempt");
          break;
        }
        if (e.attempt != track.attempts) {
          flag("S1", e.job, e.seq, "mid-attempt event with wrong ordinal");
        }
        if (t < track.placed_t) {
          flag("T1", e.job, e.seq, "mid-attempt event before placement");
        }
        if (e.steps < track.placed_steps) {
          flag("K1", e.job, e.seq,
               "in-attempt progress below the attempt's entry checkpoint");
        }
        if (e.steps < track.prev_attempt_steps &&
            e.kind != ProtocolEventKind::kCorruptRestore) {
          flag("K1", e.job, e.seq,
               "progress rolled back without a corrupt restore");
        }
        if (!usd_equal(e.usd.value(), track.placed_usd)) {
          flag("C1", e.job, e.seq,
               "spend moved mid-attempt (cost is charged at settlement)");
        }
        track.prev_attempt_steps = e.steps;
        if (e.kind == ProtocolEventKind::kPreemption) ++track.preemptions;
        if (e.kind == ProtocolEventKind::kCorruptRestore) ++track.corruptions;
        if (e.kind == ProtocolEventKind::kGuardStop) {
          ++track.guard_stops;
          track.state = JobTrack::State::kStopping;
        }
        if (e.kind == ProtocolEventKind::kWorkerCrash) {
          ++track.crashes;
          track.state = JobTrack::State::kStopping;
        }
        break;
      }
      case ProtocolEventKind::kRequeued:
      case ProtocolEventKind::kCompleted:
      case ProtocolEventKind::kFailed: {
        const bool settlement =
            track.state == JobTrack::State::kRunning ||
            track.state == JobTrack::State::kStopping;
        if (e.kind == ProtocolEventKind::kCompleted && !settlement) {
          flag("S1", e.job, e.seq, "completed without a running attempt");
        }
        if (e.kind == ProtocolEventKind::kRequeued && !settlement) {
          flag("S1", e.job, e.seq, "requeued without a running attempt");
        }
        if (!track.submitted) {
          flag("S1", e.job, e.seq, "settled before submission");
        }
        if (e.attempt != track.attempts) {
          flag("S1", e.job, e.seq, "settlement with wrong attempt ordinal");
        }
        if (settlement) {
          if (e.delta_steps < 0 || e.delta_usd.value() < 0.0) {
            flag("C1", e.job, e.seq, "negative settlement delta");
          }
          if (e.steps != track.placed_steps + e.delta_steps) {
            flag("K1", e.job, e.seq,
                 "settlement steps " + std::to_string(e.steps) +
                     " != placed " + std::to_string(track.placed_steps) +
                     " + delta " + std::to_string(e.delta_steps));
          }
          if (!usd_equal(e.usd.value(),
                         track.placed_usd + e.delta_usd.value())) {
            flag("C1", e.job, e.seq,
                 "settlement spend " + num(e.usd.value()) + " != placed " +
                     num(track.placed_usd) + " + delta " +
                     num(e.delta_usd.value()));
          }
        } else {
          // Queue-side failure: nothing ran, nothing may change.
          if (e.steps != track.steps || e.delta_steps != 0) {
            flag("K1", e.job, e.seq, "queue-side event changed progress");
          }
          if (!usd_equal(e.usd.value(), track.usd) ||
              e.delta_usd.value() != 0.0) {
            flag("C1", e.job, e.seq, "queue-side event changed spend");
          }
        }
        if (e.kind == ProtocolEventKind::kCompleted) {
          const sched::CampaignJobSpec* spec = specs[e.job];
          if (e.steps < spec->timesteps) {
            flag("K1", e.job, e.seq,
                 "completed at " + std::to_string(e.steps) + " < " +
                     std::to_string(spec->timesteps) + " timesteps");
          }
        }
        track.steps = e.steps;
        track.usd = e.usd.value();
        if (e.kind == ProtocolEventKind::kRequeued) {
          ++track.requeues;
          if (track.attempts >= limits.max_attempts) {
            flag("A1", e.job, e.seq,
                 "requeued with no attempts left (attempt " +
                     std::to_string(track.attempts) + " of " +
                     std::to_string(limits.max_attempts) + ")");
          }
          track.state = JobTrack::State::kQueued;
        } else {
          ++track.terminals;
          track.completed = e.kind == ProtocolEventKind::kCompleted;
          track.state = JobTrack::State::kTerminal;
        }
        break;
      }
    }
  }

  // E1 closing pass: every submitted job reached exactly one terminal.
  for (const auto& [id, spec] : specs) {
    (void)spec;
    ++result.jobs_checked;
    const auto it = tracks.find(id);
    if (it == tracks.end() || !it->second.submitted) {
      flag("E1", id, -1, "job was never submitted to the history");
      continue;
    }
    if (it->second.terminals != 1) {
      flag("E1", id, -1,
           "job has " + std::to_string(it->second.terminals) +
               " terminal events (want exactly 1)");
    }
  }

  // R1: the report is a projection of the history.
  if (report != nullptr) {
    index_t completed = 0, failed = 0, preemptions = 0, corruptions = 0,
            overruns = 0, requeues = 0;
    real_t dollars = 0.0;
    for (const sched::JobReportRow& row : report->jobs) {
      const auto it = tracks.find(row.id);
      if (it == tracks.end()) {
        flag("R1", row.id, -1, "report row for a job with no history");
        continue;
      }
      const JobTrack& track = it->second;
      if (row.attempts != track.attempts) {
        flag("R1", row.id, -1,
             "report attempts " + std::to_string(row.attempts) +
                 " != history " + std::to_string(track.attempts));
      }
      if (row.preemptions != track.preemptions) {
        flag("R1", row.id, -1, "report preemptions != history");
      }
      if (row.overruns != track.guard_stops) {
        flag("R1", row.id, -1, "report overruns != history guard stops");
      }
      const bool row_terminal = row.state == sched::JobState::kCompleted ||
                                row.state == sched::JobState::kFailed;
      if (row_terminal != (track.terminals == 1) ||
          (row.state == sched::JobState::kCompleted) !=
              (track.terminals == 1 && track.completed)) {
        flag("R1", row.id, -1, "report state disagrees with history");
      }
      if (!usd_equal(row.dollars.value(), track.usd)) {
        flag("R1", row.id, -1, "report dollars != history spend");
      }
      if (track.completed) ++completed;
      if (track.terminals == 1 && !track.completed) ++failed;
      preemptions += track.preemptions;
      corruptions += track.corruptions;
      overruns += track.guard_stops;
      requeues += std::max<index_t>(0, track.attempts - 1);
      dollars += track.usd;
    }
    if (report->n_completed != completed || report->n_failed != failed) {
      flag("R1", 0, -1, "report completion totals != history");
    }
    if (report->total_preemptions != preemptions ||
        report->total_corruptions != corruptions ||
        report->total_overruns != overruns ||
        report->total_requeues != requeues) {
      flag("R1", 0, -1, "report fault/requeue totals != history");
    }
    if (!usd_equal(report->total_dollars.value(), dollars)) {
      flag("R1", 0, -1, "report total dollars != history spend");
    }
  }
  return result;
}

CheckResult check_trace_consistency(const sched::ProtocolHistory& history,
                                    const obs::TraceRecorder& trace) {
  CheckResult result;
  result.events_checked = static_cast<index_t>(history.events.size());
  std::map<std::string, index_t> history_counts;
  for (const ProtocolEvent& e : history.events) {
    if (e.kind == ProtocolEventKind::kSubmitted) continue;  // not traced
    ++history_counts[sched::protocol_event_name(e.kind)];
  }
  std::map<std::string, index_t> trace_counts;
  for (const auto& ev : trace.virtual_events()) {
    if (ev.phase != 'i') continue;
    if (ev.category != "sched" && ev.category != "fault") continue;
    if (history_counts.find(ev.name) == history_counts.end() &&
        ev.name != "placed" && ev.name != "requeued" &&
        ev.name != "completed" && ev.name != "failed" &&
        ev.name != "preemption" && ev.name != "corrupt_restore" &&
        ev.name != "guard_stop" && ev.name != "worker_crash") {
      continue;  // unrelated instant (metrics gauges etc.)
    }
    ++trace_counts[ev.name];
  }
  for (const auto& [name, count] : history_counts) {
    const auto it = trace_counts.find(name);
    const index_t traced = it == trace_counts.end() ? 0 : it->second;
    if (traced != count) {
      result.violations.push_back(
          {"H1", 0, -1,
           "history has " + std::to_string(count) + " '" + name +
               "' events but the trace has " + std::to_string(traced)});
    }
  }
  for (const auto& [name, count] : trace_counts) {
    if (history_counts.find(name) == history_counts.end() && count > 0) {
      result.violations.push_back(
          {"H1", 0, -1,
           "trace has " + std::to_string(count) + " '" + name +
               "' instants missing from the history"});
    }
  }
  return result;
}

}  // namespace hemo::nemesis
