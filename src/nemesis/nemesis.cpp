#include "nemesis/nemesis.hpp"

#include <algorithm>
#include <sstream>

#include "check/generators.hpp"

namespace hemo::nemesis {

const std::vector<std::string>& storm_names() {
  static const std::vector<std::string> names = {
      "calm",          "preemption_storm", "corruption_burst",
      "overrun_storm", "crash_storm",      "mixed_storm"};
  return names;
}

NemesisSchedule gen_schedule(const std::string& storm, Xoshiro256& rng) {
  NemesisSchedule s;
  s.storm = storm;
  s.jobs = check::gen_job_specs(rng, 3 + rng.below(3), "cylinder");
  s.engine_seed = rng.next();

  if (storm == "calm") {
    // No faults: the baseline every invariant must hold under anyway.
  } else if (storm == "preemption_storm") {
    s.faults.extra_preemption_probability = rng.uniform(0.25, 0.6);
    s.spot_preemptions_per_hour = 30.0;
    for (auto& job : s.jobs) job.allow_spot = true;
  } else if (storm == "corruption_burst") {
    // Corruption only bites on a preemption resume, so pair the two.
    s.faults.extra_preemption_probability = rng.uniform(0.15, 0.4);
    s.faults.checkpoint_corruption_rate = rng.uniform(0.4, 0.9);
    for (auto& job : s.jobs) job.allow_spot = true;
  } else if (storm == "overrun_storm") {
    s.faults.slowdown_factor = rng.uniform(1.5, 2.0);
    // Spot pricing folds expected preemption losses into the predicted
    // wall time, widening the guard band past the injected slowdown;
    // keep the storm on-demand so it tests the pace guard.
    for (auto& job : s.jobs) job.allow_spot = false;
  } else if (storm == "crash_storm") {
    s.faults.worker_crash_probability = rng.uniform(0.08, 0.2);
  } else if (storm == "mixed_storm") {
    s.faults = check::gen_fault_injection(rng);
    if (!s.faults.any()) {
      s.faults.extra_preemption_probability = 0.2;
    }
    if (s.faults.slowdown_factor >= 1.4) {
      for (auto& job : s.jobs) job.allow_spot = false;
    }
  } else {
    HEMO_REQUIRE(false, "unknown nemesis storm: " + storm);
  }
  return s;
}

std::string describe_schedule(const NemesisSchedule& s) {
  std::ostringstream os;
  os << s.storm << " jobs=" << s.jobs.size() << " seed=" << s.engine_seed
     << " steps=[";
  for (std::size_t i = 0; i < s.jobs.size(); ++i) {
    os << (i ? "," : "") << s.jobs[i].timesteps
       << (s.jobs[i].allow_spot ? "s" : "");
  }
  os << ']';
  if (s.faults.any()) {
    os << " faults{x" << s.faults.slowdown_factor << ",p"
       << s.faults.extra_preemption_probability << ",c"
       << s.faults.checkpoint_corruption_rate << ",w"
       << s.faults.worker_crash_probability << '}';
  }
  return os.str();
}

std::vector<NemesisSchedule> shrink_schedule(const NemesisSchedule& s) {
  std::vector<NemesisSchedule> out;
  if (s.jobs.size() > 1) {
    NemesisSchedule c = s;
    c.jobs.pop_back();
    out.push_back(std::move(c));
  }
  if (s.faults.slowdown_factor != 1.0) {
    NemesisSchedule c = s;
    c.faults.slowdown_factor = 1.0;
    out.push_back(std::move(c));
  }
  if (s.faults.extra_preemption_probability > 0.0) {
    NemesisSchedule c = s;
    c.faults.extra_preemption_probability = 0.0;
    out.push_back(std::move(c));
  }
  if (s.faults.checkpoint_corruption_rate > 0.0) {
    NemesisSchedule c = s;
    c.faults.checkpoint_corruption_rate = 0.0;
    out.push_back(std::move(c));
  }
  if (s.faults.worker_crash_probability > 0.0) {
    NemesisSchedule c = s;
    c.faults.worker_crash_probability = 0.0;
    out.push_back(std::move(c));
  }
  // Halve the largest job's step count (keeps the generator's 100-step
  // granularity so shrunk schedules stay readable).
  std::size_t largest = 0;
  for (std::size_t i = 1; i < s.jobs.size(); ++i) {
    if (s.jobs[i].timesteps > s.jobs[largest].timesteps) largest = i;
  }
  if (!s.jobs.empty() && s.jobs[largest].timesteps >= 200) {
    NemesisSchedule c = s;
    c.jobs[largest].timesteps =
        std::max<index_t>(100, (c.jobs[largest].timesteps / 200) * 100);
    out.push_back(std::move(c));
  }
  return out;
}

}  // namespace hemo::nemesis
