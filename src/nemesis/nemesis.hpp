// Seeded nemesis schedules: named fault storms driven through the engine.
//
// A NemesisSchedule is everything one campaign-under-faults run needs —
// the jobs, the fault-injection mix, the engine seed and limits — and is
// generated from a named storm preset plus an RNG stream, so a failing
// schedule replays from (storm, seed, case index) alone and shrinks like
// any other property input (check/property.hpp). The storms are the
// Maelstrom-style adversaries of specs/executor_protocol.md §1: each one
// concentrates on the protocol transition it stresses hardest.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sched/guard.hpp"
#include "sched/job.hpp"
#include "util/rng.hpp"

namespace hemo::nemesis {

/// One seeded campaign-under-faults scenario.
struct NemesisSchedule {
  std::string storm;  ///< preset name (see storm_names())
  std::vector<sched::CampaignJobSpec> jobs;
  sched::FaultInjection faults;
  std::uint64_t engine_seed = 0;
  /// Engine / scheduler knobs, mirrored into EngineConfig and the
  /// check-scale scheduler (harness.cpp).
  real_t guard_tolerance = 0.25;
  real_t spot_preemptions_per_hour = 8.0;
  index_t max_attempts = 4;
  index_t chunks_per_attempt = 10;
};

/// The storm presets, in deterministic order:
///   calm              no faults (baseline: the protocol must hold anyway)
///   preemption_storm  spot capacity reclaimed several times per attempt
///   corruption_burst  preemptions whose checkpoint reads come back bad
///   overrun_storm     degraded nodes that trip the overrun guard
///   crash_storm       workers dying mid-chunk on any tenancy
///   mixed_storm       a random combination of all fault classes
[[nodiscard]] const std::vector<std::string>& storm_names();

/// Generates one `storm` schedule from the RNG stream. Throws
/// PreconditionError for an unknown storm name.
[[nodiscard]] NemesisSchedule gen_schedule(const std::string& storm,
                                           Xoshiro256& rng);

/// One-line rendering (property counterexamples, CI artifacts).
[[nodiscard]] std::string describe_schedule(const NemesisSchedule& s);

/// Greedy shrink candidates, most aggressive first: drop the last job,
/// disable one fault class, then halve the largest job's timesteps.
[[nodiscard]] std::vector<NemesisSchedule> shrink_schedule(
    const NemesisSchedule& s);

}  // namespace hemo::nemesis
