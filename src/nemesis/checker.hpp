// History-based invariant checker for the executor protocol.
//
// The protocol spec (specs/executor_protocol.md) states the scheduler/
// executor contract as invariants over recorded event histories; this is
// the machine checker. check_history replays a ProtocolHistory through a
// per-job state machine and flags every violation of:
//
//   E1  exactly-once termination        S1  state-machine legality
//   K1  checkpoint monotonicity         C1  cost conservation
//   T1  time coherence                  A1  attempt bound
//   R1  report consistency (when the final CampaignReport is given)
//
// check_trace_consistency covers H1 (history vs obs:: virtual trace);
// worker-count invariance (W1) is a harness-level property over several
// engine runs (harness.hpp), not over one history.
//
// The checker is deliberately independent of the engine: it reads only
// the recorded events, the submitted specs, and the engine limits, so a
// protocol regression in src/sched/ cannot hide itself by also breaking
// the checker. Violations carry the stable invariant id the spec, the
// mutation catalog (check::protocol_mutations) and CI artifacts share.
#pragma once

#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "sched/history.hpp"
#include "sched/job.hpp"
#include "sched/report.hpp"
#include "util/common.hpp"

namespace hemo::nemesis {

/// Engine limits the checker needs (mirrors EngineConfig).
struct CheckLimits {
  index_t max_attempts = 4;
};

/// One invariant violation, anchored to the offending event.
struct Violation {
  std::string invariant;  ///< stable id: "E1", "S1", "K1", ...
  index_t job = 0;        ///< 0 = campaign-level
  index_t seq = -1;       ///< offending event sequence, -1 when none
  std::string message;

  [[nodiscard]] std::string str() const;
};

/// Verdict of one checked history.
struct CheckResult {
  std::vector<Violation> violations;
  index_t events_checked = 0;
  index_t jobs_checked = 0;

  [[nodiscard]] bool passed() const noexcept { return violations.empty(); }
  /// True when some violation carries `invariant` (mutation kill test).
  [[nodiscard]] bool violates(const std::string& invariant) const;
  /// Multi-line rendering: verdict line plus one line per violation.
  [[nodiscard]] std::string summary() const;
};

/// Checks E1/S1/K1/C1/T1/A1 (+R1 when `report` is non-null) over the
/// history of a campaign submitted with `jobs` under `limits`.
[[nodiscard]] CheckResult check_history(
    const sched::ProtocolHistory& history,
    const std::vector<sched::CampaignJobSpec>& jobs,
    const CheckLimits& limits,
    const sched::CampaignReport* report = nullptr);

/// H1: per-kind event counts of the history match the virtual trace
/// instants recorded by `trace` (both streams must see every protocol
/// event). Call with the recorder that was enabled during the run.
[[nodiscard]] CheckResult check_trace_consistency(
    const sched::ProtocolHistory& history, const obs::TraceRecorder& trace);

}  // namespace hemo::nemesis
