// The nemesis harness: drives seeded fault storms through the real
// engine, records the protocol history, and replays it through the
// invariant checker.
//
// Three layers of trust, each mechanically checkable:
//
//  1. run_nemesis drives one NemesisSchedule through sched::CampaignEngine
//     at worker counts {1, 2, 8}, asserting the canonical history and the
//     CSV report are byte-identical across them (invariant W1), then
//     replays the base history through check_history (E1..R1 against the
//     final report) and check_trace_consistency (H1 against the obs::
//     virtual trace).
//  2. nemesis_property wraps run_nemesis as a property over generated
//     storm schedules, with greedy shrinking to a minimal failing
//     schedule; the minimal schedule and its verdict are captured for CI
//     artifact upload (write_failure_artifacts).
//  3. run_protocol_self_test proves the checker has teeth: a clean run
//     passes; every check::protocol_mutations() corruption of a real
//     recorded history is flagged on its stated invariant; and every
//     sched::SeededBug engine variant is caught end-to-end through the
//     live engine → history → checker path.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "check/property.hpp"
#include "nemesis/checker.hpp"
#include "nemesis/nemesis.hpp"
#include "sched/executor.hpp"
#include "sched/history.hpp"
#include "sched/report.hpp"

namespace hemo::nemesis {

/// Everything one engine run under a schedule produced.
struct RunArtifacts {
  sched::ProtocolHistory history;
  sched::CampaignReport report;
  std::string csv;  ///< report.to_csv() (the W1 report artifact)
};

/// Runs `schedule` once with `n_workers` workers on a fresh check-scale
/// scheduler (the same two-pool cluster as src/check/'s campaign
/// oracles). `bug` seeds a deliberate protocol violation (self-tests
/// only). The obs:: global trace recorder is left untouched; enable it
/// around this call to collect the H1 cross-check stream.
[[nodiscard]] RunArtifacts run_schedule(
    const NemesisSchedule& schedule, index_t n_workers,
    sched::SeededBug bug = sched::SeededBug::kNone);

/// Worker counts the W1 invariance sweep compares: {1, 2, 8}.
[[nodiscard]] const std::vector<index_t>& nemesis_worker_counts();

/// Verdict of one schedule.
struct NemesisVerdict {
  bool passed = false;
  std::string failure;  ///< first failing property, empty when passed
  CheckResult check;    ///< invariant check of the base (1-worker) run
  std::string canonical_history;  ///< base run's canonical bytes
  std::string csv;                ///< base run's report CSV
};

/// Full check of one schedule: W1 across worker counts, then E1..R1 and
/// H1 over the base run's history.
[[nodiscard]] NemesisVerdict run_nemesis(const NemesisSchedule& schedule);

/// A failing schedule with its verdict (minimal after shrinking).
struct NemesisFailure {
  NemesisSchedule schedule;
  NemesisVerdict verdict;
};

/// Property over generated `storm` schedules: every one must pass
/// run_nemesis. On failure, `*minimal` (when non-null) receives the
/// shrunk minimal schedule and its verdict for artifact writing.
[[nodiscard]] check::PropertyResult nemesis_property(
    const std::string& storm, const check::PropertyConfig& config,
    std::shared_ptr<NemesisFailure>* minimal = nullptr);

/// Writes `failure` under `dir` (created if missing): the shrunk
/// schedule description, the recorded canonical history, the report CSV,
/// and the checker verdict. Returns the paths written.
std::vector<std::string> write_failure_artifacts(
    const NemesisFailure& failure, const std::string& dir);

/// One self-test outcome: a mutation or seeded engine bug, the invariant
/// expected to flag it, and whether the checker did.
struct SelfTestOutcome {
  std::string name;       ///< "mutation:drop_requeue" / "bug:lost_requeue"
  std::string invariant;  ///< expected stable id
  bool detected = false;
  std::string detail;  ///< evidence (flagged violation) or why not
};

/// Checker self-test verdict.
struct SelfTestReport {
  bool baseline_passed = false;  ///< the unmutated run checks clean
  std::vector<SelfTestOutcome> outcomes;

  [[nodiscard]] bool all_detected() const;
  [[nodiscard]] std::string summary() const;
};

/// Proves the checker kills every seeded protocol violation: replays a
/// busy recorded history through every check::protocol_mutations() entry,
/// and runs every sched::SeededBug through the live engine. `seed` keys
/// the schedule generation; the same seed reproduces the same report.
[[nodiscard]] SelfTestReport run_protocol_self_test(std::uint64_t seed);

}  // namespace hemo::nemesis
