#include "nemesis/harness.hpp"

#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <utility>

#include "check/mutation.hpp"
#include "cluster/instance.hpp"
#include "geometry/generators.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"
#include "sched/scheduler.hpp"
#include "util/rng.hpp"

namespace hemo::nemesis {

namespace {

/// A fresh check-scale scheduler (same two-pool cluster and workload as
/// src/check/'s campaign oracles). Rebuilt per run: the refinement
/// tracker is shared mutable campaign state and W1 replays need a cold
/// start.
std::unique_ptr<sched::CampaignScheduler> make_nemesis_scheduler(
    const NemesisSchedule& schedule) {
  sched::SchedulerConfig config;
  config.core_counts = {8, 16, 32};
  config.guard_tolerance = schedule.guard_tolerance;
  config.pilot_steps = 120;
  config.spot.preemptions_per_hour =
      units::PerHour(schedule.spot_preemptions_per_hour);
  auto scheduler = std::make_unique<sched::CampaignScheduler>(
      std::vector<const cluster::InstanceProfile*>{
          &cluster::instance_by_abbrev("CSP-1"),
          &cluster::instance_by_abbrev("CSP-2 Small")},
      config);
  const std::vector<index_t> cal_counts = {2, 4, 8};
  scheduler->register_workload(
      "cylinder", geometry::make_cylinder({.radius = 6, .length = 40}),
      cal_counts);
  return scheduler;
}

}  // namespace

RunArtifacts run_schedule(const NemesisSchedule& schedule, index_t n_workers,
                          sched::SeededBug bug) {
  RunArtifacts artifacts;
  auto scheduler = make_nemesis_scheduler(schedule);
  sched::EngineConfig config;
  config.n_workers = n_workers;
  config.seed = schedule.engine_seed;
  config.faults = schedule.faults;
  config.max_attempts = schedule.max_attempts;
  config.chunks_per_attempt = schedule.chunks_per_attempt;
  config.history = &artifacts.history;
  config.seeded_bug = bug;
  sched::CampaignEngine engine(*scheduler, config);
  artifacts.report = engine.run(schedule.jobs);
  artifacts.csv = artifacts.report.to_csv();
  return artifacts;
}

const std::vector<index_t>& nemesis_worker_counts() {
  static const std::vector<index_t> counts = {1, 2, 8};
  return counts;
}

NemesisVerdict run_nemesis(const NemesisSchedule& schedule) {
  NemesisVerdict verdict;

  // The base run records the obs:: virtual trace for the H1 cross-check.
  // The global recorder is borrowed and restored (prior events are
  // dropped — the engine is the only virtual-track producer by contract).
  obs::TraceRecorder& trace = obs::TraceRecorder::global();
  const bool was_enabled = trace.enabled();
  trace.reset();
  trace.enable(true);
  RunArtifacts base = run_schedule(schedule, nemesis_worker_counts().front());
  trace.enable(false);

  verdict.canonical_history = base.history.canonical();
  verdict.csv = base.csv;

  // W1: byte-identical history and report across worker counts.
  for (std::size_t i = 1; i < nemesis_worker_counts().size(); ++i) {
    const index_t workers = nemesis_worker_counts()[i];
    const RunArtifacts other = run_schedule(schedule, workers);
    if (other.history.canonical() != verdict.canonical_history) {
      verdict.failure = "W1: history differs between 1 and " +
                        std::to_string(workers) + " workers";
    } else if (other.csv != verdict.csv) {
      verdict.failure = "W1: report differs between 1 and " +
                        std::to_string(workers) + " workers";
    }
    if (!verdict.failure.empty()) break;
  }

  // E1..R1 over the recorded history, against the final report.
  CheckLimits limits;
  limits.max_attempts = schedule.max_attempts;
  verdict.check =
      check_history(base.history, schedule.jobs, limits, &base.report);

  // H1: the history and the virtual trace saw the same events.
  CheckResult h1 = check_trace_consistency(base.history, trace);
  for (Violation& v : h1.violations) {
    verdict.check.violations.push_back(std::move(v));
  }
  trace.reset();
  trace.enable(was_enabled);

  if (verdict.failure.empty() && !verdict.check.passed()) {
    verdict.failure = verdict.check.violations.front().str();
  }
  verdict.passed = verdict.failure.empty();
  return verdict;
}

check::PropertyResult nemesis_property(
    const std::string& storm, const check::PropertyConfig& config,
    std::shared_ptr<NemesisFailure>* minimal) {
  check::Property<NemesisSchedule> property;
  property.name = "nemesis(" + storm + ")";
  property.generate = [storm](Xoshiro256& rng) {
    return gen_schedule(storm, rng);
  };
  property.describe = describe_schedule;
  property.shrink = shrink_schedule;
  // run_property adopts every failing shrink candidate, so the last
  // failing check call is the minimal counterexample it reports — the
  // capture below therefore always holds the shrunk schedule.
  auto capture = std::make_shared<NemesisFailure>();
  property.check =
      [capture](const NemesisSchedule& s) -> std::optional<std::string> {
    NemesisVerdict v = run_nemesis(s);
    if (v.passed) return std::nullopt;
    capture->schedule = s;
    capture->verdict = std::move(v);
    return capture->verdict.failure;
  };
  const check::PropertyResult result = check::run_property(property, config);
  if (minimal != nullptr) {
    *minimal = result.passed ? nullptr : capture;
  }
  return result;
}

std::vector<std::string> write_failure_artifacts(const NemesisFailure& failure,
                                                 const std::string& dir) {
  std::filesystem::create_directories(dir);
  std::vector<std::string> paths;
  const auto write = [&dir, &paths](const std::string& name,
                                    const std::string& content) {
    const std::string path = dir + "/" + name;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out.good()) {
      throw NumericError("cannot write nemesis artifact: " + path);
    }
    out << content;
    paths.push_back(path);
  };
  std::ostringstream schedule;
  schedule << "storm: " << failure.schedule.storm << '\n'
           << "schedule: " << describe_schedule(failure.schedule) << '\n'
           << "engine_seed: " << failure.schedule.engine_seed << '\n'
           << "failure: " << failure.verdict.failure << '\n';
  write("schedule.txt", schedule.str());
  write("history.txt", failure.verdict.canonical_history);
  write("report.csv", failure.verdict.csv);
  write("verdict.txt", failure.verdict.check.summary());
  // When the CLI armed the flight recorder for this sweep, its ring holds
  // the last protocol events and metric snapshots before the violation —
  // dump them next to the shrunk reproducer.
  obs::FlightRecorder& recorder = obs::FlightRecorder::global();
  if (recorder.enabled()) {
    recorder.note("nemesis", "invariant failure: " + failure.verdict.failure);
    write("flight_recorder.txt", recorder.dump());
  }
  return paths;
}

bool SelfTestReport::all_detected() const {
  if (!baseline_passed) return false;
  for (const SelfTestOutcome& o : outcomes) {
    if (!o.detected) return false;
  }
  return !outcomes.empty();
}

std::string SelfTestReport::summary() const {
  std::ostringstream os;
  os << "protocol self-test: baseline "
     << (baseline_passed ? "passed" : "FAILED") << '\n';
  for (const SelfTestOutcome& o : outcomes) {
    os << "  " << o.name << " -> " << o.invariant << ": "
       << (o.detected ? "detected" : "NOT DETECTED") << " (" << o.detail
       << ")\n";
  }
  return os.str();
}

SelfTestReport run_protocol_self_test(std::uint64_t seed) {
  SelfTestReport report;

  // Find a busy seeded run: the corruption burst exercises requeues,
  // resumes and completions — every event shape the mutations need. A
  // handful of sub-seeds is always enough at these fault rates.
  std::optional<NemesisSchedule> schedule;
  RunArtifacts base;
  CheckLimits limits;
  obs::TraceRecorder& trace = obs::TraceRecorder::global();
  const bool was_enabled = trace.enabled();
  for (std::uint64_t k = 0; k < 24 && !schedule; ++k) {
    Xoshiro256 rng(hash_seed(seed, k));
    NemesisSchedule candidate = gen_schedule("corruption_burst", rng);
    trace.reset();
    trace.enable(true);
    RunArtifacts run = run_schedule(candidate, 2);
    trace.enable(false);
    limits.max_attempts = candidate.max_attempts;
    if (!check_history(run.history, candidate.jobs, limits, &run.report)
             .passed()) {
      // A genuine protocol violation: surface it as a failed baseline
      // rather than hunting for a quieter seed.
      report.baseline_passed = false;
      trace.reset();
      trace.enable(was_enabled);
      return report;
    }
    bool applicable = true;
    for (const check::ProtocolMutation& mutation :
         check::protocol_mutations()) {
      sched::ProtocolHistory copy = run.history;
      if (!mutation.apply(copy, limits.max_attempts)) {
        applicable = false;
        break;
      }
    }
    if (applicable) {
      schedule = std::move(candidate);
      base = std::move(run);
    }
  }
  if (!schedule) {
    report.baseline_passed = false;
    trace.reset();
    trace.enable(was_enabled);
    return report;
  }
  report.baseline_passed = true;

  // Every history mutation must be flagged on its stated invariant.
  for (const check::ProtocolMutation& mutation : check::protocol_mutations()) {
    SelfTestOutcome outcome;
    outcome.name = "mutation:" + mutation.name;
    outcome.invariant = mutation.invariant;
    sched::ProtocolHistory mutated = base.history;
    mutation.apply(mutated, limits.max_attempts);
    const CheckResult result =
        mutation.invariant == "H1"
            ? check_trace_consistency(mutated, trace)
            : check_history(mutated, schedule->jobs, limits);
    outcome.detected = result.violates(mutation.invariant);
    if (outcome.detected) {
      for (const Violation& v : result.violations) {
        if (v.invariant == mutation.invariant) {
          outcome.detail = v.str();
          break;
        }
      }
    } else {
      outcome.detail = result.passed()
                           ? "checker passed the mutated history"
                           : "flagged only: " + result.violations.front().str();
    }
    report.outcomes.push_back(std::move(outcome));
  }
  trace.reset();
  trace.enable(was_enabled);

  // Every seeded live-engine bug must be caught end to end: the buggy
  // engine records its own history, and the checker convicts it.
  struct BugCase {
    sched::SeededBug bug;
    const char* name;
    const char* invariant;
  };
  const BugCase bugs[] = {
      {sched::SeededBug::kDoubleCharge, "bug:double_charge", "C1"},
      {sched::SeededBug::kLostRequeue, "bug:lost_requeue", "E1"},
      {sched::SeededBug::kDoubleRequeue, "bug:double_requeue", "S1"},
      {sched::SeededBug::kSkipRestore, "bug:skip_restore", "K1"},
  };
  for (const BugCase& bug : bugs) {
    SelfTestOutcome outcome;
    outcome.name = bug.name;
    outcome.invariant = bug.invariant;
    const RunArtifacts buggy = run_schedule(*schedule, 2, bug.bug);
    const CheckResult result =
        check_history(buggy.history, schedule->jobs, limits);
    outcome.detected = result.violates(bug.invariant);
    if (outcome.detected) {
      for (const Violation& v : result.violations) {
        if (v.invariant == bug.invariant) {
          outcome.detail = v.str();
          break;
        }
      }
    } else {
      outcome.detail =
          result.passed()
              ? "checker passed the buggy engine's history"
              : "flagged only: " + result.violations.front().str();
    }
    report.outcomes.push_back(std::move(outcome));
  }
  return report;
}

}  // namespace hemo::nemesis
