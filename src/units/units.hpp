// Zero-overhead dimensional safety for the performance/cost model stack.
//
// The paper's predictors mix quantities with incompatible units — bytes
// and bytes/s (Eqs. 8-9, 12), seconds per step (Eq. 6), MFLUPS (Eq. 7),
// $/hour and MFLUPS/$ in the CSP dashboard (Eq. 17). Passing all of them
// as bare real_t lets a swapped latency/bandwidth argument or an
// hours-vs-seconds cost slip compile silently. Quantity<Tag> is a strong
// typedef over real_t (or index_t for discrete counts) that makes such
// mixes a compile error while compiling to the identical machine code:
// every operation below is a single inlined arithmetic op on the wrapped
// representation, in the same order the bare-double expression used, so a
// refactor onto these types is byte-identical in its numerics.
//
// Only physically meaningful cross-unit operations are defined:
//   Bytes / BytesPerSec        -> Seconds            (Eq. 6 memory term)
//   Bytes / Seconds            -> BytesPerSec
//   Hours * DollarsPerHour     -> Dollars            (dashboard cost)
//   Dollars / DollarsPerHour   -> Hours
//   Mflups / DollarsPerHour    -> MflupsPerDollarHour (Eq. 17 dashboard)
//   PerHour * Hours            -> real_t              (expected count)
//   GflopsPerSec / GigabytesPerSec -> FlopsPerByte    (roofline ridge)
// Everything else — Seconds + Bytes, Dollars / Seconds, passing Seconds
// where Bytes is expected — fails to compile (see tests/test_units.cpp and
// tests/compile_fail/).
//
// Different scales of one dimension (Seconds vs Hours vs Microseconds,
// Bytes vs Gibibytes) are distinct types with *explicit* conversion
// functions, never implicit factors: the stored number is always exactly
// what the constructor received, so wrapping existing code cannot change
// results.
#pragma once

#include <compare>

#include "util/common.hpp"

namespace hemo::units {

/// Strong typedef of an arithmetic value carrying a dimension tag.
/// Same-tag quantities add, subtract, scale, and compare; a ratio of two
/// same-tag quantities is a dimensionless Rep. Nothing converts
/// implicitly to or from the raw representation.
template <class Tag, class Rep = real_t>
class Quantity {
 public:
  using rep = Rep;

  constexpr Quantity() noexcept = default;
  explicit constexpr Quantity(Rep value) noexcept : value_(value) {}

  /// The raw number, for I/O, raw math kernels, and layer boundaries.
  [[nodiscard]] constexpr Rep value() const noexcept { return value_; }

  [[nodiscard]] friend constexpr Quantity operator+(Quantity a,
                                                    Quantity b) noexcept {
    return Quantity(a.value_ + b.value_);
  }
  [[nodiscard]] friend constexpr Quantity operator-(Quantity a,
                                                    Quantity b) noexcept {
    return Quantity(a.value_ - b.value_);
  }
  [[nodiscard]] constexpr Quantity operator-() const noexcept {
    return Quantity(-value_);
  }
  constexpr Quantity& operator+=(Quantity o) noexcept {
    value_ += o.value_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity o) noexcept {
    value_ -= o.value_;
    return *this;
  }

  /// Scaling by a dimensionless factor.
  [[nodiscard]] friend constexpr Quantity operator*(Quantity a,
                                                    Rep s) noexcept {
    return Quantity(a.value_ * s);
  }
  [[nodiscard]] friend constexpr Quantity operator*(Rep s,
                                                    Quantity a) noexcept {
    return Quantity(s * a.value_);
  }
  [[nodiscard]] friend constexpr Quantity operator/(Quantity a,
                                                    Rep s) noexcept {
    return Quantity(a.value_ / s);
  }
  constexpr Quantity& operator*=(Rep s) noexcept {
    value_ *= s;
    return *this;
  }
  constexpr Quantity& operator/=(Rep s) noexcept {
    value_ /= s;
    return *this;
  }

  /// Ratio of same-dimension quantities is dimensionless.
  [[nodiscard]] friend constexpr Rep operator/(Quantity a,
                                               Quantity b) noexcept {
    return a.value_ / b.value_;
  }

  [[nodiscard]] friend constexpr auto operator<=>(Quantity a,
                                                  Quantity b) noexcept =
      default;

 private:
  Rep value_{};
};

// --- Time -----------------------------------------------------------------
struct SecondsTag {};
struct HoursTag {};
struct MicrosecondsTag {};
using Seconds = Quantity<SecondsTag>;
using Hours = Quantity<HoursTag>;
using Microseconds = Quantity<MicrosecondsTag>;

// --- Information ----------------------------------------------------------
struct BytesTag {};
struct GibibytesTag {};
struct GigabytesTag {};
using Bytes = Quantity<BytesTag>;
using Gibibytes = Quantity<GibibytesTag>;
using Gigabytes = Quantity<GigabytesTag>;  ///< decimal GB (vendor specs)

// --- Rates ----------------------------------------------------------------
struct BytesPerSecTag {};
struct MegabytesPerSecTag {};
struct GigabytesPerSecTag {};
struct GigabitsPerSecTag {};
struct PerHourTag {};
using BytesPerSec = Quantity<BytesPerSecTag>;
using MegabytesPerSec = Quantity<MegabytesPerSecTag>;  ///< paper Table III
using GigabytesPerSec = Quantity<GigabytesPerSecTag>;
using GigabitsPerSec = Quantity<GigabitsPerSecTag>;  ///< link nominal speed
using PerHour = Quantity<PerHourTag>;  ///< event rate (e.g. preemptions)

// --- Throughput and compute ----------------------------------------------
struct MflupsTag {};
struct GflopsPerSecTag {};
struct FlopsTag {};
struct FlopsPerByteTag {};
using Mflups = Quantity<MflupsTag>;  ///< 1e6 fluid lattice updates / s
using GflopsPerSec = Quantity<GflopsPerSecTag>;
using Flops = Quantity<FlopsTag>;
using FlopsPerByte = Quantity<FlopsPerByteTag>;  ///< arithmetic intensity

// --- Money ----------------------------------------------------------------
struct DollarsTag {};
struct DollarsPerHourTag {};
struct MflupsPerDollarHourTag {};
struct MlupsPerDollarTag {};
using Dollars = Quantity<DollarsTag>;
using DollarsPerHour = Quantity<DollarsPerHourTag>;
using MflupsPerDollarHour = Quantity<MflupsPerDollarHourTag>;  ///< Eq. 17
using MlupsPerDollar = Quantity<MlupsPerDollarTag>;  ///< campaign analog

// --- Discrete counts ------------------------------------------------------
struct CoresTag {};
struct TasksTag {};
using Cores = Quantity<CoresTag, index_t>;
using Tasks = Quantity<TasksTag, index_t>;

// --- Explicit scale conversions ------------------------------------------
[[nodiscard]] constexpr Hours to_hours(Seconds s) noexcept {
  return Hours(s.value() / 3600.0);
}
[[nodiscard]] constexpr Seconds to_seconds(Hours h) noexcept {
  return Seconds(h.value() * 3600.0);
}
[[nodiscard]] constexpr Seconds to_seconds(Microseconds us) noexcept {
  return Seconds(us.value() * 1e-6);
}
[[nodiscard]] constexpr Microseconds to_microseconds(Seconds s) noexcept {
  return Microseconds(s.value() * 1e6);
}
[[nodiscard]] constexpr Gibibytes to_gibibytes(Bytes b) noexcept {
  return Gibibytes(b.value() / (1024.0 * 1024.0 * 1024.0));
}
[[nodiscard]] constexpr Bytes to_bytes(Gibibytes g) noexcept {
  return Bytes(g.value() * (1024.0 * 1024.0 * 1024.0));
}
[[nodiscard]] constexpr BytesPerSec to_bytes_per_sec(
    MegabytesPerSec mbs) noexcept {
  return BytesPerSec(mbs.value() * 1e6);
}
[[nodiscard]] constexpr MegabytesPerSec to_megabytes_per_sec(
    BytesPerSec bps) noexcept {
  return MegabytesPerSec(bps.value() / 1e6);
}
[[nodiscard]] constexpr GigabytesPerSec to_gigabytes_per_sec(
    MegabytesPerSec mbs) noexcept {
  return GigabytesPerSec(mbs.value() / 1e3);
}

// --- Physically meaningful cross-unit algebra ----------------------------
[[nodiscard]] constexpr Seconds operator/(Bytes b, BytesPerSec r) noexcept {
  return Seconds(b.value() / r.value());
}
[[nodiscard]] constexpr BytesPerSec operator/(Bytes b, Seconds t) noexcept {
  return BytesPerSec(b.value() / t.value());
}
[[nodiscard]] constexpr Bytes operator*(BytesPerSec r, Seconds t) noexcept {
  return Bytes(r.value() * t.value());
}
[[nodiscard]] constexpr Bytes operator*(Seconds t, BytesPerSec r) noexcept {
  return Bytes(t.value() * r.value());
}

[[nodiscard]] constexpr Dollars operator*(Hours h,
                                          DollarsPerHour r) noexcept {
  return Dollars(h.value() * r.value());
}
[[nodiscard]] constexpr Dollars operator*(DollarsPerHour r,
                                          Hours h) noexcept {
  return Dollars(r.value() * h.value());
}
[[nodiscard]] constexpr Hours operator/(Dollars d,
                                        DollarsPerHour r) noexcept {
  return Hours(d.value() / r.value());
}
[[nodiscard]] constexpr DollarsPerHour operator/(Dollars d,
                                                 Hours h) noexcept {
  return DollarsPerHour(d.value() / h.value());
}

[[nodiscard]] constexpr MflupsPerDollarHour operator/(
    Mflups m, DollarsPerHour r) noexcept {
  return MflupsPerDollarHour(m.value() / r.value());
}

/// Expected number of events at `rate` over `h` hours (dimensionless).
[[nodiscard]] constexpr real_t operator*(PerHour rate, Hours h) noexcept {
  return rate.value() * h.value();
}
[[nodiscard]] constexpr real_t operator*(Hours h, PerHour rate) noexcept {
  return h.value() * rate.value();
}

/// Roofline ridge point: GFLOP/s over GB/s is numerically flops/byte.
[[nodiscard]] constexpr FlopsPerByte operator/(GflopsPerSec f,
                                               GigabytesPerSec b) noexcept {
  return FlopsPerByte(f.value() / b.value());
}

}  // namespace hemo::units
