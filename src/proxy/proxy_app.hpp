// lbm-proxy-app equivalent (paper Section II-B).
//
// The ORNL proxy runs fluid-only LBM in a hardcoded cylindrical geometry to
// isolate the performance of the common LBM kernels, exposing AA/AB
// propagation, AoS/SoA layouts, and unrolled/looped inner loops. ProxyApp
// wraps a cylinder Simulation with a chosen kernel variant, offers real
// timed local runs (for the google-benchmark kernels), and exposes the
// standard variant sets benchmarked in the paper's Figs. 4 and 8.
#pragma once

#include <chrono>
#include <vector>

#include "harvey/simulation.hpp"
#include "util/common.hpp"

namespace hemo::proxy {

/// Geometry / numerics of the proxy cylinder.
struct ProxyParams {
  index_t radius = 12;
  index_t length = 96;
  real_t tau = 0.8;
  real_t peak_velocity = 0.05;
};

/// Result of a real, locally timed run.
struct LocalRun {
  index_t steps = 0;
  real_t seconds = 0.0;
  real_t mflups = 0.0;
};

/// The proxy application.
class ProxyApp {
 public:
  ProxyApp(const ProxyParams& params, const lbm::KernelConfig& kernel);

  [[nodiscard]] harvey::Simulation& simulation() noexcept { return sim_; }
  [[nodiscard]] const lbm::KernelConfig& kernel() const noexcept {
    return kernel_;
  }

  /// Runs `steps` timesteps of the real solver on the host and times them.
  [[nodiscard]] LocalRun run_local(index_t steps);

  /// Simulated measurement on a cloud instance (delegates to Simulation).
  [[nodiscard]] cluster::ExecutionResult measure(
      const cluster::InstanceProfile& profile, index_t n_tasks,
      index_t timesteps, const cluster::MeasurementContext& when = {}) {
    return sim_.measure(profile, n_tasks, timesteps, when);
  }

 private:
  lbm::KernelConfig kernel_;
  harvey::Simulation sim_;
};

/// The four variants of the paper's Fig. 4: {AA, AB} x {SoA unrolled, AoS}.
[[nodiscard]] std::vector<lbm::KernelConfig> fig4_variants();

/// The four SoA variants of the paper's Fig. 8:
/// {AA, AB} x {unrolled, looped}, all SoA.
[[nodiscard]] std::vector<lbm::KernelConfig> fig8_variants();

}  // namespace hemo::proxy
