#include "proxy/proxy_app.hpp"

namespace hemo::proxy {

namespace {

geometry::Geometry make_proxy_geometry(const ProxyParams& params) {
  geometry::CylinderParams cyl;
  cyl.radius = params.radius;
  cyl.length = params.length;
  cyl.peak_velocity = params.peak_velocity;
  return geometry::make_cylinder(cyl);
}

harvey::SimulationOptions make_options(const ProxyParams& params,
                                       const lbm::KernelConfig& kernel) {
  harvey::SimulationOptions opts;
  opts.solver.tau = params.tau;
  opts.solver.kernel = kernel;
  // The proxy's cylinder divides naturally into grid blocks.
  opts.strategy = decomp::Strategy::kGrid;
  return opts;
}

}  // namespace

ProxyApp::ProxyApp(const ProxyParams& params, const lbm::KernelConfig& kernel)
    : kernel_(kernel),
      sim_(make_proxy_geometry(params), make_options(params, kernel)) {}

LocalRun ProxyApp::run_local(index_t steps) {
  HEMO_REQUIRE(steps >= 1, "need at least one step");
  // AA advances in even/odd pairs; keep the count even so the state ends
  // in natural order.
  if (kernel_.propagation == lbm::Propagation::kAA && steps % 2 != 0) {
    ++steps;
  }
  auto& solver = sim_.solver();
  const auto t0 = std::chrono::steady_clock::now();
  solver.run(steps);
  const real_t seconds =
      std::chrono::duration<real_t>(std::chrono::steady_clock::now() - t0)
          .count();
  LocalRun run;
  run.steps = steps;
  run.seconds = seconds;
  run.mflups = lbm::mflups(sim_.mesh().num_points(), steps, seconds);
  return run;
}

std::vector<lbm::KernelConfig> fig4_variants() {
  using namespace lbm;
  std::vector<KernelConfig> v;
  for (Propagation prop : {Propagation::kAA, Propagation::kAB}) {
    v.push_back(KernelConfig{Layout::kSoA, prop, Unroll::kYes,
                             Precision::kDouble});
    v.push_back(KernelConfig{Layout::kAoS, prop, Unroll::kYes,
                             Precision::kDouble});
  }
  return v;
}

std::vector<lbm::KernelConfig> fig8_variants() {
  using namespace lbm;
  std::vector<KernelConfig> v;
  for (Propagation prop : {Propagation::kAA, Propagation::kAB}) {
    for (Unroll unroll : {Unroll::kYes, Unroll::kNo}) {
      v.push_back(
          KernelConfig{Layout::kSoA, prop, unroll, Precision::kDouble});
    }
  }
  return v;
}

}  // namespace hemo::proxy
