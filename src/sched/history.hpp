// Total-ordered protocol event history of one campaign run.
//
// The executor protocol (specs/executor_protocol.md) is stated over
// recorded histories, not over code: when EngineConfig::history is set,
// the engine's coordinator appends one ProtocolEvent at every
// protocol-relevant point of the virtual-event loop — job submission,
// placement, mid-attempt faults, requeues, terminal outcomes. Because only
// the coordinator writes, in virtual-time settlement order, the history is
// a pure function of the seeded campaign inputs: byte-identical canonical
// bytes across reruns and worker counts (invariant W1), which is what lets
// the nemesis harness (src/nemesis/) diff and replay it.
//
// Events carry the job's *cumulative* checkpointed steps and dollar spend,
// and settlement events additionally carry the attempt's deltas — the
// redundancy is deliberate: it is what makes checkpoint monotonicity (K1)
// and cost conservation (C1) checkable from the history alone, so a
// double-charge or a resume past the checkpoint is visible as an
// arithmetic contradiction inside the recorded stream.
#pragma once

#include <string>
#include <vector>

#include "units/units.hpp"
#include "util/common.hpp"

namespace hemo::sched {

/// Protocol-relevant event kinds (specs/executor_protocol.md §2).
enum class ProtocolEventKind {
  kSubmitted,       ///< job entered the campaign queue (t = 0)
  kPlaced,          ///< attempt placed and submitted to the pool
  kPreemption,      ///< spot capacity reclaimed mid-attempt
  kCorruptRestore,  ///< corrupted checkpoint forced a deeper reload
  kGuardStop,       ///< overrun guard hard-stopped the attempt
  kWorkerCrash,     ///< worker died mid-attempt (any tenancy)
  kRequeued,        ///< stopped attempt settled back into the queue
  kCompleted,       ///< all timesteps done (terminal)
  kFailed,          ///< terminal failure (from queue or settlement)
};

/// Stable lowercase name used in canonical bytes and trace matching.
[[nodiscard]] const char* protocol_event_name(ProtocolEventKind kind);

/// One protocol event. `steps` and `usd` are the job's cumulative values
/// at the event; settlement events also carry the attempt's deltas.
struct ProtocolEvent {
  index_t seq = 0;  ///< total order (assigned by ProtocolHistory::record)
  ProtocolEventKind kind = ProtocolEventKind::kSubmitted;
  index_t job = 0;      ///< job id (CampaignJobSpec::id)
  index_t attempt = 0;  ///< 1-based placed-attempt ordinal; 0 while queued
  units::Seconds at_s;  ///< virtual campaign time
  index_t steps = 0;    ///< cumulative checkpointed steps of the job
  units::Dollars usd;   ///< cumulative spend of the job
  /// Attempt deltas, meaningful on settlement events only (kRequeued, and
  /// kCompleted / kFailed that close a placed attempt).
  index_t delta_steps = 0;
  units::Dollars delta_usd;
  std::string detail;  ///< instance / requeue reason / failure reason
};

/// One event rendered in the canonical line format (no trailing newline):
/// `seq kind job=J att=A t=T steps=S usd=U [d_steps=DS d_usd=DU] [detail]`.
/// ProtocolHistory::canonical() joins these lines; the obs flight recorder
/// reuses the same rendering so a dump diffs cleanly against a history.
[[nodiscard]] std::string protocol_event_line(const ProtocolEvent& event);

/// Append-only total-ordered event log. Single-writer by contract (the
/// engine coordinator); readers run after the campaign returns. That
/// contract — not a lock — is the synchronization: record() must never be
/// called concurrently, so the struct deliberately carries no Mutex and
/// stays out of the thread-safety capability map (DESIGN.md §13). If a
/// future multi-shard service ever shares one history across coordinator
/// threads, it must grow a hemo::Mutex with events GUARDED_BY it.
struct ProtocolHistory {
  std::vector<ProtocolEvent> events;

  /// Appends `event` with the next sequence number.
  void record(ProtocolEvent event);

  /// One line per event, byte-stable for a fixed seeded campaign:
  /// `seq kind job=J att=A t=T steps=S usd=U [d_steps=DS d_usd=DU] [detail]`.
  /// This is the artifact W1 compares across worker counts and the bytes
  /// CI uploads for a failing nemesis schedule.
  [[nodiscard]] std::string canonical() const;
};

}  // namespace hemo::sched
