#include "sched/scheduler.hpp"

#include <algorithm>
#include <limits>

#include "cluster/virtual_cluster.hpp"
#include "core/models.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace hemo::sched {

namespace {

/// One feasible option during placement (row already tenancy-adjusted).
struct Candidate {
  core::DashboardRow row;
  bool spot = false;
  bool fits_now = false;
};

/// FNV-1a over a string: a seed component that is stable across runs and
/// platforms (std::hash makes no such promise).
std::uint64_t stable_hash(const std::string& s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

CampaignScheduler::CampaignScheduler(
    std::vector<const cluster::InstanceProfile*> profiles,
    SchedulerConfig config)
    : config_(std::move(config)), dashboard_(std::move(profiles)) {
  HEMO_REQUIRE(!config_.core_counts.empty(),
               "scheduler needs at least one candidate core count");
  HEMO_REQUIRE(config_.guard_tolerance >= 0.0,
               "guard tolerance must be non-negative");
  for (const core::InstanceOption& opt : dashboard_.options()) {
    Pool pool;
    pool.profile = opt.profile;
    pool.total_nodes = opt.profile->nodes();
    pools_.emplace(opt.profile->abbrev, pool);
  }
}

void CampaignScheduler::register_workload(const std::string& name,
                                          geometry::Geometry geometry,
                                          std::span<const index_t> cal_counts) {
  HEMO_REQUIRE(!workloads_.contains(name),
               "workload already registered: " + name);
  harvey::SimulationOptions options;
  options.solver.tau = 0.8;
  Workload w;
  w.sim = std::make_unique<harvey::Simulation>(std::move(geometry), options);

  index_t max_cpn = 1;
  for (const auto& [abbrev, pool] : pools_) {
    max_cpn = std::max(max_cpn, pool.profile->cores_per_node);
  }
  w.calibration = core::calibrate_workload(*w.sim, cal_counts, max_cpn);
  w.calibration.name = name;

  // Prebuild every candidate plan now, single-threaded, so the concurrent
  // executor only reads (Simulation's plan cache is not thread-safe).
  for (const auto& [abbrev, pool] : pools_) {
    for (index_t cores : config_.core_counts) {
      const index_t cpn = std::min(cores, pool.profile->cores_per_node);
      const index_t nodes = (cores + cpn - 1) / cpn;
      if (nodes > pool.total_nodes) continue;  // never placeable here
      w.plans[{abbrev, cores}] = &w.sim->plan(cores, cpn);
    }
  }

  auto [it, inserted] = workloads_.emplace(name, std::move(w));
  if (config_.pilot_steps > 0) run_pilots(name, it->second);
}

void CampaignScheduler::run_pilots(const std::string& name,
                                   const Workload& workload) {
  // One short measurement per instance at the smallest placeable
  // allocation, recorded against the raw model prediction: the same warm
  // start the paper's users perform before arming a 10 % guard
  // (examples/cost_guard.cpp) — without it, every cold prediction
  // overshoots by the hidden efficiency factor and the first wave of jobs
  // overrun-requeues.
  for (const core::InstanceOption& opt : dashboard_.options()) {
    const cluster::WorkloadPlan* plan = nullptr;
    index_t cores = 0;
    for (index_t c : config_.core_counts) {
      const auto it = workload.plans.find({opt.profile->abbrev, c});
      if (it != workload.plans.end()) {
        plan = it->second;
        cores = c;
        break;
      }
    }
    if (plan == nullptr) continue;  // instance too small for any candidate

    Xoshiro256 rng(
        hash_seed(config_.pilot_seed, stable_hash(opt.profile->abbrev)));
    const cluster::MeasurementContext when{
        rng.below(7), rng.below(24), rng.below(1 << 20)};
    const cluster::VirtualCluster vc(*opt.profile);
    const auto measured = vc.execute(*plan, config_.pilot_steps, when);
    const auto predicted = core::predict_general(
        workload.calibration, opt.calibration, cores,
        std::min(cores, opt.profile->cores_per_node));
    tracker_.record(core::Observation{name, opt.profile->abbrev, cores,
                                      predicted.mflups, measured.mflups});
  }
}

const CampaignScheduler::Workload& CampaignScheduler::workload_for(
    const std::string& name) const {
  const auto it = workloads_.find(name);
  HEMO_REQUIRE(it != workloads_.end(), "unregistered workload: " + name);
  return it->second;
}

PlacementDecision CampaignScheduler::place(
    const PlacementRequest& request) const {
  HEMO_REQUIRE(request.spec != nullptr, "placement request without a spec");
  HEMO_REQUIRE(request.remaining_steps >= 1,
               "placement request with no remaining work");
  const CampaignJobSpec& spec = *request.spec;
  const Workload& workload = workload_for(spec.geometry);

  core::WorkloadCalibration cal = workload.calibration;
  if (spec.resolution_factor != 1.0) {
    cal = core::scale_resolution(cal, spec.resolution_factor);
  }
  // Phase-2 refinement, keyed per (geometry, resolution): the model's error
  // mix shifts with the memory/halo balance, so a resolution-scaled job is
  // corrected from observations at its own key once any exist. Before the
  // first measurement at a key the campaign-wide pool is the best guess —
  // an overrun requeue then self-heals, because the killed attempt records
  // the keyed observation the retry is placed with.
  const std::string key = workload_key(spec);
  core::CampaignTracker keyed;
  for (const core::Observation& obs : tracker_.observations()) {
    if (obs.workload == key) keyed.record(obs);
  }
  const core::CampaignTracker& view = keyed.size() > 0 ? keyed : tracker_;
  const real_t correction = view.correction_factor();
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::global();
  metrics.set("sched_correction_factor", correction,
              {{"workload", key}});
  const auto rows =
      dashboard_.evaluate(cal, core::JobSpec{request.remaining_steps},
                          config_.core_counts, &view);

  const auto reject = [&metrics](const char* reason) {
    metrics.add("sched_candidates_rejected_total", 1.0,
                {{"reason", reason}});
  };
  std::vector<Candidate> feasible;
  for (const core::DashboardRow& raw : rows) {
    const auto pit = pools_.find(raw.instance);
    if (pit == pools_.end()) {
      reject("no_pool");
      continue;
    }
    const Pool& pool = pit->second;
    if (raw.n_nodes > pool.total_nodes) {  // allocation too large
      reject("too_large");
      continue;
    }

    Candidate c;
    c.spot = spec.allow_spot;
    c.row = c.spot ? core::apply_spot_pricing(raw, config_.spot) : raw;
    if (request.remaining_deadline_s.value() > 0.0 &&
        c.row.time_to_solution_s > request.remaining_deadline_s) {
      reject("deadline");
      continue;
    }
    if (request.remaining_budget.value() > 0.0) {
      // Budget must cover the guard ceiling, not just the point estimate:
      // the job is allowed to run tolerance-% long before the hard stop.
      const units::Dollars ceiling =
          c.row.total_dollars * (1.0 + config_.guard_tolerance);
      if (ceiling > request.remaining_budget) {
        reject("budget");
        continue;
      }
    }
    c.fits_now = raw.n_nodes <= pool.total_nodes - pool.in_use;
    feasible.push_back(std::move(c));
  }

  if (feasible.empty()) {
    metrics.add("sched_place_total", 1.0, {{"outcome", "infeasible"}});
    PlacementDecision d;
    d.kind = PlacementDecision::Kind::kInfeasible;
    d.reason = "no (instance, core count) option satisfies the job's "
               "deadline/budget constraints";
    return d;
  }

  std::vector<const Candidate*> open;
  for (const Candidate& c : feasible) {
    if (c.fits_now) open.push_back(&c);
  }
  if (open.empty()) {
    metrics.add("sched_place_total", 1.0, {{"outcome", "wait"}});
    PlacementDecision d;
    d.kind = PlacementDecision::Kind::kWait;
    return d;
  }

  const Candidate* chosen = open.front();
  switch (config_.policy) {
    case Policy::kModelDriven: {
      std::vector<core::DashboardRow> open_rows;
      open_rows.reserve(open.size());
      for (const Candidate* c : open) open_rows.push_back(c->row);
      const core::Objective objective =
          config_.objective == core::Objective::kDeadline &&
                  request.remaining_deadline_s.value() <= 0.0
              ? core::Objective::kMinCost
              : config_.objective;
      const auto best = core::Dashboard::recommend(
          open_rows, objective, request.remaining_deadline_s);
      // `open_rows` is non-empty and every row meets the (already
      // filtered) deadline, so a recommendation always exists.
      for (const Candidate* c : open) {
        if (c->row.instance == best->instance &&
            c->row.n_tasks == best->n_tasks) {
          chosen = c;
          break;
        }
      }
      break;
    }
    case Policy::kCheapestRate:
      for (const Candidate* c : open) {
        if (c->row.cost_rate_per_hour < chosen->row.cost_rate_per_hour ||
            (c->row.cost_rate_per_hour == chosen->row.cost_rate_per_hour &&
             c->row.n_tasks < chosen->row.n_tasks)) {
          chosen = c;
        }
      }
      break;
    case Policy::kBiggest:
      for (const Candidate* c : open) {
        if (c->row.n_tasks > chosen->row.n_tasks ||
            (c->row.n_tasks == chosen->row.n_tasks &&
             c->row.cost_rate_per_hour > chosen->row.cost_rate_per_hour)) {
          chosen = c;
        }
      }
      break;
  }

  metrics.add("sched_place_total", 1.0, {{"outcome", "placed"}});
  metrics.add("sched_placements_total", 1.0,
              {{"instance", chosen->row.instance},
               {"spot", chosen->spot ? "true" : "false"}});
  PlacementDecision d;
  d.kind = PlacementDecision::Kind::kPlaced;
  d.placement.instance = chosen->row.instance;
  d.placement.n_tasks = chosen->row.n_tasks;
  d.placement.n_nodes = chosen->row.n_nodes;
  d.placement.spot = chosen->spot;
  d.placement.predicted_seconds = chosen->row.time_to_solution_s;
  d.placement.predicted_mflups = chosen->row.prediction.mflups;
  d.placement.raw_mflups =
      units::Mflups(chosen->row.prediction.mflups.value() / correction);
  d.placement.cost_rate_per_hour = chosen->row.cost_rate_per_hour;
  return d;
}

void CampaignScheduler::reserve(const Placement& placement) {
  const auto it = pools_.find(placement.instance);
  HEMO_REQUIRE(it != pools_.end(), "unknown instance: " + placement.instance);
  HEMO_REQUIRE(it->second.in_use + placement.n_nodes <= it->second.total_nodes,
               "reservation exceeds pool capacity");
  it->second.in_use += placement.n_nodes;
}

void CampaignScheduler::release(const Placement& placement) {
  const auto it = pools_.find(placement.instance);
  HEMO_REQUIRE(it != pools_.end(), "unknown instance: " + placement.instance);
  HEMO_REQUIRE(it->second.in_use >= placement.n_nodes,
               "releasing more nodes than reserved");
  it->second.in_use -= placement.n_nodes;
}

index_t CampaignScheduler::free_nodes(const std::string& instance) const {
  const auto it = pools_.find(instance);
  HEMO_REQUIRE(it != pools_.end(), "unknown instance: " + instance);
  return it->second.total_nodes - it->second.in_use;
}

const cluster::WorkloadPlan& CampaignScheduler::plan_for(
    const std::string& geometry, const std::string& instance,
    index_t n_tasks) const {
  const Workload& w = workload_for(geometry);
  const auto it = w.plans.find({instance, n_tasks});
  HEMO_REQUIRE(it != w.plans.end(),
               "no prebuilt plan for " + geometry + " on " + instance);
  return *it->second;
}

const cluster::InstanceProfile& CampaignScheduler::profile_for(
    const std::string& instance) const {
  const auto it = pools_.find(instance);
  HEMO_REQUIRE(it != pools_.end(), "unknown instance: " + instance);
  return *it->second.profile;
}

index_t CampaignScheduler::points_of(const std::string& geometry) const {
  return workload_for(geometry).calibration.total_points;
}

}  // namespace hemo::sched
