#include "sched/job.hpp"

#include <cstdio>

namespace hemo::sched {

std::string workload_key(const CampaignJobSpec& spec) {
  if (spec.resolution_factor == 1.0) return spec.geometry;
  char suffix[32];
  std::snprintf(suffix, sizeof(suffix), "@x%g", spec.resolution_factor);
  return spec.geometry + suffix;
}

}  // namespace hemo::sched
