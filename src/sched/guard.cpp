#include "sched/guard.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace hemo::sched {

units::Seconds scaled_step_seconds(const cluster::ExecutionResult& result,
                                   real_t factor) {
  HEMO_REQUIRE(factor > 0.0, "resolution factor must be positive");
  if (factor == 1.0) return result.step_seconds;
  const units::Seconds noise_free = result.critical.total();
  if (noise_free.value() <= 0.0) return result.step_seconds;
  const real_t noise = result.step_seconds / noise_free;
  const real_t surface = std::cbrt(factor) * std::cbrt(factor);
  const units::Seconds scaled =
      (result.critical.mem_s + result.critical.overhead_s +
       result.critical.xfer_s) * factor +
      (result.critical.intra_s + result.critical.inter_s) * surface;
  return scaled * noise;
}

AttemptResult simulate_attempt(const AttemptContext& ctx) {
  HEMO_REQUIRE(ctx.plan != nullptr && ctx.profile != nullptr,
               "attempt context needs a plan and a profile");
  HEMO_REQUIRE(ctx.steps >= 1, "attempt needs at least one step");
  HEMO_REQUIRE(ctx.n_chunks >= 1, "attempt needs at least one chunk");

  const cluster::VirtualCluster vc(*ctx.profile);
  Xoshiro256 rng(ctx.seed);
  AttemptResult res;

  const index_t chunk_steps = (ctx.steps + ctx.n_chunks - 1) / ctx.n_chunks;
  units::Seconds occupied_s;  ///< paid allocation time (compute + losses)
  units::Seconds backoff_s;   ///< unpaid waits between spot retries
  index_t done = 0;

  while (done < ctx.steps) {
    const index_t this_steps = std::min(chunk_steps, ctx.steps - done);
    const cluster::MeasurementContext when{rng.below(7), rng.below(24),
                                           rng.below(1 << 20)};
    const auto exec = vc.execute(*ctx.plan, this_steps, when);
    const units::Seconds chunk_s =
        scaled_step_seconds(exec, ctx.resolution_factor) *
        static_cast<real_t>(this_steps) * ctx.faults.slowdown_factor;

    // Injected worker crash: the process dies partway through the chunk
    // regardless of tenancy. The allocation is paid up to the strike, the
    // in-flight chunk is lost, and the attempt ends at the last durable
    // checkpoint — kill+requeue recovery is the engine's job. Draws are
    // gated on the rate so disabled injection leaves the stream intact.
    if (ctx.faults.worker_crash_probability > 0.0 &&
        rng.uniform() < ctx.faults.worker_crash_probability) {
      occupied_s += chunk_s * rng.uniform();
      res.worker_crashed = true;
      res.events.push_back({AttemptEvent::Kind::kWorkerCrash,
                            occupied_s + backoff_s, done});
      break;
    }

    if (ctx.placement.spot) {
      // Poisson interruption arrivals over the chunk's wall time, plus any
      // injected interruption storm.
      const real_t p_preempt =
          1.0 -
          std::exp(-ctx.spot.preemptions_per_hour.value() * chunk_s.value() /
                   3600.0) +
          ctx.faults.extra_preemption_probability;
      const real_t draw = rng.uniform();
      const real_t strike_fraction = rng.uniform();
      if (draw < p_preempt) {
        // Struck partway through: the in-flight chunk since the last
        // checkpoint is lost; pay for the wasted work and the restart.
        occupied_s +=
            chunk_s * strike_fraction + ctx.spot.restart_overhead_s;
        ++res.preemptions;
        res.events.push_back({AttemptEvent::Kind::kPreemption,
                              occupied_s + backoff_s, done});
        if (res.preemptions > ctx.max_preemptions) {
          res.retries_exhausted = true;
          break;
        }
        backoff_s += ctx.backoff_base_s *
                     std::pow(2.0, static_cast<real_t>(res.preemptions - 1));
        // Injected checkpoint corruption: the state read back on resume is
        // bad, so fall back to the checkpoint before it — the previously
        // completed chunk must be redone and a second reload is paid. The
        // draw is gated on the rate so disabled injection leaves the RNG
        // stream (and therefore every uninjected result) untouched. The
        // redone chunk's original compute stays counted: it was real work
        // the corruption burned, and the throughput fed to the refinement
        // tracker should dip accordingly.
        if (ctx.faults.checkpoint_corruption_rate > 0.0 &&
            rng.uniform() < ctx.faults.checkpoint_corruption_rate) {
          done = std::max<index_t>(0, done - chunk_steps);
          occupied_s += ctx.spot.restart_overhead_s;
          ++res.checkpoint_corruptions;
          res.events.push_back({AttemptEvent::Kind::kCorruptRestore,
                                occupied_s + backoff_s, done});
        }
        continue;  // resume from the checkpoint: redo this chunk
      }
    }

    occupied_s += chunk_s;
    res.compute_seconds += chunk_s;
    done += this_steps;

    // Progress report at the checkpoint: the model-driven job limit. The
    // pace check uses paid allocation time (preemption losses included,
    // unpaid backoff waits excluded) — the guard protects spend.
    const real_t fraction =
        static_cast<real_t>(done) / static_cast<real_t>(ctx.steps);
    if (done < ctx.steps && ctx.guard.should_abort(occupied_s, fraction)) {
      res.overrun_aborted = true;
      res.events.push_back({AttemptEvent::Kind::kGuardStop,
                            occupied_s + backoff_s, done});
      break;
    }
  }

  res.steps_done = done;
  res.sim_seconds = occupied_s + backoff_s;
  res.dollars = units::to_hours(occupied_s) * ctx.placement.cost_rate_per_hour;
  if (res.compute_seconds.value() > 0.0) {
    const real_t points = static_cast<real_t>(ctx.plan->total_points) *
                          ctx.resolution_factor;
    res.measured_mflups =
        units::Mflups(points * static_cast<real_t>(done) /
                      (res.compute_seconds.value() * 1e6));
  }
  return res;
}

}  // namespace hemo::sched
