#include "sched/report.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/table.hpp"

namespace hemo::sched {

namespace {

const char* state_name(JobState state) {
  switch (state) {
    case JobState::kPending: return "pending";
    case JobState::kRunning: return "running";
    case JobState::kCompleted: return "completed";
    case JobState::kFailed: return "failed";
  }
  return "?";
}

}  // namespace

CampaignReport build_report(const std::vector<JobRecord>& records,
                            std::vector<ErrorSample> trajectory,
                            units::Seconds makespan_s) {
  CampaignReport report;
  report.makespan_s = makespan_s;
  report.error_trajectory = std::move(trajectory);

  std::vector<const JobRecord*> ordered;
  ordered.reserve(records.size());
  for (const JobRecord& r : records) ordered.push_back(&r);
  std::sort(ordered.begin(), ordered.end(),
            [](const JobRecord* a, const JobRecord* b) {
              return a->spec.id < b->spec.id;
            });

  real_t total_updates = 0.0;
  for (const JobRecord* r : ordered) {
    JobReportRow row;
    row.id = r->spec.id;
    row.geometry = r->spec.geometry;
    if (!r->placements.empty()) {
      const Placement& last = r->placements.back();
      row.instance = last.instance;
      row.n_tasks = last.n_tasks;
      row.spot = last.spot;
      row.predicted_s = r->placements.front().predicted_seconds;
    }
    row.state = r->state;
    row.attempts = r->attempts;
    row.overruns = r->overruns;
    row.preemptions = r->preemptions;
    if (r->start_s.value() >= 0.0 && r->finish_s.value() >= 0.0) {
      row.actual_s = r->finish_s - r->start_s;
    }
    row.dollars = r->dollars;
    report.jobs.push_back(std::move(row));

    ++report.n_jobs;
    if (r->state == JobState::kCompleted) {
      ++report.n_completed;
      total_updates += r->points * static_cast<real_t>(r->steps_done);
    }
    if (r->state == JobState::kFailed) ++report.n_failed;
    report.total_overruns += r->overruns;
    report.total_preemptions += r->preemptions;
    report.total_corruptions += r->checkpoint_corruptions;
    report.total_requeues += std::max<index_t>(0, r->attempts - 1);
    report.total_dollars += r->dollars;
  }
  if (report.total_dollars.value() > 0.0) {
    report.mlups_per_dollar = units::MlupsPerDollar(
        total_updates / 1e6 / report.total_dollars.value());
  }

  const index_t n = static_cast<index_t>(report.error_trajectory.size());
  if (n > 0) {
    const index_t half = std::max<index_t>(1, n / 2);
    real_t early = 0.0, late = 0.0;
    for (index_t i = 0; i < n; ++i) {
      (i < half ? early : late) += report.error_trajectory
                                       [static_cast<std::size_t>(i)]
                                           .abs_rel_error;
    }
    report.early_error = early / static_cast<real_t>(half);
    report.late_error =
        n > half ? late / static_cast<real_t>(n - half) : report.early_error;
  }
  return report;
}

void CampaignReport::print(std::ostream& os) const {
  TextTable t;
  t.set_header({"Job", "Geometry", "Instance", "Tasks", "Tenancy", "State",
                "Att", "Ovr", "Pre", "Pred (h)", "Actual (h)", "Cost (USD)"});
  for (const JobReportRow& row : jobs) {
    t.add_row({TextTable::num(row.id), row.geometry, row.instance,
               TextTable::num(row.n_tasks), row.spot ? "spot" : "on-demand",
               state_name(row.state), TextTable::num(row.attempts),
               TextTable::num(row.overruns), TextTable::num(row.preemptions),
               TextTable::num(row.predicted_s.value() / 3600.0, 3),
               TextTable::num(row.actual_s.value() / 3600.0, 3),
               TextTable::num(row.dollars.value(), 2)});
  }
  t.print(os);
  os << "\njobs " << n_completed << "/" << n_jobs << " completed, "
     << n_failed << " failed; requeues " << total_requeues << ", overruns "
     << total_overruns << ", preemptions " << total_preemptions << "\n"
     << "total $" << TextTable::num(total_dollars.value(), 2)
     << ", makespan " << TextTable::num(makespan_s.value() / 3600.0, 3)
     << " h, " << TextTable::num(mlups_per_dollar.value(), 1) << " MLUP/$\n"
     << "prediction |error|: " << TextTable::num(early_error * 100.0, 2)
     << " % (early) -> " << TextTable::num(late_error * 100.0, 2)
     << " % (late) over " << error_trajectory.size() << " attempts\n";
}

std::string CampaignReport::to_csv() const {
  std::ostringstream os;
  // Column names carry their unit explicitly: _s seconds, _usd dollars.
  os << "job,geometry,instance,tasks,spot,state,attempts,overruns,"
        "preemptions,predicted_s,actual_s,cost_usd\n";
  for (const JobReportRow& row : jobs) {
    os << row.id << ',' << row.geometry << ',' << row.instance << ','
       << row.n_tasks << ',' << (row.spot ? 1 : 0) << ','
       << state_name(row.state) << ',' << row.attempts << ','
       << row.overruns << ',' << row.preemptions << ','
       << TextTable::num(row.predicted_s.value(), 6) << ','
       << TextTable::num(row.actual_s.value(), 6) << ','
       << TextTable::num(row.dollars.value(), 6) << '\n';
  }
  os << "total_cost_usd," << TextTable::num(total_dollars.value(), 6) << '\n'
     << "makespan_s," << TextTable::num(makespan_s.value(), 6) << '\n'
     << "mlups_per_usd," << TextTable::num(mlups_per_dollar.value(), 6)
     << '\n'
     << "completed," << n_completed << ",failed," << n_failed << '\n'
     << "overruns," << total_overruns << ",preemptions," << total_preemptions
     << ",requeues," << total_requeues << ",corruptions," << total_corruptions
     << '\n';
  for (const ErrorSample& s : error_trajectory) {
    os << "err," << TextTable::num(s.virtual_time_s.value(), 6) << ','
       << s.job_id
       << ',' << TextTable::num(s.abs_rel_error, 6) << '\n';
  }
  return os.str();
}

}  // namespace hemo::sched
