// Concurrent campaign execution with deterministic virtual time.
//
// CampaignEngine closes the paper's operational loop (Fig. 1): it drains a
// queue of job specs through placement (CampaignScheduler), concurrent
// execution (a worker thread pool running simulate_attempt), the overrun
// guard / spot machinery (guard.hpp), and mid-campaign refinement (every
// completed attempt's measurement is recorded into the shared
// CampaignTracker before the next placement decision).
//
// Determinism under concurrency is a design contract, not an accident:
//
//  * campaign time is *virtual*. Each attempt reports its simulated
//    duration; the engine advances a virtual clock event by event
//    (earliest finish first, ties by job id) and never reads wall time;
//  * attempts are pure functions of their context (seeded per-job,
//    per-attempt RNG streams via hash_seed(campaign seed, job id,
//    attempt)), so the worker pool may compute them in any order and
//    real concurrency only changes wall time, never results;
//  * all shared state — refinement tracker, capacity pools, records — is
//    touched only by the coordinator, in virtual-time order.
//
// Consequence: the same seed yields a byte-identical CampaignReport for
// any worker count, which tests/test_sched.cpp asserts.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "sched/guard.hpp"
#include "sched/history.hpp"
#include "sched/report.hpp"
#include "sched/scheduler.hpp"
#include "util/common.hpp"
#include "util/sync.hpp"

namespace hemo::sched {

/// A fixed-size pool of worker threads executing attempt simulations.
class WorkerPool {
 public:
  explicit WorkerPool(index_t n_threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Enqueues one attempt; the future resolves when a worker finishes it.
  [[nodiscard]] std::future<AttemptResult> submit(
      std::function<AttemptResult()> task) HEMO_EXCLUDES(mutex_);

  [[nodiscard]] index_t size() const noexcept {
    return static_cast<index_t>(threads_.size());
  }

 private:
  void worker_loop() HEMO_EXCLUDES(mutex_);

  std::vector<std::thread> threads_;
  Mutex mutex_;  ///< guards the work queue and the stop latch
  CondVar cv_;   ///< signaled under mutex_ on push and on stop
  std::deque<std::packaged_task<AttemptResult()>> queue_
      HEMO_GUARDED_BY(mutex_);
  bool stop_ HEMO_GUARDED_BY(mutex_) = false;
};

/// Deliberately-wrong executor variants for the nemesis self-test
/// (specs/executor_protocol.md §4): each seeds exactly one protocol
/// violation that the history checker (src/nemesis/checker.hpp) must
/// flag, proving the engine→history→checker path detects real protocol
/// regressions end to end. Never enabled outside tests.
enum class SeededBug {
  kNone,
  /// A settled attempt's cost is applied to the job twice (violates C1:
  /// kill+requeue must conserve the accounting).
  kDoubleCharge,
  /// An overrun/crash requeue is recorded but the job is never re-queued,
  /// so it ends in a non-terminal state (violates E1).
  kLostRequeue,
  /// A requeued job is queued twice, racing two live attempts of the
  /// same job (violates S1: placed while already running).
  kDoubleRequeue,
  /// A requeue resumes one chunk past the durable checkpoint, fabricating
  /// progress that was never computed (violates K1a).
  kSkipRestore,
};

/// Engine configuration.
struct EngineConfig {
  index_t n_workers = 4;
  std::uint64_t seed = 42;
  /// Checkpoint / progress-report granularity of each attempt.
  index_t chunks_per_attempt = 10;
  /// Placement attempts per job (first run + overrun/preemption requeues).
  index_t max_attempts = 4;
  /// Spot retry bound within one attempt.
  index_t max_preemptions = 8;
  units::Seconds backoff_base_s{60.0};
  /// Deterministic fault injection applied to every attempt (all-off by
  /// default; see sched::FaultInjection and src/check/).
  FaultInjection faults;
  /// Protocol history tap (specs/executor_protocol.md): when set, the
  /// coordinator records every protocol event into it, in deterministic
  /// virtual-time settlement order. Must outlive run(). Null (default)
  /// records nothing and changes no behaviour.
  ProtocolHistory* history = nullptr;
  /// Seeded protocol violation for checker self-tests; kNone in
  /// production and in every non-self-test path.
  SeededBug seeded_bug = SeededBug::kNone;
};

/// The campaign execution engine.
class CampaignEngine {
 public:
  /// The scheduler must outlive the engine; its registered workloads and
  /// tracker are shared campaign state.
  CampaignEngine(CampaignScheduler& scheduler, EngineConfig config);

  /// Runs every job to completion or failure and reports the campaign.
  [[nodiscard]] CampaignReport run(std::vector<CampaignJobSpec> jobs);

 private:
  CampaignScheduler* scheduler_;
  EngineConfig config_;
};

}  // namespace hemo::sched
