#include "sched/executor.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "obs/drift.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace hemo::sched {

WorkerPool::WorkerPool(index_t n_threads) {
  HEMO_REQUIRE(n_threads >= 1, "worker pool needs at least one thread");
  threads_.reserve(static_cast<std::size_t>(n_threads));
  for (index_t i = 0; i < n_threads; ++i) {
    threads_.emplace_back([this, i] {
      obs::set_thread_label("worker" + std::to_string(i));
      worker_loop();
    });
  }
}

WorkerPool::~WorkerPool() {
  {
    const MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

std::future<AttemptResult> WorkerPool::submit(
    std::function<AttemptResult()> task) {
  std::packaged_task<AttemptResult()> packaged(std::move(task));
  std::future<AttemptResult> future = packaged.get_future();
  {
    const MutexLock lock(mutex_);
    HEMO_REQUIRE(!stop_, "submit on a stopped worker pool");
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void WorkerPool::worker_loop() {
  for (;;) {
    std::packaged_task<AttemptResult()> task;
    {
      MutexLock lock(mutex_);
      while (!stop_ && queue_.empty()) cv_.wait(mutex_);
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    const obs::PhaseScope phase("attempt");
    task();
  }
}

CampaignEngine::CampaignEngine(CampaignScheduler& scheduler,
                               EngineConfig config)
    : scheduler_(&scheduler), config_(config) {
  HEMO_REQUIRE(config_.n_workers >= 1, "engine needs at least one worker");
  HEMO_REQUIRE(config_.chunks_per_attempt >= 1,
               "attempts need at least one chunk");
  HEMO_REQUIRE(config_.max_attempts >= 1, "jobs need at least one attempt");
}

namespace {

/// One submitted attempt awaiting its virtual finish event.
struct InFlight {
  std::size_t job = 0;  ///< index into the records vector
  Placement placement;
  units::Seconds start_s;
  index_t steps_requested = 0;  ///< steps this attempt was placed for
  std::future<AttemptResult> future;
  bool ready = false;
  AttemptResult result;
};

const char* attempt_event_name(AttemptEvent::Kind kind) {
  switch (kind) {
    case AttemptEvent::Kind::kPreemption: return "preemption";
    case AttemptEvent::Kind::kCorruptRestore: return "corrupt_restore";
    case AttemptEvent::Kind::kGuardStop: return "guard_stop";
    case AttemptEvent::Kind::kWorkerCrash: return "worker_crash";
  }
  return "attempt_event";
}

ProtocolEventKind protocol_kind_of(AttemptEvent::Kind kind) {
  switch (kind) {
    case AttemptEvent::Kind::kPreemption:
      return ProtocolEventKind::kPreemption;
    case AttemptEvent::Kind::kCorruptRestore:
      return ProtocolEventKind::kCorruptRestore;
    case AttemptEvent::Kind::kGuardStop:
      return ProtocolEventKind::kGuardStop;
    case AttemptEvent::Kind::kWorkerCrash:
      return ProtocolEventKind::kWorkerCrash;
  }
  return ProtocolEventKind::kPreemption;
}

}  // namespace

CampaignReport CampaignEngine::run(std::vector<CampaignJobSpec> jobs) {
  HEMO_REQUIRE(!jobs.empty(), "campaign needs at least one job");
  std::sort(jobs.begin(), jobs.end(),
            [](const CampaignJobSpec& a, const CampaignJobSpec& b) {
              return a.id < b.id;
            });
  std::set<index_t> seen;
  for (const CampaignJobSpec& spec : jobs) {
    HEMO_REQUIRE(spec.timesteps >= 1,
                 "job " + std::to_string(spec.id) +
                     " needs at least one timestep");
    HEMO_REQUIRE(spec.resolution_factor > 0.0,
                 "job resolution factor must be positive");
    HEMO_REQUIRE(seen.insert(spec.id).second,
                 "duplicate job id " + std::to_string(spec.id));
  }

  std::vector<JobRecord> records(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) records[i].spec = jobs[i];

  WorkerPool pool(config_.n_workers);
  std::vector<std::size_t> pending(records.size());
  for (std::size_t i = 0; i < records.size(); ++i) pending[i] = i;
  std::vector<InFlight> inflight;
  std::vector<ErrorSample> trajectory;
  units::Seconds clock;
  bool bug_armed = false;  ///< one-shot latch for the seeded protocol bugs

  // All telemetry is emitted from this coordinator thread at deterministic
  // points of the virtual-event loop, so the recorded trace is a pure
  // function of the seeded inputs regardless of n_workers.
  obs::TraceRecorder& trace = obs::TraceRecorder::global();
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::global();
  obs::FlightRecorder& recorder = obs::FlightRecorder::global();
  obs::set_thread_label("coordinator");
  std::vector<units::Seconds> queued_since(records.size());

  // Protocol history tap (specs/executor_protocol.md): recorded only here,
  // on the coordinator thread, at deterministic virtual-time points — the
  // history is a pure function of the seeded inputs, like the report. The
  // flight recorder mirrors the same canonical line into its ring (with
  // the seq the history will assign), so a crash dump diffs against a
  // recorded history one-to-one.
  const auto tap = [&](ProtocolEventKind kind, const JobRecord& rec,
                       units::Seconds at, std::string detail = {},
                       index_t delta_steps = 0,
                       units::Dollars delta_usd = units::Dollars{}) {
    if (config_.history == nullptr && !recorder.enabled()) return;
    ProtocolEvent ev;
    ev.kind = kind;
    ev.job = rec.spec.id;
    ev.attempt = rec.attempts;
    ev.at_s = at;
    ev.steps = rec.steps_done;
    ev.usd = rec.dollars;
    ev.delta_steps = delta_steps;
    ev.delta_usd = delta_usd;
    ev.detail = std::move(detail);
    if (config_.history != nullptr) {
      ev.seq = static_cast<index_t>(config_.history->events.size());
    }
    if (recorder.enabled()) {
      recorder.note("protocol", protocol_event_line(ev));
    }
    if (config_.history != nullptr) config_.history->record(std::move(ev));
  };
  for (const JobRecord& rec : records) {
    tap(ProtocolEventKind::kSubmitted, rec, units::Seconds{},
        rec.spec.geometry);
  }

  const auto fail = [&](JobRecord& rec, const std::string& why,
                        index_t delta_steps = 0,
                        units::Dollars delta_usd = units::Dollars{}) {
    rec.state = JobState::kFailed;
    rec.failure = why;
    rec.finish_s = clock;
    tap(ProtocolEventKind::kFailed, rec, clock, why, delta_steps, delta_usd);
    trace.virtual_instant("failed", "sched", rec.spec.id, clock,
                          {{"reason", why}});
    metrics.add("campaign_jobs_total", 1.0, {{"outcome", "failed"}});
  };

  // Coordinator phases for the sampling profiler: RAII scopes would span
  // the whole loop body, so the three passes use explicit balanced
  // push/pop pairs (push_phase returns false while profiling is off).
  obs::PhaseProfiler& profiler = obs::PhaseProfiler::global();

  while (!pending.empty() || !inflight.empty()) {
    // Placement pass, in job-id order (pending stays id-sorted because
    // records are id-sorted and re-insertions keep the order).
    const bool in_place = profiler.push_phase("place");
    std::vector<std::size_t> still_pending;
    for (const std::size_t idx : pending) {
      JobRecord& rec = records[idx];
      const CampaignJobSpec& spec = rec.spec;
      if (spec.deadline_s.value() > 0.0 && clock >= spec.deadline_s) {
        fail(rec, "deadline passed while queued");
        continue;
      }
      PlacementRequest request;
      request.spec = &spec;
      request.remaining_steps = spec.timesteps - rec.steps_done;
      request.remaining_deadline_s = spec.deadline_s.value() > 0.0
                                         ? spec.deadline_s - clock
                                         : units::Seconds{};
      request.remaining_budget = spec.budget_dollars.value() > 0.0
                                     ? spec.budget_dollars - rec.dollars
                                     : units::Dollars{};
      if (spec.budget_dollars.value() > 0.0 &&
          request.remaining_budget.value() <= 0.0) {
        fail(rec, "budget exhausted");
        continue;
      }

      const PlacementDecision decision = scheduler_->place(request);
      if (decision.kind == PlacementDecision::Kind::kInfeasible) {
        fail(rec, decision.reason);
        continue;
      }
      if (decision.kind == PlacementDecision::Kind::kWait) {
        still_pending.push_back(idx);
        continue;
      }

      scheduler_->reserve(decision.placement);
      ++rec.attempts;
      rec.placements.push_back(decision.placement);
      rec.state = JobState::kRunning;
      if (rec.start_s.value() < 0.0) rec.start_s = clock;

      tap(ProtocolEventKind::kPlaced, rec, clock,
          decision.placement.instance);
      trace.virtual_span("queued", "sched", spec.id, queued_since[idx],
                         clock,
                         {{"attempt", std::to_string(rec.attempts)}});
      trace.virtual_instant(
          "placed", "sched", spec.id, clock,
          {{"instance", decision.placement.instance},
           {"tasks", std::to_string(decision.placement.n_tasks)},
           {"spot", decision.placement.spot ? "1" : "0"}});
      metrics.add("campaign_attempts_total", 1.0,
                  {{"instance", decision.placement.instance},
                   {"spot", decision.placement.spot ? "true" : "false"}});

      AttemptContext ctx;
      ctx.plan = &scheduler_->plan_for(spec.geometry,
                                       decision.placement.instance,
                                       decision.placement.n_tasks);
      ctx.profile = &scheduler_->profile_for(decision.placement.instance);
      ctx.placement = decision.placement;
      ctx.guard.predicted_seconds = decision.placement.predicted_seconds;
      ctx.guard.tolerance = scheduler_->config().guard_tolerance;
      ctx.guard.price_per_hour = decision.placement.cost_rate_per_hour;
      ctx.steps = request.remaining_steps;
      ctx.resolution_factor = spec.resolution_factor;
      ctx.n_chunks = config_.chunks_per_attempt;
      ctx.seed = hash_seed(config_.seed,
                           static_cast<std::uint64_t>(spec.id),
                           static_cast<std::uint64_t>(rec.attempts));
      ctx.spot = scheduler_->config().spot;
      ctx.max_preemptions = config_.max_preemptions;
      ctx.backoff_base_s = config_.backoff_base_s;
      ctx.faults = config_.faults;

      InFlight f;
      f.job = idx;
      f.placement = decision.placement;
      f.start_s = clock;
      f.steps_requested = ctx.steps;
      f.future = pool.submit([ctx] { return simulate_attempt(ctx); });
      inflight.push_back(std::move(f));
    }
    pending = std::move(still_pending);
    if (in_place) profiler.pop_phase();

    if (inflight.empty()) {
      // Every pool is free when nothing is in flight, so place() cannot
      // have answered kWait; anything still pending is a logic error.
      for (const std::size_t idx : pending) {
        fail(records[idx], "unplaceable with all pools idle");
      }
      break;
    }

    // All in-flight attempts compute concurrently; their virtual finish
    // times are needed to pick the next event, so wait for the stragglers.
    const bool in_await = profiler.push_phase("await");
    for (InFlight& f : inflight) {
      if (!f.ready) {
        f.result = f.future.get();
        f.ready = true;
      }
    }
    if (in_await) profiler.pop_phase();
    const bool in_settle = profiler.push_phase("settle");

    // Next event: earliest virtual finish, ties broken by job id.
    std::size_t best = 0;
    for (std::size_t i = 1; i < inflight.size(); ++i) {
      const units::Seconds fi =
          inflight[i].start_s + inflight[i].result.sim_seconds;
      const units::Seconds fb =
          inflight[best].start_s + inflight[best].result.sim_seconds;
      if (fi < fb || (fi == fb && records[inflight[i].job].spec.id <
                                      records[inflight[best].job].spec.id)) {
        best = i;
      }
    }
    InFlight event = std::move(inflight[best]);
    inflight.erase(inflight.begin() + static_cast<std::ptrdiff_t>(best));
    clock = event.start_s + event.result.sim_seconds;

    scheduler_->release(event.placement);
    JobRecord& rec = records[event.job];
    const AttemptResult& res = event.result;

    trace.virtual_span(
        "attempt", "sched", rec.spec.id, event.start_s, clock,
        {{"instance", event.placement.instance},
         {"steps_done", std::to_string(res.steps_done)},
         {"preemptions", std::to_string(res.preemptions)},
         {"mflups", obs::trace_num(res.measured_mflups.value())}});
    for (const AttemptEvent& ev : res.events) {
      if (config_.history != nullptr || recorder.enabled()) {
        // Mid-attempt events carry the job's cumulative checkpointed
        // progress (pre-attempt steps plus the attempt's own) and its
        // pre-settlement spend: cost is charged at settlement, so the
        // cumulative dollars move only on the closing event below.
        ProtocolEvent pe;
        pe.kind = protocol_kind_of(ev.kind);
        pe.job = rec.spec.id;
        pe.attempt = rec.attempts;
        pe.at_s = event.start_s + ev.at_s;
        pe.steps = rec.steps_done + ev.steps_done;
        pe.usd = rec.dollars;
        if (config_.history != nullptr) {
          pe.seq = static_cast<index_t>(config_.history->events.size());
        }
        if (recorder.enabled()) {
          recorder.note("protocol", protocol_event_line(pe));
        }
        if (config_.history != nullptr) {
          config_.history->record(std::move(pe));
        }
      }
      trace.virtual_instant(attempt_event_name(ev.kind), "fault",
                            rec.spec.id, event.start_s + ev.at_s,
                            {{"steps_done", std::to_string(ev.steps_done)}});
    }
    if (res.preemptions > 0) {
      metrics.add("campaign_preemptions_total",
                  static_cast<real_t>(res.preemptions),
                  {{"instance", event.placement.instance}});
    }
    if (res.checkpoint_corruptions > 0) {
      metrics.add("campaign_corrupt_restores_total",
                  static_cast<real_t>(res.checkpoint_corruptions),
                  {{"instance", event.placement.instance}});
    }
    if (res.overrun_aborted) {
      metrics.add("campaign_guard_stops_total", 1.0,
                  {{"instance", event.placement.instance}});
    }
    if (res.worker_crashed) {
      metrics.add("campaign_worker_crashes_total", 1.0,
                  {{"instance", event.placement.instance}});
    }
    metrics.observe("campaign_attempt_occupancy_seconds",
                    res.sim_seconds.value());

    rec.dollars += res.dollars;
    rec.compute_seconds += res.compute_seconds;
    rec.preemptions += res.preemptions;
    rec.checkpoint_corruptions += res.checkpoint_corruptions;
    if (res.worker_crashed) ++rec.crashes;
    rec.steps_done += res.steps_done;
    rec.points = static_cast<real_t>(scheduler_->points_of(rec.spec.geometry)) *
                 rec.spec.resolution_factor;

    // Mid-campaign refinement: feed the measurement back before the next
    // placement pass runs, so later decisions use the refined fit.
    if (res.measured_mflups.value() > 0.0) {
      const std::string wkey = workload_key(rec.spec);
      index_t round = 0;
      for (const core::Observation& past :
           scheduler_->tracker().observations()) {
        if (past.workload == wkey) ++round;
      }
      scheduler_->tracker().record(core::Observation{
          wkey, event.placement.instance,
          event.placement.n_tasks, event.placement.raw_mflups,
          res.measured_mflups});

      obs::DriftSample drift;
      drift.workload = wkey;
      drift.instance = event.placement.instance;
      drift.round = round;
      drift.predicted_mflups = event.placement.predicted_mflups.value();
      drift.measured_mflups = res.measured_mflups.value();
      if (event.steps_requested > 0) {
        drift.predicted_step_seconds =
            event.placement.predicted_seconds.value() /
            static_cast<real_t>(event.steps_requested);
      }
      if (res.steps_done > 0) {
        drift.actual_step_seconds = res.compute_seconds.value() /
                                    static_cast<real_t>(res.steps_done);
      }
      obs::record_drift(metrics, drift);
      metrics.set("campaign_correction_factor",
                  scheduler_->tracker().correction_factor());
      metrics.set("campaign_mean_abs_rel_error",
                  scheduler_->tracker().mean_abs_relative_error());
      ErrorSample sample;
      sample.virtual_time_s = clock;
      sample.job_id = rec.spec.id;
      sample.abs_rel_error =
          std::abs(
              (event.placement.predicted_mflups - res.measured_mflups)
                  .value()) /
          res.measured_mflups.value();
      trajectory.push_back(sample);
    }

    // Requeue with refreshed parameters: the tracker already holds this
    // attempt's measurement, so the next placement predicts from the
    // corrected model and resumes at the checkpointed step. The seeded
    // protocol bugs (EngineConfig::seeded_bug, checker self-tests only)
    // land here because kill+requeue is the transition the protocol
    // invariants guard hardest.
    const auto requeue = [&](const char* reason) {
      if (config_.seeded_bug == SeededBug::kDoubleCharge) {
        rec.dollars += res.dollars;  // seeded C1 violation: charged twice
      }
      rec.state = JobState::kPending;
      queued_since[event.job] = clock;
      tap(ProtocolEventKind::kRequeued, rec, clock, reason, res.steps_done,
          res.dollars);
      trace.virtual_instant("requeued", "sched", rec.spec.id, clock,
                            {{"reason", reason}});
      metrics.add("campaign_requeues_total", 1.0, {{"reason", reason}});
      if (config_.seeded_bug == SeededBug::kSkipRestore) {
        rec.steps_done += 1;  // seeded K1a violation: resume past checkpoint
      }
      if (config_.seeded_bug == SeededBug::kLostRequeue && !bug_armed) {
        bug_armed = true;
        return;  // seeded E1 violation: the job is never queued again
      }
      pending.insert(std::upper_bound(pending.begin(), pending.end(),
                                      event.job),
                     event.job);
      if (config_.seeded_bug == SeededBug::kDoubleRequeue && !bug_armed) {
        bug_armed = true;  // seeded S1 violation: two live attempts race
        pending.insert(std::upper_bound(pending.begin(), pending.end(),
                                        event.job),
                       event.job);
      }
    };

    if (rec.steps_done >= rec.spec.timesteps) {
      rec.state = JobState::kCompleted;
      rec.finish_s = clock;
      tap(ProtocolEventKind::kCompleted, rec, clock, {}, res.steps_done,
          res.dollars);
      trace.virtual_instant("completed", "sched", rec.spec.id, clock,
                            {{"attempts", std::to_string(rec.attempts)}});
      metrics.add("campaign_jobs_total", 1.0, {{"outcome", "completed"}});
    } else if (res.overrun_aborted) {
      ++rec.overruns;
      if (rec.attempts >= config_.max_attempts) {
        fail(rec, "attempt limit reached after overrun stop", res.steps_done,
             res.dollars);
      } else {
        requeue("overrun");
      }
    } else if (res.worker_crashed) {
      if (rec.attempts >= config_.max_attempts) {
        fail(rec, "attempt limit reached after worker crash", res.steps_done,
             res.dollars);
      } else {
        requeue("crash");
      }
    } else if (res.retries_exhausted) {
      if (rec.attempts >= config_.max_attempts) {
        fail(rec, "spot retries exhausted", res.steps_done, res.dollars);
      } else {
        // Preempted past the retry bound: requeue on on-demand capacity.
        rec.spec.allow_spot = false;
        requeue("retries");
      }
    } else {
      fail(rec, "attempt made no progress", res.steps_done, res.dollars);
    }
    if (in_settle) profiler.pop_phase();
  }

  return build_report(records, std::move(trajectory), clock);
}

}  // namespace hemo::sched
