// Model-driven placement with bounded instance pools.
//
// CampaignScheduler is the decision layer of the campaign engine: given a
// job, it evaluates every (instance, core count) option with the dashboard
// (generalized model + campaign correction factor), filters by the job's
// deadline/budget and by each instance pool's *remaining* node capacity,
// and picks a placement under the configured policy. The model-driven
// policy is the paper's; the naive policies (always-cheapest hardware,
// always-biggest allocation) exist as ablation baselines — what a user
// without the model would do (bench/ablation_scheduler.cpp).
//
// The scheduler also owns the shared campaign state: one workload registry
// (geometry + calibration + prebuilt decomposition plans), one
// CampaignTracker fed by completed measurements (the paper's phase-2
// refinement loop), and the per-instance capacity accounting. Plans are
// built eagerly at registration so the concurrent executor only ever
// *reads* them.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/dashboard.hpp"
#include "harvey/simulation.hpp"
#include "sched/job.hpp"
#include "util/common.hpp"

namespace hemo::sched {

/// Placement policy: the model-driven mode and two naive baselines.
enum class Policy {
  kModelDriven,   ///< dashboard recommendation under the objective
  kCheapestRate,  ///< lowest $/hour hardware, smallest allocation
  kBiggest,       ///< largest allocation on the premium hardware
};

/// Scheduler configuration.
struct SchedulerConfig {
  Policy policy = Policy::kModelDriven;
  core::Objective objective = core::Objective::kMinCost;
  /// Candidate allocation sizes evaluated per instance type.
  std::vector<index_t> core_counts = {16, 36, 72, 144};
  /// Overrun-guard tolerance (paper §IV: 10 %).
  real_t guard_tolerance = 0.10;
  /// Spot tenancy economics (pricing + interruption model).
  core::SpotOptions spot;
  /// Steps of the per-(workload, instance) pilot measurement used to seed
  /// the refinement tracker before the campaign starts (0 disables; the
  /// cold-start alternative is that early jobs overrun-requeue once, which
  /// the engine also supports).
  index_t pilot_steps = 300;
  std::uint64_t pilot_seed = 0x9e3779b9u;
};

/// Outcome of a placement request.
struct PlacementDecision {
  enum class Kind {
    kPlaced,      ///< placement chosen and capacity available
    kWait,        ///< feasible, but blocked on current pool usage
    kInfeasible,  ///< no option satisfies the job's constraints at all
  };
  Kind kind = Kind::kInfeasible;
  Placement placement;  ///< valid when kind == kPlaced
  std::string reason;   ///< set when kind == kInfeasible
};

/// Remaining work/constraints of the job being placed (differs from the
/// spec after an overrun requeue or a partial spot attempt).
struct PlacementRequest {
  const CampaignJobSpec* spec = nullptr;
  index_t remaining_steps = 0;
  units::Seconds remaining_deadline_s;  ///< 0 = none
  units::Dollars remaining_budget;      ///< 0 = none
};

class CampaignScheduler {
 public:
  CampaignScheduler(std::vector<const cluster::InstanceProfile*> profiles,
                    SchedulerConfig config);

  /// Registers a workload under `name`: calibrates the anatomy laws from
  /// decomposition sweeps at `cal_counts` and prebuilds the workload plan
  /// for every (instance, core count) candidate, then (unless disabled)
  /// runs the pilot measurements that seed the refinement tracker. Must be
  /// called for every geometry a job references, before the engine runs.
  void register_workload(const std::string& name,
                         geometry::Geometry geometry,
                         std::span<const index_t> cal_counts);

  /// Chooses a placement for the request under the policy, or reports that
  /// the job must wait for capacity / can never run.
  [[nodiscard]] PlacementDecision place(const PlacementRequest& request) const;

  /// Capacity accounting (the engine calls these around each attempt).
  void reserve(const Placement& placement);
  void release(const Placement& placement);

  /// Nodes currently free on `instance`.
  [[nodiscard]] index_t free_nodes(const std::string& instance) const;

  /// The shared refinement state (phase-2 loop).
  [[nodiscard]] core::CampaignTracker& tracker() noexcept { return tracker_; }
  [[nodiscard]] const core::CampaignTracker& tracker() const noexcept {
    return tracker_;
  }

  [[nodiscard]] const SchedulerConfig& config() const noexcept {
    return config_;
  }

  /// Prebuilt plan lookup for the executor (throws if not registered).
  [[nodiscard]] const cluster::WorkloadPlan& plan_for(
      const std::string& geometry, const std::string& instance,
      index_t n_tasks) const;

  [[nodiscard]] const cluster::InstanceProfile& profile_for(
      const std::string& instance) const;

  /// Total fluid points of a registered geometry (before resolution
  /// scaling).
  [[nodiscard]] index_t points_of(const std::string& geometry) const;

 private:
  struct Pool {
    const cluster::InstanceProfile* profile = nullptr;
    index_t total_nodes = 0;
    index_t in_use = 0;
  };

  struct Workload {
    std::unique_ptr<harvey::Simulation> sim;
    core::WorkloadCalibration calibration;
    /// (instance abbrev, n_tasks) -> plan built at the instance's
    /// tasks-per-node.
    std::map<std::pair<std::string, index_t>, const cluster::WorkloadPlan*>
        plans;
  };

  [[nodiscard]] const Workload& workload_for(const std::string& name) const;
  void run_pilots(const std::string& name, const Workload& workload);

  SchedulerConfig config_;
  core::Dashboard dashboard_;
  std::map<std::string, Pool> pools_;
  std::map<std::string, Workload> workloads_;
  core::CampaignTracker tracker_;
};

}  // namespace hemo::sched
