#include "sched/history.hpp"

#include <cstdio>
#include <sstream>

namespace hemo::sched {

const char* protocol_event_name(ProtocolEventKind kind) {
  switch (kind) {
    case ProtocolEventKind::kSubmitted: return "submitted";
    case ProtocolEventKind::kPlaced: return "placed";
    case ProtocolEventKind::kPreemption: return "preemption";
    case ProtocolEventKind::kCorruptRestore: return "corrupt_restore";
    case ProtocolEventKind::kGuardStop: return "guard_stop";
    case ProtocolEventKind::kWorkerCrash: return "worker_crash";
    case ProtocolEventKind::kRequeued: return "requeued";
    case ProtocolEventKind::kCompleted: return "completed";
    case ProtocolEventKind::kFailed: return "failed";
  }
  return "?";
}

void ProtocolHistory::record(ProtocolEvent event) {
  event.seq = static_cast<index_t>(events.size());
  events.push_back(std::move(event));
}

namespace {

/// Deterministic numeric rendering for canonical bytes: %.9g is exact for
/// the virtual clock / dollar values the engine produces and renders the
/// same bytes for the same double on every run.
std::string canon_num(real_t value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

}  // namespace

std::string protocol_event_line(const ProtocolEvent& e) {
  std::ostringstream os;
  os << e.seq << ' ' << protocol_event_name(e.kind) << " job=" << e.job
     << " att=" << e.attempt << " t=" << canon_num(e.at_s.value())
     << " steps=" << e.steps << " usd=" << canon_num(e.usd.value());
  if (e.kind == ProtocolEventKind::kRequeued ||
      e.kind == ProtocolEventKind::kCompleted ||
      e.kind == ProtocolEventKind::kFailed) {
    os << " d_steps=" << e.delta_steps
       << " d_usd=" << canon_num(e.delta_usd.value());
  }
  if (!e.detail.empty()) os << ' ' << e.detail;
  return os.str();
}

std::string ProtocolHistory::canonical() const {
  std::string out;
  for (const ProtocolEvent& e : events) {
    out += protocol_event_line(e);
    out += '\n';
  }
  return out;
}

}  // namespace hemo::sched
