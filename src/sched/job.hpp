// Campaign job specifications and lifetime records.
//
// The paper's end state is an *operated* campaign (its Fig. 1 and §IV):
// many simulation jobs submitted against a budget and a deadline, placed by
// the performance model, guarded against overruns, and fed back into the
// iterative refinement loop. These types describe one job through that
// lifecycle: what the user asked for (CampaignJobSpec), where the scheduler
// put it (Placement), what one execution attempt did (AttemptResult), and
// the accumulated history (JobRecord).
#pragma once

#include <string>
#include <vector>

#include "units/units.hpp"
#include "util/common.hpp"

namespace hemo::sched {

/// One simulation job as submitted by the user.
struct CampaignJobSpec {
  index_t id = 0;
  std::string geometry;  ///< workload name registered with the scheduler

  /// Fluid-point multiplier relative to the registered geometry (a spatial
  /// refinement of s voxels per voxel gives s^3). Predictions use
  /// core::scale_resolution; execution scales the virtual-cluster step
  /// composition accordingly (see guard.hpp).
  real_t resolution_factor = 1.0;

  index_t timesteps = 10000;

  /// 0 = no deadline; otherwise the job must finish within this much
  /// simulated time after campaign start (queue wait included).
  units::Seconds deadline_s;

  /// 0 = no budget; otherwise placements whose guard ceiling exceeds the
  /// remaining budget are rejected.
  units::Dollars budget_dollars;

  /// Run on preemptible (spot) capacity: discounted rate, interruption
  /// risk, checkpoint/restart recovery.
  bool allow_spot = false;
};

/// Refinement key of a job: observations are pooled per (geometry,
/// resolution) because the model's error mix shifts with resolution (the
/// memory term grows faster than the halo term), so a correction learned
/// at base resolution misleads a refined-lattice job.
[[nodiscard]] std::string workload_key(const CampaignJobSpec& spec);

/// Where the scheduler lifecycle currently has a job.
enum class JobState {
  kPending,    ///< waiting for capacity (or not yet placed)
  kRunning,    ///< an attempt is executing
  kCompleted,  ///< all timesteps done
  kFailed,     ///< infeasible, out of attempts, or out of retries
};

/// One attempt's placement decision.
struct Placement {
  std::string instance;  ///< instance abbreviation
  index_t n_tasks = 0;
  index_t n_nodes = 0;
  bool spot = false;

  /// Refined (tracker-corrected) prediction for the steps this attempt
  /// covers; the overrun guard is armed from this.
  units::Seconds predicted_seconds;
  units::Mflups predicted_mflups;
  /// Raw model throughput before the campaign correction factor; this is
  /// what gets stored against the measurement so the tracker's geometric
  /// mean is not double-corrected.
  units::Mflups raw_mflups;
  units::DollarsPerHour cost_rate_per_hour;  ///< whole allocation, tenancy-adjusted
};

/// One noteworthy incident inside an attempt, stamped with the attempt's
/// own virtual clock. Offsets are relative to the attempt start so the
/// simulation stays a pure function of its inputs; the coordinator adds the
/// placement instant to obtain absolute campaign time for the trace.
struct AttemptEvent {
  enum class Kind {
    kPreemption,     ///< spot capacity reclaimed; checkpoint/backoff/restart
    kCorruptRestore, ///< injected corrupted checkpoint forced a re-run
    kGuardStop,      ///< overrun guard hard-stopped the attempt
    kWorkerCrash,    ///< worker died mid-attempt; ends at the checkpoint
  };
  Kind kind = Kind::kPreemption;
  units::Seconds at_s;      ///< offset from attempt start (virtual)
  index_t steps_done = 0;   ///< checkpointed steps at the event
};

/// What one attempt actually did (all times simulated).
struct AttemptResult {
  index_t steps_done = 0;  ///< steps completed and checkpointed
  /// Virtual wall occupancy of the allocation: compute + preemption
  /// losses + restart overheads (backoff waits excluded — nodes are
  /// released while waiting).
  units::Seconds sim_seconds;
  units::Seconds compute_seconds;  ///< productive compute in sim_seconds
  units::Dollars dollars;
  units::Mflups measured_mflups;  ///< throughput over productive compute
  index_t preemptions = 0;
  /// Injected corrupted-checkpoint reloads survived (FaultInjection only;
  /// always 0 in production runs).
  index_t checkpoint_corruptions = 0;
  bool overrun_aborted = false;    ///< guard hard stop (>10 % over model)
  bool retries_exhausted = false;  ///< preempted beyond the retry bound
  /// Worker died mid-attempt (FaultInjection::worker_crash_probability);
  /// the attempt ends at its last durable checkpoint and the engine
  /// requeues it (or fails the job when attempts are exhausted).
  bool worker_crashed = false;
  /// Faults and guard stops in virtual order (offsets from attempt start).
  std::vector<AttemptEvent> events;
};

/// Accumulated history of one job across attempts.
struct JobRecord {
  CampaignJobSpec spec;
  JobState state = JobState::kPending;
  index_t attempts = 0;
  index_t steps_done = 0;  ///< across attempts (checkpoint/restart resume)
  units::Seconds start_s{-1.0};   ///< virtual time of first placement
  units::Seconds finish_s{-1.0};  ///< virtual time of completion/failure
  units::Dollars dollars;
  units::Seconds compute_seconds;
  real_t points = 0.0;  ///< fluid points at the job's resolution
  index_t preemptions = 0;
  index_t checkpoint_corruptions = 0;  ///< injected-fault recoveries
  index_t overruns = 0;  ///< guard-triggered requeues
  index_t crashes = 0;   ///< worker-crash requeues (injected faults only)
  std::vector<Placement> placements;  ///< one per attempt
  std::string failure;                ///< why the job failed, if it did
};

}  // namespace hemo::sched
