// Campaign-level accounting and reporting.
//
// A CampaignReport aggregates every JobRecord of a finished campaign into
// the quantities the paper's dashboard reasons about — total dollars,
// time-to-solution (virtual makespan under the capacity constraints),
// throughput per dollar — plus the operational counters (overruns,
// preemptions, requeues) and the prediction-error trajectory that shows
// the phase-2 refinement loop converging. Aggregation is order-independent
// given the records (jobs are reported in id order; the trajectory in
// virtual-time order), so two deterministic runs render byte-identical
// reports regardless of worker-thread interleaving.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sched/job.hpp"
#include "util/common.hpp"

namespace hemo::sched {

/// One prediction-vs-measurement sample, in virtual-time order.
struct ErrorSample {
  units::Seconds virtual_time_s;
  index_t job_id = 0;
  /// |predicted - measured| / measured throughput of the attempt.
  real_t abs_rel_error = 0.0;
};

/// Per-job summary line (jobs in id order).
struct JobReportRow {
  index_t id = 0;
  std::string geometry;
  std::string instance;  ///< of the final attempt
  index_t n_tasks = 0;
  bool spot = false;
  JobState state = JobState::kPending;
  index_t attempts = 0;
  index_t overruns = 0;
  index_t preemptions = 0;
  units::Seconds predicted_s;  ///< first placement's refined prediction
  units::Seconds actual_s;     ///< finish - start (virtual)
  units::Dollars dollars;
};

/// The campaign result.
struct CampaignReport {
  std::vector<JobReportRow> jobs;

  index_t n_jobs = 0;
  index_t n_completed = 0;
  index_t n_failed = 0;
  index_t total_overruns = 0;
  index_t total_preemptions = 0;
  index_t total_requeues = 0;  ///< re-placements after the first attempt
  /// Corrupted-checkpoint recoveries (injected faults only; 0 otherwise).
  index_t total_corruptions = 0;

  units::Dollars total_dollars;
  units::Seconds makespan_s;  ///< virtual time-to-solution of the campaign
  /// Completed mega-lattice-updates per dollar (the campaign-level analog
  /// of the paper's MFLUPS-per-cost-rate metric).
  units::MlupsPerDollar mlups_per_dollar;

  std::vector<ErrorSample> error_trajectory;
  /// Mean |relative error| over the first / second half of the
  /// trajectory; second < first shows the refinement loop converging.
  real_t early_error = 0.0;
  real_t late_error = 0.0;

  /// Human-readable table (TextTable rendering).
  void print(std::ostream& os) const;

  /// Canonical CSV serialization. Two runs of the same seeded campaign
  /// must produce byte-identical strings (the determinism contract tested
  /// in tests/test_sched.cpp).
  [[nodiscard]] std::string to_csv() const;
};

/// Builds the report from finished records; `makespan_s` is the engine's
/// final virtual clock.
[[nodiscard]] CampaignReport build_report(
    const std::vector<JobRecord>& records,
    std::vector<ErrorSample> trajectory, units::Seconds makespan_s);

}  // namespace hemo::sched
