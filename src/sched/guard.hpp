// One execution attempt under the paper's operational machinery.
//
// simulate_attempt runs a placed job on the virtual cluster in
// checkpoint-sized chunks and layers three behaviours around the raw
// execution:
//
//  * the model-driven overrun guard (paper §IV): after every chunk the
//    elapsed/progress pace is checked against the refined prediction with
//    the configured tolerance (10 %); a violating job is hard-stopped at
//    its last checkpoint and reported for requeue;
//  * spot preemption: on preemptible capacity, each chunk may be
//    interrupted (Poisson arrivals at the SpotOptions rate). The work of
//    the in-flight chunk is lost, the restart costs the configured
//    overhead, and the attempt resumes from the last checkpoint after an
//    exponential backoff — bounded by `max_preemptions`;
//  * checkpoint/restart resume: a chunk boundary is a checkpoint (the lbm
//    layer provides the actual state save/load; this engine models its
//    schedule and cost), so both preemption recovery and overrun requeue
//    resume at a step count that was durably reached.
//
// The function is *pure*: its result depends only on the context (spec,
// placement, guard, seed) — never on wall-clock time, thread identity, or
// shared mutable state. That purity is what lets the executor run many
// attempts concurrently and still produce byte-identical campaign reports
// from the same seed.
#pragma once

#include <cstdint>

#include "cluster/virtual_cluster.hpp"
#include "core/campaign.hpp"
#include "core/dashboard.hpp"
#include "sched/job.hpp"
#include "util/common.hpp"

namespace hemo::sched {

/// Deterministic fault-injection knobs, consumed by simulate_attempt and
/// exercised by the differential validation harness (src/check/). The
/// defaults are all-off and draw nothing extra from the attempt RNG
/// stream, so a run with faults disabled is byte-identical to one built
/// before these hooks existed.
struct FaultInjection {
  /// Multiplies every executed chunk's step time: models a degraded or
  /// mis-sized node. Factors beyond 1 + guard tolerance force the overrun
  /// guard to trip on otherwise healthy placements.
  real_t slowdown_factor = 1.0;

  /// Added to the per-chunk spot interruption probability on top of the
  /// SpotOptions Poisson rate: models an interruption storm. Only spot
  /// placements are affected (on-demand capacity is never preempted).
  real_t extra_preemption_probability = 0.0;

  /// Probability that the checkpoint read back on a preemption resume is
  /// corrupted, forcing the previously completed chunk to be redone as
  /// well (one extra restart overhead is paid for the deeper reload).
  real_t checkpoint_corruption_rate = 0.0;

  /// Per-chunk probability that the worker process dies mid-chunk (any
  /// tenancy, unlike spot preemption). The in-flight chunk is lost and
  /// paid for up to the strike point, the attempt ends at its last
  /// durable checkpoint with AttemptResult::worker_crashed set, and the
  /// engine requeues the job. The draw is gated on the rate so disabled
  /// injection leaves the RNG stream untouched.
  real_t worker_crash_probability = 0.0;

  [[nodiscard]] bool any() const noexcept {
    return slowdown_factor != 1.0 || extra_preemption_probability > 0.0 ||
           checkpoint_corruption_rate > 0.0 || worker_crash_probability > 0.0;
  }
};

/// Everything one attempt needs, fixed at submission time.
struct AttemptContext {
  const cluster::WorkloadPlan* plan = nullptr;
  const cluster::InstanceProfile* profile = nullptr;
  Placement placement;
  core::JobGuard guard;  ///< armed from the refined prediction

  index_t steps = 0;  ///< steps this attempt must complete
  /// Fluid-point multiplier of the job (see CampaignJobSpec); scales the
  /// executed step composition alongside the model's scale_resolution.
  real_t resolution_factor = 1.0;

  index_t n_chunks = 10;  ///< checkpoint/progress-report granularity
  std::uint64_t seed = 0; ///< per-(campaign, job, attempt) stream

  core::SpotOptions spot;       ///< tenancy model (used when placement.spot)
  index_t max_preemptions = 8;  ///< retry bound within the attempt
  units::Seconds backoff_base_s{60.0};  ///< first wait; doubles per retry

  FaultInjection faults;       ///< all-off by default
};

/// Step time of `result` rescaled to `factor` times the plan's fluid
/// points: memory/overhead/transfer terms grow linearly with the point
/// count while halo communication grows with the cut surface (factor^2/3),
/// matching core::scale_resolution's rationale on the prediction side. The
/// run-level noise of the measurement is preserved.
[[nodiscard]] units::Seconds scaled_step_seconds(
    const cluster::ExecutionResult& result, real_t factor);

/// Runs one attempt to completion, guard stop, or retry exhaustion.
[[nodiscard]] AttemptResult simulate_attempt(const AttemptContext& ctx);

}  // namespace hemo::sched
