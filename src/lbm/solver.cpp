#include "lbm/solver.hpp"

#include <cmath>

#include "lbm/point_update.hpp"

#ifdef HEMO_OBS_DETAIL
#include <chrono>

#include "obs/metrics.hpp"
#endif

namespace hemo::lbm {

template <typename T>
Solver<T>::Solver(const FluidMesh& mesh, const SolverParams& params,
                  std::span<const geometry::InletSpec> inlets)
    : mesh_(&mesh), params_(params), n_(mesh.num_points()) {
  HEMO_REQUIRE(params.tau > 0.5, "tau must exceed 0.5 for stability");
  HEMO_REQUIRE(n_ > 0, "empty mesh");
  omega_ = static_cast<T>(1.0 / params.tau);

  f_.assign(static_cast<std::size_t>(n_ * kQ), T{0});
  if (params_.kernel.propagation == Propagation::kAB) {
    f2_.assign(static_cast<std::size_t>(n_ * kQ), T{0});
  }

  // Precompute inlet velocity targets from the Poiseuille profiles.
  bc_velocity_ = inlet_velocities<T>(mesh, inlets);
  bc_pulse_ = inlet_pulse_params<T>(mesh, inlets);
  for (std::size_t d = 0; d < 3; ++d) {
    force_shift_[d] = static_cast<T>(params.tau * params.body_force[d]);
  }
  initialize();
}

template <typename T>
void Solver<T>::initialize() {
  for (index_t p = 0; p < n_; ++p) {
    for (index_t q = 0; q < kQ; ++q) {
      const T feq = equilibrium<T>(q, T{1}, T{0}, T{0}, T{0});
      // Both layouts initialize identically since equilibrium at rest is
      // direction-symmetric only for opposite pairs; write via the active
      // layout to keep indexing consistent.
      const index_t i = params_.kernel.layout == Layout::kAoS
                            ? p * kQ + q
                            : q * n_ + p;
      f_[static_cast<std::size_t>(i)] = feq;
      if (!f2_.empty()) f2_[static_cast<std::size_t>(i)] = feq;
    }
  }
  timestep_ = 0;
}

template <typename T>
void Solver<T>::update_point(index_t p, const T* g, T* out) const {
  std::array<T, 3> bc = bc_velocity_[static_cast<std::size_t>(p)];
  const auto& pulse = bc_pulse_[static_cast<std::size_t>(p)];
  if (pulse[0] != T{0}) {
    const T scale = pulse_scale<T>(pulse[0], pulse[1], timestep_);
    for (auto& component : bc) component *= scale;
  }
  update_point_values<T>(
      mesh_->type(p), g, out, omega_, bc, force_shift_,
      static_cast<T>(params_.smagorinsky_cs * params_.smagorinsky_cs));
}

// Parallelization notes: in the AB pull kernel every point writes only its
// own row of the back buffer; in the AA even kernel every point reads and
// writes only its own row; in the AA odd kernel every array location is
// read and written by exactly one point (the reader is the writer — see
// the derivation in tests/test_solver.cpp and DESIGN.md), so all three
// loops are race-free under OpenMP with per-iteration locals.

template <typename T>
template <Layout L>
void Solver<T>::step_ab() {
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (index_t p = 0; p < n_; ++p) {
    T g[kQ], out[kQ];
    for (index_t q = 0; q < kQ; ++q) {
      const std::int32_t nb = mesh_->neighbor(p, opposite(q));
      g[q] = nb != kSolidLink
                 ? f_[static_cast<std::size_t>(idx<L>(nb, q))]
                 : f_[static_cast<std::size_t>(idx<L>(p, opposite(q)))];
    }
    update_point(p, g, out);
    for (index_t q = 0; q < kQ; ++q) {
      f2_[static_cast<std::size_t>(idx<L>(p, q))] = out[q];
    }
  }
  f_.swap(f2_);
}

template <typename T>
template <Layout L>
void Solver<T>::step_aa_even() {
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (index_t p = 0; p < n_; ++p) {
    T g[kQ], out[kQ];
    for (index_t q = 0; q < kQ; ++q) {
      g[q] = f_[static_cast<std::size_t>(idx<L>(p, q))];
    }
    update_point(p, g, out);
    for (index_t q = 0; q < kQ; ++q) {
      f_[static_cast<std::size_t>(idx<L>(p, opposite(q)))] = out[q];
    }
  }
}

template <typename T>
template <Layout L>
void Solver<T>::step_aa_odd() {
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (index_t p = 0; p < n_; ++p) {
    T g[kQ], out[kQ];
    for (index_t q = 0; q < kQ; ++q) {
      const std::int32_t m = mesh_->neighbor(p, opposite(q));
      g[q] = m != kSolidLink
                 ? f_[static_cast<std::size_t>(idx<L>(m, opposite(q)))]
                 : f_[static_cast<std::size_t>(idx<L>(p, q))];
    }
    update_point(p, g, out);
    for (index_t q = 0; q < kQ; ++q) {
      const std::int32_t nb = mesh_->neighbor(p, q);
      if (nb != kSolidLink) {
        f_[static_cast<std::size_t>(idx<L>(nb, q))] = out[q];
      } else {
        f_[static_cast<std::size_t>(idx<L>(p, opposite(q)))] = out[q];
      }
    }
  }
}

template <typename T>
void Solver<T>::step() {
  const bool aos = params_.kernel.layout == Layout::kAoS;
  // The kernels fuse collide+stream, so the per-phase breakdown is by
  // kernel variant; halo exchange is modeled in the cluster layer, not
  // here. Timing is compile-time gated: the default build keeps step()
  // allocation-free and branchless on the hot path.
#ifdef HEMO_OBS_DETAIL
  const char* phase = params_.kernel.propagation == Propagation::kAB
                          ? "ab_pull"
                          : (timestep_ % 2 == 0 ? "aa_even" : "aa_odd");
  const auto t0 = std::chrono::steady_clock::now();
#endif
  if (params_.kernel.propagation == Propagation::kAB) {
    if (aos) step_ab<Layout::kAoS>();
    else step_ab<Layout::kSoA>();
  } else {
    if (timestep_ % 2 == 0) {
      if (aos) step_aa_even<Layout::kAoS>();
      else step_aa_even<Layout::kSoA>();
    } else {
      if (aos) step_aa_odd<Layout::kAoS>();
      else step_aa_odd<Layout::kSoA>();
    }
  }
#ifdef HEMO_OBS_DETAIL
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::global();
  if (metrics.enabled()) {
    const std::chrono::duration<real_t> dt =
        std::chrono::steady_clock::now() - t0;
    metrics.observe("lbm_step_seconds", dt.count(),
                    {{"phase", phase},
                     {"layout", aos ? "aos" : "soa"},
                     {"precision",
                      params_.kernel.precision == Precision::kSingle
                          ? "f32"
                          : "f64"}});
  }
#endif
  ++timestep_;
}

template <typename T>
void Solver<T>::run(index_t n) {
  HEMO_REQUIRE(n >= 0, "negative step count");
  for (index_t i = 0; i < n; ++i) step();
}

template <typename T>
Moments<real_t> Solver<T>::moments_at(index_t p) const {
  HEMO_REQUIRE(p >= 0 && p < n_, "point index out of range");
  HEMO_REQUIRE(natural_order(),
               "moments require natural distribution order (AA: even step)");
  std::array<T, kQ> g;
  const bool aos = params_.kernel.layout == Layout::kAoS;
  for (index_t q = 0; q < kQ; ++q) {
    const index_t i = aos ? p * kQ + q : q * n_ + p;
    g[static_cast<std::size_t>(q)] = f_[static_cast<std::size_t>(i)];
  }
  const Moments<T> m = moments<T>(std::span<const T, kQ>(g));
  return Moments<real_t>{static_cast<real_t>(m.rho),
                         static_cast<real_t>(m.ux),
                         static_cast<real_t>(m.uy),
                         static_cast<real_t>(m.uz)};
}

template <typename T>
real_t Solver<T>::total_mass() const {
  HEMO_REQUIRE(natural_order(), "total_mass requires natural order");
  real_t mass = 0.0;
  for (T v : f_) mass += static_cast<real_t>(v);
  return mass;
}

template <typename T>
real_t Solver<T>::mean_speed() const {
  real_t acc = 0.0;
  for (index_t p = 0; p < n_; ++p) {
    const auto m = moments_at(p);
    acc += std::sqrt(m.ux * m.ux + m.uy * m.uy + m.uz * m.uz);
  }
  return acc / static_cast<real_t>(n_);
}

template <typename T>
void Solver<T>::restore_state(std::span<const T> state, index_t timestep) {
  HEMO_REQUIRE(state.size() == f_.size(),
               "restore_state: state size mismatch");
  HEMO_REQUIRE(timestep >= 0, "restore_state: negative timestep");
  std::copy(state.begin(), state.end(), f_.begin());
  timestep_ = timestep;
}

template <typename T>
real_t Solver<T>::f_value(index_t p, index_t q) const {
  HEMO_REQUIRE(p >= 0 && p < n_ && q >= 0 && q < kQ,
               "f_value index out of range");
  const index_t i =
      params_.kernel.layout == Layout::kAoS ? p * kQ + q : q * n_ + p;
  return static_cast<real_t>(f_[static_cast<std::size_t>(i)]);
}

template class Solver<float>;
template class Solver<double>;

}  // namespace hemo::lbm
