#include "lbm/solver.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <utility>

#include "lbm/point_update.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

#ifdef HEMO_OBS_DETAIL
#include <chrono>

#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#endif

namespace hemo::lbm {

namespace {

/// Calling thread's (id, team size); (0, 1) outside a parallel region or
/// in a build without OpenMP.
[[nodiscard]] inline std::pair<int, int> omp_ids() noexcept {
#ifdef _OPENMP
  return {omp_get_thread_num(), omp_get_num_threads()};
#else
  return {0, 1};
#endif
}

/// Contiguous range of [0, n) owned by thread tid of nt — the same
/// partition OpenMP's schedule(static) produces, shared by the first-touch
/// initialization and the step kernels so pages stay local to the thread
/// that streams them.
[[nodiscard]] inline std::pair<index_t, index_t> static_chunk(
    index_t n, int tid, int nt) noexcept {
  const index_t threads = static_cast<index_t>(nt);
  const index_t chunk = (n + threads - 1) / threads;
  const index_t lo = std::min(n, chunk * static_cast<index_t>(tid));
  return {lo, std::min(n, lo + chunk)};
}

}  // namespace

template <typename T>
Solver<T>::Solver(const FluidMesh& mesh, const SolverParams& params,
                  std::span<const geometry::InletSpec> inlets)
    : mesh_(&mesh), params_(params), n_(mesh.num_points()) {
  HEMO_REQUIRE(params.tau > 0.5, "tau must exceed 0.5 for stability");
  HEMO_REQUIRE(n_ > 0, "empty mesh");
  omega_ = static_cast<T>(1.0 / params.tau);
  cs2_ = static_cast<T>(params_.smagorinsky_cs * params_.smagorinsky_cs);

  if (params_.kernel.path == KernelPath::kSegmented) {
    seg_ = std::make_unique<SegmentedMesh>(SegmentedMesh::build(mesh));
  }

  f_.resize(static_cast<std::size_t>(n_ * kQ));
  if (params_.kernel.propagation == Propagation::kAB) {
    f2_.resize(static_cast<std::size_t>(n_ * kQ));
  }

  // Precompute inlet velocity targets from the Poiseuille profiles, then
  // permute them into internal point order so the boundary kernels index
  // them directly.
  auto bc_velocity = inlet_velocities<T>(mesh, inlets);
  auto bc_pulse = inlet_pulse_params<T>(mesh, inlets);
  if (seg_) {
    bc_velocity_.resize(bc_velocity.size());
    bc_pulse_.resize(bc_pulse.size());
    for (index_t i = 0; i < n_; ++i) {
      const auto p = static_cast<std::size_t>(seg_->point_at(i));
      bc_velocity_[static_cast<std::size_t>(i)] = bc_velocity[p];
      bc_pulse_[static_cast<std::size_t>(i)] = bc_pulse[p];
    }
  } else {
    bc_velocity_ = std::move(bc_velocity);
    bc_pulse_ = std::move(bc_pulse);
  }
  for (std::size_t d = 0; d < 3; ++d) {
    force_shift_[d] = static_cast<T>(params.tau * params.body_force[d]);
  }
  HEMO_REQUIRE(params_.num_threads >= 0, "negative num_threads");
#ifdef _OPENMP
  threads_ = params_.num_threads > 0
                 ? params_.num_threads
                 : static_cast<index_t>(omp_get_max_threads());
#else
  threads_ = 1;
#endif
  bind_kernels();
  initialize();
}

template <typename T>
void Solver<T>::initialize() {
  const bool aos = params_.kernel.layout == Layout::kAoS;
  // Rest equilibrium is point-independent, so the only thing the loop
  // structure decides is which thread first-touches which pages; mirror
  // the step kernels' partition (bulk region and boundary region each
  // statically chunked on the segmented path, one static loop on the
  // reference path).
  const auto init_position = [&](index_t i) {
    for (index_t q = 0; q < kQ; ++q) {
      const T feq = equilibrium<T>(q, T{1}, T{0}, T{0}, T{0});
      const index_t slot = aos ? i * kQ + q : q * n_ + i;
      f_[static_cast<std::size_t>(slot)] = feq;
      if (!f2_.empty()) f2_[static_cast<std::size_t>(slot)] = feq;
    }
  };
  if (seg_) {
    const index_t bulk = seg_->bulk_count();
    const auto n_blocks = static_cast<index_t>(block_bounds_.size()) - 1;
#ifdef _OPENMP
#pragma omp parallel num_threads(static_cast<int>(threads_))
#endif
    {
      const auto [tid, nt] = omp_ids();
      const auto [b0, b1] = static_chunk(n_blocks, tid, nt);
      for (index_t b = b0; b < b1; ++b) {
        const index_t lo = block_bounds_[static_cast<std::size_t>(b)];
        const index_t hi = block_bounds_[static_cast<std::size_t>(b + 1)];
        for (index_t i = lo; i < hi; ++i) init_position(i);
      }
      const auto [blo, bhi] = static_chunk(n_ - bulk, tid, nt);
      for (index_t i = bulk + blo; i < bulk + bhi; ++i) init_position(i);
    }
  } else {
#ifdef _OPENMP
#pragma omp parallel for schedule(static) \
    num_threads(static_cast<int>(threads_))
#endif
    for (index_t i = 0; i < n_; ++i) init_position(i);
  }
  timestep_ = 0;
}

template <typename T>
void Solver<T>::update_point(index_t p, const T* g, T* out) const {
  std::array<T, 3> bc = bc_velocity_[static_cast<std::size_t>(p)];
  const auto& pulse = bc_pulse_[static_cast<std::size_t>(p)];
  if (pulse[0] != T{0}) {
    const T scale = pulse_scale<T>(pulse[0], pulse[1], timestep_);
    for (auto& component : bc) component *= scale;
  }
  update_point_values<T>(mesh_->type(p), g, out, omega_, bc, force_shift_,
                         cs2_);
}

template <typename T>
void Solver<T>::update_boundary_point(index_t i, const T* g, T* out) const {
  std::array<T, 3> bc = bc_velocity_[static_cast<std::size_t>(i)];
  const auto& pulse = bc_pulse_[static_cast<std::size_t>(i)];
  if (pulse[0] != T{0}) {
    const T scale = pulse_scale<T>(pulse[0], pulse[1], timestep_);
    for (auto& component : bc) component *= scale;
  }
  update_point_values<T>(seg_->type(i), g, out, omega_, bc, force_shift_,
                         cs2_);
}

// Parallelization notes: in the AB pull kernel every point writes only its
// own row of the back buffer; in the AA even kernel every point reads and
// writes only its own row; in the AA odd kernel every array location is
// read and written by exactly one point (the reader is the writer — see
// the derivation in tests/test_solver.cpp and DESIGN.md), so all three
// loops are race-free under OpenMP with per-iteration locals — and, for
// the same reason, splitting a step into a bulk pass plus a boundary pass
// (segmented path) cannot change the result: no point's gather reads a
// location another point writes within the same step.

template <typename T>
template <Layout L>
void Solver<T>::step_ab() {
#ifdef _OPENMP
#pragma omp parallel for schedule(static) \
    num_threads(static_cast<int>(threads_))
#endif
  for (index_t p = 0; p < n_; ++p) {
    T g[kQ], out[kQ];
    for (index_t q = 0; q < kQ; ++q) {
      const std::int32_t nb = mesh_->neighbor(p, opposite(q));
      g[q] = nb != kSolidLink
                 ? f_[static_cast<std::size_t>(idx<L>(nb, q))]
                 : f_[static_cast<std::size_t>(idx<L>(p, opposite(q)))];
    }
    update_point(p, g, out);
    for (index_t q = 0; q < kQ; ++q) {
      f2_[static_cast<std::size_t>(idx<L>(p, q))] = out[q];
    }
  }
  f_.swap(f2_);
}

template <typename T>
template <Layout L>
void Solver<T>::step_aa_even() {
#ifdef _OPENMP
#pragma omp parallel for schedule(static) \
    num_threads(static_cast<int>(threads_))
#endif
  for (index_t p = 0; p < n_; ++p) {
    T g[kQ], out[kQ];
    for (index_t q = 0; q < kQ; ++q) {
      g[q] = f_[static_cast<std::size_t>(idx<L>(p, q))];
    }
    update_point(p, g, out);
    for (index_t q = 0; q < kQ; ++q) {
      f_[static_cast<std::size_t>(idx<L>(p, opposite(q)))] = out[q];
    }
  }
}

template <typename T>
template <Layout L>
void Solver<T>::step_aa_odd() {
#ifdef _OPENMP
#pragma omp parallel for schedule(static) \
    num_threads(static_cast<int>(threads_))
#endif
  for (index_t p = 0; p < n_; ++p) {
    T g[kQ], out[kQ];
    for (index_t q = 0; q < kQ; ++q) {
      const std::int32_t m = mesh_->neighbor(p, opposite(q));
      g[q] = m != kSolidLink
                 ? f_[static_cast<std::size_t>(idx<L>(m, opposite(q)))]
                 : f_[static_cast<std::size_t>(idx<L>(p, q))];
    }
    update_point(p, g, out);
    for (index_t q = 0; q < kQ; ++q) {
      const std::int32_t nb = mesh_->neighbor(p, q);
      if (nb != kSolidLink) {
        f_[static_cast<std::size_t>(idx<L>(nb, q))] = out[q];
      } else {
        f_[static_cast<std::size_t>(idx<L>(p, opposite(q)))] = out[q];
      }
    }
  }
}

// ---- Segmented path ------------------------------------------------------
//
// Bulk loops iterate RLE spans: every neighbor is position + constant
// offset, so the inner loop is a direct-indexed stream with no neighbor
// table, no solid-link test, no boundary-type switch, and (via the WithLes
// template parameter) no LES branch. Boundary loops run the general
// gather over the internal-space neighbor table.

template <typename T>
template <Layout L, bool WithLes>
void Solver<T>::seg_bulk_ab(index_t lo, index_t hi) {
  const auto& spans = seg_->spans();
  auto it = std::upper_bound(
      spans.begin(), spans.end(), lo,
      [](index_t v, const SegmentSpan& s) { return v < s.begin + s.length; });
  const T* const f = f_.data();
  T* const f2 = f2_.data();
  [[maybe_unused]] const simd::TileFn<T> fn =
      nt_stores_ ? tile_fn_nt_ : tile_fn_;
  for (; it != spans.end() && it->begin < hi; ++it) {
    const index_t s0 = std::max(lo, it->begin);
    const index_t s1 = std::min(hi, it->begin + it->length);
    const auto& off = it->offsets;
    if constexpr (L == Layout::kSoA) {
      // Every per-direction stream is contiguous across the span, so the
      // whole span goes to the backend tile kernel in one call (the LES
      // mode is baked into the bound function pointer).
      const T* src[kQ];
      T* dst[kQ];
      for (index_t q = 0; q < kQ; ++q) {
        const index_t from =
            s0 + static_cast<index_t>(
                     off[static_cast<std::size_t>(opposite(q))]);
        src[q] = f + static_cast<std::size_t>(idx<L>(from, q));
        dst[q] = f2 + static_cast<std::size_t>(idx<L>(s0, q));
      }
      fn(src, dst, s1 - s0, omega_, force_shift_, cs2_);
      continue;
    }
#ifdef _OPENMP
#pragma omp simd
#endif
    for (index_t i = s0; i < s1; ++i) {
      T g[kQ], out[kQ];
      for (index_t q = 0; q < kQ; ++q) {
        const index_t src =
            i + static_cast<index_t>(
                    off[static_cast<std::size_t>(opposite(q))]);
        g[q] = f[static_cast<std::size_t>(idx<L>(src, q))];
      }
      update_interior_values<T, WithLes>(g, out, omega_, force_shift_, cs2_);
      for (index_t q = 0; q < kQ; ++q) {
        f2[static_cast<std::size_t>(idx<L>(i, q))] = out[q];
      }
    }
  }
}

template <typename T>
template <Layout L, bool WithLes>
void Solver<T>::seg_bulk_aa_even(index_t lo, index_t hi) {
  // The even AA step touches only the point's own row — no neighbor
  // indexing at all, so spans are irrelevant here.
  T* const f = f_.data();
  if constexpr (L == Layout::kSoA) {
    // In-place safe: each vector group loads all 19 directions before it
    // stores any, and the even step's reader of every location is its
    // writer. Never NT — the data is re-read next step.
    const T* src[kQ];
    T* dst[kQ];
    for (index_t q = 0; q < kQ; ++q) {
      src[q] = f + static_cast<std::size_t>(idx<L>(lo, q));
      dst[q] = f + static_cast<std::size_t>(idx<L>(lo, opposite(q)));
    }
    tile_fn_(src, dst, hi - lo, omega_, force_shift_, cs2_);
    return;
  }
#ifdef _OPENMP
#pragma omp simd
#endif
  for (index_t i = lo; i < hi; ++i) {
    T g[kQ], out[kQ];
    for (index_t q = 0; q < kQ; ++q) {
      g[q] = f[static_cast<std::size_t>(idx<L>(i, q))];
    }
    update_interior_values<T, WithLes>(g, out, omega_, force_shift_, cs2_);
    for (index_t q = 0; q < kQ; ++q) {
      f[static_cast<std::size_t>(idx<L>(i, opposite(q)))] = out[q];
    }
  }
}

template <typename T>
template <Layout L, bool WithLes>
void Solver<T>::seg_bulk_aa_odd(index_t lo, index_t hi) {
  const auto& spans = seg_->spans();
  auto it = std::upper_bound(
      spans.begin(), spans.end(), lo,
      [](index_t v, const SegmentSpan& s) { return v < s.begin + s.length; });
  T* const f = f_.data();
  for (; it != spans.end() && it->begin < hi; ++it) {
    const index_t s0 = std::max(lo, it->begin);
    const index_t s1 = std::min(hi, it->begin + it->length);
    const auto& off = it->offsets;
    if constexpr (L == Layout::kSoA) {
      // In-place safe: group-at-a-time load-all/store-all plus the
      // reader == writer property of the odd step (see the
      // parallelization notes above). Never NT — in-place sweep.
      const T* src[kQ];
      T* dst[kQ];
      for (index_t q = 0; q < kQ; ++q) {
        const index_t opp = opposite(q);
        const index_t from =
            s0 + static_cast<index_t>(off[static_cast<std::size_t>(opp)]);
        const index_t to =
            s0 + static_cast<index_t>(off[static_cast<std::size_t>(q)]);
        src[q] = f + static_cast<std::size_t>(idx<L>(from, opp));
        dst[q] = f + static_cast<std::size_t>(idx<L>(to, q));
      }
      tile_fn_(src, dst, s1 - s0, omega_, force_shift_, cs2_);
      continue;
    }
#ifdef _OPENMP
#pragma omp simd
#endif
    for (index_t i = s0; i < s1; ++i) {
      T g[kQ], out[kQ];
      for (index_t q = 0; q < kQ; ++q) {
        const index_t opp = opposite(q);
        const index_t m =
            i + static_cast<index_t>(off[static_cast<std::size_t>(opp)]);
        g[q] = f[static_cast<std::size_t>(idx<L>(m, opp))];
      }
      update_interior_values<T, WithLes>(g, out, omega_, force_shift_, cs2_);
      for (index_t q = 0; q < kQ; ++q) {
        const index_t nb =
            i + static_cast<index_t>(off[static_cast<std::size_t>(q)]);
        f[static_cast<std::size_t>(idx<L>(nb, q))] = out[q];
      }
    }
  }
}

template <typename T>
template <Layout L>
void Solver<T>::seg_boundary_ab(index_t lo, index_t hi) {
  for (index_t i = lo; i < hi; ++i) {
    T g[kQ], out[kQ];
    for (index_t q = 0; q < kQ; ++q) {
      const std::int32_t nb = seg_->neighbor(i, opposite(q));
      g[q] = nb != kSolidLink
                 ? f_[static_cast<std::size_t>(idx<L>(nb, q))]
                 : f_[static_cast<std::size_t>(idx<L>(i, opposite(q)))];
    }
    update_boundary_point(i, g, out);
    for (index_t q = 0; q < kQ; ++q) {
      f2_[static_cast<std::size_t>(idx<L>(i, q))] = out[q];
    }
  }
}

template <typename T>
template <Layout L>
void Solver<T>::seg_boundary_aa_even(index_t lo, index_t hi) {
  for (index_t i = lo; i < hi; ++i) {
    T g[kQ], out[kQ];
    for (index_t q = 0; q < kQ; ++q) {
      g[q] = f_[static_cast<std::size_t>(idx<L>(i, q))];
    }
    update_boundary_point(i, g, out);
    for (index_t q = 0; q < kQ; ++q) {
      f_[static_cast<std::size_t>(idx<L>(i, opposite(q)))] = out[q];
    }
  }
}

template <typename T>
template <Layout L>
void Solver<T>::seg_boundary_aa_odd(index_t lo, index_t hi) {
  for (index_t i = lo; i < hi; ++i) {
    T g[kQ], out[kQ];
    for (index_t q = 0; q < kQ; ++q) {
      const std::int32_t m = seg_->neighbor(i, opposite(q));
      g[q] = m != kSolidLink
                 ? f_[static_cast<std::size_t>(idx<L>(m, opposite(q)))]
                 : f_[static_cast<std::size_t>(idx<L>(i, q))];
    }
    update_boundary_point(i, g, out);
    for (index_t q = 0; q < kQ; ++q) {
      const std::int32_t nb = seg_->neighbor(i, q);
      if (nb != kSolidLink) {
        f_[static_cast<std::size_t>(idx<L>(nb, q))] = out[q];
      } else {
        f_[static_cast<std::size_t>(idx<L>(i, opposite(q)))] = out[q];
      }
    }
  }
}

// Step drivers: the bulk segment is walked block-by-block (span-aligned
// block_bounds_, contiguous block ranges per thread — the exact partition
// initialize() first-touched), the boundary segment by a static chunk. No
// barrier between the two passes: within a step no point's gather reads a
// location another point writes (see the parallelization notes above).

template <typename T>
template <Layout L, bool WithLes>
void Solver<T>::seg_step_ab() {
  const index_t bulk = seg_->bulk_count();
  const auto n_blocks = static_cast<index_t>(block_bounds_.size()) - 1;
#ifdef _OPENMP
#pragma omp parallel num_threads(static_cast<int>(threads_))
#endif
  {
    const auto [tid, nt] = omp_ids();
    const auto [b0, b1] = static_chunk(n_blocks, tid, nt);
    for (index_t b = b0; b < b1; ++b) {
      seg_bulk_ab<L, WithLes>(block_bounds_[static_cast<std::size_t>(b)],
                              block_bounds_[static_cast<std::size_t>(b + 1)]);
    }
    // Streaming stores are weakly ordered: fence them (per thread) ahead
    // of the implicit barrier that publishes this step's back array.
    if (nt_stores_) simd::store_fence(backend_);
    const auto [blo, bhi] = static_chunk(n_ - bulk, tid, nt);
    seg_boundary_ab<L>(bulk + blo, bulk + bhi);
  }
  f_.swap(f2_);
}

template <typename T>
template <Layout L, bool WithLes>
void Solver<T>::seg_step_aa_even() {
  const index_t bulk = seg_->bulk_count();
  const auto n_blocks = static_cast<index_t>(block_bounds_.size()) - 1;
#ifdef _OPENMP
#pragma omp parallel num_threads(static_cast<int>(threads_))
#endif
  {
    const auto [tid, nt] = omp_ids();
    const auto [b0, b1] = static_chunk(n_blocks, tid, nt);
    for (index_t b = b0; b < b1; ++b) {
      seg_bulk_aa_even<L, WithLes>(
          block_bounds_[static_cast<std::size_t>(b)],
          block_bounds_[static_cast<std::size_t>(b + 1)]);
    }
    const auto [blo, bhi] = static_chunk(n_ - bulk, tid, nt);
    seg_boundary_aa_even<L>(bulk + blo, bulk + bhi);
  }
}

template <typename T>
template <Layout L, bool WithLes>
void Solver<T>::seg_step_aa_odd() {
  const index_t bulk = seg_->bulk_count();
  const auto n_blocks = static_cast<index_t>(block_bounds_.size()) - 1;
#ifdef _OPENMP
#pragma omp parallel num_threads(static_cast<int>(threads_))
#endif
  {
    const auto [tid, nt] = omp_ids();
    const auto [b0, b1] = static_chunk(n_blocks, tid, nt);
    for (index_t b = b0; b < b1; ++b) {
      seg_bulk_aa_odd<L, WithLes>(
          block_bounds_[static_cast<std::size_t>(b)],
          block_bounds_[static_cast<std::size_t>(b + 1)]);
    }
    const auto [blo, bhi] = static_chunk(n_ - bulk, tid, nt);
    seg_boundary_aa_odd<L>(bulk + blo, bulk + bhi);
  }
}

template <typename T>
void Solver<T>::bind_kernels() {
  const bool aos = params_.kernel.layout == Layout::kAoS;
  const bool ab = params_.kernel.propagation == Propagation::kAB;
  if (params_.kernel.path == KernelPath::kReference) {
    if (ab) {
      step_even_fn_ = aos ? &Solver::step_ab<Layout::kAoS>
                          : &Solver::step_ab<Layout::kSoA>;
      step_odd_fn_ = step_even_fn_;
    } else {
      step_even_fn_ = aos ? &Solver::step_aa_even<Layout::kAoS>
                          : &Solver::step_aa_even<Layout::kSoA>;
      step_odd_fn_ = aos ? &Solver::step_aa_odd<Layout::kAoS>
                         : &Solver::step_aa_odd<Layout::kSoA>;
    }
    return;
  }
  const bool les = cs2_ > T{0};
  const auto bind = [&]<Layout L, bool WithLes>() {
    if (ab) {
      step_even_fn_ = &Solver::seg_step_ab<L, WithLes>;
      step_odd_fn_ = step_even_fn_;
    } else {
      step_even_fn_ = &Solver::seg_step_aa_even<L, WithLes>;
      step_odd_fn_ = &Solver::seg_step_aa_odd<L, WithLes>;
    }
  };
  if (aos) {
    if (les) bind.template operator()<Layout::kAoS, true>();
    else bind.template operator()<Layout::kAoS, false>();
  } else {
    if (les) bind.template operator()<Layout::kSoA, true>();
    else bind.template operator()<Layout::kSoA, false>();
  }

  // SIMD backend axis — segmented SoA only: AoS interleaves the 19
  // directions per point, so there are no unit-stride streams for a
  // vector kernel to consume (its effective backend stays kScalar, and
  // that is what backend() reports — benchmarks record what ran).
  if (!aos) {
    backend_ = simd::resolve_backend(params_.kernel.backend);
    tile_fn_ = simd::tile_kernel<T>(backend_, les, false);
    tile_fn_nt_ = simd::tile_kernel<T>(backend_, les, true);
    // Streaming stores pay off only when the two distribution arrays
    // dwarf the cache (otherwise they evict lines the next step would
    // hit); AB only — the AA sweeps re-read what they write in place.
    const bool big = static_cast<std::size_t>(n_) * kQ * sizeof(T) * 2 >
                     (std::size_t{64} << 20);
    bool want_nt = ab && backend_ != Backend::kScalar && big;
    if (const char* env = std::getenv("HEMO_NT_STORES")) {
      want_nt = ab && backend_ != Backend::kScalar && env[0] == '1';
    }
    nt_stores_ = want_nt && tile_fn_nt_ != nullptr;
  }

  // Span-aligned bulk blocks: cut only at RLE span ends so the tile
  // kernels always see whole spans (no masked tails at partition seams),
  // sized so a thread's per-block working set stays cache-resident while
  // still yielding several blocks per thread for an even static split.
  const index_t bulk = seg_->bulk_count();
  const index_t target = std::clamp(bulk / (threads_ * 8), index_t{512},
                                    index_t{4096});
  block_bounds_.clear();
  block_bounds_.push_back(0);
  index_t in_block = 0;
  for (const auto& s : seg_->spans()) {
    in_block += s.length;
    if (in_block >= target) {
      block_bounds_.push_back(s.begin + s.length);
      in_block = 0;
    }
  }
  if (block_bounds_.back() != bulk) block_bounds_.push_back(bulk);
}

template <typename T>
void Solver<T>::step() {
  // The layout/propagation/path dispatch is bound once at construction;
  // a step is one indirect call through the parity-selected kernel.
#ifdef HEMO_OBS_DETAIL
  const bool aos = params_.kernel.layout == Layout::kAoS;
  const char* phase = params_.kernel.propagation == Propagation::kAB
                          ? "ab_pull"
                          : (timestep_ % 2 == 0 ? "aa_even" : "aa_odd");
  const auto t0 = std::chrono::steady_clock::now();
  // `phase` always points at one of the three literals above, so handing
  // it to the profiler's pointer-keeping scope is safe.
  const obs::PhaseScope profile_phase(phase);
#endif
  const bool even = params_.kernel.propagation == Propagation::kAB ||
                    timestep_ % 2 == 0;
  (this->*(even ? step_even_fn_ : step_odd_fn_))();
#ifdef HEMO_OBS_DETAIL
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::global();
  if (metrics.enabled()) {
    const std::chrono::duration<real_t> dt =
        std::chrono::steady_clock::now() - t0;
    metrics.observe("lbm_step_seconds", dt.count(),
                    {{"phase", phase},
                     {"layout", aos ? "aos" : "soa"},
                     {"path", to_string(params_.kernel.path)},
                     {"precision",
                      params_.kernel.precision == Precision::kSingle
                          ? "f32"
                          : "f64"}});
  }
#endif
  ++timestep_;
}

template <typename T>
void Solver<T>::run(index_t n) {
  HEMO_REQUIRE(n >= 0, "negative step count");
  for (index_t i = 0; i < n; ++i) step();
}

template <typename T>
Moments<real_t> Solver<T>::moments_at(index_t p) const {
  HEMO_REQUIRE(p >= 0 && p < n_, "point index out of range");
  HEMO_REQUIRE(natural_order(),
               "moments require natural distribution order (AA: even step)");
  std::array<T, kQ> g;
  const bool aos = params_.kernel.layout == Layout::kAoS;
  const index_t i = internal_pos(p);
  for (index_t q = 0; q < kQ; ++q) {
    const index_t slot = aos ? i * kQ + q : q * n_ + i;
    g[static_cast<std::size_t>(q)] = f_[static_cast<std::size_t>(slot)];
  }
  const Moments<T> m = moments<T>(std::span<const T, kQ>(g));
  return Moments<real_t>{static_cast<real_t>(m.rho),
                         static_cast<real_t>(m.ux),
                         static_cast<real_t>(m.uy),
                         static_cast<real_t>(m.uz)};
}

template <typename T>
real_t Solver<T>::total_mass() const {
  HEMO_REQUIRE(natural_order(), "total_mass requires natural order");
  // Fixed-size blocks summed in parallel, combined serially in block
  // order: the association is a function of the array length only, so the
  // result is bit-stable across thread counts.
  constexpr index_t kBlock = 1 << 14;
  const auto total = static_cast<index_t>(f_.size());
  const index_t n_blocks = (total + kBlock - 1) / kBlock;
  std::vector<real_t> partial(static_cast<std::size_t>(n_blocks), 0.0);
#ifdef _OPENMP
#pragma omp parallel for schedule(static) \
    num_threads(static_cast<int>(threads_))
#endif
  for (index_t b = 0; b < n_blocks; ++b) {
    const index_t lo = b * kBlock;
    const index_t hi = std::min(total, lo + kBlock);
    real_t acc = 0.0;
    for (index_t k = lo; k < hi; ++k) {
      acc += static_cast<real_t>(f_[static_cast<std::size_t>(k)]);
    }
    partial[static_cast<std::size_t>(b)] = acc;
  }
  real_t mass = 0.0;
  for (real_t v : partial) mass += v;
  return mass;
}

template <typename T>
real_t Solver<T>::mean_speed() const {
  HEMO_REQUIRE(natural_order(), "mean_speed requires natural order");
  // Same fixed-block ordered reduction as total_mass, over points.
  constexpr index_t kBlock = 1 << 12;
  const index_t n_blocks = (n_ + kBlock - 1) / kBlock;
  std::vector<real_t> partial(static_cast<std::size_t>(n_blocks), 0.0);
#ifdef _OPENMP
#pragma omp parallel for schedule(static) \
    num_threads(static_cast<int>(threads_))
#endif
  for (index_t b = 0; b < n_blocks; ++b) {
    const index_t lo = b * kBlock;
    const index_t hi = std::min(n_, lo + kBlock);
    real_t acc = 0.0;
    for (index_t p = lo; p < hi; ++p) {
      const auto m = moments_at(p);
      acc += std::sqrt(m.ux * m.ux + m.uy * m.uy + m.uz * m.uz);
    }
    partial[static_cast<std::size_t>(b)] = acc;
  }
  real_t sum = 0.0;
  for (real_t v : partial) sum += v;
  return sum / static_cast<real_t>(n_);
}

template <typename T>
std::vector<T> Solver<T>::export_state() const {
  std::vector<T> state(f_.size());
  if (!seg_) {
    std::copy(f_.begin(), f_.end(), state.begin());
    return state;
  }
  const bool aos = params_.kernel.layout == Layout::kAoS;
  for (index_t p = 0; p < n_; ++p) {
    const index_t i = seg_->position_of(p);
    for (index_t q = 0; q < kQ; ++q) {
      const index_t dst = aos ? p * kQ + q : q * n_ + p;
      const index_t src = aos ? i * kQ + q : q * n_ + i;
      state[static_cast<std::size_t>(dst)] =
          f_[static_cast<std::size_t>(src)];
    }
  }
  return state;
}

template <typename T>
void Solver<T>::restore_state(std::span<const T> state, index_t timestep) {
  HEMO_REQUIRE(state.size() == f_.size(),
               "restore_state: state size mismatch");
  HEMO_REQUIRE(timestep >= 0, "restore_state: negative timestep");
  if (!seg_) {
    std::copy(state.begin(), state.end(), f_.begin());
  } else {
    const bool aos = params_.kernel.layout == Layout::kAoS;
    for (index_t p = 0; p < n_; ++p) {
      const index_t i = seg_->position_of(p);
      for (index_t q = 0; q < kQ; ++q) {
        const index_t src = aos ? p * kQ + q : q * n_ + p;
        const index_t dst = aos ? i * kQ + q : q * n_ + i;
        f_[static_cast<std::size_t>(dst)] =
            state[static_cast<std::size_t>(src)];
      }
    }
  }
  timestep_ = timestep;
}

template <typename T>
real_t Solver<T>::f_value(index_t p, index_t q) const {
  HEMO_REQUIRE(p >= 0 && p < n_ && q >= 0 && q < kQ,
               "f_value index out of range");
  const index_t i = internal_pos(p);
  const index_t slot =
      params_.kernel.layout == Layout::kAoS ? i * kQ + q : q * n_ + i;
  return static_cast<real_t>(f_[static_cast<std::size_t>(slot)]);
}

template class Solver<float>;
template class Solver<double>;

}  // namespace hemo::lbm
