#include "lbm/kernel_config.hpp"

namespace hemo::lbm {

std::string to_string(Layout l) {
  return l == Layout::kAoS ? "AoS" : "SoA";
}

std::string to_string(Propagation p) {
  return p == Propagation::kAB ? "AB" : "AA";
}

std::string to_string(Unroll u) {
  return u == Unroll::kYes ? "unrolled" : "looped";
}

std::string to_string(Precision p) {
  return p == Precision::kSingle ? "single" : "double";
}

std::string to_string(KernelPath p) {
  return p == KernelPath::kReference ? "reference" : "segmented";
}

std::string to_string(Backend b) {
  switch (b) {
    case Backend::kAuto: return "auto";
    case Backend::kScalar: return "scalar";
    case Backend::kSSE2: return "sse2";
    case Backend::kAVX2: return "avx2";
    case Backend::kAVX512: return "avx512";
    case Backend::kNEON: return "neon";
  }
  return "scalar";
}

std::string kernel_name(const KernelConfig& config) {
  std::string name = to_string(config.propagation) + "-" +
                     to_string(config.layout) + "-" +
                     to_string(config.unroll);
  if (config.path == KernelPath::kReference) name += "-ref";
  return name;
}

}  // namespace hemo::lbm
