#include "lbm/mesh_segments.hpp"

#include <algorithm>

namespace hemo::lbm {

namespace {

/// Fast-path membership: interior bulk points have no boundary condition
/// and no bounce-back link, so their update is pure gather + collide.
[[nodiscard]] bool is_bulk_interior(const FluidMesh& mesh, index_t p) {
  return mesh.type(p) == PointType::kBulk && mesh.solid_links(p) == 0;
}

}  // namespace

SegmentedMesh SegmentedMesh::build(const FluidMesh& mesh) {
  SegmentedMesh seg;
  const index_t n = mesh.num_points();
  seg.n_ = n;
  seg.position_of_.assign(static_cast<std::size_t>(n), 0);
  seg.point_at_.reserve(static_cast<std::size_t>(n));

  // Stable partition: bulk-interior points first, boundary points after,
  // each keeping the original relative order. Stability is what makes the
  // original mesh's x-contiguous interior rows stay contiguous, which the
  // RLE pass below turns into long constant-offset spans.
  for (index_t p = 0; p < n; ++p) {
    if (is_bulk_interior(mesh, p)) seg.point_at_.push_back(p);
  }
  seg.bulk_count_ = static_cast<index_t>(seg.point_at_.size());
  for (index_t p = 0; p < n; ++p) {
    if (!is_bulk_interior(mesh, p)) seg.point_at_.push_back(p);
  }
  for (index_t i = 0; i < n; ++i) {
    seg.position_of_[static_cast<std::size_t>(
        seg.point_at_[static_cast<std::size_t>(i)])] = i;
  }

  // Permuted neighbor table and types.
  seg.neighbors_.assign(static_cast<std::size_t>(n * kQ), kSolidLink);
  seg.types_.resize(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    const index_t p = seg.point_at_[static_cast<std::size_t>(i)];
    seg.types_[static_cast<std::size_t>(i)] = mesh.type(p);
    for (index_t q = 0; q < kQ; ++q) {
      const std::int32_t nb = mesh.neighbor(p, q);
      seg.neighbors_[static_cast<std::size_t>(i * kQ + q)] =
          nb == kSolidLink
              ? kSolidLink
              : static_cast<std::int32_t>(
                    seg.position_of_[static_cast<std::size_t>(nb)]);
    }
  }

  // Segment-class census.
  for (index_t p = 0; p < n; ++p) {
    switch (mesh.type(p)) {
      case PointType::kBulk:
        if (mesh.solid_links(p) == 0) ++seg.counts_.bulk_interior;
        else ++seg.counts_.bulk_edge;
        break;
      case PointType::kWall: ++seg.counts_.wall; break;
      case PointType::kInlet: ++seg.counts_.inlet; break;
      case PointType::kOutlet: ++seg.counts_.outlet; break;
      case PointType::kSolid: break;  // never stored in a FluidMesh
    }
  }

  // RLE pass: greedy maximal spans over the bulk-interior segment. A span
  // extends while every direction's neighbor offset matches the span
  // head's. Bulk-interior points have no solid links, so every offset is a
  // real position delta.
  index_t i = 0;
  while (i < seg.bulk_count_) {
    SegmentSpan span;
    span.begin = i;
    for (index_t q = 0; q < kQ; ++q) {
      span.offsets[static_cast<std::size_t>(q)] = static_cast<std::int32_t>(
          static_cast<index_t>(
              seg.neighbors_[static_cast<std::size_t>(i * kQ + q)]) -
          i);
    }
    index_t j = i + 1;
    for (; j < seg.bulk_count_; ++j) {
      bool constant = true;
      for (index_t q = 0; q < kQ; ++q) {
        const auto expected =
            j + static_cast<index_t>(
                    span.offsets[static_cast<std::size_t>(q)]);
        if (static_cast<index_t>(
                seg.neighbors_[static_cast<std::size_t>(j * kQ + q)]) !=
            expected) {
          constant = false;
          break;
        }
      }
      if (!constant) break;
    }
    span.length = j - i;
    seg.spans_.push_back(span);
    i = j;
  }
  return seg;
}

real_t SegmentedMesh::mean_span_length() const noexcept {
  if (spans_.empty()) return 0.0;
  return static_cast<real_t>(bulk_count_) /
         static_cast<real_t>(spans_.size());
}

index_t SegmentedMesh::max_span_length() const noexcept {
  index_t longest = 0;
  for (const SegmentSpan& s : spans_) longest = std::max(longest, s.length);
  return longest;
}

}  // namespace hemo::lbm
