#include "lbm/simd.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "lbm/simd_backends.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace hemo::lbm::simd {

namespace {

/// Widest-first order in which kAuto considers backends.
constexpr Backend kPreferenceOrder[] = {Backend::kAVX512, Backend::kAVX2,
                                        Backend::kSSE2, Backend::kNEON,
                                        Backend::kScalar};

[[nodiscard]] bool compiled(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return true;
    case Backend::kSSE2:
#ifdef HEMO_SIMD_HAVE_SSE2
      return true;
#else
      return false;
#endif
    case Backend::kAVX2:
#ifdef HEMO_SIMD_HAVE_AVX2
      return true;
#else
      return false;
#endif
    case Backend::kAVX512:
#ifdef HEMO_SIMD_HAVE_AVX512
      return true;
#else
      return false;
#endif
    case Backend::kNEON:
#ifdef HEMO_SIMD_HAVE_NEON
      return true;
#else
      return false;
#endif
    case Backend::kAuto:
      return false;
  }
  return false;
}

[[nodiscard]] std::string lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

}  // namespace

std::vector<Backend> compiled_backends() {
  std::vector<Backend> out;
  for (const Backend b : kPreferenceOrder) {
    if (compiled(b)) out.push_back(b);
  }
  return out;
}

bool cpu_supports(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return true;
    case Backend::kSSE2:
    case Backend::kAVX2:
    case Backend::kAVX512:
#if defined(__x86_64__) || defined(__i386__)
      if (b == Backend::kSSE2) return __builtin_cpu_supports("sse2") != 0;
      if (b == Backend::kAVX2) return __builtin_cpu_supports("avx2") != 0;
      return __builtin_cpu_supports("avx512f") != 0;
#else
      return false;
#endif
    case Backend::kNEON:
#if defined(__aarch64__) && defined(__ARM_NEON)
      return true;
#else
      return false;
#endif
    case Backend::kAuto:
      return false;
  }
  return false;
}

std::vector<Backend> detected_backends() {
  std::vector<Backend> out;
  for (const Backend b : kPreferenceOrder) {
    if (compiled(b) && cpu_supports(b)) out.push_back(b);
  }
  return out;
}

std::optional<Backend> parse_backend(std::string_view name) {
  const std::string n = lower(name);
  if (n == "auto") return Backend::kAuto;
  if (n == "scalar") return Backend::kScalar;
  if (n == "sse2") return Backend::kSSE2;
  if (n == "avx2") return Backend::kAVX2;
  if (n == "avx512") return Backend::kAVX512;
  if (n == "neon") return Backend::kNEON;
  return std::nullopt;
}

Backend resolve_backend(Backend requested) {
  Backend want = requested;
  if (want == Backend::kAuto) {
    if (const char* env = std::getenv("HEMO_SIMD")) {
      const auto parsed = parse_backend(env);
      HEMO_REQUIRE(parsed.has_value(),
                   "HEMO_SIMD must be auto|scalar|sse2|avx2|avx512|neon");
      want = *parsed;
    }
  }
  if (want == Backend::kAuto) {
    const auto detected = detected_backends();
    // detected_backends() always contains kScalar.
    return detected.front();
  }
  HEMO_REQUIRE(compiled(want),
               "requested SIMD backend is not compiled into this binary "
               "(see the HEMO_SIMD CMake option)");
  HEMO_REQUIRE(cpu_supports(want),
               "requested SIMD backend is not supported by this CPU");
  return want;
}

template <>
TileFn<float> tile_kernel<float>(Backend b, bool with_les, bool nt_stores) {
  switch (b) {
    case Backend::kScalar:
      return detail::scalar_tile_f32(with_les, nt_stores);
#ifdef HEMO_SIMD_HAVE_SSE2
    case Backend::kSSE2:
      return detail::sse2_tile_f32(with_les, nt_stores);
#endif
#ifdef HEMO_SIMD_HAVE_AVX2
    case Backend::kAVX2:
      return detail::avx2_tile_f32(with_les, nt_stores);
#endif
#ifdef HEMO_SIMD_HAVE_AVX512
    case Backend::kAVX512:
      return detail::avx512_tile_f32(with_les, nt_stores);
#endif
#ifdef HEMO_SIMD_HAVE_NEON
    case Backend::kNEON:
      return detail::neon_tile_f32(with_les, nt_stores);
#endif
    default:
      return nullptr;
  }
}

template <>
TileFn<double> tile_kernel<double>(Backend b, bool with_les,
                                   bool nt_stores) {
  switch (b) {
    case Backend::kScalar:
      return detail::scalar_tile_f64(with_les, nt_stores);
#ifdef HEMO_SIMD_HAVE_SSE2
    case Backend::kSSE2:
      return detail::sse2_tile_f64(with_les, nt_stores);
#endif
#ifdef HEMO_SIMD_HAVE_AVX2
    case Backend::kAVX2:
      return detail::avx2_tile_f64(with_les, nt_stores);
#endif
#ifdef HEMO_SIMD_HAVE_AVX512
    case Backend::kAVX512:
      return detail::avx512_tile_f64(with_les, nt_stores);
#endif
#ifdef HEMO_SIMD_HAVE_NEON
    case Backend::kNEON:
      return detail::neon_tile_f64(with_les, nt_stores);
#endif
    default:
      return nullptr;
  }
}

void store_fence(Backend b) noexcept {
#if defined(__x86_64__) || defined(__i386__)
  // Streaming stores bypass the normal store ordering; fence them ahead
  // of whatever flag or barrier publishes the data to other threads.
  if (b == Backend::kSSE2 || b == Backend::kAVX2 || b == Backend::kAVX512) {
    _mm_sfence();
  }
#else
  (void)b;
#endif
}

index_t lanes(Backend b, index_t bytes) noexcept {
  const index_t width = [&]() -> index_t {
    switch (b) {
      case Backend::kSSE2:
      case Backend::kNEON:
        return 16;
      case Backend::kAVX2:
        return 32;
      case Backend::kAVX512:
        return 64;
      case Backend::kScalar:
      case Backend::kAuto:
        return 0;
    }
    return 0;
  }();
  return width == 0 ? 1 : width / bytes;
}

}  // namespace hemo::lbm::simd
