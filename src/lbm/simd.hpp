// Runtime-selected multi-backend SIMD dispatch for the segmented SoA bulk
// kernels.
//
// The portability layer has three parts:
//  * compile-time backend inventory — each explicit-intrinsic variant of
//    the bulk tile kernel lives in its own translation unit compiled with
//    exactly the ISA flags it needs (src/lbm/simd_*.cpp, wired up in
//    src/lbm/CMakeLists.txt under the HEMO_SIMD cache variable), so the
//    rest of the tree stays at the portable baseline architecture;
//  * CPUID runtime detection — detected_backends() intersects the
//    compiled-in set with what the running CPU reports, so a binary built
//    with AVX-512 kernels still runs (on the widest supported backend) on
//    a host without them;
//  * resolution — resolve_backend() turns a KernelConfig request into the
//    backend Solver<T>::bind_kernels() actually binds: an explicit request
//    must be compiled in and CPU-supported (hard error otherwise, never a
//    silent fallback), kAuto honours the HEMO_SIMD environment variable
//    and otherwise picks the widest detected backend.
//
// Bit-identity contract: every backend performs the identical per-point
// IEEE-754 operation sequence of lbm/point_update.hpp — vector lanes are
// independent, no reassociation, no FMA contraction (all kernel TUs are
// compiled with the same -ffp-contract=off flag) — so switching backends
// or thread counts never changes a single bit of solver state. Enforced
// exhaustively by tests/test_simd_backends.cpp.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "lbm/kernel_config.hpp"
#include "lbm/lattice.hpp"
#include "util/common.hpp"

namespace hemo::lbm::simd {

/// Signature of a bulk tile kernel: per-direction source/destination
/// stream pointers (contiguous over w consecutive bulk-interior points —
/// the RLE span property), BGK omega, the forcing velocity shift, and the
/// squared Smagorinsky constant (used only by the LES instantiations).
template <typename T>
using TileFn = void (*)(const T* const* src, T* const* dst, index_t w,
                        T omega, const std::array<T, 3>& force_shift, T cs2);

/// Backends compiled into this binary, widest first. Always contains
/// Backend::kScalar.
[[nodiscard]] std::vector<Backend> compiled_backends();

/// True when the running CPU can execute backend `b` (CPUID on x86;
/// compile-time fact on AArch64). kScalar is always supported.
[[nodiscard]] bool cpu_supports(Backend b);

/// Compiled-in backends the running CPU supports, widest first.
[[nodiscard]] std::vector<Backend> detected_backends();

/// Parses a backend name ("auto", "scalar", "sse2", "avx2", "avx512",
/// "neon", case-insensitive); nullopt for anything else.
[[nodiscard]] std::optional<Backend> parse_backend(std::string_view name);

/// Resolves a KernelConfig backend request to the backend to bind.
/// Precedence: an explicit (non-kAuto) request wins and must be compiled
/// in and CPU-supported (hard error otherwise — tests and benchmarks that
/// pin a backend must never be silently redirected); kAuto defers to the
/// HEMO_SIMD environment variable when set (same validation), and
/// otherwise selects the widest detected backend.
[[nodiscard]] Backend resolve_backend(Backend requested);

/// Tile kernel for (backend, LES mode, non-temporal stores). Returns
/// nullptr when the backend is not compiled into this binary. `nt_stores`
/// selects a variant that uses streaming stores for full-width aligned
/// destination vectors (AB back-array only — callers must issue
/// store_fence() before any cross-thread hand-off of the written data).
template <typename T>
[[nodiscard]] TileFn<T> tile_kernel(Backend b, bool with_les, bool nt_stores);

/// Orders non-temporal stores issued by the calling thread ahead of its
/// later normal stores (x86 sfence). Required between an NT-store kernel
/// and the barrier/flag that publishes the data to other threads; no-op
/// for backends without streaming stores.
void store_fence(Backend b) noexcept;

/// Vector lanes backend `b` processes per operation for a value of
/// `bytes` (4 or 8). 1 for kScalar (the portable tile autovectorizes at
/// whatever width the baseline ISA offers, but its contract is lane-1).
[[nodiscard]] index_t lanes(Backend b, index_t bytes) noexcept;

}  // namespace hemo::lbm::simd
