// Kernel taxonomy of the paper's two codes.
//
// lbm-proxy-app exposes AA/AB propagation patterns, AoS/SoA data layouts and
// (for SoA) unrolled or plain inner loops; HARVEY uses the fused AB kernel
// with AoS. Each combination has distinct memory traffic (Eq. 9) and
// per-point loop overhead, which drive both the virtual-cluster "measured"
// time and the performance-model predictions.
#pragma once

#include <string>

#include "util/common.hpp"

namespace hemo::lbm {

/// Memory layout of the distribution array.
enum class Layout {
  kAoS,  ///< f[point][direction] — contiguous per point (CPU-friendly)
  kSoA,  ///< f[direction][point] — contiguous per direction (GPU-friendly)
};

/// Propagation (streaming) pattern.
enum class Propagation {
  kAB,  ///< two arrays: read A, write B, swap each step
  kAA,  ///< one array: direction-swapped writes, even/odd step pair
};

/// Inner-loop code generation of the kernel.
enum class Unroll {
  kNo,   ///< runtime loop over the 19 directions
  kYes,  ///< fully unrolled at compile time
};

/// Floating-point precision of the distribution array.
enum class Precision {
  kSingle,  ///< 4-byte float
  kDouble,  ///< 8-byte double
};

/// Hot-path implementation of the serial solver.
enum class KernelPath {
  kReference,  ///< one fused loop, per-point neighbor gather + type branch
  kSegmented,  ///< segment-reordered mesh, branch-free RLE bulk kernel
};

/// SIMD backend of the segmented SoA bulk kernels (lbm/simd.hpp). Every
/// backend executes the identical per-point IEEE operation sequence, so
/// all of them produce bit-identical state (asserted by
/// tests/test_simd_backends.cpp); the choice only moves throughput.
enum class Backend {
  kAuto,    ///< resolve at bind time: HEMO_SIMD env, else best detected
  kScalar,  ///< portable autovectorized tile (always compiled)
  kSSE2,    ///< 128-bit x86 vectors (baseline on x86-64)
  kAVX2,    ///< 256-bit x86 vectors, masked tails
  kAVX512,  ///< 512-bit x86 vectors, native masked tails
  kNEON,    ///< 128-bit AArch64 vectors
};

/// Full kernel configuration.
struct KernelConfig {
  Layout layout = Layout::kAoS;
  Propagation propagation = Propagation::kAB;
  Unroll unroll = Unroll::kYes;
  Precision precision = Precision::kDouble;
  /// Both paths produce bit-identical distribution state (asserted by
  /// tests/test_kernel_paths.cpp); kSegmented is the production default,
  /// kReference is retained as the differential oracle and model anchor.
  KernelPath path = KernelPath::kSegmented;
  /// SIMD backend request; only the segmented SoA bulk kernels dispatch on
  /// it (AoS and the reference path always run the portable code). An
  /// explicit value must name a compiled-in, CPU-supported backend.
  Backend backend = Backend::kAuto;

  friend bool operator==(const KernelConfig&, const KernelConfig&) = default;
};

/// Bytes per distribution value for a precision (d_size in Eq. 9).
[[nodiscard]] constexpr index_t data_size(Precision p) noexcept {
  return p == Precision::kSingle ? 4 : 8;
}

[[nodiscard]] std::string to_string(Layout l);
[[nodiscard]] std::string to_string(Propagation p);
[[nodiscard]] std::string to_string(Unroll u);
[[nodiscard]] std::string to_string(Precision p);
[[nodiscard]] std::string to_string(KernelPath p);
[[nodiscard]] std::string to_string(Backend b);

/// Short display name, e.g. "AA-SoA-unrolled". The default (segmented)
/// path is unsuffixed so model tables and golden files keep their names;
/// the reference path reads "AB-AoS-unrolled-ref".
[[nodiscard]] std::string kernel_name(const KernelConfig& config);

}  // namespace hemo::lbm
