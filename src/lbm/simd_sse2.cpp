// SSE2 backend (128-bit x86 vectors, part of the x86-64 baseline — this
// TU needs no extra ISA flags, only the shared -ffp-contract=off).
#include "lbm/simd_backends.hpp"
#include "lbm/simd_tile.hpp"

#ifdef HEMO_SIMD_HAVE_SSE2

namespace hemo::lbm::simd::detail {

TileFn<float> sse2_tile_f32(bool with_les, bool nt_stores) {
  if (with_les) {
    return nt_stores ? &tile_run<Sse2VecF, true, true>
                     : &tile_run<Sse2VecF, true, false>;
  }
  return nt_stores ? &tile_run<Sse2VecF, false, true>
                   : &tile_run<Sse2VecF, false, false>;
}

TileFn<double> sse2_tile_f64(bool with_les, bool nt_stores) {
  if (with_les) {
    return nt_stores ? &tile_run<Sse2VecD, true, true>
                     : &tile_run<Sse2VecD, true, false>;
  }
  return nt_stores ? &tile_run<Sse2VecD, false, true>
                   : &tile_run<Sse2VecD, false, false>;
}

}  // namespace hemo::lbm::simd::detail

#endif  // HEMO_SIMD_HAVE_SSE2
