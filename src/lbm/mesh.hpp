// Sparse fluid mesh: the solver's view of a voxel geometry.
//
// Like HARVEY, HemoCloud stores only fluid points, in a flat list with a
// 19-wide neighbor-index table. Entry -1 marks a solid link (bounce-back).
// Wall points therefore carry both their classification and their solid-link
// count, which the Eq. 9 access accounting uses: wall updates touch fewer
// distribution vectors than bulk updates.
#pragma once

#include <cstdint>
#include <vector>

#include "geometry/generators.hpp"
#include "geometry/voxel_grid.hpp"
#include "lbm/lattice.hpp"
#include "util/common.hpp"

namespace hemo::lbm {

using geometry::PointType;
using geometry::Voxel;

/// Neighbor index meaning "solid; bounce back".
inline constexpr std::int32_t kSolidLink = -1;

/// Options for mesh construction.
struct MeshOptions {
  /// Wrap neighbor lookups around the named axes (periodic boundaries).
  /// Used by force-driven flows (e.g. the body-force Poiseuille
  /// validation) where the domain has no inlet/outlet.
  bool periodic_x = false;
  bool periodic_y = false;
  bool periodic_z = false;
};

/// Immutable sparse mesh over the fluid voxels of a geometry.
class FluidMesh {
 public:
  /// Builds the mesh from a classified grid. Point order is the grid's
  /// deterministic linear order.
  static FluidMesh build(const geometry::VoxelGrid& grid,
                         const MeshOptions& options = {});

  [[nodiscard]] index_t num_points() const noexcept {
    return static_cast<index_t>(types_.size());
  }

  [[nodiscard]] PointType type(index_t p) const noexcept {
    return types_[static_cast<std::size_t>(p)];
  }

  [[nodiscard]] const Voxel& voxel(index_t p) const noexcept {
    return coords_[static_cast<std::size_t>(p)];
  }

  /// Fluid index of point p's neighbor in direction q, or kSolidLink.
  [[nodiscard]] std::int32_t neighbor(index_t p, index_t q) const noexcept {
    return neighbors_[static_cast<std::size_t>(p * kQ + q)];
  }

  /// Number of solid links (bounce-back directions) of point p.
  [[nodiscard]] index_t solid_links(index_t p) const noexcept {
    return solid_links_[static_cast<std::size_t>(p)];
  }

  /// Counts of points per type.
  [[nodiscard]] geometry::TypeCounts type_counts() const;

  /// Total solid links over all points (used by access accounting).
  [[nodiscard]] index_t total_solid_links() const;

 private:
  std::vector<Voxel> coords_;
  std::vector<PointType> types_;
  std::vector<std::int32_t> neighbors_;  // num_points * kQ
  std::vector<std::int16_t> solid_links_;
};

}  // namespace hemo::lbm
