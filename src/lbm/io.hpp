// Solver I/O: VTK field export and binary checkpoint/restart.
//
// Production circulatory codes stream flow fields to visualization and
// survive node failures through checkpoints; both features are part of
// making the HARVEY-equivalent adoptable rather than a benchmark stub.
#pragma once

#include <iosfwd>
#include <string>

#include "lbm/solver.hpp"
#include "util/common.hpp"

namespace hemo::lbm {

/// Writes the current macroscopic fields (density scalar, velocity vector,
/// point-type scalar) of every fluid point as legacy-VTK polydata.
/// Requires the solver to be in natural order (AA: even step).
template <typename T>
void write_vtk(const Solver<T>& solver, std::ostream& os,
               const std::string& title = "hemocloud flow field");

/// Convenience: writes to a file path. Throws NumericError on I/O failure.
template <typename T>
void write_vtk_file(const Solver<T>& solver, const std::string& path,
                    const std::string& title = "hemocloud flow field");

/// Binary checkpoint of the full solver state (distributions + timestep).
/// The kernel configuration and point count are stored and verified on
/// restore, and restoring reproduces the run bit-for-bit.
template <typename T>
void save_checkpoint(const Solver<T>& solver, std::ostream& os);

template <typename T>
void load_checkpoint(Solver<T>& solver, std::istream& is);

/// File-path convenience wrappers.
template <typename T>
void save_checkpoint_file(const Solver<T>& solver, const std::string& path);

template <typename T>
void load_checkpoint_file(Solver<T>& solver, const std::string& path);

}  // namespace hemo::lbm
