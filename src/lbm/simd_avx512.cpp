// AVX-512 backend (512-bit x86 vectors, native masked tails — short RLE
// spans still run fully vectorized). This TU is compiled with -mavx512f
// (no FMA contraction) — see src/lbm/CMakeLists.txt.
#include "lbm/simd_backends.hpp"
#include "lbm/simd_tile.hpp"

#ifdef HEMO_SIMD_HAVE_AVX512

namespace hemo::lbm::simd::detail {

TileFn<float> avx512_tile_f32(bool with_les, bool nt_stores) {
  if (with_les) {
    return nt_stores ? &tile_run<Avx512VecF, true, true>
                     : &tile_run<Avx512VecF, true, false>;
  }
  return nt_stores ? &tile_run<Avx512VecF, false, true>
                   : &tile_run<Avx512VecF, false, false>;
}

TileFn<double> avx512_tile_f64(bool with_les, bool nt_stores) {
  if (with_les) {
    return nt_stores ? &tile_run<Avx512VecD, true, true>
                     : &tile_run<Avx512VecD, true, false>;
  }
  return nt_stores ? &tile_run<Avx512VecD, false, true>
                   : &tile_run<Avx512VecD, false, false>;
}

}  // namespace hemo::lbm::simd::detail

#endif  // HEMO_SIMD_HAVE_AVX512
