// Memory-access accounting for LBM kernels (paper Eq. 9).
//
// The performance model estimates the time to update all fluid points on a
// task as (bytes accessed) / (sustained memory bandwidth). This module is
// the single source of truth for "bytes accessed": it encodes, per kernel
// configuration and per point type, how many distribution vectors are read
// and written and how much neighbor-index traffic each update incurs.
//
// Counting rules (matching the solver implementation in solver.hpp):
//  * AB (two arrays, pull scheme): every update gathers 19 distribution
//    values and writes 19. Writes go to the second array whose lines are not
//    resident, so they incur write-allocate traffic (counted as an extra
//    read of the written bytes). The 18 neighbor indices are loaded every
//    step. A wall point with s solid links gathers s of its values from its
//    own (already resident) storage: s gather loads and s index loads are
//    saved — this is why geometries rich in wall points (cerebral) run
//    faster, as the paper observes in Fig. 3.
//  * AA (single array): the even step is purely local (19 reads + 19 writes
//    in place, no index traffic, no write-allocate); the odd step gathers
//    from and scatters to neighbors (lines touched by both a read and a
//    write each step, so no write-allocate either) and loads indices.
//    Per-step averages are half the even + odd totals.
//  * Inlet/outlet points additionally re-write all 19 values with the
//    boundary equilibrium (counted as one extra read + write sweep).
//  * SoA vs AoS does not change byte counts; it changes achievable
//    bandwidth, which the cluster module models via KernelTraits.
#pragma once

#include <span>

#include "lbm/kernel_config.hpp"
#include "lbm/mesh.hpp"
#include "util/common.hpp"

namespace hemo::lbm {

/// Byte traffic of one point update (averaged over an even/odd pair for AA).
struct PointTraffic {
  real_t data_bytes = 0.0;   ///< distribution reads + writes (+ write-allocate)
  real_t index_bytes = 0.0;  ///< neighbor-table loads

  [[nodiscard]] real_t total() const noexcept {
    return data_bytes + index_bytes;
  }
};

/// Traffic to update one point of the given type with `solid_links`
/// bounce-back directions under `config`.
[[nodiscard]] PointTraffic point_traffic(const KernelConfig& config,
                                         PointType type, index_t solid_links);

/// Total bytes per timestep to update the whole mesh serially
/// (n_bytes_serial in Eq. 10).
[[nodiscard]] real_t serial_bytes_per_step(const FluidMesh& mesh,
                                           const KernelConfig& config);

/// Total bytes per timestep for an arbitrary set of points, described by
/// (type, solid_links) of each point. Used by the per-task direct counts.
[[nodiscard]] real_t bytes_for_points(const FluidMesh& mesh,
                                      std::span<const index_t> points,
                                      const KernelConfig& config);

/// Hardware-behaviour traits of a kernel variant. These belong to the
/// *virtual cluster* side of the reproduction (they describe how real CPUs
/// execute each variant); the performance models never see them, which is
/// what produces the paper's consistent overprediction in Figs. 7-8.
struct KernelTraits {
  /// Per-point instruction overhead (cycles) not hidden behind memory
  /// stalls: loop control, address arithmetic, scattered-store latency.
  real_t overhead_cycles_per_point = 0.0;
  /// Fraction of STREAM bandwidth the access pattern can sustain.
  real_t bandwidth_efficiency = 1.0;
};

/// Traits table for all kernel variants (values documented in DESIGN.md).
[[nodiscard]] KernelTraits kernel_traits(const KernelConfig& config);

/// Floating-point operations of one point update (independent of layout
/// and propagation). Derived from the solver's arithmetic: the moment
/// sums, the per-direction equilibrium evaluation, and the BGK relaxation
/// (boundary points skip the relaxation). Feeds the roofline analysis of
/// the paper's Discussion.
[[nodiscard]] real_t point_flops(PointType type);

/// Total flops per timestep over the mesh.
[[nodiscard]] real_t serial_flops_per_step(const FluidMesh& mesh);

}  // namespace hemo::lbm
