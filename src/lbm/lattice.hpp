// D3Q19 lattice constants and local (per-point) LBM operations.
//
// The solver uses the single-relaxation-time BGK collision operator with the
// standard second-order Maxwell-Boltzmann equilibrium, as HARVEY does
// (paper Section II-C).
#pragma once

#include <array>
#include <span>

#include "geometry/stencil.hpp"
#include "util/common.hpp"

namespace hemo::lbm {

using geometry::kD3Q19;
using geometry::kQ;
using geometry::opposite;

/// D3Q19 quadrature weights: 1/3 rest, 1/18 axis, 1/36 diagonal.
inline constexpr std::array<real_t, kQ> kWeights = {
    1.0 / 3.0,
    1.0 / 18.0, 1.0 / 18.0, 1.0 / 18.0, 1.0 / 18.0, 1.0 / 18.0, 1.0 / 18.0,
    1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0,
    1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0};

/// Lattice speed of sound squared (c_s^2 = 1/3 in lattice units).
inline constexpr real_t kCs2 = 1.0 / 3.0;

/// Macroscopic moments of a distribution.
template <typename T>
struct Moments {
  T rho = T{0};
  T ux = T{0};
  T uy = T{0};
  T uz = T{0};
};

/// Computes density and velocity from the 19 distribution values.
template <typename T>
[[nodiscard]] Moments<T> moments(std::span<const T, kQ> f) noexcept {
  Moments<T> m;
  for (index_t i = 0; i < kQ; ++i) {
    const T fi = f[static_cast<std::size_t>(i)];
    const auto& c = kD3Q19[static_cast<std::size_t>(i)];
    m.rho += fi;
    m.ux += fi * static_cast<T>(c.dx);
    m.uy += fi * static_cast<T>(c.dy);
    m.uz += fi * static_cast<T>(c.dz);
  }
  const T inv_rho = T{1} / m.rho;
  m.ux *= inv_rho;
  m.uy *= inv_rho;
  m.uz *= inv_rho;
  return m;
}

/// Maxwell-Boltzmann equilibrium for direction i at (rho, u).
template <typename T>
[[nodiscard]] T equilibrium(index_t i, T rho, T ux, T uy, T uz) noexcept {
  const auto& c = kD3Q19[static_cast<std::size_t>(i)];
  const T cu = static_cast<T>(c.dx) * ux + static_cast<T>(c.dy) * uy +
               static_cast<T>(c.dz) * uz;
  const T u2 = ux * ux + uy * uy + uz * uz;
  return static_cast<T>(kWeights[static_cast<std::size_t>(i)]) * rho *
         (T{1} + T{3} * cu + T{4.5} * cu * cu - T{1.5} * u2);
}

/// BGK relaxation: f_i + omega * (feq_i - f_i), omega = 1 / tau.
template <typename T>
[[nodiscard]] T bgk_collide(T f, T feq, T omega) noexcept {
  return f + omega * (feq - f);
}

/// Kinematic viscosity implied by relaxation time tau (lattice units).
[[nodiscard]] constexpr real_t viscosity_from_tau(real_t tau) noexcept {
  return kCs2 * (tau - 0.5);
}

}  // namespace hemo::lbm
