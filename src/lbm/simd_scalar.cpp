// Scalar (portable) backend: the autovectorized interleaved tile that was
// previously embedded in solver.cpp, unchanged arithmetic — this is the
// baseline every SIMD backend must match bit-for-bit. The LES variant
// runs the generic kernel at lane 1, which is the per-point scalar loop
// the reference path executes.
#include <algorithm>

#include "lbm/simd_backends.hpp"
#include "lbm/simd_tile.hpp"

namespace hemo::lbm::simd {

namespace {

/// Tile width of the interleaved scalar micro-kernel: long enough to
/// amortize the per-tile moment temporaries across SIMD lanes the
/// autovectorizer finds, small enough that the working set (19 direction
/// rows + moments) stays in L1.
constexpr index_t kTileWidth = 32;

/// Interleaved SoA bulk update over w <= kTileWidth consecutive points.
/// The arithmetic is the exact per-point sequence of
/// update_interior_values (moments accumulated in direction order, the
/// same velocity-shift expressions, equilibria in direction order), only
/// interleaved across the tile's points — every individual point sees
/// identical IEEE operations, so the result is bit-identical to the
/// per-point loop while the inner i-loops vectorize.
///
/// Arrivals are buffered in gt before any store: for the in-place AA
/// steps every location is read and written by the same point, so
/// draining all tile reads first cannot observe another point's write.
template <typename T>
void interleaved_tile(const T* const* src, T* const* dst, index_t w,
                      T omega, const std::array<T, 3>& force_shift) {
  T gt[kQ][kTileWidth];
  T rho[kTileWidth], jx[kTileWidth], jy[kTileWidth], jz[kTileWidth];
  for (index_t i = 0; i < w; ++i) {
    rho[i] = T{0};
    jx[i] = T{0};
    jy[i] = T{0};
    jz[i] = T{0};
  }
  for (index_t q = 0; q < kQ; ++q) {
    const T* s = src[q];
    T* g = gt[q];
    const auto& c = kD3Q19[static_cast<std::size_t>(q)];
    const T cx = static_cast<T>(c.dx), cy = static_cast<T>(c.dy),
            cz = static_cast<T>(c.dz);
    for (index_t i = 0; i < w; ++i) {
      const T fq = s[i];
      g[i] = fq;
      rho[i] += fq;
      jx[i] += fq * cx;
      jy[i] += fq * cy;
      jz[i] += fq * cz;
    }
  }
  T fx[kTileWidth], fy[kTileWidth], fz[kTileWidth];
  for (index_t i = 0; i < w; ++i) {
    const T inv_rho = T{1} / rho[i];
    const T ux = jx[i] * inv_rho, uy = jy[i] * inv_rho,
            uz = jz[i] * inv_rho;
    fx[i] = ux + force_shift[0] * inv_rho;
    fy[i] = uy + force_shift[1] * inv_rho;
    fz[i] = uz + force_shift[2] * inv_rho;
  }
  for (index_t q = 0; q < kQ; ++q) {
    const T* g = gt[q];
    T* d = dst[q];
    for (index_t i = 0; i < w; ++i) {
      const T feq = equilibrium<T>(q, rho[i], fx[i], fy[i], fz[i]);
      d[i] = bgk_collide(g[i], feq, omega);
    }
  }
}

/// TileFn adapter: walks an arbitrary-length span chunk in kTileWidth
/// pieces. cs2 is unused (the LES entry is the generic lane-1 kernel).
template <typename T>
void scalar_tile(const T* const* src, T* const* dst, index_t w, T omega,
                 const std::array<T, 3>& force_shift, T cs2) {
  (void)cs2;
  const T* s[kQ];
  T* d[kQ];
  for (index_t t0 = 0; t0 < w; t0 += kTileWidth) {
    const index_t tw = std::min(kTileWidth, w - t0);
    for (index_t q = 0; q < kQ; ++q) {
      const auto sq = static_cast<std::size_t>(q);
      s[sq] = src[sq] + t0;
      d[sq] = dst[sq] + t0;
    }
    interleaved_tile<T>(s, d, tw, omega, force_shift);
  }
}

}  // namespace

namespace detail {

TileFn<float> scalar_tile_f32(bool with_les, bool nt_stores) {
  (void)nt_stores;  // no streaming stores without intrinsics
  return with_les ? &tile_run<ScalarVec<float>, true, false>
                  : &scalar_tile<float>;
}

TileFn<double> scalar_tile_f64(bool with_les, bool nt_stores) {
  (void)nt_stores;
  return with_les ? &tile_run<ScalarVec<double>, true, false>
                  : &scalar_tile<double>;
}

}  // namespace detail

}  // namespace hemo::lbm::simd
