#include "lbm/access_counts.hpp"

namespace hemo::lbm {

namespace {

constexpr real_t kIndexBytes = 4.0;  // int32 neighbor indices

}  // namespace

PointTraffic point_traffic(const KernelConfig& config, PointType type,
                           index_t solid_links) {
  HEMO_REQUIRE(solid_links >= 0 && solid_links < kQ,
               "solid link count out of range");
  const real_t d = static_cast<real_t>(data_size(config.precision));
  const real_t q = static_cast<real_t>(kQ);
  const real_t s = static_cast<real_t>(solid_links);

  PointTraffic t;
  if (config.propagation == Propagation::kAB) {
    // Gather (19 - s remote + s local already-resident), write 19 with
    // write-allocate, load 18 - s neighbor indices.
    const real_t reads = (q - s) * d;
    const real_t writes = 2.0 * q * d;  // write + write-allocate fill
    t.data_bytes = reads + writes;
    t.index_bytes = (q - 1.0 - s) * kIndexBytes;
  } else {
    // Even step: 19 reads + 19 in-place writes, no index traffic.
    const real_t even = 2.0 * q * d;
    // Odd step: gather (19 - s remote) + 19 scatter writes; indices loaded.
    const real_t odd = (q - s) * d + q * d;
    t.data_bytes = (even + odd) / 2.0;
    t.index_bytes = (q - 1.0 - s) * kIndexBytes / 2.0;
  }

  if (type == PointType::kInlet || type == PointType::kOutlet) {
    // Boundary overwrite: re-read moments inputs and write all 19 values.
    t.data_bytes += 2.0 * q * d;
  }
  return t;
}

real_t serial_bytes_per_step(const FluidMesh& mesh,
                             const KernelConfig& config) {
  real_t total = 0.0;
  for (index_t p = 0; p < mesh.num_points(); ++p) {
    total += point_traffic(config, mesh.type(p), mesh.solid_links(p)).total();
  }
  return total;
}

real_t bytes_for_points(const FluidMesh& mesh,
                        std::span<const index_t> points,
                        const KernelConfig& config) {
  real_t total = 0.0;
  for (index_t p : points) {
    total += point_traffic(config, mesh.type(p), mesh.solid_links(p)).total();
  }
  return total;
}

real_t point_flops(PointType type) {
  // Moment accumulation: 19 directions x (1 density add + 3 fused
  // multiply-adds for momentum, counted as 2 flops each) + the division
  // and 3 scalings = 19 * 7 + 4.
  constexpr real_t kMoments = 19.0 * 7.0 + 4.0;
  // Equilibrium: u^2 once (5 flops), then per direction c.u (5), the
  // polynomial (7) and the weight scaling (1) = 19 * 13 + 5.
  constexpr real_t kEquilibrium = 19.0 * 13.0 + 5.0;
  // BGK relaxation: 19 x (subtract, scale, add).
  constexpr real_t kRelax = 19.0 * 3.0;
  if (type == PointType::kInlet || type == PointType::kOutlet) {
    return kMoments + kEquilibrium;  // boundary writes skip the relaxation
  }
  return kMoments + kEquilibrium + kRelax;
}

real_t serial_flops_per_step(const FluidMesh& mesh) {
  real_t total = 0.0;
  for (index_t p = 0; p < mesh.num_points(); ++p) {
    total += point_flops(mesh.type(p));
  }
  return total;
}

KernelTraits kernel_traits(const KernelConfig& config) {
  KernelTraits t;
  // Per-point overheads (cycles). Unrolled kernels keep loop control out of
  // the critical path; plain loops pay per-direction branch and address
  // arithmetic. The AA odd kernel's direction-swapped scatter is the most
  // control-heavy, so un-unrolled AA loses most of its memory-traffic
  // advantage — reproducing the paper's observation that AA beats AB only
  // for the unrolled kernels (Fig. 4/8 discussion).
  if (config.unroll == Unroll::kYes) {
    t.overhead_cycles_per_point = 8.0;
  } else {
    t.overhead_cycles_per_point =
        config.propagation == Propagation::kAA ? 430.0 : 45.0;
  }

  // Achievable fraction of STREAM bandwidth. On CPUs the AoS layout streams
  // each point's 19 values from adjacent lines; sparse SoA gathers touch 19
  // far-apart streams per point, which hurts the two-array AB pattern most.
  if (config.layout == Layout::kAoS) {
    t.bandwidth_efficiency = 1.0;
  } else {
    t.bandwidth_efficiency =
        config.propagation == Propagation::kAB ? 0.80 : 0.97;
  }
  return t;
}

}  // namespace hemo::lbm
