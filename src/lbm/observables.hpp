// Hemodynamic observables computed from the solver state.
//
// Clinical hemodynamics studies report flow rates, pressure drops, and
// wall shear stress (WSS) — the quantity linked to plaque formation and
// aneurysm risk in the works HARVEY supports. In LBM all of these are
// local: pressure is c_s^2 * rho, and the deviatoric (viscous) stress
// follows from the non-equilibrium part of the distributions,
//
//   sigma_ab = -(1 - 1/(2 tau)) * sum_i f_i^neq c_ia c_ib .
#pragma once

#include <array>

#include "lbm/solver.hpp"
#include "util/common.hpp"

namespace hemo::lbm {

/// Symmetric deviatoric stress tensor, packed {xx, yy, zz, xy, xz, yz}.
using StressTensor = std::array<real_t, 6>;

/// Viscous stress at point p from the non-equilibrium distributions.
/// Requires natural order (AA: even step).
template <typename T>
[[nodiscard]] StressTensor deviatoric_stress(const Solver<T>& solver,
                                             index_t p);

/// Shear-stress magnitude in a plane through the axis direction: for an
/// axial flow along z this is sqrt(sigma_xz^2 + sigma_yz^2) — the wall
/// shear stress when evaluated at a wall point.
[[nodiscard]] real_t axial_shear_magnitude(const StressTensor& sigma);

/// Volumetric flow rate through the lattice plane `plane` normal to
/// `axis` (0 = x, 1 = y, 2 = z): sum over fluid points in the plane of
/// rho * u_axis. Requires natural order.
template <typename T>
[[nodiscard]] real_t flow_rate(const Solver<T>& solver, int axis,
                               index_t plane);

/// Mean gauge pressure over the fluid points of a plane:
/// c_s^2 * (mean rho - 1). Requires natural order.
template <typename T>
[[nodiscard]] real_t mean_gauge_pressure(const Solver<T>& solver, int axis,
                                         index_t plane);

extern template StressTensor deviatoric_stress<float>(const Solver<float>&,
                                                      index_t);
extern template StressTensor deviatoric_stress<double>(
    const Solver<double>&, index_t);
extern template real_t flow_rate<float>(const Solver<float>&, int, index_t);
extern template real_t flow_rate<double>(const Solver<double>&, int,
                                         index_t);
extern template real_t mean_gauge_pressure<float>(const Solver<float>&, int,
                                                  index_t);
extern template real_t mean_gauge_pressure<double>(const Solver<double>&,
                                                   int, index_t);

}  // namespace hemo::lbm
