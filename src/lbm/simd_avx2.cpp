// AVX2 backend (256-bit x86 vectors, masked tails). This TU is compiled
// with -mavx2 (no -mfma: FMA contraction would change rounding versus the
// scalar baseline) — see src/lbm/CMakeLists.txt.
#include "lbm/simd_backends.hpp"
#include "lbm/simd_tile.hpp"

#ifdef HEMO_SIMD_HAVE_AVX2

namespace hemo::lbm::simd::detail {

TileFn<float> avx2_tile_f32(bool with_les, bool nt_stores) {
  if (with_les) {
    return nt_stores ? &tile_run<Avx2VecF, true, true>
                     : &tile_run<Avx2VecF, true, false>;
  }
  return nt_stores ? &tile_run<Avx2VecF, false, true>
                   : &tile_run<Avx2VecF, false, false>;
}

TileFn<double> avx2_tile_f64(bool with_les, bool nt_stores) {
  if (with_les) {
    return nt_stores ? &tile_run<Avx2VecD, true, true>
                     : &tile_run<Avx2VecD, true, false>;
  }
  return nt_stores ? &tile_run<Avx2VecD, false, true>
                   : &tile_run<Avx2VecD, false, false>;
}

}  // namespace hemo::lbm::simd::detail

#endif  // HEMO_SIMD_HAVE_AVX2
