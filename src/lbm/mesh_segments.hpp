// Segment-reordered view of a FluidMesh for branch-free streaming kernels.
//
// Sparse-geometry LBM pays two hot-path taxes the hardware does not
// require: a 19-wide neighbor-table gather per point, and a per-point
// type/pulse/LES branch. Following the HemeLB/Wittmann line of work, this
// layer removes both for the dominant point class:
//
//  * Classification — points split into the *bulk-interior* segment
//    (PointType::kBulk with zero solid links: every one of the 19
//    neighbors is fluid, so no bounce-back and no boundary condition) and
//    the *boundary* segment (wall/inlet/outlet points plus any point with
//    a solid link).
//  * Stable permutation — bulk-interior points first, boundary points
//    after, each preserving the original relative order. Solvers keep
//    their distribution arrays in this order; public point indices stay
//    the original mesh order and are translated via position_of() /
//    point_at(), so IO, observables, and the decomposition layer are
//    unchanged.
//  * Run-length encoding — maximal spans of consecutive bulk-interior
//    positions whose 19 neighbor offsets (neighbor position minus own
//    position) are constant. Inside a span the kernel streams with direct
//    indexing (position + compile-time-hoisted offset) instead of
//    per-link neighbor() gathers, which is what lets the inner loop
//    vectorize.
//
// The segmentation is purely a reordering: kernels that process every
// point with unchanged per-point arithmetic produce bit-identical state
// (tests/test_kernel_paths.cpp asserts this against the reference path).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "lbm/mesh.hpp"
#include "util/common.hpp"

namespace hemo::lbm {

/// A run of consecutive internal positions with constant neighbor offsets:
/// for every position i in [begin, begin + length) and direction q, the
/// neighbor of i in direction q sits at position i + offsets[q].
struct SegmentSpan {
  index_t begin = 0;
  index_t length = 0;
  std::array<std::int32_t, kQ> offsets{};
};

/// Point counts per segment class (bench/diagnostic output).
struct SegmentCounts {
  index_t bulk_interior = 0;  ///< kBulk, zero solid links (fast path)
  index_t bulk_edge = 0;      ///< kBulk with solid links (boundary path)
  index_t wall = 0;
  index_t inlet = 0;
  index_t outlet = 0;
};

/// Immutable segment-reordered companion of a FluidMesh.
class SegmentedMesh {
 public:
  /// Classifies, permutes, and run-length-encodes `mesh`. The mesh must
  /// outlive the result.
  static SegmentedMesh build(const FluidMesh& mesh);

  [[nodiscard]] index_t num_points() const noexcept { return n_; }

  /// Positions [0, bulk_count()) are the bulk-interior segment; positions
  /// [bulk_count(), num_points()) are the boundary segment.
  [[nodiscard]] index_t bulk_count() const noexcept { return bulk_count_; }

  /// Internal position of original mesh point p.
  [[nodiscard]] index_t position_of(index_t p) const noexcept {
    return position_of_[static_cast<std::size_t>(p)];
  }

  /// Original mesh point stored at internal position i.
  [[nodiscard]] index_t point_at(index_t i) const noexcept {
    return point_at_[static_cast<std::size_t>(i)];
  }

  /// Internal-space neighbor position of position i in direction q, or
  /// kSolidLink.
  [[nodiscard]] std::int32_t neighbor(index_t i, index_t q) const noexcept {
    return neighbors_[static_cast<std::size_t>(i * kQ + q)];
  }

  /// Point type at internal position i.
  [[nodiscard]] PointType type(index_t i) const noexcept {
    return types_[static_cast<std::size_t>(i)];
  }

  /// RLE spans covering exactly [0, bulk_count()), ordered by begin.
  [[nodiscard]] const std::vector<SegmentSpan>& spans() const noexcept {
    return spans_;
  }

  [[nodiscard]] const SegmentCounts& counts() const noexcept {
    return counts_;
  }

  /// Mean span length (0 when there is no bulk segment).
  [[nodiscard]] real_t mean_span_length() const noexcept;

  /// Longest span length (0 when there is no bulk segment).
  [[nodiscard]] index_t max_span_length() const noexcept;

 private:
  index_t n_ = 0;
  index_t bulk_count_ = 0;
  std::vector<index_t> position_of_;
  std::vector<index_t> point_at_;
  std::vector<std::int32_t> neighbors_;  // n_ * kQ, internal positions
  std::vector<PointType> types_;         // by internal position
  std::vector<SegmentSpan> spans_;
  SegmentCounts counts_;
};

}  // namespace hemo::lbm
