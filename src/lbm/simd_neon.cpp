// NEON backend (128-bit AArch64 vectors). NEON is part of the AArch64
// baseline, so this TU needs no extra ISA flags; it compiles empty on
// other architectures.
#include "lbm/simd_backends.hpp"
#include "lbm/simd_tile.hpp"

#ifdef HEMO_SIMD_HAVE_NEON

namespace hemo::lbm::simd::detail {

TileFn<float> neon_tile_f32(bool with_les, bool nt_stores) {
  (void)nt_stores;  // no streaming stores on NEON
  return with_les ? &tile_run<NeonVecF, true, false>
                  : &tile_run<NeonVecF, false, false>;
}

TileFn<double> neon_tile_f64(bool with_les, bool nt_stores) {
  (void)nt_stores;
  return with_les ? &tile_run<NeonVecD, true, false>
                  : &tile_run<NeonVecD, false, false>;
}

}  // namespace hemo::lbm::simd::detail

#endif  // HEMO_SIMD_HAVE_NEON
