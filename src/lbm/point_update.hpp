// Shared per-point update and boundary-profile helpers.
//
// Both the serial Solver and the distributed HARVEY solver perform exactly
// this arithmetic, in this order, so their results agree bit-for-bit — the
// property the distributed integration tests assert.
#pragma once

#include <array>
#include <cmath>
#include <span>
#include <vector>

#include "geometry/generators.hpp"
#include "lbm/lattice.hpp"
#include "lbm/mesh.hpp"
#include "util/common.hpp"

namespace hemo::lbm {

/// Branch-free interior update: the exact relax-toward-equilibrium
/// arithmetic (body force + optional Smagorinsky LES) applied to every
/// non-inlet/outlet point. The LES branch is resolved at compile time so
/// the segmented bulk kernels instantiate a version with no runtime
/// branch at all. This is the single definition of the bulk arithmetic —
/// the reference path, the segmented path, and the distributed HARVEY
/// solver all inline it, which is what keeps them bit-identical.
template <typename T, bool WithLes>
inline void update_interior_values(const T* g, T* out, T omega,
                                   const std::array<T, 3>& force_shift,
                                   T smagorinsky_cs2) {
  T rho = T{0}, jx = T{0}, jy = T{0}, jz = T{0};
  for (index_t q = 0; q < kQ; ++q) {
    const T fq = g[q];
    const auto& c = kD3Q19[static_cast<std::size_t>(q)];
    rho += fq;
    jx += fq * static_cast<T>(c.dx);
    jy += fq * static_cast<T>(c.dy);
    jz += fq * static_cast<T>(c.dz);
  }
  const T inv_rho = T{1} / rho;
  const T ux = jx * inv_rho, uy = jy * inv_rho, uz = jz * inv_rho;

  // Body force via the velocity-shift (Shan-Chen) forcing: the
  // equilibrium is evaluated at u + tau F / rho, which adds F per unit
  // volume per step to the momentum while conserving mass exactly.
  const T fx = ux + force_shift[0] * inv_rho;
  const T fy = uy + force_shift[1] * inv_rho;
  const T fz = uz + force_shift[2] * inv_rho;

  // Smagorinsky LES (enabled when Cs^2 > 0): augment the relaxation time
  // with an eddy viscosity proportional to the local strain magnitude,
  // estimated from the non-equilibrium momentum flux:
  //   tau_eff = (tau + sqrt(tau^2 + 18 sqrt(2) Cs^2 |Pi| / rho)) / 2 .
  // Stabilizes high-Reynolds flows; reduces exactly to BGK at Cs = 0.
  T omega_eff = omega;
  if constexpr (WithLes) {
    T pxx = T{0}, pyy = T{0}, pzz = T{0}, pxy = T{0}, pxz = T{0},
      pyz = T{0};
    for (index_t q = 0; q < kQ; ++q) {
      const T fneq = g[q] - equilibrium<T>(q, rho, fx, fy, fz);
      const auto& c = kD3Q19[static_cast<std::size_t>(q)];
      const T cx = static_cast<T>(c.dx), cy = static_cast<T>(c.dy),
              cz = static_cast<T>(c.dz);
      pxx += fneq * cx * cx;
      pyy += fneq * cy * cy;
      pzz += fneq * cz * cz;
      pxy += fneq * cx * cy;
      pxz += fneq * cx * cz;
      pyz += fneq * cy * cz;
    }
    const T pi_mag = std::sqrt(
        pxx * pxx + pyy * pyy + pzz * pzz +
        T{2} * (pxy * pxy + pxz * pxz + pyz * pyz));
    const T tau = T{1} / omega;
    const T tau_eff =
        (tau + std::sqrt(tau * tau + T{18} * static_cast<T>(1.41421356237) *
                                         smagorinsky_cs2 * pi_mag *
                                         inv_rho)) /
        T{2};
    omega_eff = T{1} / tau_eff;
  }

  for (index_t q = 0; q < kQ; ++q) {
    const T feq = equilibrium<T>(q, rho, fx, fy, fz);
    out[q] = bgk_collide(g[q], feq, omega_eff);
  }
}

/// Computes the post-collision (or boundary) values for a point from its
/// gathered arrivals g[0..18]; writes out[0..18].
///  * kInlet: wet-node equilibrium at the reference density (rho = 1) and
///    the imposed boundary velocity. Using the *arriving* density instead
///    would self-cancel: with a solid wall behind the inlet, the local
///    density relaxes to exactly the value that makes the emitted
///    distributions match a quiescent fluid, and no flow develops.
///  * kOutlet: equilibrium at rho = 1 (zero gauge pressure) and the
///    arriving velocity.
///  * otherwise: BGK relaxation toward local equilibrium
///    (update_interior_values).
template <typename T>
inline void update_point_values(
    PointType type, const T* g, T* out, T omega,
    const std::array<T, 3>& bc_velocity,
    const std::array<T, 3>& force_shift = {T{0}, T{0}, T{0}},
    T smagorinsky_cs2 = T{0}) {
  if (type == PointType::kInlet) {
    for (index_t q = 0; q < kQ; ++q) {
      out[q] = equilibrium<T>(q, T{1}, bc_velocity[0], bc_velocity[1],
                              bc_velocity[2]);
    }
    return;
  }
  if (type == PointType::kOutlet) {
    T rho = T{0}, jx = T{0}, jy = T{0}, jz = T{0};
    for (index_t q = 0; q < kQ; ++q) {
      const T fq = g[q];
      const auto& c = kD3Q19[static_cast<std::size_t>(q)];
      rho += fq;
      jx += fq * static_cast<T>(c.dx);
      jy += fq * static_cast<T>(c.dy);
      jz += fq * static_cast<T>(c.dz);
    }
    const T inv_rho = T{1} / rho;
    const T ux = jx * inv_rho, uy = jy * inv_rho, uz = jz * inv_rho;
    for (index_t q = 0; q < kQ; ++q) {
      out[q] = equilibrium<T>(q, T{1}, ux, uy, uz);
    }
    return;
  }
  if (smagorinsky_cs2 > T{0}) {
    update_interior_values<T, true>(g, out, omega, force_shift,
                                    smagorinsky_cs2);
  } else {
    update_interior_values<T, false>(g, out, omega, force_shift,
                                     smagorinsky_cs2);
  }
}

/// Pulsatile inlet modulation factor: 1 + A sin(2 pi t / T). Shared by the
/// serial and distributed solvers so their arithmetic stays identical.
template <typename T>
[[nodiscard]] inline T pulse_scale(T amplitude, T period,
                                   index_t timestep) noexcept {
  if (amplitude == T{0} || period <= T{0}) return T{1};
  constexpr T kTwoPi = static_cast<T>(6.283185307179586476925286766559);
  return T{1} + amplitude *
                    std::sin(kTwoPi * static_cast<T>(timestep) / period);
}

/// Per-point pulsatile parameters {amplitude, period} from the inlets
/// (zero for non-inlet points and steady inlets).
template <typename T>
[[nodiscard]] std::vector<std::array<T, 2>> inlet_pulse_params(
    const FluidMesh& mesh, std::span<const geometry::InletSpec> inlets) {
  std::vector<std::array<T, 2>> params(
      static_cast<std::size_t>(mesh.num_points()), {T{0}, T{0}});
  for (index_t p = 0; p < mesh.num_points(); ++p) {
    if (mesh.type(p) != PointType::kInlet) continue;
    const Voxel& v = mesh.voxel(p);
    for (const auto& inlet : inlets) {
      if (inlet.pulse_amplitude == 0.0) continue;
      const real_t dx = static_cast<real_t>(v.x) - inlet.center.x;
      const real_t dy = static_cast<real_t>(v.y) - inlet.center.y;
      const real_t dz = static_cast<real_t>(v.z) - inlet.center.z;
      const real_t d2 = inlet.axis == 0   ? dy * dy + dz * dz
                        : inlet.axis == 1 ? dx * dx + dz * dz
                                          : dx * dx + dy * dy;
      const real_t r = inlet.radius;
      if (d2 > (r + 0.5) * (r + 0.5)) continue;
      params[static_cast<std::size_t>(p)] = {
          static_cast<T>(inlet.pulse_amplitude),
          static_cast<T>(inlet.pulse_period)};
      break;
    }
  }
  return params;
}

/// Per-point imposed inlet velocities from the Poiseuille profiles: zero
/// for non-inlet points; for inlet points the parabolic profile of the
/// matching InletSpec.
template <typename T>
[[nodiscard]] std::vector<std::array<T, 3>> inlet_velocities(
    const FluidMesh& mesh, std::span<const geometry::InletSpec> inlets) {
  std::vector<std::array<T, 3>> bc(
      static_cast<std::size_t>(mesh.num_points()), {T{0}, T{0}, T{0}});
  for (index_t p = 0; p < mesh.num_points(); ++p) {
    if (mesh.type(p) != PointType::kInlet) continue;
    const Voxel& v = mesh.voxel(p);
    for (const auto& inlet : inlets) {
      const real_t dx = static_cast<real_t>(v.x) - inlet.center.x;
      const real_t dy = static_cast<real_t>(v.y) - inlet.center.y;
      const real_t dz = static_cast<real_t>(v.z) - inlet.center.z;
      const real_t d2 = inlet.axis == 0   ? dy * dy + dz * dz
                        : inlet.axis == 1 ? dx * dx + dz * dz
                                          : dx * dx + dy * dy;
      const real_t r = inlet.radius;
      if (d2 > (r + 0.5) * (r + 0.5)) continue;
      const real_t profile = std::max(0.0, 1.0 - d2 / (r * r));
      const real_t u = inlet.peak_velocity * profile *
                       static_cast<real_t>(inlet.direction);
      auto& out = bc[static_cast<std::size_t>(p)];
      out[static_cast<std::size_t>(inlet.axis)] = static_cast<T>(u);
      break;
    }
  }
  return bc;
}

}  // namespace hemo::lbm
