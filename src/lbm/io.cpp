#include "lbm/io.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <ostream>
#include <vector>

namespace hemo::lbm {

namespace {

/// Checkpoint file magic + version.
constexpr char kMagic[8] = {'H', 'E', 'M', 'O', 'C', 'K', 'P', '1'};

struct CheckpointHeader {
  char magic[8];
  std::int64_t num_points = 0;
  std::int64_t timestep = 0;
  std::int32_t layout = 0;
  std::int32_t propagation = 0;
  std::int32_t precision = 0;
  std::int32_t value_size = 0;
};

template <typename T>
CheckpointHeader make_header(const Solver<T>& solver) {
  CheckpointHeader h;
  std::memcpy(h.magic, kMagic, sizeof(kMagic));
  h.num_points = solver.mesh().num_points();
  h.timestep = solver.timestep();
  h.layout = static_cast<std::int32_t>(solver.params().kernel.layout);
  h.propagation =
      static_cast<std::int32_t>(solver.params().kernel.propagation);
  h.precision = static_cast<std::int32_t>(solver.params().kernel.precision);
  h.value_size = static_cast<std::int32_t>(sizeof(T));
  return h;
}

}  // namespace

template <typename T>
void write_vtk(const Solver<T>& solver, std::ostream& os,
               const std::string& title) {
  HEMO_REQUIRE(solver.natural_order(),
               "write_vtk requires natural order (AA: even step)");
  const FluidMesh& mesh = solver.mesh();
  const index_t n = mesh.num_points();

  os << "# vtk DataFile Version 3.0\n"
     << title << "\n"
     << "ASCII\n"
     << "DATASET POLYDATA\n"
     << "POINTS " << n << " float\n";
  for (index_t p = 0; p < n; ++p) {
    const Voxel& v = mesh.voxel(p);
    os << v.x << ' ' << v.y << ' ' << v.z << '\n';
  }

  os << "POINT_DATA " << n << "\n"
     << "SCALARS density float 1\nLOOKUP_TABLE default\n";
  std::vector<Moments<real_t>> cached(static_cast<std::size_t>(n));
  for (index_t p = 0; p < n; ++p) {
    cached[static_cast<std::size_t>(p)] = solver.moments_at(p);
    os << static_cast<float>(cached[static_cast<std::size_t>(p)].rho)
       << '\n';
  }
  os << "SCALARS point_type int 1\nLOOKUP_TABLE default\n";
  for (index_t p = 0; p < n; ++p) {
    os << static_cast<int>(mesh.type(p)) << '\n';
  }
  os << "VECTORS velocity float\n";
  for (index_t p = 0; p < n; ++p) {
    const auto& m = cached[static_cast<std::size_t>(p)];
    os << static_cast<float>(m.ux) << ' ' << static_cast<float>(m.uy) << ' '
       << static_cast<float>(m.uz) << '\n';
  }
}

template <typename T>
void write_vtk_file(const Solver<T>& solver, const std::string& path,
                    const std::string& title) {
  std::ofstream os(path);
  if (!os) throw NumericError("write_vtk_file: cannot open " + path);
  write_vtk(solver, os, title);
  if (!os) throw NumericError("write_vtk_file: write failed for " + path);
}

template <typename T>
void save_checkpoint(const Solver<T>& solver, std::ostream& os) {
  const CheckpointHeader h = make_header(solver);
  os.write(reinterpret_cast<const char*>(&h), sizeof(h));
  const auto state = solver.export_state();
  os.write(reinterpret_cast<const char*>(state.data()),
           static_cast<std::streamsize>(state.size() * sizeof(T)));
  if (!os) throw NumericError("save_checkpoint: stream write failed");
}

template <typename T>
void load_checkpoint(Solver<T>& solver, std::istream& is) {
  CheckpointHeader h;
  is.read(reinterpret_cast<char*>(&h), sizeof(h));
  if (!is || std::memcmp(h.magic, kMagic, sizeof(kMagic)) != 0) {
    throw NumericError("load_checkpoint: bad magic or truncated header");
  }
  const CheckpointHeader expected = make_header(solver);
  HEMO_REQUIRE(h.num_points == expected.num_points,
               "checkpoint point count mismatch");
  HEMO_REQUIRE(h.layout == expected.layout &&
                   h.propagation == expected.propagation &&
                   h.precision == expected.precision &&
                   h.value_size == expected.value_size,
               "checkpoint kernel configuration mismatch");
  std::vector<T> state(static_cast<std::size_t>(h.num_points) *
                       static_cast<std::size_t>(kQ));
  is.read(reinterpret_cast<char*>(state.data()),
          static_cast<std::streamsize>(state.size() * sizeof(T)));
  if (!is) throw NumericError("load_checkpoint: truncated state");
  solver.restore_state(state, static_cast<index_t>(h.timestep));
}

template <typename T>
void save_checkpoint_file(const Solver<T>& solver, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw NumericError("save_checkpoint_file: cannot open " + path);
  save_checkpoint(solver, os);
}

template <typename T>
void load_checkpoint_file(Solver<T>& solver, const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw NumericError("load_checkpoint_file: cannot open " + path);
  load_checkpoint(solver, is);
}

// Explicit instantiations for the supported precisions.
template void write_vtk<float>(const Solver<float>&, std::ostream&,
                               const std::string&);
template void write_vtk<double>(const Solver<double>&, std::ostream&,
                                const std::string&);
template void write_vtk_file<float>(const Solver<float>&,
                                    const std::string&, const std::string&);
template void write_vtk_file<double>(const Solver<double>&,
                                     const std::string&, const std::string&);
template void save_checkpoint<float>(const Solver<float>&, std::ostream&);
template void save_checkpoint<double>(const Solver<double>&, std::ostream&);
template void load_checkpoint<float>(Solver<float>&, std::istream&);
template void load_checkpoint<double>(Solver<double>&, std::istream&);
template void save_checkpoint_file<float>(const Solver<float>&,
                                          const std::string&);
template void save_checkpoint_file<double>(const Solver<double>&,
                                           const std::string&);
template void load_checkpoint_file<float>(Solver<float>&,
                                          const std::string&);
template void load_checkpoint_file<double>(Solver<double>&,
                                           const std::string&);

}  // namespace hemo::lbm
