// Generic SIMD bulk tile kernel + per-ISA vector traits.
//
// One templated kernel (tile_run) implements the segmented SoA bulk update
// over any vector trait class V; each backend translation unit
// (simd_scalar.cpp, simd_sse2.cpp, simd_avx2.cpp, simd_avx512.cpp,
// simd_neon.cpp) instantiates it with its own traits under the ISA flags
// that TU is compiled with. The trait operations map 1:1 onto single
// IEEE-754 vector instructions, and the kernel performs, lane by lane,
// the exact operation sequence of update_interior_values
// (lbm/point_update.hpp): moments accumulated in direction order, the
// same velocity-shift expressions, equilibria and BGK relaxation in
// direction order, the same left-associated expression trees. Vector
// lanes are independent and nothing is reassociated or contracted (all
// kernel TUs build with -ffp-contract=off), so every backend produces
// bit-identical state for every point.
//
// Tail policy: the last (w mod kLanes) points of a span are processed as
// one partial group via load_n/store_n — masked loads/stores where the
// ISA has them (AVX2, AVX-512), a zero-padded register image otherwise.
// Inactive lanes compute on zeros (a benign 1/0 = inf that is never
// stored) and are never read from or written to memory, so there is no
// out-of-bounds access for ASan to object to and no numeric leakage
// between spans.
//
// In-place safety (AA steps): each group loads all 19 directions before
// storing any. Within a group the reader of every loaded location is the
// point that will write it (the AA reader==writer property, see
// solver.cpp), and across groups the property guarantees no group reads
// a location another group writes, so group-at-a-time processing is safe
// for the in-place even and odd sweeps.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>

#include "lbm/kernel_config.hpp"
#include "lbm/lattice.hpp"
#include "util/common.hpp"

#if defined(__SSE2__)
#include <immintrin.h>
#endif
#if defined(__aarch64__) && defined(__ARM_NEON)
#include <arm_neon.h>
#endif

namespace hemo::lbm::simd {

/// D3Q19 direction components and weights in storage precision.
template <typename T>
struct LatticeConsts {
  std::array<T, kQ> cx{}, cy{}, cz{}, w{};
};

template <typename T>
[[nodiscard]] constexpr LatticeConsts<T> lattice_consts() {
  LatticeConsts<T> k;
  for (std::size_t q = 0; q < static_cast<std::size_t>(kQ); ++q) {
    k.cx[q] = static_cast<T>(kD3Q19[q].dx);
    k.cy[q] = static_cast<T>(kD3Q19[q].dy);
    k.cz[q] = static_cast<T>(kD3Q19[q].dz);
    k.w[q] = static_cast<T>(kWeights[q]);
  }
  return k;
}

/// Lane-1 trait: plain scalar arithmetic. Used by the scalar backend's
/// LES kernel and as the semantic reference for every vector trait.
template <typename T>
struct ScalarVec {
  using value_type = T;
  using reg = T;
  static constexpr index_t kLanes = 1;
  static reg load(const T* p) noexcept { return *p; }
  static reg load_n(const T* p, index_t) noexcept { return *p; }
  static void store(T* p, reg v) noexcept { *p = v; }
  static void store_n(T* p, reg v, index_t) noexcept { *p = v; }
  static void stream(T* p, reg v) noexcept { *p = v; }
  static bool aligned(const T*) noexcept { return false; }
  static reg set1(T v) noexcept { return v; }
  static reg zero() noexcept { return T{0}; }
  static reg add(reg a, reg b) noexcept { return a + b; }
  static reg sub(reg a, reg b) noexcept { return a - b; }
  static reg mul(reg a, reg b) noexcept { return a * b; }
  static reg div(reg a, reg b) noexcept { return a / b; }
  static reg sqrt(reg a) noexcept { return std::sqrt(a); }
};

namespace detail_align {
template <typename T>
[[nodiscard]] inline bool is_aligned(const T* p, std::size_t bytes) noexcept {
  return reinterpret_cast<std::uintptr_t>(p) % bytes == 0;
}
}  // namespace detail_align

#if defined(__SSE2__)

/// 128-bit x86 float vectors (baseline on x86-64). No masked memory ops in
/// SSE2: partial groups go through a zero-padded stack image.
struct Sse2VecF {
  using value_type = float;
  using reg = __m128;
  static constexpr index_t kLanes = 4;
  static reg load(const float* p) noexcept { return _mm_loadu_ps(p); }
  static reg load_n(const float* p, index_t n) noexcept {
    alignas(16) float tmp[4] = {0.0F, 0.0F, 0.0F, 0.0F};
    std::memcpy(tmp, p, static_cast<std::size_t>(n) * sizeof(float));
    return _mm_load_ps(tmp);
  }
  static void store(float* p, reg v) noexcept { _mm_storeu_ps(p, v); }
  static void store_n(float* p, reg v, index_t n) noexcept {
    alignas(16) float tmp[4];
    _mm_store_ps(tmp, v);
    std::memcpy(p, tmp, static_cast<std::size_t>(n) * sizeof(float));
  }
  static void stream(float* p, reg v) noexcept { _mm_stream_ps(p, v); }
  static bool aligned(const float* p) noexcept {
    return detail_align::is_aligned(p, 16);
  }
  static reg set1(float v) noexcept { return _mm_set1_ps(v); }
  static reg zero() noexcept { return _mm_setzero_ps(); }
  static reg add(reg a, reg b) noexcept { return _mm_add_ps(a, b); }
  static reg sub(reg a, reg b) noexcept { return _mm_sub_ps(a, b); }
  static reg mul(reg a, reg b) noexcept { return _mm_mul_ps(a, b); }
  static reg div(reg a, reg b) noexcept { return _mm_div_ps(a, b); }
  static reg sqrt(reg a) noexcept { return _mm_sqrt_ps(a); }
};

/// 128-bit x86 double vectors.
struct Sse2VecD {
  using value_type = double;
  using reg = __m128d;
  static constexpr index_t kLanes = 2;
  static reg load(const double* p) noexcept { return _mm_loadu_pd(p); }
  static reg load_n(const double* p, index_t n) noexcept {
    alignas(16) double tmp[2] = {0.0, 0.0};
    std::memcpy(tmp, p, static_cast<std::size_t>(n) * sizeof(double));
    return _mm_load_pd(tmp);
  }
  static void store(double* p, reg v) noexcept { _mm_storeu_pd(p, v); }
  static void store_n(double* p, reg v, index_t n) noexcept {
    alignas(16) double tmp[2];
    _mm_store_pd(tmp, v);
    std::memcpy(p, tmp, static_cast<std::size_t>(n) * sizeof(double));
  }
  static void stream(double* p, reg v) noexcept { _mm_stream_pd(p, v); }
  static bool aligned(const double* p) noexcept {
    return detail_align::is_aligned(p, 16);
  }
  static reg set1(double v) noexcept { return _mm_set1_pd(v); }
  static reg zero() noexcept { return _mm_setzero_pd(); }
  static reg add(reg a, reg b) noexcept { return _mm_add_pd(a, b); }
  static reg sub(reg a, reg b) noexcept { return _mm_sub_pd(a, b); }
  static reg mul(reg a, reg b) noexcept { return _mm_mul_pd(a, b); }
  static reg div(reg a, reg b) noexcept { return _mm_div_pd(a, b); }
  static reg sqrt(reg a) noexcept { return _mm_sqrt_pd(a); }
};

#endif  // __SSE2__

#if defined(__AVX2__)

/// 256-bit x86 float vectors; masked tails via VMASKMOV (fault-suppressing
/// on inactive lanes, so partial groups never touch memory out of range).
struct Avx2VecF {
  using value_type = float;
  using reg = __m256;
  static constexpr index_t kLanes = 8;
  static __m256i tail_mask(index_t n) noexcept {
    return _mm256_cmpgt_epi32(_mm256_set1_epi32(static_cast<int>(n)),
                              _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7));
  }
  static reg load(const float* p) noexcept { return _mm256_loadu_ps(p); }
  static reg load_n(const float* p, index_t n) noexcept {
    return _mm256_maskload_ps(p, tail_mask(n));
  }
  static void store(float* p, reg v) noexcept { _mm256_storeu_ps(p, v); }
  static void store_n(float* p, reg v, index_t n) noexcept {
    _mm256_maskstore_ps(p, tail_mask(n), v);
  }
  static void stream(float* p, reg v) noexcept { _mm256_stream_ps(p, v); }
  static bool aligned(const float* p) noexcept {
    return detail_align::is_aligned(p, 32);
  }
  static reg set1(float v) noexcept { return _mm256_set1_ps(v); }
  static reg zero() noexcept { return _mm256_setzero_ps(); }
  static reg add(reg a, reg b) noexcept { return _mm256_add_ps(a, b); }
  static reg sub(reg a, reg b) noexcept { return _mm256_sub_ps(a, b); }
  static reg mul(reg a, reg b) noexcept { return _mm256_mul_ps(a, b); }
  static reg div(reg a, reg b) noexcept { return _mm256_div_ps(a, b); }
  static reg sqrt(reg a) noexcept { return _mm256_sqrt_ps(a); }
};

/// 256-bit x86 double vectors.
struct Avx2VecD {
  using value_type = double;
  using reg = __m256d;
  static constexpr index_t kLanes = 4;
  static __m256i tail_mask(index_t n) noexcept {
    return _mm256_cmpgt_epi64(
        _mm256_set1_epi64x(static_cast<long long>(n)),
        _mm256_setr_epi64x(0, 1, 2, 3));
  }
  static reg load(const double* p) noexcept { return _mm256_loadu_pd(p); }
  static reg load_n(const double* p, index_t n) noexcept {
    return _mm256_maskload_pd(p, tail_mask(n));
  }
  static void store(double* p, reg v) noexcept { _mm256_storeu_pd(p, v); }
  static void store_n(double* p, reg v, index_t n) noexcept {
    _mm256_maskstore_pd(p, tail_mask(n), v);
  }
  static void stream(double* p, reg v) noexcept { _mm256_stream_pd(p, v); }
  static bool aligned(const double* p) noexcept {
    return detail_align::is_aligned(p, 32);
  }
  static reg set1(double v) noexcept { return _mm256_set1_pd(v); }
  static reg zero() noexcept { return _mm256_setzero_pd(); }
  static reg add(reg a, reg b) noexcept { return _mm256_add_pd(a, b); }
  static reg sub(reg a, reg b) noexcept { return _mm256_sub_pd(a, b); }
  static reg mul(reg a, reg b) noexcept { return _mm256_mul_pd(a, b); }
  static reg div(reg a, reg b) noexcept { return _mm256_div_pd(a, b); }
  static reg sqrt(reg a) noexcept { return _mm256_sqrt_pd(a); }
};

#endif  // __AVX2__

#if defined(__AVX512F__)

/// 512-bit x86 float vectors; native predication makes the tail a single
/// masked group, so even the short RLE spans of sparse geometries run
/// fully vectorized.
struct Avx512VecF {
  using value_type = float;
  using reg = __m512;
  static constexpr index_t kLanes = 16;
  static __mmask16 tail_mask(index_t n) noexcept {
    return static_cast<__mmask16>((1U << n) - 1U);
  }
  static reg load(const float* p) noexcept { return _mm512_loadu_ps(p); }
  static reg load_n(const float* p, index_t n) noexcept {
    return _mm512_maskz_loadu_ps(tail_mask(n), p);
  }
  static void store(float* p, reg v) noexcept { _mm512_storeu_ps(p, v); }
  static void store_n(float* p, reg v, index_t n) noexcept {
    _mm512_mask_storeu_ps(p, tail_mask(n), v);
  }
  static void stream(float* p, reg v) noexcept { _mm512_stream_ps(p, v); }
  static bool aligned(const float* p) noexcept {
    return detail_align::is_aligned(p, 64);
  }
  static reg set1(float v) noexcept { return _mm512_set1_ps(v); }
  static reg zero() noexcept { return _mm512_setzero_ps(); }
  static reg add(reg a, reg b) noexcept { return _mm512_add_ps(a, b); }
  static reg sub(reg a, reg b) noexcept { return _mm512_sub_ps(a, b); }
  static reg mul(reg a, reg b) noexcept { return _mm512_mul_ps(a, b); }
  static reg div(reg a, reg b) noexcept { return _mm512_div_ps(a, b); }
  static reg sqrt(reg a) noexcept { return _mm512_sqrt_ps(a); }
};

/// 512-bit x86 double vectors.
struct Avx512VecD {
  using value_type = double;
  using reg = __m512d;
  static constexpr index_t kLanes = 8;
  static __mmask8 tail_mask(index_t n) noexcept {
    return static_cast<__mmask8>((1U << n) - 1U);
  }
  static reg load(const double* p) noexcept { return _mm512_loadu_pd(p); }
  static reg load_n(const double* p, index_t n) noexcept {
    return _mm512_maskz_loadu_pd(tail_mask(n), p);
  }
  static void store(double* p, reg v) noexcept { _mm512_storeu_pd(p, v); }
  static void store_n(double* p, reg v, index_t n) noexcept {
    _mm512_mask_storeu_pd(p, tail_mask(n), v);
  }
  static void stream(double* p, reg v) noexcept { _mm512_stream_pd(p, v); }
  static bool aligned(const double* p) noexcept {
    return detail_align::is_aligned(p, 64);
  }
  static reg set1(double v) noexcept { return _mm512_set1_pd(v); }
  static reg zero() noexcept { return _mm512_setzero_pd(); }
  static reg add(reg a, reg b) noexcept { return _mm512_add_pd(a, b); }
  static reg sub(reg a, reg b) noexcept { return _mm512_sub_pd(a, b); }
  static reg mul(reg a, reg b) noexcept { return _mm512_mul_pd(a, b); }
  static reg div(reg a, reg b) noexcept { return _mm512_div_pd(a, b); }
  static reg sqrt(reg a) noexcept { return _mm512_sqrt_pd(a); }
};

#endif  // __AVX512F__

#if defined(__aarch64__) && defined(__ARM_NEON)

/// 128-bit AArch64 float vectors (no masked memory ops or streaming
/// stores; partial groups go through a zero-padded stack image).
struct NeonVecF {
  using value_type = float;
  using reg = float32x4_t;
  static constexpr index_t kLanes = 4;
  static reg load(const float* p) noexcept { return vld1q_f32(p); }
  static reg load_n(const float* p, index_t n) noexcept {
    float tmp[4] = {0.0F, 0.0F, 0.0F, 0.0F};
    std::memcpy(tmp, p, static_cast<std::size_t>(n) * sizeof(float));
    return vld1q_f32(tmp);
  }
  static void store(float* p, reg v) noexcept { vst1q_f32(p, v); }
  static void store_n(float* p, reg v, index_t n) noexcept {
    float tmp[4];
    vst1q_f32(tmp, v);
    std::memcpy(p, tmp, static_cast<std::size_t>(n) * sizeof(float));
  }
  static void stream(float* p, reg v) noexcept { vst1q_f32(p, v); }
  static bool aligned(const float*) noexcept { return false; }
  static reg set1(float v) noexcept { return vdupq_n_f32(v); }
  static reg zero() noexcept { return vdupq_n_f32(0.0F); }
  static reg add(reg a, reg b) noexcept { return vaddq_f32(a, b); }
  static reg sub(reg a, reg b) noexcept { return vsubq_f32(a, b); }
  static reg mul(reg a, reg b) noexcept { return vmulq_f32(a, b); }
  static reg div(reg a, reg b) noexcept { return vdivq_f32(a, b); }
  static reg sqrt(reg a) noexcept { return vsqrtq_f32(a); }
};

/// 128-bit AArch64 double vectors.
struct NeonVecD {
  using value_type = double;
  using reg = float64x2_t;
  static constexpr index_t kLanes = 2;
  static reg load(const double* p) noexcept { return vld1q_f64(p); }
  static reg load_n(const double* p, index_t n) noexcept {
    double tmp[2] = {0.0, 0.0};
    std::memcpy(tmp, p, static_cast<std::size_t>(n) * sizeof(double));
    return vld1q_f64(tmp);
  }
  static void store(double* p, reg v) noexcept { vst1q_f64(p, v); }
  static void store_n(double* p, reg v, index_t n) noexcept {
    double tmp[2];
    vst1q_f64(tmp, v);
    std::memcpy(p, tmp, static_cast<std::size_t>(n) * sizeof(double));
  }
  static void stream(double* p, reg v) noexcept { vst1q_f64(p, v); }
  static bool aligned(const double*) noexcept { return false; }
  static reg set1(double v) noexcept { return vdupq_n_f64(v); }
  static reg zero() noexcept { return vdupq_n_f64(0.0); }
  static reg add(reg a, reg b) noexcept { return vaddq_f64(a, b); }
  static reg sub(reg a, reg b) noexcept { return vsubq_f64(a, b); }
  static reg mul(reg a, reg b) noexcept { return vmulq_f64(a, b); }
  static reg div(reg a, reg b) noexcept { return vdivq_f64(a, b); }
  static reg sqrt(reg a) noexcept { return vsqrtq_f64(a); }
};

#endif  // __aarch64__ && __ARM_NEON

/// One group of `active` (<= V::kLanes) consecutive points at offset i of
/// the 19 per-direction streams: the vectorized update_interior_values.
template <typename V, bool WithLes, bool AllowNt>
inline void tile_point_group(
    const typename V::value_type* const* src,
    typename V::value_type* const* dst, index_t i, index_t active,
    typename V::value_type omega,
    const std::array<typename V::value_type, 3>& force_shift,
    [[maybe_unused]] typename V::value_type cs2,
    [[maybe_unused]] const std::array<bool, kQ>& nt_ok) {
  using T = typename V::value_type;
  using R = typename V::reg;
  constexpr LatticeConsts<T> k = lattice_consts<T>();
  const bool full = active == V::kLanes;

  // Gather arrivals and accumulate moments in direction order — the exact
  // sequence of update_interior_values, including the multiplications by
  // zero direction components.
  R g[kQ];
  R rho = V::zero(), jx = V::zero(), jy = V::zero(), jz = V::zero();
  for (std::size_t q = 0; q < static_cast<std::size_t>(kQ); ++q) {
    g[q] = full ? V::load(src[q] + i) : V::load_n(src[q] + i, active);
    rho = V::add(rho, g[q]);
    jx = V::add(jx, V::mul(g[q], V::set1(k.cx[q])));
    jy = V::add(jy, V::mul(g[q], V::set1(k.cy[q])));
    jz = V::add(jz, V::mul(g[q], V::set1(k.cz[q])));
  }
  const R inv_rho = V::div(V::set1(T{1}), rho);
  const R ux = V::mul(jx, inv_rho);
  const R uy = V::mul(jy, inv_rho);
  const R uz = V::mul(jz, inv_rho);
  const R fx = V::add(ux, V::mul(V::set1(force_shift[0]), inv_rho));
  const R fy = V::add(uy, V::mul(V::set1(force_shift[1]), inv_rho));
  const R fz = V::add(uz, V::mul(V::set1(force_shift[2]), inv_rho));

  // u^2 is identical for every direction, so hoisting it out of the
  // per-direction equilibrium changes no bits.
  const R u2 = V::add(V::add(V::mul(fx, fx), V::mul(fy, fy)),
                      V::mul(fz, fz));
  // equilibrium<T>(q, rho, fx, fy, fz) with the scalar code's expression
  // tree: w * rho * ((1 + 3 cu + 4.5 cu^2) - 1.5 u^2).
  const auto feq_q = [&](std::size_t q) {
    const R cu = V::add(V::add(V::mul(V::set1(k.cx[q]), fx),
                               V::mul(V::set1(k.cy[q]), fy)),
                        V::mul(V::set1(k.cz[q]), fz));
    const R poly = V::sub(
        V::add(V::add(V::set1(T{1}), V::mul(V::set1(T{3}), cu)),
               V::mul(V::mul(V::set1(T{4.5}), cu), cu)),
        V::mul(V::set1(T{1.5}), u2));
    return V::mul(V::mul(V::set1(k.w[q]), rho), poly);
  };

  R omega_eff = V::set1(omega);
  if constexpr (WithLes) {
    // Smagorinsky eddy viscosity from the non-equilibrium momentum flux —
    // the vector transcription of the WithLes block of
    // update_interior_values.
    R pxx = V::zero(), pyy = V::zero(), pzz = V::zero();
    R pxy = V::zero(), pxz = V::zero(), pyz = V::zero();
    for (std::size_t q = 0; q < static_cast<std::size_t>(kQ); ++q) {
      const R fneq = V::sub(g[q], feq_q(q));
      const R fcx = V::mul(fneq, V::set1(k.cx[q]));
      const R fcy = V::mul(fneq, V::set1(k.cy[q]));
      const R fcz = V::mul(fneq, V::set1(k.cz[q]));
      pxx = V::add(pxx, V::mul(fcx, V::set1(k.cx[q])));
      pyy = V::add(pyy, V::mul(fcy, V::set1(k.cy[q])));
      pzz = V::add(pzz, V::mul(fcz, V::set1(k.cz[q])));
      pxy = V::add(pxy, V::mul(fcx, V::set1(k.cy[q])));
      pxz = V::add(pxz, V::mul(fcx, V::set1(k.cz[q])));
      pyz = V::add(pyz, V::mul(fcy, V::set1(k.cz[q])));
    }
    const R pi_mag = V::sqrt(V::add(
        V::add(V::add(V::mul(pxx, pxx), V::mul(pyy, pyy)),
               V::mul(pzz, pzz)),
        V::mul(V::set1(T{2}),
               V::add(V::add(V::mul(pxy, pxy), V::mul(pxz, pxz)),
                      V::mul(pyz, pyz)))));
    // tau and the LES constant are per-call invariants; computing them
    // once in scalar yields the same values the per-point scalar code
    // recomputes.
    const T tau_s = T{1} / omega;
    const T les_c = T{18} * static_cast<T>(1.41421356237) * cs2;
    const R tau = V::set1(tau_s);
    const R tau_eff =
        V::div(V::add(tau, V::sqrt(V::add(
                               V::mul(tau, tau),
                               V::mul(V::mul(V::set1(les_c), pi_mag),
                                      inv_rho)))),
               V::set1(T{2}));
    omega_eff = V::div(V::set1(T{1}), tau_eff);
  }

  for (std::size_t q = 0; q < static_cast<std::size_t>(kQ); ++q) {
    const R feq = feq_q(q);
    const R out = V::add(g[q], V::mul(omega_eff, V::sub(feq, g[q])));
    if (full) {
      if constexpr (AllowNt) {
        if (nt_ok[q]) {
          V::stream(dst[q] + i, out);
          continue;
        }
      }
      V::store(dst[q] + i, out);
    } else {
      V::store_n(dst[q] + i, out, active);
    }
  }
}

/// Drives tile_point_group over w consecutive points: full-width groups
/// plus at most one partial group. With AllowNt, full-width groups whose
/// destination stream is vector-aligned use streaming stores (group
/// offsets advance by whole vectors, so base alignment decides the whole
/// call).
template <typename V, bool WithLes, bool AllowNt>
void tile_run(const typename V::value_type* const* src,
              typename V::value_type* const* dst, index_t w,
              typename V::value_type omega,
              const std::array<typename V::value_type, 3>& force_shift,
              typename V::value_type cs2) {
  std::array<bool, kQ> nt_ok{};
  if constexpr (AllowNt) {
    for (std::size_t q = 0; q < static_cast<std::size_t>(kQ); ++q) {
      nt_ok[q] = V::aligned(dst[q]);
    }
  }
  index_t i = 0;
  for (; i + V::kLanes <= w; i += V::kLanes) {
    tile_point_group<V, WithLes, AllowNt>(src, dst, i, V::kLanes, omega,
                                          force_shift, cs2, nt_ok);
  }
  if (i < w) {
    tile_point_group<V, WithLes, AllowNt>(src, dst, i, w - i, omega,
                                          force_shift, cs2, nt_ok);
  }
}

}  // namespace hemo::lbm::simd
