// Sparse D3Q19 BGK solver over a FluidMesh.
//
// Supports both propagation patterns of the paper's codes:
//  * AB — two arrays, pull-scheme fused stream/collide: the array always
//    holds post-collision values; each step gathers arrivals from the
//    previous array, collides, and writes the new array.
//  * AA — single array (Bailey et al.): the even step collides in place
//    writing each value into its opposite-direction slot; the odd step
//    gathers from neighbors' swapped slots and scatters to neighbors so the
//    array returns to natural order. Bounce-back folds into both steps.
//
// Two hot-path implementations share every per-point arithmetic operation
// (lbm/point_update.hpp) and therefore produce bit-identical state:
//  * KernelPath::kReference — one fused loop per step: each point pays a
//    19-wide neighbor-table gather and a type/pulse/LES branch.
//  * KernelPath::kSegmented (default) — the distribution arrays are held
//    in SegmentedMesh order (bulk-interior points first, boundary points
//    after). The bulk segment streams span-by-span with constant neighbor
//    offsets (direct indexing, no gather table) through a branch-free
//    inner loop with the LES branch resolved at compile time; only the
//    small boundary segment runs the general gather + type-switch path.
//    Public point indices remain the original mesh order — moments_at,
//    f_value, IO, observables, and the decomposition layer see no
//    difference.
// The layout/propagation/path dispatch is hoisted out of step() into
// kernel function pointers bound at construction.
//
// Boundary conditions follow HARVEY's setup in the paper: a Poiseuille
// velocity profile imposed at inlets (wet-node equilibrium with the locally
// arriving density) and a zero-pressure (rho = 1) equilibrium outlet.
// Walls are full bounce-back.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "geometry/generators.hpp"
#include "lbm/access_counts.hpp"
#include "lbm/kernel_config.hpp"
#include "lbm/lattice.hpp"
#include "lbm/mesh.hpp"
#include "lbm/mesh_segments.hpp"
#include "lbm/simd.hpp"
#include "util/common.hpp"

namespace hemo::lbm {

/// Solver numerical parameters.
struct SolverParams {
  real_t tau = 0.8;  ///< BGK relaxation time (viscosity = (tau - 0.5) / 3)
  KernelConfig kernel;
  /// Uniform body force per fluid point (lattice units). Drives flow in
  /// periodic domains (validated against analytic Poiseuille flow).
  std::array<real_t, 3> body_force = {0.0, 0.0, 0.0};

  /// Smagorinsky constant for the LES eddy-viscosity model; 0 disables it
  /// (plain BGK). Typical values are 0.1 - 0.2 for high-Re hemodynamics.
  real_t smagorinsky_cs = 0.0;

  /// OpenMP threads for the step kernels and reductions; 0 takes the
  /// OpenMP default team size. The decomposition layer runs one solver
  /// per rank and pins this to 1 unless told otherwise — ranks x threads
  /// should not exceed the physical cores (see runtime/parallel_solver).
  /// All results are bit-stable across thread counts.
  index_t num_threads = 0;
};

/// The solver. T is the distribution storage type (float or double).
template <typename T>
class Solver {
 public:
  /// Builds the solver; `inlets` provide the Poiseuille profiles for
  /// kInlet points. The mesh must outlive the solver.
  Solver(const FluidMesh& mesh, const SolverParams& params,
         std::span<const geometry::InletSpec> inlets);

  /// Resets every point to rest equilibrium (rho = 1, u = 0). Pages of
  /// the distribution arrays are first-touched under the same static
  /// thread partition the step kernels use.
  void initialize();

  /// Advances one timestep. For AA the parity is tracked internally.
  void step();

  /// Advances n timesteps.
  void run(index_t n);

  [[nodiscard]] index_t timestep() const noexcept { return timestep_; }
  [[nodiscard]] const FluidMesh& mesh() const noexcept { return *mesh_; }
  [[nodiscard]] const SolverParams& params() const noexcept { return params_; }

  /// The segment-reordered view driving the kernels; null on the
  /// reference path.
  [[nodiscard]] const SegmentedMesh* segments() const noexcept {
    return seg_.get();
  }

  /// The SIMD backend the bulk kernels actually execute. Only the
  /// segmented SoA path runs intrinsic kernels; the reference and AoS
  /// paths always report kScalar (benchmark honesty: what is recorded is
  /// what ran, not what was requested).
  [[nodiscard]] Backend backend() const noexcept { return backend_; }

  /// The OpenMP team size the kernels run with (resolved from
  /// SolverParams::num_threads at construction; 1 in builds without
  /// OpenMP).
  [[nodiscard]] index_t threads() const noexcept { return threads_; }

  /// True when the distribution array is in natural (direction-aligned)
  /// order; moments are only meaningful then. AB is always natural; AA is
  /// natural at even timesteps.
  [[nodiscard]] bool natural_order() const noexcept {
    return params_.kernel.propagation == Propagation::kAB ||
           timestep_ % 2 == 0;
  }

  /// Macroscopic moments at point p. Requires natural_order().
  [[nodiscard]] Moments<real_t> moments_at(index_t p) const;

  /// Total mass over the domain. Requires natural_order(). Parallel with
  /// a fixed-block ordered reduction: the result is bit-stable across
  /// thread counts.
  [[nodiscard]] real_t total_mass() const;

  /// Mean velocity magnitude over fluid points. Requires natural_order().
  /// Same fixed-block ordered reduction as total_mass().
  [[nodiscard]] real_t mean_speed() const;

  /// Direct read of one distribution value (tests only).
  [[nodiscard]] real_t f_value(index_t p, index_t q) const;

  /// Distribution state in canonical order — original mesh point indices
  /// under the active Layout — independent of the kernel path, so
  /// checkpoints written by one path restore bit-exactly into the other.
  [[nodiscard]] std::vector<T> export_state() const;

  /// Restores a state saved by export_state() (canonical order) and the
  /// timestep. The span length must equal num_points * kQ.
  void restore_state(std::span<const T> state, index_t timestep);

 private:
  template <Layout L>
  [[nodiscard]] index_t idx(index_t p, index_t q) const noexcept {
    if constexpr (L == Layout::kAoS) {
      return p * kQ + q;
    } else {
      return q * n_ + p;
    }
  }

  /// Internal storage position of original mesh point p.
  [[nodiscard]] index_t internal_pos(index_t p) const noexcept {
    return seg_ ? seg_->position_of(p) : p;
  }

  /// Selects the kernel function pointers for the configured
  /// path/layout/propagation (and, on the segmented path, LES mode).
  void bind_kernels();

  // Reference kernels: one fused loop over all points.
  template <Layout L>
  void step_ab();
  template <Layout L>
  void step_aa_even();
  template <Layout L>
  void step_aa_odd();

  // Segmented kernels: branch-free RLE bulk segment + general boundary
  // segment, both statically partitioned across threads.
  template <Layout L, bool WithLes>
  void seg_step_ab();
  template <Layout L, bool WithLes>
  void seg_step_aa_even();
  template <Layout L, bool WithLes>
  void seg_step_aa_odd();

  template <Layout L, bool WithLes>
  void seg_bulk_ab(index_t lo, index_t hi);
  template <Layout L, bool WithLes>
  void seg_bulk_aa_even(index_t lo, index_t hi);
  template <Layout L, bool WithLes>
  void seg_bulk_aa_odd(index_t lo, index_t hi);
  template <Layout L>
  void seg_boundary_ab(index_t lo, index_t hi);
  template <Layout L>
  void seg_boundary_aa_even(index_t lo, index_t hi);
  template <Layout L>
  void seg_boundary_aa_odd(index_t lo, index_t hi);

  /// Computes the post-collision (or boundary) values for point p given its
  /// gathered arrivals g; writes them to out[0..18]. Reference path:
  /// p is an original mesh index.
  void update_point(index_t p, const T* g, T* out) const;

  /// Segmented-path boundary update: i is an internal position in
  /// [bulk_count, n).
  void update_boundary_point(index_t i, const T* g, T* out) const;

  const FluidMesh* mesh_;
  SolverParams params_;
  index_t n_ = 0;
  T omega_ = T{0};
  T cs2_ = T{0};  ///< smagorinsky_cs^2 in storage precision
  index_t timestep_ = 0;

  /// Segment-reordered view (segmented path only).
  std::unique_ptr<SegmentedMesh> seg_;

  using StepFn = void (Solver::*)();
  StepFn step_even_fn_ = nullptr;  ///< AB kernel, or AA even-parity kernel
  StepFn step_odd_fn_ = nullptr;   ///< AA odd-parity kernel (AB: == even)

  /// Effective SIMD backend of the bulk tile kernels (kScalar off the
  /// segmented SoA path) and the bound tile functions: the normal-store
  /// variant and, when profitable, the streaming-store variant for the AB
  /// back array.
  Backend backend_ = Backend::kScalar;
  simd::TileFn<T> tile_fn_ = nullptr;
  simd::TileFn<T> tile_fn_nt_ = nullptr;
  bool nt_stores_ = false;

  /// Resolved OpenMP team size (>= 1).
  index_t threads_ = 1;

  /// Span-aligned bulk work blocks: block b covers internal positions
  /// [block_bounds_[b], block_bounds_[b+1]). Cut only at RLE span
  /// boundaries so the tile kernels always see whole spans (no artificial
  /// masked tails at partition seams), sized for L2 residency, and
  /// assigned to threads statically so the same thread streams the same
  /// pages every step (first-touch locality; initialize() mirrors the
  /// partition).
  std::vector<index_t> block_bounds_;

  std::vector<T> f_;   // main array (internal point order)
  std::vector<T> f2_;  // second array (AB only)

  // Per-point boundary targets in internal point order: for kInlet the
  // imposed velocity; unused otherwise. Stored densely for O(1) access in
  // the kernels.
  std::vector<std::array<T, 3>> bc_velocity_;
  // Per-point pulsatile {amplitude, period}; zero for steady inlets.
  std::vector<std::array<T, 2>> bc_pulse_;
  // tau * body_force, the equilibrium velocity shift of the forcing term.
  std::array<T, 3> force_shift_ = {T{0}, T{0}, T{0}};
};

/// Convenience: MFLUPS from points, steps, and elapsed seconds (Eq. 7).
[[nodiscard]] inline real_t mflups(index_t points, index_t steps,
                                   real_t seconds) {
  HEMO_REQUIRE(seconds > 0.0, "mflups needs positive elapsed time");
  return static_cast<real_t>(points) * static_cast<real_t>(steps) /
         (seconds * 1e6);
}

extern template class Solver<float>;
extern template class Solver<double>;

}  // namespace hemo::lbm
