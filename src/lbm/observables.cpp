#include "lbm/observables.hpp"

#include <cmath>

namespace hemo::lbm {

template <typename T>
StressTensor deviatoric_stress(const Solver<T>& solver, index_t p) {
  HEMO_REQUIRE(solver.natural_order(),
               "stress requires natural order (AA: even step)");
  const real_t tau = solver.params().tau;
  const real_t omega = 1.0 / tau;
  // The AB array stores POST-collision values, which scale the
  // non-equilibrium part by (1 - omega) relative to the pre-collision
  // state the stress formula wants; undo that. (At tau = 1 the collision
  // erases the non-equilibrium information entirely.) The AA natural
  // state holds pre-collision arrivals and needs no correction.
  real_t neq_scale = 1.0;
  if (solver.params().kernel.propagation == Propagation::kAB) {
    const real_t post_factor = 1.0 - omega;
    HEMO_REQUIRE(std::abs(post_factor) > 1e-9,
                 "AB stress undefined at tau == 1 (post-collision state "
                 "holds no non-equilibrium information)");
    neq_scale = 1.0 / post_factor;
  }

  const auto m = solver.moments_at(p);
  StressTensor sigma{};
  for (index_t q = 0; q < kQ; ++q) {
    const real_t f = solver.f_value(p, q);
    const real_t feq = equilibrium<real_t>(q, m.rho, m.ux, m.uy, m.uz);
    const real_t fneq = (f - feq) * neq_scale;
    const auto& c = kD3Q19[static_cast<std::size_t>(q)];
    const real_t cx = c.dx, cy = c.dy, cz = c.dz;
    sigma[0] += fneq * cx * cx;
    sigma[1] += fneq * cy * cy;
    sigma[2] += fneq * cz * cz;
    sigma[3] += fneq * cx * cy;
    sigma[4] += fneq * cx * cz;
    sigma[5] += fneq * cy * cz;
  }
  const real_t factor = -(1.0 - 1.0 / (2.0 * tau));
  for (real_t& s : sigma) s *= factor;
  return sigma;
}

real_t axial_shear_magnitude(const StressTensor& sigma) {
  return std::sqrt(sigma[4] * sigma[4] + sigma[5] * sigma[5]);
}

template <typename T>
real_t flow_rate(const Solver<T>& solver, int axis, index_t plane) {
  HEMO_REQUIRE(axis >= 0 && axis <= 2, "axis must be 0, 1 or 2");
  const FluidMesh& mesh = solver.mesh();
  real_t rate = 0.0;
  for (index_t p = 0; p < mesh.num_points(); ++p) {
    const Voxel& v = mesh.voxel(p);
    const index_t along = axis == 0 ? v.x : axis == 1 ? v.y : v.z;
    if (along != plane) continue;
    const auto m = solver.moments_at(p);
    const real_t u = axis == 0 ? m.ux : axis == 1 ? m.uy : m.uz;
    rate += m.rho * u;
  }
  return rate;
}

template <typename T>
real_t mean_gauge_pressure(const Solver<T>& solver, int axis,
                           index_t plane) {
  HEMO_REQUIRE(axis >= 0 && axis <= 2, "axis must be 0, 1 or 2");
  const FluidMesh& mesh = solver.mesh();
  real_t rho_sum = 0.0;
  index_t count = 0;
  for (index_t p = 0; p < mesh.num_points(); ++p) {
    const Voxel& v = mesh.voxel(p);
    const index_t along = axis == 0 ? v.x : axis == 1 ? v.y : v.z;
    if (along != plane) continue;
    rho_sum += solver.moments_at(p).rho;
    ++count;
  }
  HEMO_REQUIRE(count > 0, "no fluid points in the requested plane");
  return kCs2 * (rho_sum / static_cast<real_t>(count) - 1.0);
}

template StressTensor deviatoric_stress<float>(const Solver<float>&,
                                               index_t);
template StressTensor deviatoric_stress<double>(const Solver<double>&,
                                                index_t);
template real_t flow_rate<float>(const Solver<float>&, int, index_t);
template real_t flow_rate<double>(const Solver<double>&, int, index_t);
template real_t mean_gauge_pressure<float>(const Solver<float>&, int,
                                           index_t);
template real_t mean_gauge_pressure<double>(const Solver<double>&, int,
                                            index_t);

}  // namespace hemo::lbm
