// Internal registry of per-backend tile kernel entry points.
//
// Each getter is defined in its backend's translation unit (compiled with
// that backend's ISA flags); simd.cpp routes tile_kernel() through them.
// The HEMO_SIMD_HAVE_* macros are set for the whole hemo_lbm target by
// src/lbm/CMakeLists.txt (driven by the HEMO_SIMD cache variable), so this
// header, simd.cpp, and the backend TUs always agree on what exists.
#pragma once

#include "lbm/simd.hpp"

namespace hemo::lbm::simd::detail {

TileFn<float> scalar_tile_f32(bool with_les, bool nt_stores);
TileFn<double> scalar_tile_f64(bool with_les, bool nt_stores);

#ifdef HEMO_SIMD_HAVE_SSE2
TileFn<float> sse2_tile_f32(bool with_les, bool nt_stores);
TileFn<double> sse2_tile_f64(bool with_les, bool nt_stores);
#endif

#ifdef HEMO_SIMD_HAVE_AVX2
TileFn<float> avx2_tile_f32(bool with_les, bool nt_stores);
TileFn<double> avx2_tile_f64(bool with_les, bool nt_stores);
#endif

#ifdef HEMO_SIMD_HAVE_AVX512
TileFn<float> avx512_tile_f32(bool with_les, bool nt_stores);
TileFn<double> avx512_tile_f64(bool with_les, bool nt_stores);
#endif

#ifdef HEMO_SIMD_HAVE_NEON
TileFn<float> neon_tile_f32(bool with_les, bool nt_stores);
TileFn<double> neon_tile_f64(bool with_les, bool nt_stores);
#endif

}  // namespace hemo::lbm::simd::detail
