#include "lbm/mesh.hpp"

namespace hemo::lbm {

FluidMesh FluidMesh::build(const geometry::VoxelGrid& grid,
                           const MeshOptions& options) {
  FluidMesh mesh;
  // First pass: map voxel linear index -> fluid point index.
  std::vector<std::int32_t> point_of(
      static_cast<std::size_t>(grid.volume()), kSolidLink);
  for (index_t z = 0; z < grid.nz(); ++z) {
    for (index_t y = 0; y < grid.ny(); ++y) {
      for (index_t x = 0; x < grid.nx(); ++x) {
        if (!grid.is_fluid(x, y, z)) continue;
        point_of[static_cast<std::size_t>(grid.linear(x, y, z))] =
            static_cast<std::int32_t>(mesh.coords_.size());
        mesh.coords_.push_back(Voxel{x, y, z});
        mesh.types_.push_back(grid.at(x, y, z));
      }
    }
  }

  // Second pass: neighbor table + solid-link counts.
  const index_t n = mesh.num_points();
  mesh.neighbors_.resize(static_cast<std::size_t>(n * kQ), kSolidLink);
  mesh.solid_links_.resize(static_cast<std::size_t>(n), 0);
  for (index_t p = 0; p < n; ++p) {
    const Voxel& v = mesh.coords_[static_cast<std::size_t>(p)];
    index_t solid = 0;
    for (index_t q = 0; q < kQ; ++q) {
      const auto& o = kD3Q19[static_cast<std::size_t>(q)];
      index_t x = v.x + o.dx, y = v.y + o.dy, z = v.z + o.dz;
      if (options.periodic_x) x = (x + grid.nx()) % grid.nx();
      if (options.periodic_y) y = (y + grid.ny()) % grid.ny();
      if (options.periodic_z) z = (z + grid.nz()) % grid.nz();
      std::int32_t nb = kSolidLink;
      if (grid.in_bounds(x, y, z) && grid.is_fluid(x, y, z)) {
        nb = point_of[static_cast<std::size_t>(grid.linear(x, y, z))];
      }
      mesh.neighbors_[static_cast<std::size_t>(p * kQ + q)] = nb;
      if (q > 0 && nb == kSolidLink) ++solid;
    }
    mesh.solid_links_[static_cast<std::size_t>(p)] =
        static_cast<std::int16_t>(solid);
  }
  return mesh;
}

geometry::TypeCounts FluidMesh::type_counts() const {
  geometry::TypeCounts c;
  for (PointType t : types_) {
    switch (t) {
      case PointType::kSolid: ++c.solid; break;
      case PointType::kBulk: ++c.bulk; break;
      case PointType::kWall: ++c.wall; break;
      case PointType::kInlet: ++c.inlet; break;
      case PointType::kOutlet: ++c.outlet; break;
    }
  }
  return c;
}

index_t FluidMesh::total_solid_links() const {
  index_t total = 0;
  for (std::int16_t s : solid_links_) total += s;
  return total;
}

}  // namespace hemo::lbm
