// Differential oracles of the validation harness.
//
// Each oracle states a cross-implementation agreement that must hold for
// *every* generated case, and runs as a property (property.hpp) so a
// violation replays and shrinks deterministically:
//
//  * model agreement — the generalized model (a-priori workload estimates,
//    Eqs. 10-16) and the direct model (exact decomposition counts, raw
//    PingPong tables) predict the same workload within a stated band;
//  * model vs measurement — the virtual cluster's "measured" step time
//    sits in a stated band above the direct prediction (the models never
//    see the hidden efficiency, so they overpredict throughput — paper
//    Figs. 7-8 — but must not drift arbitrarily);
//  * solver vs analytic — body-force-driven periodic Poiseuille flow
//    reproduces the analytic profile slope -F/(4 nu) and conserves mass;
//  * scheduler invariance — a seeded campaign report is byte-identical
//    across worker counts and job submission permutations;
//  * fault recovery — campaigns under injected faults (slowdowns,
//    preemption storms, corrupted checkpoints) still terminate every job,
//    account consistently, and replay byte-identically.
//
// The bands are deliberately *stated constants* (not re-measured at check
// time): the mutation self-test (mutation.hpp) proves each band is tight
// enough that perturbing one fitted coefficient pushes cases outside it.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "check/property.hpp"
#include "core/calibration.hpp"
#include "harvey/simulation.hpp"

namespace hemo::check {

/// Generalized / direct step-time ratio band. Measured over the full
/// (workload, CPU instance, task count) grid of the default context:
/// observed [0.89, 3.10] (the high edge is the cerebral tree on CSP-1 at
/// 32 tasks, where the generalized z/event laws are most conservative).
/// The band adds margin for generator jitter while staying tight enough
/// that a mutated coefficient (mutation.hpp) escapes it.
inline constexpr real_t kAgreementLow = 0.6;
inline constexpr real_t kAgreementHigh = 3.8;

/// Measured / direct-predicted step-time ratio band. The hidden execution
/// efficiency (~0.78) plus kernel traits put measurements consistently
/// above the prediction; observed [1.12, 1.45] over the same grid.
inline constexpr real_t kMeasuredLow = 1.0;
inline constexpr real_t kMeasuredHigh = 1.8;

/// Poiseuille profile-slope relative tolerance and the effective-radius
/// slack (voxels) of the staircase boundary. The staircase bias of the
/// bounce-back wall dominates the slope error at these radii: an
/// exhaustive sweep of the generator grid (radius 5..6, length 10..14,
/// tau 0.8..1.0, the force range) peaks at 9.2 % for radius 5 and 4.5 %
/// for radius 6, so 12 % accepts every staircase-limited case while a
/// wrong viscosity relation or forcing term (factor-level errors) still
/// fails decisively.
inline constexpr real_t kPoiseuilleSlopeTol = 0.12;
inline constexpr real_t kPoiseuilleRadiusSlack = 0.8;

/// Relative mass drift allowed over a closed periodic run.
inline constexpr real_t kMassDriftTol = 1e-10;

/// Shared expensive state of the model oracles: calibrated instances and
/// small calibrated workloads, built once and reused across oracles and
/// the mutation suite (which perturbs these calibrations in place).
struct OracleContext {
  struct Workload {
    std::string name;
    std::unique_ptr<harvey::Simulation> sim;
    core::WorkloadCalibration calibration;
  };

  std::vector<Workload> workloads;
  /// Instance calibrations keyed by abbreviation (plain CPU catalog).
  std::map<std::string, core::InstanceCalibration> calibrations;
  /// Task counts the model oracles sample from.
  std::vector<index_t> task_counts = {2, 4, 6, 8, 12, 16, 24, 32, 48, 64};
  /// Tasks-per-node used for plans and predictions (one rank per physical
  /// core, capped by the instance's cores_per_node at plan time).
  index_t tasks_per_node = 16;

  /// Calibrates the default context: three small workloads (cylinder,
  /// aorta, cerebral) and every plain CPU instance.
  [[nodiscard]] static OracleContext make_default();
};

/// One sampled model-oracle case.
struct ModelCase {
  index_t workload = 0;   ///< index into OracleContext::workloads
  std::string instance;   ///< instance abbreviation
  index_t n_tasks = 2;
  index_t day = 0, hour = 12, slot = 0;  ///< measurement noise context
};

/// Oracle 1: generalized vs direct model agreement.
[[nodiscard]] PropertyResult oracle_model_agreement(
    OracleContext& ctx, const PropertyConfig& config);

/// Oracle 2: direct model vs virtual-cluster measurement.
[[nodiscard]] PropertyResult oracle_model_vs_measurement(
    OracleContext& ctx, const PropertyConfig& config);

/// Oracle 3: LBM solver vs analytic Poiseuille + mass conservation.
[[nodiscard]] PropertyResult oracle_poiseuille(const PropertyConfig& config);

/// Oracle 4: campaign report invariance under worker count and job
/// submission order.
[[nodiscard]] PropertyResult oracle_scheduler_invariance(
    const PropertyConfig& config);

/// Oracle 5: campaigns under injected faults terminate consistently and
/// replay byte-identically.
[[nodiscard]] PropertyResult oracle_fault_recovery(
    const PropertyConfig& config);

/// Runs every oracle. Model oracles run config.cases cases; the expensive
/// solver/campaign oracles run a scaled-down count (at least 2).
[[nodiscard]] std::vector<PropertyResult> run_all_oracles(
    OracleContext& ctx, const PropertyConfig& config);

}  // namespace hemo::check
