// Seed-driven input generators for the validation harness.
//
// Every generator draws exclusively from the Xoshiro256 stream it is
// handed, so a case is reproduced from its seed alone (property.hpp keys
// per-case streams off hash_seed(config.seed, case_index)). Generators
// deliberately sample *small* instances of each domain object — the
// harness's value is breadth across the parameter space, not size.
#pragma once

#include <string>
#include <vector>

#include "cluster/instance.hpp"
#include "fit/linear.hpp"
#include "fit/log_models.hpp"
#include "fit/two_line.hpp"
#include "geometry/generators.hpp"
#include "sched/guard.hpp"
#include "sched/job.hpp"
#include "util/rng.hpp"

namespace hemo::check {

/// Uniform pick from a non-empty list.
template <typename T>
[[nodiscard]] const T& pick(Xoshiro256& rng, const std::vector<T>& items) {
  HEMO_REQUIRE(!items.empty(), "pick from an empty list");
  return items[static_cast<std::size_t>(
      rng.below(static_cast<index_t>(items.size())))];
}

/// The five vessel families the generators sample from.
[[nodiscard]] const std::vector<std::string>& geometry_families();

/// A random small vessel geometry: family plus jittered shape parameters.
/// Sizes are kept test-scale (hundreds to a few thousand fluid points).
[[nodiscard]] geometry::Geometry gen_geometry(Xoshiro256& rng);

/// The CPU instance catalog the oracles run against (every non-GPU,
/// non-hyperthreaded profile of cluster::default_catalog()).
[[nodiscard]] std::vector<const cluster::InstanceProfile*> cpu_catalog();

/// Uniform pick from cpu_catalog().
[[nodiscard]] const cluster::InstanceProfile& gen_cpu_instance(
    Xoshiro256& rng);

/// A batch of `count` campaign jobs against `workload`: randomized step
/// counts, spot tenancy, and ids 1..count.
[[nodiscard]] std::vector<sched::CampaignJobSpec> gen_job_specs(
    Xoshiro256& rng, index_t count, const std::string& workload);

/// A randomized fault-injection mix (nemesis storms): each fault class is
/// enabled with probability 1/2, rates drawn in ranges that reliably
/// force requeues at test scale while still letting most jobs finish.
[[nodiscard]] sched::FaultInjection gen_fault_injection(Xoshiro256& rng);

/// Random model parameters in physically plausible ranges (used to test
/// fit recovery and oracle tolerance logic against known ground truth).
[[nodiscard]] fit::TwoLineModel gen_two_line_model(Xoshiro256& rng);
[[nodiscard]] fit::CommModel gen_comm_model(Xoshiro256& rng);
[[nodiscard]] fit::ImbalanceModel gen_imbalance_model(Xoshiro256& rng);
[[nodiscard]] fit::EventCountModel gen_event_count_model(Xoshiro256& rng);

}  // namespace hemo::check
