#include "check/oracles.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <utility>

#include "check/generators.hpp"
#include "cluster/virtual_cluster.hpp"
#include "core/models.hpp"
#include "geometry/generators.hpp"
#include "lbm/mesh.hpp"
#include "obs/metrics.hpp"
#include "lbm/solver.hpp"
#include "sched/executor.hpp"
#include "sched/report.hpp"
#include "sched/scheduler.hpp"

namespace hemo::check {

namespace {

harvey::Simulation make_sim(geometry::Geometry geo) {
  harvey::SimulationOptions opts;
  opts.solver.tau = 0.8;
  return harvey::Simulation(std::move(geo), opts);
}

std::string format_ratio(real_t value) {
  std::ostringstream os;
  os.precision(4);
  os << value;
  return os.str();
}

}  // namespace

OracleContext OracleContext::make_default() {
  OracleContext ctx;
  const std::vector<index_t> cal_counts = {2, 4, 8, 16, 32, 64};

  const auto add = [&](const std::string& name, geometry::Geometry geo) {
    Workload w;
    w.name = name;
    w.sim = std::make_unique<harvey::Simulation>(make_sim(std::move(geo)));
    w.calibration =
        core::calibrate_workload(*w.sim, cal_counts, ctx.tasks_per_node);
    ctx.workloads.push_back(std::move(w));
  };
  add("cylinder", geometry::make_cylinder({.radius = 7, .length = 48}));
  add("aorta", geometry::make_aorta({.vessel_radius = 5.0,
                                     .arch_radius = 15.0,
                                     .height = 60,
                                     .branch_radius = 2.2}));
  add("cerebral", geometry::make_cerebral(
                      {.root_radius = 4.0, .depth = 4,
                       .segment_length = 18.0}));

  for (const cluster::InstanceProfile* p : cpu_catalog()) {
    ctx.calibrations.emplace(p->abbrev, core::calibrate_instance(*p));
  }
  return ctx;
}

namespace {

Property<ModelCase> model_case_property(OracleContext& ctx,
                                        const std::string& name) {
  Property<ModelCase> property;
  property.name = name;
  property.generate = [&ctx](Xoshiro256& rng) {
    ModelCase c;
    c.workload = rng.below(static_cast<index_t>(ctx.workloads.size()));
    c.instance = pick(rng, cpu_catalog())->abbrev;
    c.n_tasks = pick(rng, ctx.task_counts);
    c.day = rng.below(7);
    c.hour = rng.below(24);
    c.slot = rng.below(4);
    return c;
  };
  property.describe = [&ctx](const ModelCase& c) {
    std::ostringstream os;
    os << "workload=" << ctx.workloads[static_cast<std::size_t>(c.workload)].name
       << " instance=" << c.instance << " n_tasks=" << c.n_tasks
       << " when=" << c.day << '/' << c.hour << '/' << c.slot;
    return os.str();
  };
  property.shrink = [&ctx](const ModelCase& c) {
    std::vector<ModelCase> out;
    for (const index_t n : ctx.task_counts) {
      if (n >= c.n_tasks) break;  // task_counts is ascending
      ModelCase s = c;
      s.n_tasks = n;
      out.push_back(std::move(s));
    }
    if (c.workload != 0) {
      ModelCase s = c;
      s.workload = 0;
      out.push_back(std::move(s));
    }
    return out;
  };
  return property;
}

}  // namespace

PropertyResult oracle_model_agreement(OracleContext& ctx,
                                      const PropertyConfig& config) {
  Property<ModelCase> property =
      model_case_property(ctx, "model_agreement(general/direct)");
  property.check = [&ctx](const ModelCase& c) -> std::optional<std::string> {
    auto& w = ctx.workloads[static_cast<std::size_t>(c.workload)];
    const core::InstanceCalibration& cal = ctx.calibrations.at(c.instance);
    const auto& plan = w.sim->plan(c.n_tasks, ctx.tasks_per_node);
    const core::ModelPrediction direct = core::predict_direct(plan, cal);
    const core::ModelPrediction general = core::predict_general(
        w.calibration, cal, c.n_tasks, ctx.tasks_per_node);
    const real_t ratio = general.step_seconds / direct.step_seconds;
    if (ratio < kAgreementLow || ratio > kAgreementHigh) {
      return "general/direct step-time ratio " + format_ratio(ratio) +
             " outside [" + format_ratio(kAgreementLow) + ", " +
             format_ratio(kAgreementHigh) + "]";
    }
    return std::nullopt;
  };
  return run_property(property, config);
}

PropertyResult oracle_model_vs_measurement(OracleContext& ctx,
                                           const PropertyConfig& config) {
  Property<ModelCase> property =
      model_case_property(ctx, "model_vs_measurement(measured/direct)");
  property.check = [&ctx](const ModelCase& c) -> std::optional<std::string> {
    auto& w = ctx.workloads[static_cast<std::size_t>(c.workload)];
    const core::InstanceCalibration& cal = ctx.calibrations.at(c.instance);
    const auto& plan = w.sim->plan(c.n_tasks, ctx.tasks_per_node);
    const core::ModelPrediction direct = core::predict_direct(plan, cal);
    const cluster::VirtualCluster vc(cluster::instance_by_abbrev(c.instance));
    const cluster::ExecutionResult measured =
        vc.execute(plan, 25, {c.day, c.hour, c.slot});
    const real_t ratio = measured.step_seconds / direct.step_seconds;
    if (ratio < kMeasuredLow || ratio > kMeasuredHigh) {
      return "measured/direct step-time ratio " + format_ratio(ratio) +
             " outside [" + format_ratio(kMeasuredLow) + ", " +
             format_ratio(kMeasuredHigh) + "]";
    }
    return std::nullopt;
  };
  return run_property(property, config);
}

namespace {

/// Sampled solver-vs-analytic case.
struct PoiseuilleCase {
  index_t radius = 4;
  index_t length = 12;
  real_t tau = 0.9;
  real_t force = 1e-5;
};

}  // namespace

PropertyResult oracle_poiseuille(const PropertyConfig& config) {
  Property<PoiseuilleCase> property;
  property.name = "solver_vs_analytic(poiseuille)";
  property.generate = [](Xoshiro256& rng) {
    PoiseuilleCase c;
    c.radius = 5 + rng.below(2);                 // 5..6 voxels (below 5 the
                                                 // staircase bias exceeds
                                                 // the slope tolerance)
    c.length = 10 + 2 * rng.below(3);            // 10/12/14 voxels
    c.tau = 0.8 + 0.1 * static_cast<real_t>(rng.below(3));  // 0.8..1.0
    c.force = rng.uniform(6e-6, 2e-5);
    return c;
  };
  property.describe = [](const PoiseuilleCase& c) {
    std::ostringstream os;
    os << "radius=" << c.radius << " length=" << c.length << " tau=" << c.tau
       << " force=" << c.force;
    return os.str();
  };
  property.shrink = [](const PoiseuilleCase& c) {
    std::vector<PoiseuilleCase> out;
    if (c.radius > 5) {
      PoiseuilleCase s = c;
      s.radius = 5;
      out.push_back(s);
    }
    if (c.length > 10) {
      PoiseuilleCase s = c;
      s.length = 10;
      out.push_back(s);
    }
    return out;
  };
  property.check = [](const PoiseuilleCase& c) -> std::optional<std::string> {
    const auto geo = geometry::make_periodic_cylinder(
        {.radius = c.radius, .length = c.length});
    lbm::MeshOptions mesh_options;
    mesh_options.periodic_z = true;
    const lbm::FluidMesh mesh = lbm::FluidMesh::build(geo.grid, mesh_options);

    lbm::SolverParams params;
    params.tau = c.tau;
    params.body_force = {0.0, 0.0, c.force};
    lbm::Solver<double> solver(mesh, params, {});
    const real_t mass0 = solver.total_mass();
    solver.run(3500);

    const real_t drift = std::abs(solver.total_mass() - mass0) / mass0;
    if (drift > kMassDriftTol) {
      return "mass drift " + format_ratio(drift) + " exceeds " +
             format_ratio(kMassDriftTol);
    }

    // Fit u against r^2 on one z-plane; the slope must equal -F / (4 nu)
    // and the zero crossing must sit near the nominal radius.
    const real_t nu = lbm::viscosity_from_tau(params.tau);
    const real_t center = static_cast<real_t>(geo.grid.nx() - 1) / 2.0;
    const index_t plane = c.length / 2;
    real_t sx = 0, sy = 0, sxx = 0, sxy = 0, n = 0;
    for (index_t p = 0; p < mesh.num_points(); ++p) {
      const auto& v = mesh.voxel(p);
      if (v.z != plane) continue;
      const real_t dx = static_cast<real_t>(v.x) - center;
      const real_t dy = static_cast<real_t>(v.y) - center;
      const real_t r2 = dx * dx + dy * dy;
      const real_t u = solver.moments_at(p).uz;
      sx += r2;
      sy += u;
      sxx += r2 * r2;
      sxy += r2 * u;
      n += 1.0;
    }
    const real_t slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    const real_t intercept = (sy - slope * sx) / n;
    const real_t expected = -c.force / (4.0 * nu);
    if (std::abs(slope - expected) > std::abs(expected) * kPoiseuilleSlopeTol) {
      return "profile slope " + format_ratio(slope) + " vs analytic " +
             format_ratio(expected) + " beyond " +
             format_ratio(kPoiseuilleSlopeTol * 100.0) + " %";
    }
    const real_t reff = std::sqrt(-intercept / slope);
    const real_t nominal = static_cast<real_t>(c.radius);
    if (reff < nominal - kPoiseuilleRadiusSlack ||
        reff > nominal + kPoiseuilleRadiusSlack) {
      return "effective radius " + format_ratio(reff) +
             " outside nominal " + format_ratio(nominal) + " +- " +
             format_ratio(kPoiseuilleRadiusSlack);
    }
    return std::nullopt;
  };
  return run_property(property, config);
}

namespace {

/// Sampled campaign case shared by the scheduler oracles.
struct CampaignCase {
  std::vector<sched::CampaignJobSpec> jobs;
  std::uint64_t engine_seed = 0;
  sched::FaultInjection faults;  ///< all-off for the invariance oracle
};

std::string describe_campaign(const CampaignCase& c) {
  std::ostringstream os;
  os << "jobs=" << c.jobs.size() << " seed=" << c.engine_seed << " steps=[";
  for (std::size_t i = 0; i < c.jobs.size(); ++i) {
    os << (i ? "," : "") << c.jobs[i].timesteps
       << (c.jobs[i].allow_spot ? "s" : "");
  }
  os << ']';
  if (c.faults.any()) {
    os << " faults{x" << c.faults.slowdown_factor << ",p"
       << c.faults.extra_preemption_probability << ",c"
       << c.faults.checkpoint_corruption_rate << '}';
  }
  return os.str();
}

std::vector<CampaignCase> shrink_campaign(const CampaignCase& c) {
  std::vector<CampaignCase> out;
  if (c.jobs.size() > 1) {
    CampaignCase s = c;
    s.jobs.pop_back();
    out.push_back(std::move(s));
  }
  return out;
}

/// A fresh scheduler over the small two-pool test cluster. Campaign
/// oracles must rebuild it per run: the refinement tracker is shared
/// mutable campaign state, and replay comparisons need a cold start.
std::unique_ptr<sched::CampaignScheduler> make_check_scheduler(
    real_t guard_tolerance, real_t preemptions_per_hour) {
  sched::SchedulerConfig config;
  config.core_counts = {8, 16, 32};
  config.guard_tolerance = guard_tolerance;
  config.pilot_steps = 120;
  config.spot.preemptions_per_hour = units::PerHour(preemptions_per_hour);
  auto scheduler = std::make_unique<sched::CampaignScheduler>(
      std::vector<const cluster::InstanceProfile*>{
          &cluster::instance_by_abbrev("CSP-1"),
          &cluster::instance_by_abbrev("CSP-2 Small")},
      config);
  const std::vector<index_t> cal_counts = {2, 4, 8};
  scheduler->register_workload(
      "cylinder", geometry::make_cylinder({.radius = 6, .length = 40}),
      cal_counts);
  return scheduler;
}

std::string run_check_campaign(const CampaignCase& c,
                               std::vector<sched::CampaignJobSpec> jobs,
                               index_t n_workers, real_t guard_tolerance,
                               real_t preemptions_per_hour,
                               sched::CampaignReport* out = nullptr) {
  auto scheduler =
      make_check_scheduler(guard_tolerance, preemptions_per_hour);
  sched::EngineConfig engine_config;
  engine_config.n_workers = n_workers;
  engine_config.seed = c.engine_seed;
  engine_config.faults = c.faults;
  sched::CampaignEngine engine(*scheduler, engine_config);
  sched::CampaignReport report = engine.run(std::move(jobs));
  std::string csv = report.to_csv();
  if (out) *out = std::move(report);
  return csv;
}

}  // namespace

PropertyResult oracle_scheduler_invariance(const PropertyConfig& config) {
  Property<CampaignCase> property;
  property.name = "scheduler_invariance(workers,order)";
  property.generate = [](Xoshiro256& rng) {
    CampaignCase c;
    c.jobs = gen_job_specs(rng, 3 + rng.below(4), "cylinder");
    c.engine_seed = rng.next();
    return c;
  };
  property.describe = describe_campaign;
  property.shrink = shrink_campaign;
  property.check = [](const CampaignCase& c) -> std::optional<std::string> {
    const real_t tol = 0.25, spot_rate = 8.0;
    const std::string base = run_check_campaign(c, c.jobs, 1, tol, spot_rate);
    const std::string more = run_check_campaign(c, c.jobs, 3, tol, spot_rate);
    if (base != more) {
      return "report differs between 1 and 3 workers";
    }
    std::vector<sched::CampaignJobSpec> reversed(c.jobs.rbegin(),
                                                 c.jobs.rend());
    const std::string permuted =
        run_check_campaign(c, std::move(reversed), 2, tol, spot_rate);
    if (base != permuted) {
      return "report differs under permuted job submission order";
    }
    return std::nullopt;
  };
  return run_property(property, config);
}

PropertyResult oracle_fault_recovery(const PropertyConfig& config) {
  Property<CampaignCase> property;
  property.name = "fault_recovery(consistent report)";
  property.generate = [](Xoshiro256& rng) {
    CampaignCase c;
    c.jobs = gen_job_specs(rng, 3 + rng.below(3), "cylinder");
    c.engine_seed = rng.next();
    if (rng.uniform() < 0.5) {
      c.faults.slowdown_factor = rng.uniform(1.4, 1.8);
    }
    if (rng.uniform() < 0.5) {
      c.faults.extra_preemption_probability = rng.uniform(0.05, 0.3);
    }
    if (rng.uniform() < 0.5) {
      c.faults.checkpoint_corruption_rate = rng.uniform(0.1, 0.5);
    }
    if (!c.faults.any()) c.faults.slowdown_factor = 1.5;
    if (c.faults.slowdown_factor >= 1.4) {
      // Spot pricing folds expected preemption losses into the predicted
      // wall time (the 120 s restart overhead dwarfs these sub-second
      // jobs), widening the guard band far past the injected slowdown.
      // Keep slowdown campaigns on-demand so the overrun invariant below
      // tests the pace guard, not the spot-pricing slack.
      for (auto& job : c.jobs) job.allow_spot = false;
    }
    return c;
  };
  property.describe = describe_campaign;
  property.shrink = shrink_campaign;
  property.check = [](const CampaignCase& c) -> std::optional<std::string> {
    const real_t tol = 0.25, spot_rate = 20.0;
    sched::CampaignReport report;
    const std::string first =
        run_check_campaign(c, c.jobs, 2, tol, spot_rate, &report);
    const std::string replay = run_check_campaign(c, c.jobs, 2, tol,
                                                  spot_rate);
    if (first != replay) {
      return "faulted campaign does not replay byte-identically";
    }
    if (report.n_completed + report.n_failed != report.n_jobs) {
      return "jobs unaccounted for: " + std::to_string(report.n_completed) +
             " completed + " + std::to_string(report.n_failed) +
             " failed != " + std::to_string(report.n_jobs);
    }
    for (const sched::JobReportRow& row : report.jobs) {
      if (row.state != sched::JobState::kCompleted &&
          row.state != sched::JobState::kFailed) {
        return "job " + std::to_string(row.id) +
               " left in a non-terminal state";
      }
      if (row.state == sched::JobState::kCompleted && row.attempts < 1) {
        return "completed job " + std::to_string(row.id) + " with 0 attempts";
      }
    }
    if (c.faults.checkpoint_corruption_rate == 0.0 &&
        report.total_corruptions != 0) {
      return "corruption counter nonzero without injected corruption";
    }
    if (c.faults.slowdown_factor >= 1.4 && report.total_overruns < 1) {
      return "slowdown x" + format_ratio(c.faults.slowdown_factor) +
             " never tripped the overrun guard";
    }
    if (report.n_completed > 0 && !(report.total_dollars.value() > 0.0)) {
      return "completed work with zero cost";
    }
    return std::nullopt;
  };
  return run_property(property, config);
}

std::vector<PropertyResult> run_all_oracles(OracleContext& ctx,
                                            const PropertyConfig& config) {
  const auto scaled = [&config](index_t divisor) {
    PropertyConfig c = config;
    c.cases = std::max<index_t>(2, config.cases / divisor);
    return c;
  };
  std::vector<PropertyResult> results;
  // Wall-time per oracle lands in the registry (not in PropertyResult,
  // whose contents stay a pure function of the seed) so `hemocloud_cli
  // check` can report where the time went.
  const auto timed = [&results](auto&& oracle) {
    const auto t0 = std::chrono::steady_clock::now();
    PropertyResult r = oracle();
    const std::chrono::duration<real_t> dt =
        std::chrono::steady_clock::now() - t0;
    obs::MetricsRegistry::global().set("check_oracle_wall_seconds",
                                       dt.count(), {{"oracle", r.name}});
    results.push_back(std::move(r));
  };
  timed([&] { return oracle_model_agreement(ctx, config); });
  timed([&] { return oracle_model_vs_measurement(ctx, config); });
  timed([&] { return oracle_poiseuille(scaled(10)); });
  timed([&] { return oracle_scheduler_invariance(scaled(16)); });
  timed([&] { return oracle_fault_recovery(scaled(10)); });
  return results;
}

}  // namespace hemo::check
