// Mutation self-test: proof that the differential oracles have teeth.
//
// A tolerance-band oracle is only trustworthy if a genuinely wrong model
// would fail it. This suite perturbs one fitted coefficient at a time —
// directly in the OracleContext's calibrations, exactly where a fitting
// bug would land — and asserts the matching oracle now FAILS, then
// restores the coefficient and asserts the oracles pass again.
//
// The mutations are routed to the oracle that can structurally see them:
//  * memory slope a2 feeds both predictors identically (through
//    task_bandwidth_bytes_per_s), so model *agreement* is blind to it;
//    only the model-vs-MEASUREMENT oracle (virtual cluster uses the
//    profile's ground truth, not the fit) catches it;
//  * the fitted communication law (b, l) and the workload laws (k1, c1,
//    serial_bytes) feed only the generalized model — the direct model
//    reads raw PingPong tables and exact per-task byte counts — so the
//    model-AGREEMENT oracle catches those.
// Mutation factors are sized to the laws' sensitivity: k1 sits inside a
// log2, so it needs a far larger factor than the linear coefficients.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "check/oracles.hpp"
#include "sched/history.hpp"

namespace hemo::check {

/// One mutation's outcome.
struct MutationOutcome {
  std::string coefficient;  ///< e.g. "memory.a2 x4"
  std::string oracle;       ///< oracle expected to catch it
  bool detected = false;    ///< the oracle failed under the mutation
  std::string detail;       ///< the failing case (evidence), or why not
};

/// The whole suite's outcome.
struct MutationReport {
  /// Both model oracles pass on the unmutated context (precondition).
  bool baseline_passed = false;
  /// Both model oracles pass again after every mutation was restored.
  bool restored_passed = false;
  std::vector<MutationOutcome> outcomes;

  /// True when the baseline held, every mutation was detected, and the
  /// restore round-tripped.
  [[nodiscard]] bool all_detected() const;

  /// Multi-line human rendering.
  [[nodiscard]] std::string summary() const;
};

/// Runs every mutation against `ctx`. The context is perturbed in place
/// and restored before returning (also on the error path of a throwing
/// oracle). `config.cases` model-oracle cases are run per mutation.
[[nodiscard]] MutationReport run_mutation_suite(OracleContext& ctx,
                                                const PropertyConfig& config);

/// One executor-protocol mutation: a seeded corruption of a recorded
/// ProtocolHistory that the nemesis invariant checker must flag. This is
/// the same every-check-has-teeth argument as the coefficient mutations
/// above, aimed at specs/executor_protocol.md: each protocol invariant
/// has at least one mutant here that only it kills.
struct ProtocolMutation {
  std::string name;       ///< e.g. "drop_requeue"
  std::string invariant;  ///< stable id the checker must flag ("S1", ...)
  /// Corrupts `history` in place; returns false when the history has no
  /// suitable event (the caller should pick a busier seeded run).
  /// `max_attempts` mirrors the engine limit the checker is handed.
  std::function<bool(sched::ProtocolHistory& history, index_t max_attempts)>
      apply;
};

/// The protocol-mutation catalog. Covers every history-checkable
/// invariant: drop_requeue (S1), double_charge (C1), skip_restore (K1),
/// drop_terminal + duplicate_terminal (E1), time_warp (T1),
/// requeue_past_attempt_limit (A1), phantom_fault (H1 — detected by the
/// history-vs-trace cross-check, not check_history).
[[nodiscard]] const std::vector<ProtocolMutation>& protocol_mutations();

}  // namespace hemo::check
