// Deterministic property-based testing framework.
//
// A Property<T> bundles a generator (case input from a seeded RNG stream),
// a checker (std::nullopt = pass, message = fail), a describer (rendering a
// counterexample for humans), and an optional shrinker (smaller candidate
// inputs, most-aggressive first). run_property drives `cases` generated
// inputs from per-case seeds hash_seed(config.seed, case_index) — so a
// failure replays exactly from (seed, case index) alone — and on the first
// failure greedily shrinks: among the shrink candidates that still fail, the
// first is adopted and shrinking restarts from it, until no candidate fails
// or the step budget runs out. The survivor is the minimal counterexample
// reported.
//
// Everything is deterministic: no wall clock, no global state; the same
// PropertyConfig yields byte-identical PropertyResults (asserted by
// tests/test_check.cpp and required for HEMO_SEED shell replay).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "util/common.hpp"
#include "util/rng.hpp"

namespace hemo::check {

/// Shared knobs of a property run.
struct PropertyConfig {
  /// Stream seed; defaults to the process seed so `HEMO_SEED=... ctest`
  /// replays every suite from the shell.
  std::uint64_t seed = global_seed();
  index_t cases = 50;
  index_t max_shrink_steps = 200;
};

/// Outcome of one property run.
struct PropertyResult {
  std::string name;
  bool passed = true;
  index_t cases_run = 0;

  // Failure details (meaningful only when !passed):
  index_t failing_case = -1;     ///< case index whose input failed
  std::uint64_t failing_seed = 0;///< hash_seed(config.seed, failing_case)
  index_t shrink_steps = 0;      ///< accepted shrinks to the minimum
  std::string counterexample;    ///< describe(minimal failing input)
  std::string failure;           ///< check's message for that input

  /// One-line rendering for reports and gtest messages.
  [[nodiscard]] std::string summary() const {
    if (passed) {
      return name + ": OK (" + std::to_string(cases_run) + " cases)";
    }
    return name + ": FAIL at case " + std::to_string(failing_case) +
           " (seed " + std::to_string(failing_seed) + ", " +
           std::to_string(shrink_steps) + " shrinks) input {" +
           counterexample + "}: " + failure;
  }
};

/// A property over inputs of type T.
template <typename T>
struct Property {
  std::string name;
  std::function<T(Xoshiro256&)> generate;
  std::function<std::optional<std::string>(const T&)> check;
  std::function<std::string(const T&)> describe;
  /// Smaller candidates of a failing input, most-aggressive first; null or
  /// empty-returning disables shrinking.
  std::function<std::vector<T>(const T&)> shrink;
};

template <typename T>
[[nodiscard]] PropertyResult run_property(const Property<T>& property,
                                          const PropertyConfig& config) {
  HEMO_REQUIRE(property.generate && property.check && property.describe,
               "property needs generate/check/describe callbacks");
  HEMO_REQUIRE(config.cases >= 1, "property run needs at least one case");

  PropertyResult result;
  result.name = property.name;
  for (index_t i = 0; i < config.cases; ++i) {
    const std::uint64_t case_seed =
        hash_seed(config.seed, static_cast<std::uint64_t>(i));
    Xoshiro256 rng(case_seed);
    T input = property.generate(rng);
    std::optional<std::string> failure = property.check(input);
    ++result.cases_run;
    if (!failure) continue;

    // Greedy shrink: adopt the first still-failing candidate, restart.
    index_t budget = config.max_shrink_steps;
    if (property.shrink) {
      bool advanced = true;
      while (advanced && budget > 0) {
        advanced = false;
        for (T& candidate : property.shrink(input)) {
          const std::optional<std::string> f = property.check(candidate);
          if (!f) continue;
          input = std::move(candidate);
          failure = std::move(f);
          ++result.shrink_steps;
          --budget;
          advanced = true;
          break;
        }
      }
    }

    result.passed = false;
    result.failing_case = i;
    result.failing_seed = case_seed;
    result.counterexample = property.describe(input);
    result.failure = *failure;
    return result;
  }
  return result;
}

}  // namespace hemo::check
