#include "check/mutation.hpp"

#include <functional>
#include <sstream>
#include <utility>

namespace hemo::check {

bool MutationReport::all_detected() const {
  if (!baseline_passed || !restored_passed) return false;
  for (const MutationOutcome& o : outcomes) {
    if (!o.detected) return false;
  }
  return true;
}

std::string MutationReport::summary() const {
  std::ostringstream os;
  os << "mutation self-test: baseline "
     << (baseline_passed ? "passed" : "FAILED") << '\n';
  for (const MutationOutcome& o : outcomes) {
    os << "  " << o.coefficient << " -> " << o.oracle << ": "
       << (o.detected ? "detected" : "NOT DETECTED") << " (" << o.detail
       << ")\n";
  }
  os << "  restore: " << (restored_passed ? "passed" : "FAILED") << '\n';
  return os.str();
}

namespace {

/// Snapshot of everything the mutations may touch.
struct Saved {
  std::map<std::string, core::InstanceCalibration> calibrations;
  std::vector<core::WorkloadCalibration> workload_calibrations;

  explicit Saved(const OracleContext& ctx) : calibrations(ctx.calibrations) {
    workload_calibrations.reserve(ctx.workloads.size());
    for (const auto& w : ctx.workloads) {
      workload_calibrations.push_back(w.calibration);
    }
  }

  void restore(OracleContext& ctx) const {
    ctx.calibrations = calibrations;
    for (std::size_t i = 0; i < ctx.workloads.size(); ++i) {
      ctx.workloads[i].calibration = workload_calibrations[i];
    }
  }
};

struct Mutation {
  std::string coefficient;
  std::string oracle;
  std::function<void(OracleContext&)> apply;
};

std::vector<Mutation> mutation_catalog() {
  std::vector<Mutation> muts;
  const auto each_instance =
      [](OracleContext& ctx,
         const std::function<void(core::InstanceCalibration&)>& f) {
        for (auto& [abbrev, cal] : ctx.calibrations) f(cal);
      };
  const auto each_workload =
      [](OracleContext& ctx,
         const std::function<void(core::WorkloadCalibration&)>& f) {
        for (auto& w : ctx.workloads) f(w.calibration);
      };

  // Factors are sized from a full-grid sensitivity probe so that >= 20 %
  // of all (workload, instance, n_tasks) cases leave the band — detection
  // then does not depend on which cases the seed happens to sample:
  //  * a2 enters B(n) = a1*a3 + a2*(n - a3), so at n ~ 16 threads a x16
  //    factor is needed to move the node bandwidth by ~2x;
  //  * b appears as bytes/b against a latency-dominated total (the
  //    paper's Fig. 10 regime), so only a units-scale error shows;
  //  * k1 sits inside Eq. 15's log2 (x32 factor);
  //  * c1 is tiny on RCB-balanced partitions (z - 1 of a few percent), so
  //    the z factor needs x128 before the memory term visibly inflates.
  muts.push_back({"memory.a2 x16", "model_vs_measurement",
                  [each_instance](OracleContext& ctx) {
                    each_instance(ctx, [](core::InstanceCalibration& c) {
                      c.memory.a2 *= 16.0;
                    });
                  }});
  muts.push_back({"comm.bandwidth x0.002", "model_agreement",
                  [each_instance](OracleContext& ctx) {
                    each_instance(ctx, [](core::InstanceCalibration& c) {
                      c.inter.bandwidth *= 0.002;
                      c.intra.bandwidth *= 0.002;
                    });
                  }});
  muts.push_back({"comm.latency x20", "model_agreement",
                  [each_instance](OracleContext& ctx) {
                    each_instance(ctx, [](core::InstanceCalibration& c) {
                      c.inter.latency *= 20.0;
                      c.intra.latency *= 20.0;
                    });
                  }});
  muts.push_back({"events.k1 x32", "model_agreement",
                  [each_workload](OracleContext& ctx) {
                    each_workload(ctx, [](core::WorkloadCalibration& c) {
                      c.events.k1 *= 32.0;
                    });
                  }});
  muts.push_back({"imbalance.c1 x128", "model_agreement",
                  [each_workload](OracleContext& ctx) {
                    each_workload(ctx, [](core::WorkloadCalibration& c) {
                      c.imbalance.c1 *= 128.0;
                    });
                  }});
  muts.push_back({"serial_bytes x5", "model_agreement",
                  [each_workload](OracleContext& ctx) {
                    each_workload(ctx, [](core::WorkloadCalibration& c) {
                      c.serial_bytes *= 5.0;
                    });
                  }});
  return muts;
}

PropertyResult run_target(const std::string& oracle, OracleContext& ctx,
                          const PropertyConfig& config) {
  if (oracle == "model_vs_measurement") {
    return oracle_model_vs_measurement(ctx, config);
  }
  return oracle_model_agreement(ctx, config);
}

}  // namespace

MutationReport run_mutation_suite(OracleContext& ctx,
                                  const PropertyConfig& config) {
  MutationReport report;
  const Saved saved(ctx);

  report.baseline_passed = oracle_model_agreement(ctx, config).passed &&
                           oracle_model_vs_measurement(ctx, config).passed;

  for (const Mutation& mutation : mutation_catalog()) {
    MutationOutcome outcome;
    outcome.coefficient = mutation.coefficient;
    outcome.oracle = mutation.oracle;
    try {
      mutation.apply(ctx);
      const PropertyResult result = run_target(mutation.oracle, ctx, config);
      outcome.detected = !result.passed;
      outcome.detail = result.passed
                           ? "oracle still passed " +
                                 std::to_string(result.cases_run) + " cases"
                           : result.summary();
    } catch (...) {
      saved.restore(ctx);
      throw;
    }
    saved.restore(ctx);
    report.outcomes.push_back(std::move(outcome));
  }

  report.restored_passed = oracle_model_agreement(ctx, config).passed &&
                           oracle_model_vs_measurement(ctx, config).passed;
  return report;
}

}  // namespace hemo::check
