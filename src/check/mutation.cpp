#include "check/mutation.hpp"

#include <algorithm>
#include <functional>
#include <sstream>
#include <utility>

namespace hemo::check {

bool MutationReport::all_detected() const {
  if (!baseline_passed || !restored_passed) return false;
  for (const MutationOutcome& o : outcomes) {
    if (!o.detected) return false;
  }
  return true;
}

std::string MutationReport::summary() const {
  std::ostringstream os;
  os << "mutation self-test: baseline "
     << (baseline_passed ? "passed" : "FAILED") << '\n';
  for (const MutationOutcome& o : outcomes) {
    os << "  " << o.coefficient << " -> " << o.oracle << ": "
       << (o.detected ? "detected" : "NOT DETECTED") << " (" << o.detail
       << ")\n";
  }
  os << "  restore: " << (restored_passed ? "passed" : "FAILED") << '\n';
  return os.str();
}

namespace {

/// Snapshot of everything the mutations may touch.
struct Saved {
  std::map<std::string, core::InstanceCalibration> calibrations;
  std::vector<core::WorkloadCalibration> workload_calibrations;

  explicit Saved(const OracleContext& ctx) : calibrations(ctx.calibrations) {
    workload_calibrations.reserve(ctx.workloads.size());
    for (const auto& w : ctx.workloads) {
      workload_calibrations.push_back(w.calibration);
    }
  }

  void restore(OracleContext& ctx) const {
    ctx.calibrations = calibrations;
    for (std::size_t i = 0; i < ctx.workloads.size(); ++i) {
      ctx.workloads[i].calibration = workload_calibrations[i];
    }
  }
};

struct Mutation {
  std::string coefficient;
  std::string oracle;
  std::function<void(OracleContext&)> apply;
};

std::vector<Mutation> mutation_catalog() {
  std::vector<Mutation> muts;
  const auto each_instance =
      [](OracleContext& ctx,
         const std::function<void(core::InstanceCalibration&)>& f) {
        for (auto& [abbrev, cal] : ctx.calibrations) f(cal);
      };
  const auto each_workload =
      [](OracleContext& ctx,
         const std::function<void(core::WorkloadCalibration&)>& f) {
        for (auto& w : ctx.workloads) f(w.calibration);
      };

  // Factors are sized from a full-grid sensitivity probe so that >= 20 %
  // of all (workload, instance, n_tasks) cases leave the band — detection
  // then does not depend on which cases the seed happens to sample:
  //  * a2 enters B(n) = a1*a3 + a2*(n - a3), so at n ~ 16 threads a x16
  //    factor is needed to move the node bandwidth by ~2x;
  //  * b appears as bytes/b against a latency-dominated total (the
  //    paper's Fig. 10 regime), so only a units-scale error shows;
  //  * k1 sits inside Eq. 15's log2 (x32 factor);
  //  * c1 is tiny on RCB-balanced partitions (z - 1 of a few percent), so
  //    the z factor needs x128 before the memory term visibly inflates.
  muts.push_back({"memory.a2 x16", "model_vs_measurement",
                  [each_instance](OracleContext& ctx) {
                    each_instance(ctx, [](core::InstanceCalibration& c) {
                      c.memory.a2 *= 16.0;
                    });
                  }});
  muts.push_back({"comm.bandwidth x0.002", "model_agreement",
                  [each_instance](OracleContext& ctx) {
                    each_instance(ctx, [](core::InstanceCalibration& c) {
                      c.inter.bandwidth *= 0.002;
                      c.intra.bandwidth *= 0.002;
                    });
                  }});
  muts.push_back({"comm.latency x20", "model_agreement",
                  [each_instance](OracleContext& ctx) {
                    each_instance(ctx, [](core::InstanceCalibration& c) {
                      c.inter.latency *= 20.0;
                      c.intra.latency *= 20.0;
                    });
                  }});
  muts.push_back({"events.k1 x32", "model_agreement",
                  [each_workload](OracleContext& ctx) {
                    each_workload(ctx, [](core::WorkloadCalibration& c) {
                      c.events.k1 *= 32.0;
                    });
                  }});
  muts.push_back({"imbalance.c1 x128", "model_agreement",
                  [each_workload](OracleContext& ctx) {
                    each_workload(ctx, [](core::WorkloadCalibration& c) {
                      c.imbalance.c1 *= 128.0;
                    });
                  }});
  muts.push_back({"serial_bytes x5", "model_agreement",
                  [each_workload](OracleContext& ctx) {
                    each_workload(ctx, [](core::WorkloadCalibration& c) {
                      c.serial_bytes *= 5.0;
                    });
                  }});
  return muts;
}

PropertyResult run_target(const std::string& oracle, OracleContext& ctx,
                          const PropertyConfig& config) {
  if (oracle == "model_vs_measurement") {
    return oracle_model_vs_measurement(ctx, config);
  }
  return oracle_model_agreement(ctx, config);
}

}  // namespace

MutationReport run_mutation_suite(OracleContext& ctx,
                                  const PropertyConfig& config) {
  MutationReport report;
  const Saved saved(ctx);

  report.baseline_passed = oracle_model_agreement(ctx, config).passed &&
                           oracle_model_vs_measurement(ctx, config).passed;

  for (const Mutation& mutation : mutation_catalog()) {
    MutationOutcome outcome;
    outcome.coefficient = mutation.coefficient;
    outcome.oracle = mutation.oracle;
    try {
      mutation.apply(ctx);
      const PropertyResult result = run_target(mutation.oracle, ctx, config);
      outcome.detected = !result.passed;
      outcome.detail = result.passed
                           ? "oracle still passed " +
                                 std::to_string(result.cases_run) + " cases"
                           : result.summary();
    } catch (...) {
      saved.restore(ctx);
      throw;
    }
    saved.restore(ctx);
    report.outcomes.push_back(std::move(outcome));
  }

  report.restored_passed = oracle_model_agreement(ctx, config).passed &&
                           oracle_model_vs_measurement(ctx, config).passed;
  return report;
}

namespace {

using sched::ProtocolEvent;
using sched::ProtocolEventKind;

bool is_terminal(ProtocolEventKind kind) {
  return kind == ProtocolEventKind::kCompleted ||
         kind == ProtocolEventKind::kFailed;
}

/// First event index satisfying `pred`, -1 when none.
template <typename Pred>
index_t find_event(const sched::ProtocolHistory& history, Pred pred) {
  for (std::size_t i = 0; i < history.events.size(); ++i) {
    if (pred(history.events[i])) return static_cast<index_t>(i);
  }
  return -1;
}

/// Latest virtual time in the history; appended events use it so a
/// mutation aimed at one invariant does not also run the clock backwards.
units::Seconds latest_time(const sched::ProtocolHistory& history) {
  units::Seconds t;
  for (const ProtocolEvent& e : history.events) t = std::max(t, e.at_s);
  return t;
}

void erase_event(sched::ProtocolHistory& history, index_t index) {
  history.events.erase(history.events.begin() + index);
}

}  // namespace

const std::vector<ProtocolMutation>& protocol_mutations() {
  static const std::vector<ProtocolMutation> catalog = [] {
    std::vector<ProtocolMutation> muts;

    // S1: drop a requeue whose job is placed again later — the next
    // placement now races an attempt the history says is still live.
    muts.push_back(
        {"drop_requeue", "S1",
         [](sched::ProtocolHistory& h, index_t) {
           for (std::size_t i = 0; i < h.events.size(); ++i) {
             if (h.events[i].kind != ProtocolEventKind::kRequeued) continue;
             for (std::size_t j = i + 1; j < h.events.size(); ++j) {
               if (h.events[j].kind == ProtocolEventKind::kPlaced &&
                   h.events[j].job == h.events[i].job) {
                 erase_event(h, static_cast<index_t>(i));
                 return true;
               }
             }
           }
           return false;
         }});

    // C1: apply a settled attempt's cost twice — the cumulative spend no
    // longer equals the placement's spend plus the attempt's delta.
    muts.push_back(
        {"double_charge", "C1",
         [](sched::ProtocolHistory& h, index_t) {
           const index_t i = find_event(h, [](const ProtocolEvent& e) {
             return (e.kind == ProtocolEventKind::kRequeued ||
                     is_terminal(e.kind)) &&
                    e.attempt >= 1 && e.delta_usd.value() > 0.0;
           });
           if (i < 0) return false;
           h.events[static_cast<std::size_t>(i)].usd +=
               h.events[static_cast<std::size_t>(i)].delta_usd;
           return true;
         }});

    // K1: a re-placement resumes one step past the durable checkpoint,
    // fabricating progress that was never computed.
    muts.push_back(
        {"skip_restore", "K1",
         [](sched::ProtocolHistory& h, index_t) {
           const index_t i = find_event(h, [](const ProtocolEvent& e) {
             return e.kind == ProtocolEventKind::kPlaced && e.attempt >= 2;
           });
           if (i < 0) return false;
           h.events[static_cast<std::size_t>(i)].steps += 1;
           return true;
         }});

    // E1: a job's terminal outcome is lost — it ends the campaign in a
    // non-terminal state.
    muts.push_back(
        {"drop_terminal", "E1",
         [](sched::ProtocolHistory& h, index_t) {
           for (std::size_t i = h.events.size(); i-- > 0;) {
             if (is_terminal(h.events[i].kind)) {
               erase_event(h, static_cast<index_t>(i));
               return true;
             }
           }
           return false;
         }});

    // E1: a terminal outcome is delivered twice.
    muts.push_back(
        {"duplicate_terminal", "E1",
         [](sched::ProtocolHistory& h, index_t) {
           const index_t i = find_event(h, [](const ProtocolEvent& e) {
             return is_terminal(e.kind);
           });
           if (i < 0) return false;
           ProtocolEvent copy = h.events[static_cast<std::size_t>(i)];
           copy.at_s = latest_time(h);
           copy.seq = static_cast<index_t>(h.events.size());
           h.events.push_back(std::move(copy));
           return true;
         }});

    // T1: a settlement is stamped before the campaign started — the
    // coordinator clock runs backwards.
    muts.push_back(
        {"time_warp", "T1",
         [](sched::ProtocolHistory& h, index_t) {
           const index_t i = find_event(h, [](const ProtocolEvent& e) {
             return (e.kind == ProtocolEventKind::kRequeued ||
                     is_terminal(e.kind)) &&
                    e.at_s.value() > 0.0;
           });
           if (i < 0) return false;
           h.events[static_cast<std::size_t>(i)].at_s =
               units::Seconds{-1.0};
           return true;
         }});

    // A1: reopen a completed job and requeue it past the attempt bound.
    // The appended cycle keeps steps/spend/ordinals self-consistent so
    // only the attempt bound is violated.
    muts.push_back(
        {"requeue_past_attempt_limit", "A1",
         [](sched::ProtocolHistory& h, index_t max_attempts) {
           const index_t ti = find_event(h, [](const ProtocolEvent& e) {
             return e.kind == ProtocolEventKind::kCompleted;
           });
           if (ti < 0) return false;
           const ProtocolEvent terminal =
               h.events[static_cast<std::size_t>(ti)];
           // The completed attempt's entry checkpoint, for the first
           // requeue's deltas.
           index_t placed_steps = 0;
           real_t placed_usd = 0.0;
           for (index_t i = ti; i-- > 0;) {
             const ProtocolEvent& e = h.events[static_cast<std::size_t>(i)];
             if (e.job == terminal.job &&
                 e.kind == ProtocolEventKind::kPlaced) {
               placed_steps = e.steps;
               placed_usd = e.usd.value();
               break;
             }
           }
           erase_event(h, ti);
           const units::Seconds t = latest_time(h);
           const auto append = [&h, &terminal, t](ProtocolEventKind kind,
                                                  index_t attempt,
                                                  index_t delta_steps,
                                                  real_t delta_usd) {
             ProtocolEvent e;
             e.seq = static_cast<index_t>(h.events.size());
             e.kind = kind;
             e.job = terminal.job;
             e.attempt = attempt;
             e.at_s = t;
             e.steps = terminal.steps;
             e.usd = terminal.usd;
             e.delta_steps = delta_steps;
             e.delta_usd = units::Dollars(delta_usd);
             h.events.push_back(std::move(e));
           };
           index_t attempt = terminal.attempt;
           append(ProtocolEventKind::kRequeued, attempt,
                  terminal.steps - placed_steps,
                  terminal.usd.value() - placed_usd);
           while (attempt < max_attempts) {
             append(ProtocolEventKind::kPlaced, attempt + 1, 0, 0.0);
             ++attempt;
             append(ProtocolEventKind::kRequeued, attempt, 0, 0.0);
           }
           // Close the job again so only A1 (not E1) is violated.
           append(ProtocolEventKind::kFailed, attempt, 0, 0.0);
           return true;
         }});

    // H1: the history claims a preemption the trace never saw.
    muts.push_back(
        {"phantom_fault", "H1",
         [](sched::ProtocolHistory& h, index_t) {
           const index_t i = find_event(h, [](const ProtocolEvent& e) {
             return e.kind == ProtocolEventKind::kPlaced;
           });
           if (i < 0) return false;
           ProtocolEvent e;
           e.seq = static_cast<index_t>(h.events.size());
           e.kind = ProtocolEventKind::kPreemption;
           e.job = h.events[static_cast<std::size_t>(i)].job;
           e.attempt = h.events[static_cast<std::size_t>(i)].attempt;
           e.at_s = latest_time(h);
           e.steps = h.events[static_cast<std::size_t>(i)].steps;
           e.usd = h.events[static_cast<std::size_t>(i)].usd;
           h.events.push_back(std::move(e));
           return true;
         }});

    return muts;
  }();
  return catalog;
}

}  // namespace hemo::check
