#include "check/generators.hpp"

namespace hemo::check {

const std::vector<std::string>& geometry_families() {
  static const std::vector<std::string> families = {
      "cylinder", "aorta", "cerebral", "stenosis", "aneurysm"};
  return families;
}

geometry::Geometry gen_geometry(Xoshiro256& rng) {
  const std::string& family = pick(rng, geometry_families());
  if (family == "cylinder") {
    geometry::CylinderParams p;
    p.radius = 4 + rng.below(5);   // 4..8 voxels
    p.length = 24 + rng.below(41); // 24..64 voxels
    return geometry::make_cylinder(p);
  }
  if (family == "aorta") {
    geometry::AortaParams p;
    p.vessel_radius = rng.uniform(4.0, 7.0);
    p.arch_radius = rng.uniform(14.0, 20.0);
    p.height = 56 + rng.below(25);  // 56..80 voxels
    p.branch_radius = rng.uniform(2.0, 3.0);
    return geometry::make_aorta(p);
  }
  if (family == "cerebral") {
    geometry::CerebralParams p;
    p.root_radius = rng.uniform(3.0, 5.0);
    p.depth = 3 + rng.below(2);  // 3..4 levels
    p.segment_length = rng.uniform(14.0, 22.0);
    p.seed = rng.next();
    return geometry::make_cerebral(p);
  }
  if (family == "stenosis") {
    geometry::StenosisParams p;
    p.radius = 5 + rng.below(4);   // 5..8 voxels
    p.length = 32 + rng.below(25); // 32..56 voxels
    p.severity = rng.uniform(0.3, 0.6);
    p.throat_length = rng.uniform(6.0, 12.0);
    return geometry::make_stenosis(p);
  }
  geometry::AneurysmParams p;
  p.radius = 4 + rng.below(4);   // 4..7 voxels
  p.length = 32 + rng.below(25); // 32..56 voxels
  p.dilation = rng.uniform(0.5, 1.0);
  p.bulge_length = rng.uniform(10.0, 18.0);
  return geometry::make_aneurysm(p);
}

std::vector<const cluster::InstanceProfile*> cpu_catalog() {
  std::vector<const cluster::InstanceProfile*> cpus;
  for (const cluster::InstanceProfile& p : cluster::default_catalog()) {
    if (p.gpu.has_value()) continue;
    if (p.abbrev == "CSP-2 Hyp.") continue;  // hyperthreaded core math
    cpus.push_back(&p);
  }
  HEMO_REQUIRE(!cpus.empty(), "default catalog has no plain CPU profiles");
  return cpus;
}

const cluster::InstanceProfile& gen_cpu_instance(Xoshiro256& rng) {
  return *pick(rng, cpu_catalog());
}

std::vector<sched::CampaignJobSpec> gen_job_specs(
    Xoshiro256& rng, index_t count, const std::string& workload) {
  HEMO_REQUIRE(count >= 1, "job batch needs at least one job");
  std::vector<sched::CampaignJobSpec> jobs;
  jobs.reserve(static_cast<std::size_t>(count));
  for (index_t i = 0; i < count; ++i) {
    sched::CampaignJobSpec spec;
    spec.id = i + 1;
    spec.geometry = workload;
    spec.timesteps = 200 + 100 * rng.below(9);  // 200..1000 steps
    spec.allow_spot = rng.uniform() < 0.4;
    jobs.push_back(std::move(spec));
  }
  return jobs;
}

sched::FaultInjection gen_fault_injection(Xoshiro256& rng) {
  sched::FaultInjection faults;
  if (rng.uniform() < 0.5) faults.slowdown_factor = rng.uniform(1.4, 1.9);
  if (rng.uniform() < 0.5) {
    faults.extra_preemption_probability = rng.uniform(0.05, 0.35);
  }
  if (rng.uniform() < 0.5) {
    faults.checkpoint_corruption_rate = rng.uniform(0.1, 0.5);
  }
  if (rng.uniform() < 0.5) {
    faults.worker_crash_probability = rng.uniform(0.02, 0.1);
  }
  return faults;
}

fit::TwoLineModel gen_two_line_model(Xoshiro256& rng) {
  fit::TwoLineModel m;
  m.a1 = rng.uniform(4000.0, 16000.0);        // steep MB/s per thread
  m.a2 = m.a1 * rng.uniform(0.02, 0.25);      // saturated slope << a1
  m.a3 = rng.uniform(4.0, 24.0);              // breakpoint in threads
  return m;
}

fit::CommModel gen_comm_model(Xoshiro256& rng) {
  fit::CommModel m;
  m.bandwidth = rng.uniform(0.5e9, 16e9);     // bytes/s
  m.latency = rng.uniform(1e-6, 80e-6);       // seconds
  return m;
}

fit::ImbalanceModel gen_imbalance_model(Xoshiro256& rng) {
  fit::ImbalanceModel m;
  m.c1 = rng.uniform(0.01, 0.3);
  m.c2 = rng.uniform(0.05, 2.0);
  return m;
}

fit::EventCountModel gen_event_count_model(Xoshiro256& rng) {
  fit::EventCountModel m;
  m.k1 = rng.uniform(0.2, 4.0);
  m.k2 = rng.uniform(0.01, 1.0);
  return m;
}

}  // namespace hemo::check
