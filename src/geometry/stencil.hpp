// D3Q19 stencil offsets.
//
// The velocity set lives here (rather than in lbm/) because geometry
// classification — deciding which fluid points are "wall" points with
// bounce-back links — must use exactly the same neighborhood the solver
// streams over. lbm/ layers weights and opposite-direction tables on top.
#pragma once

#include <array>

#include "util/common.hpp"

namespace hemo::geometry {

/// One lattice direction.
struct Offset {
  int dx = 0;
  int dy = 0;
  int dz = 0;
};

/// Number of D3Q19 directions (including the rest direction at index 0).
inline constexpr index_t kQ = 19;

/// D3Q19 velocity set: rest, 6 axis-aligned, 12 face-diagonal directions.
/// Order: index 0 is rest; directions i and opposite(i) satisfy
/// offset[i] == -offset[opposite(i)].
inline constexpr std::array<Offset, kQ> kD3Q19 = {{
    {0, 0, 0},                                                    // 0 rest
    {1, 0, 0},  {-1, 0, 0},  {0, 1, 0},  {0, -1, 0},              // 1-4
    {0, 0, 1},  {0, 0, -1},                                       // 5-6
    {1, 1, 0},  {-1, -1, 0}, {1, -1, 0}, {-1, 1, 0},              // 7-10
    {1, 0, 1},  {-1, 0, -1}, {1, 0, -1}, {-1, 0, 1},              // 11-14
    {0, 1, 1},  {0, -1, -1}, {0, 1, -1}, {0, -1, 1},              // 15-18
}};

/// Index of the direction opposite to i (offset negation).
[[nodiscard]] constexpr index_t opposite(index_t i) noexcept {
  // Pairs are laid out adjacently: (1,2), (3,4), ..., (17,18).
  if (i == 0) return 0;
  return (i % 2 == 1) ? i + 1 : i - 1;
}

}  // namespace hemo::geometry
