#include "geometry/voxel_grid.hpp"

namespace hemo::geometry {

VoxelGrid::VoxelGrid(index_t nx, index_t ny, index_t nz)
    : nx_(nx), ny_(ny), nz_(nz) {
  HEMO_REQUIRE(nx > 0 && ny > 0 && nz > 0, "VoxelGrid dimensions must be > 0");
  flags_.assign(static_cast<std::size_t>(nx * ny * nz), PointType::kSolid);
}

void VoxelGrid::set(index_t x, index_t y, index_t z, PointType t) {
  HEMO_REQUIRE(in_bounds(x, y, z), "VoxelGrid::set out of bounds");
  flags_[static_cast<std::size_t>(linear(x, y, z))] = t;
}

void VoxelGrid::classify_walls(bool periodic_x, bool periodic_y,
                               bool periodic_z) {
  for (index_t z = 0; z < nz_; ++z) {
    for (index_t y = 0; y < ny_; ++y) {
      for (index_t x = 0; x < nx_; ++x) {
        const PointType t = at(x, y, z);
        if (t != PointType::kBulk && t != PointType::kWall) continue;
        bool has_solid_neighbor = false;
        for (index_t q = 1; q < kQ; ++q) {
          const Offset& o = kD3Q19[static_cast<std::size_t>(q)];
          index_t nx = x + o.dx, ny = y + o.dy, nz = z + o.dz;
          if (periodic_x) nx = (nx + nx_) % nx_;
          if (periodic_y) ny = (ny + ny_) % ny_;
          if (periodic_z) nz = (nz + nz_) % nz_;
          if (at(nx, ny, nz) == PointType::kSolid) {
            has_solid_neighbor = true;
            break;
          }
        }
        set(x, y, z,
            has_solid_neighbor ? PointType::kWall : PointType::kBulk);
      }
    }
  }
}

TypeCounts VoxelGrid::count_types() const {
  TypeCounts c;
  for (PointType t : flags_) {
    switch (t) {
      case PointType::kSolid: ++c.solid; break;
      case PointType::kBulk: ++c.bulk; break;
      case PointType::kWall: ++c.wall; break;
      case PointType::kInlet: ++c.inlet; break;
      case PointType::kOutlet: ++c.outlet; break;
    }
  }
  return c;
}

std::vector<Voxel> VoxelGrid::fluid_voxels() const {
  std::vector<Voxel> out;
  for (index_t z = 0; z < nz_; ++z) {
    for (index_t y = 0; y < ny_; ++y) {
      for (index_t x = 0; x < nx_; ++x) {
        if (is_fluid(x, y, z)) out.push_back(Voxel{x, y, z});
      }
    }
  }
  return out;
}

}  // namespace hemo::geometry
