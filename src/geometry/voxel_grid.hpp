// Dense voxel grid with per-voxel point classification.
//
// HemoCloud geometries are voxelizations of vessel lumens: each voxel is
// solid (outside the lumen) or one of four fluid classes. "Wall" fluid
// points have at least one solid D3Q19 neighbor and stream via bounce-back;
// they cost fewer memory accesses per update, which is why the cerebral
// geometry outperforms the others in the paper's Fig. 3.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "geometry/stencil.hpp"
#include "util/common.hpp"

namespace hemo::geometry {

/// Classification of one voxel.
enum class PointType : std::uint8_t {
  kSolid = 0,   ///< outside the lumen; not simulated
  kBulk = 1,    ///< interior fluid, all 18 neighbors are fluid
  kWall = 2,    ///< fluid with >= 1 solid neighbor (bounce-back links)
  kInlet = 3,   ///< fluid on an inlet face (Poiseuille velocity BC)
  kOutlet = 4,  ///< fluid on an outlet face (zero-pressure BC)
};

/// Integer voxel coordinate.
struct Voxel {
  index_t x = 0;
  index_t y = 0;
  index_t z = 0;

  friend bool operator==(const Voxel&, const Voxel&) = default;
};

/// Count of voxels per classification (see VoxelGrid::count_types).
struct TypeCounts {
  index_t solid = 0;
  index_t bulk = 0;
  index_t wall = 0;
  index_t inlet = 0;
  index_t outlet = 0;

  [[nodiscard]] index_t fluid() const noexcept {
    return bulk + wall + inlet + outlet;
  }
};

/// Dense 3-D grid of PointType. Out-of-bounds coordinates read as kSolid,
/// so the domain is implicitly embedded in an infinite solid.
class VoxelGrid {
 public:
  VoxelGrid(index_t nx, index_t ny, index_t nz);

  [[nodiscard]] index_t nx() const noexcept { return nx_; }
  [[nodiscard]] index_t ny() const noexcept { return ny_; }
  [[nodiscard]] index_t nz() const noexcept { return nz_; }
  [[nodiscard]] index_t volume() const noexcept { return nx_ * ny_ * nz_; }

  [[nodiscard]] bool in_bounds(index_t x, index_t y, index_t z) const noexcept {
    return x >= 0 && x < nx_ && y >= 0 && y < ny_ && z >= 0 && z < nz_;
  }

  /// Linearized voxel index (x fastest). Requires in_bounds.
  [[nodiscard]] index_t linear(index_t x, index_t y, index_t z) const noexcept {
    return (z * ny_ + y) * nx_ + x;
  }

  /// Classification at (x, y, z); kSolid outside the grid.
  [[nodiscard]] PointType at(index_t x, index_t y, index_t z) const noexcept {
    if (!in_bounds(x, y, z)) return PointType::kSolid;
    return flags_[static_cast<std::size_t>(linear(x, y, z))];
  }

  /// Mutable access. Requires in_bounds.
  void set(index_t x, index_t y, index_t z, PointType t);

  /// True if the voxel holds any fluid class.
  [[nodiscard]] bool is_fluid(index_t x, index_t y, index_t z) const noexcept {
    return at(x, y, z) != PointType::kSolid;
  }

  /// Re-derives kBulk/kWall for every fluid voxel that is not an inlet or
  /// outlet: a fluid voxel becomes kWall iff any of its 18 non-rest D3Q19
  /// neighbors is solid (or out of bounds). Call after carving geometry.
  /// Periodic flags wrap the neighbor lookup around the given axes so that
  /// domain-face voxels of a periodic direction stay bulk (used together
  /// with lbm::MeshOptions periodicity for force-driven flows).
  void classify_walls(bool periodic_x = false, bool periodic_y = false,
                      bool periodic_z = false);

  /// Tallies voxels per classification.
  [[nodiscard]] TypeCounts count_types() const;

  /// All fluid voxels in linear-index order (deterministic).
  [[nodiscard]] std::vector<Voxel> fluid_voxels() const;

 private:
  index_t nx_, ny_, nz_;
  std::vector<PointType> flags_;
};

}  // namespace hemo::geometry
