#include "geometry/generators.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numbers>

#include "util/rng.hpp"

namespace hemo::geometry {

namespace {

real_t sq(real_t v) { return v * v; }

/// Squared distance from point q to segment [p0, p1].
real_t dist2_to_segment(const Point3& q, const Point3& p0, const Point3& p1) {
  const real_t vx = p1.x - p0.x, vy = p1.y - p0.y, vz = p1.z - p0.z;
  const real_t wx = q.x - p0.x, wy = q.y - p0.y, wz = q.z - p0.z;
  const real_t vv = vx * vx + vy * vy + vz * vz;
  real_t t = vv > 0.0 ? (wx * vx + wy * vy + wz * vz) / vv : 0.0;
  t = std::clamp(t, 0.0, 1.0);
  return sq(q.x - (p0.x + t * vx)) + sq(q.y - (p0.y + t * vy)) +
         sq(q.z - (p0.z + t * vz));
}

/// Marks fluid voxels within `radius` of `center` on the plane fixed at
/// coordinate `plane_value` along `axis` with classification `type`.
void mark_disc(VoxelGrid& grid, const Point3& center, int axis,
               index_t plane_value, real_t radius, PointType type) {
  const real_t r2 = sq(radius + 0.5);
  for (index_t z = 0; z < grid.nz(); ++z) {
    for (index_t y = 0; y < grid.ny(); ++y) {
      for (index_t x = 0; x < grid.nx(); ++x) {
        const index_t along = axis == 0 ? x : axis == 1 ? y : z;
        if (along != plane_value) continue;
        if (!grid.is_fluid(x, y, z)) continue;
        const real_t dx = static_cast<real_t>(x) - center.x;
        const real_t dy = static_cast<real_t>(y) - center.y;
        const real_t dz = static_cast<real_t>(z) - center.z;
        const real_t d2 = axis == 0   ? dy * dy + dz * dz
                          : axis == 1 ? dx * dx + dz * dz
                                      : dx * dx + dy * dy;
        if (d2 <= r2) grid.set(x, y, z, type);
      }
    }
  }
}

/// Marks fluid voxels within `radius` of a sphere at `center` as `type`
/// (used for interior end-caps of the cerebral tree leaves).
void mark_ball(VoxelGrid& grid, const Point3& center, real_t radius,
               PointType type) {
  const real_t r2 = sq(radius + 0.5);
  const index_t x0 = std::max<index_t>(0, static_cast<index_t>(center.x - radius - 1));
  const index_t y0 = std::max<index_t>(0, static_cast<index_t>(center.y - radius - 1));
  const index_t z0 = std::max<index_t>(0, static_cast<index_t>(center.z - radius - 1));
  const index_t x1 = std::min(grid.nx() - 1, static_cast<index_t>(center.x + radius + 1));
  const index_t y1 = std::min(grid.ny() - 1, static_cast<index_t>(center.y + radius + 1));
  const index_t z1 = std::min(grid.nz() - 1, static_cast<index_t>(center.z + radius + 1));
  for (index_t z = z0; z <= z1; ++z) {
    for (index_t y = y0; y <= y1; ++y) {
      for (index_t x = x0; x <= x1; ++x) {
        if (!grid.is_fluid(x, y, z)) continue;
        const real_t d2 = sq(static_cast<real_t>(x) - center.x) +
                          sq(static_cast<real_t>(y) - center.y) +
                          sq(static_cast<real_t>(z) - center.z);
        if (d2 <= r2) grid.set(x, y, z, type);
      }
    }
  }
}

}  // namespace

void carve_capsule(VoxelGrid& grid, const Point3& p0, const Point3& p1,
                   real_t radius) {
  HEMO_REQUIRE(radius > 0.0, "carve_capsule radius must be > 0");
  const real_t r2 = sq(radius);
  const index_t x0 = std::max<index_t>(
      0, static_cast<index_t>(std::floor(std::min(p0.x, p1.x) - radius)));
  const index_t y0 = std::max<index_t>(
      0, static_cast<index_t>(std::floor(std::min(p0.y, p1.y) - radius)));
  const index_t z0 = std::max<index_t>(
      0, static_cast<index_t>(std::floor(std::min(p0.z, p1.z) - radius)));
  const index_t x1 = std::min(
      grid.nx() - 1,
      static_cast<index_t>(std::ceil(std::max(p0.x, p1.x) + radius)));
  const index_t y1 = std::min(
      grid.ny() - 1,
      static_cast<index_t>(std::ceil(std::max(p0.y, p1.y) + radius)));
  const index_t z1 = std::min(
      grid.nz() - 1,
      static_cast<index_t>(std::ceil(std::max(p0.z, p1.z) + radius)));
  for (index_t z = z0; z <= z1; ++z) {
    for (index_t y = y0; y <= y1; ++y) {
      for (index_t x = x0; x <= x1; ++x) {
        const Point3 q{static_cast<real_t>(x), static_cast<real_t>(y),
                       static_cast<real_t>(z)};
        if (dist2_to_segment(q, p0, p1) <= r2) {
          grid.set(x, y, z, PointType::kBulk);
        }
      }
    }
  }
}

Geometry make_cylinder(const CylinderParams& params) {
  HEMO_REQUIRE(params.radius >= 2 && params.length >= 4,
               "cylinder must be at least 2 voxels wide and 4 long");
  const index_t d = 2 * params.radius + 3;
  VoxelGrid grid(d, d, params.length);
  const real_t c = static_cast<real_t>(d - 1) / 2.0;
  const real_t r = static_cast<real_t>(params.radius);

  carve_capsule(grid, Point3{c, c, -r}, // caps poke out so end discs are full
                Point3{c, c, static_cast<real_t>(params.length - 1) + r}, r);
  grid.classify_walls();

  mark_disc(grid, Point3{c, c, 0.0}, /*axis=*/2, /*plane=*/0, r,
            PointType::kInlet);
  mark_disc(grid, Point3{c, c, static_cast<real_t>(params.length - 1)},
            /*axis=*/2, params.length - 1, r, PointType::kOutlet);

  Geometry geo{"cylinder", std::move(grid), {}};
  geo.inlets.push_back(InletSpec{Point3{c, c, 0.0}, 2, +1, r,
                                 params.peak_velocity});
  return geo;
}

Geometry make_periodic_cylinder(const CylinderParams& params) {
  HEMO_REQUIRE(params.radius >= 2 && params.length >= 4,
               "cylinder must be at least 2 voxels wide and 4 long");
  const index_t d = 2 * params.radius + 3;
  VoxelGrid grid(d, d, params.length);
  const real_t c = static_cast<real_t>(d - 1) / 2.0;
  const real_t r = static_cast<real_t>(params.radius);
  const real_t r2 = r * r;
  for (index_t z = 0; z < params.length; ++z) {
    for (index_t y = 0; y < d; ++y) {
      for (index_t x = 0; x < d; ++x) {
        const real_t dx = static_cast<real_t>(x) - c;
        const real_t dy = static_cast<real_t>(y) - c;
        if (dx * dx + dy * dy <= r2) grid.set(x, y, z, PointType::kBulk);
      }
    }
  }
  grid.classify_walls(false, false, /*periodic_z=*/true);
  return Geometry{"periodic-cylinder", std::move(grid), {}};
}

Geometry make_aorta(const AortaParams& params) {
  HEMO_REQUIRE(params.vessel_radius >= 3.0 && params.arch_radius >
                   params.vessel_radius,
               "aorta parameters out of range");
  const real_t r = params.vessel_radius;
  const real_t arch_r = params.arch_radius;
  const index_t nz = params.height;
  // Domain: arch lies in the x-z plane. Ascending limb at x = cx - arch_r,
  // descending at x = cx + arch_r.
  const index_t nx = static_cast<index_t>(2.0 * arch_r + 4.0 * r + 8.0);
  const index_t ny = static_cast<index_t>(2.0 * r + 7.0);
  VoxelGrid grid(nx, ny, nz);

  const real_t cx = static_cast<real_t>(nx - 1) / 2.0;
  const real_t cy = static_cast<real_t>(ny - 1) / 2.0;
  const real_t arch_top_z = static_cast<real_t>(nz) - arch_r - r - 3.0;

  const Point3 asc_bottom{cx - arch_r, cy, -r};
  const Point3 asc_top{cx - arch_r, cy, arch_top_z};
  const Point3 desc_top{cx + arch_r, cy, arch_top_z};
  const Point3 desc_bottom{cx + arch_r, cy, -r};

  carve_capsule(grid, asc_bottom, asc_top, r);
  carve_capsule(grid, desc_top, desc_bottom, r);

  // Arch: semicircle of radius arch_r centered at (cx, cy, arch_top_z),
  // approximated by short segments.
  constexpr index_t kArchSegments = 24;
  Point3 prev = asc_top;
  for (index_t i = 1; i <= kArchSegments; ++i) {
    const real_t theta = std::numbers::pi *
                         static_cast<real_t>(i) /
                         static_cast<real_t>(kArchSegments);
    const Point3 p{cx - arch_r * std::cos(theta), cy,
                   arch_top_z + arch_r * std::sin(theta)};
    carve_capsule(grid, prev, p, r);
    prev = p;
  }

  // Three supra-aortic branches from the arch crown going straight up.
  const real_t crown_z = arch_top_z + arch_r;
  const std::array<real_t, 3> branch_x = {cx - arch_r * 0.45, cx,
                                          cx + arch_r * 0.45};
  for (real_t bx : branch_x) {
    // Branch roots sit on the arch; ends poke past the top boundary so the
    // cap is an open outlet disc.
    const real_t root_z = arch_top_z +
                          std::sqrt(std::max(0.0, sq(arch_r) - sq(bx - cx)));
    carve_capsule(grid, Point3{bx, cy, root_z - r},
                  Point3{bx, cy, static_cast<real_t>(nz - 1) +
                                     params.branch_radius},
                  params.branch_radius);
  }
  (void)crown_z;

  grid.classify_walls();

  // Inlet: ascending root at z = 0. Outlets: descending root at z = 0 and
  // the three branch tops at z = nz - 1.
  mark_disc(grid, Point3{cx - arch_r, cy, 0.0}, 2, 0, r, PointType::kInlet);
  mark_disc(grid, Point3{cx + arch_r, cy, 0.0}, 2, 0, r, PointType::kOutlet);
  for (real_t bx : branch_x) {
    mark_disc(grid, Point3{bx, cy, static_cast<real_t>(nz - 1)}, 2, nz - 1,
              params.branch_radius, PointType::kOutlet);
  }

  Geometry geo{"aorta", std::move(grid), {}};
  geo.inlets.push_back(InletSpec{Point3{cx - arch_r, cy, 0.0}, 2, +1, r,
                                 params.peak_velocity});
  return geo;
}

namespace {

struct TreeLeaf {
  Point3 end;
  real_t radius = 0.0;
};

/// Recursively carves a bifurcating tree; collects leaf end-caps.
void carve_tree(VoxelGrid& grid, Xoshiro256& rng, const Point3& base,
                real_t dir_x, real_t dir_y, real_t dir_z, real_t radius,
                real_t length, index_t levels_left,
                std::vector<TreeLeaf>& leaves) {
  const Point3 end{base.x + dir_x * length, base.y + dir_y * length,
                   base.z + dir_z * length};
  carve_capsule(grid, base, end, radius);
  if (levels_left == 0) {
    leaves.push_back(TreeLeaf{end, radius});
    return;
  }
  // Murray's law: two equal children, r_child = r * 2^{-1/3}.
  const real_t child_r = std::max(1.6, radius * 0.7937);
  const real_t child_len = length * 0.82;
  // Split plane orientation jitters deterministically per branch.
  const real_t phi = rng.uniform(0.0, std::numbers::pi);
  const real_t spread = rng.uniform(0.45, 0.8);  // half-angle in radians

  // Build an orthonormal frame around the parent direction.
  real_t ux = -dir_y, uy = dir_x, uz = 0.0;
  real_t norm = std::sqrt(ux * ux + uy * uy + uz * uz);
  if (norm < 1e-9) {  // parent along z
    ux = 1.0; uy = 0.0; uz = 0.0;
    norm = 1.0;
  }
  ux /= norm; uy /= norm; uz /= norm;
  // v = dir x u
  const real_t vx = dir_y * uz - dir_z * uy;
  const real_t vy = dir_z * ux - dir_x * uz;
  const real_t vz = dir_x * uy - dir_y * ux;
  const real_t px = ux * std::cos(phi) + vx * std::sin(phi);
  const real_t py = uy * std::cos(phi) + vy * std::sin(phi);
  const real_t pz = uz * std::cos(phi) + vz * std::sin(phi);

  for (int sgn : {-1, +1}) {
    real_t cx = dir_x * std::cos(spread) +
                static_cast<real_t>(sgn) * px * std::sin(spread);
    real_t cy = dir_y * std::cos(spread) +
                static_cast<real_t>(sgn) * py * std::sin(spread);
    real_t cz = dir_z * std::cos(spread) +
                static_cast<real_t>(sgn) * pz * std::sin(spread);
    const real_t cn = std::sqrt(cx * cx + cy * cy + cz * cz);
    cx /= cn; cy /= cn; cz /= cn;
    carve_tree(grid, rng, end, cx, cy, cz, child_r, child_len,
               levels_left - 1, leaves);
  }
}

}  // namespace

Geometry make_cerebral(const CerebralParams& params) {
  HEMO_REQUIRE(params.depth >= 1 && params.depth <= 8,
               "cerebral depth must be in [1, 8]");
  // Size the domain to the worst-case tree span.
  real_t reach = 0.0, len = params.segment_length;
  for (index_t i = 0; i <= params.depth; ++i) {
    reach += len;
    len *= 0.82;
  }
  const index_t half = static_cast<index_t>(reach * 0.9 + 8.0);
  const index_t nx = 2 * half + 1;
  const index_t ny = 2 * half + 1;
  const index_t nz = static_cast<index_t>(reach + params.root_radius + 10.0);
  VoxelGrid grid(nx, ny, nz);

  const real_t cx = static_cast<real_t>(half);
  const real_t cy = static_cast<real_t>(half);

  Xoshiro256 rng(params.seed);
  std::vector<TreeLeaf> leaves;
  carve_tree(grid, rng, Point3{cx, cy, -params.root_radius},
             /*dir=*/0.0, 0.0, 1.0, params.root_radius,
             params.segment_length + params.root_radius, params.depth,
             leaves);
  grid.classify_walls();

  mark_disc(grid, Point3{cx, cy, 0.0}, 2, 0, params.root_radius,
            PointType::kInlet);
  for (const TreeLeaf& leaf : leaves) {
    mark_ball(grid, leaf.end, leaf.radius, PointType::kOutlet);
  }

  Geometry geo{"cerebral", std::move(grid), {}};
  geo.inlets.push_back(InletSpec{Point3{cx, cy, 0.0}, 2, +1,
                                 params.root_radius, params.peak_velocity});
  return geo;
}

namespace {

/// Carves a straight axial vessel whose radius varies with z, marks the
/// end discs, and packages the geometry.
Geometry make_varying_radius_vessel(const std::string& name, index_t length,
                                    real_t max_radius,
                                    const std::function<real_t(real_t)>& r_of_z,
                                    real_t peak_velocity) {
  const index_t d = 2 * static_cast<index_t>(max_radius) + 5;
  VoxelGrid grid(d, d, length);
  const real_t c = static_cast<real_t>(d - 1) / 2.0;
  for (index_t z = 0; z < length; ++z) {
    const real_t r = r_of_z(static_cast<real_t>(z));
    const real_t r2 = r * r;
    for (index_t y = 0; y < d; ++y) {
      for (index_t x = 0; x < d; ++x) {
        const real_t dx = static_cast<real_t>(x) - c;
        const real_t dy = static_cast<real_t>(y) - c;
        if (dx * dx + dy * dy <= r2) grid.set(x, y, z, PointType::kBulk);
      }
    }
  }
  grid.classify_walls();
  const real_t r_in = r_of_z(0.0);
  const real_t r_out = r_of_z(static_cast<real_t>(length - 1));
  mark_disc(grid, Point3{c, c, 0.0}, 2, 0, r_in, PointType::kInlet);
  mark_disc(grid, Point3{c, c, static_cast<real_t>(length - 1)}, 2,
            length - 1, r_out, PointType::kOutlet);
  Geometry geo{name, std::move(grid), {}};
  geo.inlets.push_back(InletSpec{Point3{c, c, 0.0}, 2, +1, r_in,
                                 peak_velocity});
  return geo;
}

}  // namespace

Geometry make_stenosis(const StenosisParams& params) {
  HEMO_REQUIRE(params.severity > 0.0 && params.severity < 0.9,
               "stenosis severity must be in (0, 0.9)");
  HEMO_REQUIRE(params.radius >= 4 && params.length >= 16,
               "stenosis vessel too small");
  const real_t r0 = static_cast<real_t>(params.radius);
  const real_t zc = static_cast<real_t>(params.length - 1) / 2.0;
  auto r_of_z = [=](real_t z) {
    const real_t dz = std::abs(z - zc);
    if (dz >= params.throat_length) return r0;
    // Smooth cosine bump: full severity at the throat center.
    const real_t shape =
        0.5 * (1.0 + std::cos(std::numbers::pi * dz / params.throat_length));
    return r0 * (1.0 - params.severity * shape);
  };
  return make_varying_radius_vessel("stenosis", params.length, r0, r_of_z,
                                    params.peak_velocity);
}

Geometry make_aneurysm(const AneurysmParams& params) {
  HEMO_REQUIRE(params.dilation > 0.0 && params.dilation < 2.0,
               "aneurysm dilation must be in (0, 2)");
  HEMO_REQUIRE(params.radius >= 4 && params.length >= 16,
               "aneurysm vessel too small");
  const real_t r0 = static_cast<real_t>(params.radius);
  const real_t zc = static_cast<real_t>(params.length - 1) / 2.0;
  const real_t r_max = r0 * (1.0 + params.dilation);
  auto r_of_z = [=](real_t z) {
    const real_t dz = std::abs(z - zc);
    if (dz >= params.bulge_length) return r0;
    const real_t shape =
        0.5 * (1.0 + std::cos(std::numbers::pi * dz / params.bulge_length));
    return r0 * (1.0 + params.dilation * shape);
  };
  return make_varying_radius_vessel("aneurysm", params.length, r_max, r_of_z,
                                    params.peak_velocity);
}

GeometryStats compute_stats(const Geometry& geometry) {
  GeometryStats s;
  s.counts = geometry.grid.count_types();
  s.bulk_to_wall_ratio =
      s.counts.wall > 0
          ? static_cast<real_t>(s.counts.bulk) /
                static_cast<real_t>(s.counts.wall)
          : 0.0;
  s.fill_fraction = static_cast<real_t>(s.counts.fluid()) /
                    static_cast<real_t>(geometry.grid.volume());
  return s;
}

}  // namespace hemo::geometry
