// Parametric vessel geometry generators.
//
// The paper evaluates three increasingly complex geometries (its Fig. 2):
//   (A) an idealized cylindrical vessel — easily divided for parallelism but
//       communication-heavy (high bulk:wall ratio, large cut surfaces);
//   (B) an aorta — typical communication and load balancing;
//   (C) a cerebral vasculature — low communication, many wall points.
// The originals come from the Vascular Model Repository, which we do not
// have; these generators build synthetic voxel equivalents that preserve the
// properties the experiments depend on: bulk/wall point ratio, cross-section
// size (halo surface area), and load-balance difficulty. See DESIGN.md §2.
#pragma once

#include <string>
#include <vector>

#include "geometry/voxel_grid.hpp"
#include "util/common.hpp"

namespace hemo::geometry {

/// A point in continuous voxel coordinates, used for centerlines.
struct Point3 {
  real_t x = 0.0;
  real_t y = 0.0;
  real_t z = 0.0;
};

/// One inlet: a disc of fluid voxels on which a Poiseuille velocity profile
/// is imposed.
struct InletSpec {
  Point3 center;            ///< disc center in voxel coordinates
  int axis = 2;             ///< flow axis: 0 = x, 1 = y, 2 = z
  int direction = +1;       ///< +1 flows toward +axis, -1 toward -axis
  real_t radius = 0.0;      ///< disc radius in voxels
  real_t peak_velocity = 0.05;  ///< centerline velocity in lattice units

  /// Pulsatile modulation: u(t) = u * (1 + amplitude * sin(2 pi t / T)).
  /// amplitude = 0 gives the steady profile used in the paper's study;
  /// nonzero values model cardiac-cycle inflow.
  real_t pulse_amplitude = 0.0;
  real_t pulse_period = 0.0;  ///< period in timesteps (ignored if amp = 0)
};

/// A named geometry: classified voxel grid plus inlet descriptors.
struct Geometry {
  std::string name;
  VoxelGrid grid;
  std::vector<InletSpec> inlets;
};

/// Carves a capsule (cylinder with hemispherical caps) of fluid between two
/// centerline points. Marks carved voxels kBulk; callers classify later.
void carve_capsule(VoxelGrid& grid, const Point3& p0, const Point3& p1,
                   real_t radius);

/// Parameters for the idealized cylindrical vessel.
struct CylinderParams {
  index_t radius = 12;   ///< lumen radius in voxels
  index_t length = 96;   ///< axial length in voxels
  real_t peak_velocity = 0.05;
};

/// Straight cylinder along z; inlet disc at z = 0, outlet disc at the far
/// end. This is also the exact geometry used by the proxy app.
[[nodiscard]] Geometry make_cylinder(const CylinderParams& params = {});

/// Axially periodic cylinder with no inlet/outlet, for body-force-driven
/// flows. Pair with lbm::MeshOptions{.periodic_z = true}.
[[nodiscard]] Geometry make_periodic_cylinder(
    const CylinderParams& params = {});

/// Parameters for the synthetic aorta.
struct AortaParams {
  real_t vessel_radius = 9.0;   ///< main lumen radius in voxels
  real_t arch_radius = 28.0;    ///< aortic arch bend radius in voxels
  index_t height = 110;         ///< domain height (z) in voxels
  real_t branch_radius = 3.5;   ///< supra-aortic branch radius
  real_t peak_velocity = 0.05;
};

/// Candy-cane aorta: ascending limb, semicircular arch, longer descending
/// limb, plus three supra-aortic branches off the arch. Inlet at the
/// ascending root; outlets at the descending end and branch tops.
[[nodiscard]] Geometry make_aorta(const AortaParams& params = {});

/// Parameters for the synthetic cerebral vasculature.
struct CerebralParams {
  real_t root_radius = 6.0;   ///< trunk radius in voxels
  index_t depth = 5;          ///< bifurcation levels (2^depth leaves)
  real_t segment_length = 26.0;  ///< root segment length in voxels
  std::uint64_t seed = 0x9e3779b9ULL;  ///< branching-angle jitter stream
  real_t peak_velocity = 0.05;
};

/// Recursively bifurcating arterial tree with Murray's-law radius decay
/// (r_child = r_parent * 2^{-1/3}). Thin, spread-out vessels give a high
/// wall:bulk ratio and small cut cross-sections.
[[nodiscard]] Geometry make_cerebral(const CerebralParams& params = {});

/// Parameters for a stenosed (locally narrowed) vessel.
struct StenosisParams {
  index_t radius = 10;        ///< healthy lumen radius in voxels
  index_t length = 80;        ///< axial length in voxels
  real_t severity = 0.5;      ///< fractional radius reduction at the throat
  real_t throat_length = 12.0;  ///< axial extent of the narrowing
  real_t peak_velocity = 0.03;
};

/// Straight vessel with a smooth (cosine-profile) concentric stenosis at
/// mid-length. The classic pathology case: flow accelerates and wall shear
/// stress peaks at the throat.
[[nodiscard]] Geometry make_stenosis(const StenosisParams& params = {});

/// Parameters for a fusiform (spindle-shaped) aneurysm.
struct AneurysmParams {
  index_t radius = 8;          ///< healthy lumen radius in voxels
  index_t length = 80;         ///< axial length in voxels
  real_t dilation = 0.9;       ///< fractional radius increase at the bulge
  real_t bulge_length = 24.0;  ///< axial extent of the dilation
  real_t peak_velocity = 0.03;
};

/// Straight vessel with a smooth concentric dilation at mid-length: flow
/// decelerates and wall shear stress drops inside the sac.
[[nodiscard]] Geometry make_aneurysm(const AneurysmParams& params = {});

/// Geometry summary used by tests and the benchmarks.
struct GeometryStats {
  TypeCounts counts;
  real_t bulk_to_wall_ratio = 0.0;
  real_t fill_fraction = 0.0;  ///< fluid voxels / bounding-box volume
};

[[nodiscard]] GeometryStats compute_stats(const Geometry& geometry);

}  // namespace hemo::geometry
