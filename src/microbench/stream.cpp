#include "microbench/stream.hpp"

#include <chrono>
#include <vector>

#include "cluster/hardware.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hemo::microbench {

namespace {

using Clock = std::chrono::steady_clock;

real_t seconds_since(Clock::time_point start) {
  return std::chrono::duration<real_t>(Clock::now() - start).count();
}

}  // namespace

StreamResult run_stream_local(index_t elements, index_t repetitions) {
  HEMO_REQUIRE(elements >= 1024, "STREAM arrays must hold >= 1024 elements");
  HEMO_REQUIRE(repetitions >= 1, "need at least one repetition");
  const auto span = obs::TraceRecorder::global().wall_span(
      "stream_local", "microbench",
      {{"elements", std::to_string(elements)},
       {"repetitions", std::to_string(repetitions)}});
  const auto n = static_cast<std::size_t>(elements);
  std::vector<double> a(n, 1.0), b(n, 2.0), c(n, 0.0);
  const double scalar = 3.0;

  const real_t mb_two = 2.0 * static_cast<real_t>(n) * 8.0 / 1e6;
  const real_t mb_three = 3.0 * static_cast<real_t>(n) * 8.0 / 1e6;

  StreamResult best;
  for (index_t rep = 0; rep < repetitions; ++rep) {
    auto t0 = Clock::now();
    for (std::size_t i = 0; i < n; ++i) c[i] = a[i];
    best.copy = std::max(best.copy, mb_two / seconds_since(t0));

    t0 = Clock::now();
    for (std::size_t i = 0; i < n; ++i) b[i] = scalar * c[i];
    best.scale = std::max(best.scale, mb_two / seconds_since(t0));

    t0 = Clock::now();
    for (std::size_t i = 0; i < n; ++i) c[i] = a[i] + b[i];
    best.add = std::max(best.add, mb_three / seconds_since(t0));

    t0 = Clock::now();
    for (std::size_t i = 0; i < n; ++i) a[i] = b[i] + scalar * c[i];
    best.triad = std::max(best.triad, mb_three / seconds_since(t0));
  }
  obs::MetricsRegistry::global().set("microbench_stream_triad_mbps",
                                     best.triad);
  return best;
}

std::vector<BandwidthSample> simulated_stream_sweep(
    const cluster::InstanceProfile& profile, index_t max_threads,
    index_t sample) {
  HEMO_REQUIRE(max_threads >= 1, "sweep needs at least one thread");
  cluster::MemorySystem memory(profile);
  std::vector<BandwidthSample> sweep;
  sweep.reserve(static_cast<std::size_t>(max_threads));
  for (index_t t = 1; t <= max_threads; ++t) {
    sweep.push_back(BandwidthSample{
        t, memory.measured_node_bandwidth(t, sample).value()});
  }
  return sweep;
}

std::vector<BandwidthSample> simulated_stream_sweep_full_node(
    const cluster::InstanceProfile& profile, index_t sample) {
  return simulated_stream_sweep(
      profile, profile.cores_per_node * profile.vcpus_per_core, sample);
}

}  // namespace hemo::microbench
