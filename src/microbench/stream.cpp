#include "microbench/stream.hpp"

#include <algorithm>
#include <chrono>
#include <vector>

#include "cluster/hardware.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace hemo::microbench {

namespace {

using Clock = std::chrono::steady_clock;

real_t seconds_since(Clock::time_point start) {
  return std::chrono::duration<real_t>(Clock::now() - start).count();
}

/// The four STREAM kernels over a fixed OpenMP team. Serial when
/// threads == 1 (bit-identical to the historical single-thread path) or
/// when the build has no OpenMP.
struct StreamKernels {
  double* a;
  double* b;
  double* c;
  std::size_t n;
  double scalar;
  index_t threads;

  template <typename Body>
  void run(const Body& body) const {
#ifdef _OPENMP
    if (threads > 1) {
#pragma omp parallel for schedule(static) \
    num_threads(static_cast<int>(threads))
      for (std::size_t i = 0; i < n; ++i) body(i);
      return;
    }
#endif
    for (std::size_t i = 0; i < n; ++i) body(i);
  }

  void copy() const { run([&](std::size_t i) { c[i] = a[i]; }); }
  void scale() const { run([&](std::size_t i) { b[i] = scalar * c[i]; }); }
  void add() const { run([&](std::size_t i) { c[i] = a[i] + b[i]; }); }
  void triad() const {
    run([&](std::size_t i) { a[i] = b[i] + scalar * c[i]; });
  }
  /// First touch under the same partition the kernels use.
  void init() const {
    run([&](std::size_t i) {
      a[i] = 1.0;
      b[i] = 2.0;
      c[i] = 0.0;
    });
  }
};

}  // namespace

StreamResult run_stream_local(index_t elements, index_t repetitions,
                              index_t threads) {
  HEMO_REQUIRE(elements >= 1024, "STREAM arrays must hold >= 1024 elements");
  HEMO_REQUIRE(repetitions >= 1, "need at least one repetition");
  HEMO_REQUIRE(threads >= 1, "need at least one thread");
  const auto span = obs::TraceRecorder::global().wall_span(
      "stream_local", "microbench",
      {{"elements", std::to_string(elements)},
       {"repetitions", std::to_string(repetitions)},
       {"threads", std::to_string(threads)}});
  const auto n = static_cast<std::size_t>(elements);
  std::vector<double> a(n), b(n), c(n);
  const StreamKernels k{a.data(), b.data(), c.data(), n, 3.0, threads};
  k.init();

  const real_t mb_two = 2.0 * static_cast<real_t>(n) * 8.0 / 1e6;
  const real_t mb_three = 3.0 * static_cast<real_t>(n) * 8.0 / 1e6;

  StreamResult best;
  for (index_t rep = 0; rep < repetitions; ++rep) {
    auto t0 = Clock::now();
    k.copy();
    best.copy = std::max(best.copy, mb_two / seconds_since(t0));

    t0 = Clock::now();
    k.scale();
    best.scale = std::max(best.scale, mb_two / seconds_since(t0));

    t0 = Clock::now();
    k.add();
    best.add = std::max(best.add, mb_three / seconds_since(t0));

    t0 = Clock::now();
    k.triad();
    best.triad = std::max(best.triad, mb_three / seconds_since(t0));
  }
  obs::MetricsRegistry::global().set("microbench_stream_triad_mbps",
                                     best.triad);
  return best;
}

std::vector<BandwidthSample> real_stream_sweep(index_t max_threads,
                                               index_t elements,
                                               index_t repetitions) {
  HEMO_REQUIRE(max_threads >= 1, "sweep needs at least one thread");
  std::vector<BandwidthSample> sweep;
  sweep.reserve(static_cast<std::size_t>(max_threads));
  for (index_t t = 1; t <= max_threads; ++t) {
    const StreamResult r = run_stream_local(elements, repetitions, t);
    sweep.push_back(BandwidthSample{t, r.copy});
  }
  return sweep;
}

std::vector<BandwidthSample> simulated_stream_sweep(
    const cluster::InstanceProfile& profile, index_t max_threads,
    index_t sample) {
  HEMO_REQUIRE(max_threads >= 1, "sweep needs at least one thread");
  cluster::MemorySystem memory(profile);
  std::vector<BandwidthSample> sweep;
  sweep.reserve(static_cast<std::size_t>(max_threads));
  for (index_t t = 1; t <= max_threads; ++t) {
    sweep.push_back(BandwidthSample{
        t, memory.measured_node_bandwidth(t, sample).value()});
  }
  return sweep;
}

std::vector<BandwidthSample> simulated_stream_sweep_full_node(
    const cluster::InstanceProfile& profile, index_t sample) {
  return simulated_stream_sweep(
      profile, profile.cores_per_node * profile.vcpus_per_core, sample);
}

}  // namespace hemo::microbench
