// PingPong message-timing microbenchmark, simulated and (threaded) real.
//
// The paper uses the Intel MPI Benchmarks PingPong to measure per-message
// communication time between rank pairs, intranodal and internodal, over a
// range of message sizes (Fig. 6), then fits the linear model of Eq. 12.
// Here simulated_pingpong() samples the virtual interconnect, and
// run_pingpong_local() bounces a buffer between two host threads through a
// shared mailbox to demonstrate the same measurement on real hardware.
#pragma once

#include <vector>

#include "cluster/instance.hpp"
#include "util/common.hpp"

namespace hemo::microbench {

/// One PingPong measurement.
struct PingPongSample {
  real_t bytes = 0.0;
  real_t time_us = 0.0;  ///< one-way time (round trip / 2)
};

/// Standard IMB-style size ladder: 0 B, then powers of two up to
/// `max_bytes` (default 4 MiB).
[[nodiscard]] std::vector<real_t> default_message_sizes(
    real_t max_bytes = 4.0 * 1024 * 1024);

/// Samples the virtual interconnect at each size. `internode` selects the
/// inter- vs intranodal path; `sample` decorrelates repeats.
[[nodiscard]] std::vector<PingPongSample> simulated_pingpong(
    const cluster::InstanceProfile& profile, bool internode,
    const std::vector<real_t>& sizes, index_t sample = 0);

/// Real two-thread pingpong on the host: two threads alternately copy a
/// message buffer through shared memory, `iterations` round trips per
/// size; reports one-way time.
[[nodiscard]] std::vector<PingPongSample> run_pingpong_local(
    const std::vector<real_t>& sizes, index_t iterations = 200);

}  // namespace hemo::microbench
