#include "microbench/pingpong.hpp"

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "cluster/hardware.hpp"
#include "obs/trace.hpp"

namespace hemo::microbench {

std::vector<real_t> default_message_sizes(real_t max_bytes) {
  HEMO_REQUIRE(max_bytes >= 1.0, "max_bytes must be >= 1");
  std::vector<real_t> sizes;
  sizes.push_back(0.0);
  for (real_t s = 1.0; s <= max_bytes; s *= 2.0) sizes.push_back(s);
  return sizes;
}

std::vector<PingPongSample> simulated_pingpong(
    const cluster::InstanceProfile& profile, bool internode,
    const std::vector<real_t>& sizes, index_t sample) {
  cluster::Interconnect net(profile);
  std::vector<PingPongSample> out;
  out.reserve(sizes.size());
  for (real_t s : sizes) {
    out.push_back(PingPongSample{
        s, net.measured_pingpong(units::Bytes(s), internode, sample)
               .value()});
  }
  return out;
}

namespace {

/// Single-producer single-consumer mailbox used by the threaded pingpong.
/// `turn` is a two-party turnstile: each side release-stores the other's
/// turn after touching the buffer and acquire-spins for its own, so the
/// buffer handoff is ordered without a lock (DESIGN.md §13).
struct Mailbox {
  std::atomic<int> turn{0};  // atomic-ok(release/acquire SPSC turnstile)
  std::vector<char> buffer;
};

}  // namespace

std::vector<PingPongSample> run_pingpong_local(
    const std::vector<real_t>& sizes, index_t iterations) {
  HEMO_REQUIRE(iterations >= 1, "need at least one iteration");
  const auto obs_span = obs::TraceRecorder::global().wall_span(
      "pingpong_local", "microbench",
      {{"sizes", std::to_string(sizes.size())},
       {"iterations", std::to_string(iterations)}});
  using Clock = std::chrono::steady_clock;
  std::vector<PingPongSample> out;
  out.reserve(sizes.size());

  for (real_t size : sizes) {
    const auto bytes = static_cast<std::size_t>(size);
    Mailbox box;
    box.buffer.assign(std::max<std::size_t>(bytes, 1), 1);
    std::vector<char> ping_local(std::max<std::size_t>(bytes, 1), 2);
    std::vector<char> pong_local(std::max<std::size_t>(bytes, 1), 3);

    std::thread pong([&] {
      for (index_t i = 0; i < iterations; ++i) {
        while (box.turn.load(std::memory_order_acquire) != 1) {
          // On a single-core host a pure spin burns whole scheduler
          // quanta before the peer can run; yielding keeps the handoff
          // at context-switch cost so message size stays measurable.
          std::this_thread::yield();
        }
        if (bytes > 0) {
          std::memcpy(pong_local.data(), box.buffer.data(), bytes);
          std::memcpy(box.buffer.data(), pong_local.data(), bytes);
        }
        box.turn.store(0, std::memory_order_release);
      }
    });

    const auto t0 = Clock::now();
    for (index_t i = 0; i < iterations; ++i) {
      if (bytes > 0) {
        std::memcpy(box.buffer.data(), ping_local.data(), bytes);
      }
      box.turn.store(1, std::memory_order_release);
      while (box.turn.load(std::memory_order_acquire) != 0) {
        std::this_thread::yield();
      }
      if (bytes > 0) {
        std::memcpy(ping_local.data(), box.buffer.data(), bytes);
      }
    }
    const real_t elapsed_us =
        std::chrono::duration<real_t, std::micro>(Clock::now() - t0).count();
    pong.join();

    // One round trip carries the message both ways; report one-way time.
    out.push_back(PingPongSample{
        size, elapsed_us / static_cast<real_t>(iterations) / 2.0});
  }
  return out;
}

}  // namespace hemo::microbench
