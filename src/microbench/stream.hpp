// STREAM memory-bandwidth microbenchmark (McCalpin), real and simulated.
//
// The paper uses STREAM COPY over an OpenMP thread sweep to characterize
// each node's memory subsystem (Fig. 5 / Table II / Table III). Here:
//  * run_stream_local() executes the four kernels for real on the host —
//    the measurement pipeline demonstrated end-to-end on the one machine
//    we actually have;
//  * simulated_stream_sweep() produces a thread sweep against a virtual
//    instance profile, which the fitting layer turns back into Table III
//    parameters.
#pragma once

#include <vector>

#include "cluster/instance.hpp"
#include "util/common.hpp"

namespace hemo::microbench {

/// Sustained bandwidths in MB/s for the four STREAM kernels.
struct StreamResult {
  real_t copy = 0.0;
  real_t scale = 0.0;
  real_t add = 0.0;
  real_t triad = 0.0;
};

/// Runs STREAM on the host. `elements` is the per-array length (three
/// arrays of doubles are allocated); `repetitions` timed sweeps are run and
/// the best bandwidth is reported, as standard STREAM does. `threads`
/// selects the OpenMP team size for the kernels (and for the first-touch
/// initialization, so pages land on the threads that stream them); the
/// default 1 keeps the historical serial measurement and is bit-identical
/// to it. Values above 1 degrade to serial in a build without OpenMP.
[[nodiscard]] StreamResult run_stream_local(index_t elements = 1 << 22,
                                            index_t repetitions = 5,
                                            index_t threads = 1);

/// One point of a thread-count sweep.
struct BandwidthSample {
  index_t threads = 0;
  real_t bandwidth_mbs = 0.0;
};

/// A real (executed, not simulated) COPY sweep over thread counts 1 to
/// max_threads — the measured counterpart of simulated_stream_sweep(),
/// giving the paper's Fig. 5 x-axis on the host itself.
[[nodiscard]] std::vector<BandwidthSample> real_stream_sweep(
    index_t max_threads, index_t elements = 1 << 22,
    index_t repetitions = 3);

/// A full sweep: one COPY measurement per thread count from 1 to
/// max_threads (the paper's Fig. 5 x-axis). `sample` decorrelates repeats.
[[nodiscard]] std::vector<BandwidthSample> simulated_stream_sweep(
    const cluster::InstanceProfile& profile, index_t max_threads,
    index_t sample = 0);

/// Convenience: sweep to one thread per physical core (or per vCPU when
/// the profile models hyperthreading, e.g. "CSP-2 Hyp.").
[[nodiscard]] std::vector<BandwidthSample> simulated_stream_sweep_full_node(
    const cluster::InstanceProfile& profile, index_t sample = 0);

}  // namespace hemo::microbench
