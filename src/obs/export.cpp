#include "obs/export.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <utility>

namespace hemo::obs {

namespace {

/// Stable numeric rendering shared with the JSONL/canonical formats.
std::string num(real_t value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

std::string num_u64(std::uint64_t value) { return std::to_string(value); }

/// Prometheus label-value escaping: backslash, double quote, newline.
void append_prom_label_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

/// HELP-text escaping: backslash and newline only (quotes stay literal).
void append_prom_help_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

void append_json_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buffer;
    } else {
      out += c;
    }
  }
}

const char* prom_type_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "untyped";
}

/// Help strings for the core metric families; anything unknown gets a
/// generic line (HELP is informative only — the golden test pins the
/// fallback too, so additions here are deliberate).
std::string_view metric_help(std::string_view name) {
  struct Entry {
    std::string_view name, help;
  };
  static constexpr Entry kTable[] = {
      {"campaign_jobs_total", "Jobs reaching a terminal state, by outcome."},
      {"campaign_attempts_total", "Placed attempts, by instance and tenancy."},
      {"campaign_preemptions_total", "Spot capacity reclaims mid-attempt."},
      {"campaign_requeues_total", "Stopped attempts settled back into the queue."},
      {"campaign_guard_stops_total", "Overrun-guard hard stops."},
      {"campaign_worker_crashes_total", "Worker deaths mid-attempt."},
      {"campaign_correction_factor", "Refinement tracker correction factor."},
      {"campaign_mean_abs_rel_error", "Mean |predicted-measured|/measured."},
      {"campaign_attempt_occupancy_seconds",
       "Paid allocation seconds per attempt."},
      {"runtime_measured_imbalance", "Window max/mean busy-time imbalance."},
      {"runtime_window_busy_seconds", "Per-rank busy seconds per window."},
      {"model_drift_mflups_rel_error",
       "(predicted-measured)/measured MFLUPS, per refinement round."},
      {"watchdog_health_state", "SLO health: 0 ok, 1 degraded, 2 unhealthy."},
      {"telemetry_http_requests_total", "HTTP requests served, by path."},
      {"profile_phase_self_seconds", "Sampled self time per profiler phase."},
  };
  for (const Entry& e : kTable) {
    if (e.name == name) return e.help;
  }
  return "hemocloud metric.";
}

/// `{a="x",b="y"}` (empty string when unlabeled); `extra` appends one more
/// pre-rendered pair (the histogram `le`).
std::string prom_label_block(const Labels& labels,
                             const std::string& extra = {}) {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    append_prom_label_escaped(out, value);
    out += '"';
  }
  if (!extra.empty()) {
    if (!first) out += ',';
    out += extra;
  }
  out += '}';
  return out;
}

}  // namespace

std::vector<CumulativeBucket> cumulative_buckets(
    const HistogramData& histogram) {
  std::vector<CumulativeBucket> out;
  if (histogram.buckets.empty()) return out;
  out.reserve(histogram.buckets.size());
  std::uint64_t running = 0;
  for (std::size_t b = 0; b < histogram.buckets.size(); ++b) {
    running += histogram.buckets[b];
    CumulativeBucket bucket;
    bucket.inf = b >= histogram.edges.size();
    bucket.le = bucket.inf ? 0.0 : histogram.edges[b];
    bucket.count = running;
    out.push_back(bucket);
  }
  return out;
}

std::string to_prometheus(const std::vector<MetricSnapshot>& snapshots) {
  // Group series into families: Prometheus requires every series of a
  // family contiguous under one TYPE header. The canonical key order
  // interleaves families ("foo_bar" sorts between "foo" and "foo{a=1}"),
  // so regroup by (name, kind) — map order keeps the bytes deterministic.
  std::map<std::pair<std::string, MetricKind>,
           std::vector<const MetricSnapshot*>>
      families;
  for (const MetricSnapshot& snap : snapshots) {
    families[{snap.name, snap.kind}].push_back(&snap);
  }

  std::string out;
  for (const auto& [family, series] : families) {
    const auto& [name, kind] = family;
    out += "# HELP " + name + ' ';
    append_prom_help_escaped(out, metric_help(name));
    out += '\n';
    out += "# TYPE " + name + ' ';
    out += prom_type_name(kind);
    out += '\n';
    for (const MetricSnapshot* snap : series) {
      if (kind != MetricKind::kHistogram) {
        out += name + prom_label_block(snap->labels) + ' ' +
               num(snap->value) + '\n';
        continue;
      }
      for (const CumulativeBucket& bucket :
           cumulative_buckets(snap->histogram)) {
        const std::string le =
            bucket.inf ? std::string("+Inf") : num(bucket.le);
        out += name + "_bucket" +
               prom_label_block(snap->labels, "le=\"" + le + "\"") + ' ' +
               num_u64(bucket.count) + '\n';
      }
      out += name + "_sum" + prom_label_block(snap->labels) + ' ' +
             num(snap->histogram.sum) + '\n';
      out += name + "_count" + prom_label_block(snap->labels) + ' ' +
             num_u64(snap->histogram.count) + '\n';
    }
  }
  return out;
}

std::string to_prometheus(const MetricsRegistry& registry) {
  return to_prometheus(registry.snapshot());
}

std::string metric_json_object(const MetricSnapshot& snap) {
  std::string out = "{\"name\":\"";
  append_json_escaped(out, snap.name);
  out += "\",\"labels\":{";
  for (std::size_t i = 0; i < snap.labels.size(); ++i) {
    if (i > 0) out += ',';
    out += '"';
    append_json_escaped(out, snap.labels[i].first);
    out += "\":\"";
    append_json_escaped(out, snap.labels[i].second);
    out += '"';
  }
  out += "},\"type\":\"";
  out += prom_type_name(snap.kind);
  out += '"';
  if (snap.kind == MetricKind::kHistogram) {
    const HistogramData& h = snap.histogram;
    out += ",\"count\":" + num_u64(h.count);
    out += ",\"sum\":" + num(h.sum);
    out += ",\"min\":" + num(h.min);
    out += ",\"max\":" + num(h.max);
    out += ",\"p50\":" + num(h.quantile(0.50));
    out += ",\"p90\":" + num(h.quantile(0.90));
    out += ",\"p99\":" + num(h.quantile(0.99));
    // Cumulative counts (Prometheus semantics), `le` as a string so the
    // closing +Inf bucket stays valid JSON.
    out += ",\"buckets\":[";
    bool first = true;
    for (const CumulativeBucket& bucket : cumulative_buckets(h)) {
      if (!first) out += ',';
      first = false;
      out += "{\"le\":\"";
      out += bucket.inf ? std::string("+Inf") : num(bucket.le);
      out += "\",\"count\":" + num_u64(bucket.count) + '}';
    }
    out += ']';
  } else {
    out += ",\"value\":" + num(snap.value);
  }
  out += '}';
  return out;
}

std::string to_metrics_json(const std::vector<MetricSnapshot>& snapshots) {
  std::string out = "{\"metrics\":[";
  for (std::size_t i = 0; i < snapshots.size(); ++i) {
    if (i > 0) out += ',';
    out += '\n';
    out += metric_json_object(snapshots[i]);
  }
  out += "\n],\"series\":" + std::to_string(snapshots.size()) + "}\n";
  return out;
}

std::string to_metrics_json(const MetricsRegistry& registry) {
  return to_metrics_json(registry.snapshot());
}

bool glob_match(std::string_view pattern, std::string_view text) {
  // Iterative star-backtracking: linear in |text| * stars.
  std::size_t p = 0, t = 0;
  std::size_t star = std::string_view::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

bool series_matches(std::string_view pattern, const MetricSnapshot& snap) {
  if (pattern.empty()) return true;
  if (pattern.find('{') == std::string_view::npos) {
    return glob_match(pattern, snap.name);
  }
  return glob_match(pattern, snap.key());
}

namespace {

/// Targeted scans over one JSONL line of our own format (no general JSON
/// parser needed — the emitter above fixes the field shapes).
std::string json_string_field(std::string_view line, std::string_view key) {
  std::string tag = "\"";
  tag += key;
  tag += "\":\"";
  const auto pos = line.find(tag);
  if (pos == std::string_view::npos) return "";
  std::string out;
  for (std::size_t i = pos + tag.size(); i < line.size(); ++i) {
    if (line[i] == '\\' && i + 1 < line.size()) {
      const char next = line[++i];
      out += next == 'n' ? '\n' : next;  // \uXXXX beyond \n not round-tripped
    } else if (line[i] == '"') {
      break;
    } else {
      out += line[i];
    }
  }
  return out;
}

real_t json_number_field(std::string_view line, std::string_view key,
                         real_t fallback) {
  std::string tag = "\"";
  tag += key;
  tag += "\":";
  const auto pos = line.find(tag);
  if (pos == std::string_view::npos) return fallback;
  const std::string text(line.substr(pos + tag.size(), 40));
  char* end = nullptr;
  const real_t value = std::strtod(text.c_str(), &end);
  if (end == text.c_str()) {
    throw NumericError("metrics JSONL: malformed number for field \"" +
                       std::string(key) + '"');
  }
  return value;
}

Labels parse_labels(std::string_view line) {
  Labels labels;
  const std::string_view open = "\"labels\":{";
  const auto start = line.find(open);
  if (start == std::string_view::npos) return labels;
  std::size_t i = start + open.size();
  while (i < line.size() && line[i] != '}') {
    if (line[i] == ',') {
      ++i;
      continue;
    }
    // "key":"value"
    HEMO_REQUIRE(line[i] == '"', "metrics JSONL: malformed labels object");
    std::string key, value;
    for (++i; i < line.size() && line[i] != '"'; ++i) {
      if (line[i] == '\\' && i + 1 < line.size()) ++i;
      key += line[i];
    }
    i += 3;  // skip `":"`
    for (; i < line.size() && line[i] != '"'; ++i) {
      if (line[i] == '\\' && i + 1 < line.size()) ++i;
      value += line[i];
    }
    ++i;  // closing quote
    labels.emplace_back(std::move(key), std::move(value));
  }
  return labels;
}

/// Rebuilds edges + per-bucket counts from the cumulative bucket array.
HistogramData parse_histogram(std::string_view line) {
  HistogramData h;
  h.count = static_cast<std::uint64_t>(json_number_field(line, "count", 0));
  h.sum = json_number_field(line, "sum", 0.0);
  h.min = json_number_field(line, "min", 0.0);
  h.max = json_number_field(line, "max", 0.0);
  const std::string_view open = "\"buckets\":[";
  auto pos = line.find(open);
  if (pos == std::string_view::npos) return h;
  pos += open.size();
  const auto close = line.find(']', pos);
  std::uint64_t previous = 0;
  while (pos < close) {
    const auto entry_end = std::min(line.find('}', pos) + 1, close);
    const std::string_view entry = line.substr(pos, entry_end - pos);
    const std::string le = json_string_field(entry, "le");
    const auto cumulative = static_cast<std::uint64_t>(
        json_number_field(entry, "count", 0));
    HEMO_REQUIRE(cumulative >= previous,
                 "metrics JSONL: bucket counts must be cumulative");
    if (le != "+Inf") {
      char* end = nullptr;
      h.edges.push_back(std::strtod(le.c_str(), &end));
    }
    h.buckets.push_back(cumulative - previous);
    previous = cumulative;
    pos = entry_end;
    while (pos < close && (line[pos] == ',' || line[pos] == ' ')) ++pos;
  }
  return h;
}

}  // namespace

std::vector<MetricSnapshot> parse_metrics_jsonl(std::string_view text) {
  std::vector<MetricSnapshot> out;
  std::size_t start = 0;
  while (start < text.size()) {
    auto end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    MetricSnapshot snap;
    snap.name = json_string_field(line, "name");
    if (snap.name.empty()) continue;
    snap.labels = parse_labels(line);
    const std::string type = json_string_field(line, "type");
    if (type == "histogram") {
      snap.kind = MetricKind::kHistogram;
      snap.histogram = parse_histogram(line);
    } else {
      snap.kind = type == "gauge" ? MetricKind::kGauge : MetricKind::kCounter;
      snap.value = json_number_field(line, "value", 0.0);
    }
    out.push_back(std::move(snap));
  }
  return out;
}

namespace {

void append_json_map_entry(std::string& out, bool& first,
                           std::string_view key, const std::string& value) {
  if (!first) out += ',';
  first = false;
  out += '"';
  append_json_escaped(out, key);
  out += "\":";
  out += value;
}

}  // namespace

std::string status_json(const std::vector<MetricSnapshot>& snapshots) {
  real_t completed = 0.0, failed = 0.0, attempts = 0.0, requeues = 0.0;
  real_t preemptions = 0.0, guard_stops = 0.0, crashes = 0.0;
  real_t correction = 1.0, mean_abs_rel_error = 0.0;
  std::map<std::string, real_t> imbalance;       // workload -> gauge
  std::map<std::string, real_t> rank_busy;       // rank -> sum seconds
  std::map<std::string, real_t> drift_p99;       // workload -> worst p99
  for (const MetricSnapshot& snap : snapshots) {
    const auto label = [&snap](std::string_view key) {
      for (const auto& [k, v] : snap.labels) {
        if (k == key) return v;
      }
      return std::string();
    };
    if (snap.name == "campaign_jobs_total") {
      (label("outcome") == "completed" ? completed : failed) += snap.value;
    } else if (snap.name == "campaign_attempts_total") {
      attempts += snap.value;
    } else if (snap.name == "campaign_requeues_total") {
      requeues += snap.value;
    } else if (snap.name == "campaign_preemptions_total") {
      preemptions += snap.value;
    } else if (snap.name == "campaign_guard_stops_total") {
      guard_stops += snap.value;
    } else if (snap.name == "campaign_worker_crashes_total") {
      crashes += snap.value;
    } else if (snap.name == "campaign_correction_factor") {
      correction = snap.value;
    } else if (snap.name == "campaign_mean_abs_rel_error") {
      mean_abs_rel_error = snap.value;
    } else if (snap.name == "runtime_measured_imbalance") {
      imbalance[label("workload")] = snap.value;
    } else if (snap.name == "runtime_window_busy_seconds") {
      rank_busy[label("rank")] += snap.histogram.sum;
    } else if (snap.name == "model_drift_mflups_rel_error") {
      real_t& worst = drift_p99[label("workload")];
      worst = std::max(worst, snap.histogram.quantile(0.99));
    }
  }

  std::string out = "{\"campaign\":{";
  bool first = true;
  append_json_map_entry(out, first, "jobs_completed", num(completed));
  append_json_map_entry(out, first, "jobs_failed", num(failed));
  append_json_map_entry(out, first, "attempts", num(attempts));
  append_json_map_entry(out, first, "requeues", num(requeues));
  append_json_map_entry(out, first, "preemptions", num(preemptions));
  append_json_map_entry(out, first, "guard_stops", num(guard_stops));
  append_json_map_entry(out, first, "worker_crashes", num(crashes));
  append_json_map_entry(out, first, "correction_factor", num(correction));
  append_json_map_entry(out, first, "mean_abs_rel_error",
                        num(mean_abs_rel_error));
  out += "},\"runtime\":{\"imbalance\":{";
  first = true;
  for (const auto& [workload, value] : imbalance) {
    append_json_map_entry(out, first, workload, num(value));
  }
  out += "},\"rank_busy_seconds\":{";
  first = true;
  for (const auto& [rank, value] : rank_busy) {
    append_json_map_entry(out, first, rank, num(value));
  }
  out += "}},\"model_drift_p99\":{";
  first = true;
  for (const auto& [workload, value] : drift_p99) {
    append_json_map_entry(out, first, workload, num(value));
  }
  out += "},\"series\":" + std::to_string(snapshots.size()) + "}\n";
  return out;
}

std::string status_json(const MetricsRegistry& registry) {
  return status_json(registry.snapshot());
}

}  // namespace hemo::obs
