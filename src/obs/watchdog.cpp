#include "obs/watchdog.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "obs/export.hpp"
#include "obs/log.hpp"

namespace hemo::obs {

namespace {

std::string num(real_t value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

std::string_view trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t')) {
    text.remove_suffix(1);
  }
  return text;
}

bool is_quantile(std::string_view agg) {
  return agg == "p50" || agg == "p90" || agg == "p99";
}

real_t quantile_of(std::string_view agg) {
  if (agg == "p50") return 0.50;
  if (agg == "p90") return 0.90;
  return 0.99;
}

/// Sum of counter/gauge values plus histogram sums across matched series.
real_t selector_sum(const std::vector<MetricSnapshot>& snapshots,
                    std::string_view selector, std::size_t* matched) {
  real_t total = 0.0;
  for (const MetricSnapshot& snap : snapshots) {
    if (!series_matches(selector, snap)) continue;
    ++*matched;
    total += snap.kind == MetricKind::kHistogram ? snap.histogram.sum
                                                 : snap.value;
  }
  return total;
}

}  // namespace

std::string_view health_name(Health health) noexcept {
  switch (health) {
    case Health::kOk: return "ok";
    case Health::kDegraded: return "degraded";
    case Health::kUnhealthy: return "unhealthy";
  }
  return "?";
}

std::string SloRule::to_string() const {
  std::string out = name + ": " + aggregate + '(' + selector;
  if (!denominator.empty()) out += ", " + denominator;
  out += ") " + op + ' ' + num(threshold) + " => ";
  out += health_name(severity);
  return out;
}

SloRule parse_slo_rule(std::string_view line) {
  const auto fail = [&line](const std::string& what) -> NumericError {
    return NumericError("SLO rule \"" + std::string(line) + "\": " + what);
  };

  SloRule rule;
  const auto colon = line.find(':');
  if (colon == std::string_view::npos) throw fail("missing `name:`");
  rule.name = std::string(trim(line.substr(0, colon)));
  if (rule.name.empty()) throw fail("empty rule name");

  std::string_view rest = trim(line.substr(colon + 1));
  const auto open = rest.find('(');
  const auto close = rest.find(')', open);
  if (open == std::string_view::npos || close == std::string_view::npos) {
    throw fail("expected agg(selector)");
  }
  rule.aggregate = std::string(trim(rest.substr(0, open)));
  static constexpr std::string_view kAggs[] = {
      "value", "sum", "count", "min", "max",
      "mean",  "p50", "p90",   "p99", "ratio"};
  if (std::find(std::begin(kAggs), std::end(kAggs), rule.aggregate) ==
      std::end(kAggs)) {
    throw fail("unknown aggregate `" + rule.aggregate + '`');
  }
  std::string_view inside = rest.substr(open + 1, close - open - 1);
  if (rule.aggregate == "ratio") {
    const auto comma = inside.find(',');
    if (comma == std::string_view::npos) {
      throw fail("ratio() needs two selectors");
    }
    rule.selector = std::string(trim(inside.substr(0, comma)));
    rule.denominator = std::string(trim(inside.substr(comma + 1)));
    if (rule.denominator.empty()) throw fail("empty ratio denominator");
  } else {
    if (inside.find(',') != std::string_view::npos) {
      throw fail(rule.aggregate + "() takes one selector");
    }
    rule.selector = std::string(trim(inside));
  }
  if (rule.selector.empty()) throw fail("empty selector");

  rest = trim(rest.substr(close + 1));
  const auto space = rest.find(' ');
  if (space == std::string_view::npos) throw fail("expected `op threshold`");
  rule.op = std::string(trim(rest.substr(0, space)));
  if (rule.op != "<" && rule.op != "<=" && rule.op != ">" &&
      rule.op != ">=") {
    throw fail("unknown comparison `" + rule.op + '`');
  }

  rest = trim(rest.substr(space + 1));
  const auto arrow = rest.find("=>");
  if (arrow == std::string_view::npos) throw fail("missing `=> severity`");
  const std::string threshold_text(trim(rest.substr(0, arrow)));
  char* end = nullptr;
  rule.threshold = std::strtod(threshold_text.c_str(), &end);
  if (end == threshold_text.c_str() || *end != '\0') {
    throw fail("malformed threshold `" + threshold_text + '`');
  }

  const std::string_view severity = trim(rest.substr(arrow + 2));
  if (severity == "degraded") {
    rule.severity = Health::kDegraded;
  } else if (severity == "unhealthy") {
    rule.severity = Health::kUnhealthy;
  } else {
    throw fail("severity must be `degraded` or `unhealthy`");
  }
  return rule;
}

std::vector<SloRule> default_campaign_rules() {
  // The thresholds mirror the repo's measured envelopes: drift p99 within
  // the calibration band, imbalance near the rebalancer's target, a
  // preemption-per-attempt rate that a spot storm pushes past 1, and
  // hard-failure floors that should never trip in a healthy campaign.
  static constexpr const char* kRules[] = {
      "drift_p99_band: p99(model_drift_mflups_rel_error) <= 0.35 "
      "=> degraded",
      "imbalance_ceiling: max(runtime_measured_imbalance) <= 1.5 "
      "=> degraded",
      "preemption_rate: ratio(campaign_preemptions_total, "
      "campaign_attempts_total) <= 0.5 => degraded",
      "failure_rate: ratio(campaign_jobs_total{outcome=failed}, "
      "campaign_attempts_total) <= 0.25 => unhealthy",
      "guard_stop_rate: ratio(campaign_guard_stops_total, "
      "campaign_attempts_total) <= 0.25 => unhealthy",
  };
  std::vector<SloRule> rules;
  rules.reserve(std::size(kRules));
  for (const char* line : kRules) rules.push_back(parse_slo_rule(line));
  return rules;
}

Watchdog::~Watchdog() { stop(); }

void Watchdog::set_rules(std::vector<SloRule> rules) {
  const MutexLock lock(mutex_);
  rules_ = std::move(rules);
}

std::vector<SloRule> Watchdog::rules() const {
  const MutexLock lock(mutex_);
  return rules_;
}

void Watchdog::on_unhealthy(std::function<void()> hook) {
  const MutexLock lock(mutex_);
  unhealthy_hook_ = std::move(hook);
}

Health Watchdog::evaluate() {
  const std::vector<MetricSnapshot> snapshots = registry_->snapshot();

  std::vector<SloRule> rules;
  Health previous;
  {
    const MutexLock lock(mutex_);
    rules = rules_;
    previous = health_;
  }

  std::vector<RuleOutcome> outcomes;
  outcomes.reserve(rules.size());
  Health overall = Health::kOk;
  for (const SloRule& rule : rules) {
    RuleOutcome outcome;
    outcome.rule = rule;
    std::size_t matched = 0;
    if (rule.aggregate == "ratio") {
      std::size_t denom_matched = 0;
      const real_t numerator =
          selector_sum(snapshots, rule.selector, &matched);
      const real_t denominator =
          selector_sum(snapshots, rule.denominator, &denom_matched);
      outcome.applicable = matched > 0 && denominator != 0.0;
      if (outcome.applicable) outcome.observed = numerator / denominator;
    } else if (is_quantile(rule.aggregate)) {
      // Worst (largest) quantile across matched histogram series: one bad
      // instance must not hide behind healthy siblings.
      const real_t q = quantile_of(rule.aggregate);
      for (const MetricSnapshot& snap : snapshots) {
        if (snap.kind != MetricKind::kHistogram) continue;
        if (!series_matches(rule.selector, snap)) continue;
        if (snap.histogram.count == 0) continue;
        const real_t value = snap.histogram.quantile(q);
        outcome.observed =
            matched == 0 ? value : std::max(outcome.observed, value);
        ++matched;
      }
      outcome.applicable = matched > 0;
    } else {
      bool first = true;
      for (const MetricSnapshot& snap : snapshots) {
        if (!series_matches(rule.selector, snap)) continue;
        const real_t value = snap.kind == MetricKind::kHistogram
                                 ? snap.histogram.sum
                                 : snap.value;
        ++matched;
        if (rule.aggregate == "count") continue;
        if (rule.aggregate == "min") {
          outcome.observed = first ? value : std::min(outcome.observed, value);
        } else if (rule.aggregate == "max" || rule.aggregate == "value") {
          outcome.observed = first ? value : std::max(outcome.observed, value);
        } else {  // sum / mean accumulate
          outcome.observed += value;
        }
        first = false;
      }
      outcome.applicable = matched > 0;
      if (rule.aggregate == "count") {
        outcome.observed = static_cast<real_t>(matched);
        outcome.applicable = true;  // "no series" is a meaningful count
      } else if (rule.aggregate == "mean" && matched > 0) {
        outcome.observed /= static_cast<real_t>(matched);
      }
    }

    if (outcome.applicable) {
      const real_t v = outcome.observed, t = rule.threshold;
      const bool ok = rule.op == "<"    ? v < t
                      : rule.op == "<=" ? v <= t
                      : rule.op == ">"  ? v > t
                                        : v >= t;
      outcome.breached = !ok;
      if (outcome.breached) overall = std::max(overall, rule.severity);
    }
    outcomes.push_back(std::move(outcome));
  }

  // Export state before logging so a log-triggered scrape sees it.
  registry_->set("watchdog_health_state", static_cast<real_t>(overall));
  for (const RuleOutcome& outcome : outcomes) {
    registry_->set("watchdog_rule_breached",
                   outcome.breached ? 1.0 : 0.0,
                   {{"rule", outcome.rule.name}});
    registry_->set("watchdog_rule_observed", outcome.observed,
                   {{"rule", outcome.rule.name}});
  }

  std::function<void()> hook;
  {
    const MutexLock lock(mutex_);
    health_ = overall;
    outcomes_ = outcomes;
    if (overall == Health::kUnhealthy && previous != Health::kUnhealthy) {
      hook = unhealthy_hook_;
    }
  }

  if (overall != previous) {
    std::string breached;
    for (const RuleOutcome& outcome : outcomes) {
      if (!outcome.breached) continue;
      if (!breached.empty()) breached += ", ";
      breached += outcome.rule.name + '=' + num(outcome.observed);
    }
    if (overall == Health::kUnhealthy) {
      HEMO_LOG_ERROR("watchdog: %s -> unhealthy (%s)",
                     std::string(health_name(previous)).c_str(),
                     breached.c_str());
    } else if (overall == Health::kDegraded) {
      HEMO_LOG_WARN("watchdog: %s -> degraded (%s)",
                    std::string(health_name(previous)).c_str(),
                    breached.c_str());
    } else {
      HEMO_LOG_INFO("watchdog: %s -> ok (recovered)",
                    std::string(health_name(previous)).c_str());
    }
  }
  if (hook) hook();
  return overall;
}

Health Watchdog::health() const {
  const MutexLock lock(mutex_);
  return health_;
}

std::vector<RuleOutcome> Watchdog::outcomes() const {
  const MutexLock lock(mutex_);
  return outcomes_;
}

std::string Watchdog::health_json() const {
  Health health;
  std::vector<RuleOutcome> outcomes;
  {
    const MutexLock lock(mutex_);
    health = health_;
    outcomes = outcomes_;
  }
  std::string out = "{\"status\":\"";
  out += health_name(health);
  out += "\",\"rules\":[";
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const RuleOutcome& outcome = outcomes[i];
    if (i > 0) out += ',';
    out += "\n{\"name\":\"" + outcome.rule.name + "\",\"expr\":\"";
    // Rule text comes from the parsed grammar (no quotes/backslashes
    // survive parsing), so plain concatenation stays valid JSON.
    out += outcome.rule.to_string();
    out += "\",\"applicable\":";
    out += outcome.applicable ? "true" : "false";
    out += ",\"breached\":";
    out += outcome.breached ? "true" : "false";
    out += ",\"observed\":" + num(outcome.observed) + '}';
  }
  out += "\n]}\n";
  return out;
}

void Watchdog::start(real_t period_s) {
  const MutexLock lock(mutex_);
  if (cadence_.joinable()) return;
  stopping_ = false;
  period_s = std::clamp(period_s, 0.01, 3600.0);
  cadence_ = std::jthread([this, period_s] { cadence_loop(period_s); });
}

void Watchdog::stop() {
  std::jthread cadence;
  {
    const MutexLock lock(mutex_);
    if (!cadence_.joinable()) return;
    stopping_ = true;
    cadence = std::move(cadence_);
  }
  wake_.notify_all();
  cadence.join();
}

void Watchdog::cadence_loop(real_t period_s) {
  const auto period = std::chrono::duration<real_t>(period_s);
  while (true) {
    {
      const MutexLock lock(mutex_);
      if (stopping_) return;
      wake_.wait_for(mutex_, period);  // stop() notifies to exit promptly
      if (stopping_) return;
    }
    evaluate();
  }
}

}  // namespace hemo::obs
