#include "obs/drift.hpp"

#include <array>

namespace hemo::obs {

namespace {

constexpr std::array<real_t, 17> kErrorEdges = {
    -1.0, -0.5, -0.3, -0.2, -0.1, -0.05, -0.02, -0.01, 0.0,
    0.01, 0.02, 0.05, 0.1,  0.2,  0.3,   0.5,   1.0};

}  // namespace

std::string drift_round_label(index_t round) {
  if (round <= 3) return std::to_string(round < 0 ? 0 : round);
  if (round <= 7) return "4-7";
  return "8+";
}

std::span<const real_t> drift_error_edges() noexcept { return kErrorEdges; }

void record_drift(MetricsRegistry& registry, const DriftSample& sample) {
  if (!registry.enabled()) return;
  const Labels base = {{"workload", sample.workload},
                       {"instance", sample.instance}};
  registry.add("model_drift_samples_total", 1.0, base);

  Labels keyed = base;
  keyed.emplace_back("round", drift_round_label(sample.round));
  if (sample.measured_mflups > 0.0) {
    const real_t error = (sample.predicted_mflups - sample.measured_mflups) /
                         sample.measured_mflups;
    registry.observe("model_drift_mflups_rel_error", error, keyed,
                     drift_error_edges());
  }
  if (sample.actual_step_seconds > 0.0 &&
      sample.predicted_step_seconds > 0.0) {
    const real_t error =
        (sample.predicted_step_seconds - sample.actual_step_seconds) /
        sample.actual_step_seconds;
    registry.observe("model_drift_step_time_rel_error", error, keyed,
                     drift_error_edges());
  }
}

}  // namespace hemo::obs
