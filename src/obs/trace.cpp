#include "obs/trace.hpp"

#include <cstdio>
#include <fstream>

namespace hemo::obs {

namespace {

void append_json_escaped(std::string& out, const std::string& text) {
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buffer;
    } else {
      out += c;
    }
  }
}

std::string format_us(real_t us) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.3f", us);
  return buffer;
}

}  // namespace

std::string trace_num(real_t value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder recorder;
  return recorder;
}

void TraceRecorder::reset() {
  const MutexLock lock(mutex_);
  events_.clear();
}

void TraceRecorder::record(Event event) {
  const MutexLock lock(mutex_);
  events_.push_back(std::move(event));
}

void TraceRecorder::virtual_span(std::string name, std::string category,
                                 index_t track, units::Seconds start,
                                 units::Seconds end, TraceArgs args) {
  if (!enabled()) return;
  HEMO_REQUIRE(start <= end, "virtual span must not end before it starts");
  Event event;
  event.name = std::move(name);
  event.category = std::move(category);
  event.phase = 'X';
  event.wall = false;
  event.track = track;
  event.ts_us = start.value() * 1e6;
  event.dur_us = (end - start).value() * 1e6;
  event.args = std::move(args);
  record(std::move(event));
}

void TraceRecorder::virtual_instant(std::string name, std::string category,
                                    index_t track, units::Seconds at,
                                    TraceArgs args) {
  if (!enabled()) return;
  Event event;
  event.name = std::move(name);
  event.category = std::move(category);
  event.phase = 'i';
  event.wall = false;
  event.track = track;
  event.ts_us = at.value() * 1e6;
  event.args = std::move(args);
  record(std::move(event));
}

TraceRecorder::WallSpan::WallSpan(TraceRecorder& recorder, std::string name,
                                  std::string category, TraceArgs args)
    : recorder_(recorder.enabled() ? &recorder : nullptr),
      name_(std::move(name)),
      category_(std::move(category)),
      args_(std::move(args)) {
  if (recorder_ != nullptr) start_ = std::chrono::steady_clock::now();
}

TraceRecorder::WallSpan::~WallSpan() {
  if (recorder_ == nullptr || !recorder_->enabled()) return;
  const auto end = std::chrono::steady_clock::now();
  Event event;
  event.name = std::move(name_);
  event.category = std::move(category_);
  event.phase = 'X';
  event.wall = true;
  event.track = 0;
  event.ts_us =
      std::chrono::duration<real_t, std::micro>(start_.time_since_epoch())
          .count();
  event.dur_us =
      std::chrono::duration<real_t, std::micro>(end - start_).count();
  event.args = std::move(args_);
  recorder_->record(std::move(event));
}

std::size_t TraceRecorder::virtual_event_count() const {
  const MutexLock lock(mutex_);
  std::size_t n = 0;
  for (const Event& event : events_) {
    if (!event.wall) ++n;
  }
  return n;
}

std::vector<TraceRecorder::VirtualEvent> TraceRecorder::virtual_events()
    const {
  const MutexLock lock(mutex_);
  std::vector<VirtualEvent> out;
  for (const Event& event : events_) {
    if (event.wall) continue;
    VirtualEvent v;
    v.name = event.name;
    v.category = event.category;
    v.phase = event.phase;
    v.track = event.track;
    v.ts_us = event.ts_us;
    v.dur_us = event.dur_us;
    v.args = event.args;
    out.push_back(std::move(v));
  }
  return out;
}

std::string TraceRecorder::to_chrome_json(bool include_wall) const {
  std::vector<Event> events;
  {
    const MutexLock lock(mutex_);
    events = events_;
  }

  std::string out = "{\"traceEvents\":[\n";
  // Process-name metadata first, so Perfetto labels the two clock domains.
  out +=
      "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
      "\"args\":{\"name\":\"campaign (virtual time)\"}}";
  bool first = false;
  const auto emit = [&out, &first](const Event& event) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":\"";
    append_json_escaped(out, event.name);
    out += "\",\"cat\":\"";
    append_json_escaped(out, event.category);
    out += "\",\"ph\":\"";
    out += event.phase;
    out += "\",\"pid\":";
    out += event.wall ? '2' : '1';
    out += ",\"tid\":" + std::to_string(event.track);
    out += ",\"ts\":" + format_us(event.ts_us);
    if (event.phase == 'X') {
      out += ",\"dur\":" + format_us(event.dur_us);
    } else if (event.phase == 'i') {
      out += ",\"s\":\"t\"";  // instant scoped to its thread/track
    }
    if (!event.args.empty()) {
      out += ",\"args\":{";
      for (std::size_t i = 0; i < event.args.size(); ++i) {
        if (i > 0) out += ',';
        out += '"';
        append_json_escaped(out, event.args[i].first);
        out += "\":\"";
        append_json_escaped(out, event.args[i].second);
        out += '"';
      }
      out += '}';
    }
    out += '}';
  };

  bool any_wall = false;
  for (const Event& event : events) {
    if (event.wall) {
      any_wall = true;
      continue;
    }
    emit(event);
  }
  if (include_wall && any_wall) {
    if (!first) out += ",\n";
    first = false;
    out +=
        "{\"ph\":\"M\",\"pid\":2,\"name\":\"process_name\","
        "\"args\":{\"name\":\"wall clock\"}}";
    for (const Event& event : events) {
      if (event.wall) emit(event);
    }
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

void TraceRecorder::write_chrome_json(const std::string& path,
                                      bool include_wall) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.good()) throw NumericError("cannot write trace file: " + path);
  out << to_chrome_json(include_wall);
}

}  // namespace hemo::obs
