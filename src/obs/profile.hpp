// Cooperative phase-stack sampling profiler.
//
// Instrumented threads push/pop RAII PhaseScope markers ("attempt",
// "pack", "interior", ...) onto a small per-thread stack of static string
// pointers; a sampler thread wakes at a fixed period, snapshots every
// registered stack, and accumulates one count per observed stack path.
// The aggregate renders directly as collapsed-stack ("folded") flamegraph
// input — `label;phase_a;phase_b 172` — and as per-phase *self time*
// gauges (leaf-frame samples x sampling period).
//
// Sampling model and bias bounds (DESIGN.md §14): the sampler sleeps on
// absolute deadlines (`sleep_until(start + n * period)`), so the tick
// count over a run of length T is T/period ± 1 regardless of scheduling
// jitter, and the total attributed self time is within one period of
// elapsed wall time per thread. Individual phases shorter than the period
// are seen probabilistically (standard sampling-profiler behaviour) but
// their *expected* attributed time is unbiased. A phase push/pop is two
// relaxed/release atomic stores on the owning thread — cheap enough for
// per-window runtime phases, and the whole layer compiles to an
// early-return when disabled (the default), preserving the repo's
// behaviour-neutrality contract.
//
// Thread-safety: registration and aggregation are guarded by a
// hemo::Mutex. The per-thread frame stacks are written only by the owning
// thread and read by the sampler through atomics (release store on the
// depth, acquire load by the sampler) — a torn read across a push/pop race
// can at worst attribute one sample to the enclosing stack, never read a
// dangling pointer, because frames hold pointers to string literals with
// static storage duration.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "util/sync.hpp"

namespace hemo::obs {

class PhaseProfiler {
 public:
  /// Maximum phase-marker nesting; deeper scopes are silently not pushed
  /// (the sample lands on the enclosing phase).
  static constexpr int kMaxDepth = 16;

  PhaseProfiler() = default;
  ~PhaseProfiler();
  PhaseProfiler(const PhaseProfiler&) = delete;
  PhaseProfiler& operator=(const PhaseProfiler&) = delete;

  /// The process-wide profiler the PhaseScope markers record into.
  [[nodiscard]] static PhaseProfiler& global();

  /// Profiling is opt-in; while disabled PhaseScope and set_thread_label
  /// are no-ops (one relaxed load).
  void enable(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Starts the sampler thread at `hz` samples/second (clamped to
  /// [1, 10000]). Implies enable(true). No-op if already running.
  void start(real_t hz = 997.0) HEMO_EXCLUDES(mutex_);

  /// Stops the sampler thread (markers stay enabled until enable(false)).
  void stop() HEMO_EXCLUDES(mutex_);

  /// Drops all accumulated samples (registered threads stay registered).
  void reset() HEMO_EXCLUDES(mutex_);

  /// Collapsed-stack flamegraph output, one line per distinct stack:
  /// `label;phase1;phase2 count`, sorted by stack path. Feed to
  /// flamegraph.pl / speedscope / inferno directly.
  [[nodiscard]] std::string folded() const HEMO_EXCLUDES(mutex_);

  /// Writes folded() to `path` (truncating); throws NumericError on I/O
  /// failure.
  void write_folded(const std::string& path) const HEMO_EXCLUDES(mutex_);

  /// Exports per-phase self time (leaf samples x period) as
  /// `profile_phase_self_seconds{phase=...,thread=...}` gauges plus
  /// `profile_sample_period_seconds` / `profile_samples_count`.
  void export_metrics(MetricsRegistry& registry) const HEMO_EXCLUDES(mutex_);

  /// Total stack snapshots taken since start()/reset().
  [[nodiscard]] std::uint64_t sample_count() const HEMO_EXCLUDES(mutex_);

  /// Sampling period of the most recent start() (0 before any start).
  [[nodiscard]] real_t period_seconds() const HEMO_EXCLUDES(mutex_);

  /// Labels the calling thread in folded output ("rank3", "worker1",
  /// "cli"); unlabeled threads render as "thread". Registers the calling
  /// thread if it is not yet known. No-op while disabled.
  void set_thread_label(std::string_view label) HEMO_EXCLUDES(mutex_);

  // -- owning-thread fast path (called by PhaseScope) ----------------------

  /// Pushes a phase frame; returns false when not pushed (disabled or
  /// stack full) so the matching pop is skipped.
  [[nodiscard]] bool push_phase(const char* literal) HEMO_EXCLUDES(mutex_);
  void pop_phase() noexcept;

  struct Holder;  ///< thread_local registration handle (deregisters on exit)

 private:
  /// Per-thread marker stack. Written by the owning thread only; the
  /// sampler reads depth (acquire) then frames below it. Frames are
  /// pointers to string literals, so a stale read is always a valid
  /// pointer to a still-live phase name.
  struct ThreadStack {
    std::array<std::atomic<const char*>,  // atomic-ok(single-writer frames)
               kMaxDepth>
        frames;
    std::atomic<int> depth{0};  // atomic-ok(release store / acquire read)
    std::string label = "thread";
  };

  std::shared_ptr<ThreadStack> stack_for_this_thread() HEMO_EXCLUDES(mutex_);
  void sampler_loop(std::chrono::steady_clock::duration period,
                    std::chrono::steady_clock::time_point start)
      HEMO_EXCLUDES(mutex_);

  std::atomic<bool> enabled_{false};   // atomic-ok(relaxed on/off latch)
  std::atomic<bool> stopping_{false};  // atomic-ok(sampler shutdown flag)

  mutable Mutex mutex_;
  std::vector<std::shared_ptr<ThreadStack>> threads_ HEMO_GUARDED_BY(mutex_);
  /// stack path ("label;a;b") -> snapshot count.
  std::map<std::string, std::uint64_t> samples_ HEMO_GUARDED_BY(mutex_);
  std::uint64_t total_samples_ HEMO_GUARDED_BY(mutex_) = 0;
  real_t period_s_ HEMO_GUARDED_BY(mutex_) = 0.0;
  std::jthread sampler_ HEMO_GUARDED_BY(mutex_);
};

/// RAII phase marker. The `literal` argument must be a string literal (or
/// otherwise have static storage duration) — the profiler stores the
/// pointer, not a copy.
class PhaseScope {
 public:
  explicit PhaseScope(const char* literal)
      : pushed_(PhaseProfiler::global().push_phase(literal)) {}
  ~PhaseScope() {
    if (pushed_) PhaseProfiler::global().pop_phase();
  }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  bool pushed_;
};

/// Convenience forwarding to PhaseProfiler::global().set_thread_label().
inline void set_thread_label(std::string_view label) {
  PhaseProfiler::global().set_thread_label(label);
}

}  // namespace hemo::obs
