#include "obs/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "obs/export.hpp"
#include "obs/log.hpp"

namespace hemo::obs {

namespace {

constexpr int kPollTickMs = 200;       ///< stop() latency bound
constexpr long kIoTimeoutSec = 2;      ///< per-connection read/write budget
constexpr std::size_t kMaxRequest = 8192;

std::string http_response(int status, std::string_view reason,
                          std::string_view content_type,
                          std::string_view body) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + ' ' +
                    std::string(reason) + "\r\n";
  out += "Content-Type: " + std::string(content_type) + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

void write_all(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return;  // peer gone; a scrape retry is cheap
    sent += static_cast<std::size_t>(n);
  }
}

/// Request target of a GET request line, or "" when not a parseable GET.
std::string_view request_target(std::string_view request) {
  if (!request.starts_with("GET ")) return {};
  const auto start = request.find(' ') + 1;
  const auto end = request.find(' ', start);
  if (end == std::string_view::npos) return {};
  return request.substr(start, end - start);
}

}  // namespace

TelemetryServer::~TelemetryServer() { stop(); }

void TelemetryServer::set_watchdog(Watchdog* watchdog) {
  const MutexLock lock(mutex_);
  watchdog_ = watchdog;
}

void TelemetryServer::set_status_fields(std::function<std::string()> hook) {
  const MutexLock lock(mutex_);
  status_hook_ = std::move(hook);
}

void TelemetryServer::start() {
  const MutexLock lock(mutex_);
  if (acceptor_.joinable()) return;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw NumericError("telemetry server: socket() failed");

  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw NumericError("telemetry server: bad bind address " + options_.host);
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd, 16) != 0) {
    const int err = errno;
    ::close(fd);
    throw NumericError("telemetry server: cannot listen on " +
                       options_.host + ':' + std::to_string(options_.port) +
                       " (" + std::strerror(err) + ')');
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    ::close(fd);
    throw NumericError("telemetry server: getsockname() failed");
  }
  bound_port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;
  stopping_.store(false, std::memory_order_relaxed);
  acceptor_ = std::jthread([this, fd] { acceptor_loop(fd); });
  HEMO_LOG_INFO("telemetry server listening on http://%s:%u/metrics",
                options_.host.c_str(), static_cast<unsigned>(bound_port_));
}

void TelemetryServer::stop() {
  std::jthread acceptor;
  {
    const MutexLock lock(mutex_);
    if (!acceptor_.joinable()) return;
    stopping_.store(true, std::memory_order_relaxed);
    acceptor = std::move(acceptor_);
  }
  acceptor.join();  // the poll tick observes the flag within kPollTickMs
  const MutexLock lock(mutex_);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  bound_port_ = 0;
}

bool TelemetryServer::running() const {
  const MutexLock lock(mutex_);
  return acceptor_.joinable();
}

std::uint16_t TelemetryServer::port() const {
  const MutexLock lock(mutex_);
  return bound_port_;
}

void TelemetryServer::acceptor_loop(int listen_fd) {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd pfd{};
    pfd.fd = listen_fd;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, kPollTickMs);
    if (ready <= 0) continue;  // tick (or EINTR): re-check the stop flag
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    serve_connection(fd);
    ::close(fd);
  }
}

void TelemetryServer::serve_connection(int fd) {
  timeval io_timeout{};
  io_timeout.tv_sec = kIoTimeoutSec;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &io_timeout, sizeof(io_timeout));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &io_timeout, sizeof(io_timeout));

  // One read is enough for any curl/Prometheus GET; a split request line
  // (unlikely at these sizes) degrades to 400, which scrapers retry.
  char buffer[kMaxRequest];
  const ssize_t n = ::recv(fd, buffer, sizeof(buffer) - 1, 0);
  if (n <= 0) return;
  buffer[n] = '\0';

  write_all(fd, respond(request_target(std::string_view(buffer))));
}

std::string TelemetryServer::respond(std::string_view target) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  registry_->add("telemetry_http_requests_total", 1.0,
                 {{"path", std::string(target.empty() ? "bad" : target)}});

  if (target == "/metrics") {
    return http_response(200, "OK", "text/plain; version=0.0.4",
                         to_prometheus(*registry_));
  }
  if (target == "/metrics.json") {
    return http_response(200, "OK", "application/json",
                         to_metrics_json(*registry_));
  }
  if (target == "/healthz") {
    Watchdog* watchdog;
    {
      const MutexLock lock(mutex_);
      watchdog = watchdog_;
    }
    if (watchdog == nullptr) {
      return http_response(200, "OK", "application/json",
                           "{\"status\":\"ok\",\"rules\":[]}\n");
    }
    const Health health = watchdog->health();
    const bool serving = health != Health::kUnhealthy;
    return http_response(serving ? 200 : 503,
                         serving ? "OK" : "Service Unavailable",
                         "application/json", watchdog->health_json());
  }
  if (target == "/status") {
    std::function<std::string()> hook;
    {
      const MutexLock lock(mutex_);
      hook = status_hook_;
    }
    std::string body = status_json(*registry_);
    // Merge extra fields into the top-level object: replace the trailing
    // "}\n" with ",<fragment>}\n".
    const std::string extra = hook ? hook() : std::string();
    std::string requests =
        "\"http_requests\":" +
        std::to_string(requests_.load(std::memory_order_relaxed));
    if (!extra.empty()) requests += ',' + extra;
    body.insert(body.rfind('}'), ',' + requests);
    return http_response(200, "OK", "application/json", body);
  }
  if (target.empty()) {
    return http_response(400, "Bad Request", "text/plain",
                         "only GET is served\n");
  }
  return http_response(
      404, "Not Found", "text/plain",
      "try /metrics, /metrics.json, /healthz, /status\n");
}

}  // namespace hemo::obs
