// Chrome-trace-event / Perfetto-compatible tracing with two clock domains.
//
// The campaign engine runs on *virtual* time (sched/executor.hpp): its
// coordinator advances a deterministic event clock, so spans stamped with
// that clock are a pure function of the campaign seed — byte-stable across
// worker counts, which extends the PR-1 determinism contract from the CSV
// report to the trace itself (tests/test_obs.cpp asserts it). Real work —
// calibration sweeps, microbenches, HEMO_OBS_DETAIL solver steps — is
// covered by RAII wall-clock spans instead; the two domains are kept on
// separate trace "processes" (pid 1 = virtual campaign time, pid 2 = wall
// clock) so a mixed export still reads sensibly in the Perfetto timeline,
// and the virtual track can be exported alone for byte-comparison.
//
// Recording is OFF by default with the same near-zero disabled path as
// MetricsRegistry: one relaxed atomic load per call, no locks, no
// allocations. Virtual-time events must be recorded from one thread at a
// time (the engine's coordinator is the only producer); wall spans are
// thread-safe.
//
// Open an exported file in https://ui.perfetto.dev or chrome://tracing.
#pragma once

#include <atomic>
#include <chrono>
#include <string>
#include <utility>
#include <vector>

#include "units/units.hpp"
#include "util/common.hpp"
#include "util/sync.hpp"

namespace hemo::obs {

/// Ordered key/value annotations of one event. Values are rendered as JSON
/// strings; use trace_num() to format numbers deterministically.
using TraceArgs = std::vector<std::pair<std::string, std::string>>;

/// Deterministic numeric formatting for TraceArgs values.
[[nodiscard]] std::string trace_num(real_t value);

class TraceRecorder {
 public:
  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  [[nodiscard]] static TraceRecorder& global();

  void enable(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Drops every recorded event (the enabled flag is left untouched).
  void reset() HEMO_EXCLUDES(mutex_);

  /// Complete span on the virtual clock; `track` groups spans into one
  /// timeline row (the engine uses the job id). start <= end required.
  void virtual_span(std::string name, std::string category, index_t track,
                    units::Seconds start, units::Seconds end,
                    TraceArgs args = {}) HEMO_EXCLUDES(mutex_);

  /// Instant event on the virtual clock (guard kills, preemptions, ...).
  void virtual_instant(std::string name, std::string category, index_t track,
                       units::Seconds at, TraceArgs args = {})
      HEMO_EXCLUDES(mutex_);

  /// RAII wall-clock span: stamps steady_clock on construction and records
  /// the complete event on destruction. A span from a disabled recorder is
  /// inert (and stays inert even if the recorder is enabled mid-flight, so
  /// begin/end stamps always come from the same recording session).
  class WallSpan {
   public:
    WallSpan(TraceRecorder& recorder, std::string name, std::string category,
             TraceArgs args = {});
    ~WallSpan();
    WallSpan(const WallSpan&) = delete;
    WallSpan& operator=(const WallSpan&) = delete;

   private:
    TraceRecorder* recorder_ = nullptr;  ///< null when inert
    std::string name_;
    std::string category_;
    TraceArgs args_;
    std::chrono::steady_clock::time_point start_;
  };

  /// Convenience factory: `auto span = recorder.wall_span("stream", "bench");`
  [[nodiscard]] WallSpan wall_span(std::string name, std::string category,
                                   TraceArgs args = {}) {
    return WallSpan(*this, std::move(name), std::move(category),
                    std::move(args));
  }

  /// Number of recorded virtual-clock events.
  [[nodiscard]] std::size_t virtual_event_count() const
      HEMO_EXCLUDES(mutex_);

  /// One virtual-track event, as recorded. This is the structured export
  /// the nemesis harness (src/nemesis/) consumes to cross-check the
  /// protocol history against the trace (invariant H1 of
  /// specs/executor_protocol.md) without parsing the Chrome JSON.
  struct VirtualEvent {
    std::string name;
    std::string category;
    char phase = 'X';     ///< 'X' complete, 'i' instant
    index_t track = 0;    ///< trace tid (the engine uses the job id)
    real_t ts_us = 0.0;   ///< virtual microseconds
    real_t dur_us = 0.0;  ///< complete events only
    TraceArgs args;
  };

  /// Copies the virtual track (pid 1) in recording order; wall-clock
  /// events are excluded. Thread-safe, like the JSON export.
  [[nodiscard]] std::vector<VirtualEvent> virtual_events() const
      HEMO_EXCLUDES(mutex_);

  /// Chrome trace-event JSON ({"traceEvents":[...]}). Events keep their
  /// recording order; `include_wall=false` exports only the virtual track,
  /// which is the byte-stable artifact the determinism tests compare.
  [[nodiscard]] std::string to_chrome_json(bool include_wall = true) const
      HEMO_EXCLUDES(mutex_);

  /// Writes to_chrome_json() to `path` (truncating). Throws NumericError
  /// when the file cannot be written.
  void write_chrome_json(const std::string& path,
                         bool include_wall = true) const;

 private:
  struct Event {
    std::string name;
    std::string category;
    char phase = 'X';     ///< 'X' complete, 'i' instant
    bool wall = false;    ///< wall-clock domain (pid 2) vs virtual (pid 1)
    index_t track = 0;    ///< tid
    real_t ts_us = 0.0;   ///< microseconds (virtual or steady_clock)
    real_t dur_us = 0.0;  ///< complete events only
    TraceArgs args;
  };

  void record(Event event) HEMO_EXCLUDES(mutex_);

  // Flipped only between concurrent phases; the disabled fast path is one
  // relaxed load (DESIGN.md §13 atomic protocol table).
  std::atomic<bool> enabled_{false};  // atomic-ok(relaxed on/off latch)
  mutable Mutex mutex_;  ///< guards the recorded event log
  std::vector<Event> events_ HEMO_GUARDED_BY(mutex_);
};

}  // namespace hemo::obs
