// Serialization of MetricsRegistry snapshots for the live telemetry plane.
//
// Two wire formats over the same canonical snapshot:
//
//  * Prometheus text exposition (version 0.0.4): one `# HELP` / `# TYPE`
//    header per metric family, label values escaped per the spec
//    (backslash, double quote, newline), histograms rendered as
//    *cumulative* `_bucket{le="..."}` series closed by the mandatory
//    `le="+Inf"` bucket plus `_sum` / `_count`. Families are emitted in
//    sorted-name order and series within a family in canonical key order,
//    so the same recorded values always render identical bytes — which is
//    what lets tests/test_obs_live.cpp golden-compare `/metrics` output.
//
//  * JSON: one object per series (the JSONL `--metrics` file format, also
//    re-used line-by-line by MetricsRegistry::to_jsonl) and a whole-
//    snapshot `{"metrics":[...]}` document served at `/metrics.json`.
//    Histogram objects carry the cumulative bucket array (Prometheus
//    semantics, `le` rendered as a string so `"+Inf"` stays valid JSON).
//
// parse_metrics_jsonl() inverts the JSONL format so `hemocloud_cli
// metrics` can re-render a saved snapshot as a table or as Prometheus
// text; glob_match()/series_matches() implement the CLI's
// `--filter 'name{label=...}'` selection and the watchdog's rule
// selectors.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace hemo::obs {

/// One cumulative histogram bucket: count of observations <= `le`
/// (`inf` marks the final +Inf bucket, whose count equals the total).
struct CumulativeBucket {
  real_t le = 0.0;
  bool inf = false;
  std::uint64_t count = 0;
};

/// Cumulative (Prometheus-semantics) view of a histogram's per-bucket
/// counts, closed by the +Inf bucket. Empty when the histogram is empty.
[[nodiscard]] std::vector<CumulativeBucket> cumulative_buckets(
    const HistogramData& histogram);

/// Prometheus text exposition of a snapshot (deterministic bytes).
[[nodiscard]] std::string to_prometheus(
    const std::vector<MetricSnapshot>& snapshots);
[[nodiscard]] std::string to_prometheus(const MetricsRegistry& registry);

/// One series as a single-line JSON object (no trailing newline). This is
/// the line format of MetricsRegistry::to_jsonl.
[[nodiscard]] std::string metric_json_object(const MetricSnapshot& snapshot);

/// Whole snapshot as one JSON document: {"metrics":[...],"series":N}.
[[nodiscard]] std::string to_metrics_json(
    const std::vector<MetricSnapshot>& snapshots);
[[nodiscard]] std::string to_metrics_json(const MetricsRegistry& registry);

/// Glob match with `*` (any run) and `?` (any one char); everything else
/// is literal. Deterministic backtracking matcher, no regex dependency.
[[nodiscard]] bool glob_match(std::string_view pattern,
                              std::string_view text);

/// True when `pattern` selects this series. A pattern without '{' matches
/// against the bare metric name (so `campaign_*` selects every labeled
/// series of those families); a pattern with '{' matches against the full
/// canonical key `name{k1=v1,k2=v2}`.
[[nodiscard]] bool series_matches(std::string_view pattern,
                                  const MetricSnapshot& snapshot);

/// Parses a JSONL snapshot (the `--metrics` file format) back into
/// MetricSnapshot records, reconstructing histogram bucket ladders from
/// the cumulative bucket array. Lines that are not metric objects are
/// skipped; malformed numeric fields throw NumericError.
[[nodiscard]] std::vector<MetricSnapshot> parse_metrics_jsonl(
    std::string_view text);

/// Campaign/runtime health summary served at `/status`: terminal job
/// counts, attempts/requeues/preemptions, model correction factor,
/// per-workload measured imbalance, per-rank busy seconds, and per-
/// workload model-drift p99 (worst series across instances/rounds).
[[nodiscard]] std::string status_json(
    const std::vector<MetricSnapshot>& snapshots);
[[nodiscard]] std::string status_json(const MetricsRegistry& registry);

}  // namespace hemo::obs
