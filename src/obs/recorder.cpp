#include "obs/recorder.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>

namespace hemo::obs {

namespace {

std::string num(real_t value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

/// One entry per line in the dump: fold embedded newlines.
void append_line_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
}

}  // namespace

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::enable(bool on) {
  const MutexLock lock(mutex_);
  if (on && !enabled_.load(std::memory_order_relaxed)) {
    epoch_ = std::chrono::steady_clock::now();
  }
  enabled_.store(on, std::memory_order_relaxed);
}

void FlightRecorder::set_capacity(std::size_t capacity) {
  const MutexLock lock(mutex_);
  capacity_ = capacity == 0 ? 1 : capacity;
  while (ring_.size() > capacity_) {
    ring_.pop_front();
    ++dropped_;
  }
}

void FlightRecorder::note(std::string_view kind, std::string_view text) {
  if (!enabled()) return;
  const auto now = std::chrono::steady_clock::now();
  const MutexLock lock(mutex_);
  FlightEntry entry;
  entry.wall_s = std::chrono::duration<real_t>(now - epoch_).count();
  entry.kind = std::string(kind);
  entry.text = std::string(text);
  if (ring_.size() >= capacity_) {
    ring_.pop_front();
    ++dropped_;
  }
  ring_.push_back(std::move(entry));
}

void FlightRecorder::snapshot_metrics(const MetricsRegistry& registry) {
  if (!enabled()) return;
  for (const MetricSnapshot& snap : registry.snapshot()) {
    std::string text = snap.key();
    text += ' ';
    if (snap.kind == MetricKind::kHistogram) {
      text += "count=" + std::to_string(snap.histogram.count) +
              " sum=" + num(snap.histogram.sum) +
              " p99=" + num(snap.histogram.quantile(0.99));
    } else {
      text += num(snap.value);
    }
    note("metrics", text);
  }
}

void FlightRecorder::reset() {
  const MutexLock lock(mutex_);
  ring_.clear();
  dropped_ = 0;
}

std::vector<FlightEntry> FlightRecorder::entries() const {
  const MutexLock lock(mutex_);
  return {ring_.begin(), ring_.end()};
}

std::uint64_t FlightRecorder::dropped() const {
  const MutexLock lock(mutex_);
  return dropped_;
}

std::string FlightRecorder::dump() const {
  const MutexLock lock(mutex_);
  std::string out = "# hemocloud flight recorder (dropped=" +
                    std::to_string(dropped_) + ")\n";
  for (const FlightEntry& entry : ring_) {
    out += num(entry.wall_s);
    out += ' ';
    out += entry.kind;
    out += ' ';
    append_line_escaped(out, entry.text);
    out += '\n';
  }
  return out;
}

void FlightRecorder::dump_to_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.good()) {
    throw NumericError("cannot write flight-recorder dump: " + path);
  }
  out << dump();
}

}  // namespace hemo::obs
