// Model-drift instrumentation: predicted-vs-actual error distributions.
//
// The paper's whole premise (Fig. 1) is an iteratively *refined*
// performance model; its predictions are only trustworthy if the gap to
// measurement is visible per job and per refinement round. Every completed
// attempt reports one DriftSample here; the helper turns it into
// signed-relative-error histograms in the metrics registry keyed by
// (workload, instance, refinement round), so a metrics snapshot shows the
// phase-2 loop converging: round-0 errors carry the hidden-efficiency gap
// (tens of percent), later rounds collapse toward zero.
//
// Rounds are bucketed ("0", "1", "2", "3", "4-7", "8+") to keep the label
// cardinality bounded on long campaigns.
#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "util/common.hpp"

namespace hemo::obs {

/// One completed attempt's prediction-vs-measurement comparison.
struct DriftSample {
  std::string workload;  ///< refinement key: geometry (+ resolution suffix)
  std::string instance;  ///< instance abbreviation of the placement
  /// Refinement round: how many observations the tracker already held for
  /// this workload key when the attempt was placed.
  index_t round = 0;

  real_t predicted_mflups = 0.0;
  real_t measured_mflups = 0.0;
  /// Per-step seconds as armed in the guard vs as executed (productive
  /// compute over durable steps). <= 0 disables the step-time histogram
  /// (e.g. an attempt killed before its first checkpoint).
  real_t predicted_step_seconds = 0.0;
  real_t actual_step_seconds = 0.0;
};

/// The bounded round label ("0", "1", "2", "3", "4-7", "8+").
[[nodiscard]] std::string drift_round_label(index_t round);

/// Signed relative error edges for the drift histograms (symmetric around
/// zero, resolving the interesting few-percent band).
[[nodiscard]] std::span<const real_t> drift_error_edges() noexcept;

/// Records one sample:
///   model_drift_samples_total{workload,instance}            counter
///   model_drift_mflups_rel_error{workload,instance,round}   histogram
///   model_drift_step_time_rel_error{workload,instance,round} histogram
/// Relative errors are (predicted - measured) / measured: positive means
/// the model overpredicted throughput / underpredicted time.
void record_drift(MetricsRegistry& registry, const DriftSample& sample);

}  // namespace hemo::obs
