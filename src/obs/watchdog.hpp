// Declarative SLO watchdog over MetricsRegistry snapshots.
//
// Rules are parsed from a one-line grammar (DESIGN.md §14):
//
//   rule     := name ':' expr op number '=>' severity
//   expr     := agg '(' selector ')'
//             | 'ratio' '(' selector ',' selector ')'
//   agg      := 'value' | 'sum' | 'count' | 'min' | 'max' | 'mean'
//             | 'p50' | 'p90' | 'p99'
//   op       := '<' | '<=' | '>' | '>='
//   severity := 'degraded' | 'unhealthy'
//
// A selector is a glob over series (obs::series_matches): a bare name
// pattern like `model_drift_*` matches every labeled series of those
// families; a pattern containing '{' matches the full canonical key.
// Scalar aggregates (value/sum/count/min/max/mean) combine counter and
// gauge values across all matched series; the quantile aggregates take
// the *worst* (maximum) quantile across matched histogram series.
// `ratio(a, b)` is sum(a)/sum(b) — the preemption-rate shape. A rule
// whose selector matches nothing (or whose ratio denominator is zero) is
// *inapplicable* and reports ok: SLOs only bind once there is data.
//
// evaluate() takes one snapshot, computes every rule, and folds the
// breached severities into an overall Health (ok < degraded < unhealthy).
// Transitions are logged (WARN on degradation, ERROR on unhealthy, INFO
// on recovery), exported as `watchdog_*` gauges, and surfaced through
// /healthz by obs::TelemetryServer. start() runs evaluate() on a cadence
// thread (CondVar::wait_for so stop() interrupts the sleep immediately);
// on_unhealthy() registers a hook the flight recorder uses to dump state
// at the moment an SLO goes red.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <thread>  // sync-ok(cadence jthread; lifecycle guarded by mutex_)
#include <vector>

#include "obs/metrics.hpp"
#include "util/sync.hpp"

namespace hemo::obs {

enum class Health { kOk = 0, kDegraded = 1, kUnhealthy = 2 };

[[nodiscard]] std::string_view health_name(Health health) noexcept;

/// One parsed SLO rule.
struct SloRule {
  std::string name;       ///< stable identifier ("drift_p99_band")
  std::string aggregate;  ///< value|sum|count|min|max|mean|p50|p90|p99|ratio
  std::string selector;       ///< series glob (ratio numerator)
  std::string denominator;    ///< ratio denominator ("" otherwise)
  std::string op;             ///< "<" "<=" ">" ">="
  real_t threshold = 0.0;
  Health severity = Health::kDegraded;  ///< reported when breached

  /// Grammar line this rule round-trips to.
  [[nodiscard]] std::string to_string() const;
};

/// Parses one rule line; throws NumericError with the offending token on
/// any grammar violation.
[[nodiscard]] SloRule parse_slo_rule(std::string_view line);

/// Outcome of one rule against one snapshot.
struct RuleOutcome {
  SloRule rule;
  bool applicable = false;  ///< selector matched data (denominator nonzero)
  bool breached = false;
  real_t observed = 0.0;  ///< aggregated value (0 when inapplicable)
};

/// Baseline rule set for a campaign service: model-drift p99 band,
/// runtime imbalance ceiling, preemption rate, guard-stop/failure floors.
[[nodiscard]] std::vector<SloRule> default_campaign_rules();

class Watchdog {
 public:
  explicit Watchdog(MetricsRegistry& registry) : registry_(&registry) {}
  ~Watchdog();
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Replaces the rule set (parsed or from default_campaign_rules()).
  void set_rules(std::vector<SloRule> rules) HEMO_EXCLUDES(mutex_);
  [[nodiscard]] std::vector<SloRule> rules() const HEMO_EXCLUDES(mutex_);

  /// Registers a hook invoked (on the evaluating thread) each time the
  /// overall health *transitions into* kUnhealthy.
  void on_unhealthy(std::function<void()> hook) HEMO_EXCLUDES(mutex_);

  /// Evaluates every rule against a fresh registry snapshot, updates the
  /// cached health + `watchdog_*` gauges, and logs transitions.
  Health evaluate() HEMO_EXCLUDES(mutex_);

  /// Health and per-rule outcomes of the most recent evaluate().
  [[nodiscard]] Health health() const HEMO_EXCLUDES(mutex_);
  [[nodiscard]] std::vector<RuleOutcome> outcomes() const
      HEMO_EXCLUDES(mutex_);

  /// JSON body served at /healthz: overall state + per-rule outcomes.
  [[nodiscard]] std::string health_json() const HEMO_EXCLUDES(mutex_);

  /// Runs evaluate() every `period_s` seconds on a cadence thread until
  /// stop(). No-op if already running.
  void start(real_t period_s = 1.0) HEMO_EXCLUDES(mutex_);
  void stop() HEMO_EXCLUDES(mutex_);

 private:
  void cadence_loop(real_t period_s) HEMO_EXCLUDES(mutex_);

  MetricsRegistry* registry_;
  mutable Mutex mutex_;
  CondVar wake_;  ///< signaled by stop() to cut the cadence sleep short
  bool stopping_ HEMO_GUARDED_BY(mutex_) = false;
  std::vector<SloRule> rules_ HEMO_GUARDED_BY(mutex_);
  std::function<void()> unhealthy_hook_ HEMO_GUARDED_BY(mutex_);
  Health health_ HEMO_GUARDED_BY(mutex_) = Health::kOk;
  std::vector<RuleOutcome> outcomes_ HEMO_GUARDED_BY(mutex_);
  std::jthread cadence_ HEMO_GUARDED_BY(mutex_);
};

}  // namespace hemo::obs
