#include "obs/profile.hpp"

#include <algorithm>
#include <fstream>
#include <utility>

namespace hemo::obs {

/// Registration handle living in a thread_local: constructed on a thread's
/// first marker push, deregisters the stack when the thread exits so the
/// sampler never walks a dead thread's stack.
struct PhaseProfiler::Holder {
  PhaseProfiler* owner = nullptr;
  std::shared_ptr<ThreadStack> stack;

  ~Holder() {
    if (owner == nullptr || stack == nullptr) return;
    const MutexLock lock(owner->mutex_);
    auto& threads = owner->threads_;
    threads.erase(std::remove(threads.begin(), threads.end(), stack),
                  threads.end());
  }
};

namespace {
thread_local PhaseProfiler::Holder t_holder;  // sync-ok(thread-local handle)
}  // namespace

PhaseProfiler::~PhaseProfiler() { stop(); }

PhaseProfiler& PhaseProfiler::global() {
  static PhaseProfiler profiler;
  return profiler;
}

std::shared_ptr<PhaseProfiler::ThreadStack>
PhaseProfiler::stack_for_this_thread() {
  if (t_holder.owner == this && t_holder.stack != nullptr) {
    return t_holder.stack;
  }
  auto stack = std::make_shared<ThreadStack>();
  {
    const MutexLock lock(mutex_);
    threads_.push_back(stack);
  }
  t_holder.owner = this;
  t_holder.stack = stack;
  return stack;
}

void PhaseProfiler::set_thread_label(std::string_view label) {
  if (!enabled()) return;
  const std::shared_ptr<ThreadStack> stack = stack_for_this_thread();
  // The label is only read by the sampler; publish it under the lock so
  // the string mutation is ordered against sampler reads.
  const MutexLock lock(mutex_);
  stack->label = std::string(label);
}

bool PhaseProfiler::push_phase(const char* literal) {
  if (!enabled()) return false;
  ThreadStack& stack = *stack_for_this_thread();
  const int depth = stack.depth.load(std::memory_order_relaxed);
  if (depth >= kMaxDepth) return false;
  stack.frames[static_cast<std::size_t>(depth)].store(
      literal, std::memory_order_relaxed);
  // Release: the sampler's acquire load of depth sees the frame store.
  stack.depth.store(depth + 1, std::memory_order_release);
  return true;
}

void PhaseProfiler::pop_phase() noexcept {
  // push_phase returned true, so the holder is registered and depth > 0.
  ThreadStack& stack = *t_holder.stack;
  const int depth = stack.depth.load(std::memory_order_relaxed);
  if (depth > 0) {
    stack.depth.store(depth - 1, std::memory_order_release);
  }
}

void PhaseProfiler::start(real_t hz) {
  enable(true);
  const MutexLock lock(mutex_);
  if (sampler_.joinable()) return;
  hz = std::clamp(hz, 1.0, 10000.0);
  period_s_ = 1.0 / hz;
  stopping_.store(false, std::memory_order_relaxed);
  const auto period = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(std::chrono::duration<real_t>(
      period_s_));
  const auto start_at = std::chrono::steady_clock::now();
  sampler_ = std::jthread(
      [this, period, start_at] { sampler_loop(period, start_at); });
}

void PhaseProfiler::stop() {
  std::jthread sampler;
  {
    const MutexLock lock(mutex_);
    if (!sampler_.joinable()) return;
    stopping_.store(true, std::memory_order_relaxed);
    sampler = std::move(sampler_);
  }
  sampler.join();  // outside the lock: the loop takes mutex_ per tick
}

void PhaseProfiler::sampler_loop(
    std::chrono::steady_clock::duration period,
    std::chrono::steady_clock::time_point start) {
  // Absolute deadlines: tick n fires at start + n*period, so over a run of
  // length T the sampler takes T/period ± 1 snapshots even when individual
  // wakeups jitter — this is what bounds the self-time-vs-wall-time error
  // the acceptance test checks.
  for (std::uint64_t tick = 1;; ++tick) {
    std::this_thread::sleep_until(start + tick * period);
    if (stopping_.load(std::memory_order_relaxed)) return;
    const MutexLock lock(mutex_);
    ++total_samples_;
    for (const std::shared_ptr<ThreadStack>& stack : threads_) {
      const int depth = stack->depth.load(std::memory_order_acquire);
      if (depth <= 0) continue;  // idle thread: attribute nothing
      std::string path = stack->label;
      for (int i = 0; i < depth && i < kMaxDepth; ++i) {
        const char* frame = stack->frames[static_cast<std::size_t>(i)].load(
            std::memory_order_relaxed);
        if (frame == nullptr) break;
        path += ';';
        path += frame;
      }
      ++samples_[path];
    }
  }
}

void PhaseProfiler::reset() {
  const MutexLock lock(mutex_);
  samples_.clear();
  total_samples_ = 0;
}

std::string PhaseProfiler::folded() const {
  const MutexLock lock(mutex_);
  std::string out;
  for (const auto& [path, count] : samples_) {
    out += path;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

void PhaseProfiler::write_folded(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.good()) throw NumericError("cannot write profile file: " + path);
  out << folded();
}

void PhaseProfiler::export_metrics(MetricsRegistry& registry) const {
  // Self time = leaf-frame samples x period: a sample counts toward the
  // innermost phase that was live when the snapshot fired.
  std::map<std::pair<std::string, std::string>, std::uint64_t> leaves;
  real_t period;
  std::uint64_t total;
  {
    const MutexLock lock(mutex_);
    period = period_s_;
    total = total_samples_;
    for (const auto& [path, count] : samples_) {
      const auto first = path.find(';');
      const auto last = path.rfind(';');
      std::string thread = path.substr(0, first);
      std::string phase =
          first == std::string::npos ? "idle" : path.substr(last + 1);
      leaves[{std::move(thread), std::move(phase)}] += count;
    }
  }
  registry.set("profile_sample_period_seconds", period);
  registry.set("profile_samples_count", static_cast<real_t>(total));
  for (const auto& [self, count] : leaves) {
    registry.set("profile_phase_self_seconds",
                 static_cast<real_t>(count) * period,
                 {{"thread", self.first}, {"phase", self.second}});
  }
}

std::uint64_t PhaseProfiler::sample_count() const {
  const MutexLock lock(mutex_);
  return total_samples_;
}

real_t PhaseProfiler::period_seconds() const {
  const MutexLock lock(mutex_);
  return period_s_;
}

}  // namespace hemo::obs
