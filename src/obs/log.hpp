// Leveled diagnostic logging to stderr.
//
// Replaces the scattered raw `std::cerr` / `fprintf(stderr, ...)` progress
// prints (tools/lint_logging.py forbids new ones in src/ outside src/obs/).
// The level is read once from the HEMO_LOG_LEVEL environment variable —
// `error`, `warn`, `info` (default), `debug`, or the digits 0-3 — so a
// noisy calibration run can be silenced (`HEMO_LOG_LEVEL=error`) or a
// placement decision traced (`HEMO_LOG_LEVEL=debug`) without a rebuild.
//
// Deliberately self-contained (no hemo headers): hemo_util sits *below*
// hemo_obs in the link order but still needs to log (the effective-seed
// banner in util/rng.cpp), and a header-only logger with only <cstdio>
// dependencies breaks that cycle.
//
// Diagnostics go to stderr only; stdout stays reserved for machine-read
// output (golden CSVs, trace JSON on request), which is what keeps
// `hemocloud_cli schedule --csv` byte-identical under any log level.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace hemo::obs {

enum class LogLevel : int {
  kError = 0,
  kWarn = 1,
  kInfo = 2,
  kDebug = 3,
};

/// Parses a level name or digit; returns `fallback` on null/unknown text.
inline LogLevel parse_log_level(const char* text, LogLevel fallback) noexcept {
  if (text == nullptr || *text == '\0') return fallback;
  if (std::strcmp(text, "error") == 0 || std::strcmp(text, "0") == 0) {
    return LogLevel::kError;
  }
  if (std::strcmp(text, "warn") == 0 || std::strcmp(text, "1") == 0) {
    return LogLevel::kWarn;
  }
  if (std::strcmp(text, "info") == 0 || std::strcmp(text, "2") == 0) {
    return LogLevel::kInfo;
  }
  if (std::strcmp(text, "debug") == 0 || std::strcmp(text, "3") == 0) {
    return LogLevel::kDebug;
  }
  return fallback;
}

/// The process log level: HEMO_LOG_LEVEL when set, else info. Read once and
/// cached (matching the HEMO_SEED convention in util/rng.cpp).
inline LogLevel log_level() noexcept {
  // Single getenv inside a once-initialised static, before any worker
  // thread logs — the race concurrency-mt-unsafe flags cannot occur.
  static const LogLevel level = parse_log_level(
      std::getenv("HEMO_LOG_LEVEL"), LogLevel::kInfo);  // NOLINT(concurrency-mt-unsafe)
  return level;
}

/// True when a message at `level` would be emitted. Callers use this to
/// skip building expensive message arguments.
inline bool log_enabled(LogLevel level) noexcept {
  return static_cast<int>(level) <= static_cast<int>(log_level());
}

namespace detail {

inline const char* level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kError: return "error";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kInfo: return "info";
    case LogLevel::kDebug: return "debug";
  }
  return "?";
}

/// Formats into one buffer and writes with a single fputs so concurrent
/// log lines never interleave mid-line.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 2, 3)))
#endif
inline void
log_raw(LogLevel level, const char* fmt, ...) noexcept {
  char message[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(message, sizeof(message), fmt, args);
  va_end(args);
  char line[1100];
  std::snprintf(line, sizeof(line), "[hemo] %s: %s\n", level_tag(level),
                message);
  std::fputs(line, stderr);
}

}  // namespace detail

}  // namespace hemo::obs

/// printf-style leveled logging; arguments are not evaluated when the
/// level is filtered out.
#define HEMO_LOG(level, ...)                                    \
  do {                                                          \
    if (::hemo::obs::log_enabled(level)) {                      \
      ::hemo::obs::detail::log_raw((level), __VA_ARGS__);       \
    }                                                           \
  } while (false)

#define HEMO_LOG_ERROR(...) HEMO_LOG(::hemo::obs::LogLevel::kError, __VA_ARGS__)
#define HEMO_LOG_WARN(...) HEMO_LOG(::hemo::obs::LogLevel::kWarn, __VA_ARGS__)
#define HEMO_LOG_INFO(...) HEMO_LOG(::hemo::obs::LogLevel::kInfo, __VA_ARGS__)
#define HEMO_LOG_DEBUG(...) HEMO_LOG(::hemo::obs::LogLevel::kDebug, __VA_ARGS__)
