// Minimal zero-dependency HTTP/1.1 telemetry server (POSIX sockets).
//
// One acceptor thread serves four read-only endpoints over a
// MetricsRegistry (DESIGN.md §14 fixes the contract):
//
//   GET /metrics       Prometheus text exposition (obs/export.hpp)
//   GET /metrics.json  whole-snapshot JSON document
//   GET /healthz       watchdog health: 200 ok/degraded, 503 unhealthy
//   GET /status        campaign/runtime summary (status_json) + uptime
//
// Scope is deliberately tiny: GET only, one request per connection
// (`Connection: close`), bounded request reads, blocking writes on a
// short socket timeout. This is an operator scrape surface on a trusted
// network, not a general web server — binding defaults to 127.0.0.1 and
// port 0 (ephemeral; port() reports the kernel's choice, which is what
// the round-trip test uses).
//
// Threading: start() spawns the acceptor; it polls the listen socket on a
// 200 ms tick so stop() (atomic flag + close) joins promptly. Mutable
// state (watchdog pointer, status hook, listen fd) is guarded by a
// hemo::Mutex; request serving takes registry snapshots, which are
// internally synchronized.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>  // sync-ok(acceptor jthread; lifecycle guarded by mutex_)

#include "obs/metrics.hpp"
#include "obs/watchdog.hpp"
#include "util/sync.hpp"

namespace hemo::obs {

struct ServerOptions {
  std::string host = "127.0.0.1";  ///< bind address (dotted quad)
  std::uint16_t port = 0;          ///< 0 = kernel-assigned ephemeral port
};

class TelemetryServer {
 public:
  explicit TelemetryServer(MetricsRegistry& registry,
                           ServerOptions options = {})
      : registry_(&registry), options_(std::move(options)) {}
  ~TelemetryServer();
  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  /// Attaches a watchdog for /healthz (optional; without one /healthz
  /// reports ok). Call before start().
  void set_watchdog(Watchdog* watchdog) HEMO_EXCLUDES(mutex_);

  /// Extra top-level fields merged into /status (rendered as a JSON
  /// fragment like `"campaign_jobs":6`; may be empty). Called per request.
  void set_status_fields(std::function<std::string()> hook)
      HEMO_EXCLUDES(mutex_);

  /// Binds + listens + spawns the acceptor. Throws NumericError when the
  /// socket cannot be bound. No-op if already running.
  void start() HEMO_EXCLUDES(mutex_);

  /// Stops the acceptor and closes the socket. Idempotent.
  void stop() HEMO_EXCLUDES(mutex_);

  [[nodiscard]] bool running() const HEMO_EXCLUDES(mutex_);

  /// The bound port (resolves port 0 to the kernel's pick); 0 before
  /// start().
  [[nodiscard]] std::uint16_t port() const HEMO_EXCLUDES(mutex_);

  /// Serves one already-parsed request; exposed for tests and the CLI's
  /// offline rendering. Returns the full HTTP response bytes.
  [[nodiscard]] std::string respond(std::string_view target)
      HEMO_EXCLUDES(mutex_);

 private:
  void acceptor_loop(int listen_fd) HEMO_EXCLUDES(mutex_);
  void serve_connection(int fd) HEMO_EXCLUDES(mutex_);

  MetricsRegistry* registry_;
  ServerOptions options_;
  std::atomic<bool> stopping_{false};  // atomic-ok(acceptor shutdown flag)
  std::atomic<std::uint64_t> requests_{0};  // atomic-ok(relaxed counter)

  mutable Mutex mutex_;
  Watchdog* watchdog_ HEMO_GUARDED_BY(mutex_) = nullptr;
  std::function<std::string()> status_hook_ HEMO_GUARDED_BY(mutex_);
  int listen_fd_ HEMO_GUARDED_BY(mutex_) = -1;
  std::uint16_t bound_port_ HEMO_GUARDED_BY(mutex_) = 0;
  std::jthread acceptor_ HEMO_GUARDED_BY(mutex_);
};

}  // namespace hemo::obs
