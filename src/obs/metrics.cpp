#include "obs/metrics.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/export.hpp"

namespace hemo::obs {

namespace {

/// 1-2-5 ladder over 1e-9 .. 1e9 (54 finite edges, +inf implicit).
constexpr std::array<real_t, 54> kDefaultEdges = [] {
  std::array<real_t, 54> edges{};
  real_t decade = 1e-9;
  std::size_t i = 0;
  for (int d = -9; d <= 8; ++d) {
    edges[i++] = decade;
    edges[i++] = 2.0 * decade;
    edges[i++] = 5.0 * decade;
    decade *= 10.0;
  }
  return edges;
}();

Labels canonical(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

std::string series_key(std::string_view name, const Labels& sorted) {
  std::string key(name);
  if (sorted.empty()) return key;
  key += '{';
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) key += ',';
    key += sorted[i].first;
    key += '=';
    key += sorted[i].second;
  }
  key += '}';
  return key;
}

}  // namespace

real_t HistogramData::quantile(real_t q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const real_t target = q * static_cast<real_t>(count);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    const real_t before = static_cast<real_t>(seen);
    seen += buckets[b];
    if (static_cast<real_t>(seen) < target) continue;
    // Interpolate inside bucket b: [lo, hi) with `buckets[b]` samples.
    const real_t lo = b == 0 ? min : edges[b - 1];
    const real_t hi = b < edges.size() ? edges[b] : max;
    const real_t fraction =
        (target - before) / static_cast<real_t>(buckets[b]);
    const real_t estimate = lo + (hi - lo) * std::clamp(fraction, 0.0, 1.0);
    return std::clamp(estimate, min, max);
  }
  return max;
}

std::string MetricSnapshot::key() const { return series_key(name, labels); }

std::span<const real_t> default_bucket_edges() noexcept {
  return kDefaultEdges;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

void MetricsRegistry::reset() {
  const MutexLock lock(mutex_);
  metrics_.clear();
}

MetricsRegistry::Metric& MetricsRegistry::series_locked(
    std::string_view name, const Labels& labels, MetricKind kind) {
  Labels sorted = canonical(labels);
  std::string key = series_key(name, sorted);
  auto it = metrics_.find(key);
  if (it == metrics_.end()) {
    Metric metric;
    metric.name = std::string(name);
    metric.labels = std::move(sorted);
    metric.kind = kind;
    it = metrics_.emplace(std::move(key), std::move(metric)).first;
  }
  HEMO_REQUIRE(it->second.kind == kind,
               "metric " + it->first + " re-registered as a different kind");
  return it->second;
}

void MetricsRegistry::add(std::string_view name, real_t delta,
                          const Labels& labels) {
  if (!enabled()) return;
  const MutexLock lock(mutex_);
  series_locked(name, labels, MetricKind::kCounter).value += delta;
}

void MetricsRegistry::set(std::string_view name, real_t value,
                          const Labels& labels) {
  if (!enabled()) return;
  const MutexLock lock(mutex_);
  series_locked(name, labels, MetricKind::kGauge).value = value;
}

void MetricsRegistry::observe(std::string_view name, real_t value,
                              const Labels& labels,
                              std::span<const real_t> edges) {
  if (!enabled()) return;
  const MutexLock lock(mutex_);
  Metric& metric = series_locked(name, labels, MetricKind::kHistogram);
  HistogramData& h = metric.histogram;
  if (h.edges.empty()) {
    const std::span<const real_t> ladder =
        edges.empty() ? default_bucket_edges() : edges;
    HEMO_REQUIRE(std::is_sorted(ladder.begin(), ladder.end()),
                 "histogram bucket edges must be ascending");
    h.edges.assign(ladder.begin(), ladder.end());
    h.buckets.assign(h.edges.size() + 1, 0);
  }
  const auto bucket = static_cast<std::size_t>(
      std::upper_bound(h.edges.begin(), h.edges.end(), value) -
      h.edges.begin());
  ++h.buckets[bucket];
  if (h.count == 0 || value < h.min) h.min = value;
  if (h.count == 0 || value > h.max) h.max = value;
  ++h.count;
  h.sum += value;
}

std::vector<MetricSnapshot> MetricsRegistry::snapshot() const {
  const MutexLock lock(mutex_);
  std::vector<MetricSnapshot> out;
  out.reserve(metrics_.size());
  for (const auto& [key, metric] : metrics_) {
    MetricSnapshot snap;
    snap.name = metric.name;
    snap.labels = metric.labels;
    snap.kind = metric.kind;
    snap.value = metric.value;
    snap.histogram = metric.histogram;
    out.push_back(std::move(snap));
  }
  return out;  // map iteration order == canonical key order
}

std::size_t MetricsRegistry::size() const {
  const MutexLock lock(mutex_);
  return metrics_.size();
}

std::string MetricsRegistry::to_jsonl() const {
  std::string out;
  for (const MetricSnapshot& snap : snapshot()) {
    out += metric_json_object(snap);
    out += '\n';
  }
  return out;
}

void write_metrics_jsonl(const MetricsRegistry& registry,
                         const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.good()) throw NumericError("cannot write metrics file: " + path);
  out << registry.to_jsonl();
}

}  // namespace hemo::obs
