// Thread-safe metrics registry: counters, gauges, fixed-bucket histograms.
//
// Every metric is keyed by (name, labels) — `attempt_seconds{geometry=
// cylinder,instance=CSP-1}` — with labels sorted into a canonical key so
// two call sites naming the same series always hit the same slot, and a
// snapshot renders in one deterministic order.
//
// The registry is OFF by default and the disabled path is the contract:
// a single relaxed atomic load, no lock taken, no allocation — so the
// instrumented hot layers (placement loop, campaign engine, calibration)
// cost nothing in production runs and `bench/ablation_scheduler` numbers
// are unchanged. Enabled updates take one mutex; the stress suite
// (tests/test_obs_stress.cpp, ctest -L tsan) hammers one histogram from
// many threads to prove the locking.
//
// Histograms use fixed bucket edges chosen at first observation (a default
// 1-2-5 log ladder covers microseconds-to-hours and relative errors);
// p50/p90/p99 summaries interpolate within buckets, clamped to the exact
// observed min/max.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/common.hpp"
#include "util/sync.hpp"

namespace hemo::obs {

/// Label set of one series; canonicalized (sorted by key) on registration.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricKind {
  kCounter,    ///< monotonically accumulated (add)
  kGauge,      ///< last value wins (set)
  kHistogram,  ///< bucketed distribution (observe)
};

/// Aggregated histogram state.
struct HistogramData {
  /// Ascending bucket upper bounds; a final +inf bucket is implicit, so
  /// `buckets` has edges.size() + 1 entries.
  std::vector<real_t> edges;
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  real_t sum = 0.0;
  real_t min = 0.0;
  real_t max = 0.0;

  /// Quantile estimate (q in [0, 1]) by linear interpolation within the
  /// containing bucket, clamped to the observed [min, max]. 0 when empty.
  [[nodiscard]] real_t quantile(real_t q) const;
};

/// One series captured by snapshot().
struct MetricSnapshot {
  std::string name;
  Labels labels;  ///< canonical (key-sorted) order
  MetricKind kind = MetricKind::kCounter;
  real_t value = 0.0;  ///< counter / gauge value
  HistogramData histogram;

  /// Canonical series key: `name{k1=v1,k2=v2}` (no braces when unlabeled).
  [[nodiscard]] std::string key() const;
};

/// The default histogram ladder: 1-2-5 steps over 1e-9 .. 1e9. Wide enough
/// for seconds, relative errors, and byte counts alike while keeping the
/// bucket count fixed and small.
[[nodiscard]] std::span<const real_t> default_bucket_edges() noexcept;

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry the instrumented layers record into.
  [[nodiscard]] static MetricsRegistry& global();

  /// Collection is opt-in; while disabled every record call is a no-op
  /// (one relaxed load, no lock, no allocation).
  void enable(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Drops every series (the enabled flag is left untouched).
  void reset() HEMO_EXCLUDES(mutex_);

  /// Counter += delta (creates the series at zero on first use).
  void add(std::string_view name, real_t delta = 1.0,
           const Labels& labels = {}) HEMO_EXCLUDES(mutex_);

  /// Gauge = value.
  void set(std::string_view name, real_t value, const Labels& labels = {})
      HEMO_EXCLUDES(mutex_);

  /// Histogram observation. `edges` fixes the bucket ladder when the
  /// series is first observed (the default ladder otherwise) and is
  /// ignored on later calls.
  void observe(std::string_view name, real_t value, const Labels& labels = {},
               std::span<const real_t> edges = {}) HEMO_EXCLUDES(mutex_);

  /// All series, sorted by canonical key (deterministic given the same
  /// recorded values).
  [[nodiscard]] std::vector<MetricSnapshot> snapshot() const
      HEMO_EXCLUDES(mutex_);

  /// One JSON object per line, in snapshot order; the `--metrics` file
  /// format (parsed back by `hemocloud_cli metrics`).
  [[nodiscard]] std::string to_jsonl() const HEMO_EXCLUDES(mutex_);

  /// Number of live series (0 when disabled throughout).
  [[nodiscard]] std::size_t size() const HEMO_EXCLUDES(mutex_);

 private:
  struct Metric {
    std::string name;
    Labels labels;
    MetricKind kind = MetricKind::kCounter;
    real_t value = 0.0;
    HistogramData histogram;
  };

  Metric& series_locked(std::string_view name, const Labels& labels,
                        MetricKind kind) HEMO_REQUIRES(mutex_);

  // Flipped only between concurrent phases; the disabled fast path is one
  // relaxed load (DESIGN.md §13 atomic protocol table).
  std::atomic<bool> enabled_{false};  // atomic-ok(relaxed on/off latch)
  mutable Mutex mutex_;  ///< guards the series map
  std::map<std::string, Metric> metrics_ HEMO_GUARDED_BY(mutex_);
};

/// Writes `registry.to_jsonl()` to `path` (truncating). Throws
/// NumericError when the file cannot be written.
void write_metrics_jsonl(const MetricsRegistry& registry,
                         const std::string& path);

}  // namespace hemo::obs
