// Fault flight recorder: a bounded ring of recent diagnostic events.
//
// While enabled, instrumented layers note() short free-form entries — the
// executor mirrors every protocol-history event (sched::
// protocol_event_line bytes), the watchdog notes health transitions, the
// nemesis harness notes case boundaries — and snapshot_metrics() captures
// whole registry snapshots as entries. The ring keeps the most recent
// `capacity` entries (default 1024) and counts what it dropped, so when
// something finally goes wrong — a nemesis invariant fails, the watchdog
// turns unhealthy — dump() reconstructs the last moments without having
// had to persist an unbounded log during the healthy hours before.
//
// Dump format (DESIGN.md §14), one entry per line:
//
//   # hemocloud flight recorder (dropped=N)
//   <wall_s> <kind> <text>
//
// `wall_s` is seconds since the recorder was enabled (monotonic clock),
// `kind` is a short category token (`protocol`, `watchdog`, `nemesis`,
// `metrics`, ...), and `text` is the entry payload with newlines escaped
// as `\n` so one entry is always one line.
//
// Like the registry and profiler, the recorder is OFF by default and the
// disabled path is one relaxed atomic load — note() calls sit right next
// to the executor's history taps without disturbing the byte-stability
// contract of default runs.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "util/sync.hpp"

namespace hemo::obs {

/// One recorded entry. `wall_s` is seconds since enable(true).
struct FlightEntry {
  real_t wall_s = 0.0;
  std::string kind;
  std::string text;
};

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 1024;

  FlightRecorder() = default;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// The process-wide recorder the instrumented layers note into.
  [[nodiscard]] static FlightRecorder& global();

  /// Recording is opt-in; enable(true) also restarts the entry clock.
  void enable(bool on) HEMO_EXCLUDES(mutex_);
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Resizes the ring (existing newest entries are kept).
  void set_capacity(std::size_t capacity) HEMO_EXCLUDES(mutex_);

  /// Appends one entry, evicting the oldest when full. No-op when
  /// disabled.
  void note(std::string_view kind, std::string_view text)
      HEMO_EXCLUDES(mutex_);

  /// Captures a registry snapshot as one `metrics` entry per series.
  void snapshot_metrics(const MetricsRegistry& registry)
      HEMO_EXCLUDES(mutex_);

  /// Drops all entries (and the dropped counter).
  void reset() HEMO_EXCLUDES(mutex_);

  [[nodiscard]] std::vector<FlightEntry> entries() const
      HEMO_EXCLUDES(mutex_);
  [[nodiscard]] std::uint64_t dropped() const HEMO_EXCLUDES(mutex_);

  /// The dump format described above.
  [[nodiscard]] std::string dump() const HEMO_EXCLUDES(mutex_);

  /// Writes dump() to `path`; throws NumericError on I/O failure.
  void dump_to_file(const std::string& path) const HEMO_EXCLUDES(mutex_);

 private:
  std::atomic<bool> enabled_{false};  // atomic-ok(relaxed on/off latch)

  mutable Mutex mutex_;
  std::deque<FlightEntry> ring_ HEMO_GUARDED_BY(mutex_);
  std::size_t capacity_ HEMO_GUARDED_BY(mutex_) = kDefaultCapacity;
  std::uint64_t dropped_ HEMO_GUARDED_BY(mutex_) = 0;
  /// steady_clock origin of wall_s, set by enable(true).
  std::chrono::steady_clock::time_point epoch_ HEMO_GUARDED_BY(mutex_);
};

}  // namespace hemo::obs
