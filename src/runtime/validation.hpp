// Measured-vs-model validation of the parallel runtime.
//
// The paper's direct model predicts a task's step time from byte counts
// over measured bandwidths: t_mem from Eq. 9 memory traffic over STREAM
// COPY bandwidth, t_comm from the communication graph's per-message sizes
// through the Eq. 12 linear model (latency + bytes/bandwidth), composed as
// Eq. 6. The threaded runtime measures the same quantities for real —
// per-rank wall-clock t_mem and t_comm — so this layer closes the loop on
// one host: characterize the machine (STREAM + PingPong), predict every
// rank, compare with measurement, and emit the error distributions through
// obs/drift.hpp so a metrics snapshot shows where the model drifts.
#pragma once

#include <string>
#include <vector>

#include "decomp/partition.hpp"
#include "fit/linear.hpp"
#include "lbm/kernel_config.hpp"
#include "lbm/mesh.hpp"
#include "obs/metrics.hpp"
#include "runtime/parallel_solver.hpp"
#include "util/common.hpp"

namespace hemo::runtime {

/// Bandwidth/latency characterization of the host the runtime runs on:
/// the measured inputs of the direct model.
struct LocalHostModel {
  real_t copy_mbs = 0.0;  ///< STREAM COPY bandwidth, MB/s
  fit::CommModel comm;    ///< Eq. 12 fit: bytes/s bandwidth, seconds latency

  /// Runs STREAM and a threaded PingPong on this host and fits Eq. 12.
  /// Sizes are kept small (default ~8 MiB arrays, 64 KiB max message) so a
  /// characterization costs well under a second.
  [[nodiscard]] static LocalHostModel measure(index_t stream_elements = 1
                                                  << 20,
                                              index_t stream_repetitions = 2,
                                              index_t pingpong_iterations =
                                                  50);
};

/// Direct-model prediction for one rank.
struct RankPrediction {
  real_t t_mem_s = 0.0;   ///< Eq. 9 bytes / STREAM COPY bandwidth
  real_t t_comm_s = 0.0;  ///< sum of Eq. 12 times over sent messages
  [[nodiscard]] real_t step_s() const noexcept { return t_mem_s + t_comm_s; }
};

/// Per-rank predictions for a partition on a characterized host.
[[nodiscard]] std::vector<RankPrediction> predict_per_rank(
    const lbm::FluidMesh& mesh, const decomp::Partition& partition,
    const lbm::KernelConfig& config, const LocalHostModel& host);

/// One rank's measured-vs-predicted comparison.
struct RankValidation {
  RankPrediction predicted;
  real_t measured_mem_s = 0.0;   ///< per-step average
  real_t measured_comm_s = 0.0;  ///< per-step average (pack + wait + unpack)
  /// Signed relative errors, (predicted - measured) / measured: positive
  /// means the model underpredicted time spent.
  real_t mem_rel_error = 0.0;
  real_t comm_rel_error = 0.0;
  real_t step_rel_error = 0.0;
};

/// Whole-run validation report.
struct ValidationReport {
  std::vector<RankValidation> ranks;
  real_t predicted_step_s = 0.0;  ///< slowest predicted rank (Eq. 6 shape)
  real_t measured_step_s = 0.0;   ///< slowest measured rank
  real_t predicted_mflups = 0.0;
  real_t measured_mflups = 0.0;
};

/// Compares the runtime's cumulative per-rank timings against the direct
/// model and records the drift through obs:
///   model_drift_* (obs/drift.hpp)                        whole-run sample
///   runtime_model_mem_rel_error{workload,rank}           histogram
///   runtime_model_comm_rel_error{workload,rank}          histogram
/// Ranks that measured zero time in a phase are reported with zero error
/// (nothing to compare). Requires at least one completed step per rank.
ValidationReport validate_run(const lbm::FluidMesh& mesh,
                              const decomp::Partition& partition,
                              const lbm::KernelConfig& config,
                              const LocalHostModel& host,
                              std::span<const RankTimings> timings,
                              const std::string& workload,
                              obs::MetricsRegistry& registry);

}  // namespace hemo::runtime
