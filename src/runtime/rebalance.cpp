#include "runtime/rebalance.hpp"

#include <algorithm>

namespace hemo::runtime {

std::optional<MigrationPlan> RebalanceController::observe_window(
    std::span<const real_t> busy_s, const decomp::Partition& partition,
    const std::vector<std::vector<std::int32_t>>& neighbors_of) {
  HEMO_REQUIRE(static_cast<index_t>(busy_s.size()) == partition.n_tasks,
               "observe_window: one busy time per rank required");
  if (!options_.enabled || partition.n_tasks < 2) return std::nullopt;

  real_t sum = 0.0;
  std::size_t hottest = 0;
  for (std::size_t r = 0; r < busy_s.size(); ++r) {
    sum += busy_s[r];
    if (busy_s[r] > busy_s[hottest]) hottest = r;
  }
  const real_t mean = sum / static_cast<real_t>(busy_s.size());
  if (mean <= 0.0 || busy_s[hottest] / mean < options_.threshold) {
    hot_windows_ = 0;
    return std::nullopt;
  }
  ++hot_windows_;
  if (hot_windows_ < options_.patience) return std::nullopt;

  // Coolest channel neighbor of the hottest rank receives the block.
  const auto& neighbors = neighbors_of[hottest];
  if (neighbors.empty()) {
    hot_windows_ = 0;
    return std::nullopt;
  }
  std::int32_t coolest = neighbors.front();
  for (std::int32_t n : neighbors) {
    if (busy_s[static_cast<std::size_t>(n)] <
        busy_s[static_cast<std::size_t>(coolest)]) {
      coolest = n;
    }
  }

  // Block size: move_fraction of the surplus, converted to points through
  // the hot rank's measured per-point cost.
  const auto hot_points =
      static_cast<index_t>(partition.points_of[hottest].size());
  if (hot_points < 2) {
    hot_windows_ = 0;
    return std::nullopt;
  }
  const real_t per_point = busy_s[hottest] / static_cast<real_t>(hot_points);
  const real_t surplus = busy_s[hottest] - mean;
  auto count = static_cast<index_t>(options_.move_fraction * surplus /
                                    per_point);
  // min() after max(): when min_block itself exceeds the movable range the
  // cap wins (std::clamp would require lo <= hi).
  count = std::min(std::max(count, options_.min_block), hot_points - 1);
  hot_windows_ = 0;
  return MigrationPlan{static_cast<std::int32_t>(hottest), coolest, count};
}

}  // namespace hemo::runtime
