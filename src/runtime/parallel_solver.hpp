// Threaded-rank parallel LBM execution with real halo messaging.
//
// Each partition task becomes a *rank*: a dedicated std::thread owning a
// private distribution array (local points + ghost rows) that no other
// thread ever writes. Ranks exchange halos through mailboxes — one per
// directed halo channel, owned send buffer, epoch-stamped with an atomic
// sequence number — so communication is real message passing: the owner
// packs into the buffer and release-publishes the epoch, the receiver
// acquire-spins until the stamp arrives and unpacks into its ghost rows.
// No rank ever peeks into a neighbor's distribution array.
//
// A step overlaps bulk-interior compute with boundary communication
// (HARVEY's overlap scheme, Sec. II of the paper):
//   1. pack + publish all outgoing channels        (t_comm: pack)
//   2. update interior slots — no ghosts needed    (t_mem)
//   3. await + unpack all incoming channels        (t_comm: wait + unpack)
//   4. update frontier slots — ghosts now fresh    (t_mem)
//   5. swap front/back arrays, barrier arrive
// Ranks run in lockstep: a std::barrier ends every step, and its
// completion step (running while every rank thread is quiescent) advances
// the shared timestep, flushes per-window timings into obs::, and applies
// dynamic rebalancing migrations — the only place shared topology is
// mutated, with the barrier providing the happens-before edges. Because
// the protocol is quiescence (barrier completion), not a mutex, TSA
// cannot check it; the control state below is deliberately lock-free and
// the full protocol is written out in DESIGN.md §13.
//
// Per-rank wall-clock t_mem / t_comm (pack, wait, unpack) are measured
// every step and exported through the obs layer; runtime::validation
// compares them against the paper's direct model (Eq. 9 byte counts over
// measured STREAM bandwidth, Eq. 12 per-message times).
//
// Ranks x OpenMP threads: the rank ensemble is the process's parallelism
// — every rank thread pins its OpenMP team to 1 at entry so an OpenMP
// region reached from rank code (the lbm::Solver kernels are
// OpenMP-parallel) cannot silently multiply to ranks x cores. Set
// HEMO_RANK_THREADS=k to grant each rank a k-thread team; keep
// ranks x k within the physical core count. The main thread is not
// affected — a serial lbm::Solver in the same process keeps the global
// default (or its SolverParams::num_threads).
//
// Dynamic rebalancing: when measured busy-time imbalance (max/mean) stays
// above threshold for `patience` windows, a contiguous canonical-order
// block migrates from the hottest rank to its coolest channel neighbor
// (decomp::migrate_block). Migration gathers the canonical state, rebuilds
// partition/topology/mailboxes, and scatters the state back — bit-identical
// to a run that never migrated, which the tier-1 tests assert exactly.
//
// Supported configuration: AB + AoS + double, reference or segmented
// kernel path (the segmented path takes the branch-free bulk fast path on
// local partitions). All arithmetic goes through lbm/point_update.hpp, so
// the result is bit-identical to the serial lbm::Solver for every rank
// count.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "decomp/partition.hpp"
#include "geometry/generators.hpp"
#include "harvey/halo.hpp"
#include "lbm/mesh.hpp"
#include "lbm/solver.hpp"
#include "runtime/rebalance.hpp"
#include "util/common.hpp"

namespace hemo::runtime {

/// Cumulative wall-clock phase timings of one rank (seconds). Written only
/// by the owning rank thread; read from the barrier completion step and
/// after run() returns.
struct RankTimings {
  index_t steps = 0;
  real_t pack_s = 0.0;
  real_t wait_s = 0.0;
  real_t unpack_s = 0.0;
  real_t mem_s = 0.0;

  [[nodiscard]] real_t comm_s() const noexcept {
    return pack_s + wait_s + unpack_s;
  }
  [[nodiscard]] real_t busy_s() const noexcept { return mem_s + comm_s(); }
};

/// Runtime configuration.
struct RuntimeOptions {
  RebalanceOptions rebalance;
  /// Label attached to exported metrics series (geometry name etc.).
  std::string workload = "run";
};

/// Threaded-rank solver over an explicit partition (one thread per task).
class ParallelSolver {
 public:
  /// The mesh must outlive the solver; the partition is copied (it evolves
  /// under dynamic rebalancing). `params.kernel` must be AB + AoS + double
  /// (either kernel path).
  ParallelSolver(const lbm::FluidMesh& mesh,
                 const decomp::Partition& partition,
                 const lbm::SolverParams& params,
                 std::span<const geometry::InletSpec> inlets,
                 RuntimeOptions options = {});
  ~ParallelSolver();

  ParallelSolver(const ParallelSolver&) = delete;
  ParallelSolver& operator=(const ParallelSolver&) = delete;

  /// Runs n lockstep timesteps on n_ranks() concurrent threads; returns
  /// when every rank has finished (threads are joined per call).
  void run(index_t n);

  [[nodiscard]] index_t timestep() const noexcept { return timestep_; }
  [[nodiscard]] index_t n_ranks() const noexcept {
    return static_cast<index_t>(states_.size());
  }

  /// Moments at a *global* point index, for comparison with lbm::Solver.
  [[nodiscard]] lbm::Moments<real_t> moments_at(index_t global_point) const;

  /// Total mass across all ranks.
  [[nodiscard]] real_t total_mass() const;

  /// Distribution state in canonical order (original mesh point indices,
  /// AoS) — directly comparable to lbm::Solver<double>::export_state().
  [[nodiscard]] std::vector<double> export_state() const;

  /// Restores a canonical-order state and timestep.
  void restore_state(std::span<const double> state, index_t timestep);

  /// The current partition (reflects applied migrations).
  [[nodiscard]] const decomp::Partition& partition() const noexcept {
    return partition_;
  }

  /// Migrations applied so far (dynamic + requested).
  [[nodiscard]] index_t rebalance_count() const noexcept {
    return rebalance_count_;
  }

  /// Applies one migration immediately (between run() calls — the solver
  /// must be idle). Deterministic handle for tests and tooling; the same
  /// gather/rebuild/scatter path the dynamic trigger uses.
  void request_migration(std::int32_t from, std::int32_t to, index_t count);

  /// Cumulative per-rank phase timings (valid while idle).
  [[nodiscard]] std::span<const RankTimings> timings() const noexcept {
    return timings_;
  }

  [[nodiscard]] index_t channel_count() const noexcept {
    return topo_.channel_count();
  }
  [[nodiscard]] index_t ghost_count() const noexcept { return topo_.n_ghosts; }
  [[nodiscard]] real_t bytes_per_exchange() const {
    return topo_.bytes_per_exchange();
  }

 private:
  friend struct EpochCallback;

  /// One rank's private distribution arrays, (owned + ghosts) * kQ, AoS.
  struct RankState {
    std::vector<double> f, f2;
  };

  /// One directed halo message: owner-packed buffer plus the epoch stamp
  /// the receiver spins on. Heap-allocated (atomics are immovable).
  /// The stamp is the runtime's one lock-free handshake: the owner packs
  /// `buffer` and release-stores seq = t + 1; the receiver acquire-spins
  /// until the stamp arrives, which makes the packed bytes visible
  /// (DESIGN.md §13 atomic protocol table).
  struct Mailbox {
    index_t channel = 0;  ///< index into topo_.channels
    std::vector<double> buffer;
    std::atomic<index_t> seq{0};  // atomic-ok(release-publish/acquire-spin)
  };

  /// (Re)builds topology, mailboxes, channel maps, and rank arrays from
  /// partition_; distribution values are left uninitialized.
  void build_runtime_structures();

  /// Canonical-order gather / scatter of all ranks' owned rows.
  [[nodiscard]] std::vector<double> gather_state() const;
  void scatter_state(std::span<const double> state);

  /// One rank's step t (phases 1-5 above, minus the barrier).
  void rank_step(std::size_t r, index_t t);

  /// Barrier completion body: advance the epoch, flush window metrics,
  /// run the rebalance controller. Runs while all rank threads are
  /// quiescent inside the barrier.
  void on_epoch() noexcept;

  /// Gather + migrate_block + rebuild + scatter. Caller must hold
  /// quiescence (completion step or idle).
  void apply_migration(const MigrationPlan& plan);

  const lbm::FluidMesh* mesh_;
  decomp::Partition partition_;
  index_t timestep_ = 0;

  harvey::HaloExchange topo_;
  std::vector<RankState> states_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::vector<index_t>> out_channels_;  ///< per rank
  std::vector<std::vector<index_t>> in_channels_;   ///< per rank
  std::vector<std::vector<std::int32_t>> neighbors_of_;  ///< per rank

  harvey::RankStepContext ctx_;
  std::vector<std::array<double, 3>> bc_velocity_;
  std::vector<std::array<double, 2>> bc_pulse_;

  RuntimeOptions options_;
  RebalanceController controller_;
  std::vector<RankTimings> timings_;
  std::vector<real_t> window_start_busy_;  ///< busy_s() at window start
  index_t window_steps_ = 0;
  index_t rebalance_count_ = 0;
};

}  // namespace hemo::runtime
