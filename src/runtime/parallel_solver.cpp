#include "runtime/parallel_solver.hpp"

#include <algorithm>
#include <barrier>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <utility>

#include "lbm/point_update.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace hemo::runtime {

using lbm::kQ;

namespace {

using Clock = std::chrono::steady_clock;

real_t seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<real_t>(b - a).count();
}

/// OpenMP team size for code entered from a rank thread. Each rank is
/// already one thread of the lockstep ensemble; an OpenMP region that
/// inherited the process-wide default would multiply to ranks x cores.
/// Pinned to 1 unless HEMO_RANK_THREADS grants more — keep
/// ranks x HEMO_RANK_THREADS within the physical core count.
int rank_omp_threads() {
  if (const char* env = std::getenv("HEMO_RANK_THREADS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 1;
}

}  // namespace

/// noexcept callable the barrier runs on phase completion (while every
/// rank thread is parked inside the barrier).
struct EpochCallback {
  ParallelSolver* solver;
  void operator()() noexcept { solver->on_epoch(); }
};

ParallelSolver::ParallelSolver(const lbm::FluidMesh& mesh,
                               const decomp::Partition& partition,
                               const lbm::SolverParams& params,
                               std::span<const geometry::InletSpec> inlets,
                               RuntimeOptions options)
    : mesh_(&mesh),
      partition_(partition),
      options_(std::move(options)),
      controller_(options_.rebalance) {
  HEMO_REQUIRE(params.kernel.propagation == lbm::Propagation::kAB &&
                   params.kernel.layout == lbm::Layout::kAoS &&
                   params.kernel.precision == lbm::Precision::kDouble,
               "ParallelSolver supports the AB + AoS + double configuration");
  HEMO_REQUIRE(params.tau > 0.5, "tau must exceed 0.5");
  bc_velocity_ = lbm::inlet_velocities<double>(mesh, inlets);
  bc_pulse_ = lbm::inlet_pulse_params<double>(mesh, inlets);

  ctx_.mesh = mesh_;
  ctx_.omega = 1.0 / params.tau;
  ctx_.smagorinsky_cs2 = params.smagorinsky_cs * params.smagorinsky_cs;
  for (std::size_t d = 0; d < 3; ++d) {
    ctx_.force_shift[d] = params.tau * params.body_force[d];
  }
  ctx_.bc_velocity = &bc_velocity_;
  ctx_.bc_pulse = &bc_pulse_;
  ctx_.segmented = params.kernel.path == lbm::KernelPath::kSegmented;

  build_runtime_structures();
  for (std::size_t r = 0; r < states_.size(); ++r) {
    const index_t total = topo_.ranks[r].total_slots();
    for (index_t s = 0; s < total; ++s) {
      for (index_t q = 0; q < kQ; ++q) {
        states_[r].f[static_cast<std::size_t>(s * kQ + q)] =
            lbm::equilibrium<double>(q, 1.0, 0.0, 0.0, 0.0);
      }
    }
  }
  timings_.assign(states_.size(), RankTimings{});
  window_start_busy_.assign(states_.size(), 0.0);
}

ParallelSolver::~ParallelSolver() = default;

void ParallelSolver::build_runtime_structures() {
  topo_ = harvey::build_halo_exchange(*mesh_, partition_);
  const std::size_t n_ranks = topo_.ranks.size();

  states_.resize(n_ranks);
  for (std::size_t r = 0; r < n_ranks; ++r) {
    const auto total =
        static_cast<std::size_t>(topo_.ranks[r].total_slots() * kQ);
    states_[r].f.assign(total, 0.0);
    states_[r].f2.assign(total, 0.0);
  }

  mailboxes_.clear();
  out_channels_.assign(n_ranks, {});
  in_channels_.assign(n_ranks, {});
  neighbors_of_.assign(n_ranks, {});
  for (std::size_t c = 0; c < topo_.channels.size(); ++c) {
    const harvey::HaloChannel& channel = topo_.channels[c];
    auto box = std::make_unique<Mailbox>();
    box->channel = static_cast<index_t>(c);
    box->buffer.assign(static_cast<std::size_t>(channel.payload_values()),
                       0.0);
    // A fresh mailbox carries the current epoch so the first await after a
    // mid-run rebuild still sees seq < t + 1 until the owner publishes.
    box->seq.store(timestep_, std::memory_order_relaxed);
    mailboxes_.push_back(std::move(box));
    out_channels_[static_cast<std::size_t>(channel.from)].push_back(
        static_cast<index_t>(c));
    in_channels_[static_cast<std::size_t>(channel.to)].push_back(
        static_cast<index_t>(c));
    neighbors_of_[static_cast<std::size_t>(channel.from)].push_back(
        channel.to);
  }
}

std::vector<double> ParallelSolver::gather_state() const {
  std::vector<double> state(
      static_cast<std::size_t>(mesh_->num_points() * kQ));
  for (std::size_t r = 0; r < states_.size(); ++r) {
    const harvey::RankLayout& layout = topo_.ranks[r];
    for (index_t i = 0; i < layout.num_local(); ++i) {
      const index_t p = layout.local_points[static_cast<std::size_t>(i)];
      for (index_t q = 0; q < kQ; ++q) {
        state[static_cast<std::size_t>(p * kQ + q)] =
            states_[r].f[static_cast<std::size_t>(i * kQ + q)];
      }
    }
  }
  return state;
}

void ParallelSolver::scatter_state(std::span<const double> state) {
  for (std::size_t r = 0; r < states_.size(); ++r) {
    const harvey::RankLayout& layout = topo_.ranks[r];
    for (index_t i = 0; i < layout.num_local(); ++i) {
      const index_t p = layout.local_points[static_cast<std::size_t>(i)];
      for (index_t q = 0; q < kQ; ++q) {
        states_[r].f[static_cast<std::size_t>(i * kQ + q)] =
            state[static_cast<std::size_t>(p * kQ + q)];
      }
    }
  }
}

std::vector<double> ParallelSolver::export_state() const {
  return gather_state();
}

void ParallelSolver::restore_state(std::span<const double> state,
                                   index_t timestep) {
  HEMO_REQUIRE(static_cast<index_t>(state.size()) ==
                   mesh_->num_points() * kQ,
               "restore_state: state size must be num_points * kQ");
  HEMO_REQUIRE(timestep >= 0, "restore_state: negative timestep");
  scatter_state(state);
  timestep_ = timestep;
  for (auto& box : mailboxes_) {
    box->seq.store(timestep_, std::memory_order_relaxed);
  }
}

void ParallelSolver::rank_step(std::size_t r, index_t t) {
  RankState& rank = states_[r];
  const harvey::RankLayout& layout = topo_.ranks[r];
  RankTimings& timing = timings_[r];

  const auto t0 = Clock::now();
  {
    const obs::PhaseScope phase("pack");
    for (const index_t c : out_channels_[r]) {
      Mailbox& box = *mailboxes_[static_cast<std::size_t>(c)];
      harvey::pack_channel(
          topo_.channels[static_cast<std::size_t>(box.channel)], rank.f,
          box.buffer);
      box.seq.store(t + 1, std::memory_order_release);
    }
  }
  const auto t1 = Clock::now();

  // Interior overlap window: no slot here gathers from a ghost row, so
  // this compute proceeds while neighbor ranks are still publishing.
  {
    const obs::PhaseScope phase("interior");
    harvey::update_rank_slots(ctx_, layout, layout.interior_slots, t,
                              rank.f.data(), rank.f2.data());
  }
  const auto t2 = Clock::now();

  real_t wait_s = 0.0, unpack_s = 0.0;
  for (const index_t c : in_channels_[r]) {
    Mailbox& box = *mailboxes_[static_cast<std::size_t>(c)];
    const auto w0 = Clock::now();
    {
      const obs::PhaseScope phase("await");
      while (box.seq.load(std::memory_order_acquire) < t + 1) {
        std::this_thread::yield();
      }
    }
    const auto w1 = Clock::now();
    {
      const obs::PhaseScope phase("unpack");
      harvey::unpack_channel(
          topo_.channels[static_cast<std::size_t>(box.channel)], box.buffer,
          rank.f);
    }
    const auto w2 = Clock::now();
    wait_s += seconds_between(w0, w1);
    unpack_s += seconds_between(w1, w2);
  }
  const auto t3 = Clock::now();

  {
    const obs::PhaseScope phase("frontier");
    harvey::update_rank_slots(ctx_, layout, layout.frontier_slots, t,
                              rank.f.data(), rank.f2.data());
  }
  const auto t4 = Clock::now();

  {
    const obs::PhaseScope phase("swap");
    rank.f.swap(rank.f2);
  }

  ++timing.steps;
  timing.pack_s += seconds_between(t0, t1);
  timing.mem_s += seconds_between(t1, t2) + seconds_between(t3, t4);
  timing.wait_s += wait_s;
  timing.unpack_s += unpack_s;
}

void ParallelSolver::on_epoch() noexcept {
  ++timestep_;
  ++window_steps_;
  if (window_steps_ < options_.rebalance.window) return;
  window_steps_ = 0;

  std::vector<real_t> window_busy(states_.size(), 0.0);
  for (std::size_t r = 0; r < states_.size(); ++r) {
    window_busy[r] = timings_[r].busy_s() - window_start_busy_[r];
    window_start_busy_[r] = timings_[r].busy_s();
  }

  auto& registry = obs::MetricsRegistry::global();
  real_t max_busy = 0.0, sum_busy = 0.0;
  for (std::size_t r = 0; r < states_.size(); ++r) {
    registry.observe("runtime_window_busy_seconds", window_busy[r],
                     {{"workload", options_.workload},
                      {"rank", std::to_string(r)}});
    max_busy = std::max(max_busy, window_busy[r]);
    sum_busy += window_busy[r];
  }
  const real_t mean_busy = sum_busy / static_cast<real_t>(states_.size());
  registry.set("runtime_measured_imbalance",
               mean_busy > 0.0 ? max_busy / mean_busy : 1.0,
               {{"workload", options_.workload}});
  registry.add("runtime_windows_total", 1.0,
               {{"workload", options_.workload}});

  const auto plan =
      controller_.observe_window(window_busy, partition_, neighbors_of_);
  if (plan) {
    apply_migration(*plan);
    registry.add("runtime_migrations_total", 1.0,
                 {{"workload", options_.workload}});
    HEMO_LOG_INFO("runtime rebalance: moved %td points from rank %d to "
                  "rank %d at step %td",
                  plan->count, plan->from, plan->to, timestep_);
  }
}

void ParallelSolver::apply_migration(const MigrationPlan& plan) {
  const std::vector<double> state = gather_state();
  partition_ = decomp::migrate_block(partition_, plan.from, plan.to,
                                     plan.count);
  build_runtime_structures();
  scatter_state(state);
  ++rebalance_count_;
}

void ParallelSolver::request_migration(std::int32_t from, std::int32_t to,
                                       index_t count) {
  apply_migration(MigrationPlan{from, to, count});
}

void ParallelSolver::run(index_t n) {
  HEMO_REQUIRE(n >= 0, "negative step count");
  if (n == 0) return;
  const auto n_ranks = static_cast<std::ptrdiff_t>(states_.size());
  // The completion step runs while every rank thread is parked inside the
  // barrier, which is the happens-before edge the shared-state writes in
  // on_epoch() rely on (DESIGN.md §13).
  std::barrier<EpochCallback> sync(  // sync-ok(lockstep epoch barrier)
      n_ranks, EpochCallback{this});

  auto trace_span = obs::TraceRecorder::global().wall_span(
      "parallel_run", "runtime",
      {{"ranks", obs::trace_num(static_cast<real_t>(n_ranks))},
       {"steps", obs::trace_num(static_cast<real_t>(n))}});

  const index_t t0 = timestep_;
  std::vector<std::jthread> threads;
  threads.reserve(states_.size());
  for (std::size_t r = 0; r < states_.size(); ++r) {
    threads.emplace_back([this, r, t0, n, &sync] {
      obs::set_thread_label("rank" + std::to_string(r));
#ifdef _OPENMP
      // Thread-local in the OpenMP runtime: bounds any OpenMP region this
      // rank enters without touching other ranks or the main thread.
      omp_set_num_threads(rank_omp_threads());
#endif
      for (index_t s = 0; s < n; ++s) {
        // timestep_ is written only by the barrier completion step, which
        // happens-before every thread's release from the wait — reading it
        // here is race-free and always equals t0 + s.
        rank_step(r, t0 + s);
        sync.arrive_and_wait();
      }
    });
  }
  threads.clear();  // join all ranks
}

lbm::Moments<real_t> ParallelSolver::moments_at(index_t global_point) const {
  HEMO_REQUIRE(global_point >= 0 && global_point < mesh_->num_points(),
               "point index out of range");
  const RankState& rank = states_[static_cast<std::size_t>(
      topo_.owner_task[static_cast<std::size_t>(global_point)])];
  const index_t s = static_cast<index_t>(
      topo_.owner_slot[static_cast<std::size_t>(global_point)]);
  std::array<double, kQ> g;
  for (index_t q = 0; q < kQ; ++q) {
    g[static_cast<std::size_t>(q)] =
        rank.f[static_cast<std::size_t>(s * kQ + q)];
  }
  const auto m = lbm::moments<double>(std::span<const double, kQ>(g));
  return lbm::Moments<real_t>{m.rho, m.ux, m.uy, m.uz};
}

real_t ParallelSolver::total_mass() const {
  real_t mass = 0.0;
  for (std::size_t r = 0; r < states_.size(); ++r) {
    const index_t nl = topo_.ranks[r].num_local();
    for (index_t i = 0; i < nl * kQ; ++i) {
      mass += states_[r].f[static_cast<std::size_t>(i)];
    }
  }
  return mass;
}

}  // namespace hemo::runtime
