#include "runtime/validation.hpp"

#include <algorithm>

#include "decomp/comm_graph.hpp"
#include "microbench/pingpong.hpp"
#include "microbench/stream.hpp"
#include "obs/drift.hpp"

namespace hemo::runtime {

LocalHostModel LocalHostModel::measure(index_t stream_elements,
                                       index_t stream_repetitions,
                                       index_t pingpong_iterations) {
  LocalHostModel host;
  const auto stream = microbench::run_stream_local(
      stream_elements, stream_repetitions, 1);
  host.copy_mbs = stream.copy;

  // On a loaded host, scheduler noise can dwarf the per-byte cost and hand
  // back a non-monotonic sweep whose fixed-intercept fit has a non-positive
  // slope. Characterization must always yield a usable model (the CLI and
  // tests run on busy single-core boxes), so retry the cheap sweep and, if
  // every attempt stays degenerate, fall back to a two-point estimate.
  const auto sizes = microbench::default_message_sizes(64.0 * 1024);
  constexpr int kAttempts = 3;
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    const auto samples =
        microbench::run_pingpong_local(sizes, pingpong_iterations);
    std::vector<real_t> bytes, times;
    bytes.reserve(samples.size());
    times.reserve(samples.size());
    for (const auto& s : samples) {
      bytes.push_back(s.bytes);
      times.push_back(s.time_us * 1e-6);
    }
    try {
      host.comm = fit::fit_comm_model(bytes, times);
      return host;
    } catch (const NumericError&) {
      if (attempt + 1 < kAttempts) continue;
      const real_t latency = *std::min_element(times.begin(), times.end());
      const real_t marginal = std::max(times.back() - latency, 1e-9);
      host.comm = fit::CommModel{bytes.back() / marginal, latency};
    }
  }
  return host;
}

std::vector<RankPrediction> predict_per_rank(
    const lbm::FluidMesh& mesh, const decomp::Partition& partition,
    const lbm::KernelConfig& config, const LocalHostModel& host) {
  HEMO_REQUIRE(host.copy_mbs > 0.0, "host model needs a positive bandwidth");
  std::vector<RankPrediction> predictions(
      static_cast<std::size_t>(partition.n_tasks));
  const auto bytes = decomp::task_bytes_per_step(mesh, partition, config);
  for (std::size_t t = 0; t < predictions.size(); ++t) {
    predictions[t].t_mem_s = bytes[t] / (host.copy_mbs * 1e6);
  }
  const decomp::CommGraph graph = decomp::build_comm_graph(mesh, partition);
  for (const decomp::Message& m : graph.messages) {
    predictions[static_cast<std::size_t>(m.from)].t_comm_s +=
        host.comm.time(m.bytes(config));
  }
  return predictions;
}

ValidationReport validate_run(const lbm::FluidMesh& mesh,
                              const decomp::Partition& partition,
                              const lbm::KernelConfig& config,
                              const LocalHostModel& host,
                              std::span<const RankTimings> timings,
                              const std::string& workload,
                              obs::MetricsRegistry& registry) {
  HEMO_REQUIRE(static_cast<index_t>(timings.size()) == partition.n_tasks,
               "validate_run: one timing record per rank required");
  ValidationReport report;
  const auto predictions = predict_per_rank(mesh, partition, config, host);
  report.ranks.resize(timings.size());

  auto rel_error = [](real_t predicted, real_t measured) {
    return measured > 0.0 ? (predicted - measured) / measured : 0.0;
  };

  for (std::size_t r = 0; r < timings.size(); ++r) {
    const RankTimings& timing = timings[r];
    HEMO_REQUIRE(timing.steps > 0,
                 "validate_run: every rank needs completed steps");
    RankValidation& v = report.ranks[r];
    v.predicted = predictions[r];
    const auto steps = static_cast<real_t>(timing.steps);
    v.measured_mem_s = timing.mem_s / steps;
    v.measured_comm_s = timing.comm_s() / steps;
    v.mem_rel_error = rel_error(v.predicted.t_mem_s, v.measured_mem_s);
    v.comm_rel_error = rel_error(v.predicted.t_comm_s, v.measured_comm_s);
    v.step_rel_error = rel_error(v.predicted.step_s(),
                                 v.measured_mem_s + v.measured_comm_s);

    const obs::Labels labels = {{"rank", std::to_string(r)},
                                {"workload", workload}};
    registry.observe("runtime_model_mem_rel_error", v.mem_rel_error, labels,
                     obs::drift_error_edges());
    registry.observe("runtime_model_comm_rel_error", v.comm_rel_error,
                     labels, obs::drift_error_edges());

    report.predicted_step_s =
        std::max(report.predicted_step_s, v.predicted.step_s());
    report.measured_step_s = std::max(
        report.measured_step_s, v.measured_mem_s + v.measured_comm_s);
  }

  const auto points = static_cast<real_t>(mesh.num_points());
  if (report.predicted_step_s > 0.0) {
    report.predicted_mflups = points / (report.predicted_step_s * 1e6);
  }
  if (report.measured_step_s > 0.0) {
    report.measured_mflups = points / (report.measured_step_s * 1e6);
  }

  obs::DriftSample sample;
  sample.workload = workload;
  sample.instance = "local";
  sample.round = 0;
  sample.predicted_mflups = report.predicted_mflups;
  sample.measured_mflups = report.measured_mflups;
  sample.predicted_step_seconds = report.predicted_step_s;
  sample.actual_step_seconds = report.measured_step_s;
  obs::record_drift(registry, sample);
  return report;
}

}  // namespace hemo::runtime
