// Dynamic load-rebalancing policy for the threaded parallel runtime.
//
// The paper's load-imbalance factor z (Eqs. 10-11) is a *static* property
// of the decomposition; at run time the measured imbalance drifts away
// from it (cache effects, neighbor interference, preemption). The
// controller watches measured per-rank busy time over fixed step windows
// and, when max/mean exceeds a threshold for `patience` consecutive
// windows, plans one contiguous-block migration from the hottest rank to
// its least-loaded channel neighbor. The runtime applies the plan at an
// epoch boundary through decomp::migrate_block, so the numerical state is
// bit-identical to an unmigrated run — only ownership moves.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "decomp/partition.hpp"
#include "util/common.hpp"

namespace hemo::runtime {

/// Policy knobs; defaults are conservative (trigger only on sustained,
/// clearly-visible imbalance).
struct RebalanceOptions {
  bool enabled = false;
  index_t window = 32;        ///< steps per observation window
  real_t threshold = 1.25;    ///< max/mean busy-time trigger
  index_t patience = 2;       ///< consecutive hot windows before migrating
  real_t move_fraction = 0.5; ///< fraction of the surplus points to move
  index_t min_block = 16;     ///< smallest block worth migrating
};

/// One planned migration: move `count` canonical-order contiguous points
/// from rank `from` to rank `to`.
struct MigrationPlan {
  std::int32_t from = -1;
  std::int32_t to = -1;
  index_t count = 0;
};

/// Windowed imbalance detector + migration planner. Not thread-safe: the
/// runtime calls observe_window() from the barrier completion step, where
/// every rank thread is quiescent.
class RebalanceController {
 public:
  explicit RebalanceController(const RebalanceOptions& options)
      : options_(options) {}

  [[nodiscard]] const RebalanceOptions& options() const noexcept {
    return options_;
  }

  /// Feeds one window of per-rank busy seconds. `neighbors_of[r]` lists the
  /// ranks r shares a halo channel with (migration stays between adjacent
  /// ranks). Returns a plan when the imbalance has been above threshold for
  /// `patience` consecutive windows and a useful block can move; the hot
  /// streak resets after a plan is issued.
  [[nodiscard]] std::optional<MigrationPlan> observe_window(
      std::span<const real_t> busy_s, const decomp::Partition& partition,
      const std::vector<std::vector<std::int32_t>>& neighbors_of);

  /// Consecutive windows above threshold so far (diagnostics).
  [[nodiscard]] index_t hot_windows() const noexcept { return hot_windows_; }

 private:
  RebalanceOptions options_;
  index_t hot_windows_ = 0;
};

}  // namespace hemo::runtime
