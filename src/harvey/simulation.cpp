#include "harvey/simulation.hpp"

namespace hemo::harvey {

Simulation::Simulation(geometry::Geometry geometry,
                       const SimulationOptions& options)
    : geometry_(std::move(geometry)),
      options_(options),
      mesh_(lbm::FluidMesh::build(geometry_.grid)) {}

lbm::Solver<double>& Simulation::solver() {
  if (!solver_) {
    solver_ = std::make_unique<lbm::Solver<double>>(
        mesh_, options_.solver, std::span(geometry_.inlets));
  }
  return *solver_;
}

const decomp::Partition& Simulation::partition(index_t n_tasks) {
  auto it = partitions_.find(n_tasks);
  if (it == partitions_.end()) {
    it = partitions_
             .emplace(n_tasks,
                      decomp::make_partition(mesh_, n_tasks,
                                             options_.strategy))
             .first;
  }
  return it->second;
}

const cluster::WorkloadPlan& Simulation::plan(index_t n_tasks,
                                              index_t tasks_per_node) {
  const auto key = std::make_pair(n_tasks, tasks_per_node);
  auto it = plans_.find(key);
  if (it == plans_.end()) {
    it = plans_
             .emplace(key, cluster::make_workload_plan(
                               mesh_, partition(n_tasks),
                               options_.solver.kernel, tasks_per_node,
                               geometry_.name))
             .first;
  }
  return it->second;
}

cluster::ExecutionResult Simulation::measure(
    const cluster::InstanceProfile& profile, index_t n_tasks,
    index_t timesteps, const cluster::MeasurementContext& when) {
  const cluster::WorkloadPlan& p =
      plan(n_tasks, std::min(n_tasks, profile.cores_per_node));
  cluster::VirtualCluster vc(profile);
  return vc.execute(p, timesteps, when);
}

const cluster::WorkloadPlan& Simulation::gpu_plan(index_t n_tasks,
                                                  index_t gpus_per_node) {
  const auto key = std::make_pair(n_tasks, gpus_per_node);
  auto it = gpu_plans_.find(key);
  if (it == gpu_plans_.end()) {
    it = gpu_plans_
             .emplace(key, cluster::make_gpu_workload_plan(
                               mesh_, partition(n_tasks),
                               options_.solver.kernel, gpus_per_node,
                               geometry_.name + "-gpu"))
             .first;
  }
  return it->second;
}

cluster::ExecutionResult Simulation::measure_gpu(
    const cluster::InstanceProfile& profile, index_t n_tasks,
    index_t timesteps, const cluster::MeasurementContext& when) {
  HEMO_REQUIRE(profile.gpu.has_value(),
               "measure_gpu requires a GPU-equipped instance");
  const cluster::WorkloadPlan& p = gpu_plan(
      n_tasks, std::min(n_tasks, profile.gpu->gpus_per_node));
  cluster::VirtualCluster vc(profile);
  return vc.execute(p, timesteps, when);
}

}  // namespace hemo::harvey
