// HARVEY-equivalent simulation driver.
//
// Ties a geometry, the D3Q19 BGK solver, the domain decomposition, and the
// virtual cluster together behind one interface: run the physics locally,
// or lay the same problem out over n tasks and "measure" it on a cloud
// instance profile. Partitions and workload plans are cached per task
// count so scaling sweeps stay cheap.
#pragma once

#include <map>
#include <memory>

#include "cluster/virtual_cluster.hpp"
#include "decomp/partition.hpp"
#include "geometry/generators.hpp"
#include "lbm/solver.hpp"
#include "util/common.hpp"

namespace hemo::harvey {

/// Options of one simulation campaign.
struct SimulationOptions {
  lbm::SolverParams solver;
  decomp::Strategy strategy = decomp::Strategy::kRcb;
};

/// One geometry + numerical setup, decomposable at any task count.
class Simulation {
 public:
  /// Takes ownership of the geometry.
  Simulation(geometry::Geometry geometry, const SimulationOptions& options);

  [[nodiscard]] const geometry::Geometry& geometry() const noexcept {
    return geometry_;
  }
  [[nodiscard]] const lbm::FluidMesh& mesh() const noexcept { return mesh_; }
  [[nodiscard]] const SimulationOptions& options() const noexcept {
    return options_;
  }

  /// The serial physics solver (lazily created; double precision).
  [[nodiscard]] lbm::Solver<double>& solver();

  /// Partition into n tasks (cached).
  [[nodiscard]] const decomp::Partition& partition(index_t n_tasks);

  /// Workload plan for n tasks with tasks_per_node ranks per node (cached).
  [[nodiscard]] const cluster::WorkloadPlan& plan(index_t n_tasks,
                                                  index_t tasks_per_node);

  /// Simulated measurement on an instance profile: n_tasks ranks, one rank
  /// per physical core per node (the paper's allocation mode).
  [[nodiscard]] cluster::ExecutionResult measure(
      const cluster::InstanceProfile& profile, index_t n_tasks,
      index_t timesteps, const cluster::MeasurementContext& when = {});

  /// GPU plan: one task per device (requires a GPU-equipped profile).
  [[nodiscard]] const cluster::WorkloadPlan& gpu_plan(index_t n_tasks,
                                                      index_t gpus_per_node);

  /// Simulated GPU measurement on a GPU-equipped instance profile.
  [[nodiscard]] cluster::ExecutionResult measure_gpu(
      const cluster::InstanceProfile& profile, index_t n_tasks,
      index_t timesteps, const cluster::MeasurementContext& when = {});

 private:
  geometry::Geometry geometry_;
  SimulationOptions options_;
  lbm::FluidMesh mesh_;
  std::unique_ptr<lbm::Solver<double>> solver_;
  std::map<index_t, decomp::Partition> partitions_;
  std::map<std::pair<index_t, index_t>, cluster::WorkloadPlan> plans_;
  std::map<std::pair<index_t, index_t>, cluster::WorkloadPlan> gpu_plans_;
};

}  // namespace hemo::harvey
