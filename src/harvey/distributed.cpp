#include "harvey/distributed.hpp"

#include <algorithm>
#include <map>

#include "lbm/point_update.hpp"

namespace hemo::harvey {

using lbm::kQ;
using lbm::kSolidLink;
using lbm::opposite;

DistributedSolver::DistributedSolver(
    const lbm::FluidMesh& mesh, const decomp::Partition& partition,
    const lbm::SolverParams& params,
    std::span<const geometry::InletSpec> inlets)
    : mesh_(&mesh), partition_(&partition), params_(params) {
  HEMO_REQUIRE(params.kernel.propagation == lbm::Propagation::kAB &&
                   params.kernel.layout == lbm::Layout::kAoS,
               "DistributedSolver supports the AB + AoS configuration");
  HEMO_REQUIRE(params.tau > 0.5, "tau must exceed 0.5");
  omega_ = 1.0 / params.tau;
  bc_velocity_ = lbm::inlet_velocities<double>(mesh, inlets);
  bc_pulse_ = lbm::inlet_pulse_params<double>(mesh, inlets);
  for (std::size_t d = 0; d < 3; ++d) {
    force_shift_[d] = params.tau * params.body_force[d];
  }

  const index_t n_points = mesh.num_points();
  owner_task_.assign(static_cast<std::size_t>(n_points), 0);
  owner_slot_.assign(static_cast<std::size_t>(n_points), 0);

  tasks_.resize(static_cast<std::size_t>(partition.n_tasks));
  for (index_t t = 0; t < partition.n_tasks; ++t) {
    Task& task = tasks_[static_cast<std::size_t>(t)];
    task.local_points = partition.points_of[static_cast<std::size_t>(t)];
    for (index_t i = 0; i < static_cast<index_t>(task.local_points.size());
         ++i) {
      const index_t p = task.local_points[static_cast<std::size_t>(i)];
      owner_task_[static_cast<std::size_t>(p)] = static_cast<std::int32_t>(t);
      owner_slot_[static_cast<std::size_t>(p)] = static_cast<std::int32_t>(i);
    }
  }

  // Ghost discovery + local neighbor tables.
  for (index_t t = 0; t < partition.n_tasks; ++t) {
    Task& task = tasks_[static_cast<std::size_t>(t)];
    const index_t nl = static_cast<index_t>(task.local_points.size());

    // Collect remote neighbors (any direction; the pull gather touches all
    // 18 upstream neighbors, which is the same set).
    std::vector<index_t> ghosts;
    for (index_t p : task.local_points) {
      for (index_t q = 1; q < kQ; ++q) {
        const std::int32_t nb = mesh.neighbor(p, q);
        if (nb == kSolidLink) continue;
        if (partition.task_of[static_cast<std::size_t>(nb)] !=
            static_cast<std::int32_t>(t)) {
          ghosts.push_back(nb);
        }
      }
    }
    std::sort(ghosts.begin(), ghosts.end());
    ghosts.erase(std::unique(ghosts.begin(), ghosts.end()), ghosts.end());
    task.ghost_points = std::move(ghosts);
    n_ghosts_ += static_cast<index_t>(task.ghost_points.size());

    // Map: global id -> local slot for this task.
    auto local_slot = [&](index_t global) -> std::int32_t {
      if (owner_task_[static_cast<std::size_t>(global)] ==
          static_cast<std::int32_t>(t)) {
        return owner_slot_[static_cast<std::size_t>(global)];
      }
      const auto it = std::lower_bound(task.ghost_points.begin(),
                                       task.ghost_points.end(), global);
      return static_cast<std::int32_t>(
          nl + (it - task.ghost_points.begin()));
    };

    task.neighbors.assign(static_cast<std::size_t>(nl * kQ), kSolidLink);
    for (index_t i = 0; i < nl; ++i) {
      const index_t p = task.local_points[static_cast<std::size_t>(i)];
      for (index_t q = 0; q < kQ; ++q) {
        const std::int32_t nb = mesh.neighbor(p, q);
        if (nb != kSolidLink) {
          task.neighbors[static_cast<std::size_t>(i * kQ + q)] =
              local_slot(nb);
        }
      }
    }

    const index_t total =
        nl + static_cast<index_t>(task.ghost_points.size());
    task.f.assign(static_cast<std::size_t>(total * kQ), 0.0);
    task.f2.assign(static_cast<std::size_t>(total * kQ), 0.0);
    for (index_t s = 0; s < total; ++s) {
      for (index_t q = 0; q < kQ; ++q) {
        task.f[static_cast<std::size_t>(s * kQ + q)] =
            lbm::equilibrium<double>(q, 1.0, 0.0, 0.0, 0.0);
      }
    }
  }

  // Build the halo channels: one directed message per (owner, receiver)
  // pair that shares ghosts, with pack/unpack slot lists in the
  // receiver's deterministic ghost order.
  std::map<std::pair<std::int32_t, std::int32_t>, index_t> channel_index;
  for (index_t t = 0; t < partition.n_tasks; ++t) {
    const Task& task = tasks_[static_cast<std::size_t>(t)];
    const index_t nl = static_cast<index_t>(task.local_points.size());
    for (index_t g = 0;
         g < static_cast<index_t>(task.ghost_points.size()); ++g) {
      const index_t global = task.ghost_points[static_cast<std::size_t>(g)];
      const std::int32_t owner =
          owner_task_[static_cast<std::size_t>(global)];
      const auto key =
          std::make_pair(owner, static_cast<std::int32_t>(t));
      auto it = channel_index.find(key);
      if (it == channel_index.end()) {
        it = channel_index
                 .emplace(key, static_cast<index_t>(channels_.size()))
                 .first;
        channels_.push_back(HaloChannel{owner,
                                        static_cast<std::int32_t>(t),
                                        {},
                                        {},
                                        {}});
      }
      HaloChannel& channel =
          channels_[static_cast<std::size_t>(it->second)];
      channel.src_slots.push_back(
          owner_slot_[static_cast<std::size_t>(global)]);
      channel.dst_slots.push_back(static_cast<std::int32_t>(nl + g));
    }
  }
  for (HaloChannel& channel : channels_) {
    channel.buffer.assign(channel.src_slots.size() *
                              static_cast<std::size_t>(kQ),
                          0.0);
  }
}

real_t DistributedSolver::bytes_per_exchange() const {
  real_t bytes = 0.0;
  for (const HaloChannel& channel : channels_) {
    bytes += static_cast<real_t>(channel.buffer.size() * sizeof(double));
  }
  return bytes;
}

void DistributedSolver::exchange_ghosts() {
  // Phase 1 — every owner packs ("sends") its channels' payloads. All
  // packs complete before any unpack, exactly like posting MPI sends
  // before the matching receives complete.
  for (HaloChannel& channel : channels_) {
    const Task& owner = tasks_[static_cast<std::size_t>(channel.from)];
    for (std::size_t i = 0; i < channel.src_slots.size(); ++i) {
      const auto src = static_cast<std::size_t>(channel.src_slots[i]);
      for (index_t q = 0; q < kQ; ++q) {
        channel.buffer[i * static_cast<std::size_t>(kQ) +
                       static_cast<std::size_t>(q)] =
            owner.f[src * static_cast<std::size_t>(kQ) +
                    static_cast<std::size_t>(q)];
      }
    }
  }
  // Phase 2 — every receiver unpacks into its ghost rows.
  for (const HaloChannel& channel : channels_) {
    Task& receiver = tasks_[static_cast<std::size_t>(channel.to)];
    for (std::size_t i = 0; i < channel.dst_slots.size(); ++i) {
      const auto dst = static_cast<std::size_t>(channel.dst_slots[i]);
      for (index_t q = 0; q < kQ; ++q) {
        receiver.f[dst * static_cast<std::size_t>(kQ) +
                   static_cast<std::size_t>(q)] =
            channel.buffer[i * static_cast<std::size_t>(kQ) +
                           static_cast<std::size_t>(q)];
      }
    }
  }
}

void DistributedSolver::local_update(Task& task) {
  double g[kQ], out[kQ];
  const index_t nl = static_cast<index_t>(task.local_points.size());
  for (index_t i = 0; i < nl; ++i) {
    const index_t p = task.local_points[static_cast<std::size_t>(i)];
    for (index_t q = 0; q < kQ; ++q) {
      const std::int32_t nb =
          task.neighbors[static_cast<std::size_t>(i * kQ + opposite(q))];
      g[q] = nb != kSolidLink
                 ? task.f[static_cast<std::size_t>(
                       static_cast<index_t>(nb) * kQ + q)]
                 : task.f[static_cast<std::size_t>(i * kQ + opposite(q))];
    }
    std::array<double, 3> bc = bc_velocity_[static_cast<std::size_t>(p)];
    const auto& pulse = bc_pulse_[static_cast<std::size_t>(p)];
    if (pulse[0] != 0.0) {
      const double scale =
          lbm::pulse_scale<double>(pulse[0], pulse[1], timestep_);
      for (auto& component : bc) component *= scale;
    }
    lbm::update_point_values<double>(
        mesh_->type(p), g, out, omega_, bc, force_shift_,
        params_.smagorinsky_cs * params_.smagorinsky_cs);
    for (index_t q = 0; q < kQ; ++q) {
      task.f2[static_cast<std::size_t>(i * kQ + q)] = out[q];
    }
  }
}

void DistributedSolver::step() {
  exchange_ghosts();
  for (Task& task : tasks_) local_update(task);
  for (Task& task : tasks_) task.f.swap(task.f2);
  ++timestep_;
}

void DistributedSolver::run(index_t n) {
  HEMO_REQUIRE(n >= 0, "negative step count");
  for (index_t i = 0; i < n; ++i) step();
}

lbm::Moments<real_t> DistributedSolver::moments_at(index_t global_point) const {
  HEMO_REQUIRE(global_point >= 0 && global_point < mesh_->num_points(),
               "point index out of range");
  const Task& task = tasks_[static_cast<std::size_t>(
      owner_task_[static_cast<std::size_t>(global_point)])];
  const index_t s = static_cast<index_t>(
      owner_slot_[static_cast<std::size_t>(global_point)]);
  std::array<double, kQ> g;
  for (index_t q = 0; q < kQ; ++q) {
    g[static_cast<std::size_t>(q)] =
        task.f[static_cast<std::size_t>(s * kQ + q)];
  }
  const auto m = lbm::moments<double>(std::span<const double, kQ>(g));
  return lbm::Moments<real_t>{m.rho, m.ux, m.uy, m.uz};
}

real_t DistributedSolver::total_mass() const {
  real_t mass = 0.0;
  for (const Task& task : tasks_) {
    const index_t nl = static_cast<index_t>(task.local_points.size());
    for (index_t i = 0; i < nl * kQ; ++i) {
      mass += task.f[static_cast<std::size_t>(i)];
    }
  }
  return mass;
}

}  // namespace hemo::harvey
