#include "harvey/distributed.hpp"

#include "lbm/point_update.hpp"

namespace hemo::harvey {

using lbm::kQ;

DistributedSolver::DistributedSolver(
    const lbm::FluidMesh& mesh, const decomp::Partition& partition,
    const lbm::SolverParams& params,
    std::span<const geometry::InletSpec> inlets)
    : mesh_(&mesh), params_(params) {
  HEMO_REQUIRE(params.kernel.propagation == lbm::Propagation::kAB &&
                   params.kernel.layout == lbm::Layout::kAoS,
               "DistributedSolver supports the AB + AoS configuration");
  HEMO_REQUIRE(params.tau > 0.5, "tau must exceed 0.5");
  bc_velocity_ = lbm::inlet_velocities<double>(mesh, inlets);
  bc_pulse_ = lbm::inlet_pulse_params<double>(mesh, inlets);

  ctx_.mesh = mesh_;
  ctx_.omega = 1.0 / params.tau;
  ctx_.smagorinsky_cs2 = params.smagorinsky_cs * params.smagorinsky_cs;
  for (std::size_t d = 0; d < 3; ++d) {
    ctx_.force_shift[d] = params.tau * params.body_force[d];
  }
  ctx_.bc_velocity = &bc_velocity_;
  ctx_.bc_pulse = &bc_pulse_;
  ctx_.segmented = params.kernel.path == lbm::KernelPath::kSegmented;

  topo_ = build_halo_exchange(mesh, partition);
  tasks_.resize(topo_.ranks.size());
  for (std::size_t t = 0; t < topo_.ranks.size(); ++t) {
    const index_t total = topo_.ranks[t].total_slots();
    tasks_[t].f.assign(static_cast<std::size_t>(total * kQ), 0.0);
    tasks_[t].f2.assign(static_cast<std::size_t>(total * kQ), 0.0);
    for (index_t s = 0; s < total; ++s) {
      for (index_t q = 0; q < kQ; ++q) {
        tasks_[t].f[static_cast<std::size_t>(s * kQ + q)] =
            lbm::equilibrium<double>(q, 1.0, 0.0, 0.0, 0.0);
      }
    }
  }
  buffers_.resize(topo_.channels.size());
  for (std::size_t c = 0; c < topo_.channels.size(); ++c) {
    buffers_[c].assign(
        static_cast<std::size_t>(topo_.channels[c].payload_values()), 0.0);
  }
}

void DistributedSolver::exchange_ghosts() {
  // Phase 1 — every owner packs ("sends") its channels' payloads. All
  // packs complete before any unpack, exactly like posting MPI sends
  // before the matching receives complete.
  for (std::size_t c = 0; c < topo_.channels.size(); ++c) {
    const HaloChannel& channel = topo_.channels[c];
    pack_channel(channel, tasks_[static_cast<std::size_t>(channel.from)].f,
                 buffers_[c]);
  }
  // Phase 2 — every receiver unpacks into its ghost rows.
  for (std::size_t c = 0; c < topo_.channels.size(); ++c) {
    const HaloChannel& channel = topo_.channels[c];
    unpack_channel(channel, buffers_[c],
                   tasks_[static_cast<std::size_t>(channel.to)].f);
  }
}

void DistributedSolver::step() {
  exchange_ghosts();
  for (std::size_t t = 0; t < topo_.ranks.size(); ++t) {
    const RankLayout& layout = topo_.ranks[t];
    update_rank_slots(ctx_, layout, layout.interior_slots, timestep_,
                      tasks_[t].f.data(), tasks_[t].f2.data());
    update_rank_slots(ctx_, layout, layout.frontier_slots, timestep_,
                      tasks_[t].f.data(), tasks_[t].f2.data());
  }
  for (TaskState& task : tasks_) task.f.swap(task.f2);
  ++timestep_;
}

void DistributedSolver::run(index_t n) {
  HEMO_REQUIRE(n >= 0, "negative step count");
  for (index_t i = 0; i < n; ++i) step();
}

lbm::Moments<real_t> DistributedSolver::moments_at(index_t global_point) const {
  HEMO_REQUIRE(global_point >= 0 && global_point < mesh_->num_points(),
               "point index out of range");
  const TaskState& task = tasks_[static_cast<std::size_t>(
      topo_.owner_task[static_cast<std::size_t>(global_point)])];
  const index_t s = static_cast<index_t>(
      topo_.owner_slot[static_cast<std::size_t>(global_point)]);
  std::array<double, kQ> g;
  for (index_t q = 0; q < kQ; ++q) {
    g[static_cast<std::size_t>(q)] =
        task.f[static_cast<std::size_t>(s * kQ + q)];
  }
  const auto m = lbm::moments<double>(std::span<const double, kQ>(g));
  return lbm::Moments<real_t>{m.rho, m.ux, m.uy, m.uz};
}

real_t DistributedSolver::total_mass() const {
  real_t mass = 0.0;
  for (std::size_t t = 0; t < topo_.ranks.size(); ++t) {
    const index_t nl = topo_.ranks[t].num_local();
    for (index_t i = 0; i < nl * kQ; ++i) {
      mass += tasks_[t].f[static_cast<std::size_t>(i)];
    }
  }
  return mass;
}

}  // namespace hemo::harvey
