#include "harvey/halo.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "lbm/point_update.hpp"

namespace hemo::harvey {

using lbm::kQ;
using lbm::kSolidLink;
using lbm::opposite;

real_t HaloExchange::bytes_per_exchange() const {
  real_t bytes = 0.0;
  for (const HaloChannel& channel : channels) {
    bytes += static_cast<real_t>(channel.payload_values()) *
             static_cast<real_t>(sizeof(double));
  }
  return bytes;
}

HaloExchange build_halo_exchange(const lbm::FluidMesh& mesh,
                                 const decomp::Partition& partition) {
  HEMO_REQUIRE(partition.n_tasks >= 1, "partition needs at least one task");
  HEMO_REQUIRE(static_cast<index_t>(partition.task_of.size()) ==
                   mesh.num_points(),
               "partition does not cover the mesh");

  HaloExchange topo;
  const index_t n_points = mesh.num_points();
  topo.owner_task.assign(static_cast<std::size_t>(n_points), 0);
  topo.owner_slot.assign(static_cast<std::size_t>(n_points), 0);

  topo.ranks.resize(static_cast<std::size_t>(partition.n_tasks));
  for (index_t t = 0; t < partition.n_tasks; ++t) {
    RankLayout& rank = topo.ranks[static_cast<std::size_t>(t)];
    rank.local_points = partition.points_of[static_cast<std::size_t>(t)];
    for (index_t i = 0; i < rank.num_local(); ++i) {
      const index_t p = rank.local_points[static_cast<std::size_t>(i)];
      topo.owner_task[static_cast<std::size_t>(p)] =
          static_cast<std::int32_t>(t);
      topo.owner_slot[static_cast<std::size_t>(p)] =
          static_cast<std::int32_t>(i);
    }
  }

  // Ghost discovery + local neighbor tables + interior/frontier split.
  for (index_t t = 0; t < partition.n_tasks; ++t) {
    RankLayout& rank = topo.ranks[static_cast<std::size_t>(t)];
    const index_t nl = rank.num_local();

    // Collect remote neighbors (any direction; the pull gather touches all
    // 18 upstream neighbors, which is the same set).
    std::vector<index_t> ghosts;
    for (index_t p : rank.local_points) {
      for (index_t q = 1; q < kQ; ++q) {
        const std::int32_t nb = mesh.neighbor(p, q);
        if (nb == kSolidLink) continue;
        if (partition.task_of[static_cast<std::size_t>(nb)] !=
            static_cast<std::int32_t>(t)) {
          ghosts.push_back(nb);
        }
      }
    }
    std::sort(ghosts.begin(), ghosts.end());
    ghosts.erase(std::unique(ghosts.begin(), ghosts.end()), ghosts.end());
    rank.ghost_points = std::move(ghosts);
    topo.n_ghosts += rank.num_ghosts();

    // Map: global id -> local slot for this rank.
    auto local_slot = [&](index_t global) -> std::int32_t {
      if (topo.owner_task[static_cast<std::size_t>(global)] ==
          static_cast<std::int32_t>(t)) {
        return topo.owner_slot[static_cast<std::size_t>(global)];
      }
      const auto it = std::lower_bound(rank.ghost_points.begin(),
                                       rank.ghost_points.end(), global);
      return static_cast<std::int32_t>(nl +
                                       (it - rank.ghost_points.begin()));
    };

    rank.neighbors.assign(static_cast<std::size_t>(nl * kQ), kSolidLink);
    rank.bulk_point.assign(static_cast<std::size_t>(nl), 0);
    for (index_t i = 0; i < nl; ++i) {
      const index_t p = rank.local_points[static_cast<std::size_t>(i)];
      bool touches_ghost = false;
      for (index_t q = 0; q < kQ; ++q) {
        const std::int32_t nb = mesh.neighbor(p, q);
        if (nb != kSolidLink) {
          const std::int32_t slot = local_slot(nb);
          rank.neighbors[static_cast<std::size_t>(i * kQ + q)] = slot;
          touches_ghost = touches_ghost || slot >= nl;
        }
      }
      (touches_ghost ? rank.frontier_slots : rank.interior_slots)
          .push_back(i);
      rank.bulk_point[static_cast<std::size_t>(i)] =
          (mesh.type(p) == lbm::PointType::kBulk && mesh.solid_links(p) == 0)
              ? 1
              : 0;
    }
  }

  // Channels: one directed message per (owner, receiver) pair that shares
  // ghosts, with pack/unpack slot lists in the receiver's deterministic
  // ghost order.
  std::map<std::pair<std::int32_t, std::int32_t>, index_t> channel_index;
  for (index_t t = 0; t < partition.n_tasks; ++t) {
    const RankLayout& rank = topo.ranks[static_cast<std::size_t>(t)];
    const index_t nl = rank.num_local();
    for (index_t g = 0; g < rank.num_ghosts(); ++g) {
      const index_t global = rank.ghost_points[static_cast<std::size_t>(g)];
      const std::int32_t owner =
          topo.owner_task[static_cast<std::size_t>(global)];
      const auto key = std::make_pair(owner, static_cast<std::int32_t>(t));
      auto it = channel_index.find(key);
      if (it == channel_index.end()) {
        it = channel_index
                 .emplace(key, static_cast<index_t>(topo.channels.size()))
                 .first;
        topo.channels.push_back(
            HaloChannel{owner, static_cast<std::int32_t>(t), {}, {}});
      }
      HaloChannel& channel =
          topo.channels[static_cast<std::size_t>(it->second)];
      channel.src_slots.push_back(
          topo.owner_slot[static_cast<std::size_t>(global)]);
      channel.dst_slots.push_back(static_cast<std::int32_t>(nl + g));
    }
  }
  return topo;
}

void pack_channel(const HaloChannel& channel, std::span<const double> owner_f,
                  std::span<double> buffer) {
  for (std::size_t i = 0; i < channel.src_slots.size(); ++i) {
    const auto src = static_cast<std::size_t>(channel.src_slots[i]);
    for (std::size_t q = 0; q < static_cast<std::size_t>(kQ); ++q) {
      buffer[i * static_cast<std::size_t>(kQ) + q] =
          owner_f[src * static_cast<std::size_t>(kQ) + q];
    }
  }
}

void unpack_channel(const HaloChannel& channel, std::span<const double> buffer,
                    std::span<double> receiver_f) {
  for (std::size_t i = 0; i < channel.dst_slots.size(); ++i) {
    const auto dst = static_cast<std::size_t>(channel.dst_slots[i]);
    for (std::size_t q = 0; q < static_cast<std::size_t>(kQ); ++q) {
      receiver_f[dst * static_cast<std::size_t>(kQ) + q] =
          buffer[i * static_cast<std::size_t>(kQ) + q];
    }
  }
}

void update_rank_slots(const RankStepContext& ctx, const RankLayout& layout,
                       std::span<const index_t> slots, index_t timestep,
                       const double* f, double* f2) {
  double g[kQ], out[kQ];
  for (const index_t i : slots) {
    if (ctx.segmented && layout.bulk_point[static_cast<std::size_t>(i)]) {
      // Branch-free bulk-interior path: no solid links, so the gather
      // needs no bounce-back fallback and the update skips the type
      // dispatch — exactly the segmented serial kernel's arithmetic.
      for (index_t q = 0; q < kQ; ++q) {
        const std::int32_t nb =
            layout
                .neighbors[static_cast<std::size_t>(i * kQ + opposite(q))];
        g[q] = f[static_cast<std::size_t>(static_cast<index_t>(nb) * kQ +
                                          q)];
      }
      if (ctx.smagorinsky_cs2 > 0.0) {
        lbm::update_interior_values<double, true>(
            g, out, ctx.omega, ctx.force_shift, ctx.smagorinsky_cs2);
      } else {
        lbm::update_interior_values<double, false>(
            g, out, ctx.omega, ctx.force_shift, ctx.smagorinsky_cs2);
      }
    } else {
      const index_t p = layout.local_points[static_cast<std::size_t>(i)];
      for (index_t q = 0; q < kQ; ++q) {
        const std::int32_t nb =
            layout
                .neighbors[static_cast<std::size_t>(i * kQ + opposite(q))];
        g[q] = nb != kSolidLink
                   ? f[static_cast<std::size_t>(static_cast<index_t>(nb) *
                                                    kQ +
                                                q)]
                   : f[static_cast<std::size_t>(i * kQ + opposite(q))];
      }
      std::array<double, 3> bc =
          (*ctx.bc_velocity)[static_cast<std::size_t>(p)];
      const auto& pulse = (*ctx.bc_pulse)[static_cast<std::size_t>(p)];
      if (pulse[0] != 0.0) {
        const double scale =
            lbm::pulse_scale<double>(pulse[0], pulse[1], timestep);
        for (auto& component : bc) component *= scale;
      }
      lbm::update_point_values<double>(
          ctx.mesh->type(p), g, out, ctx.omega, bc, ctx.force_shift,
          ctx.smagorinsky_cs2);
    }
    for (index_t q = 0; q < kQ; ++q) {
      f2[static_cast<std::size_t>(i * kQ + q)] = out[q];
    }
  }
}

}  // namespace hemo::harvey
