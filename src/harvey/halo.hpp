// Shared halo-exchange topology and rank-local stepping helpers.
//
// Both distributed execution paths — the serial-in-process
// harvey::DistributedSolver and the threaded runtime::ParallelSolver —
// need exactly the same structures: per-rank ownership (local points,
// deterministic ghost lists, a rank-local neighbor table) and the directed
// pack/unpack channels that stand in for MPI point-to-point messages.
// Building them once here keeps the two paths structurally identical, so
// the bit-identity contract between them reduces to "both call
// update_rank_slots with the same inputs".
//
// The layout additionally splits every rank's owned points into an
// *interior* set (the 19-point gather touches only owned slots, so the
// update needs no ghost data) and a *frontier* set (at least one upstream
// neighbor is a ghost). That split is what lets the parallel runtime
// overlap bulk-interior compute with in-flight halo messages, mirroring
// the SegmentedMesh bulk/boundary split of the serial hot path.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "decomp/partition.hpp"
#include "lbm/mesh.hpp"
#include "util/common.hpp"

namespace hemo::harvey {

/// One directed per-step halo message: the owner packs the listed local
/// rows ("send"), the receiver unpacks them into its ghost rows ("recv").
/// Buffers are owned by the caller (the serial solver keeps plain vectors,
/// the threaded runtime wraps them in epoch-stamped mailboxes).
struct HaloChannel {
  std::int32_t from = 0;  ///< owner rank
  std::int32_t to = 0;    ///< receiver rank
  std::vector<std::int32_t> src_slots;  ///< owner-local point slots
  std::vector<std::int32_t> dst_slots;  ///< receiver-local ghost slots

  /// Payload length in values (slots * kQ).
  [[nodiscard]] index_t payload_values() const noexcept {
    return static_cast<index_t>(src_slots.size()) * lbm::kQ;
  }
};

/// Rank-local view of the decomposed mesh: owned points first, ghosts
/// after, and a local neighbor table over that combined slot space.
struct RankLayout {
  std::vector<index_t> local_points;  ///< global ids of owned points (ascending)
  std::vector<index_t> ghost_points;  ///< global ids of ghost points (ascending)
  /// Local neighbor table: for each owned slot and direction, the local
  /// slot (owned first, ghosts after) or lbm::kSolidLink.
  std::vector<std::int32_t> neighbors;
  /// Owned slots whose full 19-direction gather touches only owned slots
  /// (including bounce-back from the slot itself) — safe to update before
  /// any halo message arrives.
  std::vector<index_t> interior_slots;
  /// Owned slots with at least one ghost upstream neighbor — must wait for
  /// the halo exchange.
  std::vector<index_t> frontier_slots;
  /// Per owned slot: 1 when the point is kBulk with zero solid links, i.e.
  /// eligible for the branch-free interior arithmetic of the segmented
  /// kernel path.
  std::vector<std::uint8_t> bulk_point;

  [[nodiscard]] index_t num_local() const noexcept {
    return static_cast<index_t>(local_points.size());
  }
  [[nodiscard]] index_t num_ghosts() const noexcept {
    return static_cast<index_t>(ghost_points.size());
  }
  /// Slot count of the rank's distribution arrays (owned + ghosts).
  [[nodiscard]] index_t total_slots() const noexcept {
    return num_local() + num_ghosts();
  }
};

/// The full halo-exchange topology of a partitioned mesh.
struct HaloExchange {
  std::vector<RankLayout> ranks;      ///< indexed by rank
  std::vector<HaloChannel> channels;  ///< deterministic (from, to) order
  std::vector<std::int32_t> owner_task;  ///< per global point
  std::vector<std::int32_t> owner_slot;  ///< per global point
  index_t n_ghosts = 0;  ///< sum of ghost counts over ranks

  [[nodiscard]] index_t channel_count() const noexcept {
    return static_cast<index_t>(channels.size());
  }

  /// Total bytes moved through halo messages per step (whole-row ghosts:
  /// an upper bound on the comm graph's per-link byte count).
  [[nodiscard]] real_t bytes_per_exchange() const;
};

/// Builds the halo topology: ghost discovery, local neighbor tables, the
/// interior/frontier split, and one directed channel per (owner, receiver)
/// pair that shares ghosts, with pack/unpack slot lists in the receiver's
/// deterministic ghost order.
[[nodiscard]] HaloExchange build_halo_exchange(
    const lbm::FluidMesh& mesh, const decomp::Partition& partition);

/// Packs the channel's source rows from the owner's distribution array
/// into `buffer` (length channel.payload_values()).
void pack_channel(const HaloChannel& channel, std::span<const double> owner_f,
                  std::span<double> buffer);

/// Unpacks `buffer` into the receiver's ghost rows.
void unpack_channel(const HaloChannel& channel, std::span<const double> buffer,
                    std::span<double> receiver_f);

/// Everything update_rank_slots needs besides the layout: the shared
/// physics of one step in the AB + AoS + double configuration. bc tables
/// are global-point-indexed (shared across ranks, read-only).
struct RankStepContext {
  const lbm::FluidMesh* mesh = nullptr;
  double omega = 0.0;
  double smagorinsky_cs2 = 0.0;
  std::array<double, 3> force_shift = {0.0, 0.0, 0.0};
  const std::vector<std::array<double, 3>>* bc_velocity = nullptr;
  const std::vector<std::array<double, 2>>* bc_pulse = nullptr;
  /// kSegmented: bulk-interior points take the branch-free
  /// update_interior_values fast path (bit-identical arithmetic);
  /// kReference: every point goes through the general gather + type
  /// dispatch.
  bool segmented = false;
};

/// Fused gather + collide for the listed owned slots of one rank, reading
/// `f` and writing `f2` (both total_slots * kQ, AoS). The per-point
/// arithmetic is exactly lbm::update_point_values / update_interior_values,
/// which is what keeps every execution path bit-identical to the serial
/// solver.
void update_rank_slots(const RankStepContext& ctx, const RankLayout& layout,
                       std::span<const index_t> slots, index_t timestep,
                       const double* f, double* f2);

}  // namespace hemo::harvey
