// Distributed-memory stepping with explicit halo exchange.
//
// Each task owns its partition's fluid points and a private distribution
// array covering local points plus ghost copies of remote upstream
// neighbors. A step is: (1) halo exchange — every task copies its ghosts'
// current post-collision values out of the owners' arrays (the stand-in
// for MPI point-to-point messages); (2) local fused stream/collide into the
// back buffer; (3) global swap. This mirrors how HARVEY runs under MPI and
// must reproduce the serial solver bit-for-bit — the integration tests
// assert exactly that, which validates the communication-graph counting
// the performance models rely on.
//
// Only the AB + AoS + double configuration is supported: it is the
// production configuration, and one bitwise-verified path is enough to
// validate the halo semantics used by the plans.
#pragma once

#include <cstdint>
#include <vector>

#include "decomp/partition.hpp"
#include "geometry/generators.hpp"
#include "lbm/mesh.hpp"
#include "lbm/solver.hpp"
#include "util/common.hpp"

namespace hemo::harvey {

/// Distributed AB/AoS/double solver over an explicit partition.
class DistributedSolver {
 public:
  /// The mesh and partition must outlive the solver. `params.kernel` must
  /// be AB + AoS + double.
  DistributedSolver(const lbm::FluidMesh& mesh,
                    const decomp::Partition& partition,
                    const lbm::SolverParams& params,
                    std::span<const geometry::InletSpec> inlets);

  /// Advances one timestep (exchange + local updates + swap).
  void step();

  void run(index_t n);

  [[nodiscard]] index_t timestep() const noexcept { return timestep_; }

  /// Moments at a *global* point index, for comparison with Solver.
  [[nodiscard]] lbm::Moments<real_t> moments_at(index_t global_point) const;

  /// Total mass across all tasks.
  [[nodiscard]] real_t total_mass() const;

  /// Total halo values copied per step (diagnostics; matches the comm
  /// graph's link totals when ghosts are stored per-direction).
  [[nodiscard]] index_t ghost_count() const noexcept { return n_ghosts_; }

  /// Number of point-to-point halo channels (directed task pairs that
  /// exchange a message every step) — comparable to the communication
  /// graph's message count.
  [[nodiscard]] index_t channel_count() const noexcept {
    return static_cast<index_t>(channels_.size());
  }

  /// Total bytes moved through halo messages per step (whole-row ghosts:
  /// an upper bound on the comm graph's per-link byte count).
  [[nodiscard]] real_t bytes_per_exchange() const;

 private:
  struct Task {
    std::vector<index_t> local_points;   ///< global ids of owned points
    std::vector<index_t> ghost_points;   ///< global ids of ghost points
    // Local neighbor table: for each owned point and direction, the local
    // slot (owned first, ghosts after) or kSolidLink.
    std::vector<std::int32_t> neighbors;
    std::vector<double> f, f2;  ///< (owned + ghosts) * kQ, AoS
  };

  /// One directed per-step halo message: the owner packs the listed local
  /// rows into the buffer ("send"), the receiver unpacks them into its
  /// ghost rows ("recv"). This mirrors MPI point-to-point halo exchange.
  struct HaloChannel {
    std::int32_t from = 0;  ///< owner task
    std::int32_t to = 0;    ///< receiver task
    std::vector<std::int32_t> src_slots;  ///< owner-local point slots
    std::vector<std::int32_t> dst_slots;  ///< receiver-local ghost slots
    std::vector<double> buffer;           ///< packed payload
  };

  void exchange_ghosts();
  void local_update(Task& task);

  const lbm::FluidMesh* mesh_;
  const decomp::Partition* partition_;
  lbm::SolverParams params_;
  double omega_ = 0.0;
  index_t timestep_ = 0;
  index_t n_ghosts_ = 0;

  std::vector<Task> tasks_;
  std::vector<HaloChannel> channels_;
  // Where each global point lives: (task, local slot).
  std::vector<std::int32_t> owner_task_;
  std::vector<std::int32_t> owner_slot_;
  std::vector<std::array<double, 3>> bc_velocity_;
  std::vector<std::array<double, 2>> bc_pulse_;
  std::array<double, 3> force_shift_ = {0.0, 0.0, 0.0};
};

}  // namespace hemo::harvey
