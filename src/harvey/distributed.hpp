// Distributed-memory stepping with explicit halo exchange.
//
// Each task owns its partition's fluid points and a private distribution
// array covering local points plus ghost copies of remote upstream
// neighbors. A step is: (1) halo exchange — every channel is packed out of
// the owner's array into its message buffer, then every buffer is unpacked
// into the receiver's ghost rows (the serial stand-in for MPI
// point-to-point messages; the threaded runtime::ParallelSolver runs the
// same channels through epoch-stamped mailboxes); (2) local fused
// stream/collide into the back buffer; (3) global swap. This mirrors how
// HARVEY runs under MPI and must reproduce the serial solver bit-for-bit —
// the integration tests assert exactly that, which validates the
// communication-graph counting the performance models rely on.
//
// Supported configurations: AB + AoS + double on either kernel path.
//  * KernelPath::kReference — every point takes the general gather +
//    type-dispatch update.
//  * KernelPath::kSegmented — bulk-interior points (kBulk, zero solid
//    links) take the branch-free update_interior_values fast path, the
//    same bulk/boundary split the serial segmented kernels and the
//    parallel runtime's overlap scheme use. Both paths are bit-identical.
#pragma once

#include <cstdint>
#include <vector>

#include "decomp/partition.hpp"
#include "geometry/generators.hpp"
#include "harvey/halo.hpp"
#include "lbm/mesh.hpp"
#include "lbm/solver.hpp"
#include "util/common.hpp"

namespace hemo::harvey {

/// Distributed AB/AoS/double solver over an explicit partition.
class DistributedSolver {
 public:
  /// The mesh and partition must outlive the solver. `params.kernel` must
  /// be AB + AoS (either kernel path).
  DistributedSolver(const lbm::FluidMesh& mesh,
                    const decomp::Partition& partition,
                    const lbm::SolverParams& params,
                    std::span<const geometry::InletSpec> inlets);

  /// Advances one timestep (exchange + local updates + swap).
  void step();

  void run(index_t n);

  [[nodiscard]] index_t timestep() const noexcept { return timestep_; }

  /// Moments at a *global* point index, for comparison with Solver.
  [[nodiscard]] lbm::Moments<real_t> moments_at(index_t global_point) const;

  /// Total mass across all tasks.
  [[nodiscard]] real_t total_mass() const;

  /// Total halo values copied per step (diagnostics; matches the comm
  /// graph's link totals when ghosts are stored per-direction).
  [[nodiscard]] index_t ghost_count() const noexcept {
    return topo_.n_ghosts;
  }

  /// Number of point-to-point halo channels (directed task pairs that
  /// exchange a message every step) — comparable to the communication
  /// graph's message count.
  [[nodiscard]] index_t channel_count() const noexcept {
    return topo_.channel_count();
  }

  /// Total bytes moved through halo messages per step (whole-row ghosts:
  /// an upper bound on the comm graph's per-link byte count).
  [[nodiscard]] real_t bytes_per_exchange() const {
    return topo_.bytes_per_exchange();
  }

 private:
  void exchange_ghosts();

  const lbm::FluidMesh* mesh_;
  lbm::SolverParams params_;
  index_t timestep_ = 0;

  HaloExchange topo_;
  /// Per-rank distribution arrays, (owned + ghosts) * kQ, AoS.
  struct TaskState {
    std::vector<double> f, f2;
  };
  std::vector<TaskState> tasks_;
  std::vector<std::vector<double>> buffers_;  ///< per channel

  RankStepContext ctx_;
  std::vector<std::array<double, 3>> bc_velocity_;
  std::vector<std::array<double, 2>> bc_pulse_;
};

}  // namespace hemo::harvey
