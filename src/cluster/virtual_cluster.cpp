#include "cluster/virtual_cluster.hpp"

#include <algorithm>

namespace hemo::cluster {

WorkloadPlan make_workload_plan(const lbm::FluidMesh& mesh,
                                const decomp::Partition& partition,
                                const lbm::KernelConfig& config,
                                index_t tasks_per_node,
                                const std::string& label) {
  HEMO_REQUIRE(tasks_per_node >= 1, "tasks_per_node must be >= 1");
  WorkloadPlan plan;
  plan.label = label;
  plan.n_tasks = partition.n_tasks;
  plan.tasks_per_node = std::min(tasks_per_node, partition.n_tasks);
  plan.n_nodes =
      (partition.n_tasks + plan.tasks_per_node - 1) / plan.tasks_per_node;
  plan.total_points = mesh.num_points();
  plan.kernel = config;
  plan.traits = lbm::kernel_traits(config);

  const std::vector<real_t> raw_bytes =
      decomp::task_bytes_per_step(mesh, partition, config);
  plan.task_bytes.reserve(raw_bytes.size());
  for (const real_t b : raw_bytes) {
    plan.task_bytes.push_back(units::Bytes(b));
  }
  plan.task_points.resize(static_cast<std::size_t>(partition.n_tasks));
  plan.task_node.resize(static_cast<std::size_t>(partition.n_tasks));
  for (index_t t = 0; t < partition.n_tasks; ++t) {
    plan.task_points[static_cast<std::size_t>(t)] = static_cast<index_t>(
        partition.points_of[static_cast<std::size_t>(t)].size());
    plan.task_node[static_cast<std::size_t>(t)] =
        static_cast<std::int32_t>(t / plan.tasks_per_node);
  }

  const decomp::CommGraph graph = decomp::build_comm_graph(mesh, partition);
  plan.messages.reserve(graph.messages.size());
  for (const decomp::Message& m : graph.messages) {
    WorkloadPlan::PlannedMessage pm;
    pm.from = m.from;
    pm.to = m.to;
    pm.bytes = units::Bytes(m.bytes(config));
    pm.internode = plan.task_node[static_cast<std::size_t>(m.from)] !=
                   plan.task_node[static_cast<std::size_t>(m.to)];
    plan.messages.push_back(pm);
  }
  return plan;
}

WorkloadPlan make_gpu_workload_plan(const lbm::FluidMesh& mesh,
                                    const decomp::Partition& partition,
                                    const lbm::KernelConfig& config,
                                    index_t gpus_per_node,
                                    const std::string& label) {
  WorkloadPlan plan =
      make_workload_plan(mesh, partition, config, gpus_per_node, label);
  plan.on_gpu = true;
  return plan;
}

VirtualCluster::VirtualCluster(const InstanceProfile& profile)
    : profile_(&profile),
      memory_(profile),
      interconnect_(profile),
      noise_(profile) {}

std::vector<TaskBreakdown> VirtualCluster::task_breakdowns(
    const WorkloadPlan& plan) const {
  HEMO_REQUIRE(plan.n_tasks >= 1, "empty plan");

  // Tasks resident per node (for the bandwidth share).
  std::vector<index_t> tasks_on_node(static_cast<std::size_t>(plan.n_nodes),
                                     0);
  for (std::int32_t node : plan.task_node) {
    ++tasks_on_node[static_cast<std::size_t>(node)];
  }

  HEMO_REQUIRE(!plan.on_gpu || profile_->gpu.has_value(),
               "GPU plan on an instance without GPUs");

  std::vector<TaskBreakdown> out(static_cast<std::size_t>(plan.n_tasks));
  for (index_t t = 0; t < plan.n_tasks; ++t) {
    TaskBreakdown& b = out[static_cast<std::size_t>(t)];
    if (plan.on_gpu) {
      // One task per device: full effective HBM bandwidth, no host-side
      // per-point overhead (the launch cost folds into transfers).
      const GpuSystem gpu(*profile_);
      b.mem_s = units::Seconds(
          plan.task_bytes[static_cast<std::size_t>(t)].value() /
          (gpu.effective_bandwidth().value() * 1e6) /
          profile_->base_efficiency);
      continue;
    }
    const index_t node =
        static_cast<index_t>(plan.task_node[static_cast<std::size_t>(t)]);
    const index_t resident = tasks_on_node[static_cast<std::size_t>(node)];
    const real_t node_bw_mbs =
        memory_.ideal_node_bandwidth(static_cast<real_t>(resident)).value();
    const real_t task_bw_bytes_per_s =
        node_bw_mbs / static_cast<real_t>(resident) *
        plan.traits.bandwidth_efficiency * 1e6;

    b.mem_s = units::Seconds(
        plan.task_bytes[static_cast<std::size_t>(t)].value() /
        task_bw_bytes_per_s / profile_->base_efficiency);
    b.overhead_s = units::Seconds(
        static_cast<real_t>(plan.task_points[static_cast<std::size_t>(t)]) *
        plan.traits.overhead_cycles_per_point /
        (profile_->clock_ghz * 1e9) / profile_->base_efficiency);
  }

  // Communication: each endpoint of a message spends its transfer time.
  // The hidden efficiency applies here too — a full application never
  // achieves raw PingPong times (halo packing/unpacking, synchronization
  // skew), which keeps the models' overprediction consistent across the
  // memory- and communication-dominated regimes (paper Figs. 7-8).
  for (const auto& m : plan.messages) {
    const real_t t_us =
        interconnect_.message_time(m.bytes, m.internode).value();
    const units::Seconds t_s(t_us * 1e-6 / profile_->base_efficiency);
    for (std::int32_t endpoint : {m.from, m.to}) {
      TaskBreakdown& b = out[static_cast<std::size_t>(endpoint)];
      if (m.internode) {
        b.inter_s += t_s;
      } else {
        b.intra_s += t_s;
      }
    }
  }

  // GPU plans: every halo message is staged through host memory, costing
  // one PCIe transfer at each endpoint per step (Eq. 2's t_CPU-GPU).
  if (plan.on_gpu) {
    const GpuSystem gpu(*profile_);
    for (const auto& m : plan.messages) {
      const units::Seconds t_s(gpu.transfer_time(m.bytes).value() * 1e-6 /
                               profile_->base_efficiency);
      out[static_cast<std::size_t>(m.from)].xfer_s += t_s;
      out[static_cast<std::size_t>(m.to)].xfer_s += t_s;
    }
  }
  return out;
}

ExecutionResult VirtualCluster::execute(const WorkloadPlan& plan,
                                        index_t timesteps,
                                        const MeasurementContext& when) const {
  HEMO_REQUIRE(timesteps >= 1, "need at least one timestep");
  const auto breakdowns = task_breakdowns(plan);

  ExecutionResult r;
  units::Seconds worst;
  for (index_t t = 0; t < plan.n_tasks; ++t) {
    const units::Seconds total = breakdowns[static_cast<std::size_t>(t)].total();
    if (total > worst) {
      worst = total;
      r.critical_task = t;
      r.critical = breakdowns[static_cast<std::size_t>(t)];
    }
  }

  const real_t noise = noise_.factor(when.day, when.hour, when.slot);
  r.step_seconds = worst * noise;
  r.total_seconds = r.step_seconds * static_cast<real_t>(timesteps);
  r.mflups = units::Mflups(static_cast<real_t>(plan.total_points) *
                           static_cast<real_t>(timesteps) /
                           (r.total_seconds.value() * 1e6));
  return r;
}

}  // namespace hemo::cluster
