// The virtual cluster: executes a decomposed LBM workload against an
// instance profile and reports the "measured" performance.
//
// This is the reproduction's stand-in for running HARVEY on real cloud
// hardware (DESIGN.md §2). Per task j and timestep:
//
//   t_j = (bytes_j / BW_task + points_j * overhead / clock) / efficiency
//         + sum over j's messages of (latency(m) + m / b)
//
// where BW_task shares the node's two-line bandwidth among resident tasks,
// the kernel traits scale achievable bandwidth and add per-point overhead,
// and `efficiency` is the hidden application-level factor. The step time is
// the maximum over tasks, scaled by run-level noise. The performance models
// predict the same workload from microbenchmark fits alone, so the
// model-vs-measured gap has the paper's structure.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/hardware.hpp"
#include "cluster/instance.hpp"
#include "decomp/comm_graph.hpp"
#include "decomp/partition.hpp"
#include "lbm/access_counts.hpp"
#include "lbm/mesh.hpp"
#include "units/units.hpp"
#include "util/common.hpp"

namespace hemo::cluster {

/// A fully laid-out parallel workload, ready to execute or to predict.
struct WorkloadPlan {
  std::string label;
  index_t n_tasks = 0;
  index_t tasks_per_node = 0;
  index_t n_nodes = 0;
  index_t total_points = 0;

  std::vector<units::Bytes> task_bytes;  ///< Eq. 9 counts per task
  std::vector<index_t> task_points;      ///< fluid points per task
  std::vector<std::int32_t> task_node;   ///< node of each task

  struct PlannedMessage {
    std::int32_t from = 0;
    std::int32_t to = 0;
    units::Bytes bytes;
    bool internode = false;
  };
  std::vector<PlannedMessage> messages;  ///< per-timestep halo messages

  lbm::KernelConfig kernel;
  lbm::KernelTraits traits;

  /// Execute on the node's GPUs (one task per device). Every halo message
  /// then additionally crosses PCIe at both endpoints (the t_CPU-GPU term
  /// of the paper's Eq. 2).
  bool on_gpu = false;
};

/// Builds a plan: partitions each task contiguously onto nodes
/// (node = task / tasks_per_node) and derives byte/message counts from the
/// mesh, partition, and kernel config. `tasks_per_node` defaults to the
/// instance's physical cores per node (capped by n_tasks).
[[nodiscard]] WorkloadPlan make_workload_plan(
    const lbm::FluidMesh& mesh, const decomp::Partition& partition,
    const lbm::KernelConfig& config, index_t tasks_per_node,
    const std::string& label = {});

/// GPU variant: one task per device, `gpus_per_node` devices per node.
[[nodiscard]] WorkloadPlan make_gpu_workload_plan(
    const lbm::FluidMesh& mesh, const decomp::Partition& partition,
    const lbm::KernelConfig& config, index_t gpus_per_node,
    const std::string& label = {});

/// When a run was taken (keys the deterministic noise stream).
struct MeasurementContext {
  index_t day = 0;
  index_t hour = 12;
  index_t slot = 0;
};

/// Noise-free time composition of one task's step.
struct TaskBreakdown {
  units::Seconds mem_s;       ///< memory-traffic term (incl. efficiency)
  units::Seconds overhead_s;  ///< per-point instruction overhead
  units::Seconds intra_s;     ///< intranodal communication
  units::Seconds inter_s;     ///< internodal communication
  units::Seconds xfer_s;      ///< CPU-GPU transfers (GPU plans only)

  [[nodiscard]] units::Seconds total() const noexcept {
    return mem_s + overhead_s + intra_s + inter_s + xfer_s;
  }
};

/// Result of executing a plan.
struct ExecutionResult {
  units::Seconds step_seconds;   ///< measured (noisy) time per timestep
  units::Seconds total_seconds;  ///< step_seconds * timesteps
  units::Mflups mflups;          ///< Eq. 7
  index_t critical_task = 0;     ///< slowest task
  TaskBreakdown critical;        ///< its noise-free composition
};

/// Executes plans against one instance profile.
class VirtualCluster {
 public:
  explicit VirtualCluster(const InstanceProfile& profile);

  /// Simulates `timesteps` steps of the plan; `when` keys the noise.
  [[nodiscard]] ExecutionResult execute(const WorkloadPlan& plan,
                                        index_t timesteps,
                                        const MeasurementContext& when) const;

  /// Noise-free per-task breakdowns (diagnostics and tests).
  [[nodiscard]] std::vector<TaskBreakdown> task_breakdowns(
      const WorkloadPlan& plan) const;

  [[nodiscard]] const InstanceProfile& profile() const noexcept {
    return *profile_;
  }

 private:
  const InstanceProfile* profile_;
  MemorySystem memory_;
  Interconnect interconnect_;
  NoiseModel noise_;
};

}  // namespace hemo::cluster
