#include "cluster/hardware.hpp"

#include <cmath>

namespace hemo::cluster {

std::uint64_t instance_hash(const InstanceProfile& profile) {
  std::uint64_t h = 0x8c2f9d4b6a1e3057ULL;
  for (char c : profile.abbrev) {
    h = hash_seed(h, static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
  }
  return h;
}

units::MegabytesPerSec MemorySystem::measured_node_bandwidth(
    index_t threads, index_t sample) const {
  HEMO_REQUIRE(threads >= 1, "need at least one thread");
  const units::MegabytesPerSec ideal =
      ideal_node_bandwidth(static_cast<real_t>(threads));
  Xoshiro256 rng(hash_seed(instance_hash(*profile_), 0x57a3u,
                           static_cast<std::uint64_t>(threads),
                           static_cast<std::uint64_t>(sample)));
  real_t cov = 0.01;  // benchmark-level jitter
  if (profile_->shared_memory_channels &&
      static_cast<real_t>(threads) > profile_->memory.a3) {
    // Not every core has its own channel: contention varies with placement.
    cov = 0.06;
  }
  return ideal * std::max(0.5, 1.0 + cov * rng.gaussian());
}

units::MegabytesPerSec MemorySystem::task_bandwidth(
    index_t tasks_on_node) const {
  HEMO_REQUIRE(tasks_on_node >= 1, "need at least one task");
  const units::MegabytesPerSec node_bw =
      ideal_node_bandwidth(static_cast<real_t>(tasks_on_node));
  return node_bw / static_cast<real_t>(tasks_on_node);
}

units::Microseconds Interconnect::message_time(units::Bytes bytes,
                                               bool internode) const {
  HEMO_REQUIRE(bytes.value() >= 0.0, "negative message size");
  const CommParams& c = internode ? profile_->inter : profile_->intra;
  // Bandwidth term: bytes / (MB/s) = microseconds when bytes are in units
  // of B and bandwidth in B/us (1 MB/s = 1 B/us).
  const real_t transfer_us = bytes.value() / c.bandwidth.value();
  // Mild super-linearity: rendezvous-protocol switches and packetization
  // make the effective per-message overhead grow slowly with size.
  const real_t latency_us =
      c.latency.value() *
      (1.0 + 0.15 * std::log10(1.0 + bytes.value() / 4096.0));
  return units::Microseconds(latency_us + transfer_us);
}

units::Microseconds Interconnect::measured_pingpong(units::Bytes bytes,
                                                    bool internode,
                                                    index_t sample) const {
  Xoshiro256 rng(hash_seed(instance_hash(*profile_), 0x91c7u,
                           static_cast<std::uint64_t>(bytes.value()),
                           internode ? 1u : 0u,
                           static_cast<std::uint64_t>(sample)));
  const units::Microseconds ideal = message_time(bytes, internode);
  return ideal * std::max(0.6, 1.0 + 0.03 * rng.gaussian());
}

GpuSystem::GpuSystem(const InstanceProfile& profile) : profile_(&profile) {
  HEMO_REQUIRE(profile.gpu.has_value(),
               "GpuSystem requires a GPU-equipped instance profile");
}

units::MegabytesPerSec GpuSystem::effective_bandwidth() const noexcept {
  return profile_->gpu->memory_bandwidth * profile_->gpu->kernel_efficiency;
}

units::MegabytesPerSec GpuSystem::measured_bandwidth(
    index_t sample) const {
  Xoshiro256 rng(hash_seed(instance_hash(*profile_), 0x6b21u,
                           static_cast<std::uint64_t>(sample)));
  return profile_->gpu->memory_bandwidth *
         std::max(0.5, 1.0 + 0.015 * rng.gaussian());
}

units::Microseconds GpuSystem::transfer_time(units::Bytes bytes) const {
  HEMO_REQUIRE(bytes.value() >= 0.0, "negative transfer size");
  const GpuSpec& g = *profile_->gpu;
  // Same rendezvous-style super-linearity as the network: pinned-buffer
  // staging grows the per-transfer overhead slowly with size.
  const real_t latency =
      g.pcie_latency.value() *
      (1.0 + 0.10 * std::log10(1.0 + bytes.value() / 16384.0));
  return units::Microseconds(latency + bytes.value() / g.pcie_bandwidth.value());
}

units::Microseconds GpuSystem::measured_transfer(units::Bytes bytes,
                                                 index_t sample) const {
  Xoshiro256 rng(hash_seed(instance_hash(*profile_), 0x44f9u,
                           static_cast<std::uint64_t>(bytes.value()),
                           static_cast<std::uint64_t>(sample)));
  return transfer_time(bytes) * std::max(0.6, 1.0 + 0.02 * rng.gaussian());
}

real_t NoiseModel::factor(index_t day, index_t hour, index_t slot) const {
  Xoshiro256 rng(hash_seed(instance_hash(*profile_), 0x33d1u,
                           static_cast<std::uint64_t>(day),
                           static_cast<std::uint64_t>(hour),
                           static_cast<std::uint64_t>(slot)));
  // Diurnal swing: +-40 % of the noise CoV over the day.
  const real_t diurnal =
      0.4 * profile_->noise_cov *
      std::sin(2.0 * 3.14159265358979323846 *
               (static_cast<real_t>(hour) / 24.0));
  const real_t jitter = profile_->noise_cov * rng.gaussian();
  return std::max(0.7, 1.0 + diurnal + jitter);
}

}  // namespace hemo::cluster
