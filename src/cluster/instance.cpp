#include "cluster/instance.hpp"

#include "units/units.hpp"

namespace hemo::cluster {

namespace {

std::vector<InstanceProfile> build_catalog() {
  std::vector<InstanceProfile> v;

  // Traditional compute cluster (paper Table I column 1, Table III row 1).
  {
    InstanceProfile p;
    p.name = "Traditional Compute Cluster";
    p.abbrev = "TRC";
    p.cpu = "Intel Xeon E5-2699 v4";
    p.clock_ghz = 2.19;
    p.total_cores = 2000;
    p.cores_per_node = 40;
    p.memory_per_node = units::Gigabytes(471.0);
    p.published_bw = units::MegabytesPerSec(76800.0);
    p.interconnect = units::GigabitsPerSec(56.0);
    p.memory = {6768.24, 369.16, 6.39};
    p.inter = {units::MegabytesPerSec(5066.57), units::Microseconds(2.01)};
    // Intranodal parameters are not tabulated in the paper; shared-memory
    // transfers on a dual-socket Broadwell are roughly 2x the IB link with
    // sub-microsecond latency.
    p.intra = {units::MegabytesPerSec(9800.0), units::Microseconds(0.55)};
    p.price_per_node_hour = units::DollarsPerHour(1.50);  // amortized on-premise node cost
    p.noise_cov = 0.008;
    p.base_efficiency = 0.80;
    v.push_back(p);
  }

  // Cloud 1 - dedicated (CSP-1).
  {
    InstanceProfile p;
    p.name = "Cloud 1 - Dedicated";
    p.abbrev = "CSP-1";
    p.cpu = "Intel Xeon E5-2667 v3";
    p.clock_ghz = 3.19;
    p.total_cores = 48;
    p.cores_per_node = 16;
    p.memory_per_node = units::Gigabytes(16.0);
    p.published_bw = units::MegabytesPerSec(68000.0);
    p.interconnect = units::GigabitsPerSec(10.0);
    p.memory = {18092.64, -62.79, 4.15};
    // Table III reports N/A for CSP-1 communication; a 10 Gbit/s virtualized
    // IB link sustains ~1.1 GB/s with ~28 us MPI latency (synthetic).
    p.inter = {units::MegabytesPerSec(1100.0), units::Microseconds(28.0)};
    p.intra = {units::MegabytesPerSec(7200.0), units::Microseconds(0.75)};
    p.price_per_node_hour = units::DollarsPerHour(0.90);
    p.noise_cov = 0.015;
    p.base_efficiency = 0.74;
    v.push_back(p);
  }

  // Cloud 2 - small nodes.
  {
    InstanceProfile p;
    p.name = "Cloud 2 - Small";
    p.abbrev = "CSP-2 Small";
    p.cpu = "Intel Xeon E5-2666 v3";
    p.clock_ghz = 2.42;
    p.total_cores = 128;
    p.cores_per_node = 8;
    p.vcpus_per_core = 2;
    p.memory_per_node = units::Gigabytes(30.0);
    p.published_bw = units::MegabytesPerSec(68000.0);
    p.interconnect = units::GigabitsPerSec(10.0);
    // Not tabulated; Haswell small nodes saturate early (synthetic, scaled
    // from the CSP-2 fits).
    p.memory = {8100.0, 950.0, 4.6};
    p.inter = {units::MegabytesPerSec(1150.0), units::Microseconds(26.5)};
    p.intra = {units::MegabytesPerSec(6900.0), units::Microseconds(0.80)};
    p.shared_memory_channels = true;
    p.price_per_node_hour = units::DollarsPerHour(0.34);
    p.noise_cov = 0.013;
    p.base_efficiency = 0.76;
    v.push_back(p);
  }

  // Cloud 2 - large nodes, standard (slow) interconnect.
  {
    InstanceProfile p;
    p.name = "Cloud 2 - No EC";
    p.abbrev = "CSP-2";
    p.cpu = "Intel Xeon Platinum 8124M";
    p.clock_ghz = 3.41;
    p.total_cores = 144;
    p.cores_per_node = 36;
    p.vcpus_per_core = 2;
    p.memory_per_node = units::Gigabytes(144.0);
    p.published_bw = units::MegabytesPerSec(162720.0);
    p.interconnect = units::GigabitsPerSec(25.0);
    p.memory = {7790.02, 1264.80, 9.00};
    p.inter = {units::MegabytesPerSec(1804.84), units::Microseconds(23.59)};
    p.intra = {units::MegabytesPerSec(8600.0), units::Microseconds(0.70)};
    p.shared_memory_channels = true;
    p.price_per_node_hour = units::DollarsPerHour(3.06);
    p.noise_cov = 0.012;
    p.base_efficiency = 0.78;
    v.push_back(p);
  }

  // Cloud 2 - large nodes with the Enhanced Communicator interconnect.
  {
    InstanceProfile p;
    p.name = "Cloud 2 - With EC";
    p.abbrev = "CSP-2 EC";
    p.cpu = "Intel Xeon Platinum 8124M";
    p.clock_ghz = 3.40;
    p.total_cores = 144;
    p.cores_per_node = 36;
    p.vcpus_per_core = 2;
    p.memory_per_node = units::Gigabytes(192.0);
    p.published_bw = units::MegabytesPerSec(162720.0);
    p.interconnect = units::GigabitsPerSec(100.0);
    p.memory = {7605.85, 1269.95, 11.00};
    p.inter = {units::MegabytesPerSec(2016.77), units::Microseconds(20.94)};
    p.intra = {units::MegabytesPerSec(8600.0), units::Microseconds(0.70)};
    p.shared_memory_channels = true;
    p.price_per_node_hour = units::DollarsPerHour(3.46);
    p.noise_cov = 0.012;
    p.base_efficiency = 0.78;
    v.push_back(p);
  }

  // GPU-accelerated CSP-2 variant (synthetic, V100-class p3-style
  // instances): 4 accelerators per node on the EC fabric. Not part of the
  // paper's measured study — it exercises the t_CPU-GPU term of Eq. 2.
  {
    InstanceProfile p = v[4];  // copy CSP-2 EC
    p.name = "Cloud 2 - GPU";
    p.abbrev = "CSP-2 GPU";
    p.gpu = GpuSpec{
        .gpus_per_node = 4,
        // ~900 GB/s HBM2, PCIe gen3 x16 effective, launch + DMA setup.
        .memory_bandwidth = units::MegabytesPerSec(900000.0),
        .pcie_bandwidth = units::MegabytesPerSec(12000.0),
        .pcie_latency = units::Microseconds(10.0),
        .kernel_efficiency = 0.70,
    };
    p.price_per_node_hour = units::DollarsPerHour(12.24);  // p3.8xlarge-class list price
    v.push_back(p);
  }

  // CSP-2 with hyperthreading exposed: one OpenMP thread per vCPU. Only
  // used for the Fig. 5 STREAM sweep; hyperthreads add no bandwidth, so
  // the per-thread law declines past the knee (a2 < 0, paper Table III).
  {
    InstanceProfile p = v[3];  // copy CSP-2
    p.name = "Cloud 2 - Hyperthreaded";
    p.abbrev = "CSP-2 Hyp.";
    p.memory = {8629.29, -93.43, 9.87};
    v.push_back(p);
  }

  return v;
}

}  // namespace

const std::vector<InstanceProfile>& default_catalog() {
  static const std::vector<InstanceProfile> catalog = build_catalog();
  return catalog;
}

const InstanceProfile& instance_by_abbrev(const std::string& abbrev) {
  for (const InstanceProfile& p : default_catalog()) {
    if (p.abbrev == abbrev) return p;
  }
  throw PreconditionError("unknown instance abbreviation: " + abbrev);
}

}  // namespace hemo::cluster
