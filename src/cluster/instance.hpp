// Cloud / cluster instance profiles.
//
// The paper measured five systems (its Table I) and fitted their memory and
// interconnect behaviour (its Table III). We cannot provision those
// machines, so each becomes an InstanceProfile whose *ground-truth*
// parameters are seeded from the paper's measurements; the virtual cluster
// executes workloads against these profiles, and the performance models
// must rediscover the parameters through the same microbenchmark-and-fit
// pipeline the paper used. Fields that the paper does not report (intranode
// communication parameters, prices, CSP-1/CSP-2-Small interconnect fits)
// are synthetic and documented inline; DESIGN.md §2 records the
// substitution rationale.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "units/units.hpp"
#include "util/common.hpp"

namespace hemo::cluster {

/// Ground-truth two-line memory law parameters (units of paper Table III:
/// a1, a2 in MB/s per thread; a3 in threads).
struct MemoryParams {
  real_t a1 = 0.0;
  real_t a2 = 0.0;
  real_t a3 = 0.0;

  /// Node bandwidth at n active threads (Eq. 8).
  [[nodiscard]] units::MegabytesPerSec node_bandwidth_mbs(
      real_t n) const noexcept {
    if (n < a3) return units::MegabytesPerSec(a1 * n);
    return units::MegabytesPerSec(a2 * n + a3 * (a1 - a2));
  }
};

/// Ground-truth linear communication parameters.
struct CommParams {
  units::MegabytesPerSec bandwidth;
  units::Microseconds latency;
};

/// Accelerator attached to a node. The paper's Eq. 2 includes a CPU-GPU
/// transfer term (t_CPU-GPU) for HARVEY's GPU runs; GPU-equipped profiles
/// let the virtual cluster and the models exercise it.
struct GpuSpec {
  index_t gpus_per_node = 0;
  units::MegabytesPerSec memory_bandwidth;  ///< device HBM bandwidth
  units::MegabytesPerSec pcie_bandwidth;  ///< host <-> device link bandwidth
  units::Microseconds pcie_latency;  ///< per-transfer launch/DMA latency
  /// Fraction of HBM bandwidth LBM kernels sustain (gather-heavy SoA).
  real_t kernel_efficiency = 0.70;
};

/// One provisionable system.
struct InstanceProfile {
  std::string name;    ///< long name, e.g. "Cloud 2 - With EC"
  std::string abbrev;  ///< short key, e.g. "CSP-2 EC"
  std::string cpu;

  real_t clock_ghz = 0.0;
  index_t total_cores = 0;     ///< cores available in the tested allocation
  index_t cores_per_node = 0;
  index_t vcpus_per_core = 1;  ///< 2 when hyperthreading is exposed
  units::Gigabytes memory_per_node;
  units::MegabytesPerSec published_bw;  ///< vendor-published node bandwidth
  units::GigabitsPerSec interconnect;   ///< nominal link speed

  MemoryParams memory;  ///< ground-truth STREAM law (paper Table III)
  CommParams inter;     ///< internodal PingPong parameters
  CommParams intra;     ///< intranodal PingPong parameters (synthetic)

  /// True when cores share memory channels unevenly; adds extra STREAM
  /// variance past the saturation point (observed on CSP-2, Fig. 5).
  bool shared_memory_channels = false;

  /// Synthetic price per node-hour (c4/c5/c5n-class list prices; only
  /// relative values matter for the dashboard).
  units::DollarsPerHour price_per_node_hour;

  /// Attached accelerators, when the instance type offers them.
  std::optional<GpuSpec> gpu;

  /// Run-to-run measurement noise (coefficient of variation, Table IV).
  real_t noise_cov = 0.012;

  /// Hidden execution efficiency: the fraction of the bandwidth-derived
  /// bound a full application achieves on this system. The performance
  /// models never see this — it is the main source of their consistent
  /// overprediction (paper Figs. 7-8).
  real_t base_efficiency = 0.78;

  [[nodiscard]] index_t nodes() const noexcept {
    return total_cores / cores_per_node;
  }
};

/// The five systems of the paper's Table I plus the hyperthreaded CSP-2
/// variant used in Fig. 5 and a synthetic GPU-equipped CSP-2 variant
/// (for the Eq. 2 CPU-GPU term). Returned by value-stable reference.
[[nodiscard]] const std::vector<InstanceProfile>& default_catalog();

/// Looks up a profile by abbreviation ("TRC", "CSP-1", "CSP-2 Small",
/// "CSP-2", "CSP-2 EC", "CSP-2 Hyp."). Throws PreconditionError if absent.
[[nodiscard]] const InstanceProfile& instance_by_abbrev(
    const std::string& abbrev);

}  // namespace hemo::cluster
