// Ground-truth hardware behaviour of a virtual instance: memory subsystem,
// interconnect, and measurement noise.
//
// These classes are the "physics" of the simulated cloud. They deliberately
// contain effects the performance models do not capture — extra STREAM
// variance past the saturation knee on shared-channel nodes, a mild
// nonlinearity in message timing, diurnal noise — so that the model-vs-
// measured comparisons (paper Figs. 5-8, Table IV) have realistic error
// structure instead of tautological agreement.
#pragma once

#include <cstdint>

#include "cluster/instance.hpp"
#include "units/units.hpp"
#include "util/common.hpp"
#include "util/rng.hpp"

namespace hemo::cluster {

/// Hash of an instance's identity, used to key noise streams.
[[nodiscard]] std::uint64_t instance_hash(const InstanceProfile& profile);

/// Memory subsystem of one node.
class MemorySystem {
 public:
  explicit MemorySystem(const InstanceProfile& profile)
      : profile_(&profile) {}

  /// Ideal (noise-free) node bandwidth with n active threads.
  [[nodiscard]] units::MegabytesPerSec ideal_node_bandwidth(
      real_t threads) const noexcept {
    return profile_->memory.node_bandwidth_mbs(threads);
  }

  /// One simulated STREAM COPY measurement at `threads` threads. The
  /// `sample` index decorrelates repeated measurements. Shared-channel
  /// nodes show inflated variance past the knee.
  [[nodiscard]] units::MegabytesPerSec measured_node_bandwidth(
      index_t threads, index_t sample) const;

  /// Bandwidth share of one task when `tasks_on_node` tasks are active
  /// (linear sharing assumption matching the paper's model, applied to the
  /// ground-truth law).
  [[nodiscard]] units::MegabytesPerSec task_bandwidth(
      index_t tasks_on_node) const;

 private:
  const InstanceProfile* profile_;
};

/// Point-to-point interconnect behaviour.
class Interconnect {
 public:
  explicit Interconnect(const InstanceProfile& profile)
      : profile_(&profile) {}

  /// Ground-truth one-way message time for m bytes. Slightly super-linear:
  /// effective latency grows ~15 % per decade of message size past 4 KiB,
  /// reproducing the paper's observation that a zero-byte-anchored linear
  /// fit underestimates latency at large sizes.
  [[nodiscard]] units::Microseconds message_time(units::Bytes bytes,
                                                 bool internode) const;

  /// One simulated PingPong measurement (includes noise).
  [[nodiscard]] units::Microseconds measured_pingpong(
      units::Bytes bytes, bool internode, index_t sample) const;

 private:
  const InstanceProfile* profile_;
};

/// Ground-truth and measured behaviour of a node's GPU accelerators.
/// Requires the profile to carry a GpuSpec.
class GpuSystem {
 public:
  explicit GpuSystem(const InstanceProfile& profile);

  /// Device memory bandwidth an LBM kernel actually sustains (hidden
  /// kernel efficiency applied) — the virtual cluster's ground truth.
  [[nodiscard]] units::MegabytesPerSec effective_bandwidth() const noexcept;

  /// One simulated device-STREAM measurement: near-peak HBM bandwidth
  /// with benchmark noise. This is what calibration sees — it does NOT
  /// include the kernel efficiency, so models overpredict GPU runs the
  /// same way they overpredict CPU runs.
  [[nodiscard]] units::MegabytesPerSec measured_bandwidth(
      index_t sample) const;

  /// Ground-truth host<->device transfer time for m bytes.
  [[nodiscard]] units::Microseconds transfer_time(units::Bytes bytes) const;

  /// One simulated PCIe bandwidth/latency measurement.
  [[nodiscard]] units::Microseconds measured_transfer(units::Bytes bytes,
                                                      index_t sample) const;

 private:
  const InstanceProfile* profile_;
};

/// Multiplicative run-level noise: Gaussian jitter plus a small diurnal
/// swing (cloud tenancy effects vary by time of day). Deterministic in
/// (instance, day, hour, slot).
class NoiseModel {
 public:
  explicit NoiseModel(const InstanceProfile& profile)
      : profile_(&profile) {}

  /// Noise factor (≈ 1.0) for a measurement at the given wall-clock slot.
  [[nodiscard]] real_t factor(index_t day, index_t hour, index_t slot) const;

 private:
  const InstanceProfile* profile_;
};

}  // namespace hemo::cluster
