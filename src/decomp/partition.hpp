// Domain decomposition of a sparse fluid mesh into parallel tasks.
//
// Three strategies:
//  * Grid — the bounding box is cut into a near-cubic px*py*pz block grid
//    and points belong to the block containing their voxel. Simple and
//    HARVEY-like, but complex geometries load-balance poorly (blocks in
//    empty space get nothing), which is exactly the imbalance the paper's
//    z-factor (Eqs. 10-11) describes.
//  * RCB — recursive coordinate bisection over fluid-point counts: splits
//    the point set at the median of its widest axis, recursively, giving
//    near-equal point counts. Residual *byte* imbalance remains because the
//    wall/bulk mix differs per task.
//  * Slab — 1-D cuts along z (ablation baseline; large cut surfaces).
#pragma once

#include <cstdint>
#include <vector>

#include "lbm/kernel_config.hpp"
#include "lbm/mesh.hpp"
#include "util/common.hpp"

namespace hemo::decomp {

/// Assignment of every fluid point to a task.
struct Partition {
  index_t n_tasks = 0;
  std::vector<std::int32_t> task_of;            ///< per fluid point
  std::vector<std::vector<index_t>> points_of;  ///< per task, ascending

  /// Number of points on the most/least loaded task.
  [[nodiscard]] index_t max_points() const;
  [[nodiscard]] index_t min_points() const;
};

/// Decomposition strategy selector.
enum class Strategy {
  kGrid,
  kRcb,
  kSlab,
};

[[nodiscard]] const char* to_string(Strategy s) noexcept;

/// Partitions `mesh` into `n_tasks` tasks with the given strategy.
/// Requires 1 <= n_tasks <= num_points.
[[nodiscard]] Partition make_partition(const lbm::FluidMesh& mesh,
                                       index_t n_tasks, Strategy strategy);

/// Moves a contiguous block of `count` points (contiguous in the
/// canonical ascending global-point order that `points_of` maintains) from
/// task `from` to task `to`: the end of `from`'s range that faces `to`'s
/// points — the top end when `to`'s points lie above `from`'s, the bottom
/// end otherwise. This is the dynamic-rebalancing primitive: the runtime
/// migrates blocks between adjacent ranks when measured imbalance drifts,
/// and because the edit only reassigns ownership the migrated state is
/// bit-identical to an unmigrated run. Requires from != to and
/// 1 <= count < points(from) (a migration never empties a task).
[[nodiscard]] Partition migrate_block(const Partition& partition,
                                      std::int32_t from, std::int32_t to,
                                      index_t count);

/// Measured load-imbalance factor z for a partition under a kernel config:
/// max_j(bytes_j) / (serial_bytes / n_tasks) — the quantity Eq. 11 models.
[[nodiscard]] real_t measured_imbalance(const lbm::FluidMesh& mesh,
                                        const Partition& partition,
                                        const lbm::KernelConfig& config);

/// Per-task byte counts (Eq. 9 evaluated on the real decomposition).
[[nodiscard]] std::vector<real_t> task_bytes_per_step(
    const lbm::FluidMesh& mesh, const Partition& partition,
    const lbm::KernelConfig& config);

}  // namespace hemo::decomp
