#include "decomp/comm_graph.hpp"

#include <algorithm>
#include <map>

namespace hemo::decomp {

index_t CommGraph::max_events() const {
  index_t m = 0;
  for (const TaskComm& t : per_task) m = std::max(m, t.events());
  return m;
}

real_t CommGraph::max_total_bytes(const lbm::KernelConfig& config) const {
  index_t m = 0;
  for (const TaskComm& t : per_task) m = std::max(m, t.links());
  return static_cast<real_t>(m) *
         static_cast<real_t>(lbm::data_size(config.precision));
}

CommGraph build_comm_graph(const lbm::FluidMesh& mesh,
                           const Partition& partition) {
  HEMO_REQUIRE(static_cast<index_t>(partition.task_of.size()) ==
                   mesh.num_points(),
               "partition does not match mesh");
  // Count links per ordered (from, to) pair: point p on task j pulls from
  // its upstream neighbor m on task k, producing a link on message k -> j.
  std::map<std::pair<std::int32_t, std::int32_t>, index_t> links;
  for (index_t p = 0; p < mesh.num_points(); ++p) {
    const std::int32_t tp = partition.task_of[static_cast<std::size_t>(p)];
    for (index_t q = 1; q < lbm::kQ; ++q) {
      const std::int32_t m = mesh.neighbor(p, q);
      if (m == lbm::kSolidLink) continue;
      const std::int32_t tm = partition.task_of[static_cast<std::size_t>(m)];
      if (tm != tp) ++links[{tm, tp}];
    }
  }

  CommGraph graph;
  graph.per_task.resize(static_cast<std::size_t>(partition.n_tasks));
  graph.messages.reserve(links.size());
  for (const auto& [pair, count] : links) {
    const auto [from, to] = pair;
    graph.messages.push_back(Message{from, to, count});
    auto& sender = graph.per_task[static_cast<std::size_t>(from)];
    auto& receiver = graph.per_task[static_cast<std::size_t>(to)];
    ++sender.send_events;
    sender.send_links += count;
    ++receiver.recv_events;
    receiver.recv_links += count;
  }
  return graph;
}

}  // namespace hemo::decomp
