// Halo-exchange communication graph of a decomposed LBM domain.
//
// In the pull-scheme halo exchange, task j needs, for every local point p
// and direction q whose upstream neighbor lives on task k, that neighbor's
// post-collision distribution value. Each ordered task pair (k -> j) with at
// least one such link exchanges one message per timestep whose payload is
// (number of links) * d_size bytes. The graph records, per task, its
// neighbor tasks and byte totals — the inputs of both the direct model
// (exact counts) and the empirical Eq. 13/15 fits.
#pragma once

#include <cstdint>
#include <vector>

#include "decomp/partition.hpp"
#include "lbm/kernel_config.hpp"
#include "lbm/mesh.hpp"
#include "util/common.hpp"

namespace hemo::decomp {

/// One directed per-timestep message.
struct Message {
  std::int32_t from = 0;
  std::int32_t to = 0;
  index_t link_count = 0;  ///< (point, direction) pairs carried

  [[nodiscard]] real_t bytes(const lbm::KernelConfig& config) const noexcept {
    return static_cast<real_t>(link_count) *
           static_cast<real_t>(lbm::data_size(config.precision));
  }
};

/// Per-task communication summary.
struct TaskComm {
  index_t send_events = 0;  ///< messages sent per step
  index_t recv_events = 0;  ///< messages received per step
  index_t send_links = 0;   ///< total links sent
  index_t recv_links = 0;   ///< total links received

  [[nodiscard]] index_t events() const noexcept {
    return send_events + recv_events;
  }
  [[nodiscard]] index_t links() const noexcept {
    return send_links + recv_links;
  }
};

/// The full graph.
struct CommGraph {
  std::vector<Message> messages;   ///< all directed messages, deterministic order
  std::vector<TaskComm> per_task;  ///< indexed by task

  /// Maximum events() over tasks — the quantity Eq. 15 models.
  [[nodiscard]] index_t max_events() const;

  /// Maximum links() over tasks, in bytes — the quantity Eq. 13 models
  /// (sent + received halo data of the busiest task).
  [[nodiscard]] real_t max_total_bytes(const lbm::KernelConfig& config) const;
};

/// Builds the communication graph for a partitioned mesh.
[[nodiscard]] CommGraph build_comm_graph(const lbm::FluidMesh& mesh,
                                         const Partition& partition);

}  // namespace hemo::decomp
