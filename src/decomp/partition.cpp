#include "decomp/partition.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <iterator>
#include <numeric>

#include "lbm/access_counts.hpp"

namespace hemo::decomp {

index_t Partition::max_points() const {
  index_t m = 0;
  for (const auto& pts : points_of) {
    m = std::max(m, static_cast<index_t>(pts.size()));
  }
  return m;
}

index_t Partition::min_points() const {
  index_t m = task_of.empty() ? 0 : static_cast<index_t>(task_of.size());
  for (const auto& pts : points_of) {
    m = std::min(m, static_cast<index_t>(pts.size()));
  }
  return m;
}

const char* to_string(Strategy s) noexcept {
  switch (s) {
    case Strategy::kGrid: return "grid";
    case Strategy::kRcb: return "rcb";
    case Strategy::kSlab: return "slab";
  }
  return "?";
}

namespace {

/// Near-cubic factorization of n into (px, py, pz), px*py*pz == n,
/// preferring balanced factors (largest factor minimized).
std::array<index_t, 3> factor3(index_t n) {
  std::array<index_t, 3> best = {n, 1, 1};
  real_t best_score = static_cast<real_t>(n);
  for (index_t a = 1; a * a * a <= n; ++a) {
    if (n % a != 0) continue;
    const index_t rem = n / a;
    for (index_t b = a; b * b <= rem; ++b) {
      if (rem % b != 0) continue;
      const index_t c = rem / b;
      const real_t score = static_cast<real_t>(c);  // c >= b >= a
      if (score < best_score) {
        best_score = score;
        best = {a, b, c};
      }
    }
  }
  return best;
}

Partition finalize(const lbm::FluidMesh& mesh, index_t n_tasks,
                   std::vector<std::int32_t> task_of) {
  Partition part;
  part.n_tasks = n_tasks;
  part.task_of = std::move(task_of);
  part.points_of.resize(static_cast<std::size_t>(n_tasks));
  for (index_t p = 0; p < mesh.num_points(); ++p) {
    part.points_of[static_cast<std::size_t>(
                       part.task_of[static_cast<std::size_t>(p)])]
        .push_back(p);
  }
  return part;
}

/// Bounding box of the mesh's fluid voxels.
struct Box {
  index_t lo[3] = {0, 0, 0};
  index_t hi[3] = {0, 0, 0};  // inclusive
};

Box bounding_box(const lbm::FluidMesh& mesh) {
  Box b;
  const auto& v0 = mesh.voxel(0);
  b.lo[0] = b.hi[0] = v0.x;
  b.lo[1] = b.hi[1] = v0.y;
  b.lo[2] = b.hi[2] = v0.z;
  for (index_t p = 1; p < mesh.num_points(); ++p) {
    const auto& v = mesh.voxel(p);
    const index_t c[3] = {v.x, v.y, v.z};
    for (int d = 0; d < 3; ++d) {
      b.lo[d] = std::min(b.lo[d], c[d]);
      b.hi[d] = std::max(b.hi[d], c[d]);
    }
  }
  return b;
}

std::vector<std::int32_t> assign_grid(const lbm::FluidMesh& mesh,
                                      index_t n_tasks) {
  const Box box = bounding_box(mesh);
  const auto f = factor3(n_tasks);
  // Map the sorted extents to the sorted factors so the most blocks cut the
  // longest axis.
  std::array<index_t, 3> extent = {box.hi[0] - box.lo[0] + 1,
                                   box.hi[1] - box.lo[1] + 1,
                                   box.hi[2] - box.lo[2] + 1};
  std::array<int, 3> axis_order = {0, 1, 2};
  std::sort(axis_order.begin(), axis_order.end(), [&](int a, int b) {
    return extent[static_cast<std::size_t>(a)] <
           extent[static_cast<std::size_t>(b)];
  });
  std::array<index_t, 3> blocks{};  // per axis
  blocks[static_cast<std::size_t>(axis_order[0])] = f[0];
  blocks[static_cast<std::size_t>(axis_order[1])] = f[1];
  blocks[static_cast<std::size_t>(axis_order[2])] = f[2];

  std::vector<std::int32_t> task_of(
      static_cast<std::size_t>(mesh.num_points()));
  for (index_t p = 0; p < mesh.num_points(); ++p) {
    const auto& v = mesh.voxel(p);
    const index_t c[3] = {v.x, v.y, v.z};
    index_t cell[3];
    for (int d = 0; d < 3; ++d) {
      const index_t e = extent[static_cast<std::size_t>(d)];
      const index_t nb = blocks[static_cast<std::size_t>(d)];
      index_t i = (c[d] - box.lo[d]) * nb / e;
      cell[d] = std::clamp<index_t>(i, 0, nb - 1);
    }
    task_of[static_cast<std::size_t>(p)] = static_cast<std::int32_t>(
        (cell[2] * blocks[1] + cell[1]) * blocks[0] + cell[0]);
  }
  return task_of;
}

/// Recursive coordinate bisection over a point-index range.
void rcb_recurse(const lbm::FluidMesh& mesh, std::vector<index_t>& points,
                 index_t begin, index_t end, index_t task_base,
                 index_t n_tasks, std::vector<std::int32_t>& task_of) {
  if (n_tasks == 1) {
    for (index_t i = begin; i < end; ++i) {
      task_of[static_cast<std::size_t>(points[static_cast<std::size_t>(i)])] =
          static_cast<std::int32_t>(task_base);
    }
    return;
  }
  // Widest axis of this subset.
  index_t lo[3], hi[3];
  {
    const auto& v = mesh.voxel(points[static_cast<std::size_t>(begin)]);
    lo[0] = hi[0] = v.x; lo[1] = hi[1] = v.y; lo[2] = hi[2] = v.z;
  }
  for (index_t i = begin + 1; i < end; ++i) {
    const auto& v = mesh.voxel(points[static_cast<std::size_t>(i)]);
    const index_t c[3] = {v.x, v.y, v.z};
    for (int d = 0; d < 3; ++d) {
      lo[d] = std::min(lo[d], c[d]);
      hi[d] = std::max(hi[d], c[d]);
    }
  }
  int axis = 0;
  for (int d = 1; d < 3; ++d) {
    if (hi[d] - lo[d] > hi[axis] - lo[axis]) axis = d;
  }

  const index_t left_tasks = n_tasks / 2;
  const index_t right_tasks = n_tasks - left_tasks;
  const index_t count = end - begin;
  const index_t left_count = count * left_tasks / n_tasks;

  auto key = [&](index_t p) {
    const auto& v = mesh.voxel(p);
    return axis == 0 ? v.x : axis == 1 ? v.y : v.z;
  };
  std::nth_element(
      points.begin() + begin, points.begin() + begin + left_count,
      points.begin() + end, [&](index_t a, index_t b) {
        const index_t ka = key(a), kb = key(b);
        return ka != kb ? ka < kb : a < b;  // deterministic tie-break
      });

  rcb_recurse(mesh, points, begin, begin + left_count, task_base, left_tasks,
              task_of);
  rcb_recurse(mesh, points, begin + left_count, end, task_base + left_tasks,
              right_tasks, task_of);
}

std::vector<std::int32_t> assign_rcb(const lbm::FluidMesh& mesh,
                                     index_t n_tasks) {
  std::vector<index_t> points(static_cast<std::size_t>(mesh.num_points()));
  std::iota(points.begin(), points.end(), 0);
  std::vector<std::int32_t> task_of(
      static_cast<std::size_t>(mesh.num_points()));
  rcb_recurse(mesh, points, 0, mesh.num_points(), 0, n_tasks, task_of);
  return task_of;
}

std::vector<std::int32_t> assign_slab(const lbm::FluidMesh& mesh,
                                      index_t n_tasks) {
  const Box box = bounding_box(mesh);
  const index_t extent = box.hi[2] - box.lo[2] + 1;
  std::vector<std::int32_t> task_of(
      static_cast<std::size_t>(mesh.num_points()));
  for (index_t p = 0; p < mesh.num_points(); ++p) {
    const index_t z = mesh.voxel(p).z;
    index_t i = (z - box.lo[2]) * n_tasks / extent;
    task_of[static_cast<std::size_t>(p)] = static_cast<std::int32_t>(
        std::clamp<index_t>(i, 0, n_tasks - 1));
  }
  return task_of;
}

}  // namespace

Partition make_partition(const lbm::FluidMesh& mesh, index_t n_tasks,
                         Strategy strategy) {
  HEMO_REQUIRE(n_tasks >= 1 && n_tasks <= mesh.num_points(),
               "n_tasks must be in [1, num_points]");
  std::vector<std::int32_t> task_of;
  switch (strategy) {
    case Strategy::kGrid: task_of = assign_grid(mesh, n_tasks); break;
    case Strategy::kRcb: task_of = assign_rcb(mesh, n_tasks); break;
    case Strategy::kSlab: task_of = assign_slab(mesh, n_tasks); break;
  }
  return finalize(mesh, n_tasks, std::move(task_of));
}

Partition migrate_block(const Partition& partition, std::int32_t from,
                        std::int32_t to, index_t count) {
  HEMO_REQUIRE(from >= 0 && static_cast<index_t>(from) < partition.n_tasks,
               "migrate_block: source task out of range");
  HEMO_REQUIRE(to >= 0 && static_cast<index_t>(to) < partition.n_tasks,
               "migrate_block: destination task out of range");
  HEMO_REQUIRE(from != to, "migrate_block: source equals destination");
  const auto& src = partition.points_of[static_cast<std::size_t>(from)];
  HEMO_REQUIRE(count >= 1 && count < static_cast<index_t>(src.size()),
               "migrate_block: count must leave the source task non-empty");

  // Pick the end of `from`'s ascending range that faces `to`'s points:
  // the top end when `to` sits above `from` in global-point order.
  const auto& dst = partition.points_of[static_cast<std::size_t>(to)];
  const bool to_is_above = dst.empty() || dst.front() > src.back() ||
                           (dst.back() > src.back() && dst.front() > src.front());

  Partition next = partition;
  auto& next_src = next.points_of[static_cast<std::size_t>(from)];
  auto& next_dst = next.points_of[static_cast<std::size_t>(to)];
  std::vector<index_t> moved;
  moved.reserve(static_cast<std::size_t>(count));
  if (to_is_above) {
    moved.assign(next_src.end() - count, next_src.end());
    next_src.erase(next_src.end() - count, next_src.end());
  } else {
    moved.assign(next_src.begin(), next_src.begin() + count);
    next_src.erase(next_src.begin(), next_src.begin() + count);
  }
  for (index_t p : moved) {
    next.task_of[static_cast<std::size_t>(p)] = to;
  }
  std::vector<index_t> merged;
  merged.reserve(next_dst.size() + moved.size());
  std::merge(next_dst.begin(), next_dst.end(), moved.begin(), moved.end(),
             std::back_inserter(merged));
  next_dst = std::move(merged);
  return next;
}

std::vector<real_t> task_bytes_per_step(const lbm::FluidMesh& mesh,
                                        const Partition& partition,
                                        const lbm::KernelConfig& config) {
  std::vector<real_t> bytes(static_cast<std::size_t>(partition.n_tasks), 0.0);
  for (index_t t = 0; t < partition.n_tasks; ++t) {
    bytes[static_cast<std::size_t>(t)] = lbm::bytes_for_points(
        mesh, partition.points_of[static_cast<std::size_t>(t)], config);
  }
  return bytes;
}

real_t measured_imbalance(const lbm::FluidMesh& mesh,
                          const Partition& partition,
                          const lbm::KernelConfig& config) {
  const auto bytes = task_bytes_per_step(mesh, partition, config);
  const real_t serial = lbm::serial_bytes_per_step(mesh, config);
  real_t max_bytes = 0.0;
  for (real_t b : bytes) max_bytes = std::max(max_bytes, b);
  const real_t ideal =
      serial / static_cast<real_t>(partition.n_tasks);
  return ideal > 0.0 ? max_bytes / ideal : 1.0;
}

}  // namespace hemo::decomp
