# Empty dependencies file for pathology_study.
# This may be replaced when dependencies are built.
