file(REMOVE_RECURSE
  "CMakeFiles/pathology_study.dir/pathology_study.cpp.o"
  "CMakeFiles/pathology_study.dir/pathology_study.cpp.o.d"
  "pathology_study"
  "pathology_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pathology_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
