# Empty dependencies file for hemocloud_cli.
# This may be replaced when dependencies are built.
