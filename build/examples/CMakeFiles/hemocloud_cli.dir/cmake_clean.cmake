file(REMOVE_RECURSE
  "CMakeFiles/hemocloud_cli.dir/hemocloud_cli.cpp.o"
  "CMakeFiles/hemocloud_cli.dir/hemocloud_cli.cpp.o.d"
  "hemocloud_cli"
  "hemocloud_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hemocloud_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
