# Empty dependencies file for aorta_campaign.
# This may be replaced when dependencies are built.
