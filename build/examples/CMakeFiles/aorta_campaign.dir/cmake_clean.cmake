file(REMOVE_RECURSE
  "CMakeFiles/aorta_campaign.dir/aorta_campaign.cpp.o"
  "CMakeFiles/aorta_campaign.dir/aorta_campaign.cpp.o.d"
  "aorta_campaign"
  "aorta_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aorta_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
