file(REMOVE_RECURSE
  "CMakeFiles/cerebral_scaling.dir/cerebral_scaling.cpp.o"
  "CMakeFiles/cerebral_scaling.dir/cerebral_scaling.cpp.o.d"
  "cerebral_scaling"
  "cerebral_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cerebral_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
