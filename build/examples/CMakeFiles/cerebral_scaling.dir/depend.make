# Empty dependencies file for cerebral_scaling.
# This may be replaced when dependencies are built.
