# Empty compiler generated dependencies file for cost_guard.
# This may be replaced when dependencies are built.
