file(REMOVE_RECURSE
  "CMakeFiles/cost_guard.dir/cost_guard.cpp.o"
  "CMakeFiles/cost_guard.dir/cost_guard.cpp.o.d"
  "cost_guard"
  "cost_guard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_guard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
