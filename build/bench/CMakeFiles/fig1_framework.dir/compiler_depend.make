# Empty compiler generated dependencies file for fig1_framework.
# This may be replaced when dependencies are built.
