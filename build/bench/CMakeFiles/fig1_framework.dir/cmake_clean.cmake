file(REMOVE_RECURSE
  "CMakeFiles/fig1_framework.dir/fig1_framework.cpp.o"
  "CMakeFiles/fig1_framework.dir/fig1_framework.cpp.o.d"
  "fig1_framework"
  "fig1_framework.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_framework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
