# Empty compiler generated dependencies file for table3_fit_params.
# This may be replaced when dependencies are built.
