file(REMOVE_RECURSE
  "CMakeFiles/table3_fit_params.dir/table3_fit_params.cpp.o"
  "CMakeFiles/table3_fit_params.dir/table3_fit_params.cpp.o.d"
  "table3_fit_params"
  "table3_fit_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_fit_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
