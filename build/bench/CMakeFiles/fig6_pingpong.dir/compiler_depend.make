# Empty compiler generated dependencies file for fig6_pingpong.
# This may be replaced when dependencies are built.
