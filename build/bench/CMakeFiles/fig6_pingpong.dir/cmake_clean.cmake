file(REMOVE_RECURSE
  "CMakeFiles/fig6_pingpong.dir/fig6_pingpong.cpp.o"
  "CMakeFiles/fig6_pingpong.dir/fig6_pingpong.cpp.o.d"
  "fig6_pingpong"
  "fig6_pingpong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_pingpong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
