file(REMOVE_RECURSE
  "CMakeFiles/table4_noise_variability.dir/table4_noise_variability.cpp.o"
  "CMakeFiles/table4_noise_variability.dir/table4_noise_variability.cpp.o.d"
  "table4_noise_variability"
  "table4_noise_variability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_noise_variability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
