# Empty compiler generated dependencies file for table4_noise_variability.
# This may be replaced when dependencies are built.
