file(REMOVE_RECURSE
  "CMakeFiles/table2_stream_vs_published.dir/table2_stream_vs_published.cpp.o"
  "CMakeFiles/table2_stream_vs_published.dir/table2_stream_vs_published.cpp.o.d"
  "table2_stream_vs_published"
  "table2_stream_vs_published.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_stream_vs_published.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
