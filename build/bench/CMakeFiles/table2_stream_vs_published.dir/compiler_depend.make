# Empty compiler generated dependencies file for table2_stream_vs_published.
# This may be replaced when dependencies are built.
