# Empty dependencies file for ablation_gpu_offload.
# This may be replaced when dependencies are built.
