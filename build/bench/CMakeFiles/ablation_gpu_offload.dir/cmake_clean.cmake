file(REMOVE_RECURSE
  "CMakeFiles/ablation_gpu_offload.dir/ablation_gpu_offload.cpp.o"
  "CMakeFiles/ablation_gpu_offload.dir/ablation_gpu_offload.cpp.o.d"
  "ablation_gpu_offload"
  "ablation_gpu_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gpu_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
