file(REMOVE_RECURSE
  "CMakeFiles/fig8_model_vs_actual_proxy.dir/fig8_model_vs_actual_proxy.cpp.o"
  "CMakeFiles/fig8_model_vs_actual_proxy.dir/fig8_model_vs_actual_proxy.cpp.o.d"
  "fig8_model_vs_actual_proxy"
  "fig8_model_vs_actual_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_model_vs_actual_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
