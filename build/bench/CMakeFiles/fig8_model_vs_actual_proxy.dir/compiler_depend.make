# Empty compiler generated dependencies file for fig8_model_vs_actual_proxy.
# This may be replaced when dependencies are built.
