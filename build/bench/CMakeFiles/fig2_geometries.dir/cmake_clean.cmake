file(REMOVE_RECURSE
  "CMakeFiles/fig2_geometries.dir/fig2_geometries.cpp.o"
  "CMakeFiles/fig2_geometries.dir/fig2_geometries.cpp.o.d"
  "fig2_geometries"
  "fig2_geometries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_geometries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
