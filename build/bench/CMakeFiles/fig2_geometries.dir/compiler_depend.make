# Empty compiler generated dependencies file for fig2_geometries.
# This may be replaced when dependencies are built.
