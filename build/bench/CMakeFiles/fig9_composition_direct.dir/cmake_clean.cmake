file(REMOVE_RECURSE
  "CMakeFiles/fig9_composition_direct.dir/fig9_composition_direct.cpp.o"
  "CMakeFiles/fig9_composition_direct.dir/fig9_composition_direct.cpp.o.d"
  "fig9_composition_direct"
  "fig9_composition_direct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_composition_direct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
