# Empty dependencies file for fig9_composition_direct.
# This may be replaced when dependencies are built.
