
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_lbm_kernels.cpp" "bench/CMakeFiles/bench_lbm_kernels.dir/bench_lbm_kernels.cpp.o" "gcc" "bench/CMakeFiles/bench_lbm_kernels.dir/bench_lbm_kernels.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hemo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/proxy/CMakeFiles/hemo_proxy.dir/DependInfo.cmake"
  "/root/repo/build/src/harvey/CMakeFiles/hemo_harvey.dir/DependInfo.cmake"
  "/root/repo/build/src/microbench/CMakeFiles/hemo_microbench.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/hemo_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/decomp/CMakeFiles/hemo_decomp.dir/DependInfo.cmake"
  "/root/repo/build/src/lbm/CMakeFiles/hemo_lbm.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/hemo_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/fit/CMakeFiles/hemo_fit.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hemo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
