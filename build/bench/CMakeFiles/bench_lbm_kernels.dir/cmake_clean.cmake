file(REMOVE_RECURSE
  "CMakeFiles/bench_lbm_kernels.dir/bench_lbm_kernels.cpp.o"
  "CMakeFiles/bench_lbm_kernels.dir/bench_lbm_kernels.cpp.o.d"
  "bench_lbm_kernels"
  "bench_lbm_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lbm_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
