# Empty dependencies file for fig4_proxy_scaling.
# This may be replaced when dependencies are built.
