# Empty dependencies file for fig5_stream_scaling.
# This may be replaced when dependencies are built.
