file(REMOVE_RECURSE
  "CMakeFiles/fig11_relative_value.dir/fig11_relative_value.cpp.o"
  "CMakeFiles/fig11_relative_value.dir/fig11_relative_value.cpp.o.d"
  "fig11_relative_value"
  "fig11_relative_value.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_relative_value.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
