# Empty dependencies file for fig11_relative_value.
# This may be replaced when dependencies are built.
