# Empty compiler generated dependencies file for fig3_harvey_scaling.
# This may be replaced when dependencies are built.
