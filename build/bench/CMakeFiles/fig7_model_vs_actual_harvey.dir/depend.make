# Empty dependencies file for fig7_model_vs_actual_harvey.
# This may be replaced when dependencies are built.
