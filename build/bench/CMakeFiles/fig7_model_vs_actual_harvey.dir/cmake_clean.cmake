file(REMOVE_RECURSE
  "CMakeFiles/fig7_model_vs_actual_harvey.dir/fig7_model_vs_actual_harvey.cpp.o"
  "CMakeFiles/fig7_model_vs_actual_harvey.dir/fig7_model_vs_actual_harvey.cpp.o.d"
  "fig7_model_vs_actual_harvey"
  "fig7_model_vs_actual_harvey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_model_vs_actual_harvey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
