# Empty dependencies file for fig10_composition_general.
# This may be replaced when dependencies are built.
