file(REMOVE_RECURSE
  "CMakeFiles/fig10_composition_general.dir/fig10_composition_general.cpp.o"
  "CMakeFiles/fig10_composition_general.dir/fig10_composition_general.cpp.o.d"
  "fig10_composition_general"
  "fig10_composition_general.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_composition_general.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
