file(REMOVE_RECURSE
  "CMakeFiles/ablation_spot_pricing.dir/ablation_spot_pricing.cpp.o"
  "CMakeFiles/ablation_spot_pricing.dir/ablation_spot_pricing.cpp.o.d"
  "ablation_spot_pricing"
  "ablation_spot_pricing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_spot_pricing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
