# Empty compiler generated dependencies file for ablation_spot_pricing.
# This may be replaced when dependencies are built.
