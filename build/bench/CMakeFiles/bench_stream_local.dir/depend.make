# Empty dependencies file for bench_stream_local.
# This may be replaced when dependencies are built.
