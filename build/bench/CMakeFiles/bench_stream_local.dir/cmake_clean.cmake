file(REMOVE_RECURSE
  "CMakeFiles/bench_stream_local.dir/bench_stream_local.cpp.o"
  "CMakeFiles/bench_stream_local.dir/bench_stream_local.cpp.o.d"
  "bench_stream_local"
  "bench_stream_local.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stream_local.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
