file(REMOVE_RECURSE
  "CMakeFiles/hemo_cluster.dir/hardware.cpp.o"
  "CMakeFiles/hemo_cluster.dir/hardware.cpp.o.d"
  "CMakeFiles/hemo_cluster.dir/instance.cpp.o"
  "CMakeFiles/hemo_cluster.dir/instance.cpp.o.d"
  "CMakeFiles/hemo_cluster.dir/virtual_cluster.cpp.o"
  "CMakeFiles/hemo_cluster.dir/virtual_cluster.cpp.o.d"
  "libhemo_cluster.a"
  "libhemo_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hemo_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
