# Empty dependencies file for hemo_cluster.
# This may be replaced when dependencies are built.
