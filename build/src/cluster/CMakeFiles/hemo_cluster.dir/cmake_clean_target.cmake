file(REMOVE_RECURSE
  "libhemo_cluster.a"
)
