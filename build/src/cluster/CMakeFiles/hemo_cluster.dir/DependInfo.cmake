
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/hardware.cpp" "src/cluster/CMakeFiles/hemo_cluster.dir/hardware.cpp.o" "gcc" "src/cluster/CMakeFiles/hemo_cluster.dir/hardware.cpp.o.d"
  "/root/repo/src/cluster/instance.cpp" "src/cluster/CMakeFiles/hemo_cluster.dir/instance.cpp.o" "gcc" "src/cluster/CMakeFiles/hemo_cluster.dir/instance.cpp.o.d"
  "/root/repo/src/cluster/virtual_cluster.cpp" "src/cluster/CMakeFiles/hemo_cluster.dir/virtual_cluster.cpp.o" "gcc" "src/cluster/CMakeFiles/hemo_cluster.dir/virtual_cluster.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/decomp/CMakeFiles/hemo_decomp.dir/DependInfo.cmake"
  "/root/repo/build/src/lbm/CMakeFiles/hemo_lbm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hemo_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/hemo_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
