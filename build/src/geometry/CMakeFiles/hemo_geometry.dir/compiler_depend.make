# Empty compiler generated dependencies file for hemo_geometry.
# This may be replaced when dependencies are built.
