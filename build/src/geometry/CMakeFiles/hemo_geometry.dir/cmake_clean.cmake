file(REMOVE_RECURSE
  "CMakeFiles/hemo_geometry.dir/generators.cpp.o"
  "CMakeFiles/hemo_geometry.dir/generators.cpp.o.d"
  "CMakeFiles/hemo_geometry.dir/voxel_grid.cpp.o"
  "CMakeFiles/hemo_geometry.dir/voxel_grid.cpp.o.d"
  "libhemo_geometry.a"
  "libhemo_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hemo_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
