
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geometry/generators.cpp" "src/geometry/CMakeFiles/hemo_geometry.dir/generators.cpp.o" "gcc" "src/geometry/CMakeFiles/hemo_geometry.dir/generators.cpp.o.d"
  "/root/repo/src/geometry/voxel_grid.cpp" "src/geometry/CMakeFiles/hemo_geometry.dir/voxel_grid.cpp.o" "gcc" "src/geometry/CMakeFiles/hemo_geometry.dir/voxel_grid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hemo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
