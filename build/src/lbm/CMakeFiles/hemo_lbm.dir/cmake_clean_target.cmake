file(REMOVE_RECURSE
  "libhemo_lbm.a"
)
