
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lbm/access_counts.cpp" "src/lbm/CMakeFiles/hemo_lbm.dir/access_counts.cpp.o" "gcc" "src/lbm/CMakeFiles/hemo_lbm.dir/access_counts.cpp.o.d"
  "/root/repo/src/lbm/io.cpp" "src/lbm/CMakeFiles/hemo_lbm.dir/io.cpp.o" "gcc" "src/lbm/CMakeFiles/hemo_lbm.dir/io.cpp.o.d"
  "/root/repo/src/lbm/kernel_config.cpp" "src/lbm/CMakeFiles/hemo_lbm.dir/kernel_config.cpp.o" "gcc" "src/lbm/CMakeFiles/hemo_lbm.dir/kernel_config.cpp.o.d"
  "/root/repo/src/lbm/mesh.cpp" "src/lbm/CMakeFiles/hemo_lbm.dir/mesh.cpp.o" "gcc" "src/lbm/CMakeFiles/hemo_lbm.dir/mesh.cpp.o.d"
  "/root/repo/src/lbm/observables.cpp" "src/lbm/CMakeFiles/hemo_lbm.dir/observables.cpp.o" "gcc" "src/lbm/CMakeFiles/hemo_lbm.dir/observables.cpp.o.d"
  "/root/repo/src/lbm/solver.cpp" "src/lbm/CMakeFiles/hemo_lbm.dir/solver.cpp.o" "gcc" "src/lbm/CMakeFiles/hemo_lbm.dir/solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geometry/CMakeFiles/hemo_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hemo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
