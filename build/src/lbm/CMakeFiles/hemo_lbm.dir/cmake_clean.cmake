file(REMOVE_RECURSE
  "CMakeFiles/hemo_lbm.dir/access_counts.cpp.o"
  "CMakeFiles/hemo_lbm.dir/access_counts.cpp.o.d"
  "CMakeFiles/hemo_lbm.dir/io.cpp.o"
  "CMakeFiles/hemo_lbm.dir/io.cpp.o.d"
  "CMakeFiles/hemo_lbm.dir/kernel_config.cpp.o"
  "CMakeFiles/hemo_lbm.dir/kernel_config.cpp.o.d"
  "CMakeFiles/hemo_lbm.dir/mesh.cpp.o"
  "CMakeFiles/hemo_lbm.dir/mesh.cpp.o.d"
  "CMakeFiles/hemo_lbm.dir/observables.cpp.o"
  "CMakeFiles/hemo_lbm.dir/observables.cpp.o.d"
  "CMakeFiles/hemo_lbm.dir/solver.cpp.o"
  "CMakeFiles/hemo_lbm.dir/solver.cpp.o.d"
  "libhemo_lbm.a"
  "libhemo_lbm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hemo_lbm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
