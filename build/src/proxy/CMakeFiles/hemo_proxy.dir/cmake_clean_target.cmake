file(REMOVE_RECURSE
  "libhemo_proxy.a"
)
