# Empty dependencies file for hemo_util.
# This may be replaced when dependencies are built.
