file(REMOVE_RECURSE
  "CMakeFiles/hemo_util.dir/common.cpp.o"
  "CMakeFiles/hemo_util.dir/common.cpp.o.d"
  "CMakeFiles/hemo_util.dir/table.cpp.o"
  "CMakeFiles/hemo_util.dir/table.cpp.o.d"
  "libhemo_util.a"
  "libhemo_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hemo_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
