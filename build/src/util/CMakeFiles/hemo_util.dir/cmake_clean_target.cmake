file(REMOVE_RECURSE
  "libhemo_util.a"
)
