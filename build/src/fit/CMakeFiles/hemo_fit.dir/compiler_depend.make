# Empty compiler generated dependencies file for hemo_fit.
# This may be replaced when dependencies are built.
