
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fit/interp.cpp" "src/fit/CMakeFiles/hemo_fit.dir/interp.cpp.o" "gcc" "src/fit/CMakeFiles/hemo_fit.dir/interp.cpp.o.d"
  "/root/repo/src/fit/linear.cpp" "src/fit/CMakeFiles/hemo_fit.dir/linear.cpp.o" "gcc" "src/fit/CMakeFiles/hemo_fit.dir/linear.cpp.o.d"
  "/root/repo/src/fit/log_models.cpp" "src/fit/CMakeFiles/hemo_fit.dir/log_models.cpp.o" "gcc" "src/fit/CMakeFiles/hemo_fit.dir/log_models.cpp.o.d"
  "/root/repo/src/fit/minimize.cpp" "src/fit/CMakeFiles/hemo_fit.dir/minimize.cpp.o" "gcc" "src/fit/CMakeFiles/hemo_fit.dir/minimize.cpp.o.d"
  "/root/repo/src/fit/stats.cpp" "src/fit/CMakeFiles/hemo_fit.dir/stats.cpp.o" "gcc" "src/fit/CMakeFiles/hemo_fit.dir/stats.cpp.o.d"
  "/root/repo/src/fit/two_line.cpp" "src/fit/CMakeFiles/hemo_fit.dir/two_line.cpp.o" "gcc" "src/fit/CMakeFiles/hemo_fit.dir/two_line.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hemo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
