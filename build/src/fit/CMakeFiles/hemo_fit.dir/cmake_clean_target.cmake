file(REMOVE_RECURSE
  "libhemo_fit.a"
)
