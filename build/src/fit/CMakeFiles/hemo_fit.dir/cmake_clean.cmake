file(REMOVE_RECURSE
  "CMakeFiles/hemo_fit.dir/interp.cpp.o"
  "CMakeFiles/hemo_fit.dir/interp.cpp.o.d"
  "CMakeFiles/hemo_fit.dir/linear.cpp.o"
  "CMakeFiles/hemo_fit.dir/linear.cpp.o.d"
  "CMakeFiles/hemo_fit.dir/log_models.cpp.o"
  "CMakeFiles/hemo_fit.dir/log_models.cpp.o.d"
  "CMakeFiles/hemo_fit.dir/minimize.cpp.o"
  "CMakeFiles/hemo_fit.dir/minimize.cpp.o.d"
  "CMakeFiles/hemo_fit.dir/stats.cpp.o"
  "CMakeFiles/hemo_fit.dir/stats.cpp.o.d"
  "CMakeFiles/hemo_fit.dir/two_line.cpp.o"
  "CMakeFiles/hemo_fit.dir/two_line.cpp.o.d"
  "libhemo_fit.a"
  "libhemo_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hemo_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
