# Empty compiler generated dependencies file for hemo_core.
# This may be replaced when dependencies are built.
