file(REMOVE_RECURSE
  "CMakeFiles/hemo_core.dir/calibration.cpp.o"
  "CMakeFiles/hemo_core.dir/calibration.cpp.o.d"
  "CMakeFiles/hemo_core.dir/campaign.cpp.o"
  "CMakeFiles/hemo_core.dir/campaign.cpp.o.d"
  "CMakeFiles/hemo_core.dir/dashboard.cpp.o"
  "CMakeFiles/hemo_core.dir/dashboard.cpp.o.d"
  "CMakeFiles/hemo_core.dir/models.cpp.o"
  "CMakeFiles/hemo_core.dir/models.cpp.o.d"
  "CMakeFiles/hemo_core.dir/persistence.cpp.o"
  "CMakeFiles/hemo_core.dir/persistence.cpp.o.d"
  "CMakeFiles/hemo_core.dir/refinement.cpp.o"
  "CMakeFiles/hemo_core.dir/refinement.cpp.o.d"
  "CMakeFiles/hemo_core.dir/roofline.cpp.o"
  "CMakeFiles/hemo_core.dir/roofline.cpp.o.d"
  "libhemo_core.a"
  "libhemo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hemo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
