# Empty compiler generated dependencies file for hemo_harvey.
# This may be replaced when dependencies are built.
