file(REMOVE_RECURSE
  "libhemo_microbench.a"
)
