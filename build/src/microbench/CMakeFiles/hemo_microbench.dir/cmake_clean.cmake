file(REMOVE_RECURSE
  "CMakeFiles/hemo_microbench.dir/pingpong.cpp.o"
  "CMakeFiles/hemo_microbench.dir/pingpong.cpp.o.d"
  "CMakeFiles/hemo_microbench.dir/stream.cpp.o"
  "CMakeFiles/hemo_microbench.dir/stream.cpp.o.d"
  "libhemo_microbench.a"
  "libhemo_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hemo_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
