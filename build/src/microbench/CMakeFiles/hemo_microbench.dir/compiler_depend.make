# Empty compiler generated dependencies file for hemo_microbench.
# This may be replaced when dependencies are built.
