# Empty compiler generated dependencies file for hemo_decomp.
# This may be replaced when dependencies are built.
