file(REMOVE_RECURSE
  "libhemo_decomp.a"
)
