
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_campaign.cpp" "tests/CMakeFiles/hemo_tests.dir/test_campaign.cpp.o" "gcc" "tests/CMakeFiles/hemo_tests.dir/test_campaign.cpp.o.d"
  "/root/repo/tests/test_cluster.cpp" "tests/CMakeFiles/hemo_tests.dir/test_cluster.cpp.o" "gcc" "tests/CMakeFiles/hemo_tests.dir/test_cluster.cpp.o.d"
  "/root/repo/tests/test_core.cpp" "tests/CMakeFiles/hemo_tests.dir/test_core.cpp.o" "gcc" "tests/CMakeFiles/hemo_tests.dir/test_core.cpp.o.d"
  "/root/repo/tests/test_dashboard.cpp" "tests/CMakeFiles/hemo_tests.dir/test_dashboard.cpp.o" "gcc" "tests/CMakeFiles/hemo_tests.dir/test_dashboard.cpp.o.d"
  "/root/repo/tests/test_decomp.cpp" "tests/CMakeFiles/hemo_tests.dir/test_decomp.cpp.o" "gcc" "tests/CMakeFiles/hemo_tests.dir/test_decomp.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/hemo_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/hemo_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_feedback_loop.cpp" "tests/CMakeFiles/hemo_tests.dir/test_feedback_loop.cpp.o" "gcc" "tests/CMakeFiles/hemo_tests.dir/test_feedback_loop.cpp.o.d"
  "/root/repo/tests/test_fit.cpp" "tests/CMakeFiles/hemo_tests.dir/test_fit.cpp.o" "gcc" "tests/CMakeFiles/hemo_tests.dir/test_fit.cpp.o.d"
  "/root/repo/tests/test_geometry.cpp" "tests/CMakeFiles/hemo_tests.dir/test_geometry.cpp.o" "gcc" "tests/CMakeFiles/hemo_tests.dir/test_geometry.cpp.o.d"
  "/root/repo/tests/test_harvey.cpp" "tests/CMakeFiles/hemo_tests.dir/test_harvey.cpp.o" "gcc" "tests/CMakeFiles/hemo_tests.dir/test_harvey.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/hemo_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/hemo_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_lbm.cpp" "tests/CMakeFiles/hemo_tests.dir/test_lbm.cpp.o" "gcc" "tests/CMakeFiles/hemo_tests.dir/test_lbm.cpp.o.d"
  "/root/repo/tests/test_microbench.cpp" "tests/CMakeFiles/hemo_tests.dir/test_microbench.cpp.o" "gcc" "tests/CMakeFiles/hemo_tests.dir/test_microbench.cpp.o.d"
  "/root/repo/tests/test_observables.cpp" "tests/CMakeFiles/hemo_tests.dir/test_observables.cpp.o" "gcc" "tests/CMakeFiles/hemo_tests.dir/test_observables.cpp.o.d"
  "/root/repo/tests/test_persistence_les.cpp" "tests/CMakeFiles/hemo_tests.dir/test_persistence_les.cpp.o" "gcc" "tests/CMakeFiles/hemo_tests.dir/test_persistence_les.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/hemo_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/hemo_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_proxy.cpp" "tests/CMakeFiles/hemo_tests.dir/test_proxy.cpp.o" "gcc" "tests/CMakeFiles/hemo_tests.dir/test_proxy.cpp.o.d"
  "/root/repo/tests/test_roofline.cpp" "tests/CMakeFiles/hemo_tests.dir/test_roofline.cpp.o" "gcc" "tests/CMakeFiles/hemo_tests.dir/test_roofline.cpp.o.d"
  "/root/repo/tests/test_solver.cpp" "tests/CMakeFiles/hemo_tests.dir/test_solver.cpp.o" "gcc" "tests/CMakeFiles/hemo_tests.dir/test_solver.cpp.o.d"
  "/root/repo/tests/test_solver_extensions.cpp" "tests/CMakeFiles/hemo_tests.dir/test_solver_extensions.cpp.o" "gcc" "tests/CMakeFiles/hemo_tests.dir/test_solver_extensions.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/hemo_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/hemo_tests.dir/test_util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hemo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/proxy/CMakeFiles/hemo_proxy.dir/DependInfo.cmake"
  "/root/repo/build/src/harvey/CMakeFiles/hemo_harvey.dir/DependInfo.cmake"
  "/root/repo/build/src/microbench/CMakeFiles/hemo_microbench.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/hemo_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/decomp/CMakeFiles/hemo_decomp.dir/DependInfo.cmake"
  "/root/repo/build/src/lbm/CMakeFiles/hemo_lbm.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/hemo_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/fit/CMakeFiles/hemo_fit.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hemo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
