# Empty compiler generated dependencies file for hemo_tests.
# This may be replaced when dependencies are built.
