// Unit tests for the virtual cluster substrate: instance catalog, memory
// system, interconnect, noise model, and workload execution.
#include <gtest/gtest.h>

#include "cluster/hardware.hpp"
#include "cluster/instance.hpp"
#include "cluster/virtual_cluster.hpp"
#include "decomp/partition.hpp"
#include "geometry/generators.hpp"
#include "lbm/mesh.hpp"

namespace hemo::cluster {
namespace {

TEST(Catalog, ContainsThePapersSystems) {
  const auto& cat = default_catalog();
  EXPECT_EQ(cat.size(), 7u);  // Table I systems + CSP-2 Hyp. + CSP-2 GPU
  for (const char* abbrev :
       {"TRC", "CSP-1", "CSP-2 Small", "CSP-2", "CSP-2 EC", "CSP-2 Hyp."}) {
    EXPECT_NO_THROW((void)instance_by_abbrev(abbrev)) << abbrev;
  }
  EXPECT_THROW((void)instance_by_abbrev("CSP-9"), PreconditionError);
}

TEST(Catalog, TableOneValuesSeeded) {
  const auto& trc = instance_by_abbrev("TRC");
  EXPECT_EQ(trc.cores_per_node, 40);
  EXPECT_EQ(trc.total_cores, 2000);
  EXPECT_DOUBLE_EQ(trc.interconnect.value(), 56.0);
  const auto& ec = instance_by_abbrev("CSP-2 EC");
  EXPECT_EQ(ec.cores_per_node, 36);
  EXPECT_DOUBLE_EQ(ec.interconnect.value(), 100.0);
  // Table III values drive the ground truth.
  EXPECT_NEAR(ec.memory.a1, 7605.85, 1e-6);
  EXPECT_NEAR(ec.inter.latency.value(), 20.94, 1e-6);
}

TEST(MemoryParams, TwoLineLawContinuousAndSaturating) {
  const auto& p = instance_by_abbrev("CSP-2");
  const real_t at_knee = p.memory.node_bandwidth_mbs(p.memory.a3).value();
  EXPECT_NEAR(at_knee, p.memory.a1 * p.memory.a3, 1e-6);
  // Slope flattens after the knee.
  const real_t before = p.memory.node_bandwidth_mbs(5.0).value() -
                        p.memory.node_bandwidth_mbs(4.0).value();
  const real_t after = p.memory.node_bandwidth_mbs(20.0).value() -
                       p.memory.node_bandwidth_mbs(19.0).value();
  EXPECT_GT(before, after);
}

TEST(MemorySystem, MeasurementsAreDeterministicPerSample) {
  const auto& p = instance_by_abbrev("CSP-2");
  MemorySystem mem(p);
  EXPECT_DOUBLE_EQ(mem.measured_node_bandwidth(8, 0).value(),
                   mem.measured_node_bandwidth(8, 0).value());
  EXPECT_NE(mem.measured_node_bandwidth(8, 0).value(),
            mem.measured_node_bandwidth(8, 1).value());
}

TEST(MemorySystem, SharedChannelVarianceKicksInPastKnee) {
  const auto& p = instance_by_abbrev("CSP-2");  // shared_memory_channels
  MemorySystem mem(p);
  auto spread = [&](index_t threads) {
    real_t lo = 1e30, hi = 0.0;
    for (index_t s = 0; s < 24; ++s) {
      const real_t b = mem.measured_node_bandwidth(threads, s).value();
      lo = std::min(lo, b);
      hi = std::max(hi, b);
    }
    return (hi - lo) / hi;
  };
  EXPECT_GT(spread(30), spread(4) * 2.0);
}

TEST(MemorySystem, TaskShareSplitsNodeBandwidth) {
  const auto& p = instance_by_abbrev("TRC");
  MemorySystem mem(p);
  const real_t full = mem.ideal_node_bandwidth(40.0).value();
  EXPECT_NEAR(mem.task_bandwidth(40).value(), full / 40.0, 1e-9);
}

TEST(Interconnect, EcBeatsNoEcAndTrcBeatsBoth) {
  Interconnect ec(instance_by_abbrev("CSP-2 EC"));
  Interconnect noec(instance_by_abbrev("CSP-2"));
  Interconnect trc(instance_by_abbrev("TRC"));
  for (real_t bytes : {0.0, 1024.0, 65536.0, 1048576.0}) {
    EXPECT_LT(ec.message_time(units::Bytes(bytes), true).value(),
              noec.message_time(units::Bytes(bytes), true).value());
    EXPECT_LT(trc.message_time(units::Bytes(bytes), true).value(),
              ec.message_time(units::Bytes(bytes), true).value());
  }
}

TEST(Interconnect, IntranodeFasterThanInternode) {
  Interconnect net(instance_by_abbrev("CSP-2"));
  for (real_t bytes : {0.0, 4096.0, 1048576.0}) {
    EXPECT_LT(net.message_time(units::Bytes(bytes), false).value(),
              net.message_time(units::Bytes(bytes), true).value());
  }
}

TEST(Interconnect, TimeIsMonotoneInSize) {
  Interconnect net(instance_by_abbrev("CSP-1"));
  real_t prev = net.message_time(units::Bytes(0.0), true).value();
  for (real_t bytes = 1.0; bytes <= 1 << 22; bytes *= 4.0) {
    const real_t t = net.message_time(units::Bytes(bytes), true).value();
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(Interconnect, EffectiveLatencyGrowsWithSize) {
  // The deliberate nonlinearity: zero-anchored linear fits underestimate
  // latency at large sizes (paper Section III-E).
  Interconnect net(instance_by_abbrev("CSP-2"));
  const real_t l0 = net.message_time(units::Bytes(0.0), true).value();
  const real_t big = 4.0 * 1024 * 1024;
  const real_t linear_estimate =
      l0 + big / instance_by_abbrev("CSP-2").inter.bandwidth.value();
  EXPECT_GT(net.message_time(units::Bytes(big), true).value(),
            linear_estimate);
}

TEST(NoiseModel, DeterministicAndCentered) {
  NoiseModel noise(instance_by_abbrev("CSP-2 Small"));
  EXPECT_DOUBLE_EQ(noise.factor(1, 6, 0), noise.factor(1, 6, 0));
  real_t sum = 0.0;
  index_t n = 0;
  for (index_t day = 0; day < 7; ++day) {
    for (index_t hour = 0; hour < 24; hour += 6) {
      sum += noise.factor(day, hour, 0);
      ++n;
    }
  }
  EXPECT_NEAR(sum / static_cast<real_t>(n), 1.0, 0.02);
}

class WorkloadFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    geo_ = geometry::make_cylinder({.radius = 6, .length = 48});
    mesh_ = std::make_unique<lbm::FluidMesh>(lbm::FluidMesh::build(geo_.grid));
  }

  WorkloadPlan plan(index_t n_tasks, index_t tasks_per_node) const {
    const auto part =
        decomp::make_partition(*mesh_, n_tasks, decomp::Strategy::kRcb);
    return make_workload_plan(*mesh_, part, lbm::KernelConfig{},
                              tasks_per_node, "cyl");
  }

  geometry::Geometry geo_{"", geometry::VoxelGrid(1, 1, 1), {}};
  std::unique_ptr<lbm::FluidMesh> mesh_;
};

TEST_F(WorkloadFixture, PlanLaysOutNodesContiguously) {
  const WorkloadPlan p = plan(72, 36);
  EXPECT_EQ(p.n_nodes, 2);
  EXPECT_EQ(p.task_node[0], 0);
  EXPECT_EQ(p.task_node[35], 0);
  EXPECT_EQ(p.task_node[36], 1);
  EXPECT_EQ(p.task_node[71], 1);
  // Messages crossing the node boundary are marked internode.
  bool saw_internode = false, saw_intranode = false;
  for (const auto& m : p.messages) {
    const bool crosses = p.task_node[static_cast<std::size_t>(m.from)] !=
                         p.task_node[static_cast<std::size_t>(m.to)];
    EXPECT_EQ(m.internode, crosses);
    saw_internode |= crosses;
    saw_intranode |= !crosses;
  }
  EXPECT_TRUE(saw_internode);
  EXPECT_TRUE(saw_intranode);
}

TEST_F(WorkloadFixture, ExecuteProducesPositiveThroughput) {
  const auto& profile = instance_by_abbrev("CSP-2");
  VirtualCluster vc(profile);
  const auto result = vc.execute(plan(36, 36), 1000, {});
  EXPECT_GT(result.mflups.value(), 0.0);
  EXPECT_GT(result.step_seconds.value(), 0.0);
  EXPECT_NEAR(result.total_seconds.value(),
              result.step_seconds.value() * 1000.0, 1e-9);
  EXPECT_GT(result.critical.mem_s.value(), 0.0);
}

TEST_F(WorkloadFixture, MoreTasksWithinNodeIncreaseThroughput) {
  const auto& profile = instance_by_abbrev("CSP-2");
  VirtualCluster vc(profile);
  const real_t m4 = vc.execute(plan(4, 36), 100, {}).mflups.value();
  const real_t m16 = vc.execute(plan(16, 36), 100, {}).mflups.value();
  EXPECT_GT(m16, m4);
}

TEST_F(WorkloadFixture, EcOutperformsNoEcAtMultiNodeScale) {
  // Same workload, 4 nodes: the EC interconnect must win (paper Table III
  // and Fig. 3 discussion).
  const WorkloadPlan p = plan(144, 36);
  VirtualCluster ec(instance_by_abbrev("CSP-2 EC"));
  VirtualCluster noec(instance_by_abbrev("CSP-2"));
  EXPECT_GT(ec.execute(p, 100, {}).mflups.value(),
            noec.execute(p, 100, {}).mflups.value());
}

TEST_F(WorkloadFixture, NoiseVariesByMeasurementContext) {
  const auto& profile = instance_by_abbrev("CSP-2 Small");
  VirtualCluster vc(profile);
  const WorkloadPlan p = plan(16, 8);
  const real_t a = vc.execute(p, 100, {0, 0, 0}).mflups.value();
  const real_t b = vc.execute(p, 100, {3, 12, 0}).mflups.value();
  EXPECT_NE(a, b);
  EXPECT_NEAR(a, b, a * 0.2);  // but within noise scale
}

TEST_F(WorkloadFixture, BreakdownsCoverAllTasks) {
  const auto& profile = instance_by_abbrev("TRC");
  VirtualCluster vc(profile);
  const WorkloadPlan p = plan(20, 40);
  const auto breakdowns = vc.task_breakdowns(p);
  ASSERT_EQ(static_cast<index_t>(breakdowns.size()), 20);
  for (const auto& b : breakdowns) {
    EXPECT_GT(b.mem_s.value(), 0.0);
    EXPECT_GE(b.total().value(), b.mem_s.value());
  }
}

}  // namespace
}  // namespace hemo::cluster
