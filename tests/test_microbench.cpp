// Unit tests for the STREAM and PingPong microbenchmarks.
#include <gtest/gtest.h>

#include "cluster/instance.hpp"
#include "microbench/pingpong.hpp"
#include "microbench/stream.hpp"

namespace hemo::microbench {
namespace {

TEST(StreamLocal, ReportsPositiveBandwidths) {
  const StreamResult r = run_stream_local(1 << 18, 2);
  EXPECT_GT(r.copy, 0.0);
  EXPECT_GT(r.scale, 0.0);
  EXPECT_GT(r.add, 0.0);
  EXPECT_GT(r.triad, 0.0);
  // Sanity: a modern core sustains well above 100 MB/s and below 1 TB/s.
  EXPECT_GT(r.copy, 100.0);
  EXPECT_LT(r.copy, 1e6);
}

TEST(StreamLocal, RejectsTinyArrays) {
  EXPECT_THROW((void)run_stream_local(16, 1), PreconditionError);
}

TEST(StreamSimulated, SweepCoversOneToMax) {
  const auto& p = cluster::instance_by_abbrev("CSP-2");
  const auto sweep = simulated_stream_sweep(p, 36);
  ASSERT_EQ(sweep.size(), 36u);
  EXPECT_EQ(sweep.front().threads, 1);
  EXPECT_EQ(sweep.back().threads, 36);
  for (const auto& s : sweep) EXPECT_GT(s.bandwidth_mbs, 0.0);
}

TEST(StreamSimulated, FullNodeSweepHonorsHyperthreading) {
  const auto& hyp = cluster::instance_by_abbrev("CSP-2 Hyp.");
  const auto sweep = simulated_stream_sweep_full_node(hyp);
  EXPECT_EQ(static_cast<index_t>(sweep.size()),
            hyp.cores_per_node * hyp.vcpus_per_core);  // 72 vCPUs
}

TEST(StreamSimulated, HyperthreadedBandwidthDeclinesPastKnee) {
  // CSP-2 Hyp. has a negative saturated slope (paper Table III): bandwidth
  // at 72 threads is below the knee value.
  const auto& hyp = cluster::instance_by_abbrev("CSP-2 Hyp.");
  const auto sweep = simulated_stream_sweep_full_node(hyp);
  const real_t knee = sweep[10].bandwidth_mbs;   // just past a3 = 9.87
  const real_t full = sweep.back().bandwidth_mbs;
  EXPECT_LT(full, knee);
}

TEST(MessageSizes, LadderStartsAtZeroAndDoubles) {
  const auto sizes = default_message_sizes(1024.0);
  ASSERT_GE(sizes.size(), 3u);
  EXPECT_DOUBLE_EQ(sizes[0], 0.0);
  EXPECT_DOUBLE_EQ(sizes[1], 1.0);
  EXPECT_DOUBLE_EQ(sizes.back(), 1024.0);
  for (std::size_t i = 2; i < sizes.size(); ++i) {
    EXPECT_DOUBLE_EQ(sizes[i], 2.0 * sizes[i - 1]);
  }
}

TEST(PingPongSimulated, InterSlowerThanIntra) {
  const auto& p = cluster::instance_by_abbrev("CSP-2");
  const auto sizes = default_message_sizes(1 << 20);
  const auto inter = simulated_pingpong(p, true, sizes);
  const auto intra = simulated_pingpong(p, false, sizes);
  ASSERT_EQ(inter.size(), intra.size());
  for (std::size_t i = 0; i < inter.size(); ++i) {
    EXPECT_GT(inter[i].time_us, intra[i].time_us * 0.9);
  }
  // At the large end the gap is decisive.
  EXPECT_GT(inter.back().time_us, intra.back().time_us * 2.0);
}

TEST(PingPongSimulated, DeterministicPerSample) {
  const auto& p = cluster::instance_by_abbrev("TRC");
  const auto sizes = default_message_sizes(4096.0);
  const auto a = simulated_pingpong(p, true, sizes, 0);
  const auto b = simulated_pingpong(p, true, sizes, 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].time_us, b[i].time_us);
  }
}

TEST(PingPongLocal, TimesGrowWithMessageSize) {
  const std::vector<real_t> sizes = {0.0, 1024.0, 262144.0};
  const auto samples = run_pingpong_local(sizes, 50);
  ASSERT_EQ(samples.size(), 3u);
  for (const auto& s : samples) EXPECT_GT(s.time_us, 0.0);
  // A 256 KiB copy costs measurably more than a zero-byte handshake.
  EXPECT_GT(samples[2].time_us, samples[0].time_us);
}

}  // namespace
}  // namespace hemo::microbench
