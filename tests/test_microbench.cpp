// Unit tests for the STREAM and PingPong microbenchmarks.
#include <gtest/gtest.h>

#include <cmath>

#include "cluster/instance.hpp"
#include "fit/two_line.hpp"
#include "microbench/pingpong.hpp"
#include "microbench/stream.hpp"

namespace hemo::microbench {
namespace {

TEST(StreamLocal, ReportsPositiveBandwidths) {
  const StreamResult r = run_stream_local(1 << 18, 2);
  EXPECT_GT(r.copy, 0.0);
  EXPECT_GT(r.scale, 0.0);
  EXPECT_GT(r.add, 0.0);
  EXPECT_GT(r.triad, 0.0);
  // Sanity: a modern core sustains well above 100 MB/s and below 1 TB/s.
  EXPECT_GT(r.copy, 100.0);
  EXPECT_LT(r.copy, 1e6);
}

TEST(StreamLocal, RejectsTinyArrays) {
  EXPECT_THROW((void)run_stream_local(16, 1), PreconditionError);
}

TEST(StreamLocal, ThreadedModeReportsPositiveBandwidths) {
  // threads > 1 exercises the OpenMP kernels (serial fallback in a build
  // without OpenMP — either way the measurement must be sane).
  const StreamResult r = run_stream_local(1 << 18, 2, 2);
  EXPECT_GT(r.copy, 100.0);
  EXPECT_GT(r.scale, 100.0);
  EXPECT_GT(r.add, 100.0);
  EXPECT_GT(r.triad, 100.0);
}

TEST(StreamLocal, RejectsZeroThreads) {
  EXPECT_THROW((void)run_stream_local(1 << 18, 1, 0), PreconditionError);
}

TEST(StreamLocal, RealSweepCoversOneToMax) {
  const auto sweep = real_stream_sweep(2, 1 << 16, 1);
  ASSERT_EQ(sweep.size(), 2u);
  EXPECT_EQ(sweep.front().threads, 1);
  EXPECT_EQ(sweep.back().threads, 2);
  for (const auto& s : sweep) EXPECT_GT(s.bandwidth_mbs, 0.0);
}

TEST(StreamSimulated, SweepCoversOneToMax) {
  const auto& p = cluster::instance_by_abbrev("CSP-2");
  const auto sweep = simulated_stream_sweep(p, 36);
  ASSERT_EQ(sweep.size(), 36u);
  EXPECT_EQ(sweep.front().threads, 1);
  EXPECT_EQ(sweep.back().threads, 36);
  for (const auto& s : sweep) EXPECT_GT(s.bandwidth_mbs, 0.0);
}

TEST(StreamSimulated, FullNodeSweepHonorsHyperthreading) {
  const auto& hyp = cluster::instance_by_abbrev("CSP-2 Hyp.");
  const auto sweep = simulated_stream_sweep_full_node(hyp);
  EXPECT_EQ(static_cast<index_t>(sweep.size()),
            hyp.cores_per_node * hyp.vcpus_per_core);  // 72 vCPUs
}

TEST(StreamSimulated, HyperthreadedBandwidthDeclinesPastKnee) {
  // CSP-2 Hyp. has a negative saturated slope (paper Table III): bandwidth
  // at 72 threads is below the knee value.
  const auto& hyp = cluster::instance_by_abbrev("CSP-2 Hyp.");
  const auto sweep = simulated_stream_sweep_full_node(hyp);
  const real_t knee = sweep[10].bandwidth_mbs;   // just past a3 = 9.87
  const real_t full = sweep.back().bandwidth_mbs;
  EXPECT_LT(full, knee);
}

TEST(MessageSizes, LadderStartsAtZeroAndDoubles) {
  const auto sizes = default_message_sizes(1024.0);
  ASSERT_GE(sizes.size(), 3u);
  EXPECT_DOUBLE_EQ(sizes[0], 0.0);
  EXPECT_DOUBLE_EQ(sizes[1], 1.0);
  EXPECT_DOUBLE_EQ(sizes.back(), 1024.0);
  for (std::size_t i = 2; i < sizes.size(); ++i) {
    EXPECT_DOUBLE_EQ(sizes[i], 2.0 * sizes[i - 1]);
  }
}

TEST(PingPongSimulated, InterSlowerThanIntra) {
  const auto& p = cluster::instance_by_abbrev("CSP-2");
  const auto sizes = default_message_sizes(1 << 20);
  const auto inter = simulated_pingpong(p, true, sizes);
  const auto intra = simulated_pingpong(p, false, sizes);
  ASSERT_EQ(inter.size(), intra.size());
  for (std::size_t i = 0; i < inter.size(); ++i) {
    EXPECT_GT(inter[i].time_us, intra[i].time_us * 0.9);
  }
  // At the large end the gap is decisive.
  EXPECT_GT(inter.back().time_us, intra.back().time_us * 2.0);
}

TEST(PingPongSimulated, DeterministicPerSample) {
  const auto& p = cluster::instance_by_abbrev("TRC");
  const auto sizes = default_message_sizes(4096.0);
  const auto a = simulated_pingpong(p, true, sizes, 0);
  const auto b = simulated_pingpong(p, true, sizes, 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].time_us, b[i].time_us);
  }
}

TEST(PingPongLocal, TimesGrowWithMessageSize) {
  const std::vector<real_t> sizes = {0.0, 1024.0, 262144.0};
  const auto samples = run_pingpong_local(sizes, 50);
  ASSERT_EQ(samples.size(), 3u);
  for (const auto& s : samples) EXPECT_GT(s.time_us, 0.0);
  // A 256 KiB copy costs measurably more than a zero-byte handshake.
  EXPECT_GT(samples[2].time_us, samples[0].time_us);
}

TEST(PingPongLocal, ZeroByteLadderMeasuresPureLatency) {
  // The 0-byte rung anchors the latency intercept of Eq. 10's fit; it must
  // measure cleanly on its own, not only as part of a longer ladder.
  const auto samples = run_pingpong_local({0.0}, 50);
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_DOUBLE_EQ(samples[0].bytes, 0.0);
  EXPECT_GT(samples[0].time_us, 0.0);
  EXPECT_LT(samples[0].time_us, 1e4) << "a zero-byte handshake took > 10 ms";
}

TEST(StreamSimulated, SingleCoreSweepIsOneSteepRegimePoint) {
  // max_threads = 1 is the degenerate sweep: one sample, below every
  // profile's breakpoint, so bandwidth is the steep-regime slope a1.
  for (const cluster::InstanceProfile& p : cluster::default_catalog()) {
    const auto sweep = simulated_stream_sweep(p, 1);
    ASSERT_EQ(sweep.size(), 1u) << p.abbrev;
    EXPECT_EQ(sweep[0].threads, 1);
    EXPECT_GT(sweep[0].bandwidth_mbs, 0.0) << p.abbrev;
  }
}

TEST(TwoLineFit, SurvivesNonMonotoneBandwidthSamples) {
  // Real sweeps are noisy and not monotone (the paper's Fig. 5 shows dips
  // past the knee). The fitter must not crash on zig-zag data and must
  // still return a usable model: positive steep slope, breakpoint inside
  // the sampled range, and predictions of the right magnitude.
  const std::vector<real_t> threads = {1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<real_t> bandwidth = {8000,  16500, 23000, 30500,
                                         29000, 31500, 28500, 30000};
  const fit::TwoLineModel m = fit::fit_two_line(threads, bandwidth);
  EXPECT_GT(m.a1, 0.0);
  EXPECT_GE(m.a3, threads.front());
  EXPECT_LE(m.a3, threads.back());
  // The saturated regime is flat-ish for these samples: |a2| well below a1.
  EXPECT_LT(std::abs(m.a2), m.a1);
  // Predictions stay in the data's ballpark at both ends.
  EXPECT_NEAR(m(1.0), 8000.0, 4000.0);
  EXPECT_NEAR(m(8.0), 30000.0, 6000.0);
}

}  // namespace
}  // namespace hemo::microbench
