// End-to-end test of the paper's §IV add-and-check loop on *real* model
// data: candidate runtime terms are evaluated against actual direct-model
// predictions and virtual-cluster measurements, and the loop keeps exactly
// the terms that explain the gap. Plus edge cases for resolution scaling
// and the I/O layers.
#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "core/calibration.hpp"
#include "core/models.hpp"
#include "core/refinement.hpp"
#include "harvey/simulation.hpp"
#include "lbm/io.hpp"

namespace hemo {
namespace {

TEST(FeedbackLoop, ProportionalTermExplainsTheModelGap) {
  // Build real samples: direct-model predictions vs virtual measurements
  // for the cylinder on CSP-2 across rank counts.
  harvey::SimulationOptions opts;
  harvey::Simulation sim(
      geometry::make_cylinder({.radius = 10, .length = 80}), opts);
  const auto& profile = cluster::instance_by_abbrev("CSP-2");
  const auto cal = core::calibrate_instance(profile);

  std::vector<core::RefinementSample> samples;
  std::map<index_t, real_t> baseline;
  for (index_t n : {4, 9, 18, 36}) {
    const auto pred = core::predict_direct(sim.plan(n, 36), cal);
    const auto meas = sim.measure(profile, n, 200);
    samples.push_back(core::RefinementSample{
        n, pred.step_seconds.value(), meas.step_seconds.value()});
    baseline[n] = pred.step_seconds.value();
  }
  core::TermSelector selector(samples);
  const real_t initial = selector.current_error();
  EXPECT_GT(initial, 0.10);  // the hidden efficiency leaves a real gap

  // Candidate 1 (wrong shape): a constant per-step term. The gap scales
  // with the work, so a constant cannot explain it across rank counts as
  // well as the proportional term below — but it may still be kept if it
  // helps slightly; require a meaningful improvement threshold.
  core::CandidateTerm constant{"constant", [](index_t) { return 1e-2; }};
  const auto bad = selector.check(constant, 0.02);
  EXPECT_FALSE(bad.keep);

  // Candidate 2 (right shape): application inefficiency proportional to
  // the predicted step — the term a user would propose after seeing the
  // consistent overprediction of Figs. 7-8.
  core::CandidateTerm proportional{
      "application-inefficiency",
      [baseline](index_t n) {
        const auto it = baseline.find(n);
        return it != baseline.end() ? 0.28 * it->second : 0.0;
      }};
  const auto good = selector.check(proportional, 0.02);
  EXPECT_TRUE(good.keep);
  EXPECT_LT(selector.current_error(), initial * 0.5);
}

TEST(ResolutionScaling, ScalesTotalsOnly) {
  harvey::SimulationOptions opts;
  harvey::Simulation sim(
      geometry::make_cylinder({.radius = 6, .length = 32}), opts);
  const std::vector<index_t> counts = {2, 4, 8};
  const auto base = core::calibrate_workload(sim, counts, 36);
  const auto scaled = core::scale_resolution(base, 8.0);
  EXPECT_EQ(scaled.total_points, base.total_points * 8);
  EXPECT_DOUBLE_EQ(scaled.serial_bytes.value(),
                   base.serial_bytes.value() * 8.0);
  EXPECT_DOUBLE_EQ(scaled.point_comm_bytes.value(),
                   base.point_comm_bytes.value());
  EXPECT_DOUBLE_EQ(scaled.imbalance.z(64.0), base.imbalance.z(64.0));
  EXPECT_THROW((void)core::scale_resolution(base, 0.0), PreconditionError);
}

TEST(VtkOutput, RequiresNaturalOrder) {
  const auto geo = geometry::make_cylinder({.radius = 3, .length = 8});
  const lbm::FluidMesh mesh = lbm::FluidMesh::build(geo.grid);
  lbm::SolverParams params;
  params.kernel.propagation = lbm::Propagation::kAA;
  lbm::Solver<double> solver(mesh, params, std::span(geo.inlets));
  solver.step();  // odd parity: swapped representation
  std::ostringstream oss;
  EXPECT_THROW(lbm::write_vtk(solver, oss), PreconditionError);
}

TEST(Checkpoint, AaParityRestoredAcrossRoundTrip) {
  const auto geo = geometry::make_cylinder({.radius = 3, .length = 10});
  const lbm::FluidMesh mesh = lbm::FluidMesh::build(geo.grid);
  lbm::SolverParams params;
  params.kernel.propagation = lbm::Propagation::kAA;
  lbm::Solver<double> solver(mesh, params, std::span(geo.inlets));
  solver.run(7);  // odd parity
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  lbm::save_checkpoint(solver, buffer);

  lbm::Solver<double> restored(mesh, params, std::span(geo.inlets));
  lbm::load_checkpoint(restored, buffer);
  EXPECT_EQ(restored.timestep(), 7);
  EXPECT_FALSE(restored.natural_order());
  restored.step();
  EXPECT_TRUE(restored.natural_order());
}

}  // namespace
}  // namespace hemo
