// Race-detector stress for the threaded parallel runtime: oversubscribed
// rank counts, rebalance storms (a migration nearly every window), and
// concurrent independent solvers. Runs under `ctest -L tsan`; the CI
// thread-sanitizer job builds with HEMO_SANITIZE=thread. The assertions
// are the same bit-identity contracts as tier 1 — they must hold under
// any interleaving the preempting scheduler produces.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "runtime/parallel_solver.hpp"

namespace hemo::runtime {
namespace {

lbm::SolverParams base_params() {
  lbm::SolverParams params;
  params.tau = 0.8;
  return params;
}

TEST(RuntimeStress, OversubscribedRanksStayBitIdentical) {
  // Far more rank threads than cores: every mailbox wait and barrier epoch
  // gets exercised under forced preemption.
  const auto geo = geometry::make_cylinder({.radius = 4, .length = 20});
  const auto mesh = lbm::FluidMesh::build(geo.grid);
  const auto params = base_params();
  const auto hw =
      static_cast<index_t>(std::max(1u, std::thread::hardware_concurrency()));
  const index_t n_ranks = std::min<index_t>(2 * hw + 6, 16);

  lbm::Solver<double> serial(mesh, params, std::span(geo.inlets));
  ParallelSolver parallel(
      mesh, decomp::make_partition(mesh, n_ranks, decomp::Strategy::kRcb),
      params, std::span(geo.inlets));
  serial.run(25);
  parallel.run(25);
  EXPECT_EQ(parallel.export_state(), serial.export_state());
}

TEST(RuntimeStress, RebalanceStormStaysBitIdentical) {
  // Maximally aggressive controller: tiny window, hair-trigger threshold,
  // no patience — topology rebuilds happen constantly while rank threads
  // run. The barrier completion step must make every rebuild race-free.
  const auto geo = geometry::make_cylinder({.radius = 4, .length = 20});
  const auto mesh = lbm::FluidMesh::build(geo.grid);
  const auto params = base_params();
  RuntimeOptions options;
  options.rebalance.enabled = true;
  options.rebalance.window = 2;
  options.rebalance.threshold = 1.01;
  options.rebalance.patience = 1;
  options.rebalance.min_block = 1;
  options.rebalance.move_fraction = 0.5;
  ParallelSolver parallel(
      mesh, decomp::make_partition(mesh, 4, decomp::Strategy::kSlab), params,
      std::span(geo.inlets), options);
  parallel.run(80);

  lbm::Solver<double> serial(mesh, params, std::span(geo.inlets));
  serial.run(80);
  EXPECT_EQ(parallel.export_state(), serial.export_state());
  // On a real scheduler the hair trigger fires essentially every window;
  // don't assert an exact count, just that the machinery engaged and the
  // partition stayed valid.
  index_t total = 0;
  for (const auto& points : parallel.partition().points_of) {
    EXPECT_FALSE(points.empty());
    total += static_cast<index_t>(points.size());
  }
  EXPECT_EQ(total, mesh.num_points());
}

TEST(RuntimeStress, ConcurrentSolversDoNotInterfere) {
  // Two independent solvers with their own thread teams running at once:
  // mailboxes, barriers, and timings must be fully instance-local.
  const auto geo = geometry::make_cylinder({.radius = 4, .length = 16});
  const auto mesh = lbm::FluidMesh::build(geo.grid);
  const auto params = base_params();
  ParallelSolver a(mesh,
                   decomp::make_partition(mesh, 3, decomp::Strategy::kRcb),
                   params, std::span(geo.inlets));
  ParallelSolver b(mesh,
                   decomp::make_partition(mesh, 5, decomp::Strategy::kSlab),
                   params, std::span(geo.inlets));
  std::thread ta([&] { a.run(30); });
  std::thread tb([&] { b.run(30); });
  ta.join();
  tb.join();

  lbm::Solver<double> serial(mesh, params, std::span(geo.inlets));
  serial.run(30);
  const auto expected = serial.export_state();
  EXPECT_EQ(a.export_state(), expected);
  EXPECT_EQ(b.export_state(), expected);
}

}  // namespace
}  // namespace hemo::runtime
