// Tests for the campaign tracker (iterative refinement) and the
// model-driven job guard (overrun protection).
#include <gtest/gtest.h>

#include <cmath>
#include <iterator>

#include "core/campaign.hpp"

namespace hemo::core {
namespace {

Observation obs(real_t predicted, real_t measured) {
  return Observation{"aorta", "CSP-2", 36, units::Mflups(predicted),
                     units::Mflups(measured)};
}

TEST(CampaignTracker, EmptyTrackerIsNeutral) {
  CampaignTracker t;
  EXPECT_DOUBLE_EQ(t.correction_factor(), 1.0);
  EXPECT_DOUBLE_EQ(t.refined_mflups(units::Mflups(50.0)).value(), 50.0);
  EXPECT_DOUBLE_EQ(t.mean_abs_relative_error(), 0.0);
}

TEST(CampaignTracker, LearnsConsistentOverprediction) {
  CampaignTracker t;
  // Model predicts 25 % high everywhere.
  for (real_t measured : {40.0, 80.0, 120.0}) {
    t.record(obs(measured * 1.25, measured));
  }
  EXPECT_NEAR(t.correction_factor(), 0.8, 1e-12);
  EXPECT_NEAR(t.refined_mflups(units::Mflups(100.0)).value(), 80.0, 1e-9);
  // Refinement collapses the error for a consistent bias.
  EXPECT_NEAR(t.mean_abs_relative_error(), 0.25, 1e-12);
  EXPECT_NEAR(t.refined_mean_abs_relative_error(), 0.0, 1e-12);
}

TEST(CampaignTracker, GeometricMeanIsScaleInvariant) {
  CampaignTracker t;
  t.record(obs(200.0, 100.0));  // ratio 0.5
  t.record(obs(50.0, 100.0));   // ratio 2.0
  EXPECT_NEAR(t.correction_factor(), 1.0, 1e-12);
}

TEST(CampaignTracker, RefinementImprovesNoisyButBiasedData) {
  CampaignTracker t;
  const real_t ratios[] = {0.72, 0.78, 0.81, 0.75, 0.79};
  for (real_t r : ratios) t.record(obs(100.0, 100.0 * r));
  EXPECT_LT(t.refined_mean_abs_relative_error(),
            t.mean_abs_relative_error() * 0.25);
}

TEST(CampaignTracker, RejectsNonPositiveThroughputs) {
  CampaignTracker t;
  EXPECT_THROW(t.record(obs(0.0, 10.0)), PreconditionError);
  EXPECT_THROW(t.record(obs(10.0, -1.0)), PreconditionError);
}

TEST(JobGuard, LimitsFollowToleranceAndPrice) {
  JobGuard g;
  g.predicted_seconds = units::Seconds(3600.0);
  g.tolerance = 0.10;
  g.price_per_hour = units::DollarsPerHour(12.0);
  EXPECT_NEAR(g.max_seconds().value(), 3960.0, 1e-9);
  EXPECT_NEAR(g.max_dollars().value(), 3960.0 / 3600.0 * 12.0, 1e-9);
}

TEST(JobGuard, AbortsWhenHardLimitExceeded) {
  JobGuard g;
  g.predicted_seconds = units::Seconds(100.0);
  g.tolerance = 0.10;
  EXPECT_TRUE(g.should_abort(units::Seconds(111.0), 0.9));
  EXPECT_FALSE(g.should_abort(units::Seconds(50.0), 0.5));
}

TEST(JobGuard, AbortsOnProjectedOverrun) {
  JobGuard g;
  g.predicted_seconds = units::Seconds(100.0);
  g.tolerance = 0.10;
  // 30 s elapsed for 20 % done projects to 150 s > 110 s: flag it early.
  EXPECT_TRUE(g.should_abort(units::Seconds(30.0), 0.2));
  // On pace: 22 s for 20 % projects exactly to the limit.
  EXPECT_FALSE(g.should_abort(units::Seconds(21.9), 0.2));
}

TEST(JobGuard, ExactToleranceBoundary) {
  JobGuard g;
  g.predicted_seconds = units::Seconds(100.0);
  g.tolerance = 0.10;
  // The hard limit is inclusive: landing exactly on max_seconds() stops
  // the job ...
  EXPECT_TRUE(g.should_abort(g.max_seconds(), 0.5));
  // ... but a pace that *projects* exactly onto the limit is still
  // acceptable (strict overshoot required): 22 s for 20 % -> 110 s == max.
  EXPECT_FALSE(g.should_abort(units::Seconds(22.0), 0.2));
  EXPECT_TRUE(g.should_abort(units::Seconds(22.0 * (1.0 + 1e-9)), 0.2));
}

TEST(JobGuard, ZeroToleranceStopsAtThePrediction) {
  JobGuard g;
  g.predicted_seconds = units::Seconds(100.0);
  g.tolerance = 0.0;
  EXPECT_NEAR(g.max_seconds().value(), 100.0, 1e-12);
  EXPECT_FALSE(g.should_abort(units::Seconds(99.0), 0.99));
  EXPECT_TRUE(g.should_abort(units::Seconds(100.0), 0.99));
}

TEST(JobGuard, RejectsFractionOutsideUnitInterval) {
  JobGuard g;
  g.predicted_seconds = units::Seconds(100.0);
  EXPECT_THROW((void)g.should_abort(units::Seconds(10.0), -0.1), PreconditionError);
  EXPECT_THROW((void)g.should_abort(units::Seconds(10.0), 1.1), PreconditionError);
}

TEST(CampaignTracker, ConvergesToTrueBiasWithMoreObservations) {
  // Noisy measurements around a true 25 % overprediction: the learned
  // factor closes in on 0.75 as observations accumulate.
  CampaignTracker t;
  const real_t noise[] = {1.15, 1.08, 0.87, 1.04, 0.93, 0.96, 1.02, 0.98};
  real_t error_after_two = 0.0;
  for (std::size_t i = 0; i < std::size(noise); ++i) {
    t.record(obs(100.0, 75.0 * noise[i]));
    if (i == 1) error_after_two = std::abs(t.correction_factor() - 0.75);
  }
  const real_t error_after_eight = std::abs(t.correction_factor() - 0.75);
  EXPECT_LT(error_after_eight, error_after_two);
  EXPECT_NEAR(t.correction_factor(), 0.75, 0.02);
}

TEST(JobGuard, NoProgressYetOnlyHardLimitApplies) {
  JobGuard g;
  g.predicted_seconds = units::Seconds(100.0);
  EXPECT_FALSE(g.should_abort(units::Seconds(5.0), 0.0));
  EXPECT_TRUE(g.should_abort(units::Seconds(120.0), 0.0));
}

}  // namespace
}  // namespace hemo::core
