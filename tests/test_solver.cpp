// Physics and consistency tests of the D3Q19 BGK solver: conservation,
// steady states, layout/propagation equivalence, and Poiseuille flow
// against the analytic solution. These validate that the HARVEY-equivalent
// is a real CFD code, not a performance mock.
#include <gtest/gtest.h>

#include <cmath>

#include "geometry/generators.hpp"
#include "lbm/mesh.hpp"
#include "lbm/solver.hpp"

namespace hemo::lbm {
namespace {

/// A closed fluid box (no inlets/outlets): mass must be conserved exactly.
geometry::Geometry make_closed_box(index_t n) {
  geometry::VoxelGrid grid(n, n, n);
  for (index_t z = 0; z < n; ++z) {
    for (index_t y = 0; y < n; ++y) {
      for (index_t x = 0; x < n; ++x) {
        grid.set(x, y, z, geometry::PointType::kBulk);
      }
    }
  }
  grid.classify_walls();
  return geometry::Geometry{"box", std::move(grid), {}};
}

class SolverKernelTest
    : public ::testing::TestWithParam<std::tuple<Layout, Propagation>> {};

TEST_P(SolverKernelTest, ClosedBoxConservesMass) {
  const auto [layout, prop] = GetParam();
  const auto geo = make_closed_box(8);
  const FluidMesh mesh = FluidMesh::build(geo.grid);
  SolverParams params;
  params.kernel.layout = layout;
  params.kernel.propagation = prop;
  Solver<double> solver(mesh, params, {});
  const real_t mass0 = solver.total_mass();
  solver.run(40);  // even count keeps AA in natural order
  EXPECT_NEAR(solver.total_mass(), mass0, mass0 * 1e-12);
}

TEST_P(SolverKernelTest, RestEquilibriumIsSteady) {
  const auto [layout, prop] = GetParam();
  const auto geo = make_closed_box(6);
  const FluidMesh mesh = FluidMesh::build(geo.grid);
  SolverParams params;
  params.kernel.layout = layout;
  params.kernel.propagation = prop;
  Solver<double> solver(mesh, params, {});
  solver.run(20);
  for (index_t p = 0; p < mesh.num_points(); p += 7) {
    const auto m = solver.moments_at(p);
    EXPECT_NEAR(m.rho, 1.0, 1e-12);
    EXPECT_NEAR(m.ux, 0.0, 1e-13);
    EXPECT_NEAR(m.uy, 0.0, 1e-13);
    EXPECT_NEAR(m.uz, 0.0, 1e-13);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, SolverKernelTest,
    ::testing::Combine(::testing::Values(Layout::kAoS, Layout::kSoA),
                       ::testing::Values(Propagation::kAB, Propagation::kAA)),
    [](const auto& info) {
      return to_string(std::get<1>(info.param)) + "_" +
             to_string(std::get<0>(info.param));
    });

TEST(Solver, LayoutsProduceIdenticalStates) {
  // AoS and SoA perform identical arithmetic in identical order.
  const auto geo = geometry::make_cylinder({.radius = 4, .length = 20});
  const FluidMesh mesh = FluidMesh::build(geo.grid);
  SolverParams aos, soa;
  aos.kernel.layout = Layout::kAoS;
  soa.kernel.layout = Layout::kSoA;
  Solver<double> sa(mesh, aos, std::span(geo.inlets));
  Solver<double> sb(mesh, soa, std::span(geo.inlets));
  sa.run(30);
  sb.run(30);
  for (index_t p = 0; p < mesh.num_points(); ++p) {
    for (index_t q = 0; q < kQ; ++q) {
      EXPECT_DOUBLE_EQ(sa.f_value(p, q), sb.f_value(p, q));
    }
  }
}

TEST(Solver, AaAndAbConvergeToSameSteadyFlow) {
  // The propagation patterns differ in intermediate representation but must
  // agree on the converged flow field.
  const auto geo = geometry::make_cylinder({.radius = 4, .length = 24});
  const FluidMesh mesh = FluidMesh::build(geo.grid);
  SolverParams ab, aa;
  ab.kernel.propagation = Propagation::kAB;
  aa.kernel.propagation = Propagation::kAA;
  Solver<double> sab(mesh, ab, std::span(geo.inlets));
  Solver<double> saa(mesh, aa, std::span(geo.inlets));
  sab.run(800);
  saa.run(800);
  // Compare interior points only: at boundary points the two patterns
  // expose different representations (AB stores post-BC values, AA's
  // natural state holds pre-BC arrivals). Interior moments also differ by
  // one streaming step of representation, so allow a small gradient-scale
  // tolerance.
  real_t max_diff = 0.0;
  for (index_t p = 0; p < mesh.num_points(); ++p) {
    const PointType type = mesh.type(p);
    if (type == PointType::kInlet || type == PointType::kOutlet) continue;
    const auto ma = sab.moments_at(p);
    const auto mb = saa.moments_at(p);
    max_diff = std::max(max_diff, std::abs(ma.uz - mb.uz));
  }
  EXPECT_LT(max_diff, 2e-3);
  EXPECT_GT(max_diff, 0.0);  // genuinely different code paths ran
}

TEST(Solver, FloatAndDoubleAgreeApproximately) {
  const auto geo = geometry::make_cylinder({.radius = 4, .length = 16});
  const FluidMesh mesh = FluidMesh::build(geo.grid);
  SolverParams params;
  Solver<double> sd(mesh, params, std::span(geo.inlets));
  Solver<float> sf(mesh, params, std::span(geo.inlets));
  sd.run(100);
  sf.run(100);
  for (index_t p = 0; p < mesh.num_points(); p += 11) {
    const auto md = sd.moments_at(p);
    const auto mf = sf.moments_at(p);
    EXPECT_NEAR(md.uz, mf.uz, 5e-4);
    EXPECT_NEAR(md.rho, mf.rho, 5e-3);
  }
}

TEST(Solver, PoiseuilleProfileMatchesAnalyticSolution) {
  // Steady cylindrical Poiseuille flow: u(r) = u0 (1 - (r/Reff)^2). The
  // staircase bounce-back boundary puts the effective no-slip radius
  // within about a voxel of the nominal radius, so we fit (u0, Reff) by
  // least squares and assert the parabolic *shape* (R^2) plus a physical
  // effective radius.
  const index_t radius = 6;
  const auto geo = geometry::make_cylinder(
      {.radius = radius, .length = 36, .peak_velocity = 0.04});
  const FluidMesh mesh = FluidMesh::build(geo.grid);
  SolverParams params;
  params.tau = 0.8;
  Solver<double> solver(mesh, params, std::span(geo.inlets));
  solver.run(3000);

  // Collect u(r^2) on the mid-length cross-section; u = a + b r^2 is
  // linear in r^2 with u0 = a and Reff^2 = -a / b.
  const real_t c = geo.inlets[0].center.x;
  const index_t zmid = geo.grid.nz() / 2;
  std::vector<real_t> r2s, us;
  real_t u_center = 0.0;
  for (index_t p = 0; p < mesh.num_points(); ++p) {
    const auto& v = mesh.voxel(p);
    if (v.z != zmid) continue;
    const auto m = solver.moments_at(p);
    const real_t dx = static_cast<real_t>(v.x) - c;
    const real_t dy = static_cast<real_t>(v.y) - c;
    const real_t r2 = dx * dx + dy * dy;
    if (r2 < 0.25) u_center = m.uz;
    r2s.push_back(r2);
    us.push_back(m.uz);
  }
  ASSERT_GT(r2s.size(), 80u);
  EXPECT_GT(u_center, 0.01);  // flow actually developed

  // Least-squares line u = a + b r^2.
  const real_t n = static_cast<real_t>(r2s.size());
  real_t sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < r2s.size(); ++i) {
    sx += r2s[i];
    sy += us[i];
    sxx += r2s[i] * r2s[i];
    sxy += r2s[i] * us[i];
  }
  const real_t b = (n * sxy - sx * sy) / (n * sxx - sx * sx);
  const real_t a = (sy - b * sx) / n;
  EXPECT_LT(b, 0.0);  // velocity decreases with radius
  const real_t reff = std::sqrt(-a / b);
  EXPECT_GT(reff, static_cast<real_t>(radius) - 1.0);
  EXPECT_LT(reff, static_cast<real_t>(radius) + 1.5);

  // Shape quality: R^2 of the parabola fit.
  real_t ss_res = 0, ss_tot = 0;
  const real_t mean_u = sy / n;
  for (std::size_t i = 0; i < r2s.size(); ++i) {
    const real_t pred = a + b * r2s[i];
    ss_res += (us[i] - pred) * (us[i] - pred);
    ss_tot += (us[i] - mean_u) * (us[i] - mean_u);
  }
  EXPECT_GT(1.0 - ss_res / ss_tot, 0.97);
}

TEST(Solver, FlowIsAxialInCylinder) {
  const auto geo = geometry::make_cylinder({.radius = 5, .length = 24});
  const FluidMesh mesh = FluidMesh::build(geo.grid);
  SolverParams params;
  Solver<double> solver(mesh, params, std::span(geo.inlets));
  solver.run(800);
  real_t axial = 0.0, transverse = 0.0;
  for (index_t p = 0; p < mesh.num_points(); ++p) {
    const auto m = solver.moments_at(p);
    axial += std::abs(m.uz);
    transverse += std::abs(m.ux) + std::abs(m.uy);
  }
  EXPECT_GT(axial, 5.0 * transverse);
}

TEST(Solver, MeanSpeedGrowsFromRestThenSettles) {
  const auto geo = geometry::make_cylinder({.radius = 4, .length = 20});
  const FluidMesh mesh = FluidMesh::build(geo.grid);
  SolverParams params;
  Solver<double> solver(mesh, params, std::span(geo.inlets));
  EXPECT_NEAR(solver.mean_speed(), 0.0, 1e-12);
  solver.run(200);
  const real_t early = solver.mean_speed();
  EXPECT_GT(early, 1e-4);
  solver.run(1400);
  const real_t late = solver.mean_speed();
  solver.run(200);
  // Converged: change below 1 % over 200 further steps.
  EXPECT_NEAR(solver.mean_speed(), late, late * 0.01);
  EXPECT_GT(late, early * 0.5);
}

TEST(Solver, RejectsBadParameters) {
  const auto geo = make_closed_box(4);
  const FluidMesh mesh = FluidMesh::build(geo.grid);
  SolverParams bad;
  bad.tau = 0.5;
  EXPECT_THROW(Solver<double>(mesh, bad, {}), PreconditionError);
}

TEST(Solver, AaMomentsRequireNaturalOrder) {
  const auto geo = make_closed_box(4);
  const FluidMesh mesh = FluidMesh::build(geo.grid);
  SolverParams params;
  params.kernel.propagation = Propagation::kAA;
  Solver<double> solver(mesh, params, {});
  solver.step();  // odd parity: direction-swapped storage
  EXPECT_FALSE(solver.natural_order());
  EXPECT_THROW((void)solver.total_mass(), PreconditionError);
  solver.step();
  EXPECT_TRUE(solver.natural_order());
  EXPECT_NO_THROW((void)solver.total_mass());
}

}  // namespace
}  // namespace hemo::lbm
