// Tests for solver extensions: periodic meshes, body-force driving
// (validated against the analytic Poiseuille solution), pulsatile inlets,
// VTK export, and checkpoint/restart.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "geometry/generators.hpp"
#include "harvey/distributed.hpp"
#include "lbm/io.hpp"
#include "lbm/point_update.hpp"
#include "lbm/mesh.hpp"
#include "lbm/solver.hpp"

namespace hemo::lbm {
namespace {

TEST(PeriodicMesh, WrapsNeighborsAcrossTheSeam) {
  const auto geo = geometry::make_periodic_cylinder({.radius = 4,
                                                     .length = 12});
  MeshOptions options;
  options.periodic_z = true;
  const FluidMesh mesh = FluidMesh::build(geo.grid, options);
  // A center-axis point at z = 0 must see a fluid neighbor at z = L-1
  // through the -z direction (direction 6).
  for (index_t p = 0; p < mesh.num_points(); ++p) {
    const auto& v = mesh.voxel(p);
    if (v.z != 0) continue;
    if (mesh.type(p) != PointType::kBulk) continue;
    const std::int32_t nb = mesh.neighbor(p, 6);  // (0, 0, -1)
    ASSERT_NE(nb, kSolidLink);
    EXPECT_EQ(mesh.voxel(static_cast<index_t>(nb)).z, geo.grid.nz() - 1);
  }
  // No inlet/outlet points and no end-cap walls on the axis.
  const auto counts = mesh.type_counts();
  EXPECT_EQ(counts.inlet, 0);
  EXPECT_EQ(counts.outlet, 0);
}

TEST(BodyForce, DrivenPeriodicPoiseuilleMatchesAnalyticPeak) {
  // Force-driven periodic cylinder: steady u_max = F R^2 / (4 nu rho).
  // This closes the loop on the solver's viscosity: both the profile
  // *shape* and its absolute *magnitude* must match.
  const index_t radius = 6;
  const auto geo = geometry::make_periodic_cylinder(
      {.radius = radius, .length = 12});
  MeshOptions mesh_options;
  mesh_options.periodic_z = true;
  const FluidMesh mesh = FluidMesh::build(geo.grid, mesh_options);

  SolverParams params;
  params.tau = 0.9;  // nu = 0.4/3
  const real_t force = 1e-5;
  params.body_force = {0.0, 0.0, force};
  Solver<double> solver(mesh, params, {});
  solver.run(4000);

  const real_t nu = viscosity_from_tau(params.tau);
  // u(r) = F (Reff^2 - r^2) / (4 nu): the slope of u against r^2 is
  // exactly -F / (4 nu), independent of the staircase boundary's
  // effective radius. Fit the profile at one z-plane and verify both the
  // slope and a physical effective radius.
  const real_t c = static_cast<real_t>(geo.grid.nx() - 1) / 2.0;
  real_t sx = 0, sy = 0, sxx = 0, sxy = 0, n = 0;
  for (index_t p = 0; p < mesh.num_points(); ++p) {
    const auto& v = mesh.voxel(p);
    if (v.z != 5) continue;
    const real_t dx = static_cast<real_t>(v.x) - c;
    const real_t dy = static_cast<real_t>(v.y) - c;
    const real_t r2 = dx * dx + dy * dy;
    const real_t u = solver.moments_at(p).uz;
    sx += r2;
    sy += u;
    sxx += r2 * r2;
    sxy += r2 * u;
    n += 1.0;
  }
  const real_t b = (n * sxy - sx * sy) / (n * sxx - sx * sx);
  const real_t a = (sy - b * sx) / n;
  const real_t expected_slope = -force / (4.0 * nu);
  EXPECT_NEAR(b, expected_slope, std::abs(expected_slope) * 0.05);
  const real_t reff = std::sqrt(-a / b);
  EXPECT_GT(reff, static_cast<real_t>(radius) - 0.7);
  EXPECT_LT(reff, static_cast<real_t>(radius) + 0.7);
}

TEST(BodyForce, ConservesMassInClosedPeriodicDomain) {
  const auto geo = geometry::make_periodic_cylinder({.radius = 4,
                                                     .length = 8});
  MeshOptions options;
  options.periodic_z = true;
  const FluidMesh mesh = FluidMesh::build(geo.grid, options);
  SolverParams params;
  params.body_force = {0.0, 0.0, 2e-5};
  Solver<double> solver(mesh, params, {});
  const real_t mass0 = solver.total_mass();
  solver.run(200);
  EXPECT_NEAR(solver.total_mass(), mass0, mass0 * 1e-12);
}

TEST(PulsatileInlet, MeanFlowOscillatesAtImposedPeriod) {
  geometry::CylinderParams cyl{.radius = 5, .length = 24,
                               .peak_velocity = 0.04};
  auto geo = geometry::make_cylinder(cyl);
  geo.inlets[0].pulse_amplitude = 0.5;
  geo.inlets[0].pulse_period = 200.0;
  const FluidMesh mesh = FluidMesh::build(geo.grid);
  SolverParams params;
  Solver<double> solver(mesh, params, std::span(geo.inlets));
  solver.run(1000);  // settle into the oscillatory regime

  // Sample mean speed over one period: must rise and fall around the
  // steady value, with a clear max/min spread.
  real_t lo = 1e30, hi = 0.0;
  for (index_t i = 0; i < 10; ++i) {
    solver.run(20);
    const real_t s = solver.mean_speed();
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  EXPECT_GT(hi, lo * 1.3);  // genuine oscillation, not noise
}

TEST(PulsatileInlet, ZeroAmplitudeMatchesSteadySolverBitwise) {
  geometry::CylinderParams cyl{.radius = 4, .length = 16};
  auto steady_geo = geometry::make_cylinder(cyl);
  auto pulse_geo = geometry::make_cylinder(cyl);
  pulse_geo.inlets[0].pulse_amplitude = 0.0;
  pulse_geo.inlets[0].pulse_period = 100.0;
  const FluidMesh mesh = FluidMesh::build(steady_geo.grid);
  SolverParams params;
  Solver<double> a(mesh, params, std::span(steady_geo.inlets));
  Solver<double> b(mesh, params, std::span(pulse_geo.inlets));
  a.run(50);
  b.run(50);
  for (index_t p = 0; p < mesh.num_points(); p += 5) {
    EXPECT_DOUBLE_EQ(a.f_value(p, 5), b.f_value(p, 5));
  }
}

TEST(PulseScale, FormulaProperties) {
  EXPECT_DOUBLE_EQ(pulse_scale<double>(0.0, 100.0, 37), 1.0);
  EXPECT_DOUBLE_EQ(pulse_scale<double>(0.3, 0.0, 37), 1.0);
  EXPECT_NEAR(pulse_scale<double>(0.5, 100.0, 25), 1.5, 1e-12);  // peak
  EXPECT_NEAR(pulse_scale<double>(0.5, 100.0, 75), 0.5, 1e-12);  // trough
  EXPECT_NEAR(pulse_scale<double>(0.5, 100.0, 0), 1.0, 1e-12);
}

TEST(VtkOutput, WritesParsableHeaderAndCounts) {
  const auto geo = geometry::make_cylinder({.radius = 3, .length = 10});
  const FluidMesh mesh = FluidMesh::build(geo.grid);
  SolverParams params;
  Solver<double> solver(mesh, params, std::span(geo.inlets));
  solver.run(10);

  std::ostringstream oss;
  write_vtk(solver, oss, "test field");
  const std::string out = oss.str();
  EXPECT_NE(out.find("# vtk DataFile Version 3.0"), std::string::npos);
  EXPECT_NE(out.find("POINTS " + std::to_string(mesh.num_points())),
            std::string::npos);
  EXPECT_NE(out.find("SCALARS density"), std::string::npos);
  EXPECT_NE(out.find("VECTORS velocity"), std::string::npos);
  // Line count: header(5ish) + points + density + types + velocity.
  index_t lines = 0;
  for (char c : out) {
    if (c == '\n') ++lines;
  }
  EXPECT_GT(lines, 4 * mesh.num_points());
}

TEST(Checkpoint, RoundTripIsBitwiseExact) {
  const auto geo = geometry::make_cylinder({.radius = 4, .length = 16});
  const FluidMesh mesh = FluidMesh::build(geo.grid);
  SolverParams params;
  Solver<double> solver(mesh, params, std::span(geo.inlets));
  solver.run(25);

  std::stringstream buffer(std::ios::in | std::ios::out |
                           std::ios::binary);
  save_checkpoint(solver, buffer);
  solver.run(25);  // reference trajectory to t = 50
  std::vector<real_t> reference;
  for (index_t p = 0; p < mesh.num_points(); ++p) {
    reference.push_back(solver.f_value(p, 7));
  }

  Solver<double> restored(mesh, params, std::span(geo.inlets));
  load_checkpoint(restored, buffer);
  EXPECT_EQ(restored.timestep(), 25);
  restored.run(25);
  for (index_t p = 0; p < mesh.num_points(); ++p) {
    ASSERT_DOUBLE_EQ(restored.f_value(p, 7),
                     reference[static_cast<std::size_t>(p)]);
  }
}

TEST(Checkpoint, RejectsMismatchedConfiguration) {
  const auto geo = geometry::make_cylinder({.radius = 4, .length = 16});
  const FluidMesh mesh = FluidMesh::build(geo.grid);
  SolverParams ab, aa;
  aa.kernel.propagation = Propagation::kAA;
  Solver<double> writer(mesh, ab, std::span(geo.inlets));
  std::stringstream buffer(std::ios::in | std::ios::out |
                           std::ios::binary);
  save_checkpoint(writer, buffer);

  Solver<double> reader(mesh, aa, std::span(geo.inlets));
  EXPECT_THROW(load_checkpoint(reader, buffer), PreconditionError);
}

TEST(Checkpoint, RejectsGarbageStream) {
  const auto geo = geometry::make_cylinder({.radius = 3, .length = 8});
  const FluidMesh mesh = FluidMesh::build(geo.grid);
  SolverParams params;
  Solver<double> solver(mesh, params, std::span(geo.inlets));
  std::stringstream buffer("this is not a checkpoint");
  EXPECT_THROW(load_checkpoint(solver, buffer), NumericError);
}

TEST(DistributedExtensions, ForcedPeriodicFlowMatchesSerialBitwise) {
  // Distributed solver with body force over a periodic mesh must still
  // match the serial solver exactly.
  const auto geo = geometry::make_periodic_cylinder({.radius = 4,
                                                     .length = 12});
  MeshOptions options;
  options.periodic_z = true;
  const FluidMesh mesh = FluidMesh::build(geo.grid, options);
  SolverParams params;
  params.body_force = {0.0, 0.0, 1e-5};

  Solver<double> serial(mesh, params, {});
  serial.run(40);

  const auto part =
      decomp::make_partition(mesh, 5, decomp::Strategy::kRcb);
  harvey::DistributedSolver dist(mesh, part, params, {});
  dist.run(40);
  for (index_t p = 0; p < mesh.num_points(); p += 3) {
    const auto ms = serial.moments_at(p);
    const auto md = dist.moments_at(p);
    ASSERT_DOUBLE_EQ(ms.uz, md.uz);
  }
}

}  // namespace
}  // namespace hemo::lbm
